// mdqa_serve: a long-lived multi-tenant assessment daemon over a built-in
// scenario's quality context (HTTP/1.1 + JSON, loopback only).
//
// Run:  mdqa_serve [flags]
//
// Flags:
//   --scenario=NAME    hospital | synthetic (default: hospital)
//   --port=N           listen port; 0 = ephemeral, printed at startup
//   --threads=N        worker threads (default 4)
//   --queue=N          bounded connection-queue capacity (default 64)
//   --rate=R           per-tenant admission rate, requests/sec (default 200)
//   --burst=N          per-tenant burst size (default 50)
//   --deadline-ms=N    default per-request deadline (default 1000)
//   --data-dir=DIR     durable KB: recover/resume from DIR at startup
//                      (checkpoint + WAL), WAL-commit every update, and
//                      checkpoint on drain (docs/durability.md)
//   --access-log=FILE  structured JSON access log (one line per request;
//                      capped at 64 MiB, fsync-free)
//   --quota-config=F   tenant-quota JSON, loaded at startup and hot-
//                      reloaded on SIGHUP (malformed reloads are rejected
//                      loudly and change nothing)
//   --smoke            start, self-probe /healthz + /query + /update over a
//                      real socket, drain, verify, exit (for CI)
//   --help             this text
//
// Endpoints: GET /healthz /stats /report; POST /query /assess /update
// /admin/quotas. Tenant id in X-Mdqa-Tenant, per-request deadline in
// X-Mdqa-Deadline-Ms.
//
// SIGTERM/SIGINT triggers a graceful drain: stop accepting, finish
// in-flight requests against their pinned snapshots, quiesce the update
// writer, checkpoint (with --data-dir), verify the drained state
// (DrainStatus), then exit 0 — non-OK drain exits 1. Exit code 2 is a
// usage or startup error.

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "base/fs.h"
#include "scenarios/hospital.h"
#include "scenarios/synthetic.h"
#include "serve/access_log.h"
#include "serve/http.h"
#include "serve/server.h"
#include "storage/env.h"
#include "storage/kb_store.h"

namespace {

using mdqa::serve::AssessmentServer;
using mdqa::serve::HttpLimits;
using mdqa::serve::HttpRoundTrip;
using mdqa::serve::ServerOptions;

std::atomic<bool> g_drain_requested{false};
std::atomic<bool> g_reload_requested{false};

void HandleSignal(int) {
  // Async-signal-safe: one relaxed store; the main loop does the work.
  g_drain_requested.store(true, std::memory_order_relaxed);
}

void HandleReload(int) { g_reload_requested.store(true, std::memory_order_relaxed); }

/// Loads and applies the quota-config file; returns false (and leaves
/// every quota untouched) on any read/parse/validation failure.
bool LoadQuotaConfig(AssessmentServer* server, const std::string& path) {
  auto text = mdqa::fs::ReadFileToString(path);
  if (!text.ok()) {
    std::cerr << "mdqa_serve: quota config unreadable: " << text.status()
              << "\n";
    return false;
  }
  mdqa::Status applied = server->ApplyQuotaConfig(*text);
  if (!applied.ok()) {
    std::cerr << "mdqa_serve: quota config rejected (keeping current "
                 "quotas): " << applied << "\n";
    return false;
  }
  std::cout << "mdqa_serve: quota config applied from " << path << "\n";
  return true;
}

int Usage(std::ostream& os, int code) {
  os << "usage: mdqa_serve [--scenario=NAME] [--port=N] [--threads=N]\n"
        "                  [--queue=N] [--rate=R] [--burst=N]\n"
        "                  [--deadline-ms=N] [--data-dir=DIR]\n"
        "                  [--access-log=FILE] [--quota-config=FILE]\n"
        "                  [--smoke] [--help]\n"
        "  NAME: hospital | synthetic (default: hospital)\n"
        "  serves GET /healthz /stats /report, POST /query /assess /update\n"
        "  /admin/quotas on 127.0.0.1 (loopback only); SIGTERM drains\n"
        "  gracefully (checkpointing with --data-dir), SIGHUP reloads\n"
        "  --quota-config.\n";
  return code;
}

bool ParseInt(const std::string& text, long* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  long v = std::strtol(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || v < 0) return false;
  *out = v;
  return true;
}

/// One request against the running server over a real socket; fails the
/// smoke test unless the response status matches.
mdqa::Status Probe(uint16_t port, const char* method, const char* target,
                   const std::string& body, int want_status) {
  MDQA_ASSIGN_OR_RETURN(
      mdqa::net::Socket sock,
      mdqa::net::ConnectLoopback(port, std::chrono::milliseconds(2000)));
  MDQA_ASSIGN_OR_RETURN(
      mdqa::serve::HttpResponse resp,
      HttpRoundTrip(sock, method, target, body, {}, HttpLimits{}));
  if (resp.status != want_status) {
    return mdqa::Status::Internal(
        std::string("smoke: ") + method + " " + target + " returned " +
        std::to_string(resp.status) + ", want " +
        std::to_string(want_status) + "; body: " + resp.body);
  }
  return mdqa::Status::Ok();
}

int RunSmoke(AssessmentServer* server) {
  const uint16_t port = server->port();
  mdqa::Status s = Probe(port, "GET", "/healthz", "", 200);
  if (s.ok()) {
    s = Probe(port, "POST", "/query",
              R"({"query": "Q(P, V) :- Measurements(T, P, V).",)"
              R"( "clean": true})",
              200);
  }
  if (s.ok()) {
    s = Probe(port, "POST", "/update",
              R"({"relation": "Measurements",)"
              R"( "insert": [["Sep/9-23:50", "Nick Cave", "36.9"]]})",
              200);
  }
  if (s.ok()) s = Probe(port, "GET", "/report", "", 200);
  if (s.ok()) s = Probe(port, "POST", "/query", "not json", 400);
  if (!s.ok()) {
    std::cerr << "mdqa_serve: smoke probe failed: " << s << "\n";
    server->Shutdown();
    return 1;
  }
  server->Shutdown();
  mdqa::Status drained = server->DrainStatus();
  if (!drained.ok()) {
    std::cerr << "mdqa_serve: drain check failed: " << drained << "\n";
    return 1;
  }
  std::cout << "mdqa_serve: smoke OK (generation "
            << server->generation() << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario = "hospital";
  ServerOptions options;
  std::string data_dir;
  std::string access_log_path;
  std::string quota_config_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto eat = [&arg](const char* prefix, std::string* value) {
      const size_t n = std::string(prefix).size();
      if (arg.rfind(prefix, 0) != 0) return false;
      *value = arg.substr(n);
      return true;
    };
    std::string value;
    long n = 0;
    if (arg == "--help" || arg == "-h") return Usage(std::cout, 0);
    if (arg == "--smoke") {
      smoke = true;
    } else if (eat("--scenario=", &value)) {
      scenario = value;
    } else if (eat("--port=", &value) && ParseInt(value, &n) && n <= 65535) {
      options.port = static_cast<uint16_t>(n);
    } else if (eat("--threads=", &value) && ParseInt(value, &n) && n > 0) {
      options.worker_threads = static_cast<int>(n);
    } else if (eat("--queue=", &value) && ParseInt(value, &n) && n > 0) {
      options.queue_capacity = static_cast<size_t>(n);
    } else if (eat("--rate=", &value) && ParseInt(value, &n) && n > 0) {
      options.default_quota.requests_per_sec = static_cast<double>(n);
    } else if (eat("--burst=", &value) && ParseInt(value, &n) && n > 0) {
      options.default_quota.burst = static_cast<double>(n);
    } else if (eat("--deadline-ms=", &value) && ParseInt(value, &n) &&
               n > 0) {
      options.default_deadline = std::chrono::milliseconds(n);
    } else if (eat("--data-dir=", &value) && !value.empty()) {
      data_dir = value;
    } else if (eat("--access-log=", &value) && !value.empty()) {
      access_log_path = value;
    } else if (eat("--quota-config=", &value) && !value.empty()) {
      quota_config_path = value;
    } else {
      std::cerr << "mdqa_serve: bad argument: " << arg << "\n";
      return Usage(std::cerr, 2);
    }
  }

  mdqa::Result<mdqa::quality::QualityContext> context =
      mdqa::Status::InvalidArgument("unset");
  if (scenario == "hospital") {
    context = mdqa::scenarios::BuildHospitalContext(
        mdqa::scenarios::HospitalOptions{});
  } else if (scenario == "synthetic") {
    context = mdqa::scenarios::BuildSyntheticContext(
        mdqa::scenarios::SyntheticSpec{});
  } else {
    std::cerr << "mdqa_serve: unknown scenario: " << scenario << "\n";
    return Usage(std::cerr, 2);
  }
  if (!context.ok()) {
    std::cerr << "mdqa_serve: building context failed: " << context.status()
              << "\n";
    return 2;
  }

  // ServerOptions holds raw pointers; these must outlive the server.
  std::unique_ptr<mdqa::storage::KbStore> store;
  std::unique_ptr<mdqa::serve::AccessLog> access_log;
  if (!data_dir.empty()) {
    auto opened = mdqa::storage::OpenDiskKbStore(mdqa::storage::Env::Posix(),
                                                 data_dir,
                                                 mdqa::storage::StoreOptions{});
    if (!opened.ok()) {
      std::cerr << "mdqa_serve: opening data dir failed: " << opened.status()
                << "\n";
      return 2;
    }
    store = std::move(*opened);
    options.store = store.get();
    options.scenario = scenario;
  }
  if (!access_log_path.empty()) {
    auto opened = mdqa::serve::AccessLog::Open(mdqa::storage::Env::Posix(),
                                               access_log_path,
                                               /*max_bytes=*/64ull << 20);
    if (!opened.ok()) {
      std::cerr << "mdqa_serve: opening access log failed: "
                << opened.status() << "\n";
      return 2;
    }
    access_log = std::move(*opened);
    options.access_log = access_log.get();
  }

  auto server = AssessmentServer::Start(std::move(*context), options);
  if (!server.ok()) {
    std::cerr << "mdqa_serve: startup failed: " << server.status() << "\n";
    return 2;
  }
  for (const std::string& line : (*server)->recovery_degradations()) {
    std::cerr << "mdqa_serve: recovery: " << line << "\n";
  }
  if (!quota_config_path.empty() &&
      !LoadQuotaConfig(server->get(), quota_config_path)) {
    return 2;  // startup config must be valid; reloads may fail softly
  }
  std::cout << "mdqa_serve: scenario " << scenario << " on 127.0.0.1:"
            << (*server)->port() << " (" << options.worker_threads
            << " workers, generation " << (*server)->generation() << ")\n";

  if (smoke) return RunSmoke(server->get());

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGHUP, HandleReload);
  while (!g_drain_requested.load(std::memory_order_relaxed)) {
    if (g_reload_requested.exchange(false, std::memory_order_relaxed) &&
        !quota_config_path.empty()) {
      LoadQuotaConfig(server->get(), quota_config_path);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::cout << "mdqa_serve: drain requested, shutting down\n";
  (*server)->Shutdown();
  mdqa::Status drained = (*server)->DrainStatus();
  if (!drained.ok()) {
    std::cerr << "mdqa_serve: drain check failed: " << drained << "\n";
    return 1;
  }
  std::cout << "mdqa_serve: drained cleanly at generation "
            << (*server)->generation() << "\n";
  return 0;
}
