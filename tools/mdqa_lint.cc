// mdqa_lint: the static analyzer for Datalog± programs and MD ontologies.
//
// Run:  mdqa_lint [flags] file.dlg [file2.dlg ...]
//       mdqa_lint --scenario=hospital --scenario=finance
//
// Flags:
//   --json                  emit SARIF 2.1.0 JSON instead of text
//   --werror                treat warnings as errors (exit 1)
//   --min-severity=LEVEL    note | info | warning | error (default: info)
//   --scenario=NAME         lint a built-in scenario's compiled contextual
//                           program and ontology (hospital | finance |
//                           synthetic); repeatable, mixes with files
//   --analyze               after linting, dump the whole-program analysis
//                           for each input: class report, position
//                           dependency graph (Graphviz), per-engine cost
//                           table, and the planner's pick
//   --list                  print the diagnostic-code catalogue and exit
//
// Exit codes: 0 clean (or only suppressed findings), 1 findings that fail
// under the current --werror policy, 2 usage or I/O error.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/cost_model.h"
#include "base/fs.h"
#include "analysis/lint.h"
#include "datalog/parser.h"
#include "qa/engines.h"
#include "scenarios/finance.h"
#include "scenarios/hospital.h"
#include "scenarios/synthetic.h"

namespace {

using mdqa::analysis::AllCodes;
using mdqa::analysis::CodeInfo;
using mdqa::analysis::DiagnosticBag;
using mdqa::analysis::LintOptions;
using mdqa::analysis::Severity;

int Usage() {
  std::cerr
      << "usage: mdqa_lint [--json] [--werror] [--analyze]\n"
         "                 [--min-severity=LEVEL] [--scenario=NAME]...\n"
         "                 [--list] [file.dlg]...\n"
         "  LEVEL: note | info | warning | error (default: info)\n"
         "  NAME:  hospital | finance | synthetic\n";
  return 2;
}

void DumpAnalysis(const std::string& name,
                  const mdqa::datalog::Program& program);

bool ParseSeverity(const std::string& name, Severity* out) {
  if (name == "note") *out = Severity::kNote;
  else if (name == "info") *out = Severity::kInfo;
  else if (name == "warning") *out = Severity::kWarning;
  else if (name == "error") *out = Severity::kError;
  else return false;
  return true;
}

// Lints one built-in scenario the way the Assessor gate sees it: the
// compiled contextual program plus the ontology passes.
mdqa::Status LintScenario(const std::string& name, const LintOptions& base,
                          bool analyze, DiagnosticBag* bag) {
  namespace scenarios = mdqa::scenarios;
  LintOptions options = base;
  options.file = "<scenario:" + name + ">";
  if (name == "hospital" || name == "finance") {
    MDQA_ASSIGN_OR_RETURN(
        mdqa::quality::QualityContext context,
        name == "hospital"
            ? scenarios::BuildHospitalContext(scenarios::HospitalOptions{})
            : scenarios::BuildFinanceContext(scenarios::FinanceOptions{}));
    MDQA_ASSIGN_OR_RETURN(mdqa::datalog::Program program,
                          context.BuildProgram());
    mdqa::analysis::LintProgram(program, options, bag);
    mdqa::analysis::LintOntology(context.ontology(), options, bag);
    if (analyze) DumpAnalysis(options.file, program);
    return mdqa::Status::Ok();
  }
  if (name == "synthetic") {
    MDQA_ASSIGN_OR_RETURN(
        auto ontology,
        scenarios::BuildSyntheticOntology(scenarios::SyntheticSpec{}));
    MDQA_ASSIGN_OR_RETURN(mdqa::datalog::Program program,
                          ontology->Compile());
    mdqa::analysis::LintProgram(program, options, bag);
    mdqa::analysis::LintOntology(*ontology, options, bag);
    if (analyze) DumpAnalysis(options.file, program);
    return mdqa::Status::Ok();
  }
  return mdqa::Status::InvalidArgument("unknown scenario '" + name +
                                       "' (hospital | finance | synthetic)");
}

// The --analyze dump for one already-parsed program: syntactic class
// report, Fagin position graph, cost table, and the planner's pick.
void DumpAnalysis(const std::string& name,
                  const mdqa::datalog::Program& program) {
  const mdqa::datalog::Vocabulary& vocab = *program.vocab();
  mdqa::datalog::ProgramAnalysis analysis(program);
  const mdqa::analysis::CostModel model(
      program, analysis, mdqa::analysis::CostModel::CollectEdbStats(program));
  mdqa::qa::EngineSelectOptions select_options;
  select_options.cost_model = &model;
  const mdqa::qa::EngineSelection selection =
      mdqa::qa::SelectEngine(program, analysis, select_options);
  std::cout << "== analysis: " << name << " ==\n"
            << analysis.Report(vocab) << analysis.GraphDump(vocab)
            << model.ToString(vocab) << "planner: "
            << mdqa::qa::EngineToString(selection.engine) << " — "
            << selection.reason << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool werror = false;
  bool analyze = false;
  bool list = false;
  mdqa::analysis::Severity min_severity = Severity::kInfo;
  std::vector<std::string> files;
  std::vector<std::string> scenarios;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg == "--analyze") {
      analyze = true;
    } else if (arg == "--list") {
      list = true;
    } else if (arg.rfind("--min-severity=", 0) == 0) {
      if (!ParseSeverity(arg.substr(15), &min_severity)) return Usage();
    } else if (arg.rfind("--scenario=", 0) == 0) {
      scenarios.push_back(arg.substr(11));
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      files.push_back(arg);
    }
  }

  if (list) {
    for (const CodeInfo& info : AllCodes()) {
      std::cout << info.code << "  "
                << mdqa::analysis::SeverityToString(info.severity) << "  "
                << info.summary << "\n";
    }
    return 0;
  }
  if (files.empty() && scenarios.empty()) return Usage();

  LintOptions options;
  options.min_severity = min_severity;

  DiagnosticBag bag;
  for (const std::string& path : files) {
    // Capped read: oversized or truncated program files fail loudly
    // instead of being buffered whole or linted as a partial prefix.
    auto read = mdqa::fs::ReadFileToString(path);
    if (!read.ok()) {
      std::cerr << "mdqa_lint: " << path << ": " << read.status() << "\n";
      return 2;
    }
    LintOptions file_options = options;
    file_options.file = path;
    const std::string text = std::move(*read);
    mdqa::analysis::LintText(text, file_options, &bag);
    if (analyze) {
      // A broken parse was already reported above; only dump what parsed.
      auto program = mdqa::datalog::Parser::ParseProgram(text);
      if (program.ok()) DumpAnalysis(path, *program);
    }
  }
  for (const std::string& name : scenarios) {
    mdqa::Status s = LintScenario(name, options, analyze, &bag);
    if (!s.ok()) {
      std::cerr << "mdqa_lint: " << s << "\n";
      return 2;
    }
  }

  bag.Sort();
  if (json) {
    std::cout << bag.ToJson() << "\n";
  } else {
    std::cout << bag.ToText();
    std::cout << bag.errors() << " error(s), " << bag.warnings()
              << " warning(s), "
              << bag.size() - bag.errors() - bag.warnings()
              << " other finding(s)\n";
  }
  return bag.ShouldFail(werror) ? 1 : 0;
}
