#include "relational/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace mdqa {
namespace {

TEST(Csv, HeaderAndTypedFields) {
  auto rel = ParseCsv("Time,Patient,Value\nSep/5-12:10,Tom Waits,38.2\n"
                      "Sep/6-11:50,Tom Waits,37\n",
                      "Measurements");
  ASSERT_TRUE(rel.ok()) << rel.status();
  EXPECT_EQ(rel->name(), "Measurements");
  EXPECT_EQ(rel->arity(), 3u);
  EXPECT_EQ(rel->schema().attribute(1).name, "Patient");
  ASSERT_EQ(rel->size(), 2u);
  EXPECT_TRUE(rel->Contains({Value::Str("Sep/5-12:10"),
                             Value::Str("Tom Waits"), Value::Real(38.2)}));
  EXPECT_TRUE(rel->Contains({Value::Str("Sep/6-11:50"),
                             Value::Str("Tom Waits"), Value::Int(37)}));
}

TEST(Csv, NoHeaderGeneratesAttributeNames) {
  CsvOptions options;
  options.has_header = false;
  auto rel = ParseCsv("1,2\n3,4\n", "R", options);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->schema().attribute(0).name, "a0");
  EXPECT_EQ(rel->size(), 2u);
}

TEST(Csv, QuotedFieldsWithSeparatorsAndEscapes) {
  auto rel = ParseCsv("name,notes\n\"Waits, Tom\",\"said \"\"hi\"\"\"\n",
                      "People");
  ASSERT_TRUE(rel.ok()) << rel.status();
  ASSERT_EQ(rel->size(), 1u);
  EXPECT_EQ(rel->row(0)[0], Value::Str("Waits, Tom"));
  EXPECT_EQ(rel->row(0)[1], Value::Str("said \"hi\""));
}

TEST(Csv, CrlfAndBlankLines) {
  auto rel = ParseCsv("a,b\r\n\r\n1,2\r\n\n3,4\n", "R");
  ASSERT_TRUE(rel.ok()) << rel.status();
  EXPECT_EQ(rel->size(), 2u);
}

TEST(Csv, TypeInferenceToggle) {
  CsvOptions raw;
  raw.infer_types = false;
  auto rel = ParseCsv("x\n42\n", "R", raw);
  ASSERT_TRUE(rel.ok());
  EXPECT_TRUE(rel->row(0)[0].is_string());
}

TEST(Csv, CustomSeparator) {
  CsvOptions options;
  options.separator = ';';
  auto rel = ParseCsv("a;b\n1;2\n", "R", options);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->arity(), 2u);
}

TEST(Csv, RaggedRowRejected) {
  auto rel = ParseCsv("a,b\n1,2,3\n", "R");
  ASSERT_FALSE(rel.ok());
  EXPECT_NE(rel.status().message().find("fields"), std::string::npos);
}

TEST(Csv, UnterminatedQuoteRejected) {
  EXPECT_FALSE(ParseCsv("a\n\"oops\n", "R").ok());
}

TEST(Csv, EmptyInputRejected) {
  EXPECT_FALSE(ParseCsv("", "R").ok());
  EXPECT_FALSE(ParseCsv("\n\n", "R").ok());
}

TEST(Csv, ReadFileAndStemNaming) {
  const char* path = "/tmp/mdqa_csv_test_measurements.csv";
  {
    std::ofstream out(path);
    out << "w,p\nW1,Tom\n";
  }
  auto named = ReadCsvFile(path, "Explicit");
  ASSERT_TRUE(named.ok()) << named.status();
  EXPECT_EQ(named->name(), "Explicit");
  auto stem = ReadCsvFile(path);
  ASSERT_TRUE(stem.ok());
  EXPECT_EQ(stem->name(), "mdqa_csv_test_measurements");
  std::remove(path);
}

TEST(Csv, MissingFile) {
  auto rel = ReadCsvFile("/nonexistent/nope.csv");
  ASSERT_FALSE(rel.ok());
  EXPECT_EQ(rel.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace mdqa
