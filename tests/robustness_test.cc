// Robustness and metamorphic properties: rule-order invariance of the
// chase, EGD application order independence, roll-up/drill-down duality,
// memoization transparency, and parser crash-safety on mutated inputs.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <sstream>

#include "datalog/chase.h"
#include "datalog/parser.h"
#include "qa/deterministic_ws.h"
#include "qa/engines.h"
#include "quality/assessor.h"
#include "scenarios/hospital.h"
#include "scenarios/synthetic.h"

namespace mdqa {
namespace {

using datalog::ChaseOptions;
using datalog::Instance;
using datalog::Parser;
using datalog::Program;

// Re-parses `text` with rule statements permuted by `perm_seed`.
Program PermuteRules(const std::string& rules_text,
                     const std::string& facts_text, uint32_t perm_seed) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream in(rules_text);
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  std::mt19937 rng(perm_seed);
  std::shuffle(lines.begin(), lines.end(), rng);
  std::string text = facts_text;
  for (const std::string& l : lines) text += l + "\n";
  auto p = Parser::ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status();
  return std::move(p).value();
}

class RuleOrderInvariance : public ::testing::TestWithParam<uint32_t> {};

TEST_P(RuleOrderInvariance, PlainDatalogChaseIsOrderInvariant) {
  const std::string facts =
      "E(1, 2). E(2, 3). E(3, 1). P(1).\n";
  const std::string rules =
      "T(X, Y) :- E(X, Y).\n"
      "T(X, Z) :- T(X, Y), E(Y, Z).\n"
      "Reach(X) :- P(X).\n"
      "Reach(Y) :- Reach(X), E(X, Y).\n";
  Program reference = PermuteRules(rules, facts, 0);
  Instance ref_inst = Instance::FromProgram(reference);
  ASSERT_TRUE(datalog::Chase::Run(reference, &ref_inst, ChaseOptions()).ok());

  Program shuffled = PermuteRules(rules, facts, GetParam() + 1);
  Instance inst = Instance::FromProgram(shuffled);
  ASSERT_TRUE(datalog::Chase::Run(shuffled, &inst, ChaseOptions()).ok());
  EXPECT_EQ(ref_inst.ToString(), inst.ToString());
}

TEST_P(RuleOrderInvariance, ExistentialChaseCertainAnswersInvariant) {
  // With existentials, null *names* may differ across orders; certain
  // answers must not.
  const std::string facts =
      "PW(\"w1\", \"tom\"). PW(\"w2\", \"lou\").\n"
      "UW(\"std\", \"w1\"). UW(\"std\", \"w2\").\n"
      "WS(\"std\", \"helen\").\n";
  const std::string rules =
      "PU(U, P) :- PW(W, P), UW(U, W).\n"
      "SH(W, N, Z) :- WS(U, N), UW(U, W).\n"
      "Seen(P) :- PU(U, P).\n";
  Program a = PermuteRules(rules, facts, 1);
  Program b = PermuteRules(rules, facts, 2);
  for (const char* text :
       {"Q(U, P) :- PU(U, P).", "Q(W, N) :- SH(W, N, S).",
        "Q(P) :- Seen(P)."}) {
    auto qa_ = Parser::ParseQuery(text, a.mutable_vocab());
    auto qb = Parser::ParseQuery(text, b.mutable_vocab());
    ASSERT_TRUE(qa_.ok() && qb.ok());
    auto ans_a = qa::Answer(qa::Engine::kChase, a, *qa_);
    auto ans_b = qa::Answer(qa::Engine::kChase, b, *qb);
    ASSERT_TRUE(ans_a.ok() && ans_b.ok());
    // Compare display forms (vocabularies differ between programs).
    EXPECT_EQ(ans_a->ToString(*a.vocab()), ans_b->ToString(*b.vocab()))
        << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuleOrderInvariance,
                         ::testing::Range(0u, 8u));

TEST(EgdOrderIndependence, PermutedEgdsConverge) {
  const std::string facts =
      "F(\"k\", \"v\"). G(\"k\", \"w\").\n"
      "P(\"k\").\n";
  const std::string rules =
      "R(X, A, B) :- P(X).\n"
      "Y = A :- F(X, Y), R(X, A, B).\n"
      "Y = B :- G(X, Y), R(X, A, B).\n";
  Program a = PermuteRules(rules, facts, 3);
  Program b = PermuteRules(rules, facts, 7);
  Instance ia = Instance::FromProgram(a);
  Instance ib = Instance::FromProgram(b);
  ASSERT_TRUE(datalog::Chase::Run(a, &ia, ChaseOptions()).ok());
  ASSERT_TRUE(datalog::Chase::Run(b, &ib, ChaseOptions()).ok());
  // Both nulls resolve to the constants v and w in either order.
  uint32_t r_a = a.vocab()->FindPredicate("R");
  uint32_t r_b = b.vocab()->FindPredicate("R");
  ASSERT_EQ(ia.CountFacts(r_a), 1u);
  const datalog::Term* row_a = ia.Table(r_a)->Row(0);
  const datalog::Term* row_b = ib.Table(r_b)->Row(0);
  for (int i = 1; i <= 2; ++i) {
    EXPECT_TRUE(row_a[i].IsConstant());
    EXPECT_TRUE(row_b[i].IsConstant());
  }
  EXPECT_EQ(a.vocab()->ConstantValue(row_a[1].id()),
            b.vocab()->ConstantValue(row_b[1].id()));
}

TEST(RollupDrilldownDuality, EveryWardRoundTrips) {
  scenarios::SyntheticSpec spec;
  spec.wards_per_unit = 4;
  auto ontology = scenarios::BuildSyntheticOntology(spec);
  ASSERT_TRUE(ontology.ok());
  const md::DimensionInstance& inst =
      (*ontology)->FindDimension("SynHospital")->instance();
  for (const std::string& ward : inst.Members("SWard")) {
    auto ups = inst.RollUp(ward, "SUnit");
    ASSERT_TRUE(ups.ok());
    ASSERT_EQ(ups->size(), 1u);
    auto downs = inst.DrillDown((*ups)[0], "SWard");
    ASSERT_TRUE(downs.ok());
    EXPECT_NE(std::find(downs->begin(), downs->end(), ward), downs->end());
  }
}

TEST(MemoTransparency, MemoOnAndOffAgree) {
  auto ontology =
      scenarios::BuildHospitalOntology(scenarios::HospitalOptions{});
  ASSERT_TRUE(ontology.ok());
  auto program = (*ontology)->Compile();
  ASSERT_TRUE(program.ok());
  for (const char* text :
       {"Q(U, D, P) :- PatientUnit(U, D, P).",
        "Q(D) :- Shifts(\"W2\", D, \"Mark\", S)."}) {
    auto q = Parser::ParseQuery(text, program->vocab().get());
    ASSERT_TRUE(q.ok());
    qa::WsQaOptions with_memo;
    qa::WsQaOptions without_memo;
    without_memo.use_memo = false;
    qa::DeterministicWsQa a(*program, with_memo);
    qa::DeterministicWsQa b(*program, without_memo);
    auto ans_a = a.Answers(*q);
    auto ans_b = b.Answers(*q);
    ASSERT_TRUE(ans_a.ok() && ans_b.ok());
    auto sa = *ans_a;
    auto sb = *ans_b;
    std::sort(sa.begin(), sa.end());
    std::sort(sb.begin(), sb.end());
    EXPECT_EQ(sa, sb) << text;
    // Memoization saves work.
    EXPECT_LE(a.stats().resolution_steps, b.stats().resolution_steps);
  }
}

class ParserFuzz : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ParserFuzz, TruncatedAndMutatedInputNeverCrashes) {
  auto ontology =
      scenarios::BuildHospitalOntology(scenarios::HospitalOptions{});
  ASSERT_TRUE(ontology.ok());
  auto program = (*ontology)->Compile();
  ASSERT_TRUE(program.ok());
  const std::string corpus = program->ToString();
  std::mt19937 rng(GetParam() * 2654435761u + 17);
  for (int trial = 0; trial < 50; ++trial) {
    std::string text = corpus;
    // Truncate somewhere.
    text.resize(rng() % (text.size() + 1));
    // Flip a few characters.
    for (int k = 0; k < 3 && !text.empty(); ++k) {
      text[rng() % text.size()] =
          static_cast<char>(' ' + rng() % 95);
    }
    // Must return (ok or error), never crash or hang.
    auto result = Parser::ParseProgram(text);
    (void)result;
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(0u, 6u));

// --- Budget/fault robustness: truncation must be deterministic, ---
// --- monotone, and report-preserving ---

TEST(FaultProbeDeterminism, SameProbeTripsAtTheSameFact) {
  // Two runs with identically armed fault injectors must truncate at
  // identical instances — fault injection is a deterministic testing
  // tool, not a fuzzer.
  const char* text =
      "E(1, 2). E(2, 3). E(3, 4). E(4, 5).\n"
      "T(X, Y) :- E(X, Y).\n"
      "T(X, Z) :- T(X, Y), E(Y, Z).\n";
  auto run_with_probe = [&text]() {
    auto p = Parser::ParseProgram(text);
    EXPECT_TRUE(p.ok());
    FaultInjector faults;
    faults.Arm("chase:trigger", 4,
               Status::ResourceExhausted("injected trip"),
               FaultInjector::kAlways);
    ExecutionBudget budget;
    budget.set_fault_injector(&faults);
    ChaseOptions options;
    options.budget = &budget;
    Instance inst = Instance::FromProgram(*p);
    datalog::ChaseStats stats;
    EXPECT_TRUE(datalog::Chase::Run(*p, &inst, options, &stats).ok());
    EXPECT_EQ(stats.completeness, Completeness::kTruncated);
    return inst.ToString();
  };
  EXPECT_EQ(run_with_probe(), run_with_probe());
}

TEST(TruncationMonotonicity, BiggerBudgetsNestTheirInstances) {
  // D^{q,k} ⊆ D^{q,k+1} ⊆ … ⊆ D^q: increasing fact budgets produce a
  // chain of sound under-approximations (chase monotonicity).
  auto p = Parser::ParseProgram(
      "E(1, 2). E(2, 3). E(3, 4). E(4, 5). E(5, 1).\n"
      "T(X, Y) :- E(X, Y).\n"
      "T(X, Z) :- T(X, Y), E(Y, Z).\n");
  ASSERT_TRUE(p.ok());
  uint32_t t = p->vocab()->FindPredicate("T");
  std::vector<std::vector<std::string>> fact_sets;
  for (uint64_t cap : {2ull, 6ull, 12ull, 1000ull}) {
    ExecutionBudget budget;
    budget.set_max_facts(cap);
    ChaseOptions options;
    options.budget = &budget;
    Instance inst = Instance::FromProgram(*p);
    datalog::ChaseStats stats;
    ASSERT_TRUE(datalog::Chase::Run(*p, &inst, options, &stats).ok());
    std::vector<std::string> facts;
    for (const datalog::Atom& f : inst.Facts(t)) {
      facts.push_back(p->vocab()->AtomToString(f));
    }
    std::sort(facts.begin(), facts.end());
    fact_sets.push_back(std::move(facts));
  }
  for (size_t i = 1; i < fact_sets.size(); ++i) {
    EXPECT_TRUE(std::includes(fact_sets[i].begin(), fact_sets[i].end(),
                              fact_sets[i - 1].begin(),
                              fact_sets[i - 1].end()))
        << "budget " << i << " lost facts the smaller budget had";
  }
}

TEST(AssessorFaultIsolation, DegradedReportStaysWellFormed) {
  auto context =
      scenarios::BuildHospitalContext(scenarios::HospitalOptions{});
  ASSERT_TRUE(context.ok());
  FaultInjector faults;
  faults.Arm("assessor:relation", 1,
             Status::ResourceExhausted("injected overload"),
             FaultInjector::kAlways);
  quality::AssessOptions options;
  options.fault_injector = &faults;
  options.max_retries = 2;
  auto report = quality::Assessor(&*context).Assess(options);
  ASSERT_TRUE(report.ok()) << report.status();
  // The sole assessed relation is degraded after all three attempts, yet
  // the report still renders, carries the checks, and says why.
  ASSERT_EQ(report->degraded.size(), 1u);
  EXPECT_EQ(report->degraded[0].attempts, 3);
  EXPECT_TRUE(report->per_relation.empty());
  EXPECT_EQ(report->completeness, Completeness::kTruncated);
  EXPECT_NE(report->ToString().find("referential"), std::string::npos);
  EXPECT_NE(report->ToString().find("DEGRADED"), std::string::npos);
  EXPECT_NE(report->ToJson().find("injected overload"), std::string::npos);
}

TEST(AssessorDirtyTuples, ListsTableIComplement) {
  auto context =
      scenarios::BuildHospitalContext(scenarios::HospitalOptions{});
  ASSERT_TRUE(context.ok());
  quality::Assessor assessor(&*context);
  auto report = assessor.Assess();
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->dirty_tuples.size(), 1u);
  EXPECT_EQ(report->dirty_tuples[0].size(), 4u);  // Table I rows 3-6
  EXPECT_TRUE(report->dirty_tuples[0].Contains(
      {Value::Str("Sep/7-12:15"), Value::Str("Tom Waits"),
       Value::Real(37.7)}));
}

}  // namespace
}  // namespace mdqa
