#include "scenarios/synthetic.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "qa/engines.h"
#include "quality/assessor.h"

namespace mdqa::scenarios {
namespace {

TEST(Synthetic, OntologyBuildsAndValidates) {
  SyntheticSpec spec;
  auto ontology = BuildSyntheticOntology(spec);
  ASSERT_TRUE(ontology.ok()) << ontology.status();
  EXPECT_TRUE((*ontology)->ValidateReferential().ok());
  auto props = (*ontology)->Analyze();
  ASSERT_TRUE(props.ok()) << props.status();
  EXPECT_TRUE(props->weakly_sticky);
  EXPECT_FALSE(props->upward_only);  // downward rule included by default
}

TEST(Synthetic, UpwardOnlyVariant) {
  SyntheticSpec spec;
  spec.include_downward_rules = false;
  auto ontology = BuildSyntheticOntology(spec);
  ASSERT_TRUE(ontology.ok()) << ontology.status();
  auto props = (*ontology)->Analyze();
  ASSERT_TRUE(props.ok());
  EXPECT_TRUE(props->upward_only);
}

TEST(Synthetic, DeterministicAcrossBuilds) {
  SyntheticSpec spec;
  spec.patients = 7;
  auto a = BuildSyntheticOntology(spec);
  auto b = BuildSyntheticOntology(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*a)->ToString(), (*b)->ToString());
  spec.seed = 43;
  auto c = BuildSyntheticOntology(spec);
  ASSERT_TRUE(c.ok());
  EXPECT_NE((*a)->ToString(), (*c)->ToString());
}

TEST(Synthetic, ScalesWithSpec) {
  SyntheticSpec small;
  small.patients = 5;
  small.days = 3;
  SyntheticSpec large;
  large.patients = 40;
  large.days = 10;
  EXPECT_LT(EstimateFacts(small), EstimateFacts(large));
  auto a = BuildSyntheticOntology(small);
  auto b = BuildSyntheticOntology(large);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto pa = (*a)->Compile();
  auto pb = (*b)->Compile();
  ASSERT_TRUE(pa.ok());
  ASSERT_TRUE(pb.ok());
  EXPECT_LT(pa->facts().size(), pb->facts().size());
}

TEST(Synthetic, QualityPipelineEndToEnd) {
  SyntheticSpec spec;
  spec.patients = 12;
  spec.days = 4;
  auto context = BuildSyntheticContext(spec);
  ASSERT_TRUE(context.ok()) << context.status();
  quality::Assessor assessor(&*context);
  auto report = assessor.Assess();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->referential_check.ok());
  EXPECT_TRUE(report->constraint_check.ok());
  ASSERT_EQ(report->per_relation.size(), 1u);
  // Quality requires a certified (even) unit AND a B1 (even-unit ward)
  // thermometer: some but not all measurements qualify.
  EXPECT_EQ(report->per_relation[0].original_size,
            static_cast<size_t>(spec.patients * spec.days));
  EXPECT_GT(report->per_relation[0].quality_size, 0u);
  EXPECT_LT(report->per_relation[0].quality_size,
            report->per_relation[0].original_size);
  // Quality version is a subset of the original here (no completion).
  EXPECT_EQ(report->per_relation[0].common,
            report->per_relation[0].quality_size);
}

TEST(Synthetic, EnginesAgreeOnSyntheticQueries) {
  SyntheticSpec spec;
  spec.patients = 8;
  spec.days = 3;
  auto ontology = BuildSyntheticOntology(spec);
  ASSERT_TRUE(ontology.ok());
  auto program = (*ontology)->Compile();
  ASSERT_TRUE(program.ok());
  for (const char* text :
       {"Q(U, P) :- SPatientUnit(U, D, P).",
        "Q(P) :- SPatientUnit(\"su0\", D, P).",
        "Q(W, N) :- SShifts(W, D, N, S)."}) {
    auto q = datalog::Parser::ParseQuery(text, program->vocab().get());
    ASSERT_TRUE(q.ok()) << q.status();
    auto agreed = qa::CrossCheck(
        *program, *q, {qa::Engine::kChase, qa::Engine::kDeterministicWs});
    EXPECT_TRUE(agreed.ok()) << agreed.status();
  }
}

}  // namespace
}  // namespace mdqa::scenarios
