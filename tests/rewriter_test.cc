#include "qa/rewriter.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "qa/chase_qa.h"

namespace mdqa::qa {
namespace {

using datalog::ConjunctiveQuery;
using datalog::Instance;
using datalog::Parser;
using datalog::Program;

Program Parse(const std::string& text) {
  auto p = Parser::ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status();
  return std::move(p).value();
}

TEST(UcqRewriter, NoRulesMeansIdentity) {
  Program p = Parse("R(1, 2).");
  auto q = Parser::ParseQuery("Q(X) :- R(X, Y).", p.mutable_vocab());
  ASSERT_TRUE(q.ok());
  auto ucq = UcqRewriter::Rewrite(p, *q);
  ASSERT_TRUE(ucq.ok()) << ucq.status();
  EXPECT_EQ(ucq->size(), 1u);
}

TEST(UcqRewriter, SingleStepRewriting) {
  Program p = Parse(
      "SalesCity(\"c1\", 10). RegionCity(\"r1\", \"c1\").\n"
      "SalesRegion(R, A) :- SalesCity(C, A), RegionCity(R, C).\n");
  auto q = Parser::ParseQuery("Q(R, A) :- SalesRegion(R, A).",
                              p.mutable_vocab());
  ASSERT_TRUE(q.ok());
  RewriteStats stats;
  auto ucq = UcqRewriter::Rewrite(p, *q, RewriteOptions{}, &stats);
  ASSERT_TRUE(ucq.ok()) << ucq.status();
  EXPECT_EQ(ucq->size(), 2u);  // original + one rewriting
  // Evaluate on the raw EDB — no chase.
  Instance edb = Instance::FromProgram(p);
  auto answers = UcqRewriter::Answers(p, edb, *q);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 1u);
}

TEST(UcqRewriter, ChainOfRules) {
  Program p = Parse(
      "A(\"x\").\n"
      "B(X) :- A(X).\n"
      "C(X) :- B(X).\n"
      "D(X) :- C(X).\n");
  auto q = Parser::ParseQuery("Q(X) :- D(X).", p.mutable_vocab());
  ASSERT_TRUE(q.ok());
  auto ucq = UcqRewriter::Rewrite(p, *q);
  ASSERT_TRUE(ucq.ok());
  EXPECT_EQ(ucq->size(), 4u);  // D, C, B, A forms
  Instance edb = Instance::FromProgram(p);
  EXPECT_EQ(UcqRewriter::Answers(p, edb, *q)->size(), 1u);
}

TEST(UcqRewriter, ExistentialApplicabilityUnboundVariable) {
  // HasParent's second position is existential. Q(X) :- HasParent(X, Z)
  // with Z unshared rewrites to Person(X); asking for a specific parent
  // constant must NOT rewrite.
  Program p = Parse(
      "Person(\"ann\").\n"
      "HasParent(X, Z) :- Person(X).\n");
  auto open = Parser::ParseQuery("Q(X) :- HasParent(X, Z).",
                                 p.mutable_vocab());
  ASSERT_TRUE(open.ok());
  auto ucq = UcqRewriter::Rewrite(p, *open);
  ASSERT_TRUE(ucq.ok());
  EXPECT_EQ(ucq->size(), 2u);
  Instance edb = Instance::FromProgram(p);
  EXPECT_EQ(UcqRewriter::Answers(p, edb, *open)->size(), 1u);

  auto grounded = Parser::ParseQuery("Q(X) :- HasParent(X, \"eve\").",
                                     p.mutable_vocab());
  ASSERT_TRUE(grounded.ok());
  auto ucq2 = UcqRewriter::Rewrite(p, *grounded);
  ASSERT_TRUE(ucq2.ok());
  EXPECT_EQ(ucq2->size(), 1u);  // applicability blocks the rewriting
  EXPECT_EQ(UcqRewriter::Answers(p, edb, *grounded)->size(), 0u);
}

TEST(UcqRewriter, ExistentialApplicabilityAnswerVariable) {
  Program p = Parse(
      "Person(\"ann\").\n"
      "HasParent(X, Z) :- Person(X).\n");
  // Z is an answer variable: certain answers cannot bind it to the null,
  // so the rewriting must not apply.
  auto q = Parser::ParseQuery("Q(X, Z) :- HasParent(X, Z).",
                              p.mutable_vocab());
  ASSERT_TRUE(q.ok());
  auto ucq = UcqRewriter::Rewrite(p, *q);
  ASSERT_TRUE(ucq.ok());
  EXPECT_EQ(ucq->size(), 1u);
}

TEST(UcqRewriter, ExistentialApplicabilitySharedVariable) {
  Program p = Parse(
      "Person(\"ann\"). Rich(\"bob\").\n"
      "HasParent(X, Z) :- Person(X).\n");
  // Z is shared with Rich(Z): the null would have to be "bob" — blocked.
  auto q = Parser::ParseQuery("Q(X) :- HasParent(X, Z), Rich(Z).",
                              p.mutable_vocab());
  ASSERT_TRUE(q.ok());
  auto ucq = UcqRewriter::Rewrite(p, *q);
  ASSERT_TRUE(ucq.ok());
  EXPECT_EQ(ucq->size(), 1u);
  Instance edb = Instance::FromProgram(p);
  EXPECT_EQ(UcqRewriter::Answers(p, edb, *q)->size(), 0u);
}

TEST(UcqRewriter, FactorizationEnablesRewriting) {
  // Two atoms must be unified before the existential step applies.
  Program p = Parse(
      "Person(\"ann\").\n"
      "HasParent(X, Z) :- Person(X).\n");
  auto q = Parser::ParseQuery(
      "Q(X) :- HasParent(X, Z), HasParent(X2, Z).", p.mutable_vocab());
  ASSERT_TRUE(q.ok());
  Instance edb = Instance::FromProgram(p);
  auto answers = UcqRewriter::Answers(p, edb, *q);
  ASSERT_TRUE(answers.ok()) << answers.status();
  // Chase semantics: HasParent(ann, n1) joins with itself, so X = ann.
  EXPECT_EQ(answers->size(), 1u);
}

TEST(UcqRewriter, ComparisonsSurviveRewriting) {
  Program p = Parse(
      "M(\"a\", 5). M(\"b\", 50).\n"
      "Big(X, V) :- M(X, V), V > 10.\n");
  auto q = Parser::ParseQuery("Q(X) :- Big(X, V).", p.mutable_vocab());
  ASSERT_TRUE(q.ok());
  Instance edb = Instance::FromProgram(p);
  auto answers = UcqRewriter::Answers(p, edb, *q);
  ASSERT_TRUE(answers.ok()) << answers.status();
  EXPECT_EQ(answers->size(), 1u);
}

TEST(UcqRewriter, MultiAtomHeadsUnsupported) {
  Program p = Parse("IU(I, U), PU(U, P) :- D(I, P).\n");
  auto q = Parser::ParseQuery("Q(U) :- PU(U, P).", p.mutable_vocab());
  ASSERT_TRUE(q.ok());
  auto ucq = UcqRewriter::Rewrite(p, *q);
  ASSERT_FALSE(ucq.ok());
  EXPECT_EQ(ucq.status().code(), StatusCode::kUnimplemented);
}

TEST(UcqRewriter, RecursiveProgramExhaustsBudget) {
  Program p = Parse("T(X, Z) :- T(X, Y), T(Y, Z).\n");
  auto q = Parser::ParseQuery("Q(X, Z) :- T(X, Z).", p.mutable_vocab());
  ASSERT_TRUE(q.ok());
  RewriteOptions options;
  options.max_queries = 50;
  RewriteStats stats;
  auto ucq = UcqRewriter::Rewrite(p, *q, options, &stats);
  ASSERT_FALSE(ucq.ok());
  EXPECT_EQ(ucq.status().code(), StatusCode::kResourceExhausted);
}

TEST(UcqRewriter, AgreesWithChaseOnHierarchy) {
  Program p = Parse(
      "PW(\"w1\", \"tom\"). PW(\"w2\", \"lou\"). PW(\"w3\", \"sue\").\n"
      "UW(\"std\", \"w1\"). UW(\"std\", \"w2\"). UW(\"icu\", \"w3\").\n"
      "PU(U, P) :- PW(W, P), UW(U, W).\n");
  for (const char* text :
       {"Q(U, P) :- PU(U, P).", "Q(P) :- PU(\"std\", P).",
        "Q(U) :- PU(U, \"sue\")."}) {
    auto q = Parser::ParseQuery(text, p.mutable_vocab());
    ASSERT_TRUE(q.ok());
    Instance edb = Instance::FromProgram(p);
    auto via_rewrite = UcqRewriter::Answers(p, edb, *q);
    ASSERT_TRUE(via_rewrite.ok()) << via_rewrite.status();
    auto chase = ChaseQa::Create(p);
    ASSERT_TRUE(chase.ok());
    auto via_chase = chase->Answers(*q);
    ASSERT_TRUE(via_chase.ok());
    auto a = via_rewrite.value();
    auto b = via_chase.value();
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << text;
  }
}

TEST(UcqRewriter, StatsAreReported) {
  Program p = Parse(
      "A(\"x\").\n"
      "B(X) :- A(X).\n");
  auto q = Parser::ParseQuery("Q(X) :- B(X).", p.mutable_vocab());
  ASSERT_TRUE(q.ok());
  RewriteStats stats;
  auto ucq = UcqRewriter::Rewrite(p, *q, RewriteOptions{}, &stats);
  ASSERT_TRUE(ucq.ok());
  EXPECT_EQ(stats.kept, 2u);
  EXPECT_GE(stats.generated, 2u);
  EXPECT_GE(stats.iterations, 1u);
}

}  // namespace
}  // namespace mdqa::qa
