// Parameterized sweep over chase configurations: every combination of
// {semi-naive, naive} × {restricted, semi-oblivious} × {interleaved,
// post, off EGDs} must produce the same certain answers on a battery of
// programs (post/off EGD modes only where semantics permit).

#include <gtest/gtest.h>

#include <tuple>

#include "datalog/chase.h"
#include "datalog/parser.h"
#include "qa/chase_qa.h"
#include "scenarios/hospital.h"

namespace mdqa::datalog {
namespace {

struct Case {
  const char* name;
  const char* program;
  const char* query;
  bool egds_matter;  // kOff would change answers; skip that mode
};

const Case kCases[] = {
    {"closure",
     "E(1, 2). E(2, 3). E(3, 4).\n"
     "T(X, Y) :- E(X, Y).\n"
     "T(X, Z) :- T(X, Y), E(Y, Z).\n",
     "Q(X, Y) :- T(X, Y).", false},
    {"hierarchy",
     "PW(\"w1\", \"tom\"). PW(\"w2\", \"lou\").\n"
     "UW(\"std\", \"w1\"). UW(\"std\", \"w2\").\n"
     "PU(U, P) :- PW(W, P), UW(U, W).\n",
     "Q(U, P) :- PU(U, P).", false},
    {"downward-existential",
     "WS(\"std\", \"helen\"). UW(\"std\", \"w1\"). UW(\"std\", \"w2\").\n"
     "SH(W, N, Z) :- WS(U, N), UW(U, W).\n",
     "Q(W, N) :- SH(W, N, S).", false},
    {"egd-resolution",
     "P(\"a\"). F(\"a\", \"v\").\n"
     "R(X, Z) :- P(X).\n"
     "Y = Z :- F(X, Y), R(X, Z).\n",
     "Q(X, Z) :- R(X, Z).", true},
    {"multi-head",
     "D(\"h\", \"d\", \"p\").\n"
     "IU(I, U), PU2(U, D, P) :- D(I, D, P).\n",
     "Q(I, D, P) :- IU(I, U), PU2(U, D, P).", false},
};

using SweepParam = std::tuple<int /*case*/, bool /*semi_naive*/,
                              bool /*restricted*/, int /*egd mode*/>;

class ChaseConfigSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ChaseConfigSweep, CertainAnswersInvariant) {
  const Case& c = kCases[std::get<0>(GetParam())];
  ChaseOptions options;
  options.semi_naive = std::get<1>(GetParam());
  options.restricted = std::get<2>(GetParam());
  options.egd_mode = static_cast<EgdMode>(std::get<3>(GetParam()));
  if (c.egds_matter && options.egd_mode == EgdMode::kOff) {
    GTEST_SKIP() << "EGD-off changes semantics for this case";
  }

  auto reference_program = Parser::ParseProgram(c.program);
  ASSERT_TRUE(reference_program.ok());
  auto reference_qa = qa::ChaseQa::Create(*reference_program);
  ASSERT_TRUE(reference_qa.ok()) << reference_qa.status();
  auto reference_query =
      Parser::ParseQuery(c.query, reference_program->vocab().get());
  ASSERT_TRUE(reference_query.ok());
  auto expected = reference_qa->Answers(*reference_query);
  ASSERT_TRUE(expected.ok());

  auto program = Parser::ParseProgram(c.program);
  ASSERT_TRUE(program.ok());
  auto qa = qa::ChaseQa::Create(*program, options);
  ASSERT_TRUE(qa.ok()) << qa.status();
  auto query = Parser::ParseQuery(c.query, program->vocab().get());
  ASSERT_TRUE(query.ok());
  auto actual = qa->Answers(*query);
  ASSERT_TRUE(actual.ok()) << actual.status();

  // Compare through display strings (independent vocabularies).
  auto render = [](const std::vector<std::vector<Term>>& tuples,
                   const Vocabulary& vocab) {
    std::vector<std::string> out;
    for (const auto& t : tuples) {
      std::string row;
      for (Term x : t) row += vocab.TermToDisplayString(x) + "|";
      out.push_back(row);
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(render(*actual, *program->vocab()),
            render(*expected, *reference_program->vocab()))
      << c.name;
}

std::string SweepName(const ::testing::TestParamInfo<SweepParam>& info) {
  static const char* const kEgdNames[] = {"EgdOff", "EgdPost",
                                          "EgdInterleaved"};
  std::string name = kCases[std::get<0>(info.param)].name;
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  name += std::get<1>(info.param) ? "_SemiNaive" : "_Naive";
  name += std::get<2>(info.param) ? "_Restricted" : "_SemiOblivious";
  name += "_";
  name += kEgdNames[std::get<3>(info.param)];
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, ChaseConfigSweep,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Bool(),
                       ::testing::Bool(), ::testing::Values(0, 1, 2)),
    SweepName);

// The hospital ontology under every configuration: Table II invariant.
class HospitalConfigSweep
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(HospitalConfigSweep, TableTwoInvariant) {
  auto ontology =
      scenarios::BuildHospitalOntology(scenarios::HospitalOptions{});
  ASSERT_TRUE(ontology.ok());
  auto program = (*ontology)->Compile();
  ASSERT_TRUE(program.ok());
  ChaseOptions options;
  options.semi_naive = std::get<0>(GetParam());
  options.restricted = std::get<1>(GetParam());
  auto qa = qa::ChaseQa::Create(*program, options);
  ASSERT_TRUE(qa.ok()) << qa.status();
  auto q = Parser::ParseQuery("Q(U, D, P) :- PatientUnit(U, D, P).",
                              program->vocab().get());
  ASSERT_TRUE(q.ok());
  auto answers = qa->Answers(*q);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 6u);  // the six concrete patient-unit facts
}

std::string HospitalSweepName(
    const ::testing::TestParamInfo<std::tuple<bool, bool>>& info) {
  std::string name = std::get<0>(info.param) ? "SemiNaive" : "Naive";
  name += std::get<1>(info.param) ? "Restricted" : "SemiOblivious";
  return name;
}

INSTANTIATE_TEST_SUITE_P(Configs, HospitalConfigSweep,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool()),
                         HospitalSweepName);

}  // namespace
}  // namespace mdqa::datalog
