// Classification tests on the standard witness programs from the
// Datalog± literature (Cali-Gottlob-Pieris) plus the paper's MD rules.

#include "datalog/analysis.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"

namespace mdqa::datalog {
namespace {

ProgramAnalysis Analyze(const std::string& text) {
  auto p = Parser::ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status();
  return ProgramAnalysis(*p);
}

TEST(Analysis, PlainDatalogIsEverything) {
  // No existentials: weakly acyclic, sticky head-propagation trivial.
  auto a = Analyze("T(X, Y) :- E(X, Y).\n");
  EXPECT_TRUE(a.IsLinear());
  EXPECT_TRUE(a.IsGuarded());
  EXPECT_TRUE(a.IsWeaklyAcyclic());
  EXPECT_TRUE(a.IsSticky());
  EXPECT_TRUE(a.IsWeaklySticky());
  EXPECT_TRUE(a.AffectedPositions().empty());
  EXPECT_TRUE(a.InfiniteRankPositions().empty());
}

TEST(Analysis, TransitiveClosureJoinIsNotLinear) {
  auto a = Analyze(
      "T(X, Y) :- E(X, Y).\n"
      "T(X, Z) :- T(X, Y), E(Y, Z).\n");
  EXPECT_FALSE(a.IsLinear());
  EXPECT_TRUE(a.IsWeaklyAcyclic());
  // Y is marked (dropped from the head) and occurs twice -> not sticky.
  EXPECT_FALSE(a.IsSticky());
  // But every position has finite rank -> weakly sticky.
  EXPECT_TRUE(a.IsWeaklySticky());
}

TEST(Analysis, LinearExistentialChain) {
  // R(x,y) -> exists z R(y,z): infinite chase, linear, sticky.
  auto a = Analyze("R(Y, Z) :- R(X, Y).\n");
  EXPECT_TRUE(a.IsLinear());
  EXPECT_TRUE(a.IsGuarded());
  EXPECT_FALSE(a.IsWeaklyAcyclic());
  EXPECT_TRUE(a.IsSticky());  // X dropped but occurs once
  EXPECT_TRUE(a.IsWeaklySticky());
  EXPECT_EQ(a.InfiniteRankPositions().size(), 2u);  // R[0], R[1]
}

TEST(Analysis, AffectedPositionsPropagate) {
  auto a = Analyze(
      "P(X, Z) :- Q(X).\n"    // Z existential: P[1] affected
      "S(Y) :- P(X, Y).\n");  // Y only at affected P[1]: S[0] affected
  auto affected = a.AffectedPositions();
  ASSERT_EQ(affected.size(), 2u);
}

TEST(Analysis, NonAffectedWhenVariableAlsoAtSafePosition) {
  auto a = Analyze(
      "P(X, Z) :- Q(X).\n"
      "S(Y) :- P(X, Y), Q(Y).\n");  // Y also at Q[0], never affected
  // Only P[1] is affected.
  EXPECT_EQ(a.AffectedPositions().size(), 1u);
}

TEST(Analysis, StickyWitnessFromTheLiterature) {
  // Σ = { T(x,y),T(y,z) -> exists w T(w,x) } — the repeated variable y is
  // marked? y does not occur in the head, occurs twice -> NOT sticky.
  auto not_sticky = Analyze("T(W, X) :- T(X, Y), T(Y, Z).\n");
  EXPECT_FALSE(not_sticky.IsSticky());

  // Σ = { R(x,y) -> exists z R(y,z); R(x,y),R(y,x) -> S(x) } is handled
  // below; here the simple sticky case: join variable kept in the head.
  auto sticky = Analyze("S(X, Y, Z) :- R(X, Y), P(Y, Z).\n");
  EXPECT_TRUE(sticky.IsSticky());
}

TEST(Analysis, MarkingPropagatesThroughHeads) {
  // From CGP: r1: P(x,y) -> P2(y,x); r2: P2(x,y) -> Q(x).
  // In r2, y is dropped -> P2[1] is a marked position; back in r1 the
  // head variable x lands on P2[1], so x becomes marked in r1's body.
  auto a = Analyze(
      "P2(Y, X) :- P(X, Y).\n"
      "Q(X) :- P2(X, Y).\n");
  // x occurs once in r1's body, so the set is still sticky.
  EXPECT_TRUE(a.IsSticky());
  EXPECT_TRUE(a.IsMarkedIn(0, a.tgds()[0].BodyVariables()[0]) ||
              a.IsMarkedIn(0, a.tgds()[0].BodyVariables()[1]));
}

TEST(Analysis, WeaklyStickyButNotSticky) {
  // Repeated marked variable whose positions all have finite rank.
  auto a = Analyze(
      "S(X) :- R(X, Y), P(Y, Z).\n");  // Y,Z marked; Y repeated
  EXPECT_FALSE(a.IsSticky());
  EXPECT_TRUE(a.IsWeaklyAcyclic());  // no existentials at all here
  EXPECT_TRUE(a.IsWeaklySticky());
}

TEST(Analysis, NotWeaklySticky) {
  // The infinite-rank generator feeds the join positions: R's positions
  // have infinite rank, and the marked variable Y of the join rule
  // occurs only there.
  auto p = Parser::ParseProgram(
      "R(Y, Z) :- R(X, Y).\n"
      "Q(X) :- R(X, Y), R(Y, X2).\n");
  ASSERT_TRUE(p.ok());
  ProgramAnalysis a(*p);
  EXPECT_FALSE(a.IsWeaklyAcyclic());
  EXPECT_FALSE(a.IsSticky());
  EXPECT_FALSE(a.IsWeaklySticky());
  std::string report = a.Report(*p->vocab());
  EXPECT_NE(report.find("class"), std::string::npos);
  EXPECT_NE(report.find("violation"), std::string::npos);
}

TEST(Analysis, PaperRule7ShapeIsWeaklySticky) {
  // Rule (7) + (8): the W join is marked in (7) (W dropped from head),
  // repeated, but all positions are finite-rank (dimensions are closed).
  auto a = Analyze(
      "PatientUnit(U, D, P) :- PatientWard(W, D, P), UnitWard(U, W).\n"
      "Shifts(W, D, N, Z) :- WorkingSchedules(U, D, N, T), UnitWard(U, W).\n");
  EXPECT_FALSE(a.IsSticky());
  EXPECT_TRUE(a.IsWeaklySticky());
  EXPECT_TRUE(a.IsWeaklyAcyclic());
}

TEST(Analysis, GuardedDetection) {
  auto guarded = Analyze("S(X, Y) :- R(X, Y, Z), P(X, Y).\n");
  EXPECT_TRUE(guarded.IsGuarded());
  EXPECT_FALSE(guarded.IsLinear());
  auto unguarded = Analyze("S(X) :- R(X, Y), P(Y, Z).\n");
  EXPECT_FALSE(unguarded.IsGuarded());
}

TEST(Analysis, GuardedImpliesWeaklyGuarded) {
  auto a = Analyze("S(X, Y) :- R(X, Y, Z), P(X, Y).\n");
  EXPECT_TRUE(a.IsGuarded());
  EXPECT_TRUE(a.IsWeaklyGuarded());
}

TEST(Analysis, WeaklyGuardedButNotGuarded) {
  // Y is the only harmful variable (occurs only at the affected P[1]);
  // the P-atom guards it. X and W touch unaffected positions.
  auto a = Analyze(
      "P(X, Z) :- Q(X).\n"
      "S(X) :- P(X, Y), R(X, W).\n");
  EXPECT_FALSE(a.IsGuarded());
  EXPECT_TRUE(a.IsWeaklyGuarded());
}

TEST(Analysis, NotWeaklyGuarded) {
  // Two harmful variables (Y, Y2) never share an atom.
  auto a = Analyze(
      "P(X, Z) :- Q(X).\n"
      "S(X) :- P(X, Y), P(X, Y2).\n");
  EXPECT_FALSE(a.IsGuarded());
  EXPECT_FALSE(a.IsWeaklyGuarded());
  EXPECT_NE(a.ClassName().find("weakly"), std::string::npos);  // ws holds
}

TEST(Analysis, NoAffectedPositionsMakesEverythingWeaklyGuarded) {
  // Plain Datalog: no nulls anywhere, the empty harmful set is guarded
  // by any atom.
  auto a = Analyze("S(X) :- R(X, Y), P(Y, Z).\n");
  EXPECT_TRUE(a.IsWeaklyGuarded());
}

TEST(Analysis, WeakAcyclicityDistinguishesNormalCycles) {
  // A cycle through normal edges only is weakly acyclic.
  auto normal_cycle = Analyze(
      "A(X) :- B(X).\n"
      "B(X) :- A(X).\n");
  EXPECT_TRUE(normal_cycle.IsWeaklyAcyclic());

  // A cycle through a special edge is not.
  auto special_cycle = Analyze("A(Y, Z) :- A(X, Y).\n");
  EXPECT_FALSE(special_cycle.IsWeaklyAcyclic());

  // A frontier-free existential rule contributes no edges at all: the
  // restricted chase trivially terminates on it.
  auto frontier_free = Analyze("A(Y) :- A(X).\n");
  EXPECT_TRUE(frontier_free.IsWeaklyAcyclic());
}

TEST(Analysis, InfiniteRankPropagatesDownstream) {
  auto a = Analyze(
      "R(Y, Z) :- R(X, Y).\n"
      "S(X) :- R(X, Y).\n");  // S[0] fed from infinite-rank R[0]
  EXPECT_TRUE(a.IsInfiniteRank(
      Position{a.tgds()[1].head[0].predicate, 0}));
}

TEST(Analysis, ClassNameSummarizes) {
  EXPECT_NE(Analyze("T(X,Y) :- E(X,Y).").ClassName().find("linear"),
            std::string::npos);
  EXPECT_NE(Analyze("R(Y, Z) :- R(X, Y).\n"
                    "Q(X) :- R(X, Y), R(Y, X2).\n")
                .ClassName()
                .find("none"),
            std::string::npos);
}

TEST(Analysis, EgdsAndConstraintsAreIgnored) {
  auto a = Analyze(
      "T(X, Y) :- E(X, Y).\n"
      "X = Y :- E(X, Y), E(Y, X).\n"
      "! :- E(X, X).\n");
  EXPECT_EQ(a.tgds().size(), 1u);
  EXPECT_TRUE(a.IsSticky());
}

TEST(StickinessViolations, PerRulePerVariableWitnesses) {
  // Rule #1 joins the marked variable Y at two infinite-rank positions
  // (R[0] and R[1] both have infinite rank through rule #0's special
  // edges), so the witness breaks weak stickiness too.
  auto a = Analyze(
      "R(Y, Z) :- R(X, Y).\n"
      "Q(X) :- R(X, Y), R(Y, X2).\n");
  ASSERT_EQ(a.StickinessViolations().size(), 1u);
  const StickinessViolation& v = a.StickinessViolations()[0];
  EXPECT_EQ(v.rule_index, 1u);
  EXPECT_TRUE(v.breaks_weak_stickiness);
  ASSERT_EQ(v.positions.size(), 2u);
  // Body order: Y sits at R[1] of the first atom, R[0] of the second.
  EXPECT_EQ(v.positions[0].index, 1u);
  EXPECT_EQ(v.positions[1].index, 0u);
  for (Position p : v.positions) EXPECT_TRUE(a.IsInfiniteRank(p));
}

TEST(StickinessViolations, FiniteRankWitnessBreaksStickinessOnly) {
  // Transitive closure: Y is marked and repeated, but there are no
  // existentials so every position has finite rank.
  auto a = Analyze(
      "T(X, Y) :- E(X, Y).\n"
      "T(X, Z) :- T(X, Y), E(Y, Z).\n");
  ASSERT_EQ(a.StickinessViolations().size(), 1u);
  EXPECT_EQ(a.StickinessViolations()[0].rule_index, 1u);
  EXPECT_FALSE(a.StickinessViolations()[0].breaks_weak_stickiness);
  EXPECT_FALSE(a.IsSticky());
  EXPECT_TRUE(a.IsWeaklySticky());
}

TEST(AnalysisReport, EmptyProgramSaysVacuous) {
  auto a = Analyze("P(\"a\").\n");
  EXPECT_EQ(a.Report(*Parser::ParseProgram("P(\"a\").")->vocab()),
            "class: (no TGDs — every class holds vacuously)\n");
}

TEST(AnalysisReport, RendersViolations) {
  auto p = Parser::ParseProgram(
      "R(Y, Z) :- R(X, Y).\n"
      "Q(X) :- R(X, Y), R(Y, X2).\n");
  ASSERT_TRUE(p.ok());
  std::string report = ProgramAnalysis(*p).Report(*p->vocab());
  EXPECT_NE(report.find("violation: rule #1"), std::string::npos);
  EXPECT_NE(report.find("repeated marked variable Y"), std::string::npos);
  EXPECT_NE(report.find("breaks weak stickiness"), std::string::npos);

  auto tc = Parser::ParseProgram(
      "T(X, Y) :- E(X, Y).\n"
      "T(X, Z) :- T(X, Y), E(Y, Z).\n");
  ASSERT_TRUE(tc.ok());
  EXPECT_NE(ProgramAnalysis(*tc).Report(*tc->vocab())
                .find("breaks stickiness only"),
            std::string::npos);
}

}  // namespace
}  // namespace mdqa::datalog
