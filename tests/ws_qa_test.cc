#include "qa/deterministic_ws.h"

#include <gtest/gtest.h>

#include <tuple>

#include "datalog/parser.h"

namespace mdqa::qa {
namespace {

using datalog::Parser;
using datalog::Program;

Program Parse(const std::string& text) {
  auto p = Parser::ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status();
  return std::move(p).value();
}

TEST(DeterministicWsQa, ExtensionalOnly) {
  Program p = Parse("R(1, 2). R(3, 4).");
  DeterministicWsQa qa(p);
  auto q = Parser::ParseQuery("Q(X, Y) :- R(X, Y).", p.mutable_vocab());
  ASSERT_TRUE(q.ok());
  auto answers = qa.Answers(*q);
  ASSERT_TRUE(answers.ok()) << answers.status();
  EXPECT_EQ(answers->size(), 2u);
  EXPECT_EQ(qa.stats().rule_applications, 0u);
}

TEST(DeterministicWsQa, SingleRuleDerivation) {
  Program p = Parse(
      "E(1, 2).\n"
      "T(X, Y) :- E(X, Y).\n");
  DeterministicWsQa qa(p);
  auto q = Parser::ParseQuery("Q(X, Y) :- T(X, Y).", p.mutable_vocab());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(qa.Answers(*q)->size(), 1u);
  EXPECT_GE(qa.stats().facts_materialized, 1u);
}

TEST(DeterministicWsQa, RecursiveDerivationChain) {
  Program p = Parse(
      "E(1, 2). E(2, 3). E(3, 4). E(4, 5).\n"
      "T(X, Y) :- E(X, Y).\n"
      "T(X, Z) :- T(X, Y), E(Y, Z).\n");
  DeterministicWsQa qa(p);
  auto q = Parser::ParseQuery("Q(Y) :- T(1, Y).", p.mutable_vocab());
  ASSERT_TRUE(q.ok());
  auto answers = qa.Answers(*q);
  ASSERT_TRUE(answers.ok()) << answers.status();
  EXPECT_EQ(answers->size(), 4u);
}

TEST(DeterministicWsQa, BooleanAcceptsAndRejects) {
  Program p = Parse(
      "E(1, 2). E(2, 3).\n"
      "T(X, Y) :- E(X, Y).\n"
      "T(X, Z) :- T(X, Y), E(Y, Z).\n");
  DeterministicWsQa qa(p);
  auto yes = Parser::ParseQuery("Q() :- T(1, 3).", p.mutable_vocab());
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(*qa.AnswerBoolean(*yes));
  auto no = Parser::ParseQuery("Q() :- T(3, 1).", p.mutable_vocab());
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(*qa.AnswerBoolean(*no));
}

TEST(DeterministicWsQa, ExistentialNullsSupportJoins) {
  // The null invented for HasParent must join with Person derived from it.
  Program p = Parse(
      "Person(\"ann\").\n"
      "HasParent(X, Z) :- Person(X).\n"
      "Person(Z) :- HasParent(X, Z).\n");
  DeterministicWsQa qa(p);
  auto q = Parser::ParseQuery("Q() :- HasParent(\"ann\", Z), Person(Z).",
                              p.mutable_vocab());
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(*qa.AnswerBoolean(*q));
}

TEST(DeterministicWsQa, GroundGoalAtExistentialPositionIsDead) {
  // T("x") cannot be proven via the existential rule: the invented null
  // never equals "x".
  Program p = Parse(
      "S(\"a\").\n"
      "T(Z) :- S(X).\n");
  DeterministicWsQa qa(p);
  auto q = Parser::ParseQuery("Q() :- T(\"x\").", p.mutable_vocab());
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(*qa.AnswerBoolean(*q));
  // But the existentially quantified query holds.
  auto q2 = Parser::ParseQuery("Q() :- T(Z).", p.mutable_vocab());
  ASSERT_TRUE(q2.ok());
  EXPECT_TRUE(*qa.AnswerBoolean(*q2));
}

TEST(DeterministicWsQa, CertainVersusPossibleAnswers) {
  Program p = Parse(
      "Person(\"ann\").\n"
      "HasParent(X, Z) :- Person(X).\n");
  DeterministicWsQa qa(p);
  auto q = Parser::ParseQuery("Q(Z) :- HasParent(\"ann\", Z).",
                              p.mutable_vocab());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(qa.Answers(*q)->size(), 0u);
  EXPECT_EQ(qa.PossibleAnswers(*q)->size(), 1u);
}

TEST(DeterministicWsQa, MultiAtomHeadFiresJointly) {
  Program p = Parse(
      "D(\"h\", \"d\", \"p\").\n"
      "IU(I, U), PU(U, D, P) :- D(I, D, P).\n");
  DeterministicWsQa qa(p);
  auto q = Parser::ParseQuery("Q() :- IU(\"h\", U), PU(U, \"d\", \"p\").",
                              p.mutable_vocab());
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(*qa.AnswerBoolean(*q));
}

TEST(DeterministicWsQa, RestrictedFiringSkipsSatisfiedHeads) {
  Program p = Parse(
      "Person(\"ann\"). HasParent(\"ann\", \"eve\").\n"
      "HasParent(X, Z) :- Person(X).\n");
  DeterministicWsQa qa(p);
  auto q = Parser::ParseQuery("Q(Z) :- HasParent(\"ann\", Z).",
                              p.mutable_vocab());
  ASSERT_TRUE(q.ok());
  auto answers = qa.Answers(*q);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 1u);  // just "eve"; no null invented
  EXPECT_EQ(qa.stats().facts_materialized, 0u);
}

TEST(DeterministicWsQa, GoalDirectednessSkipsIrrelevantRules) {
  // The query never touches the U-chain; its rules must not fire.
  Program p = Parse(
      "A(1). U0(1).\n"
      "B(X) :- A(X).\n"
      "U1(X) :- U0(X).\n"
      "U2(X) :- U1(X).\n"
      "U3(X) :- U2(X).\n");
  DeterministicWsQa qa(p);
  auto q = Parser::ParseQuery("Q(X) :- B(X).", p.mutable_vocab());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(qa.Answers(*q)->size(), 1u);
  EXPECT_EQ(qa.stats().facts_materialized, 1u);  // only B(1)
  uint32_t u3 = p.vocab()->FindPredicate("U3");
  EXPECT_EQ(qa.working_instance().CountFacts(u3), 0u);
}

TEST(DeterministicWsQa, DepthBoundTruncatesDeepProofs) {
  Program p = Parse(
      "E(1, 2). E(2, 3). E(3, 4). E(4, 5).\n"
      "T(X, Y) :- E(X, Y).\n"
      "T(X, Z) :- T(X, Y), E(Y, Z).\n");
  WsQaOptions options;
  options.max_depth = 1;  // only one nested rule application
  DeterministicWsQa qa(p, options);
  auto q = Parser::ParseQuery("Q() :- T(1, 5).", p.mutable_vocab());
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(*qa.AnswerBoolean(*q));  // needs depth 4
  DeterministicWsQa deep(p);            // auto depth is ample
  auto q2 = Parser::ParseQuery("Q() :- T(1, 5).", p.mutable_vocab());
  ASSERT_TRUE(q2.ok());
  EXPECT_TRUE(*deep.AnswerBoolean(*q2));
}

TEST(DeterministicWsQa, StepBudgetSurfacesResourceExhausted) {
  Program p = Parse(
      "E(1, 2). E(2, 3). E(3, 4).\n"
      "T(X, Y) :- E(X, Y).\n"
      "T(X, Z) :- T(X, Y), T(Y, Z).\n");
  WsQaOptions options;
  options.max_steps = 5;
  DeterministicWsQa qa(p, options);
  auto q = Parser::ParseQuery("Q(X, Y) :- T(X, Y).", p.mutable_vocab());
  ASSERT_TRUE(q.ok());
  auto answers = qa.Answers(*q);
  ASSERT_FALSE(answers.ok());
  EXPECT_EQ(answers.status().code(), StatusCode::kResourceExhausted);
}

TEST(DeterministicWsQa, InfiniteProgramStaysBounded) {
  // The chase is infinite, but the bounded proof search terminates and
  // answers the query correctly.
  Program p = Parse(
      "R(1, 2).\n"
      "R(Y, Z) :- R(X, Y).\n");
  DeterministicWsQa qa(p);
  auto q = Parser::ParseQuery("Q() :- R(2, W).", p.mutable_vocab());
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(*qa.AnswerBoolean(*q));
  auto no = Parser::ParseQuery("Q() :- R(2, 1).", p.mutable_vocab());
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(*qa.AnswerBoolean(*no));
}

// Option sweep: memoization on/off and a range of depth bounds at or
// above the needed depth must not change answers.
class WsOptionSweep
    : public ::testing::TestWithParam<std::tuple<bool, uint32_t>> {};

TEST_P(WsOptionSweep, AnswersInvariantAcrossConfigs) {
  Program p = Parse(
      "E(1, 2). E(2, 3). E(3, 4). E(4, 5).\n"
      "T(X, Y) :- E(X, Y).\n"
      "T(X, Z) :- T(X, Y), E(Y, Z).\n");
  WsQaOptions options;
  options.use_memo = std::get<0>(GetParam());
  options.max_depth = std::get<1>(GetParam());
  DeterministicWsQa qa(p, options);
  auto q = Parser::ParseQuery("Q(Y) :- T(1, Y).", p.mutable_vocab());
  ASSERT_TRUE(q.ok());
  auto answers = qa.Answers(*q);
  ASSERT_TRUE(answers.ok()) << answers.status();
  EXPECT_EQ(answers->size(), 4u);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, WsOptionSweep,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(4u, 8u, 0u /*auto*/)),
    [](const ::testing::TestParamInfo<std::tuple<bool, uint32_t>>& info) {
      return std::string(std::get<0>(info.param) ? "Memo" : "NoMemo") +
             "_Depth" + std::to_string(std::get<1>(info.param));
    });

TEST(DeterministicWsQa, ComparisonsInQueryAndRules) {
  Program p = Parse(
      "M(1, 5). M(2, 15).\n"
      "Big(X, V) :- M(X, V), V > 10.\n");
  DeterministicWsQa qa(p);
  auto q = Parser::ParseQuery("Q(X) :- Big(X, V), X >= 1.",
                              p.mutable_vocab());
  ASSERT_TRUE(q.ok());
  auto answers = qa.Answers(*q);
  ASSERT_TRUE(answers.ok()) << answers.status();
  EXPECT_EQ(answers->size(), 1u);
}

}  // namespace
}  // namespace mdqa::qa
