// Property-style tests: the three QA engines must agree wherever each is
// applicable. Random weakly-acyclic hierarchy programs and random CQs are
// generated deterministically from the test parameter (no wall-clock
// randomness, so failures reproduce). The generators live in
// src/testgen/generators.h, shared with the parallel-vs-serial differential
// harness (parallel_diff_test).

#include <gtest/gtest.h>

#include "datalog/analysis.h"
#include "datalog/parser.h"
#include "testgen/generators.h"
#include "qa/engines.h"

namespace mdqa::qa {
namespace {

using datalog::Parser;
using datalog::Program;
using testgen::GeneratedCase;
using testgen::GenerateClosure;
using testgen::GenerateHierarchy;

GeneratedCase Generate(uint32_t seed) { return GenerateHierarchy(seed); }

class EngineAgreement : public ::testing::TestWithParam<uint32_t> {};

TEST_P(EngineAgreement, ChaseAndWsAgreeOnRandomHierarchies) {
  GeneratedCase c = Generate(GetParam());
  auto p = Parser::ParseProgram(c.program_text);
  ASSERT_TRUE(p.ok()) << p.status() << "\n" << c.program_text;
  for (const std::string& text : c.queries) {
    auto q = Parser::ParseQuery(text, p->mutable_vocab());
    ASSERT_TRUE(q.ok()) << q.status();
    auto agreed = CrossCheck(
        *p, *q, {Engine::kChase, Engine::kDeterministicWs});
    EXPECT_TRUE(agreed.ok()) << agreed.status() << "\nprogram:\n"
                             << c.program_text;
  }
}

TEST_P(EngineAgreement, RewritingAgreesOnUpwardOnlyCases) {
  GeneratedCase c = Generate(GetParam());
  auto p = Parser::ParseProgram(c.program_text);
  ASSERT_TRUE(p.ok()) << p.status();
  // Rewriting is exercised on the upward-only generations (odd seeds).
  if ((GetParam() % 2) == 0) return;
  for (const std::string& text : c.queries) {
    auto q = Parser::ParseQuery(text, p->mutable_vocab());
    ASSERT_TRUE(q.ok()) << q.status();
    auto agreed = CrossCheck(*p, *q, {Engine::kChase, Engine::kRewriting});
    EXPECT_TRUE(agreed.ok()) << agreed.status() << "\nprogram:\n"
                             << c.program_text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineAgreement,
                         ::testing::Range(0u, 24u));

// Plain-Datalog random graphs: chase vs WS on transitive closure.
class ClosureAgreement : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ClosureAgreement, TransitiveClosure) {
  GeneratedCase c = GenerateClosure(GetParam());
  auto p = Parser::ParseProgram(c.program_text);
  ASSERT_TRUE(p.ok()) << p.status();
  for (const std::string& text : c.queries) {
    auto q = Parser::ParseQuery(text, p->mutable_vocab());
    ASSERT_TRUE(q.ok());
    auto agreed =
        CrossCheck(*p, *q, {Engine::kChase, Engine::kDeterministicWs});
    EXPECT_TRUE(agreed.ok()) << agreed.status() << "\n" << c.program_text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosureAgreement,
                         ::testing::Range(0u, 12u));

TEST(AnswerSet, CanonicalFormAndContains) {
  using datalog::Term;
  AnswerSet s = AnswerSet::Of({{Term::Constant(2)},
                               {Term::Constant(1)},
                               {Term::Constant(2)}});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.Contains({Term::Constant(1)}));
  EXPECT_FALSE(s.Contains({Term::Constant(3)}));
  AnswerSet t = AnswerSet::Of({{Term::Constant(1)}, {Term::Constant(2)}});
  EXPECT_EQ(s, t);
}

TEST(CrossCheck, NullJoinsNeedNoChaseWithFactorization) {
  // A query joining through an invented null: factorization makes the
  // rewriting complete here too, so all three engines agree on "true".
  auto p = Parser::ParseProgram(
      "A(\"x\").\n"
      "HP(X, Z) :- A(X).\n"
      "B(Z) :- HP(X, Z).\n");
  ASSERT_TRUE(p.ok());
  auto q = Parser::ParseQuery("Q() :- HP(X, Z), B(Z).", p->mutable_vocab());
  ASSERT_TRUE(q.ok());
  auto agreed = CrossCheck(*p, *q,
                           {Engine::kChase, Engine::kDeterministicWs,
                            Engine::kRewriting});
  ASSERT_TRUE(agreed.ok()) << agreed.status();
  EXPECT_EQ(agreed->size(), 1u);  // boolean yes: the empty tuple
}

TEST(CrossCheck, PropagatesEngineErrors) {
  // Multi-atom heads are unsupported by the rewriter; CrossCheck must
  // surface that error rather than reporting (dis)agreement.
  auto p = Parser::ParseProgram(
      "D(\"h\", \"p\").\n"
      "IU(I, U), PU(U, P) :- D(I, P).\n");
  ASSERT_TRUE(p.ok());
  auto q = Parser::ParseQuery("Q(P) :- PU(U, P).", p->mutable_vocab());
  ASSERT_TRUE(q.ok());
  auto crosscheck =
      CrossCheck(*p, *q, {Engine::kChase, Engine::kRewriting});
  ASSERT_FALSE(crosscheck.ok());
  EXPECT_EQ(crosscheck.status().code(), StatusCode::kUnimplemented);
}

TEST(CrossCheck, RequiresAtLeastOneEngine) {
  auto p = Parser::ParseProgram("A(1).");
  ASSERT_TRUE(p.ok());
  auto q = Parser::ParseQuery("Q(X) :- A(X).", p->mutable_vocab());
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(CrossCheck(*p, *q, {}).ok());
}

TEST(EngineToString, AllNamed) {
  EXPECT_STREQ(EngineToString(Engine::kChase), "chase");
  EXPECT_STREQ(EngineToString(Engine::kDeterministicWs), "deterministic-ws");
  EXPECT_STREQ(EngineToString(Engine::kRewriting), "rewriting");
}

}  // namespace
}  // namespace mdqa::qa
