// The scenario matrix: every generated family (src/testgen/scenario.h)
// is assessed by every engine that is sound for it, and the verdicts are
// scored against the generator's planted ground truth — precision and
// recall must both be exactly 1.0 wherever the theory guarantees exact
// certain-answer computation. On top of the ground-truth gate, reports
// must stay byte-identical across serial/pooled assessment and across
// incremental re-assessment vs a fresh full assessment after every
// update batch (the same discipline as parallel_diff_test and
// incremental_diff_test).
//
// Reproducing a failing cell: the test name carries (family, seed) —
// e.g. Matrix/ScenarioMatrix.GroundTruth/deep_homogeneous_s2 is
// SpecFor(kDeepHomogeneous, 2). MDQA_SCENARIO_SEED=<n> pins the whole
// matrix to one seed; MDQA_SCENARIO_REDUCED=1 runs one seed per family
// (the TSan configuration of scripts/check.sh --scenarios). See
// docs/testing.md.

#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "base/thread_pool.h"
#include "datalog/analysis.h"
#include "qa/engines.h"
#include "quality/assessor.h"
#include "testgen/scenario.h"

namespace mdqa::testgen {
namespace {

std::vector<uint32_t> MatrixSeeds() {
  if (const char* s = std::getenv("MDQA_SCENARIO_SEED")) {
    return {static_cast<uint32_t>(std::strtoul(s, nullptr, 10))};
  }
  if (std::getenv("MDQA_SCENARIO_REDUCED") != nullptr) return {1};
  return {1, 2, 3};
}

using Cell = std::tuple<ScenarioFamily, uint32_t>;

std::string CellName(const ::testing::TestParamInfo<Cell>& info) {
  std::string name = ScenarioFamilyToString(std::get<0>(info.param));
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_s" + std::to_string(std::get<1>(info.param));
}

std::string JoinMismatches(const VerdictScore& score) {
  std::string out;
  for (const std::string& m : score.mismatches) out += "  " + m + "\n";
  return out;
}

Relation CopyRelation(const Database& db, const std::string& name) {
  auto rel = db.GetRelation(name);
  EXPECT_TRUE(rel.ok()) << rel.status();
  return **rel;
}

class ScenarioMatrix : public ::testing::TestWithParam<Cell> {
 protected:
  ScenarioSpec Spec() const {
    return SpecFor(std::get<0>(GetParam()), std::get<1>(GetParam()));
  }
};

// The headline gate: serial chase assessment must reproduce the planted
// ground truth exactly — every planted violation flagged (recall) and
// nothing clean flagged (precision).
TEST_P(ScenarioMatrix, GroundTruth) {
  auto scenario = ScenarioGenerator::Generate(Spec());
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  ASSERT_GE(scenario->planted_corrupt, 1u);
  quality::Assessor assessor(&scenario->context);
  auto report = assessor.Assess();
  ASSERT_TRUE(report.ok()) << report.status();
  auto score = ScoreVerdicts(*report, scenario->relation, scenario->truth);
  ASSERT_TRUE(score.ok()) << score.status();
  EXPECT_GT(score->expected_dirty, 0u) << "matrix cell is vacuous";
  EXPECT_LT(score->expected_dirty, score->rows)
      << "matrix cell has no clean rows";
  EXPECT_EQ(score->precision, 1.0) << JoinMismatches(*score);
  EXPECT_EQ(score->recall, 1.0) << JoinMismatches(*score);
  if (std::get<0>(GetParam()) == ScenarioFamily::kDisjunctiveDownward) {
    // Phantom entities with only form-(10) (possible-world) support must
    // exist and be expected-dirty: certain answers exclude them.
    size_t possible_only = 0;
    for (const TupleVerdict& v : scenario->truth) {
      if (v.violation == ViolationKind::kPossibleOnly) ++possible_only;
    }
    EXPECT_GE(possible_only, 1u);
  }
}

// Serial and pooled assessments must render byte-identical reports
// (ToString AND ToJson) at every thread count.
TEST_P(ScenarioMatrix, PooledReportsByteIdentical) {
  auto scenario = ScenarioGenerator::Generate(Spec());
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  quality::Assessor assessor(&scenario->context);
  auto serial = assessor.Assess();
  ASSERT_TRUE(serial.ok()) << serial.status();
  const std::string serial_text = serial->ToString();
  const std::string serial_json = serial->ToJson();
  for (size_t threads : {2u, 4u}) {
    ThreadPool pool(threads);
    quality::AssessOptions options;
    options.pool = &pool;
    auto pooled = assessor.Assess(options);
    ASSERT_TRUE(pooled.ok()) << pooled.status();
    EXPECT_EQ(pooled->ToString(), serial_text) << "threads=" << threads;
    EXPECT_EQ(pooled->ToJson(), serial_json) << "threads=" << threads;
  }
}

// Every engine the cost-based planner declares sound for the compiled
// contextual program must reproduce the same ground truth — P = R = 1.0
// per engine, which also pins cross-engine agreement on the verdict
// partition itself. The chase is always sound, so this covers >= 2
// engines per cell wherever WS/rewriting qualify, and the planner's
// soundness notes document why when they don't.
TEST_P(ScenarioMatrix, SoundEnginesReproduceGroundTruth) {
  auto scenario = ScenarioGenerator::Generate(Spec());
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  auto program = scenario->context.BuildProgram();
  ASSERT_TRUE(program.ok()) << program.status();
  datalog::ProgramAnalysis analysis(*program);
  auto props = scenario->context.ontology().Analyze();
  ASSERT_TRUE(props.ok()) << props.status();
  qa::EngineSelectOptions options;
  options.egds_separable = props->separable_egds;
  const qa::EngineSelection selection =
      qa::SelectEngine(*program, analysis, options);
  quality::Assessor assessor(&scenario->context);
  int sound = 0;
  for (const qa::EngineCandidate& candidate : selection.candidates) {
    if (!candidate.sound) continue;
    ++sound;
    auto report = assessor.Assess(candidate.engine);
    ASSERT_TRUE(report.ok())
        << qa::EngineToString(candidate.engine) << ": " << report.status();
    auto score = ScoreVerdicts(*report, scenario->relation, scenario->truth);
    ASSERT_TRUE(score.ok())
        << qa::EngineToString(candidate.engine) << ": " << score.status();
    EXPECT_EQ(score->precision, 1.0)
        << qa::EngineToString(candidate.engine) << "\n"
        << JoinMismatches(*score);
    EXPECT_EQ(score->recall, 1.0)
        << qa::EngineToString(candidate.engine) << "\n"
        << JoinMismatches(*score);
  }
  EXPECT_GE(sound, 1) << "planner declared no engine sound";
}

// The seeded update stream: after every batch, the incremental Reassess
// must (a) match the generator's post-batch ground truth exactly and
// (b) render byte-identically to a fresh full assessment of the updated
// database on a regenerated context.
TEST_P(ScenarioMatrix, IncrementalReassessMatchesGroundTruthAndFullAssess) {
  auto scenario = ScenarioGenerator::Generate(Spec());
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  ASSERT_FALSE(scenario->updates.empty());
  quality::Assessor assessor(&scenario->context);
  auto prepared = scenario->context.Prepare();
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  auto previous = assessor.Assess();
  ASSERT_TRUE(previous.ok()) << previous.status();

  quality::PreparedContext session = std::move(*prepared);
  quality::AssessmentReport last_report = std::move(*previous);
  for (size_t b = 0; b < scenario->updates.size(); ++b) {
    const ScenarioUpdate& update = scenario->updates[b];
    auto next = session.ApplyUpdate(update.batch);
    ASSERT_TRUE(next.ok()) << "batch " << b << ": " << next.status();
    if (update.batch.HasDeletions()) {
      // Deletions force the recorded exact full-re-chase fallback.
      EXPECT_TRUE(next->chase_stats().extend_fallback)
          << next->chase_stats().fallback_reason;
    }
    auto report = assessor.Reassess(*next, last_report);
    ASSERT_TRUE(report.ok()) << "batch " << b << ": " << report.status();

    auto score =
        ScoreVerdicts(*report, scenario->relation, update.verdicts_after);
    ASSERT_TRUE(score.ok()) << "batch " << b << ": " << score.status();
    EXPECT_EQ(score->precision, 1.0)
        << "batch " << b << "\n" << JoinMismatches(*score);
    EXPECT_EQ(score->recall, 1.0)
        << "batch " << b << "\n" << JoinMismatches(*score);

    // Fresh baseline: regenerate the identical scenario and swap in the
    // updated database (same discipline as incremental_diff_test).
    auto baseline = ScenarioGenerator::Generate(Spec());
    ASSERT_TRUE(baseline.ok()) << baseline.status();
    Database patch;
    patch.PutRelation(CopyRelation(next->database(), scenario->relation));
    ASSERT_TRUE(baseline->context.SetDatabase(std::move(patch)).ok());
    quality::Assessor baseline_assessor(&baseline->context);
    auto full = baseline_assessor.Assess();
    ASSERT_TRUE(full.ok()) << full.status();
    EXPECT_EQ(report->ToString(), full->ToString()) << "batch " << b;
    EXPECT_EQ(report->ToJson(), full->ToJson()) << "batch " << b;

    session = std::move(*next);
    last_report = std::move(*report);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ScenarioMatrix,
    ::testing::Combine(::testing::ValuesIn(kAllScenarioFamilies),
                       ::testing::ValuesIn(MatrixSeeds())),
    CellName);

}  // namespace
}  // namespace mdqa::testgen
