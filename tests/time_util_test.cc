#include "md/time_util.h"

#include <gtest/gtest.h>

#include "md/dimension.h"

namespace mdqa::md {
namespace {

TEST(MonthNumber, AcceptsAbbreviationsAndFullNames) {
  EXPECT_EQ(MonthNumber("Sep").value(), 9);
  EXPECT_EQ(MonthNumber("September").value(), 9);
  EXPECT_EQ(MonthNumber("sep").value(), 9);  // case-insensitive
  EXPECT_EQ(MonthNumber("May").value(), 5);
  EXPECT_EQ(MonthNumber("December").value(), 12);
  EXPECT_FALSE(MonthNumber("Sept").ok());
  EXPECT_FALSE(MonthNumber("").ok());
}

TEST(MonthName, RoundTrips) {
  for (int m = 1; m <= 12; ++m) {
    auto name = MonthName(m);
    ASSERT_TRUE(name.ok());
    EXPECT_EQ(MonthNumber(*name).value(), m);
  }
  EXPECT_FALSE(MonthName(0).ok());
  EXPECT_FALSE(MonthName(13).ok());
}

TEST(EncodeDay, MinutesSinceYearStart) {
  EXPECT_EQ(EncodeDay("Jan/1").value(), 0);
  EXPECT_EQ(EncodeDay("Jan/2").value(), 24 * 60);
  // Feb/1 = 31 days into the year.
  EXPECT_EQ(EncodeDay("Feb/1").value(), 31 * 24 * 60);
  // Sep/5: Jan..Aug = 31+28+31+30+31+30+31+31 = 243 days, +4.
  EXPECT_EQ(EncodeDay("Sep/5").value(), (243 + 4) * 24 * 60);
}

TEST(EncodeDay, RejectsMalformed) {
  EXPECT_FALSE(EncodeDay("Sep5").ok());
  EXPECT_FALSE(EncodeDay("Sep/0").ok());
  EXPECT_FALSE(EncodeDay("Sep/31").ok());  // September has 30 days
  EXPECT_FALSE(EncodeDay("Xxx/5").ok());
  EXPECT_FALSE(EncodeDay("Sep/x").ok());
}

TEST(EncodeClock, AddsMinutes) {
  int64_t day = EncodeDay("Sep/5").value();
  EXPECT_EQ(EncodeClock("Sep/5-12:10").value(), day + 12 * 60 + 10);
  EXPECT_EQ(EncodeClock("Sep/5-0:00").value(), day);
  EXPECT_EQ(EncodeClock("Sep/5-23:59").value(), day + 23 * 60 + 59);
}

TEST(EncodeClock, OrdersTheDoctorsWindow) {
  // The paper's query window: 11:45 <= t <= 12:15 on Sep/5.
  int64_t lo = EncodeClock("Sep/5-11:45").value();
  int64_t t1 = EncodeClock("Sep/5-12:10").value();
  int64_t hi = EncodeClock("Sep/5-12:15").value();
  int64_t outside = EncodeClock("Sep/6-11:50").value();
  EXPECT_LT(lo, t1);
  EXPECT_LT(t1, hi);
  EXPECT_GT(outside, hi);
}

TEST(EncodeClock, RejectsMalformed) {
  EXPECT_FALSE(EncodeClock("Sep/5").ok());
  EXPECT_FALSE(EncodeClock("Sep/5-1210").ok());
  EXPECT_FALSE(EncodeClock("Sep/5-24:00").ok());
  EXPECT_FALSE(EncodeClock("Sep/5-12:60").ok());
}

TEST(DayOfClock, ExtractsAndValidates) {
  EXPECT_EQ(DayOfClock("Sep/5-12:10").value(), "Sep/5");
  EXPECT_FALSE(DayOfClock("Sep/5").ok());
  EXPECT_FALSE(DayOfClock("Bad/99-12:10").ok());
}

TEST(MonthOfDay, PaperConvention) {
  EXPECT_EQ(MonthOfDay("Sep/5", 2005).value(), "September/2005");
  EXPECT_EQ(MonthOfDay("Aug/20", 2005).value(), "August/2005");
  EXPECT_FALSE(MonthOfDay("nope", 2005).ok());
}

TEST(BuildTimeDimension, FullHierarchyWithInstants) {
  auto dim = BuildTimeDimension(
      "Cal", 2005, {"Sep/5", "Sep/6", "Oct/5"},
      {"Sep/5-12:10", "Sep/5-12:05", "Sep/6-11:50"});
  ASSERT_TRUE(dim.ok()) << dim.status();
  const DimensionInstance& inst = dim->instance();
  EXPECT_EQ(inst.Members("Day").size(), 3u);
  EXPECT_EQ(inst.Members("Month").size(), 2u);  // September, October
  EXPECT_EQ(inst.Members("Year"), std::vector<std::string>{"2005"});
  EXPECT_EQ(inst.RollUp("Sep/5-12:10", "Month").value(),
            std::vector<std::string>{"September/2005"});
  EXPECT_EQ(inst.RollUp("Oct/5", "Year").value(),
            std::vector<std::string>{"2005"});
  auto noon_sep5 = inst.DrillDown("Sep/5", "Time").value();
  EXPECT_EQ(noon_sep5.size(), 2u);
}

TEST(BuildTimeDimension, WithoutInstantsOmitsTimeCategory) {
  auto dim = BuildTimeDimension("Cal", 2005, {"Jan/1"}, {});
  ASSERT_TRUE(dim.ok()) << dim.status();
  EXPECT_FALSE(dim->schema().HasCategory("Time"));
  EXPECT_EQ(dim->schema().BottomCategories(),
            std::vector<std::string>{"Day"});
}

TEST(BuildTimeDimension, DuplicateDaysCollapse) {
  auto dim = BuildTimeDimension("Cal", 2005, {"Sep/5", "Sep/5"}, {});
  ASSERT_TRUE(dim.ok()) << dim.status();
  EXPECT_EQ(dim->instance().Members("Day").size(), 1u);
}

TEST(BuildTimeDimension, RejectsBadLabels) {
  EXPECT_FALSE(BuildTimeDimension("Cal", 2005, {"Sep/99"}, {}).ok());
  EXPECT_FALSE(
      BuildTimeDimension("Cal", 2005, {"Sep/5"}, {"Sep/5-25:00"}).ok());
}

TEST(BuildTimeDimension, InstantOutsideDaysRejected) {
  auto dim = BuildTimeDimension("Cal", 2005, {"Sep/5"}, {"Sep/6-11:50"});
  ASSERT_FALSE(dim.ok());
  EXPECT_NE(dim.status().message().find("not in `days`"),
            std::string::npos);
}

}  // namespace
}  // namespace mdqa::md
