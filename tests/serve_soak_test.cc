// Chaos/soak harness for mdqa_serve's server core: seeded mixed traffic
// (skewed tenants, queries, insert/delete bursts) from concurrent client
// threads over real loopback sockets, with a chaos thread arming and
// re-arming fault probes mid-flight. Asserts the daemon's robustness
// contract end to end:
//
//   1. no crash, no protocol-level garbage (every response parses);
//   2. no torn snapshot reads — every response's `generation` equals its
//      `generation_check`, and generations observed by one client never
//      go backwards;
//   3. every response computed from partial work is labeled
//      ("degraded": true + a truncation interruption) and nothing is
//      silently dropped (no unexplained 404/500);
//   4. after a graceful drain, the published report byte-matches a
//      from-scratch serial assessment of the final database (the oracle).
//
// Duration: MDQA_SOAK_SECONDS (default 3 — tier-1 friendly;
// scripts/check.sh --serve runs the full 30s under ASan and TSan).
// Violations are collected per client and reported with (seed, op index)
// so any failure reproduces from the log line alone.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "base/json.h"
#include "base/net.h"
#include "testgen/generators.h"
#include "scenarios/hospital.h"
#include "serve/http.h"
#include "serve/server.h"

namespace mdqa::serve {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

int SoakSeconds() {
  const char* env = std::getenv("MDQA_SOAK_SECONDS");
  if (env != nullptr) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 3;
}

double NumField(const JsonValue& v, const char* key) {
  const JsonValue* f = v.Find(key);
  return f != nullptr && f->is_number() ? f->AsNumber() : -1.0;
}

std::string StrField(const JsonValue& v, const char* key) {
  const JsonValue* f = v.Find(key);
  return f != nullptr ? f->AsString() : "";
}

/// Everything one client thread observed; violations carry (seed, op)
/// coordinates. EXPECTs run on the main thread after join.
struct ClientLog {
  uint64_t requests = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;       // 429 (tenant rate or queue full)
  uint64_t pending = 0;    // 202 update acks
  uint64_t degraded = 0;   // labeled partial results
  uint64_t io_errors = 0;  // connect/read failures (drain races)
  std::vector<std::string> violations;

  void Violation(uint32_t seed, size_t op, const std::string& what) {
    if (violations.size() < 20) {
      violations.push_back("seed=" + std::to_string(seed) +
                           " op=" + std::to_string(op) + ": " + what);
    }
  }
};

/// One client: replays seeded workload chunks until the deadline,
/// checking every response against the robustness contract. `tolerate_io`
/// is set for the drain-under-load scenario, where connection errors and
/// 503s are the expected way to experience the shutdown.
void RunClient(uint16_t port, uint32_t base_seed,
               steady_clock::time_point until, bool tolerate_io,
               ClientLog* log) {
  std::set<std::string> acked_rows;
  double last_generation = 0;
  uint32_t chunk = 0;
  size_t op_index = 0;
  testgen::ServeWorkload workload =
      testgen::GenerateServeWorkload(base_seed, 2000);

  while (steady_clock::now() < until) {
    if (op_index >= workload.ops.size()) {
      // Fresh chunk, fresh seed — row keys never collide across chunks.
      workload = testgen::GenerateServeWorkload(
          base_seed + (++chunk) * 7919u, 2000);
      op_index = 0;
    }
    const testgen::ServeOp& op = workload.ops[op_index];
    const uint32_t seed = base_seed + chunk * 7919u;
    const size_t at = op_index++;

    // Deletes of rows whose insert was shed would be honest 404s; the
    // contract under test is "no *unexplained* failure", so skip them.
    if (op.kind == testgen::ServeOp::Kind::kDelete &&
        acked_rows.count(op.row_times[0]) == 0) {
      continue;
    }

    auto sock = net::ConnectLoopback(port, milliseconds(2000));
    if (!sock.ok()) {
      ++log->io_errors;
      if (!tolerate_io) {
        log->Violation(seed, at, "connect failed: " + sock.status().ToString());
        return;
      }
      continue;
    }
    const bool is_update = op.kind == testgen::ServeOp::Kind::kInsert ||
                           op.kind == testgen::ServeOp::Kind::kDelete;
    const char* method =
        op.kind == testgen::ServeOp::Kind::kReport ? "GET" : "POST";
    const char* target = op.kind == testgen::ServeOp::Kind::kReport
                             ? "/report"
                             : (is_update ? "/update" : "/query");
    auto resp = HttpRoundTrip(
        *sock, method, target, op.body,
        {{"X-Mdqa-Tenant", op.tenant}, {"X-Mdqa-Deadline-Ms", "300"}},
        HttpLimits{});
    ++log->requests;
    if (!resp.ok()) {
      ++log->io_errors;
      if (!tolerate_io) {
        log->Violation(seed, at, "round trip failed: " +
                                     resp.status().ToString());
      }
      continue;
    }

    auto body = JsonValue::Parse(resp->body);
    if (!body.ok()) {
      log->Violation(seed, at, "unparseable body (status " +
                                   std::to_string(resp->status) +
                                   "): " + resp->body);
      continue;
    }

    switch (resp->status) {
      case 200: {
        ++log->ok;
        if (is_update) {
          for (const std::string& row : op.row_times) {
            if (op.kind == testgen::ServeOp::Kind::kInsert) {
              acked_rows.insert(row);
            } else {
              acked_rows.erase(row);
            }
          }
        }
        const double gen = NumField(*body, "generation");
        if (gen < 0) break;  // update acks carry only the new generation
        if (gen < last_generation) {
          log->Violation(seed, at, "generation went backwards");
        }
        last_generation = gen;
        // Torn-read witness: both fields were read off the pinned
        // snapshot, one before and one after rendering.
        if (!is_update && gen != NumField(*body, "generation_check")) {
          log->Violation(seed, at, "torn generation: " + resp->body);
        }
        if (!is_update && op.kind != testgen::ServeOp::Kind::kReport) {
          const JsonValue* degraded = body->Find("degraded");
          const std::string completeness = StrField(*body, "completeness");
          if (degraded == nullptr) {
            log->Violation(seed, at, "missing degraded label");
          } else if (degraded->AsBool()) {
            ++log->degraded;
            if (completeness != "truncated") {
              log->Violation(seed, at,
                             "degraded but completeness=" + completeness);
            }
            if (StrField(*body, "interruption") == "OK") {
              log->Violation(seed, at, "degraded without an interruption");
            }
          } else if (completeness == "truncated") {
            log->Violation(seed, at, "truncated but not labeled degraded");
          }
        }
        break;
      }
      case 202:  // update accepted, still queued: it WILL apply (FIFO)
        ++log->pending;
        for (const std::string& row : op.row_times) {
          if (op.kind == testgen::ServeOp::Kind::kInsert) {
            acked_rows.insert(row);
          } else {
            acked_rows.erase(row);
          }
        }
        break;
      case 429: {
        ++log->shed;
        if (resp->FindHeader("Retry-After") == nullptr) {
          log->Violation(seed, at, "429 without Retry-After");
        }
        break;
      }
      case 503:  // draining — only tolerable while shutdown is racing us
        if (!tolerate_io) {
          log->Violation(seed, at, "unexpected 503: " + resp->body);
        }
        break;
      default:
        log->Violation(seed, at,
                       "unexpected status " + std::to_string(resp->status) +
                           ": " + resp->body);
        break;
    }
  }
}

/// Re-arms and clears fault probes while traffic flows. Only truncation
/// statuses are injected, so every trip must surface as a *labeled*
/// degraded response, never a 500. Hits are accumulated into
/// `total_hits` before every Reset (Reset clears the injector's counts).
void RunChaos(FaultInjector* faults, std::atomic<bool>* stop,
              std::atomic<uint64_t>* total_hits) {
  uint32_t round = 0;
  while (!stop->load(std::memory_order_acquire)) {
    const uint64_t seen = faults->HitCount("cq:row");
    faults->Arm("cq:row", seen + 5 + (round % 17),
                Status::ResourceExhausted("chaos injection"),
                /*count=*/20 + (round % 30));
    std::this_thread::sleep_for(milliseconds(15));
    if (++round % 7 == 0) {
      total_hits->fetch_add(faults->HitCount("cq:row"),
                            std::memory_order_relaxed);
      faults->Reset();
    }
  }
  total_hits->fetch_add(faults->HitCount("cq:row"),
                        std::memory_order_relaxed);
  faults->Reset();
}

std::unique_ptr<AssessmentServer> StartHospital(
    const ServerOptions& options) {
  auto context =
      scenarios::BuildHospitalContext(scenarios::HospitalOptions{});
  EXPECT_TRUE(context.ok()) << context.status();
  auto server = AssessmentServer::Start(std::move(*context), options);
  EXPECT_TRUE(server.ok()) << server.status();
  return std::move(*server);
}

/// From-scratch serial oracle: a fresh context whose database is the
/// server's final database, fully assessed with default options — the
/// report the incremental Reassess chain must byte-match (the PR-4
/// guarantee, now verified across a daemon's whole lifetime).
std::string OracleReportJson(const AssessmentServer& server) {
  auto session = server.CurrentSession();
  auto fresh = scenarios::BuildHospitalContext(scenarios::HospitalOptions{});
  EXPECT_TRUE(fresh.ok()) << fresh.status();
  auto rel = session->database().GetRelation("Measurements");
  EXPECT_TRUE(rel.ok()) << rel.status();
  Database patch;
  patch.PutRelation(**rel);
  EXPECT_TRUE(fresh->SetDatabase(std::move(patch)).ok());
  auto report = quality::Assessor(&*fresh).Assess();
  EXPECT_TRUE(report.ok()) << report.status();
  return report.ok() ? report->ToJson() : "";
}

TEST(ServeSoak, ChaosTrafficKeepsEveryInvariant) {
  const int seconds = SoakSeconds();
  FaultInjector faults;

  ServerOptions options;
  options.worker_threads = 4;
  options.queue_capacity = 16;
  options.update_queue_capacity = 8;
  options.default_deadline = milliseconds(300);
  options.default_quota.requests_per_sec = 400.0;
  options.default_quota.burst = 80.0;
  options.max_retries = 2;
  options.fault_injector = &faults;
  auto server = StartHospital(options);
  ASSERT_NE(server, nullptr);

  // The hot tenant gets a tight quota so the rate limiter sheds under
  // the skewed load while cold tenants sail through.
  TenantQuota hot;
  hot.requests_per_sec = 60.0;
  hot.burst = 20.0;
  server->SetTenantQuota("hot", hot);

  std::atomic<bool> stop_chaos{false};
  std::atomic<uint64_t> chaos_hits{0};
  std::thread chaos(RunChaos, &faults, &stop_chaos, &chaos_hits);

  constexpr int kClients = 4;
  const auto until = steady_clock::now() + std::chrono::seconds(seconds);
  std::vector<ClientLog> logs(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back(RunClient, server->port(),
                         static_cast<uint32_t>(1000 + 111 * c), until,
                         /*tolerate_io=*/false, &logs[c]);
  }
  for (std::thread& t : clients) t.join();
  stop_chaos.store(true, std::memory_order_release);
  chaos.join();

  // Graceful drain: everything queued finishes, then the drained state
  // must be internally consistent.
  server->Shutdown();
  Status drained = server->DrainStatus();
  EXPECT_TRUE(drained.ok()) << drained;

  uint64_t requests = 0, ok = 0, shed = 0, degraded = 0, pending = 0;
  for (int c = 0; c < kClients; ++c) {
    for (const std::string& v : logs[c].violations) {
      ADD_FAILURE() << "client " << c << " " << v;
    }
    EXPECT_EQ(logs[c].io_errors, 0u) << "client " << c;
    requests += logs[c].requests;
    ok += logs[c].ok;
    shed += logs[c].shed;
    degraded += logs[c].degraded;
    pending += logs[c].pending;
  }
  EXPECT_GT(requests, 0u);
  EXPECT_GT(ok, 0u);
  // The chaos probes really fired, and every injected trip surfaced as a
  // labeled degraded response — never a 500.
  EXPECT_GT(chaos_hits.load(), 0u);
  EXPECT_EQ(server->metrics().internal_errors.load(), 0u);

  std::cout << "[soak] " << seconds << "s, " << requests << " requests, "
            << ok << " ok, " << shed << " shed, " << degraded
            << " degraded, " << pending << " pending updates, "
            << server->metrics().updates_applied.load()
            << " updates applied (generation " << server->generation()
            << ")\n";

  // The oracle: post-drain report byte-matches a from-scratch serial
  // assessment of the final database.
  EXPECT_EQ(server->CurrentReportJson(), OracleReportJson(*server))
      << "post-drain report diverged from the from-scratch oracle";
}

TEST(ServeSoak, DrainUnderLoadFinishesConsistently) {
  FaultInjector faults;
  ServerOptions options;
  options.worker_threads = 2;
  options.queue_capacity = 8;
  options.default_deadline = milliseconds(300);
  options.fault_injector = &faults;
  auto server = StartHospital(options);
  ASSERT_NE(server, nullptr);
  faults.Arm("cq:row", 40, Status::ResourceExhausted("chaos"),
             FaultInjector::kAlways);

  // Clients hammer; shutdown lands mid-traffic. Clients treat connection
  // failures and 503s as the expected face of the drain.
  const auto until = steady_clock::now() + std::chrono::seconds(2);
  std::vector<ClientLog> logs(2);
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back(RunClient, server->port(),
                         static_cast<uint32_t>(7000 + 13 * c), until,
                         /*tolerate_io=*/true, &logs[c]);
  }
  std::this_thread::sleep_for(milliseconds(400));
  server->Shutdown();  // blocks until drained, while clients still send
  for (std::thread& t : clients) t.join();

  for (const ClientLog& log : logs) {
    for (const std::string& v : log.violations) ADD_FAILURE() << v;
  }
  Status drained = server->DrainStatus();
  EXPECT_TRUE(drained.ok()) << drained;
  EXPECT_EQ(server->CurrentReportJson(), OracleReportJson(*server))
      << "post-drain report diverged from the from-scratch oracle";
}

}  // namespace
}  // namespace mdqa::serve
