// Differential parallel-vs-serial harness: over hundreds of seeded random
// programs and MD ontologies, execution on a work-stealing thread pool at
// 1/2/4/8 workers must be *bit-identical* to serial execution — same
// chase instance (facts, levels, null numbering), same ChaseStats, same
// certain answers, same quality-assessment reports. The chase guarantees
// this by applying each round's trigger set in canonical sorted order
// regardless of how (or on how many threads) the triggers were matched;
// see docs/parallelism.md.
//
// Generators are shared with engines_property_test via src/testgen/generators.h
// — everything is a pure function of the seed, so failures reproduce.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "base/thread_pool.h"
#include "datalog/chase.h"
#include "datalog/instance.h"
#include "datalog/parser.h"
#include "testgen/generators.h"
#include "qa/engines.h"
#include "quality/assessor.h"
#include "scenarios/synthetic.h"

namespace mdqa {
namespace {

using datalog::Chase;
using datalog::ChaseOptions;
using datalog::ChaseStats;
using datalog::Instance;
using datalog::Parser;
using datalog::Program;
using testgen::GeneratedCase;

constexpr size_t kThreadCounts[] = {1, 2, 4, 8};

// One serial chase plus one pooled chase per thread count; every pooled
// run must reproduce the serial instance and stats byte for byte.
// min_parallel_seeds = 1 forces the sharded matching path even on the
// tiny generated tables, so the canonical-merge machinery is actually
// exercised (the default threshold would fall back to inline matching).
void ExpectChaseBitIdentical(const GeneratedCase& c) {
  auto parse = [&]() {
    auto p = Parser::ParseProgram(c.program_text);
    EXPECT_TRUE(p.ok()) << p.status() << "\n" << c.program_text;
    return p;
  };
  auto serial_p = parse();
  ASSERT_TRUE(serial_p.ok());
  Instance serial_inst = Instance::FromProgram(*serial_p);
  ChaseStats serial_stats;
  ASSERT_TRUE(Chase::Run(*serial_p, &serial_inst, ChaseOptions{},
                         &serial_stats)
                  .ok());
  const std::string serial_render = serial_inst.ToString();

  for (size_t threads : kThreadCounts) {
    // A fresh parse per run: null numbering restarts from the same
    // vocabulary state, so renders are comparable byte for byte.
    auto p = parse();
    ASSERT_TRUE(p.ok());
    ThreadPool pool(threads);
    ChaseOptions options;
    options.pool = &pool;
    options.min_parallel_seeds = 1;
    Instance inst = Instance::FromProgram(*p);
    ChaseStats stats;
    ASSERT_TRUE(Chase::Run(*p, &inst, options, &stats).ok());
    EXPECT_EQ(inst.ToString(), serial_render)
        << "instance diverged at threads=" << threads << "\nprogram:\n"
        << c.program_text;
    EXPECT_EQ(stats.ToString(), serial_stats.ToString())
        << "stats diverged at threads=" << threads;
  }
}

// Certain answers through the engine entry point: pooled == serial for
// every generated query.
void ExpectAnswersIdentical(const GeneratedCase& c) {
  for (const std::string& text : c.queries) {
    auto p = Parser::ParseProgram(c.program_text);
    ASSERT_TRUE(p.ok()) << p.status();
    auto q = Parser::ParseQuery(text, p->mutable_vocab());
    ASSERT_TRUE(q.ok()) << q.status();
    auto serial = qa::Answer(qa::Engine::kChase, *p, *q, qa::AnswerOptions{});
    ASSERT_TRUE(serial.ok()) << serial.status();
    for (size_t threads : kThreadCounts) {
      ThreadPool pool(threads);
      qa::AnswerOptions aopts;
      aopts.pool = &pool;
      auto pooled = qa::Answer(qa::Engine::kChase, *p, *q, aopts);
      ASSERT_TRUE(pooled.ok()) << pooled.status();
      EXPECT_EQ(*pooled, *serial)
          << "answers diverged at threads=" << threads << " on " << text
          << "\nprogram:\n"
          << c.program_text;
    }
  }
}

class HierarchyDiff : public ::testing::TestWithParam<uint32_t> {};

TEST_P(HierarchyDiff, ChaseInstanceAndStatsBitIdentical) {
  ExpectChaseBitIdentical(testgen::GenerateHierarchy(GetParam()));
}

TEST_P(HierarchyDiff, CertainAnswersIdentical) {
  ExpectAnswersIdentical(testgen::GenerateHierarchy(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, HierarchyDiff, ::testing::Range(0u, 110u));

class ClosureDiff : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ClosureDiff, ChaseInstanceAndStatsBitIdentical) {
  ExpectChaseBitIdentical(testgen::GenerateClosure(GetParam()));
}

TEST_P(ClosureDiff, CertainAnswersIdentical) {
  ExpectAnswersIdentical(testgen::GenerateClosure(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosureDiff, ::testing::Range(0u, 60u));

// The UCQ rewriter evaluates disjuncts concurrently; answers must match
// the serial evaluation. Odd hierarchy seeds are upward-only, where the
// rewriting is applicable and terminates.
class RewriterDiff : public ::testing::TestWithParam<uint32_t> {};

TEST_P(RewriterDiff, RewritingAnswersIdentical) {
  const uint32_t seed = GetParam() * 2 + 1;  // odd: upward-only
  GeneratedCase c = testgen::GenerateHierarchy(seed);
  ASSERT_FALSE(c.downward);
  for (const std::string& text : c.queries) {
    auto p = Parser::ParseProgram(c.program_text);
    ASSERT_TRUE(p.ok()) << p.status();
    auto q = Parser::ParseQuery(text, p->mutable_vocab());
    ASSERT_TRUE(q.ok()) << q.status();
    auto serial =
        qa::Answer(qa::Engine::kRewriting, *p, *q, qa::AnswerOptions{});
    ASSERT_TRUE(serial.ok()) << serial.status();
    for (size_t threads : kThreadCounts) {
      ThreadPool pool(threads);
      qa::AnswerOptions aopts;
      aopts.pool = &pool;
      auto pooled = qa::Answer(qa::Engine::kRewriting, *p, *q, aopts);
      ASSERT_TRUE(pooled.ok()) << pooled.status();
      EXPECT_EQ(*pooled, *serial)
          << "rewriting answers diverged at threads=" << threads << " on "
          << text;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewriterDiff, ::testing::Range(0u, 12u));

// Determinism regression for the full assessment pipeline: the same
// synthetic MD scenario assessed serially and at 1/2/8 workers must
// render byte-identical reports — ToString AND ToJson — including the
// lint-gate counts and, on every third seed, per-relation kTruncated
// budget outcomes (counter caps are private to each relation, so the
// truncation point cannot depend on the thread count).
class AssessorDiff : public ::testing::TestWithParam<uint32_t> {};

TEST_P(AssessorDiff, ReportsByteIdenticalAcrossThreadCounts) {
  const uint32_t seed = GetParam();
  scenarios::SyntheticSpec spec;
  spec.institutions = 1 + static_cast<int>(seed % 2);
  spec.units_per_institution = 1 + static_cast<int>(seed % 3);
  spec.wards_per_unit = 1 + static_cast<int>((seed / 2) % 3);
  spec.patients = 6 + static_cast<int>(seed % 5);
  spec.days = 2 + static_cast<int>(seed % 3);
  spec.include_downward_rules = (seed % 2) == 0;
  spec.seed = seed * 31 + 7;

  quality::AssessOptions base;
  if (seed % 3 == 0) {
    // Force deterministic per-relation truncation: the read-off charges
    // steps once per 64 candidate rows, so grow the scenario past one
    // batch and cap steps below it — the cap trips at the same row on
    // every attempt (escalation stays under one batch) and on every
    // thread count (the derived budget is private to the relation).
    spec.patients = 40;
    spec.days = 6;
    base.per_relation_max_steps = 1;
    base.escalation_factor = 2.0;
    base.max_retries = 1;
  }

  auto context = scenarios::BuildSyntheticContext(spec);
  ASSERT_TRUE(context.ok()) << context.status();
  quality::Assessor assessor(&*context);
  auto serial = assessor.Assess(base);
  ASSERT_TRUE(serial.ok()) << serial.status();
  const std::string serial_text = serial->ToString();
  const std::string serial_json = serial->ToJson();
  if (seed % 3 == 0) {
    EXPECT_EQ(serial->completeness, Completeness::kTruncated)
        << "expected the forced step cap to truncate";
    EXPECT_FALSE(serial->degraded.empty());
  }

  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    ThreadPool pool(threads);
    quality::AssessOptions opts = base;
    opts.pool = &pool;
    auto pooled = assessor.Assess(opts);
    ASSERT_TRUE(pooled.ok()) << pooled.status();
    EXPECT_EQ(pooled->ToString(), serial_text)
        << "report text diverged at threads=" << threads;
    EXPECT_EQ(pooled->ToJson(), serial_json)
        << "report json diverged at threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssessorDiff, ::testing::Range(0u, 36u));

// --- ThreadPool unit coverage -------------------------------------------

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, SubmitRunsEverythingBeforeDestruction) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor drains the queues
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ZeroAndOneItemShortCircuit) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_GE(ThreadPool::DefaultThreads(), 1u);
}

}  // namespace
}  // namespace mdqa
