#include "core/md_ontology.h"

#include <gtest/gtest.h>

#include "datalog/chase.h"
#include "datalog/cq_eval.h"
#include "datalog/parser.h"

namespace mdqa::core {
namespace {

using md::CategoricalAttribute;
using md::CategoricalRelation;
using md::DimensionBuilder;

// A two-dimension skeleton: Geo (City -> Region) and Cal (Day -> Month).
std::shared_ptr<MdOntology> Skeleton() {
  auto ontology = std::make_shared<MdOntology>();
  auto geo = DimensionBuilder("Geo")
                 .Category("City")
                 .Category("Region")
                 .Edge("City", "Region")
                 .Member("City", "c1")
                 .Member("City", "c2")
                 .Member("Region", "r1")
                 .Link("c1", "r1")
                 .Link("c2", "r1")
                 .Build();
  EXPECT_TRUE(geo.ok()) << geo.status();
  EXPECT_TRUE(ontology->AddDimension(std::move(geo).value()).ok());
  auto cal = DimensionBuilder("Cal")
                 .Category("Day")
                 .Category("Month")
                 .Edge("Day", "Month")
                 .Member("Day", "d1")
                 .Member("Month", "m1")
                 .Link("d1", "m1")
                 .Build();
  EXPECT_TRUE(cal.ok()) << cal.status();
  EXPECT_TRUE(ontology->AddDimension(std::move(cal).value()).ok());

  auto sales_city = CategoricalRelation::Create(
      "SalesCity", {CategoricalAttribute::Categorical("City", "Geo", "City"),
                    CategoricalAttribute::Categorical("Day", "Cal", "Day"),
                    CategoricalAttribute::Plain("Amount")});
  EXPECT_TRUE(sales_city.ok());
  EXPECT_TRUE(sales_city->InsertText({"c1", "d1", "10"}).ok());
  EXPECT_TRUE(
      ontology->AddCategoricalRelation(std::move(sales_city).value()).ok());

  auto sales_region = CategoricalRelation::Create(
      "SalesRegion",
      {CategoricalAttribute::Categorical("Region", "Geo", "Region"),
       CategoricalAttribute::Categorical("Day", "Cal", "Day"),
       CategoricalAttribute::Plain("Amount")});
  EXPECT_TRUE(sales_region.ok());
  EXPECT_TRUE(
      ontology->AddCategoricalRelation(std::move(sales_region).value()).ok());
  return ontology;
}

TEST(MdOntology, DimensionNameCollisions) {
  auto ontology = Skeleton();
  auto dup = DimensionBuilder("Geo").Category("X").Build();
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(ontology->AddDimension(std::move(dup).value()).code(),
            StatusCode::kAlreadyExists);
  // Category name clashing with an existing predicate.
  auto clash = DimensionBuilder("Other").Category("City").Build();
  ASSERT_TRUE(clash.ok());
  EXPECT_EQ(ontology->AddDimension(std::move(clash).value()).code(),
            StatusCode::kAlreadyExists);
}

TEST(MdOntology, CategoricalRelationValidation) {
  auto ontology = Skeleton();
  auto bad_dim = CategoricalRelation::Create(
      "R1", {CategoricalAttribute::Categorical("x", "Nope", "City")});
  ASSERT_TRUE(bad_dim.ok());
  EXPECT_EQ(
      ontology->AddCategoricalRelation(std::move(bad_dim).value()).code(),
      StatusCode::kNotFound);
  auto bad_cat = CategoricalRelation::Create(
      "R2", {CategoricalAttribute::Categorical("x", "Geo", "Nope")});
  ASSERT_TRUE(bad_cat.ok());
  EXPECT_EQ(
      ontology->AddCategoricalRelation(std::move(bad_cat).value()).code(),
      StatusCode::kNotFound);
}

TEST(MdOntology, HasPredicateCoversAllKinds) {
  auto ontology = Skeleton();
  EXPECT_TRUE(ontology->HasPredicate("City"));        // category
  EXPECT_TRUE(ontology->HasPredicate("RegionCity"));  // edge
  EXPECT_TRUE(ontology->HasPredicate("SalesCity"));   // categorical relation
  EXPECT_FALSE(ontology->HasPredicate("Nothing"));
}

TEST(MdOntology, UpwardRuleClassification) {
  auto ontology = Skeleton();
  ASSERT_TRUE(ontology
                  ->AddDimensionalRule(
                      "SalesRegion(R, D, A) :- SalesCity(C, D, A), "
                      "RegionCity(R, C).")
                  .ok());
  const auto& rules = ontology->dimensional_rules();
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].form, RuleForm::kForm4);
  EXPECT_EQ(rules[0].navigation, Navigation::kUpward);
}

TEST(MdOntology, DownwardRuleClassification) {
  auto ontology = Skeleton();
  ASSERT_TRUE(ontology
                  ->AddDimensionalRule(
                      "SalesCity(C, D, A) :- SalesRegion(R, D, A), "
                      "RegionCity(R, C).")
                  .ok());
  EXPECT_EQ(ontology->dimensional_rules()[0].navigation,
            Navigation::kDownward);
}

TEST(MdOntology, LateralRuleClassification) {
  auto ontology = Skeleton();
  ASSERT_TRUE(
      ontology->AddDimensionalRule("SalesCity(C, D, A) :- SalesCity(C, D, A).")
          .ok());
  EXPECT_EQ(ontology->dimensional_rules()[0].navigation, Navigation::kNone);
}

TEST(MdOntology, Form10Classification) {
  auto ontology = Skeleton();
  ASSERT_TRUE(ontology
                  ->AddDimensionalRule(
                      "RegionCity(R, C), SalesCity(C, D, A) :- "
                      "SalesRegion(R, D, A).")
                  .ok());
  const auto& r = ontology->dimensional_rules()[0];
  EXPECT_EQ(r.form, RuleForm::kForm10);
  EXPECT_EQ(r.navigation, Navigation::kDownward);
}

TEST(MdOntology, Form10LevelConditionRejected) {
  auto ontology = Skeleton();
  // Body at City level, head at Region level with existential region:
  // upward existential-categorical navigation is not form (10).
  Status s = ontology->AddDimensionalRule(
      "RegionCity(R, C), SalesRegion(R, D, A) :- SalesCity(C, D, A).");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(MdOntology, NonDimensionalBodyPredicateRejected) {
  auto ontology = Skeleton();
  Status s = ontology->AddDimensionalRule(
      "SalesRegion(R, D, A) :- External(R, D, A).");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("AddRawStatements"), std::string::npos);
}

TEST(MdOntology, CategoryHeadAtomRejected) {
  auto ontology = Skeleton();
  EXPECT_FALSE(
      ontology->AddDimensionalRule("City(C) :- SalesCity(C, D, A).").ok());
}

TEST(MdOntology, SharedPlainVariableRejectedInForm4) {
  auto ontology = Skeleton();
  // Joining on the non-categorical Amount attribute violates the paper's
  // side condition on form (4).
  Status s = ontology->AddDimensionalRule(
      "SalesRegion(R, D, A) :- SalesCity(C, D, A), SalesCity(C2, D2, A), "
      "RegionCity(R, C).");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("categorical"), std::string::npos);
}

TEST(MdOntology, ConstraintsValidated) {
  auto ontology = Skeleton();
  EXPECT_TRUE(ontology
                  ->AddDimensionalConstraint(
                      "! :- SalesCity(C, D, A), RegionCity(\"r1\", C).")
                  .ok());
  EXPECT_TRUE(ontology
                  ->AddDimensionalConstraint(
                      "A = A2 :- SalesCity(C, D, A), SalesCity(C, D2, A2).")
                  .ok());
  // A TGD is not a constraint.
  EXPECT_FALSE(
      ontology->AddDimensionalConstraint("SalesCity(C, D, A) :- SalesCity(C, D, A).").ok());
  // Non-dimensional predicate in the body.
  EXPECT_FALSE(
      ontology->AddDimensionalConstraint("! :- Foreign(X).").ok());
}

TEST(MdOntology, CompileContainsFactsAndRules) {
  auto ontology = Skeleton();
  ASSERT_TRUE(ontology
                  ->AddDimensionalRule(
                      "SalesRegion(R, D, A) :- SalesCity(C, D, A), "
                      "RegionCity(R, C).")
                  .ok());
  auto program = ontology->Compile();
  ASSERT_TRUE(program.ok()) << program.status();
  // Facts: City c1,c2; Region r1; Day d1; Month m1; RegionCity x2;
  // MonthDay x1; SalesCity x1  => 9.
  EXPECT_EQ(program->facts().size(), 9u);
  EXPECT_EQ(program->rules().size(), 1u);
}

TEST(MdOntology, RawStatementsFlowIntoCompile) {
  auto ontology = Skeleton();
  ASSERT_TRUE(ontology
                  ->AddRawStatements(
                      "Extra(\"x\").\nNote(C) :- SalesCity(C, D, A).")
                  .ok());
  auto program = ontology->Compile();
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->rules().size(), 1u);
  EXPECT_EQ(program->facts().size(), 10u);
}

TEST(MdOntology, ValidateReferentialAcrossRelations) {
  auto ontology = Skeleton();
  EXPECT_TRUE(ontology->ValidateReferential().ok());
  auto bad = CategoricalRelation::Create(
      "Bad", {CategoricalAttribute::Categorical("City", "Geo", "City")});
  ASSERT_TRUE(bad.ok());
  ASSERT_TRUE(bad->InsertText({"ghost-city"}).ok());
  ASSERT_TRUE(ontology->AddCategoricalRelation(std::move(bad).value()).ok());
  EXPECT_EQ(ontology->ValidateReferential().code(),
            StatusCode::kInconsistent);
}

TEST(MdOntology, AnalyzeUpwardOnlyAndSeparability) {
  auto ontology = Skeleton();
  ASSERT_TRUE(ontology
                  ->AddDimensionalRule(
                      "SalesRegion(R, D, A) :- SalesCity(C, D, A), "
                      "RegionCity(R, C).")
                  .ok());
  ASSERT_TRUE(ontology
                  ->AddDimensionalConstraint(
                      "D = D2 :- SalesCity(C, D, A), SalesCity(C, D2, A2).")
                  .ok());
  auto props = ontology->Analyze();
  ASSERT_TRUE(props.ok()) << props.status();
  EXPECT_TRUE(props->weakly_sticky);
  EXPECT_TRUE(props->upward_only);
  EXPECT_FALSE(props->has_form10);
  EXPECT_TRUE(props->separable_egds);  // D, D2 at categorical positions
}

TEST(MdOntology, AnalyzeNonSeparableEgd) {
  auto ontology = Skeleton();
  // Equated variables at the plain Amount position: separability
  // shortcut must be off.
  ASSERT_TRUE(ontology
                  ->AddDimensionalConstraint(
                      "A = A2 :- SalesCity(C, D, A), SalesCity(C, D2, A2).")
                  .ok());
  auto props = ontology->Analyze();
  ASSERT_TRUE(props.ok());
  EXPECT_FALSE(props->separable_egds);
}

TEST(MdOntology, EndToEndRollupQuery) {
  auto ontology = Skeleton();
  ASSERT_TRUE(ontology
                  ->AddDimensionalRule(
                      "SalesRegion(R, D, A) :- SalesCity(C, D, A), "
                      "RegionCity(R, C).")
                  .ok());
  auto program = ontology->Compile();
  ASSERT_TRUE(program.ok());
  datalog::Instance instance = datalog::Instance::FromProgram(*program);
  ASSERT_TRUE(datalog::Chase::Run(*program, &instance).ok());
  auto q = datalog::Parser::ParseQuery("Q(R, A) :- SalesRegion(R, D, A).",
                                       program->mutable_vocab());
  ASSERT_TRUE(q.ok());
  datalog::CqEvaluator eval(instance);
  auto answers = eval.Answers(*q);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 1u);
}

TEST(MdOntology, ToStringListsEverything) {
  auto ontology = Skeleton();
  ASSERT_TRUE(ontology
                  ->AddDimensionalRule(
                      "SalesRegion(R, D, A) :- SalesCity(C, D, A), "
                      "RegionCity(R, C).")
                  .ok());
  std::string s = ontology->ToString();
  EXPECT_NE(s.find("dimension Geo"), std::string::npos);
  EXPECT_NE(s.find("SalesCity"), std::string::npos);
  EXPECT_NE(s.find("form(4)"), std::string::npos);
  EXPECT_NE(s.find("upward"), std::string::npos);
}

}  // namespace
}  // namespace mdqa::core
