#include "md/dimension.h"

#include <gtest/gtest.h>

#include "datalog/cq_eval.h"
#include "datalog/parser.h"

namespace mdqa::md {
namespace {

DimensionSchema HospitalSchema() {
  DimensionSchema s = DimensionSchema::Create("Hospital").value();
  EXPECT_TRUE(s.AddCategory("Ward").ok());
  EXPECT_TRUE(s.AddCategory("Unit").ok());
  EXPECT_TRUE(s.AddCategory("Institution").ok());
  EXPECT_TRUE(s.AddEdge("Ward", "Unit").ok());
  EXPECT_TRUE(s.AddEdge("Unit", "Institution").ok());
  return s;
}

TEST(DimensionSchema, CreateValidatesName) {
  EXPECT_FALSE(DimensionSchema::Create("").ok());
  EXPECT_TRUE(DimensionSchema::Create("Time").ok());
}

TEST(DimensionSchema, DuplicateCategoryRejected) {
  DimensionSchema s = DimensionSchema::Create("D").value();
  ASSERT_TRUE(s.AddCategory("C").ok());
  EXPECT_EQ(s.AddCategory("C").code(), StatusCode::kAlreadyExists);
}

TEST(DimensionSchema, EdgeValidation) {
  DimensionSchema s = HospitalSchema();
  EXPECT_EQ(s.AddEdge("Ward", "Nope").code(), StatusCode::kNotFound);
  EXPECT_EQ(s.AddEdge("Ward", "Ward").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.AddEdge("Ward", "Unit").code(), StatusCode::kAlreadyExists);
}

TEST(DimensionSchema, CycleRejected) {
  DimensionSchema s = HospitalSchema();
  EXPECT_EQ(s.AddEdge("Institution", "Ward").code(),
            StatusCode::kInvalidArgument);
}

TEST(DimensionSchema, DiamondIsAllowed) {
  // HM schemas are DAGs, not trees: Day -> Week, Day -> Month, both -> All.
  DimensionSchema s = DimensionSchema::Create("Time").value();
  for (const char* c : {"Day", "Week", "Month", "All"}) {
    ASSERT_TRUE(s.AddCategory(c).ok());
  }
  EXPECT_TRUE(s.AddEdge("Day", "Week").ok());
  EXPECT_TRUE(s.AddEdge("Day", "Month").ok());
  EXPECT_TRUE(s.AddEdge("Week", "All").ok());
  EXPECT_TRUE(s.AddEdge("Month", "All").ok());
  EXPECT_EQ(s.Parents("Day").size(), 2u);
  EXPECT_EQ(s.Level("All").value(), 2);
  EXPECT_EQ(s.Compare("Week", "Month").value(),
            CategoryOrder::kIncomparable);
}

TEST(DimensionSchema, AncestryAndCompare) {
  DimensionSchema s = HospitalSchema();
  EXPECT_TRUE(s.IsAncestor("Ward", "Institution"));
  EXPECT_FALSE(s.IsAncestor("Institution", "Ward"));
  EXPECT_FALSE(s.IsAncestor("Ward", "Ward"));  // strict
  EXPECT_EQ(s.Compare("Ward", "Unit").value(), CategoryOrder::kBelow);
  EXPECT_EQ(s.Compare("Unit", "Ward").value(), CategoryOrder::kAbove);
  EXPECT_EQ(s.Compare("Ward", "Ward").value(), CategoryOrder::kSame);
  EXPECT_FALSE(s.Compare("Ward", "Nope").ok());
}

TEST(DimensionSchema, LevelsAndExtremes) {
  DimensionSchema s = HospitalSchema();
  EXPECT_EQ(s.Level("Ward").value(), 0);
  EXPECT_EQ(s.Level("Unit").value(), 1);
  EXPECT_EQ(s.Level("Institution").value(), 2);
  EXPECT_EQ(s.BottomCategories(), std::vector<std::string>{"Ward"});
  EXPECT_EQ(s.TopCategories(), std::vector<std::string>{"Institution"});
}

TEST(DimensionInstance, MembersBelongToOneCategory) {
  DimensionInstance inst(HospitalSchema());
  ASSERT_TRUE(inst.AddMember("Ward", "W1").ok());
  EXPECT_TRUE(inst.AddMember("Ward", "W1").ok());  // idempotent
  EXPECT_EQ(inst.AddMember("Unit", "W1").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(inst.AddMember("Nope", "X").code(), StatusCode::kNotFound);
  EXPECT_EQ(inst.CategoryOf("W1").value(), "Ward");
  EXPECT_FALSE(inst.CategoryOf("unknown").ok());
}

TEST(DimensionInstance, ChildParentMustParallelSchema) {
  DimensionInstance inst(HospitalSchema());
  ASSERT_TRUE(inst.AddMember("Ward", "W1").ok());
  ASSERT_TRUE(inst.AddMember("Unit", "Standard").ok());
  ASSERT_TRUE(inst.AddMember("Institution", "H1").ok());
  EXPECT_TRUE(inst.AddChildParent("W1", "Standard").ok());
  // Skipping a level violates the schema.
  EXPECT_EQ(inst.AddChildParent("W1", "H1").code(),
            StatusCode::kInvalidArgument);
  // Wrong direction.
  EXPECT_EQ(inst.AddChildParent("Standard", "W1").code(),
            StatusCode::kInvalidArgument);
}

DimensionInstance PaperInstance() {
  DimensionInstance inst(HospitalSchema());
  for (const char* w : {"W1", "W2", "W3", "W4"}) {
    EXPECT_TRUE(inst.AddMember("Ward", w).ok());
  }
  for (const char* u : {"Standard", "Intensive", "Terminal"}) {
    EXPECT_TRUE(inst.AddMember("Unit", u).ok());
  }
  EXPECT_TRUE(inst.AddMember("Institution", "H1").ok());
  EXPECT_TRUE(inst.AddChildParent("W1", "Standard").ok());
  EXPECT_TRUE(inst.AddChildParent("W2", "Standard").ok());
  EXPECT_TRUE(inst.AddChildParent("W3", "Intensive").ok());
  EXPECT_TRUE(inst.AddChildParent("W4", "Terminal").ok());
  EXPECT_TRUE(inst.AddChildParent("Standard", "H1").ok());
  EXPECT_TRUE(inst.AddChildParent("Intensive", "H1").ok());
  EXPECT_TRUE(inst.AddChildParent("Terminal", "H1").ok());
  return inst;
}

TEST(DimensionInstance, RollUp) {
  DimensionInstance inst = PaperInstance();
  EXPECT_EQ(inst.RollUp("W1", "Unit").value(),
            std::vector<std::string>{"Standard"});
  EXPECT_EQ(inst.RollUp("W1", "Institution").value(),
            std::vector<std::string>{"H1"});
  EXPECT_EQ(inst.RollUp("W1", "Ward").value(),
            std::vector<std::string>{"W1"});
  EXPECT_FALSE(inst.RollUp("Standard", "Ward").ok());  // wrong direction
  EXPECT_FALSE(inst.RollUp("nobody", "Unit").ok());
}

TEST(DimensionInstance, DrillDown) {
  DimensionInstance inst = PaperInstance();
  auto wards = inst.DrillDown("Standard", "Ward").value();
  std::sort(wards.begin(), wards.end());
  EXPECT_EQ(wards, (std::vector<std::string>{"W1", "W2"}));
  auto all = inst.DrillDown("H1", "Ward").value();
  EXPECT_EQ(all.size(), 4u);
  EXPECT_FALSE(inst.DrillDown("W1", "Unit").ok());
}

TEST(DimensionInstance, StrictnessCheck) {
  DimensionInstance inst = PaperInstance();
  EXPECT_TRUE(inst.CheckStrict().ok());
  // A ward in two units breaks strictness at the Unit level.
  ASSERT_TRUE(inst.AddChildParent("W1", "Intensive").ok());
  Status s = inst.CheckStrict();
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find("W1"), std::string::npos);
}

TEST(DimensionInstance, HomogeneityCheck) {
  DimensionInstance inst = PaperInstance();
  EXPECT_TRUE(inst.CheckHomogeneous().ok());
  ASSERT_TRUE(inst.AddMember("Ward", "W9").ok());  // no parent unit
  Status s = inst.CheckHomogeneous();
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find("W9"), std::string::npos);
}

TEST(Dimension, CreateEnforcesOptions) {
  DimensionInstance inst = PaperInstance();
  ASSERT_TRUE(inst.AddMember("Ward", "W9").ok());
  Dimension::Options opts;
  opts.require_homogeneous = true;
  EXPECT_FALSE(Dimension::Create(inst, opts).ok());
  EXPECT_TRUE(Dimension::Create(inst).ok());  // unchecked by default
}

TEST(Dimension, EmitFactsProducesCategoriesAndEdges) {
  auto dim = Dimension::Create(PaperInstance());
  ASSERT_TRUE(dim.ok());
  datalog::Program program;
  ASSERT_TRUE(dim->EmitFacts(&program).ok());
  const auto& vocab = *program.vocab();
  size_t wards = 0, unit_ward = 0;
  for (const auto& f : program.facts()) {
    if (vocab.PredicateName(f.predicate) == "Ward") ++wards;
    if (vocab.PredicateName(f.predicate) == "UnitWard") ++unit_ward;
  }
  EXPECT_EQ(wards, 4u);
  EXPECT_EQ(unit_ward, 4u);
  // (parent, child) argument order, as in the paper.
  auto q = datalog::Parser::ParseQuery("Q(W) :- UnitWard(\"Standard\", W).",
                                       program.mutable_vocab());
  ASSERT_TRUE(q.ok());
  datalog::Instance inst = datalog::Instance::FromProgram(program);
  datalog::CqEvaluator eval(inst);
  EXPECT_EQ(eval.Answers(*q)->size(), 2u);
}

TEST(Dimension, EdgePredicateNaming) {
  EXPECT_EQ(Dimension::EdgePredicate("Unit", "Ward"), "UnitWard");
  EXPECT_EQ(Dimension::EdgePredicate("Month", "Day"), "MonthDay");
}

TEST(DimensionBuilder, FluentConstruction) {
  auto dim = DimensionBuilder("D")
                 .Category("Low")
                 .Category("High")
                 .Edge("Low", "High")
                 .Member("Low", "a")
                 .Member("High", "b")
                 .Link("a", "b")
                 .Build();
  ASSERT_TRUE(dim.ok()) << dim.status();
  EXPECT_EQ(dim->instance().RollUp("a", "High").value(),
            std::vector<std::string>{"b"});
}

TEST(DimensionBuilder, SurfacesFirstError) {
  auto dim = DimensionBuilder("D")
                 .Category("A")
                 .Category("A")  // duplicate: first error
                 .Edge("A", "Zzz")
                 .Build();
  ASSERT_FALSE(dim.ok());
  EXPECT_EQ(dim.status().code(), StatusCode::kAlreadyExists);
}

TEST(Dimension, ToDotRendersGraph) {
  auto dim = Dimension::Create(PaperInstance());
  ASSERT_TRUE(dim.ok());
  std::string dot = dim->ToDot(/*with_members=*/true);
  EXPECT_NE(dot.find("digraph \"Hospital\""), std::string::npos);
  EXPECT_NE(dot.find("\"cat:Ward\" -> \"cat:Unit\""), std::string::npos);
  EXPECT_NE(dot.find("\"m:W1\" -> \"m:Standard\""), std::string::npos);
  // Without members only the category DAG appears.
  std::string schema_only = dim->ToDot(false);
  EXPECT_EQ(schema_only.find("m:W1"), std::string::npos);
}

TEST(Dimension, ToStringRendersHierarchy) {
  auto dim = Dimension::Create(PaperInstance());
  ASSERT_TRUE(dim.ok());
  std::string s = dim->ToString();
  EXPECT_NE(s.find("dimension Hospital"), std::string::npos);
  EXPECT_NE(s.find("Institution"), std::string::npos);
  EXPECT_NE(s.find("W3"), std::string::npos);
}

}  // namespace
}  // namespace mdqa::md
