// The crash matrix: a seeded sweep that kills the durability layer at
// EVERY mutating filesystem operation of a full server lifecycle
// (recover → checkpoint → commit batches → drain checkpoint), restarts
// it on the surviving bytes, and byte-matches the recovered knowledge
// base against a from-scratch oracle. The contract under test
// (docs/durability.md):
//
//   1. Recovery never fails silently — a crash can lose only unacked
//      work, and every deviation is a labeled degradation line.
//   2. The recovered generation G satisfies acked ≤ G ≤ attempted.
//   3. The recovered state at G is BYTE-IDENTICAL (canonical image) to a
//      session built from scratch and fed the first G-1 batches, and so
//      is its assessment report — zero silent divergence.
//
// Runs entirely on FaultyEnv (in-memory disk model): deterministic,
// sanitizer-clean, no real process kills. ≥200 cases by construction
// (asserted), across crash points, seeds, and torn-tail modes.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "quality/assessor.h"
#include "quality/context.h"
#include "scenarios/hospital.h"
#include "storage/checkpoint.h"
#include "storage/fault_env.h"
#include "storage/kb_store.h"
#include "storage/session_image.h"

namespace mdqa::storage {
namespace {

constexpr int kNumBatches = 3;
constexpr char kScenario[] = "hospital";

/// Deterministic update stream: two insert-only batches, then one with a
/// deletion (which forces ApplyUpdate down the full re-chase path — both
/// maintenance strategies sit inside the matrix).
quality::DeltaBatch BatchFor(int i) {
  quality::RelationDelta delta;
  delta.relation = "Measurements";
  switch (i) {
    case 0:
      delta.insert_rows.push_back({Value::FromText("Sep/9-23:50"),
                                   Value::FromText("Nick Cave"),
                                   Value::FromText("36.9")});
      break;
    case 1:
      delta.insert_rows.push_back({Value::FromText("Sep/10-08:15"),
                                   Value::FromText("PJ Harvey"),
                                   Value::FromText("37.2")});
      delta.insert_rows.push_back({Value::FromText("Sep/10-12:05"),
                                   Value::FromText("PJ Harvey"),
                                   Value::FromText("37.4")});
      break;
    default:
      delta.delete_rows.push_back({Value::FromText("Sep/9-23:50"),
                                   Value::FromText("Nick Cave"),
                                   Value::FromText("36.9")});
      delta.insert_rows.push_back({Value::FromText("Sep/11-09:40"),
                                   Value::FromText("Nick Cave"),
                                   Value::FromText("36.8")});
      break;
  }
  quality::DeltaBatch batch;
  batch.deltas.push_back(std::move(delta));
  return batch;
}

/// Canonical serialization of a session's logical knowledge base:
/// database rows, instance facts (values + null ids, in Facts() order),
/// levels — with the physical layout (segment chain shape, freeze
/// watermarks) and run statistics masked out, because a rebuilt instance
/// legitimately re-seals its chain differently while holding the same
/// facts in the same order.
std::string CanonicalState(const quality::PreparedContext& session,
                           uint64_t generation) {
  auto image = CaptureSessionImage(session, generation, generation - 1,
                                   kScenario);
  EXPECT_TRUE(image.ok()) << image.status();
  if (!image.ok()) return "<capture failed>";
  const uint32_t watermark = image->meta.null_watermark;
  image->meta = KbMeta{};
  image->meta.generation = generation;
  image->meta.scenario = kScenario;
  image->meta.null_watermark = watermark;
  for (KbTableImage& table : image->tables) {
    table.frozen_rows = 0;
    table.segment_rows.clear();
  }
  return EncodeCheckpoint(*image);
}

/// The user-visible half of "no silent divergence": measures, quality
/// versions, and dirty tuples, rendered deterministically.
std::string RenderReport(const quality::AssessmentReport& report) {
  std::string out;
  for (const quality::QualityMeasures& m : report.per_relation) {
    out += m.ToJson();
    out += '\n';
  }
  auto render_rows = [&out](const Relation& rel) {
    for (const Tuple& row : rel.rows()) {
      for (const Value& v : row) {
        out += v.ToString();
        out += '|';
      }
      out += '\n';
    }
  };
  for (const Relation& rel : report.quality_versions) render_rows(rel);
  for (const Relation& rel : report.dirty_tuples) render_rows(rel);
  out += "precision=" + std::to_string(report.overall_precision);
  return out;
}

quality::QualityContext BuildContext() {
  auto context = scenarios::BuildHospitalContext(scenarios::HospitalOptions{});
  EXPECT_TRUE(context.ok()) << context.status();
  return std::move(*context);
}

/// Per-generation expectations, built once from scratch with no storage
/// involved: oracle state/report at generation g is Prepare + the first
/// g-1 batches.
struct Oracle {
  std::vector<std::string> state;   // [g-1] -> canonical image bytes
  std::vector<std::string> report;  // [g-1] -> rendered report
};

Oracle BuildOracle() {
  Oracle oracle;
  quality::QualityContext context = BuildContext();
  quality::Assessor assessor(&context);
  auto session = context.Prepare();
  EXPECT_TRUE(session.ok()) << session.status();
  auto report = assessor.Reassess(*session, quality::AssessmentReport{});
  EXPECT_TRUE(report.ok()) << report.status();
  oracle.state.push_back(CanonicalState(*session, 1));
  oracle.report.push_back(RenderReport(*report));
  std::optional<quality::PreparedContext> current = std::move(*session);
  for (int i = 0; i < kNumBatches; ++i) {
    auto next = current->ApplyUpdate(BatchFor(i));
    EXPECT_TRUE(next.ok()) << next.status();
    auto next_report = assessor.Reassess(*next, *report);
    EXPECT_TRUE(next_report.ok()) << next_report.status();
    current = std::move(*next);
    report = std::move(next_report);
    oracle.state.push_back(
        CanonicalState(*current, static_cast<uint64_t>(i) + 2));
    oracle.report.push_back(RenderReport(*report));
  }
  return oracle;
}

/// What the lifecycle managed to durably acknowledge before dying.
/// `acked_generation` is 0 until the initial checkpoint commits, then
/// the highest generation whose WAL append returned OK.
struct LifecycleOutcome {
  uint64_t acked_generation = 0;
  uint64_t attempted_generation = 1;
};

/// One server lifetime against `env`, mirroring mdqa_serve --data-dir:
/// recover (the dir may be empty — or hold a previous lifetime's state,
/// which is resumed exactly as the server does: restore + WAL
/// roll-forward, no re-chase), write the collapsing startup checkpoint,
/// commit the remaining batches through the WAL, then write the drain
/// checkpoint. Every storage error aborts the lifecycle — that is the
/// simulated process death.
LifecycleOutcome RunLifecycle(Env* env) {
  LifecycleOutcome outcome;
  auto store = OpenDiskKbStore(env, "db");
  if (!store.ok()) return outcome;
  auto recovered = (*store)->Recover();
  if (!recovered.ok()) return outcome;

  quality::QualityContext context = BuildContext();
  quality::Assessor assessor(&context);
  std::optional<quality::PreparedContext> current;
  std::optional<quality::AssessmentReport> report;
  uint64_t generation = 1;

  if (recovered->has_checkpoint) {
    auto database = DatabaseFromImage(recovered->image);
    EXPECT_TRUE(database.ok()) << database.status();
    if (!database.ok()) return outcome;
    if (!context.ReplaceDatabase(std::move(*database)).ok()) return outcome;
    auto shared = std::make_shared<KbImage>(std::move(recovered->image));
    auto restored = context.PrepareRestored(datalog::ChaseOptions{},
                                            ImageRebuilder(shared));
    EXPECT_TRUE(restored.ok()) << restored.status();
    if (!restored.ok()) return outcome;
    auto rep = assessor.Reassess(*restored, quality::AssessmentReport{});
    EXPECT_TRUE(rep.ok()) << rep.status();
    if (!rep.ok()) return outcome;
    current = std::move(*restored);
    report = std::move(*rep);
    generation = shared->meta.generation;
    for (const WalRecord& record : recovered->wal_records) {
      auto next = current->ApplyUpdate(record.batch);
      EXPECT_TRUE(next.ok()) << next.status();
      if (!next.ok()) return outcome;
      auto next_report = assessor.Reassess(*next, *report);
      EXPECT_TRUE(next_report.ok()) << next_report.status();
      if (!next_report.ok()) return outcome;
      current = std::move(*next);
      report = std::move(*next_report);
      generation = record.target_generation;
    }
    // Everything recovered was already durable before this lifetime.
    outcome.acked_generation = generation;
    outcome.attempted_generation = generation;
  } else {
    auto session = context.Prepare();
    EXPECT_TRUE(session.ok()) << session.status();
    if (!session.ok()) return outcome;
    auto rep = assessor.Reassess(*session, quality::AssessmentReport{});
    EXPECT_TRUE(rep.ok()) << rep.status();
    if (!rep.ok()) return outcome;
    current = std::move(*session);
    report = std::move(*rep);
  }

  // The collapsing startup checkpoint (folds replayed WAL records in;
  // gives a fresh store its durable base so AppendBatch has a WAL).
  auto image = CaptureSessionImage(*current, generation, generation - 1,
                                   kScenario);
  EXPECT_TRUE(image.ok()) << image.status();
  if (!image.ok()) return outcome;
  if (!(*store)->WriteCheckpoint(*image).ok()) return outcome;
  outcome.acked_generation = generation;

  for (int i = static_cast<int>(generation) - 1; i < kNumBatches; ++i) {
    auto next = current->ApplyUpdate(BatchFor(i));
    EXPECT_TRUE(next.ok()) << next.status();
    if (!next.ok()) return outcome;
    auto next_report = assessor.Reassess(*next, *report);
    EXPECT_TRUE(next_report.ok()) << next_report.status();
    if (!next_report.ok()) return outcome;
    // The WAL append is the commit point; a failure here means the
    // client was never acked and the batch may legally be lost.
    outcome.attempted_generation = generation + 1;
    if (!(*store)->AppendBatch(BatchFor(i), generation + 1).ok()) {
      return outcome;
    }
    ++generation;
    outcome.acked_generation = generation;
    current = std::move(*next);
    report = std::move(*next_report);
  }

  // The drain checkpoint (mdqa_serve Shutdown): folds the WAL into a
  // fresh image. Crashing inside it must leave the pre-drain state
  // (checkpoint 1 + full WAL) recoverable.
  auto drain_image = CaptureSessionImage(*current, generation,
                                         generation - 1, kScenario);
  EXPECT_TRUE(drain_image.ok()) << drain_image.status();
  if (drain_image.ok()) {
    (void)(*store)->WriteCheckpoint(*drain_image);
  }
  return outcome;
}

/// Restart on the survivors and check the three contract clauses against
/// the oracle. Writes the recovered generation (0 = nothing recoverable)
/// to `*recovered_generation`.
void VerifyRecovery(Env* env, const Oracle& oracle,
                    const LifecycleOutcome& outcome, const std::string& label,
                    uint64_t* recovered_generation) {
  *recovered_generation = 0;
  auto store = OpenDiskKbStore(env, "db");
  ASSERT_TRUE(store.ok()) << label << ": " << store.status();
  auto recovered = (*store)->Recover();
  if (!recovered.ok() || !recovered->has_checkpoint) {
    // Nothing recoverable is only legal when nothing was ever acked.
    EXPECT_EQ(outcome.acked_generation, 0u)
        << label << ": acked state vanished: "
        << (recovered.ok() ? "no checkpoint" : recovered.status().ToString());
    return;
  }

  const uint64_t generation =
      recovered->image.meta.generation + recovered->wal_records.size();
  EXPECT_GE(generation, outcome.acked_generation) << label;
  EXPECT_LE(generation, outcome.attempted_generation) << label;
  ASSERT_LE(generation, oracle.state.size()) << label;

  // Rebuild exactly as mdqa_serve --data-dir does: restored database →
  // PrepareRestored (no chase) → WAL roll-forward via ApplyUpdate.
  quality::QualityContext context = BuildContext();
  auto database = DatabaseFromImage(recovered->image);
  ASSERT_TRUE(database.ok()) << label << ": " << database.status();
  ASSERT_TRUE(context.ReplaceDatabase(std::move(*database)).ok()) << label;
  auto image = std::make_shared<KbImage>(std::move(recovered->image));
  auto restored = context.PrepareRestored(datalog::ChaseOptions{},
                                          ImageRebuilder(image));
  ASSERT_TRUE(restored.ok()) << label << ": " << restored.status();
  quality::Assessor assessor(&context);
  auto report = assessor.Reassess(*restored, quality::AssessmentReport{});
  ASSERT_TRUE(report.ok()) << label << ": " << report.status();

  std::optional<quality::PreparedContext> session = std::move(*restored);
  uint64_t replayed = image->meta.generation;
  for (const WalRecord& record : recovered->wal_records) {
    ASSERT_EQ(record.target_generation, replayed + 1) << label;
    auto next = session->ApplyUpdate(record.batch);
    ASSERT_TRUE(next.ok()) << label << ": " << next.status();
    auto next_report = assessor.Reassess(*next, *report);
    ASSERT_TRUE(next_report.ok()) << label << ": " << next_report.status();
    session = std::move(*next);
    report = std::move(next_report);
    ++replayed;
  }
  ASSERT_EQ(replayed, generation) << label;

  EXPECT_EQ(CanonicalState(*session, generation), oracle.state[generation - 1])
      << label << ": recovered KB diverges from the from-scratch oracle at "
      << "generation " << generation;
  EXPECT_EQ(RenderReport(*report), oracle.report[generation - 1])
      << label << ": recovered assessment report diverges at generation "
      << generation;
  *recovered_generation = generation;
}

TEST(CrashMatrix, EveryCrashPointRecoversToTheOracle) {
  const Oracle oracle = BuildOracle();
  ASSERT_EQ(oracle.state.size(), static_cast<size_t>(kNumBatches) + 1);

  // Dry run: count the mutating filesystem operations of one lifecycle.
  uint64_t total_ops = 0;
  {
    FaultyEnv env(/*seed=*/1);
    LifecycleOutcome outcome = RunLifecycle(&env);
    ASSERT_EQ(outcome.acked_generation, 1u + kNumBatches);
    total_ops = env.ops();
    ASSERT_GT(total_ops, 10u);
    // The no-crash path must also verify (and doubles as the baseline).
    uint64_t generation = 0;
    VerifyRecovery(&env, oracle, outcome, "no-crash", &generation);
    EXPECT_EQ(generation, 1u + kNumBatches);
  }

  // Enough (seed × torn-tail) sweeps of every crash point to clear the
  // 200-case floor no matter how compact a lifecycle gets.
  std::vector<uint64_t> seeds = {1, 2, 3};
  while (seeds.size() * 2 * total_ops < 200) {
    seeds.push_back(seeds.back() + 1);
  }

  size_t cases = 0;
  size_t nothing_recoverable = 0;
  for (uint64_t seed : seeds) {
    for (bool torn : {false, true}) {
      for (uint64_t crash_at = 1; crash_at <= total_ops; ++crash_at) {
        FaultyEnv env(seed);
        env.SetTornTailOnCrash(torn);
        env.ArmCrashAtOp(crash_at);
        LifecycleOutcome outcome = RunLifecycle(&env);
        env.Crash();  // the machine comes back up
        const std::string label = "seed=" + std::to_string(seed) +
                                  " torn=" + std::to_string(torn) +
                                  " crash_at=" + std::to_string(crash_at);
        uint64_t generation = 0;
        VerifyRecovery(&env, oracle, outcome, label, &generation);
        if (generation == 0) ++nothing_recoverable;
        ++cases;
        if (HasFatalFailure()) {
          FAIL() << "aborting matrix after first contract violation: "
                 << label;
        }
      }
    }
  }
  // The acceptance floor: a real matrix, not a handful of spot checks.
  EXPECT_GE(cases, 200u) << "crash matrix shrank below the contract";
  // Early crash points legitimately recover nothing, but most of the
  // lifecycle happens after the first checkpoint committed.
  EXPECT_LT(nothing_recoverable, cases / 2);
}

/// Double-crash: die once mid-lifecycle, restart, then die again during
/// the *second* lifetime — recovery must be idempotent, not a one-shot.
TEST(CrashMatrix, CrashDuringSecondLifetimeIsStillRecoverable) {
  const Oracle oracle = BuildOracle();
  size_t cases = 0;
  for (uint64_t first_crash : {8u, 14u, 22u}) {
    for (uint64_t second_delta = 2; second_delta <= 10; second_delta += 2) {
      FaultyEnv env(/*seed=*/7);
      env.ArmCrashAtOp(first_crash);
      LifecycleOutcome first = RunLifecycle(&env);
      env.Crash();
      env.ArmCrashAtOp(second_delta);  // relative to the restart
      LifecycleOutcome second = RunLifecycle(&env);
      env.Crash();
      // Whatever survived two crashes must satisfy the contract against
      // the union of both lifetimes' acknowledgements (durable state
      // only ever grows).
      LifecycleOutcome combined;
      combined.acked_generation =
          std::max(first.acked_generation, second.acked_generation);
      combined.attempted_generation =
          std::max({first.attempted_generation, second.attempted_generation,
                    combined.acked_generation});
      const std::string label = "first=" + std::to_string(first_crash) +
                                " second=+" + std::to_string(second_delta);
      uint64_t generation = 0;
      VerifyRecovery(&env, oracle, combined, label, &generation);
      ++cases;
      if (HasFatalFailure()) FAIL() << label;
    }
  }
  EXPECT_EQ(cases, 15u);
}

/// Clones the persisted bytes of `from` into a fresh FaultyEnv (files
/// only — all synced), so corruption batteries don't re-run the whole
/// lifecycle per case.
std::unique_ptr<FaultyEnv> ClonePersisted(FaultyEnv* from,
                                          const std::string& dir) {
  auto clone = std::make_unique<FaultyEnv>(/*seed=*/99);
  EXPECT_TRUE(clone->CreateDir(dir).ok());
  auto entries = from->ListDir(dir);
  EXPECT_TRUE(entries.ok());
  if (!entries.ok()) return clone;
  for (const std::string& name : *entries) {
    auto content = from->ReadFile(dir + "/" + name, 1ull << 30);
    EXPECT_TRUE(content.ok()) << name << ": " << content.status();
    if (!content.ok()) continue;
    auto file = clone->NewWritableFile(dir + "/" + name);
    EXPECT_TRUE(file.ok());
    if (!file.ok()) continue;
    EXPECT_TRUE((*file)->Append(*content).ok());
    EXPECT_TRUE((*file)->Sync().ok());
  }
  EXPECT_TRUE(clone->SyncDir(dir).ok());
  return clone;
}

/// Bit-rot battery: flip one persisted byte of the newest checkpoint at
/// many offsets; recovery must either fall back to the older checkpoint
/// (loudly, replaying its WAL back to the committed generation) or
/// refuse — never serve the rotten image as healthy.
TEST(CrashMatrix, BitRotNeverServesACorruptImage) {
  const Oracle oracle = BuildOracle();
  // One full lifecycle: leaves ckpt-1 (+ its 3-record WAL) and the
  // drain checkpoint ckpt-4 behind (retention keeps both).
  FaultyEnv pristine(/*seed=*/5);
  LifecycleOutcome outcome = RunLifecycle(&pristine);
  ASSERT_EQ(outcome.acked_generation, 4u);
  const std::string newest = "db/ckpt-00000000000000000004";
  ASSERT_TRUE(pristine.FileExists(newest));
  auto size = pristine.FileSize(newest);
  ASSERT_TRUE(size.ok()) << size.status();

  size_t cases = 0;
  size_t fallbacks = 0;
  for (size_t offset = 0; offset < *size; offset += 1 + offset / 5) {
    auto env = ClonePersisted(&pristine, "db");
    ASSERT_TRUE(env->CorruptByte(newest, offset, 0x20).ok());
    const std::string label = "bitrot offset=" + std::to_string(offset);
    uint64_t generation = 0;
    // The older checkpoint and its WAL are intact, so the full committed
    // generation must still be recovered — just via the fallback path,
    // with a degradation line naming the rotten file.
    VerifyRecovery(env.get(), oracle, outcome, label, &generation);
    if (HasFatalFailure()) FAIL() << label;
    EXPECT_EQ(generation, 4u) << label;

    auto reopened = OpenDiskKbStore(env.get(), "db");
    ASSERT_TRUE(reopened.ok());
    auto state = (*reopened)->Recover();
    ASSERT_TRUE(state.ok()) << label << ": " << state.status();
    if (state->image.meta.generation == 1) {
      ++fallbacks;
      EXPECT_FALSE(state->degradations.empty())
          << label << ": silent fallback past a corrupt checkpoint";
    }
    ++cases;
  }
  EXPECT_GE(cases, 30u);
  EXPECT_GT(fallbacks, 0u);
}

}  // namespace
}  // namespace mdqa::storage
