#include "datalog/instance.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"

namespace mdqa::datalog {
namespace {

TEST(FactTable, InsertDedupesAndKeepsMinLevel) {
  FactTable t(2);
  Term row[2] = {Term::Constant(1), Term::Constant(2)};
  EXPECT_TRUE(t.Insert(row, 3));
  EXPECT_FALSE(t.Insert(row, 5));  // duplicate
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.Level(0), 3u);
  EXPECT_FALSE(t.Insert(row, 1));  // lowers the level
  EXPECT_EQ(t.Level(0), 1u);
}

TEST(FactTable, ContainsAndRow) {
  FactTable t(2);
  Term a[2] = {Term::Constant(1), Term::Null(0)};
  Term b[2] = {Term::Constant(1), Term::Null(1)};
  EXPECT_TRUE(t.Insert(a, 0));
  EXPECT_TRUE(t.Contains(a));
  EXPECT_FALSE(t.Contains(b));  // distinct nulls are distinct values
  EXPECT_EQ(t.Row(0)[1], Term::Null(0));
}

TEST(FactTable, ProbeFindsRowsByPosition) {
  FactTable t(2);
  Term r1[2] = {Term::Constant(1), Term::Constant(10)};
  Term r2[2] = {Term::Constant(1), Term::Constant(20)};
  Term r3[2] = {Term::Constant(2), Term::Constant(10)};
  t.Insert(r1, 0);
  t.Insert(r2, 0);
  t.Insert(r3, 0);
  EXPECT_EQ(t.Probe(0, Term::Constant(1)).size(), 2u);
  EXPECT_EQ(t.Probe(0, Term::Constant(2)).size(), 1u);
  EXPECT_EQ(t.Probe(1, Term::Constant(10)).size(), 2u);
  EXPECT_TRUE(t.Probe(1, Term::Constant(99)).empty());
}

TEST(Instance, FromProgramLoadsFactsAtLevelZero) {
  auto p = Parser::ParseProgram("P(\"a\"). P(\"b\"). Q(\"a\", \"b\").");
  ASSERT_TRUE(p.ok());
  Instance inst = Instance::FromProgram(*p);
  EXPECT_EQ(inst.TotalFacts(), 3u);
  uint32_t pred = p->vocab()->FindPredicate("P");
  EXPECT_EQ(inst.CountFacts(pred), 2u);
  EXPECT_EQ(inst.Table(pred)->Level(0), 0u);
}

TEST(Instance, AddFactReportsNovelty) {
  auto p = Parser::ParseProgram("P(\"a\").");
  ASSERT_TRUE(p.ok());
  Instance inst = Instance::FromProgram(*p);
  Atom f = p->facts()[0];
  EXPECT_FALSE(inst.AddFact(f, 1));  // already present
  f.terms[0] = p->vocab()->Str("new");
  EXPECT_TRUE(inst.AddFact(f, 1));
  EXPECT_TRUE(inst.Contains(f));
}

TEST(Instance, PredicatesSortedAndCounted) {
  auto p = Parser::ParseProgram("B(1). A(1). A(2).");
  ASSERT_TRUE(p.ok());
  Instance inst = Instance::FromProgram(*p);
  auto preds = inst.Predicates();
  ASSERT_EQ(preds.size(), 2u);
  EXPECT_LT(preds[0], preds[1]);
}

TEST(Instance, FactsRoundTrip) {
  auto p = Parser::ParseProgram("P(\"x\", 1). P(\"y\", 2).");
  ASSERT_TRUE(p.ok());
  Instance inst = Instance::FromProgram(*p);
  uint32_t pred = p->vocab()->FindPredicate("P");
  auto facts = inst.Facts(pred);
  ASSERT_EQ(facts.size(), 2u);
  for (const Atom& f : facts) EXPECT_TRUE(inst.Contains(f));
}

TEST(Instance, FactsIterateInInsertionOrder) {
  // The contract pinned in instance.h: Facts(pred) — and Row(i) under it
  // — list rows in first-insertion order. Duplicate inserts and level
  // updates must not reorder; the parallel-vs-serial differential
  // harness depends on this determinism.
  auto vocab = std::make_shared<Vocabulary>();
  Instance inst(vocab);
  auto pred = vocab->InternPredicate("P", 1);
  ASSERT_TRUE(pred.ok());
  const int kRows = 32;
  for (int i = 0; i < kRows; ++i) {
    // Insert out of value order so insertion order != term order.
    Term t = vocab->Str("v" + std::to_string((i * 13) % kRows));
    EXPECT_TRUE(inst.AddFact(Atom(*pred, {t}), 0));
  }
  // Duplicate re-inserts at other levels: novelty is false, order keeps.
  for (int i = 0; i < kRows; ++i) {
    Term t = vocab->Str("v" + std::to_string((i * 13) % kRows));
    EXPECT_FALSE(inst.AddFact(Atom(*pred, {t}), 5));
  }
  std::vector<Atom> facts = inst.Facts(*pred);
  ASSERT_EQ(facts.size(), static_cast<size_t>(kRows));
  const FactTable* table = inst.Table(*pred);
  ASSERT_NE(table, nullptr);
  for (int i = 0; i < kRows; ++i) {
    Term expected = vocab->Str("v" + std::to_string((i * 13) % kRows));
    EXPECT_EQ(facts[static_cast<size_t>(i)].terms[0], expected)
        << "Facts() out of insertion order at row " << i;
    EXPECT_EQ(table->Row(static_cast<uint32_t>(i))[0], expected)
        << "Row() out of insertion order at row " << i;
  }
}

TEST(Instance, LoadRelationAndDatabase) {
  Database db;
  ASSERT_TRUE(db.InsertText("R", {"a", "1"}).ok());
  ASSERT_TRUE(db.InsertText("R", {"b", "2"}).ok());
  ASSERT_TRUE(db.InsertText("S", {"x"}).ok());
  auto vocab = std::make_shared<Vocabulary>();
  Instance inst(vocab);
  ASSERT_TRUE(inst.LoadDatabase(db).ok());
  EXPECT_EQ(inst.TotalFacts(), 3u);
  EXPECT_EQ(inst.CountFacts(vocab->FindPredicate("R")), 2u);
}

TEST(Instance, LoadRelationRejectsArityDrift) {
  Database db;
  ASSERT_TRUE(db.InsertText("R", {"a", "1"}).ok());
  auto vocab = std::make_shared<Vocabulary>();
  ASSERT_TRUE(vocab->InternPredicate("R", 3).ok());
  Instance inst(vocab);
  auto rel = db.GetRelation("R");
  ASSERT_TRUE(rel.ok());
  EXPECT_FALSE(inst.LoadRelation(**rel).ok());
}

TEST(Instance, ExportRelationDropsOrKeepsNulls) {
  auto vocab = std::make_shared<Vocabulary>();
  ASSERT_TRUE(vocab->InternPredicate("P", 2).ok());
  uint32_t pred = vocab->FindPredicate("P");
  Instance inst(vocab);
  inst.AddFact(Atom(pred, {vocab->Str("a"), vocab->Str("b")}), 0);
  inst.AddFact(Atom(pred, {vocab->Str("c"), vocab->FreshNull()}), 1);

  auto certain = inst.ExportRelation(pred, "P", {"x", "y"}, false);
  ASSERT_TRUE(certain.ok());
  EXPECT_EQ(certain->size(), 1u);

  auto all = inst.ExportRelation(pred, "P", {}, true);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 2u);
  EXPECT_EQ(all->schema().attribute(0).name, "a0");
}

TEST(Instance, ExportRelationChecksAttributeCount) {
  auto vocab = std::make_shared<Vocabulary>();
  ASSERT_TRUE(vocab->InternPredicate("P", 2).ok());
  Instance inst(vocab);
  EXPECT_FALSE(
      inst.ExportRelation(vocab->FindPredicate("P"), "P", {"one"}, true).ok());
}

TEST(Instance, ToStringIsSortedAndReparseable) {
  auto p = Parser::ParseProgram("B(2). A(1). B(1).");
  ASSERT_TRUE(p.ok());
  Instance inst = Instance::FromProgram(*p);
  std::string s = inst.ToString();
  EXPECT_EQ(s, "A(1).\nB(1).\nB(2).\n");
}

TEST(Vocabulary, PredicateArityConflictRejected) {
  Vocabulary vocab;
  ASSERT_TRUE(vocab.InternPredicate("P", 2).ok());
  EXPECT_TRUE(vocab.InternPredicate("P", 2).ok());
  EXPECT_FALSE(vocab.InternPredicate("P", 3).ok());
}

TEST(Vocabulary, FreshVariablesNeverCollideWithParsedOnes) {
  Vocabulary vocab;
  vocab.InternVariable("X");
  Term fresh = vocab.FreshVariable();
  EXPECT_NE(vocab.VariableName(fresh.id()), "X");
  EXPECT_EQ(vocab.VariableName(fresh.id()).substr(0, 2), "$v");
}

TEST(Vocabulary, FreshNullsAreSequential) {
  Vocabulary vocab;
  Term n0 = vocab.FreshNull();
  Term n1 = vocab.FreshNull();
  EXPECT_NE(n0, n1);
  EXPECT_EQ(vocab.NumNulls(), 2u);
  EXPECT_EQ(vocab.TermToString(n0), "_n0");
}

}  // namespace
}  // namespace mdqa::datalog
