#include "datalog/instance.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"

namespace mdqa::datalog {
namespace {

TEST(FactTable, InsertDedupesAndKeepsMinLevel) {
  FactTable t(2);
  Term row[2] = {Term::Constant(1), Term::Constant(2)};
  EXPECT_TRUE(t.Insert(row, 3));
  EXPECT_FALSE(t.Insert(row, 5));  // duplicate
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.Level(0), 3u);
  EXPECT_FALSE(t.Insert(row, 1));  // lowers the level
  EXPECT_EQ(t.Level(0), 1u);
}

TEST(FactTable, ContainsAndRow) {
  FactTable t(2);
  Term a[2] = {Term::Constant(1), Term::Null(0)};
  Term b[2] = {Term::Constant(1), Term::Null(1)};
  EXPECT_TRUE(t.Insert(a, 0));
  EXPECT_TRUE(t.Contains(a));
  EXPECT_FALSE(t.Contains(b));  // distinct nulls are distinct values
  EXPECT_EQ(t.Row(0)[1], Term::Null(0));
}

TEST(FactTable, ProbeFindsRowsByPosition) {
  FactTable t(2);
  Term r1[2] = {Term::Constant(1), Term::Constant(10)};
  Term r2[2] = {Term::Constant(1), Term::Constant(20)};
  Term r3[2] = {Term::Constant(2), Term::Constant(10)};
  t.Insert(r1, 0);
  t.Insert(r2, 0);
  t.Insert(r3, 0);
  EXPECT_EQ(t.Probe(0, Term::Constant(1)).size(), 2u);
  EXPECT_EQ(t.Probe(0, Term::Constant(2)).size(), 1u);
  EXPECT_EQ(t.Probe(1, Term::Constant(10)).size(), 2u);
  EXPECT_TRUE(t.Probe(1, Term::Constant(99)).empty());
}

TEST(Instance, FromProgramLoadsFactsAtLevelZero) {
  auto p = Parser::ParseProgram("P(\"a\"). P(\"b\"). Q(\"a\", \"b\").");
  ASSERT_TRUE(p.ok());
  Instance inst = Instance::FromProgram(*p);
  EXPECT_EQ(inst.TotalFacts(), 3u);
  uint32_t pred = p->vocab()->FindPredicate("P");
  EXPECT_EQ(inst.CountFacts(pred), 2u);
  EXPECT_EQ(inst.Table(pred)->Level(0), 0u);
}

TEST(Instance, AddFactReportsNovelty) {
  auto p = Parser::ParseProgram("P(\"a\").");
  ASSERT_TRUE(p.ok());
  Instance inst = Instance::FromProgram(*p);
  Atom f = p->facts()[0];
  EXPECT_FALSE(inst.AddFact(f, 1));  // already present
  f.terms[0] = p->vocab()->Str("new");
  EXPECT_TRUE(inst.AddFact(f, 1));
  EXPECT_TRUE(inst.Contains(f));
}

TEST(Instance, PredicatesSortedAndCounted) {
  auto p = Parser::ParseProgram("B(1). A(1). A(2).");
  ASSERT_TRUE(p.ok());
  Instance inst = Instance::FromProgram(*p);
  auto preds = inst.Predicates();
  ASSERT_EQ(preds.size(), 2u);
  EXPECT_LT(preds[0], preds[1]);
}

TEST(Instance, FactsRoundTrip) {
  auto p = Parser::ParseProgram("P(\"x\", 1). P(\"y\", 2).");
  ASSERT_TRUE(p.ok());
  Instance inst = Instance::FromProgram(*p);
  uint32_t pred = p->vocab()->FindPredicate("P");
  auto facts = inst.Facts(pred);
  ASSERT_EQ(facts.size(), 2u);
  for (const Atom& f : facts) EXPECT_TRUE(inst.Contains(f));
}

TEST(Instance, FactsIterateInInsertionOrder) {
  // The contract pinned in instance.h: Facts(pred) — and Row(i) under it
  // — list rows in first-insertion order. Duplicate inserts and level
  // updates must not reorder; the parallel-vs-serial differential
  // harness depends on this determinism.
  auto vocab = std::make_shared<Vocabulary>();
  Instance inst(vocab);
  auto pred = vocab->InternPredicate("P", 1);
  ASSERT_TRUE(pred.ok());
  const int kRows = 32;
  for (int i = 0; i < kRows; ++i) {
    // Insert out of value order so insertion order != term order.
    Term t = vocab->Str("v" + std::to_string((i * 13) % kRows));
    EXPECT_TRUE(inst.AddFact(Atom(*pred, {t}), 0));
  }
  // Duplicate re-inserts at other levels: novelty is false, order keeps.
  for (int i = 0; i < kRows; ++i) {
    Term t = vocab->Str("v" + std::to_string((i * 13) % kRows));
    EXPECT_FALSE(inst.AddFact(Atom(*pred, {t}), 5));
  }
  std::vector<Atom> facts = inst.Facts(*pred);
  ASSERT_EQ(facts.size(), static_cast<size_t>(kRows));
  const FactTable* table = inst.Table(*pred);
  ASSERT_NE(table, nullptr);
  for (int i = 0; i < kRows; ++i) {
    Term expected = vocab->Str("v" + std::to_string((i * 13) % kRows));
    EXPECT_EQ(facts[static_cast<size_t>(i)].terms[0], expected)
        << "Facts() out of insertion order at row " << i;
    EXPECT_EQ(table->Row(static_cast<uint32_t>(i))[0], expected)
        << "Row() out of insertion order at row " << i;
  }
}

TEST(Instance, LoadRelationAndDatabase) {
  Database db;
  ASSERT_TRUE(db.InsertText("R", {"a", "1"}).ok());
  ASSERT_TRUE(db.InsertText("R", {"b", "2"}).ok());
  ASSERT_TRUE(db.InsertText("S", {"x"}).ok());
  auto vocab = std::make_shared<Vocabulary>();
  Instance inst(vocab);
  ASSERT_TRUE(inst.LoadDatabase(db).ok());
  EXPECT_EQ(inst.TotalFacts(), 3u);
  EXPECT_EQ(inst.CountFacts(vocab->FindPredicate("R")), 2u);
}

TEST(Instance, LoadRelationRejectsArityDrift) {
  Database db;
  ASSERT_TRUE(db.InsertText("R", {"a", "1"}).ok());
  auto vocab = std::make_shared<Vocabulary>();
  ASSERT_TRUE(vocab->InternPredicate("R", 3).ok());
  Instance inst(vocab);
  auto rel = db.GetRelation("R");
  ASSERT_TRUE(rel.ok());
  EXPECT_FALSE(inst.LoadRelation(**rel).ok());
}

TEST(Instance, ExportRelationDropsOrKeepsNulls) {
  auto vocab = std::make_shared<Vocabulary>();
  ASSERT_TRUE(vocab->InternPredicate("P", 2).ok());
  uint32_t pred = vocab->FindPredicate("P");
  Instance inst(vocab);
  inst.AddFact(Atom(pred, {vocab->Str("a"), vocab->Str("b")}), 0);
  inst.AddFact(Atom(pred, {vocab->Str("c"), vocab->FreshNull()}), 1);

  auto certain = inst.ExportRelation(pred, "P", {"x", "y"}, false);
  ASSERT_TRUE(certain.ok());
  EXPECT_EQ(certain->size(), 1u);

  auto all = inst.ExportRelation(pred, "P", {}, true);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 2u);
  EXPECT_EQ(all->schema().attribute(0).name, "a0");
}

TEST(Instance, ExportRelationChecksAttributeCount) {
  auto vocab = std::make_shared<Vocabulary>();
  ASSERT_TRUE(vocab->InternPredicate("P", 2).ok());
  Instance inst(vocab);
  EXPECT_FALSE(
      inst.ExportRelation(vocab->FindPredicate("P"), "P", {"one"}, true).ok());
}

TEST(Instance, ToStringIsSortedAndReparseable) {
  auto p = Parser::ParseProgram("B(2). A(1). B(1).");
  ASSERT_TRUE(p.ok());
  Instance inst = Instance::FromProgram(*p);
  std::string s = inst.ToString();
  EXPECT_EQ(s, "A(1).\nB(1).\nB(2).\n");
}

TEST(Instance, ExportRelationRendersNullsWhenKept) {
  auto vocab = std::make_shared<Vocabulary>();
  ASSERT_TRUE(vocab->InternPredicate("P", 2).ok());
  uint32_t pred = vocab->FindPredicate("P");
  Instance inst(vocab);
  Term null = vocab->FreshNull();
  inst.AddFact(Atom(pred, {vocab->Str("a"), null}), 1);

  auto dropped = inst.ExportRelation(pred, "P", {"x", "y"}, false);
  ASSERT_TRUE(dropped.ok());
  EXPECT_TRUE(dropped->empty());

  auto kept = inst.ExportRelation(pred, "P", {"x", "y"}, true);
  ASSERT_TRUE(kept.ok());
  ASSERT_EQ(kept->size(), 1u);
  // The labeled null rides along as its display string.
  EXPECT_EQ(kept->row(0)[1], Value::Str(vocab->TermToString(null)));
}

TEST(FactTable, MemoryEstimateBytesIsMonotone) {
  FactTable t(3);
  uint64_t prev = t.MemoryEstimateBytes();
  for (int i = 0; i < 256; ++i) {
    Term row[3] = {Term::Constant(static_cast<uint32_t>(i)),
                   Term::Constant(static_cast<uint32_t>(i % 7)),
                   Term::Constant(42)};
    EXPECT_TRUE(t.Insert(row, 0));
    const uint64_t now = t.MemoryEstimateBytes();
    EXPECT_GE(now, prev) << "estimate shrank after insert " << i;
    prev = now;
  }
  // Duplicate inserts change nothing, so the estimate must not move.
  Term dup[3] = {Term::Constant(0), Term::Constant(0), Term::Constant(42)};
  EXPECT_FALSE(t.Insert(dup, 0));
  EXPECT_EQ(t.MemoryEstimateBytes(), prev);
  EXPECT_GT(prev, 0u);
}

TEST(Instance, MemoryEstimateBytesGrowsWithFacts) {
  auto p = Parser::ParseProgram("P(\"a\").");
  ASSERT_TRUE(p.ok());
  Instance inst = Instance::FromProgram(*p);
  const uint64_t base = inst.MemoryEstimateBytes();
  EXPECT_GT(base, 0u);
  uint32_t pred = p->vocab()->FindPredicate("P");
  uint64_t prev = base;
  for (int i = 0; i < 64; ++i) {
    inst.AddFact(Atom(pred, {p->mutable_vocab()->Str("c" + std::to_string(i))}),
                 0);
    const uint64_t now = inst.MemoryEstimateBytes();
    EXPECT_GE(now, prev);
    prev = now;
  }
  EXPECT_GT(prev, base);
}

TEST(Instance, SnapshotSharesTablesUntilMutation) {
  auto p = Parser::ParseProgram("P(\"a\"). Q(\"b\").");
  ASSERT_TRUE(p.ok());
  Instance base = Instance::FromProgram(*p);
  uint32_t pred_p = p->vocab()->FindPredicate("P");
  uint32_t pred_q = p->vocab()->FindPredicate("Q");

  Instance snap = base.Snapshot();
  EXPECT_TRUE(snap.SharesTableWith(base, pred_p));
  EXPECT_TRUE(snap.SharesTableWith(base, pred_q));

  // Mutating P through the snapshot clones only P's table.
  snap.AddFact(Atom(pred_p, {p->mutable_vocab()->Str("z")}), 0);
  EXPECT_FALSE(snap.SharesTableWith(base, pred_p));
  EXPECT_TRUE(snap.SharesTableWith(base, pred_q));
  EXPECT_EQ(base.CountFacts(pred_p), 1u);  // the base never sees the write
  EXPECT_EQ(snap.CountFacts(pred_p), 2u);
}

TEST(Instance, GenerationBumpsOnMutationOnly) {
  auto p = Parser::ParseProgram("P(\"a\").");
  ASSERT_TRUE(p.ok());
  Instance inst = Instance::FromProgram(*p);
  uint32_t pred = p->vocab()->FindPredicate("P");
  const uint64_t g0 = inst.generation();
  Instance snap = inst.Snapshot();
  EXPECT_EQ(snap.generation(), g0);  // snapshots are reads
  inst.AddFact(Atom(pred, {p->mutable_vocab()->Str("b")}), 0);
  EXPECT_GT(inst.generation(), g0);
  EXPECT_EQ(snap.generation(), g0);
}

TEST(Instance, EnsureGenerationAboveIsMonotone) {
  auto vocab = std::make_shared<Vocabulary>();
  Instance inst(vocab);
  const uint64_t g0 = inst.generation();
  inst.EnsureGenerationAbove(g0 + 41);
  EXPECT_GT(inst.generation(), g0 + 41);
  const uint64_t g1 = inst.generation();
  inst.EnsureGenerationAbove(0);  // already above: no-op
  EXPECT_EQ(inst.generation(), g1);
}

TEST(Instance, FreezeWatermarksSegments) {
  auto vocab = std::make_shared<Vocabulary>();
  ASSERT_TRUE(vocab->InternPredicate("P", 1).ok());
  uint32_t pred = vocab->FindPredicate("P");
  Instance inst(vocab);
  inst.AddFact(Atom(pred, {vocab->Str("a")}), 0);
  inst.AddFact(Atom(pred, {vocab->Str("b")}), 0);
  EXPECT_EQ(inst.Table(pred)->frozen_rows(), 0u);
  inst.Freeze();
  EXPECT_EQ(inst.Table(pred)->frozen_rows(), 2u);
  // Appends land in the mutable overlay above the watermark.
  inst.AddFact(Atom(pred, {vocab->Str("c")}), 1);
  EXPECT_EQ(inst.Table(pred)->frozen_rows(), 2u);
  EXPECT_EQ(inst.Table(pred)->size(), 3u);
}

TEST(Vocabulary, PredicateArityConflictRejected) {
  Vocabulary vocab;
  ASSERT_TRUE(vocab.InternPredicate("P", 2).ok());
  EXPECT_TRUE(vocab.InternPredicate("P", 2).ok());
  EXPECT_FALSE(vocab.InternPredicate("P", 3).ok());
}

TEST(Vocabulary, FreshVariablesNeverCollideWithParsedOnes) {
  Vocabulary vocab;
  vocab.InternVariable("X");
  Term fresh = vocab.FreshVariable();
  EXPECT_NE(vocab.VariableName(fresh.id()), "X");
  EXPECT_EQ(vocab.VariableName(fresh.id()).substr(0, 2), "$v");
}

TEST(Vocabulary, FreshNullsAreSequential) {
  Vocabulary vocab;
  Term n0 = vocab.FreshNull();
  Term n1 = vocab.FreshNull();
  EXPECT_NE(n0, n1);
  EXPECT_EQ(vocab.NumNulls(), 2u);
  EXPECT_EQ(vocab.TermToString(n0), "_n0");
}

TEST(FactTable, RowModeFlagKeepsLegacyLayout) {
  FactTable t(2, StorageMode::kRow);
  EXPECT_EQ(t.storage_mode(), StorageMode::kRow);
  Term r[2] = {Term::Constant(1), Term::Constant(2)};
  EXPECT_TRUE(t.Insert(r, 0));
  EXPECT_EQ(t.NumSegments(), 0u);  // no columnar chain in row mode
  EXPECT_EQ(t.ProbeCount(0, Term::Constant(1)), 1u);
  EXPECT_EQ(t.DistinctAt(0), 1u);
}

TEST(FactTable, OverlayAppendAfterMarkFrozen) {
  for (StorageMode mode : {StorageMode::kRow, StorageMode::kColumnar}) {
    FactTable t(1, mode);
    Term a[1] = {Term::Constant(1)};
    Term b[1] = {Term::Constant(2)};
    t.Insert(a, 0);
    t.MarkFrozen();
    EXPECT_TRUE(t.Insert(b, 1)) << StorageModeToString(mode);
    EXPECT_EQ(t.frozen_rows(), 1u);
    EXPECT_EQ(t.size(), 2u);
    // Probes see frozen base and overlay rows alike, ascending.
    EXPECT_EQ(t.Probe(0, Term::Constant(1)), (std::vector<uint32_t>{0}));
    EXPECT_EQ(t.Probe(0, Term::Constant(2)), (std::vector<uint32_t>{1}));
    // Re-inserting a frozen-base row is still a duplicate.
    EXPECT_FALSE(t.Insert(a, 2));
  }
}

TEST(Instance, RowStorageModePropagatesToTables) {
  auto p = Parser::ParseProgram("P(\"a\"). Q(\"a\", \"b\").");
  ASSERT_TRUE(p.ok());
  Instance inst = Instance::FromProgram(*p, StorageMode::kRow);
  EXPECT_EQ(inst.storage_mode(), StorageMode::kRow);
  for (uint32_t pred : inst.Predicates()) {
    EXPECT_EQ(inst.Table(pred)->storage_mode(), StorageMode::kRow);
  }
  // Snapshots inherit the mode through the shared tables.
  EXPECT_EQ(inst.Snapshot().storage_mode(), StorageMode::kRow);
}

TEST(Instance, StatisticsIdenticalAcrossStorageModes) {
  auto p = Parser::ParseProgram(
      "P(\"a\"). P(\"b\"). P(\"a\"). Q(\"a\", \"b\"). Q(\"a\", \"c\").");
  ASSERT_TRUE(p.ok());
  InstanceStatistics row =
      Instance::FromProgram(*p, StorageMode::kRow).CollectStatistics();
  InstanceStatistics col =
      Instance::FromProgram(*p, StorageMode::kColumnar).CollectStatistics();
  EXPECT_EQ(row.total_facts, col.total_facts);
  EXPECT_EQ(row.max_rows, col.max_rows);
  ASSERT_EQ(row.tables.size(), col.tables.size());
  for (const auto& [pred, t] : row.tables) {
    ASSERT_TRUE(col.tables.count(pred));
    EXPECT_EQ(t.rows, col.tables.at(pred).rows);
    EXPECT_EQ(t.distinct, col.tables.at(pred).distinct);
  }
}

}  // namespace
}  // namespace mdqa::datalog
