#include "relational/value.h"

#include <gtest/gtest.h>

namespace mdqa {
namespace {

TEST(Value, DefaultIsIntZero) {
  Value v;
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.AsInt(), 0);
}

TEST(Value, Constructors) {
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value::Real(3.5).AsDouble(), 3.5);
  EXPECT_EQ(Value::Str("hi").AsString(), "hi");
}

TEST(Value, FromTextPrefersMostSpecificType) {
  EXPECT_TRUE(Value::FromText("42").is_int());
  EXPECT_TRUE(Value::FromText("-1").is_int());
  EXPECT_TRUE(Value::FromText("4.5").is_double());
  EXPECT_TRUE(Value::FromText("W1").is_string());
  EXPECT_TRUE(Value::FromText("Sep/5-12:10").is_string());
  EXPECT_TRUE(Value::FromText("").is_string());
}

TEST(Value, AsNumberWidensInt) {
  EXPECT_DOUBLE_EQ(Value::Int(2).AsNumber(), 2.0);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).AsNumber(), 2.5);
}

TEST(Value, EqualityIsTypeSensitive) {
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_NE(Value::Int(1), Value::Real(1.0));  // distinct types
  EXPECT_NE(Value::Str("1"), Value::Int(1));
  EXPECT_EQ(Value::Str("a"), Value::Str("a"));
}

TEST(Value, OrderingWithinType) {
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::Str("a"), Value::Str("b"));
  EXPECT_LT(Value::Str("Sep/5-11:45"), Value::Str("Sep/5-12:10"));
  EXPECT_LE(Value::Int(2), Value::Int(2));
}

TEST(Value, OrderingAcrossTypesByTag) {
  // int64 < double < string (documented total order).
  EXPECT_LT(Value::Int(999), Value::Real(0.0));
  EXPECT_LT(Value::Real(999.0), Value::Str(""));
}

TEST(Value, ToStringForms) {
  EXPECT_EQ(Value::Int(7).ToString(), "7");
  EXPECT_EQ(Value::Str("x y").ToString(), "x y");
  EXPECT_EQ(Value::Real(38.2).ToString(), "38.2");
}

TEST(Value, ToLiteralQuotesAndEscapesStrings) {
  EXPECT_EQ(Value::Int(7).ToLiteral(), "7");
  EXPECT_EQ(Value::Str("hi").ToLiteral(), "\"hi\"");
  EXPECT_EQ(Value::Str("a\"b").ToLiteral(), "\"a\\\"b\"");
  EXPECT_EQ(Value::Str("a\\b").ToLiteral(), "\"a\\\\b\"");
}

TEST(Value, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Str("abc").Hash(), Value::Str("abc").Hash());
  EXPECT_EQ(Value::Int(5).Hash(), Value::Int(5).Hash());
  // Different types with "same" content should not collide (tagged hash).
  EXPECT_NE(Value::Int(0).Hash(), Value::Real(0.0).Hash());
}

TEST(ValuePool, InternDedupes) {
  ValuePool pool;
  uint32_t a = pool.Intern(Value::Str("x"));
  uint32_t b = pool.Intern(Value::Int(1));
  uint32_t a2 = pool.Intern(Value::Str("x"));
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.Get(a), Value::Str("x"));
}

TEST(ValuePool, FindDoesNotIntern) {
  ValuePool pool;
  EXPECT_EQ(pool.Find(Value::Int(9)), ValuePool::kNotFound);
  EXPECT_EQ(pool.size(), 0u);
  pool.Intern(Value::Int(9));
  EXPECT_EQ(pool.Find(Value::Int(9)), 0u);
}

TEST(ValuePool, TypeDistinguishesEntries) {
  ValuePool pool;
  uint32_t i = pool.Intern(Value::Int(1));
  uint32_t d = pool.Intern(Value::Real(1.0));
  uint32_t s = pool.Intern(Value::Str("1"));
  EXPECT_NE(i, d);
  EXPECT_NE(d, s);
  EXPECT_NE(i, s);
}

}  // namespace
}  // namespace mdqa
