// Unit coverage for the serve layer: token buckets and admission,
// latency histograms, HTTP request reading under limits, and the
// AssessmentServer's endpoint behavior over real loopback sockets —
// routing, shedding, degraded labeling, updates, and drain.
// The adversarial/soak side lives in tests/serve_soak_test.cc.

#include "serve/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "base/net.h"
#include "scenarios/hospital.h"
#include "serve/admission.h"
#include "serve/http.h"
#include "serve/metrics.h"

namespace mdqa::serve {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

// ---------------------------------------------------------------- admission

TEST(TokenBucket, BurstThenRefillDeterministic) {
  TokenBucket bucket(/*rate_per_sec=*/10.0, /*burst=*/3.0);
  const auto t0 = steady_clock::now();
  double retry = 0;
  EXPECT_TRUE(bucket.TryAcquire(t0, &retry));
  EXPECT_TRUE(bucket.TryAcquire(t0, &retry));
  EXPECT_TRUE(bucket.TryAcquire(t0, &retry));
  EXPECT_FALSE(bucket.TryAcquire(t0, &retry));
  // Empty bucket at 10 tokens/sec: one token in 0.1s.
  EXPECT_NEAR(retry, 0.1, 1e-9);
  // 100 ms later exactly one token has refilled.
  EXPECT_TRUE(bucket.TryAcquire(t0 + milliseconds(100), &retry));
  EXPECT_FALSE(bucket.TryAcquire(t0 + milliseconds(100), &retry));
  // Refill never exceeds the burst capacity.
  EXPECT_TRUE(bucket.TryAcquire(t0 + milliseconds(100000), &retry));
  EXPECT_TRUE(bucket.TryAcquire(t0 + milliseconds(100000), &retry));
  EXPECT_TRUE(bucket.TryAcquire(t0 + milliseconds(100000), &retry));
  EXPECT_FALSE(bucket.TryAcquire(t0 + milliseconds(100000), &retry));
}

TEST(AdmissionController, PerTenantIsolationAndOverrides) {
  TenantQuota defaults;
  defaults.requests_per_sec = 1.0;
  defaults.burst = 2.0;
  AdmissionController admission(defaults);

  TenantQuota premium;
  premium.requests_per_sec = 100.0;
  premium.burst = 100.0;
  premium.max_steps_per_request = 12345;
  admission.SetQuota("premium", premium);

  const auto t0 = steady_clock::now();
  // Default tenant exhausts its burst of 2...
  EXPECT_TRUE(admission.AdmitAt("anon", t0).admitted);
  EXPECT_TRUE(admission.AdmitAt("anon", t0).admitted);
  auto refused = admission.AdmitAt("anon", t0);
  EXPECT_FALSE(refused.admitted);
  EXPECT_GT(refused.retry_after_sec, 0.0);
  // ...without touching the premium tenant or another default tenant.
  for (int i = 0; i < 50; ++i) {
    auto d = admission.AdmitAt("premium", t0);
    EXPECT_TRUE(d.admitted);
    EXPECT_EQ(d.quota.max_steps_per_request, 12345u);
  }
  EXPECT_TRUE(admission.AdmitAt("other", t0).admitted);
  EXPECT_EQ(admission.NumTenantsSeen(), 3u);
}

// ----------------------------------------------------------------- metrics

TEST(LatencyHistogram, PercentilesBracketRecordedValues) {
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.Record(100);    // ~craft a bimodal shape
  for (int i = 0; i < 10; ++i) h.Record(10000);
  EXPECT_EQ(h.Count(), 100u);
  // Power-of-two buckets report upper bounds: p50 must bracket 100µs,
  // p99 must bracket 10000µs.
  EXPECT_GE(h.PercentileMicros(0.50), 100u);
  EXPECT_LT(h.PercentileMicros(0.50), 10000u);
  EXPECT_GE(h.PercentileMicros(0.99), 10000u);
  EXPECT_EQ(h.PercentileMicros(0.0), h.PercentileMicros(0.01));
}

TEST(ServerMetrics, ToJsonCarriesCounters) {
  ServerMetrics m;
  m.completed_ok.fetch_add(7);
  m.shed_queue_full.fetch_add(2);
  const std::string json = m.ToJson();
  EXPECT_NE(json.find("\"completed_ok\":7"), std::string::npos);
  EXPECT_NE(json.find("\"shed_queue_full\":2"), std::string::npos);
  EXPECT_NE(json.find("latency_p99_us"), std::string::npos);
}

// -------------------------------------------------------------------- http

/// Sends `raw` through a real loopback socket and parses it server-side.
Result<HttpRequest> ParseRaw(const std::string& raw,
                             const HttpLimits& limits) {
  MDQA_ASSIGN_OR_RETURN(net::Listener listener, net::Listener::Bind(0));
  MDQA_ASSIGN_OR_RETURN(
      net::Socket client,
      net::ConnectLoopback(listener.port(), milliseconds(2000)));
  MDQA_ASSIGN_OR_RETURN(net::Socket server,
                        listener.Accept(milliseconds(2000)));
  MDQA_RETURN_IF_ERROR(client.SendAll(raw));
  client.Close();  // EOF so body-to-EOF reads terminate
  return ReadHttpRequest(server, limits);
}

TEST(Http, ParsesRequestLineHeadersAndBody) {
  auto req = ParseRaw(
      "POST /query?x=1 HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "X-Mdqa-Tenant: t1\r\n"
      "Content-Length: 4\r\n"
      "\r\n"
      "body",
      HttpLimits{});
  ASSERT_TRUE(req.ok()) << req.status();
  EXPECT_EQ(req->method, "POST");
  EXPECT_EQ(req->target, "/query");  // query string stripped
  EXPECT_EQ(req->body, "body");
  ASSERT_NE(req->FindHeader("x-mdqa-tenant"), nullptr);  // case-insensitive
  EXPECT_EQ(*req->FindHeader("x-mdqa-tenant"), "t1");
  EXPECT_EQ(req->FindHeader("absent"), nullptr);
}

TEST(Http, MalformedRequestLineIsInvalidArgument) {
  auto req = ParseRaw("NOT-HTTP\r\n\r\n", HttpLimits{});
  ASSERT_FALSE(req.ok());
  EXPECT_EQ(req.status().code(), StatusCode::kInvalidArgument);
}

TEST(Http, OversizedHeadersTripTheCap) {
  HttpLimits limits;
  limits.max_header_bytes = 64;
  auto req = ParseRaw("GET / HTTP/1.1\r\nPadding: " +
                          std::string(200, 'x') + "\r\n\r\n",
                      limits);
  ASSERT_FALSE(req.ok());
  EXPECT_EQ(req.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(req.status().message().find("header"), std::string::npos);
}

TEST(Http, OversizedBodyTripsTheCap) {
  HttpLimits limits;
  limits.max_body_bytes = 8;
  auto req = ParseRaw(
      "POST /q HTTP/1.1\r\nContent-Length: 100\r\n\r\n" +
          std::string(100, 'x'),
      limits);
  ASSERT_FALSE(req.ok());
  EXPECT_EQ(req.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(req.status().message().find("body"), std::string::npos);
}

TEST(Http, ChunkedEncodingIsUnimplemented) {
  auto req = ParseRaw(
      "POST /q HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
      HttpLimits{});
  ASSERT_FALSE(req.ok());
  EXPECT_EQ(req.status().code(), StatusCode::kUnimplemented);
}

TEST(Http, SerializeAddsFramingHeaders) {
  const std::string out =
      SerializeHttpResponse(429, "{}", {{"Retry-After", "2"}});
  EXPECT_NE(out.find("HTTP/1.1 429"), std::string::npos);
  EXPECT_NE(out.find("Content-Length: 2\r\n"), std::string::npos);
  EXPECT_NE(out.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(out.find("Retry-After: 2\r\n"), std::string::npos);
}

// ------------------------------------------------------------------ server

/// One request against `port` over a fresh connection.
Result<HttpResponse> Call(
    uint16_t port, const std::string& method, const std::string& target,
    const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& headers = {}) {
  MDQA_ASSIGN_OR_RETURN(net::Socket sock,
                        net::ConnectLoopback(port, milliseconds(2000)));
  return HttpRoundTrip(sock, method, target, body, headers, HttpLimits{});
}

std::unique_ptr<AssessmentServer> StartHospital(ServerOptions options) {
  auto context =
      scenarios::BuildHospitalContext(scenarios::HospitalOptions{});
  EXPECT_TRUE(context.ok()) << context.status();
  auto server = AssessmentServer::Start(std::move(*context), options);
  EXPECT_TRUE(server.ok()) << server.status();
  return std::move(*server);
}

TEST(AssessmentServer, HealthReportAndRouting) {
  auto server = StartHospital(ServerOptions{});
  const uint16_t port = server->port();

  auto health = Call(port, "GET", "/healthz", "");
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_EQ(health->status, 200);
  EXPECT_NE(health->body.find("\"generation\":1"), std::string::npos);

  auto report = Call(port, "GET", "/report", "");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->status, 200);
  // The hospital scenario assesses completely: no degraded label.
  EXPECT_NE(report->body.find("\"degraded\":false"), std::string::npos);
  EXPECT_NE(report->body.find("\"generation_check\":1"), std::string::npos);

  EXPECT_EQ(Call(port, "GET", "/nope", "")->status, 404);
  EXPECT_EQ(Call(port, "DELETE", "/report", "")->status, 405);
  EXPECT_EQ(Call(port, "POST", "/query", "not json")->status, 400);
  EXPECT_EQ(Call(port, "POST", "/query", "{\"no\": \"query\"}")->status,
            400);

  server->Shutdown();
  EXPECT_TRUE(server->DrainStatus().ok()) << server->DrainStatus();
}

TEST(AssessmentServer, CleanQueryMatchesPreparedContext) {
  auto server = StartHospital(ServerOptions{});
  auto resp = Call(server->port(), "POST", "/query",
                   R"({"query": "Q(P, V) :- Measurements(T, P, V).",)"
                   R"( "clean": true})");
  ASSERT_TRUE(resp.ok()) << resp.status();
  ASSERT_EQ(resp->status, 200) << resp->body;
  EXPECT_NE(resp->body.find("\"degraded\":false"), std::string::npos);
  EXPECT_NE(resp->body.find("\"completeness\":\"complete\""),
            std::string::npos);
  // Table II ground truth: the quality version keeps Tom Waits's
  // certified-nurse, B1-thermometer measurements; clean answers must
  // include him and exclude nothing that belongs.
  EXPECT_NE(resp->body.find("Tom Waits"), std::string::npos);

  // The raw (dirty) answer set is a superset: Lou Reed's rows are taken
  // with a non-B1 thermometer, so they appear raw but not clean.
  auto raw = Call(server->port(), "POST", "/query",
                  R"({"query": "Q(P, V) :- Measurements(T, P, V).",)"
                  R"( "clean": false})");
  ASSERT_TRUE(raw.ok()) << raw.status();
  ASSERT_EQ(raw->status, 200) << raw->body;
  EXPECT_NE(raw->body.find("Lou Reed"), std::string::npos);
  EXPECT_EQ(resp->body.find("Lou Reed"), std::string::npos);
}

TEST(AssessmentServer, TenantRateLimitShedsWith429AndRetryAfter) {
  ServerOptions options;
  options.default_quota.requests_per_sec = 1.0;
  options.default_quota.burst = 2.0;
  auto server = StartHospital(options);
  const uint16_t port = server->port();

  int shed = 0;
  for (int i = 0; i < 6; ++i) {
    auto resp = Call(port, "POST", "/query",
                     R"({"query": "Q(P) :- Measurements(T, P, V)."})",
                     {{"X-Mdqa-Tenant", "limited"}});
    ASSERT_TRUE(resp.ok()) << resp.status();
    if (resp->status == 429) {
      ++shed;
      ASSERT_NE(resp->FindHeader("Retry-After"), nullptr);
      EXPECT_NE(resp->body.find("retry_after_sec"), std::string::npos);
    } else {
      EXPECT_EQ(resp->status, 200);
    }
  }
  EXPECT_GE(shed, 3);  // burst 2 + ~nothing refilled in microseconds
  EXPECT_GE(server->metrics().shed_tenant_rate.load(), 3u);

  // A different tenant is unaffected.
  auto other = Call(port, "GET", "/healthz", "",
                    {{"X-Mdqa-Tenant", "fresh"}});
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(other->status, 200);
}

TEST(AssessmentServer, InjectedExhaustionIsAlwaysLabeledDegraded) {
  FaultInjector faults;
  faults.Arm("cq:row", 1, Status::ResourceExhausted("injected"),
             FaultInjector::kAlways);
  ServerOptions options;
  options.fault_injector = &faults;
  options.max_retries = 1;
  auto server = StartHospital(options);

  auto resp = Call(server->port(), "POST", "/query",
                   R"({"query": "Q(P, V) :- Measurements(T, P, V)."})");
  ASSERT_TRUE(resp.ok()) << resp.status();
  ASSERT_EQ(resp->status, 200) << resp->body;
  EXPECT_NE(resp->body.find("\"degraded\":true"), std::string::npos);
  EXPECT_NE(resp->body.find("\"completeness\":\"truncated\""),
            std::string::npos);
  EXPECT_NE(resp->body.find("\"attempts\":2"), std::string::npos);
  EXPECT_GE(server->metrics().retries.load(), 1u);
  EXPECT_GE(server->metrics().degraded_responses.load(), 1u);
}

TEST(AssessmentServer, InjectedInternalErrorIsA500NotASilentPartial) {
  FaultInjector faults;
  faults.Arm("cq:row", 1, Status::Internal("simulated allocation failure"),
             FaultInjector::kAlways);
  ServerOptions options;
  options.fault_injector = &faults;
  auto server = StartHospital(options);

  auto resp = Call(server->port(), "POST", "/query",
                   R"({"query": "Q(P, V) :- Measurements(T, P, V)."})");
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, 500);
  EXPECT_NE(resp->body.find("Internal"), std::string::npos);
  EXPECT_GE(server->metrics().internal_errors.load(), 1u);
}

TEST(AssessmentServer, UpdateBumpsGenerationAndChangesAnswers) {
  ServerOptions options;
  // Generous deadlines so a sanitizer-slowed re-chase still returns 200
  // applied rather than a (correct but unassertable) 202 pending.
  options.default_deadline = milliseconds(30000);
  options.default_quota.max_deadline = milliseconds(30000);
  auto server = StartHospital(options);
  const uint16_t port = server->port();

  auto resp = Call(port, "POST", "/update",
                   R"({"relation": "Measurements",)"
                   R"( "insert": [["Sep/9-23:50", "Nick Cave", "36.9"]]})");
  ASSERT_TRUE(resp.ok()) << resp.status();
  ASSERT_EQ(resp->status, 200) << resp->body;
  EXPECT_NE(resp->body.find("\"applied\":true"), std::string::npos);
  EXPECT_NE(resp->body.find("\"generation\":2"), std::string::npos);
  EXPECT_EQ(server->generation(), 2u);

  // Raw answers over the new snapshot see the inserted row.
  auto raw = Call(port, "POST", "/query",
                  R"({"query": "Q(P, V) :- Measurements(T, P, V).",)"
                  R"( "clean": false})");
  ASSERT_TRUE(raw.ok());
  EXPECT_NE(raw->body.find("Nick Cave"), std::string::npos);
  EXPECT_NE(raw->body.find("\"generation\":2"), std::string::npos);

  // Deleting it again goes through the deletion (full re-chase) path.
  auto del = Call(port, "POST", "/update",
                  R"({"relation": "Measurements",)"
                  R"( "delete": [["Sep/9-23:50", "Nick Cave", "36.9"]]})");
  ASSERT_TRUE(del.ok());
  ASSERT_EQ(del->status, 200) << del->body;
  EXPECT_EQ(server->generation(), 3u);
  EXPECT_GE(server->metrics().update_fallbacks.load(), 1u);

  // Bad updates are rejected with precise statuses.
  EXPECT_EQ(Call(port, "POST", "/update",
                 R"({"relation": "NoSuch", "insert": [["a"]]})")
                ->status,
            404);
  EXPECT_EQ(Call(port, "POST", "/update",
                 R"({"relation": "Measurements", "insert": [["one"]]})")
                ->status,
            400);  // arity mismatch
  EXPECT_EQ(Call(port, "POST", "/update",
                 R"({"relation": "Measurements",)"
                 R"( "delete": [["no", "such", "row"]]})")
                ->status,
            404);
  EXPECT_EQ(server->generation(), 3u);  // rejected updates publish nothing

  server->Shutdown();
  Status drained = server->DrainStatus();
  EXPECT_TRUE(drained.ok()) << drained;
}

TEST(AssessmentServer, DrainRefusesNewUpdatesButHealthzReportsIt) {
  auto server = StartHospital(ServerOptions{});
  server->RequestDrain();
  // The accept thread needs a poll cycle to close the listener; until
  // then new connections may still be served — /update must refuse even
  // on an already-accepted connection.
  auto resp = Call(server->port(), "POST", "/update",
                   R"({"relation": "Measurements",)"
                   R"( "insert": [["Sep/9-23:55", "PJ Harvey", "37.0"]]})");
  if (resp.ok()) {
    EXPECT_EQ(resp->status, 503);
  }  // else: listener already closed — equally correct
  server->Shutdown();
  EXPECT_TRUE(server->DrainStatus().ok());
}

}  // namespace
}  // namespace mdqa::serve
