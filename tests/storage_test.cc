// Unit coverage for the durability layer (src/storage/): encoding
// primitives and CRCs, the FaultyEnv disk model, the checkpoint format's
// corruption battery, WAL framing and torn-tail replay, KbStore
// recovery/rotation/fallback, the session-image bridge, and the serve
// access log. The seeded crash matrix lives in
// tests/durability_crash_test.cc.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/budget.h"
#include "base/crc32.h"
#include "quality/context.h"
#include "serve/access_log.h"
#include "storage/checkpoint.h"
#include "storage/env.h"
#include "storage/fault_env.h"
#include "storage/format.h"
#include "storage/kb_store.h"
#include "storage/wal.h"

namespace mdqa::storage {
namespace {

// ------------------------------------------------------------------- crc32

TEST(Crc32, KnownVectors) {
  // The standard zlib-polynomial check value.
  EXPECT_EQ(Crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_EQ(Crc32("a"), 0xe8b7be43u);
}

TEST(Crc32, SeedChainsIncrementally) {
  const std::string data = "the quick brown fox";
  uint32_t whole = Crc32(data);
  uint32_t split = Crc32(data.substr(9), Crc32(data.substr(0, 9)));
  EXPECT_EQ(whole, split);
}

TEST(Crc32, MaskRoundTripsAndDiffers) {
  for (uint32_t crc : {0u, 1u, 0xcbf43926u, 0xffffffffu}) {
    EXPECT_EQ(UnmaskCrc32(MaskCrc32(crc)), crc);
    EXPECT_NE(MaskCrc32(crc), crc);
  }
}

// ------------------------------------------------------------------ format

TEST(Format, FixedRoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xdeadbeef);
  PutFixed64(&buf, 0x0123456789abcdefull);
  EXPECT_EQ(buf.size(), 12u);
  // Little-endian on the wire.
  EXPECT_EQ(static_cast<uint8_t>(buf[0]), 0xef);
  SliceReader r(buf);
  EXPECT_EQ(r.GetFixed32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.GetFixed64().value(), 0x0123456789abcdefull);
  EXPECT_TRUE(r.empty());
}

TEST(Format, VarintRoundTripAtBoundaries) {
  const std::vector<uint64_t> cases = {
      0,       1,          127,        128,        16383,
      16384,   (1u << 21), 0xffffffff, 1ull << 32, 0x7fffffffffffffffull,
      0xffffffffffffffffull};
  std::string buf;
  for (uint64_t v : cases) PutVarint64(&buf, v);
  SliceReader r(buf);
  for (uint64_t v : cases) EXPECT_EQ(r.GetVarint64().value(), v);
  EXPECT_TRUE(r.empty());

  std::string buf32;
  PutVarint32(&buf32, 0);
  PutVarint32(&buf32, 300);
  PutVarint32(&buf32, 0xffffffffu);
  SliceReader r32(buf32);
  EXPECT_EQ(r32.GetVarint32().value(), 0u);
  EXPECT_EQ(r32.GetVarint32().value(), 300u);
  EXPECT_EQ(r32.GetVarint32().value(), 0xffffffffu);
}

TEST(Format, ReaderRejectsOverruns) {
  std::string buf;
  PutFixed32(&buf, 7);
  SliceReader r(std::string_view(buf).substr(0, 3));
  EXPECT_FALSE(r.GetFixed32().ok());  // 3 bytes < 4

  // A varint whose continuation bits never end.
  std::string runaway(11, static_cast<char>(0x80));
  SliceReader v(runaway);
  EXPECT_FALSE(v.GetVarint64().ok());

  // Length prefix longer than the remaining bytes.
  std::string lp;
  PutVarint32(&lp, 100);
  lp += "short";
  SliceReader l(lp);
  EXPECT_FALSE(l.GetLengthPrefixed().ok());
}

TEST(Format, ValueRoundTrip) {
  const std::vector<Value> values = {Value::Int(-42), Value::Int(1ll << 40),
                                     Value::Real(36.9), Value::Str(""),
                                     Value::Str("Nick Cave")};
  std::string buf;
  for (const Value& v : values) PutValue(&buf, v);
  SliceReader r(buf);
  for (const Value& v : values) {
    auto got = GetValue(&r);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_TRUE(*got == v);
  }
  EXPECT_TRUE(r.empty());
}

// --------------------------------------------------------------- fault env

TEST(FaultyEnv, SyncPromotesUnsyncedAndCrashDropsIt) {
  FaultyEnv env;
  ASSERT_TRUE(env.CreateDir("d").ok());
  auto file = env.NewWritableFile("d/f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("durable").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE(env.SyncDir("d").ok());
  ASSERT_TRUE((*file)->Append("volatile").ok());  // never synced

  env.Crash();
  auto back = env.ReadFile("d/f", 1 << 20);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, "durable");
}

TEST(FaultyEnv, UnsyncedDirectoryEntriesRollBackAtCrash) {
  FaultyEnv env;
  ASSERT_TRUE(env.CreateDir("d").ok());
  ASSERT_TRUE(env.SyncDir("d").ok());
  {
    auto f = env.NewWritableFile("d/tmp");
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append("payload").ok());
    ASSERT_TRUE((*f)->Sync().ok());
  }
  // Created + renamed but the directory was never synced: both namespace
  // ops must roll back at the crash.
  ASSERT_TRUE(env.RenameFile("d/tmp", "d/final").ok());
  env.Crash();
  EXPECT_FALSE(env.FileExists("d/final"));
  EXPECT_FALSE(env.FileExists("d/tmp"));
}

TEST(FaultyEnv, SyncDirMakesRenameDurable) {
  FaultyEnv env;
  ASSERT_TRUE(env.CreateDir("d").ok());
  ASSERT_TRUE(env.SyncDir("d").ok());
  {
    auto f = env.NewWritableFile("d/tmp");
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append("payload").ok());
    ASSERT_TRUE((*f)->Sync().ok());
  }
  ASSERT_TRUE(env.RenameFile("d/tmp", "d/final").ok());
  ASSERT_TRUE(env.SyncDir("d").ok());
  env.Crash();
  EXPECT_TRUE(env.FileExists("d/final"));
  EXPECT_EQ(env.ReadFile("d/final", 1 << 20).value(), "payload");
}

TEST(FaultyEnv, InjectedAppendAndSyncFaults) {
  FaultInjector injector;
  FaultyEnv env(/*seed=*/7, &injector);
  ASSERT_TRUE(env.CreateDir("d").ok());
  auto f = env.NewWritableFile("d/f");
  ASSERT_TRUE(f.ok());

  injector.Arm("fs.append", /*at_hit=*/1, Status::Internal("EIO"));
  EXPECT_FALSE((*f)->Append("lost").ok());
  EXPECT_TRUE((*f)->Append("kept").ok());

  injector.Arm("fs.sync", /*at_hit=*/1, Status::Internal("EIO"));
  EXPECT_FALSE((*f)->Sync().ok());
  ASSERT_TRUE((*f)->Sync().ok());
  ASSERT_TRUE(env.SyncDir("d").ok());
  env.Crash();
  EXPECT_EQ(env.ReadFile("d/f", 1 << 20).value(), "kept");
}

TEST(FaultyEnv, LyingSyncLosesDataAtCrash) {
  FaultInjector injector;
  FaultyEnv env(/*seed=*/7, &injector);
  ASSERT_TRUE(env.CreateDir("d").ok());
  ASSERT_TRUE(env.SyncDir("d").ok());
  auto f = env.NewWritableFile("d/f");
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Append("gone").ok());
  injector.Arm("fs.sync.lie", /*at_hit=*/1, Status::Internal("liar"));
  EXPECT_TRUE((*f)->Sync().ok());  // the lie: OK without persisting
  env.Crash();
  // The file's durable image is empty; only the (synced) dir entry knows
  // it existed at all — and that entry was never SyncDir'd, so it may be
  // gone entirely. Either way "gone" must not survive.
  if (env.FileExists("d/f")) {
    EXPECT_EQ(env.ReadFile("d/f", 1 << 20).value(), "");
  }
}

TEST(FaultyEnv, CrashAtOpWedgesUntilCrash) {
  FaultyEnv env;
  ASSERT_TRUE(env.CreateDir("d").ok());
  auto f = env.NewWritableFile("d/f");
  ASSERT_TRUE(f.ok());
  env.ArmCrashAtOp(1);  // relative: the very next mutating op
  EXPECT_FALSE((*f)->Append("x").ok());
  EXPECT_TRUE(env.crashed());
  // Every subsequent mutation fails until the restart.
  EXPECT_FALSE((*f)->Sync().ok());
  EXPECT_FALSE(env.RenameFile("d/f", "d/g").ok());
  env.Crash();
  EXPECT_FALSE(env.crashed());
  auto g = env.NewWritableFile("d/g");
  EXPECT_TRUE(g.ok());
}

TEST(FaultyEnv, CorruptByteAndTruncateEditThePersistedImage) {
  FaultyEnv env;
  ASSERT_TRUE(env.CreateDir("d").ok());
  auto f = env.NewWritableFile("d/f");
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Append("abcdef").ok());
  ASSERT_TRUE((*f)->Sync().ok());
  ASSERT_TRUE(env.CorruptByte("d/f", 1, 0x01).ok());
  EXPECT_EQ(env.ReadFile("d/f", 1 << 20).value(), std::string("ac") + "cdef");
  ASSERT_TRUE(env.TruncateTo("d/f", 3).ok());
  EXPECT_EQ(env.FileSize("d/f").value(), 3u);
}

// -------------------------------------------------------------- checkpoint

KbImage SmallImage() {
  KbImage image;
  image.meta.generation = 4;
  image.meta.applied_updates = 3;
  image.meta.scenario = "hospital";
  image.meta.rounds = 5;
  image.meta.tgd_firings = 17;
  image.meta.facts_added = 11;
  image.meta.nulls_created = 2;
  image.meta.egd_merges = 1;
  image.meta.null_watermark = 2;
  image.values = {Value::Str("Nick Cave"), Value::Int(38), Value::Real(36.9)};

  KbRelationImage rel;
  rel.name = "Measurements";
  rel.attr_names = {"patient", "value"};
  rel.attr_types = {static_cast<uint8_t>(AttrType::kString),
                    static_cast<uint8_t>(AttrType::kAny)};
  rel.rows = {{0, 1}, {0, 2}};
  image.relations.push_back(rel);

  KbTableImage table;
  table.predicate = "MeasurementsC";
  table.arity = 2;
  table.frozen_rows = 2;
  table.segment_rows = {2, 1};
  table.terms = {PackImageTerm(false, 0), PackImageTerm(false, 1),
                 PackImageTerm(false, 0), PackImageTerm(false, 2),
                 PackImageTerm(true, 1),  PackImageTerm(false, 2)};
  table.levels = {0, 0, 1};
  image.tables.push_back(table);
  return image;
}

TEST(Checkpoint, RoundTripIsExactAndDeterministic) {
  const KbImage image = SmallImage();
  const std::string bytes = EncodeCheckpoint(image);
  EXPECT_EQ(bytes, EncodeCheckpoint(image));  // deterministic

  auto decoded = DecodeCheckpoint(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  // Re-encoding the decoded image must reproduce the bytes — the
  // checkpoint is a fixpoint of encode∘decode.
  EXPECT_EQ(EncodeCheckpoint(*decoded), bytes);
  EXPECT_EQ(decoded->meta.generation, 4u);
  EXPECT_EQ(decoded->meta.scenario, "hospital");
  EXPECT_EQ(decoded->meta.null_watermark, 2u);
  ASSERT_EQ(decoded->values.size(), 3u);
  EXPECT_TRUE(decoded->values[2] == Value::Real(36.9));
  ASSERT_EQ(decoded->relations.size(), 1u);
  EXPECT_EQ(decoded->relations[0].rows.size(), 2u);
  ASSERT_EQ(decoded->tables.size(), 1u);
  EXPECT_EQ(decoded->tables[0].segment_rows, (std::vector<uint32_t>{2, 1}));
  EXPECT_EQ(decoded->tables[0].levels.size(), 3u);
}

TEST(Checkpoint, EverySingleByteFlipIsDetected) {
  const std::string bytes = EncodeCheckpoint(SmallImage());
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string bad = bytes;
    bad[i] ^= 0x01;
    auto decoded = DecodeCheckpoint(bad);
    EXPECT_FALSE(decoded.ok())
        << "flip at byte " << i << " of " << bytes.size()
        << " decoded successfully — corruption passed the CRCs";
  }
}

TEST(Checkpoint, EveryTruncationIsDetected) {
  const std::string bytes = EncodeCheckpoint(SmallImage());
  for (size_t n = 0; n < bytes.size(); ++n) {
    auto decoded = DecodeCheckpoint(std::string_view(bytes).substr(0, n));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << n << " bytes decoded";
  }
}

TEST(Checkpoint, TrailingGarbageIsDetected) {
  std::string bytes = EncodeCheckpoint(SmallImage());
  bytes += "x";
  EXPECT_FALSE(DecodeCheckpoint(bytes).ok());
}

TEST(Checkpoint, RejectsInconsistentSegmentSums) {
  KbImage image = SmallImage();
  image.tables[0].segment_rows = {2, 2};  // sums to 4, table has 3 rows
  EXPECT_FALSE(DecodeCheckpoint(EncodeCheckpoint(image)).ok());
}

TEST(Checkpoint, RejectsValueIndexOutOfBounds) {
  KbImage image = SmallImage();
  image.relations[0].rows[0][0] = 99;  // values table has 3 entries
  EXPECT_FALSE(DecodeCheckpoint(EncodeCheckpoint(image)).ok());
}

// --------------------------------------------------------------------- wal

quality::DeltaBatch MakeBatch(int i) {
  quality::RelationDelta delta;
  delta.relation = "Measurements";
  delta.insert_rows.push_back(
      {Value::Str("Sep/9-12:1" + std::to_string(i)), Value::Str("PJ Harvey"),
       Value::Real(37.0 + i)});
  if (i % 2 == 1) {
    delta.delete_rows.push_back({Value::Str("t"), Value::Str("p"),
                                 Value::Int(i)});
  }
  quality::DeltaBatch batch;
  batch.deltas.push_back(std::move(delta));
  return batch;
}

void ExpectBatchesEqual(const quality::DeltaBatch& a,
                        const quality::DeltaBatch& b) {
  ASSERT_EQ(a.deltas.size(), b.deltas.size());
  for (size_t i = 0; i < a.deltas.size(); ++i) {
    EXPECT_EQ(a.deltas[i].relation, b.deltas[i].relation);
    ASSERT_EQ(a.deltas[i].insert_rows.size(), b.deltas[i].insert_rows.size());
    ASSERT_EQ(a.deltas[i].delete_rows.size(), b.deltas[i].delete_rows.size());
    for (size_t r = 0; r < a.deltas[i].insert_rows.size(); ++r) {
      EXPECT_TRUE(a.deltas[i].insert_rows[r] == b.deltas[i].insert_rows[r]);
    }
    for (size_t r = 0; r < a.deltas[i].delete_rows.size(); ++r) {
      EXPECT_TRUE(a.deltas[i].delete_rows[r] == b.deltas[i].delete_rows[r]);
    }
  }
}

TEST(Wal, AppendThenReplayRoundTrips) {
  FaultyEnv env;
  ASSERT_TRUE(env.CreateDir("d").ok());
  auto writer = WalWriter::Open(&env, "d/wal-1.log");
  ASSERT_TRUE(writer.ok()) << writer.status();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(writer->Append(MakeBatch(i), /*target_generation=*/2 + i).ok());
  }
  EXPECT_GT(writer->bytes_appended(), 0u);

  auto replay = ReadWal(&env, "d/wal-1.log", 1 << 20);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_FALSE(replay->truncated);
  ASSERT_EQ(replay->records.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(replay->records[i].target_generation, 2u + i);
    ExpectBatchesEqual(replay->records[i].batch, MakeBatch(i));
  }
}

TEST(Wal, MissingFileIsAnEmptyReplay) {
  FaultyEnv env;
  auto replay = ReadWal(&env, "d/none.log", 1 << 20);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_TRUE(replay->records.empty());
  EXPECT_FALSE(replay->truncated);
}

TEST(Wal, TornTailIsCutAndReported) {
  FaultyEnv env;
  ASSERT_TRUE(env.CreateDir("d").ok());
  auto writer = WalWriter::Open(&env, "d/wal-1.log");
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(MakeBatch(0), 2).ok());
  const uint64_t one_record = writer->bytes_appended();
  ASSERT_TRUE(writer->Append(MakeBatch(1), 3).ok());

  // Tear the second record at every possible length: the replay must
  // always keep exactly the first record and flag the cut.
  const uint64_t total = writer->bytes_appended();
  for (uint64_t cut = one_record; cut < total; ++cut) {
    FaultyEnv copy;
    ASSERT_TRUE(copy.CreateDir("d").ok());
    auto w = WalWriter::Open(&copy, "d/wal-1.log");
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->Append(MakeBatch(0), 2).ok());
    ASSERT_TRUE(w->Append(MakeBatch(1), 3).ok());
    ASSERT_TRUE(copy.TruncateTo("d/wal-1.log", cut).ok());
    auto replay = ReadWal(&copy, "d/wal-1.log", 1 << 20);
    ASSERT_TRUE(replay.ok()) << replay.status();
    ASSERT_EQ(replay->records.size(), cut == one_record ? 1u : 1u);
    EXPECT_EQ(replay->valid_bytes, one_record);
    if (cut > one_record) {
      EXPECT_TRUE(replay->truncated);
      EXPECT_FALSE(replay->truncated_reason.empty());
    }
  }
}

TEST(Wal, CorruptMidRecordCutsThereToo) {
  FaultyEnv env;
  ASSERT_TRUE(env.CreateDir("d").ok());
  auto writer = WalWriter::Open(&env, "d/wal-1.log");
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(MakeBatch(0), 2).ok());
  const uint64_t one_record = writer->bytes_appended();
  ASSERT_TRUE(writer->Append(MakeBatch(1), 3).ok());
  // Flip a payload byte of record 2 (past its 8-byte frame header).
  ASSERT_TRUE(env.CorruptByte("d/wal-1.log", one_record + 8, 0x40).ok());
  auto replay = ReadWal(&env, "d/wal-1.log", 1 << 20);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_EQ(replay->records.size(), 1u);
  EXPECT_TRUE(replay->truncated);
  EXPECT_EQ(replay->valid_bytes, one_record);
}

// ---------------------------------------------------------------- kb store

TEST(KbStore, FreshDirRecoversEmptyAndRefusesAppends) {
  FaultyEnv env;
  auto store = OpenDiskKbStore(&env, "db");
  ASSERT_TRUE(store.ok()) << store.status();
  auto recovered = (*store)->Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_FALSE(recovered->has_checkpoint);
  EXPECT_TRUE(recovered->wal_records.empty());
  EXPECT_TRUE(recovered->degradations.empty());
  // No checkpoint yet — there is nothing a WAL record could apply to.
  EXPECT_EQ((*store)->AppendBatch(MakeBatch(0), 2).code(),
            StatusCode::kFailedPrecondition);
}

TEST(KbStore, CheckpointThenWalThenRecover) {
  FaultyEnv env;
  auto store = OpenDiskKbStore(&env, "db");
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Recover().ok());
  KbImage image = SmallImage();
  image.meta.generation = 1;
  ASSERT_TRUE((*store)->WriteCheckpoint(image).ok());
  ASSERT_TRUE((*store)->AppendBatch(MakeBatch(0), 2).ok());
  ASSERT_TRUE((*store)->AppendBatch(MakeBatch(1), 3).ok());

  // A crash drops everything unsynced; the committed state must survive.
  env.Crash();
  auto reopened = OpenDiskKbStore(&env, "db");
  ASSERT_TRUE(reopened.ok());
  auto recovered = (*reopened)->Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  ASSERT_TRUE(recovered->has_checkpoint);
  EXPECT_EQ(recovered->image.meta.generation, 1u);
  ASSERT_EQ(recovered->wal_records.size(), 2u);
  EXPECT_EQ(recovered->wal_records[0].target_generation, 2u);
  EXPECT_EQ(recovered->wal_records[1].target_generation, 3u);
  EXPECT_TRUE(recovered->degradations.empty());
}

TEST(KbStore, CheckpointRotatesWalAndPrunes) {
  FaultyEnv env;
  StoreOptions options;
  options.checkpoints_to_keep = 2;
  auto store = OpenDiskKbStore(&env, "db", options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Recover().ok());
  for (uint64_t gen = 1; gen <= 4; ++gen) {
    KbImage image = SmallImage();
    image.meta.generation = gen;
    ASSERT_TRUE((*store)->WriteCheckpoint(image).ok());
  }
  auto entries = env.ListDir("db");
  ASSERT_TRUE(entries.ok());
  size_t checkpoints = 0;
  for (const std::string& name : *entries) {
    if (name.rfind("ckpt-", 0) == 0) ++checkpoints;
    EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
  }
  EXPECT_EQ(checkpoints, 2u);  // retention window

  auto recovered = OpenDiskKbStore(&env, "db");
  ASSERT_TRUE(recovered.ok());
  auto state = (*recovered)->Recover();
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->image.meta.generation, 4u);
  EXPECT_TRUE(state->wal_records.empty());  // rotated at every checkpoint
}

TEST(KbStore, FallsBackPastCorruptNewestCheckpointLoudly) {
  FaultyEnv env;
  auto store = OpenDiskKbStore(&env, "db");
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Recover().ok());
  for (uint64_t gen : {1u, 5u}) {
    KbImage image = SmallImage();
    image.meta.generation = gen;
    ASSERT_TRUE((*store)->WriteCheckpoint(image).ok());
  }
  // Rot a byte in the newest checkpoint's body.
  ASSERT_TRUE(env.CorruptByte("db/ckpt-00000000000000000005", 40, 0x10).ok());

  auto reopened = OpenDiskKbStore(&env, "db");
  ASSERT_TRUE(reopened.ok());
  auto state = (*reopened)->Recover();
  ASSERT_TRUE(state.ok()) << state.status();
  ASSERT_TRUE(state->has_checkpoint);
  EXPECT_EQ(state->image.meta.generation, 1u);  // the older survivor
  EXPECT_FALSE(state->degradations.empty());    // and it says so
}

TEST(KbStore, AllCheckpointsCorruptStartsFromScratchLoudly) {
  FaultyEnv env;
  auto store = OpenDiskKbStore(&env, "db");
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Recover().ok());
  KbImage image = SmallImage();
  image.meta.generation = 1;
  ASSERT_TRUE((*store)->WriteCheckpoint(image).ok());
  ASSERT_TRUE(env.CorruptByte("db/ckpt-00000000000000000001", 20, 0x10).ok());
  auto reopened = OpenDiskKbStore(&env, "db");
  ASSERT_TRUE(reopened.ok());
  // With every checkpoint rotten there is nothing to resume from; the
  // contract is a fresh start that SAYS committed generations were lost
  // — recovery is Ok but has_checkpoint is false and the degradation
  // names the damage. (Silently serving the rotten image would be the
  // only wrong answer.)
  auto state = (*reopened)->Recover();
  ASSERT_TRUE(state.ok()) << state.status();
  EXPECT_FALSE(state->has_checkpoint);
  ASSERT_EQ(state->degradations.size(), 2u);
  EXPECT_NE(state->degradations[1].find("checkpoints corrupt"),
            std::string::npos);
}

TEST(KbStore, WalGenerationGapIsAnError) {
  FaultyEnv env;
  auto store = OpenDiskKbStore(&env, "db");
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Recover().ok());
  KbImage image = SmallImage();
  image.meta.generation = 1;
  ASSERT_TRUE((*store)->WriteCheckpoint(image).ok());
  ASSERT_TRUE((*store)->AppendBatch(MakeBatch(0), 2).ok());
  ASSERT_TRUE((*store)->AppendBatch(MakeBatch(1), 4).ok());  // gap: no 3
  auto reopened = OpenDiskKbStore(&env, "db");
  ASSERT_TRUE(reopened.ok());
  auto state = (*reopened)->Recover();
  EXPECT_FALSE(state.ok());
  EXPECT_EQ(state.status().code(), StatusCode::kInternal);
}

TEST(KbStore, InMemoryMirrorsTheContract) {
  auto store = NewInMemoryKbStore();
  auto empty = store->Recover();
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty->has_checkpoint);
  EXPECT_EQ(store->AppendBatch(MakeBatch(0), 2).code(),
            StatusCode::kFailedPrecondition);
  KbImage image = SmallImage();
  image.meta.generation = 1;
  ASSERT_TRUE(store->WriteCheckpoint(image).ok());
  ASSERT_TRUE(store->AppendBatch(MakeBatch(0), 2).ok());
  auto state = store->Recover();
  ASSERT_TRUE(state.ok());
  ASSERT_TRUE(state->has_checkpoint);
  EXPECT_EQ(state->image.meta.generation, 1u);
  ASSERT_EQ(state->wal_records.size(), 1u);
  ExpectBatchesEqual(state->wal_records[0].batch, MakeBatch(0));
}

// -------------------------------------------------------------- access log

TEST(AccessLog, WritesOneJsonLinePerEntryAndCaps) {
  FaultyEnv env;
  ASSERT_TRUE(env.CreateDir("d").ok());
  auto log = serve::AccessLog::Open(&env, "d/access.log", /*max_bytes=*/400);
  ASSERT_TRUE(log.ok()) << log.status();
  serve::AccessLog::Entry entry;
  entry.tenant = "icu";
  entry.method = "POST";
  entry.target = "/query";
  entry.generation = 3;
  entry.engine = "chase";
  entry.http_status = 200;
  entry.latency_us = 1234;
  entry.outcome = "ok";
  size_t recorded = 0;
  for (int i = 0; i < 50; ++i) {
    (*log)->Record(entry);
  }
  recorded = (*log)->lines_written();
  EXPECT_GT(recorded, 0u);
  EXPECT_LT(recorded, 50u);  // the cap bit
  EXPECT_EQ((*log)->lines_written() + (*log)->lines_dropped(), 50u);
  EXPECT_LE((*log)->bytes_written(), 400u);

  auto content = env.ReadFile("d/access.log", 1 << 20);
  ASSERT_TRUE(content.ok());
  // No fsync: FaultyEnv keeps it all unsynced, but reads see it.
  EXPECT_NE(content->find("\"tenant\":\"icu\""), std::string::npos);
  EXPECT_NE(content->find("\"outcome\":\"ok\""), std::string::npos);
  EXPECT_NE(content->find("\"latency_us\":1234"), std::string::npos);
  size_t lines = 0;
  for (char c : *content) lines += c == '\n';
  EXPECT_EQ(lines, recorded);
}

}  // namespace
}  // namespace mdqa::storage
