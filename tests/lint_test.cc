// Golden battery for the mdqa_lint diagnostics framework: one fixture
// per code under tests/lint/, each asserting the code, severity, and
// line/column span the analyzer must report, plus the ontology- and
// dimension-level passes and the Assessor's pre-run gate.

#include "analysis/lint.h"

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>

#include "base/json.h"
#include "datalog/parser.h"
#include "md/dimension.h"
#include "qa/engines.h"
#include "quality/assessor.h"
#include "scenarios/hospital.h"

namespace mdqa::analysis {
namespace {

using md::CategoricalAttribute;
using md::CategoricalRelation;
using md::DimensionBuilder;

std::string ReadFixture(const std::string& name) {
  std::ifstream in(std::string(MDQA_LINT_FIXTURE_DIR) + "/" + name);
  EXPECT_TRUE(in.good()) << "missing fixture " << name;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

DiagnosticBag LintFixture(const std::string& name) {
  DiagnosticBag bag;
  LintOptions options;
  options.file = name;
  LintText(ReadFixture(name), options, &bag);
  bag.Sort();
  return bag;
}

std::vector<const Diagnostic*> FindCode(const DiagnosticBag& bag,
                                        const std::string& code) {
  std::vector<const Diagnostic*> out;
  for (const Diagnostic& d : bag.diagnostics()) {
    if (d.code == code) out.push_back(&d);
  }
  return out;
}

// One diagnostic with `code` at line:col, returned for further checks.
const Diagnostic& ExpectAt(const DiagnosticBag& bag, const std::string& code,
                           Severity severity, uint32_t line, uint32_t col) {
  auto found = FindCode(bag, code);
  EXPECT_EQ(found.size(), 1u) << code << " in:\n" << bag.ToText();
  if (found.empty()) {
    static const Diagnostic kNone;
    return kNone;
  }
  EXPECT_EQ(found[0]->severity, severity) << found[0]->ToText();
  EXPECT_EQ(found[0]->span.line, line) << found[0]->ToText();
  EXPECT_EQ(found[0]->span.column, col) << found[0]->ToText();
  return *found[0];
}

// --- golden fixtures, one per code ----------------------------------------

TEST(LintGolden, E001Syntax) {
  auto bag = LintFixture("e001_syntax.dlg");
  const Diagnostic& d =
      ExpectAt(bag, "MDQA-E001", Severity::kError, 1, 5);
  EXPECT_NE(d.message.find("expected"), std::string::npos);
  // A broken parse stops the run: exactly the one error, nothing else.
  EXPECT_EQ(bag.size(), 1u) << bag.ToText();
}

TEST(LintGolden, E002Arity) {
  auto bag = LintFixture("e002_arity.dlg");
  const Diagnostic& d =
      ExpectAt(bag, "MDQA-E002", Severity::kError, 2, 1);
  EXPECT_NE(d.message.find("arity"), std::string::npos);
}

TEST(LintGolden, E003InvalidRule) {
  auto bag = LintFixture("e003_invalid_rule.dlg");
  ExpectAt(bag, "MDQA-E003", Severity::kError, 2, 1);
}

TEST(LintGolden, E004Stratification) {
  auto bag = LintFixture("e004_stratification.dlg");
  auto found = FindCode(bag, "MDQA-E004");
  ASSERT_EQ(found.size(), 1u) << bag.ToText();
  EXPECT_EQ(found[0]->severity, Severity::kError);
  EXPECT_FALSE(found[0]->span.IsSet());  // whole-program finding
  EXPECT_NE(found[0]->message.find("not stratified"), std::string::npos);
}

TEST(LintGolden, W005UndefinedWithDidYouMean) {
  auto bag = LintFixture("w005_undefined.dlg");
  const Diagnostic& d =
      ExpectAt(bag, "MDQA-W005", Severity::kWarning, 2, 9);
  EXPECT_EQ(d.fix_it, "did you mean 'Unknown'?");
  // The typo'd predicate must not also be reported unreachable.
  EXPECT_TRUE(FindCode(bag, "MDQA-W006").empty()) << bag.ToText();
}

TEST(LintGolden, W006Unreachable) {
  auto bag = LintFixture("w006_unreachable.dlg");
  auto found = FindCode(bag, "MDQA-W006");
  // S/S2 feed each other but nothing seeds them: every rule that reads
  // them is dead, including the R rule that joins with a live P.
  ASSERT_EQ(found.size(), 3u) << bag.ToText();
  EXPECT_EQ(found[2]->span.line, 4u);
  EXPECT_EQ(found[2]->span.column, 15u);  // the S(X) atom, not the rule
  EXPECT_TRUE(FindCode(bag, "MDQA-W005").empty());
}

TEST(LintGolden, W007WeakStickiness) {
  auto bag = LintFixture("w007_weak_sticky.dlg");
  const Diagnostic& d =
      ExpectAt(bag, "MDQA-W007", Severity::kWarning, 3, 1);
  EXPECT_NE(d.message.find("marked variable Y"), std::string::npos);
  EXPECT_NE(d.message.find("R[0]"), std::string::npos);
  EXPECT_NE(d.message.find("R[1]"), std::string::npos);
}

TEST(LintGolden, I008ImplicitExistential) {
  auto bag = LintFixture("i008_existential.dlg");
  const Diagnostic& d = ExpectAt(bag, "MDQA-I008", Severity::kInfo, 2, 1);
  EXPECT_NE(d.message.find("head variable Z"), std::string::npos);
}

TEST(LintGolden, I009DuplicateRule) {
  auto bag = LintFixture("i009_duplicate.dlg");
  const Diagnostic& d = ExpectAt(bag, "MDQA-I009", Severity::kInfo, 3, 1);
  EXPECT_NE(d.message.find("duplicate rule"), std::string::npos);
}

TEST(LintGolden, I010Unused) {
  auto bag = LintFixture("i010_unused.dlg");
  const Diagnostic& d = ExpectAt(bag, "MDQA-I010", Severity::kInfo, 2, 1);
  EXPECT_NE(d.message.find("'Q'"), std::string::npos);
}

TEST(LintGolden, N011Singleton) {
  auto bag = LintFixture("n011_singleton.dlg");
  const Diagnostic& d = ExpectAt(bag, "MDQA-N011", Severity::kNote, 2, 1);
  EXPECT_NE(d.fix_it.find("'_'"), std::string::npos);
}

TEST(LintGolden, N012FormClassification) {
  auto bag = LintFixture("n012_forms.dlg");
  const Diagnostic& d = ExpectAt(bag, "MDQA-N012", Severity::kNote, 2, 1);
  EXPECT_NE(d.message.find("form (2)"), std::string::npos);
}

TEST(LintGolden, W041DeadRule) {
  // A/B feed only each other; neither reaches Out, an EGD, or a
  // constraint — all three rules in the A/B island are dead.
  auto bag = LintFixture("w041_dead_rule.dlg");
  auto found = FindCode(bag, "MDQA-W041");
  ASSERT_EQ(found.size(), 3u) << bag.ToText();
  EXPECT_EQ(found[0]->span.line, 3u);
  EXPECT_EQ(found[1]->span.line, 4u);
  EXPECT_EQ(found[2]->span.line, 5u);
  for (const Diagnostic* d : found) {
    EXPECT_EQ(d->severity, Severity::kWarning);
    EXPECT_EQ(d->span.column, 1u);
    EXPECT_NE(d->message.find("dead rule"), std::string::npos);
    EXPECT_NE(d->fix_it.find("remove the rule"), std::string::npos);
  }
  // The Out rule is live: exactly the island is flagged, nothing else.
  EXPECT_TRUE(FindCode(bag, "MDQA-W042").empty()) << bag.ToText();
}

TEST(LintGolden, W042SubsumedRule) {
  // Rule 3's body is rule 2's body plus an extra P atom: strictly more
  // specific, so every Q fact it derives is already derived by rule 2.
  auto bag = LintFixture("w042_subsumed_rule.dlg");
  const Diagnostic& d =
      ExpectAt(bag, "MDQA-W042", Severity::kWarning, 3, 1);
  EXPECT_NE(d.message.find("'Q'"), std::string::npos);
  EXPECT_NE(d.message.find("rule #1"), std::string::npos);
  EXPECT_EQ(d.fix_it, "remove this rule; subsumed by rule #1");
}

TEST(LintGolden, N043NullFlow) {
  // Z is existential: Q[1] is an affected position, Q[0] and P[0] are
  // provably null-free.
  auto bag = LintFixture("n043_null_flow.dlg");
  const Diagnostic& d = ExpectAt(bag, "MDQA-N043", Severity::kNote, 2, 1);
  EXPECT_NE(d.message.find("Q[1]"), std::string::npos);
  EXPECT_NE(d.message.find("null"), std::string::npos);
}

TEST(LintGolden, GoalPredicatesAnchorDeadRules) {
  // Declaring A a goal revives the whole A/B island: the reachability
  // anchor set is caller-configurable, so nothing is dead here.
  DiagnosticBag bag;
  LintOptions options;
  options.goal_predicates = {"A"};
  LintText(ReadFixture("w041_dead_rule.dlg"), options, &bag);
  EXPECT_TRUE(FindCode(bag, "MDQA-W041").empty()) << bag.ToText();
}

// --- options ---------------------------------------------------------------

TEST(LintOptionsTest, MinSeverityFilters) {
  DiagnosticBag bag;
  LintOptions options;
  options.min_severity = Severity::kWarning;
  LintText(ReadFixture("n011_singleton.dlg"), options, &bag);
  EXPECT_TRUE(bag.empty()) << bag.ToText();  // only info/note findings
}

TEST(LintOptionsTest, FormNotesToggle) {
  DiagnosticBag bag;
  LintOptions options;
  options.form_notes = false;
  LintText(ReadFixture("n012_forms.dlg"), options, &bag);
  EXPECT_TRUE(FindCode(bag, "MDQA-N012").empty());
}

TEST(LintOptionsTest, FormNotesToggleSuppressesNullFlow) {
  DiagnosticBag bag;
  LintOptions options;
  options.form_notes = false;
  LintText(ReadFixture("n043_null_flow.dlg"), options, &bag);
  EXPECT_TRUE(FindCode(bag, "MDQA-N043").empty());
}

TEST(LintOptionsTest, SharedAnalysisMatchesLocalAnalysis) {
  // Passing a precomputed ProgramAnalysis (the per-assessment sharing
  // path) must produce byte-identical findings to the lint pass
  // computing its own.
  std::string text = ReadFixture("w041_dead_rule.dlg");
  auto program = datalog::Parser::ParseProgram(text);
  ASSERT_TRUE(program.ok()) << program.status();
  datalog::ProgramAnalysis analysis(*program);

  DiagnosticBag local_bag;
  LintText(text, LintOptions{}, &local_bag);
  local_bag.Sort();

  DiagnosticBag shared_bag;
  LintOptions options;
  options.analysis = &analysis;
  LintProgram(*program, options, &shared_bag);
  shared_bag.Sort();

  EXPECT_EQ(local_bag.ToText(), shared_bag.ToText());
}

// --- catalogue and rendering ----------------------------------------------

TEST(LintCatalogue, CodesAreUniqueAndSeverityConsistent) {
  std::set<std::string> seen;
  for (const CodeInfo& info : AllCodes()) {
    EXPECT_TRUE(seen.insert(info.code).second) << info.code;
    ASSERT_GE(std::string(info.code).size(), 6u);
    char letter = info.code[5];  // "MDQA-X..."
    switch (info.severity) {
      case Severity::kError:
        EXPECT_EQ(letter, 'E') << info.code;
        break;
      case Severity::kWarning:
        EXPECT_EQ(letter, 'W') << info.code;
        break;
      case Severity::kInfo:
        EXPECT_EQ(letter, 'I') << info.code;
        break;
      case Severity::kNote:
        EXPECT_EQ(letter, 'N') << info.code;
        break;
    }
  }
}

TEST(LintCatalogue, EveryEmittedCodeIsCatalogued) {
  std::set<std::string> catalogued;
  for (const CodeInfo& info : AllCodes()) catalogued.insert(info.code);
  for (const char* fixture :
       {"e001_syntax.dlg", "e002_arity.dlg", "e003_invalid_rule.dlg",
        "e004_stratification.dlg", "w005_undefined.dlg",
        "w006_unreachable.dlg", "w007_weak_sticky.dlg",
        "i008_existential.dlg", "i009_duplicate.dlg", "i010_unused.dlg",
        "n011_singleton.dlg", "n012_forms.dlg", "w041_dead_rule.dlg",
        "w042_subsumed_rule.dlg", "n043_null_flow.dlg"}) {
    DiagnosticBag bag = LintFixture(fixture);
    for (const Diagnostic& d : bag.diagnostics()) {
      EXPECT_EQ(catalogued.count(d.code), 1u)
          << d.code << " from " << fixture << " is not in AllCodes()";
    }
  }
}

TEST(LintCatalogue, EveryCodeIsDocumented) {
  // docs/static_analysis.md carries the authoritative code table; a code
  // added to AllCodes() without a docs row fails here, and vice versa the
  // table can't drift to codes the linter no longer knows.
  std::ifstream in(std::string(MDQA_DOCS_DIR) + "/static_analysis.md");
  ASSERT_TRUE(in.good()) << "missing docs/static_analysis.md";
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string doc = buf.str();
  for (const CodeInfo& info : AllCodes()) {
    EXPECT_NE(doc.find(info.code), std::string::npos)
        << info.code << " is not documented in docs/static_analysis.md";
  }
}

TEST(LintRender, TextFormatIsCompilerStyle) {
  auto bag = LintFixture("w005_undefined.dlg");
  std::string text = bag.ToText();
  EXPECT_NE(text.find("w005_undefined.dlg:2:9: warning:"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("[MDQA-W005]"), std::string::npos);
  EXPECT_NE(text.find("fix-it: did you mean 'Unknown'?"),
            std::string::npos);
}

TEST(LintRender, SarifJsonRoundTripsThroughJsonValue) {
  auto bag = LintFixture("w005_undefined.dlg");
  Result<JsonValue> doc = JsonValue::Parse(bag.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status();
  const JsonValue* version = doc->Find("version");
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(version->AsString(), "2.1.0");
  const JsonValue* runs = doc->Find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->Items().size(), 1u);
  const JsonValue* results = runs->Items()[0].Find("results");
  ASSERT_NE(results, nullptr);
  EXPECT_EQ(results->Items().size(), bag.size());
  // The W005 entry keeps its code, span, and fix-it.
  bool found = false;
  for (const JsonValue& r : results->Items()) {
    const JsonValue* rule = r.Find("ruleId");
    ASSERT_NE(rule, nullptr);
    if (rule->AsString() != "MDQA-W005") continue;
    found = true;
    const JsonValue* locations = r.Find("locations");
    ASSERT_NE(locations, nullptr);
    const JsonValue* region =
        locations->Items()[0].Find("physicalLocation")->Find("region");
    ASSERT_NE(region, nullptr);
    EXPECT_EQ(region->Find("startLine")->AsNumber(), 2.0);
    EXPECT_EQ(region->Find("startColumn")->AsNumber(), 9.0);
    const JsonValue* props = r.Find("properties");
    ASSERT_NE(props, nullptr);
    EXPECT_NE(props->Find("fixIt"), nullptr);
  }
  EXPECT_TRUE(found);
}

// --- ontology passes -------------------------------------------------------

// Geo (City -> Region) + Cal (Day -> Month) with Sales relations, as in
// ontology_test.cc.
std::shared_ptr<core::MdOntology> Skeleton() {
  auto ontology = std::make_shared<core::MdOntology>();
  auto geo = DimensionBuilder("Geo")
                 .Category("City")
                 .Category("Region")
                 .Edge("City", "Region")
                 .Member("City", "c1")
                 .Member("Region", "r1")
                 .Link("c1", "r1")
                 .Build();
  EXPECT_TRUE(geo.ok()) << geo.status();
  EXPECT_TRUE(ontology->AddDimension(std::move(geo).value()).ok());
  auto cal = DimensionBuilder("Cal")
                 .Category("Day")
                 .Category("Month")
                 .Edge("Day", "Month")
                 .Member("Day", "d1")
                 .Member("Month", "m1")
                 .Link("d1", "m1")
                 .Build();
  EXPECT_TRUE(cal.ok()) << cal.status();
  EXPECT_TRUE(ontology->AddDimension(std::move(cal).value()).ok());
  auto sales_city = CategoricalRelation::Create(
      "SalesCity", {CategoricalAttribute::Categorical("City", "Geo", "City"),
                    CategoricalAttribute::Categorical("Day", "Cal", "Day"),
                    CategoricalAttribute::Plain("Amount")});
  EXPECT_TRUE(sales_city.ok());
  EXPECT_TRUE(
      ontology->AddCategoricalRelation(std::move(sales_city).value()).ok());
  auto sales_region = CategoricalRelation::Create(
      "SalesRegion",
      {CategoricalAttribute::Categorical("Region", "Geo", "Region"),
       CategoricalAttribute::Categorical("Day", "Cal", "Day"),
       CategoricalAttribute::Plain("Amount")});
  EXPECT_TRUE(sales_region.ok());
  EXPECT_TRUE(
      ontology->AddCategoricalRelation(std::move(sales_region).value()).ok());
  return ontology;
}

DiagnosticBag LintOntologyBag(const core::MdOntology& ontology,
                              Severity min = Severity::kNote) {
  DiagnosticBag bag;
  LintOptions options;
  options.min_severity = min;
  LintOntology(ontology, options, &bag);
  bag.Sort();
  return bag;
}

TEST(LintOntologyTest, W020NonSeparableEgd) {
  auto ontology = Skeleton();
  // Equates the plain Amount attribute: separability fails.
  ASSERT_TRUE(ontology
                  ->AddDimensionalConstraint(
                      "A = A2 :- SalesCity(C, D, A), SalesCity(C, D2, A2).")
                  .ok());
  auto bag = LintOntologyBag(*ontology);
  auto found = FindCode(bag, "MDQA-W020");
  ASSERT_EQ(found.size(), 1u) << bag.ToText();
  EXPECT_NE(found[0]->message.find("SalesCity[2]"), std::string::npos);
  EXPECT_NE(found[0]->fix_it.find("chase engine"), std::string::npos);
}

TEST(LintOntologyTest, SeparableEgdStaysClean) {
  auto ontology = Skeleton();
  // Equates the categorical Day attribute: separable, no W020.
  ASSERT_TRUE(ontology
                  ->AddDimensionalConstraint(
                      "D = D2 :- SalesCity(C, D, A), SalesCity(C, D2, A2).")
                  .ok());
  auto bag = LintOntologyBag(*ontology);
  EXPECT_TRUE(FindCode(bag, "MDQA-W020").empty()) << bag.ToText();
}

TEST(LintOntologyTest, I021Form10AndN023Notes) {
  auto ontology = Skeleton();
  ASSERT_TRUE(ontology
                  ->AddDimensionalRule(
                      "RegionCity(R, C), SalesCity(C, D, A) :- "
                      "SalesRegion(R, D, A).")
                  .ok());
  auto bag = LintOntologyBag(*ontology);
  EXPECT_EQ(FindCode(bag, "MDQA-I021").size(), 1u) << bag.ToText();
  auto notes = FindCode(bag, "MDQA-N023");
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_NE(notes[0]->message.find("(10)"), std::string::npos);
}

TEST(LintOntologyTest, N040Form10ForcesFullRechase) {
  auto ontology = Skeleton();
  ASSERT_TRUE(ontology
                  ->AddDimensionalRule(
                      "RegionCity(R, C), SalesCity(C, D, A) :- "
                      "SalesRegion(R, D, A).")
                  .ok());
  auto bag = LintOntologyBag(*ontology);
  auto found = FindCode(bag, "MDQA-N040");
  ASSERT_EQ(found.size(), 1u) << bag.ToText();
  EXPECT_NE(found[0]->message.find("form-(10) rules"), std::string::npos);
  EXPECT_NE(found[0]->message.find("full re-chase"), std::string::npos);
  EXPECT_NE(found[0]->fix_it.find("restructure"), std::string::npos);
}

TEST(LintOntologyTest, N040NonCategoricalEgdForcesFullRechase) {
  auto ontology = Skeleton();
  ASSERT_TRUE(ontology
                  ->AddDimensionalConstraint(
                      "A = A2 :- SalesCity(C, D, A), SalesCity(C, D2, A2).")
                  .ok());
  auto bag = LintOntologyBag(*ontology);
  auto found = FindCode(bag, "MDQA-N040");
  ASSERT_EQ(found.size(), 1u) << bag.ToText();
  EXPECT_NE(found[0]->message.find("non-categorical"), std::string::npos);
}

TEST(LintOntologyTest, N040AbsentWhenIncrementalPathApplies) {
  auto ontology = Skeleton();
  // A separable (categorical-only) EGD keeps the incremental path open,
  // so no note is warranted.
  ASSERT_TRUE(ontology
                  ->AddDimensionalConstraint(
                      "D = D2 :- SalesCity(C, D, A), SalesCity(C, D2, A2).")
                  .ok());
  auto bag = LintOntologyBag(*ontology);
  EXPECT_TRUE(FindCode(bag, "MDQA-N040").empty()) << bag.ToText();
}

TEST(LintOntologyTest, W022RawRuleMatchingNoForm) {
  auto ontology = Skeleton();
  // Rejected by AddDimensionalRule (upward existential-categorical is
  // not form (10)) — but the raw escape hatch accepts it, and the lint
  // pass flags what slipped through.
  ASSERT_TRUE(ontology
                  ->AddRawStatements(
                      "RegionCity(R, C), SalesRegion(R, D, A) :- "
                      "SalesCity(C, D, A).")
                  .ok());
  auto bag = LintOntologyBag(*ontology);
  auto found = FindCode(bag, "MDQA-W022");
  ASSERT_EQ(found.size(), 1u) << bag.ToText();
  EXPECT_NE(found[0]->fix_it.find("AddDimensionalRule"), std::string::npos);
}

TEST(LintOntologyTest, RawContextualRuleNotFlagged) {
  auto ontology = Skeleton();
  ASSERT_TRUE(
      ontology->AddRawStatements("Note(C) :- SalesCity(C, D, A).").ok());
  auto bag = LintOntologyBag(*ontology);
  EXPECT_TRUE(FindCode(bag, "MDQA-W022").empty()) << bag.ToText();
}

// --- dimension passes ------------------------------------------------------

DiagnosticBag LintDimensionBag(const md::Dimension& d) {
  DiagnosticBag bag;
  LintOptions options;
  LintDimension(d, options, &bag);
  bag.Sort();
  return bag;
}

TEST(LintDimensionTest, W031NonStrictRollUp) {
  // c1 rolls up to both r1 and r2 via two parallel edges.
  auto dim = DimensionBuilder("Geo")
                 .Category("City")
                 .Category("Region")
                 .Edge("City", "Region")
                 .Member("City", "c1")
                 .Member("Region", "r1")
                 .Member("Region", "r2")
                 .Link("c1", "r1")
                 .Link("c1", "r2")
                 .Build();
  ASSERT_TRUE(dim.ok()) << dim.status();
  auto bag = LintDimensionBag(*dim);
  auto found = FindCode(bag, "MDQA-W031");
  ASSERT_EQ(found.size(), 1u) << bag.ToText();
  EXPECT_NE(found[0]->message.find("double-counts"), std::string::npos);
}

TEST(LintDimensionTest, W032PartialRollUp) {
  // City has two parent categories; c1 reaches Region but not District.
  auto dim = DimensionBuilder("Geo")
                 .Category("City")
                 .Category("Region")
                 .Category("District")
                 .Edge("City", "Region")
                 .Edge("City", "District")
                 .Member("City", "c1")
                 .Member("Region", "r1")
                 .Member("District", "d1")
                 .Link("c1", "r1")
                 .Build();
  ASSERT_TRUE(dim.ok()) << dim.status();
  auto bag = LintDimensionBag(*dim);
  auto found = FindCode(bag, "MDQA-W032");
  ASSERT_EQ(found.size(), 1u) << bag.ToText();
  EXPECT_NE(found[0]->message.find("'District'"), std::string::npos);
  EXPECT_NE(found[0]->fix_it.find("link 'c1'"), std::string::npos);
}

TEST(LintDimensionTest, W033OrphanSuppressesPerCategoryFindings) {
  auto dim = DimensionBuilder("Geo")
                 .Category("City")
                 .Category("Region")
                 .Edge("City", "Region")
                 .Member("City", "c1")
                 .Member("City", "orphan")
                 .Member("Region", "r1")
                 .Link("c1", "r1")
                 .Build();
  ASSERT_TRUE(dim.ok()) << dim.status();
  auto bag = LintDimensionBag(*dim);
  auto found = FindCode(bag, "MDQA-W033");
  ASSERT_EQ(found.size(), 1u) << bag.ToText();
  EXPECT_NE(found[0]->message.find("'orphan'"), std::string::npos);
  // The orphan is not additionally reported as a partial roll-up.
  EXPECT_TRUE(FindCode(bag, "MDQA-W032").empty()) << bag.ToText();
}

TEST(LintDimensionTest, I034EmptyCategory) {
  auto dim = DimensionBuilder("Geo")
                 .Category("City")
                 .Category("Region")
                 .Edge("City", "Region")
                 .Member("Region", "r1")
                 .Build();
  ASSERT_TRUE(dim.ok()) << dim.status();
  auto bag = LintDimensionBag(*dim);
  auto found = FindCode(bag, "MDQA-I034");
  ASSERT_EQ(found.size(), 1u) << bag.ToText();
  EXPECT_NE(found[0]->message.find("'City'"), std::string::npos);
}

TEST(LintDimensionTest, CleanDimensionHasNoFindings) {
  auto dim = DimensionBuilder("Geo")
                 .Category("City")
                 .Category("Region")
                 .Edge("City", "Region")
                 .Member("City", "c1")
                 .Member("Region", "r1")
                 .Link("c1", "r1")
                 .Build();
  ASSERT_TRUE(dim.ok());
  EXPECT_TRUE(LintDimensionBag(*dim).empty());
}

TEST(LintDimensionTest, E030CategoryCycle) {
  DiagnosticBag bag;
  LintOptions options;
  LintDimensionEdges("Geo",
                     {{"City", "Region"}, {"Region", "State"},
                      {"State", "City"}},
                     options, &bag);
  auto found = FindCode(bag, "MDQA-E030");
  ASSERT_EQ(found.size(), 1u) << bag.ToText();
  EXPECT_NE(found[0]->message.find("City -> Region -> State -> City"),
            std::string::npos)
      << found[0]->message;
  EXPECT_EQ(found[0]->fix_it, "remove the edge 'State -> City'");
}

TEST(LintDimensionTest, E030NoFalsePositiveOnDag) {
  DiagnosticBag bag;
  LintOptions options;
  // A diamond is a DAG, not a cycle.
  LintDimensionEdges("Geo",
                     {{"City", "Region"}, {"City", "District"},
                      {"Region", "State"}, {"District", "State"}},
                     options, &bag);
  EXPECT_TRUE(bag.empty()) << bag.ToText();
}

// --- the Assessor gate -----------------------------------------------------

TEST(LintGate, HospitalAssessmentRecordsClassAndEngine) {
  auto context = scenarios::BuildHospitalContext(scenarios::HospitalOptions{});
  ASSERT_TRUE(context.ok()) << context.status();
  quality::Assessor assessor(&*context);
  auto report = assessor.Assess();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->program_class.empty());
  EXPECT_FALSE(report->engine_reason.empty());
  EXPECT_EQ(report->engine_used, qa::Engine::kChase);
  EXPECT_EQ(report->lint_errors, 0u);
  std::string text = report->ToString();
  EXPECT_NE(text.find("program class:"), std::string::npos);
  EXPECT_NE(text.find("engine: chase"), std::string::npos);
}

TEST(LintGate, DisablingTheGateSkipsLint) {
  auto context = scenarios::BuildHospitalContext(scenarios::HospitalOptions{});
  ASSERT_TRUE(context.ok());
  quality::Assessor assessor(&*context);
  quality::AssessOptions options;
  options.lint_gate = false;
  auto report = assessor.Assess(options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->lint_text.empty());
  EXPECT_FALSE(report->program_class.empty());  // classification still runs
}

TEST(LintGate, SelectEngineRespectsClassification) {
  // Sticky, single-atom heads, no EGDs/negation -> rewriting.
  auto program = datalog::Parser::ParseProgram(
      "P(\"a\", \"b\").\n"
      "T(X, Y) :- P(X, Y).\n"
      "U(Y, Z) :- T(X, Y).\n");
  ASSERT_TRUE(program.ok()) << program.status();
  datalog::ProgramAnalysis analysis(*program);
  ASSERT_TRUE(analysis.IsSticky());
  auto selection =
      qa::SelectEngine(*program, analysis, qa::EngineSelectOptions{});
  EXPECT_EQ(selection.engine, qa::Engine::kRewriting);

  // Negation forces the chase regardless of the class.
  auto negated = datalog::Parser::ParseProgram(
      "P(\"a\").\nQ(\"a\").\nT(X) :- P(X), not Q(X).\n");
  ASSERT_TRUE(negated.ok());
  datalog::ProgramAnalysis negated_analysis(*negated);
  EXPECT_EQ(qa::SelectEngine(*negated, negated_analysis,
                             qa::EngineSelectOptions{})
                .engine,
            qa::Engine::kChase);
}

TEST(LintGate, SelectEnginePicksWsForWeaklySticky) {
  // Weakly sticky but not sticky: the w007 fixture program minus the
  // violating repetition keeps the repeated marked variable at a
  // finite-rank position.
  auto program = datalog::Parser::ParseProgram(
      "S(\"a\", \"b\").\n"
      "R(Y, Z) :- S(X, Y).\n"
      "Q(X) :- S(X, Y), S(Y, X2).\n");
  ASSERT_TRUE(program.ok()) << program.status();
  datalog::ProgramAnalysis analysis(*program);
  ASSERT_TRUE(analysis.IsWeaklySticky());
  ASSERT_FALSE(analysis.IsSticky());
  EXPECT_EQ(
      qa::SelectEngine(*program, analysis, qa::EngineSelectOptions{}).engine,
      qa::Engine::kDeterministicWs);
}

// Everything answer-relevant in the report, i.e. ToString() minus the
// "cost: ..." line (pruning legitimately shrinks actual chase work).
std::string AnswerRelevantReport(const quality::AssessmentReport& report) {
  std::istringstream in(report.ToString());
  std::string out, line;
  while (std::getline(in, line)) {
    if (line.rfind("cost: ", 0) == 0) continue;
    out += line + "\n";
  }
  return out;
}

TEST(LintGate, PruningDeadRulesPreservesAssessment) {
  auto context = scenarios::BuildHospitalContext(scenarios::HospitalOptions{});
  ASSERT_TRUE(context.ok()) << context.status();
  quality::Assessor assessor(&*context);

  auto unpruned = assessor.Assess();
  ASSERT_TRUE(unpruned.ok()) << unpruned.status();

  quality::AssessOptions options;
  options.prune_dead_rules = true;
  auto pruned = assessor.Assess(options);
  ASSERT_TRUE(pruned.ok()) << pruned.status();

  // Pruning is answer-preserving: measures, failures, checks, and the
  // lint/classification sections are byte-identical; only cost may move.
  EXPECT_EQ(AnswerRelevantReport(*unpruned), AnswerRelevantReport(*pruned));
  EXPECT_LE(pruned->actual_cost, unpruned->actual_cost);
}

}  // namespace
}  // namespace mdqa::analysis
