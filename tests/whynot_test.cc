// Why-not diagnosis: pinpointing the missing link when an expected fact
// (e.g. a quality tuple) is absent.

#include "datalog/whynot.h"

#include <gtest/gtest.h>

#include "datalog/chase.h"
#include "datalog/parser.h"
#include "scenarios/hospital.h"

namespace mdqa::datalog {
namespace {

struct Fixture {
  Program program;
  Instance instance;
};

Fixture Chased(const std::string& text) {
  auto p = Parser::ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status();
  Instance inst = Instance::FromProgram(*p);
  EXPECT_TRUE(Chase::Run(*p, &inst, ChaseOptions()).ok());
  return Fixture{std::move(p).value(), std::move(inst)};
}

TEST(WhyNot, PresentFactShortCircuits) {
  Fixture f = Chased("P(1).\nQ(X) :- P(X).\n");
  Atom q = Parser::ParseGroundAtom("Q(1)", f.program.mutable_vocab()).value();
  auto report = ExplainAbsence(f.program, f.instance, q);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->present);
  EXPECT_NE(report->ToString().find("present"), std::string::npos);
}

TEST(WhyNot, ExtensionalAbsenceHasNoAttempts) {
  Fixture f = Chased("P(1).\n");
  Atom p2 = Parser::ParseGroundAtom("P(2)", f.program.mutable_vocab()).value();
  auto report = ExplainAbsence(f.program, f.instance, p2);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->present);
  EXPECT_TRUE(report->attempts.empty());
  EXPECT_NE(report->ToString().find("extensional"), std::string::npos);
}

TEST(WhyNot, ReportsBlockingAtom) {
  // l2 has no UW edge, so the roll-up blocks on the edge atom.
  Fixture f = Chased(
      "PW(\"w1\", \"tom\"). PW(\"w2\", \"lou\"). UW(\"std\", \"w1\").\n"
      "PU(U, P) :- PW(W, P), UW(U, W).\n");
  Atom missing =
      Parser::ParseGroundAtom("PU(\"std\", \"lou\")",
                              f.program.mutable_vocab())
          .value();
  auto report = ExplainAbsence(f.program, f.instance, missing);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->attempts.size(), 1u);
  // PW(W, "lou") matches (w2), but UW("std", w2) does not exist. The
  // greedy order: prefix {PW} satisfiable, prefix {PW, UW} not.
  EXPECT_EQ(report->attempts[0].satisfied_prefix, 1u);
  EXPECT_NE(report->attempts[0].blocking_atom.find("UW(\"std\""),
            std::string::npos);
}

TEST(WhyNot, ReportsFirstBodyAtomWhenNothingMatches) {
  Fixture f = Chased(
      "UW(\"std\", \"w1\").\n"
      "PU(U, P) :- PW(W, P), UW(U, W).\n");
  Atom missing =
      Parser::ParseGroundAtom("PU(\"std\", \"tom\")",
                              f.program.mutable_vocab())
          .value();
  auto report = ExplainAbsence(f.program, f.instance, missing);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->attempts.size(), 1u);
  EXPECT_EQ(report->attempts[0].satisfied_prefix, 0u);
  EXPECT_NE(report->attempts[0].blocking_atom.find("PW"),
            std::string::npos);
}

TEST(WhyNot, ExistentialBoundToConstantIsDead) {
  Fixture f = Chased(
      "P(\"a\").\n"
      "R(X, Z) :- P(X).\n");
  Atom missing = Parser::ParseGroundAtom("R(\"a\", \"eve\")",
                                         f.program.mutable_vocab())
                     .value();
  auto report = ExplainAbsence(f.program, f.instance, missing);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->attempts.size(), 1u);
  EXPECT_NE(report->attempts[0].blocking_atom.find("existential"),
            std::string::npos);
}

TEST(WhyNot, ComparisonBlockedRule) {
  Fixture f = Chased(
      "M(\"a\", 3).\n"
      "Big(X) :- M(X, V), V > 10.\n");
  Atom missing =
      Parser::ParseGroundAtom("Big(\"a\")", f.program.mutable_vocab())
          .value();
  auto report = ExplainAbsence(f.program, f.instance, missing);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->attempts.size(), 1u);
  // The single body atom matches only with V=3, which the comparison
  // kills: prefix of length 1 is unsatisfiable.
  EXPECT_EQ(report->attempts[0].satisfied_prefix, 0u);
}

TEST(WhyNot, HospitalDirtyTupleDiagnosis) {
  // Why is Table I row 4 (Tom, Sep/9) not quality? Because on Sep/9 Tom
  // was in the Terminal unit — TakenWithTherm requires Standard.
  auto context =
      scenarios::BuildHospitalContext(scenarios::HospitalOptions{});
  ASSERT_TRUE(context.ok());
  auto program = context->BuildProgram();
  ASSERT_TRUE(program.ok());
  Instance inst = Instance::FromProgram(*program);
  ChaseOptions options;
  options.check_constraints = false;
  ASSERT_TRUE(Chase::Run(*program, &inst, options).ok());
  Atom missing =
      Parser::ParseGroundAtom(
          "Measurementsq(\"Sep/9-12:00\", \"Tom Waits\", 37)",
          program->mutable_vocab())
          .value();
  auto report = ExplainAbsence(*program, inst, missing);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->attempts.size(), 1u);
  // Blocks on Measurementp(..., "cert.", "B1") — the quality conditions.
  EXPECT_NE(report->attempts[0].blocking_atom.find("Measurementp"),
            std::string::npos);
  EXPECT_FALSE(report->present);
}

}  // namespace
}  // namespace mdqa::datalog
