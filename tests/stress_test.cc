// Scale sanity: larger synthetic instances must stay comfortably inside
// generous wall-clock budgets — a tripwire against accidental
// complexity regressions in the join/chase hot paths.

#include <gtest/gtest.h>

#include <chrono>

#include "datalog/parser.h"
#include "qa/chase_qa.h"
#include "qa/deterministic_ws.h"
#include "quality/assessor.h"
#include "scenarios/synthetic.h"

namespace mdqa {
namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

TEST(Stress, LargeSyntheticChaseUnderBudget) {
  scenarios::SyntheticSpec spec;
  spec.institutions = 4;
  spec.units_per_institution = 4;
  spec.wards_per_unit = 4;
  spec.patients = 400;
  spec.days = 15;
  auto ontology = scenarios::BuildSyntheticOntology(spec);
  ASSERT_TRUE(ontology.ok());
  auto program = (*ontology)->Compile();
  ASSERT_TRUE(program.ok());
  EXPECT_GT(program->facts().size(), 6000u);

  auto t0 = std::chrono::steady_clock::now();
  auto qa = qa::ChaseQa::Create(*program);
  ASSERT_TRUE(qa.ok()) << qa.status();
  double chase_ms = MsSince(t0);
  EXPECT_LT(chase_ms, 20000.0) << "chase took " << chase_ms << " ms";
  EXPECT_TRUE(qa->stats().reached_fixpoint);
  // 400 patients × 15 days roll up to exactly one unit each.
  uint32_t pu = program->vocab()->FindPredicate("SPatientUnit");
  EXPECT_EQ(qa->instance().CountFacts(pu), 400u * 15u);
}

TEST(Stress, SelectiveWsQueryStaysGoalDirected) {
  scenarios::SyntheticSpec spec;
  spec.patients = 300;
  spec.days = 10;
  auto ontology = scenarios::BuildSyntheticOntology(spec);
  ASSERT_TRUE(ontology.ok());
  auto program = (*ontology)->Compile();
  ASSERT_TRUE(program.ok());
  qa::DeterministicWsQa ws(*program);
  auto q = datalog::Parser::ParseQuery(
      "Q(U) :- SPatientUnit(U, \"sd0\", \"sp0\").", program->vocab().get());
  ASSERT_TRUE(q.ok());
  auto t0 = std::chrono::steady_clock::now();
  auto answers = ws.Answers(*q);
  double ms = MsSince(t0);
  ASSERT_TRUE(answers.ok()) << answers.status();
  EXPECT_EQ(answers->size(), 1u);
  EXPECT_LT(ms, 20000.0);
  // Goal-directedness: far fewer facts materialized than the full
  // SPatientUnit closure (3000 tuples).
  EXPECT_LT(ws.stats().facts_materialized, 3000u);
}

TEST(Stress, FullAssessmentPipelineUnderBudget) {
  scenarios::SyntheticSpec spec;
  spec.patients = 150;
  spec.days = 8;
  auto context = scenarios::BuildSyntheticContext(spec);
  ASSERT_TRUE(context.ok());
  quality::Assessor assessor(&*context);
  auto t0 = std::chrono::steady_clock::now();
  auto report = assessor.Assess();
  double ms = MsSince(t0);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_LT(ms, 30000.0) << "assessment took " << ms << " ms";
  EXPECT_EQ(report->per_relation[0].original_size, 150u * 8u);
}

TEST(Stress, TightDeadlineOnLargeChaseTruncatesSoundly) {
  // The acceptance scenario: a 10 ms wall-clock deadline against the
  // large synthetic instance must come back quickly with a *truncated*
  // (not failed) run whose partial instance and answers are a sound
  // subset of the unbudgeted run's.
  scenarios::SyntheticSpec spec;
  spec.institutions = 4;
  spec.units_per_institution = 4;
  spec.wards_per_unit = 4;
  spec.patients = 4000;
  spec.days = 25;
  auto ontology = scenarios::BuildSyntheticOntology(spec);
  ASSERT_TRUE(ontology.ok());
  auto program = (*ontology)->Compile();
  ASSERT_TRUE(program.ok());
  auto query = datalog::Parser::ParseQuery(
      "Q(U, D, P) :- SPatientUnit(U, D, P).", program->vocab().get());
  ASSERT_TRUE(query.ok());

  auto full = qa::Answer(qa::Engine::kChase, *program, *query);
  ASSERT_TRUE(full.ok()) << full.status();
  ASSERT_EQ(full->size(), 4000u * 25u);

  ExecutionBudget budget;
  budget.SetDeadlineAfter(std::chrono::milliseconds(10));
  budget.set_check_stride(64);  // tight deadline: poll the clock often
  qa::AnswerOptions aopts;
  aopts.budget = &budget;
  auto t0 = std::chrono::steady_clock::now();
  auto partial = qa::Answer(qa::Engine::kChase, *program, *query, aopts);
  double ms = MsSince(t0);
  ASSERT_TRUE(partial.ok()) << partial.status();
  EXPECT_LT(ms, 5000.0) << "a 10 ms deadline must not run for seconds";
  EXPECT_EQ(partial->completeness, Completeness::kTruncated);
  EXPECT_EQ(partial->interruption.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(partial->IsSubsetOf(*full));

  // Same deadline against the WS engine: also a sound subset.
  ExecutionBudget ws_budget;
  ws_budget.SetDeadlineAfter(std::chrono::milliseconds(10));
  ws_budget.set_check_stride(64);
  qa::AnswerOptions ws_aopts;
  ws_aopts.budget = &ws_budget;
  auto ws_partial =
      qa::Answer(qa::Engine::kDeterministicWs, *program, *query, ws_aopts);
  ASSERT_TRUE(ws_partial.ok()) << ws_partial.status();
  EXPECT_TRUE(ws_partial->IsSubsetOf(*full));
}

TEST(Stress, BudgetedAssessmentDegradesInsteadOfFailing) {
  // Starve the whole pipeline: a minuscule per-relation step cap with no
  // retries leaves every relation degraded, yet Assess still returns a
  // well-formed report (the robustness contract under overload).
  scenarios::SyntheticSpec spec;
  spec.patients = 150;
  spec.days = 8;
  auto context = scenarios::BuildSyntheticContext(spec);
  ASSERT_TRUE(context.ok());
  quality::Assessor assessor(&*context);
  quality::AssessOptions options;
  options.per_relation_max_steps = 1;
  options.escalation_factor = 1.0;  // retry does not help
  options.max_retries = 1;
  auto report = assessor.Assess(options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->completeness, Completeness::kTruncated);
  EXPECT_FALSE(report->degraded.empty());
  EXPECT_NE(report->ToString().find("DEGRADED"), std::string::npos);
}

TEST(AnswerSetRelation, MaterializesWithSchema) {
  auto p = datalog::Parser::ParseProgram(
      "PW(\"w1\", \"tom\"). UW(\"std\", \"w1\").\n"
      "PU(U, P) :- PW(W, P), UW(U, W).\n");
  ASSERT_TRUE(p.ok());
  auto q = datalog::Parser::ParseQuery("Q(U, P) :- PU(U, P).",
                                       p->mutable_vocab());
  ASSERT_TRUE(q.ok());
  auto answers = qa::Answer(qa::Engine::kChase, *p, *q);
  ASSERT_TRUE(answers.ok());
  auto rel = answers->ToRelation(*p->vocab(), "Result", {"Unit", "Patient"});
  ASSERT_TRUE(rel.ok()) << rel.status();
  EXPECT_EQ(rel->size(), 1u);
  EXPECT_EQ(rel->schema().attribute(0).name, "Unit");
  EXPECT_TRUE(rel->Contains({Value::Str("std"), Value::Str("tom")}));
  // Arity mismatch rejected.
  EXPECT_FALSE(answers->ToRelation(*p->vocab(), "Bad", {"One"}).ok());
}

}  // namespace
}  // namespace mdqa
