#include "datalog/cq_eval.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "datalog/unify.h"

namespace mdqa::datalog {
namespace {

class CqEvalTest : public ::testing::Test {
 protected:
  void Load(const std::string& text) {
    auto p = Parser::ParseProgram(text);
    ASSERT_TRUE(p.ok()) << p.status();
    program_ = std::make_unique<Program>(std::move(p).value());
    instance_ = std::make_unique<Instance>(Instance::FromProgram(*program_));
  }

  std::vector<std::vector<Term>> Ask(const std::string& query_text) {
    auto q = Parser::ParseQuery(query_text, program_->mutable_vocab());
    EXPECT_TRUE(q.ok()) << q.status();
    CqEvaluator eval(*instance_);
    auto answers = eval.Answers(*q);
    EXPECT_TRUE(answers.ok()) << answers.status();
    return answers.ok() ? std::move(answers).value()
                        : std::vector<std::vector<Term>>{};
  }

  bool AskBool(const std::string& query_text) {
    auto q = Parser::ParseQuery(query_text, program_->mutable_vocab());
    EXPECT_TRUE(q.ok()) << q.status();
    CqEvaluator eval(*instance_);
    auto r = eval.AnswerBoolean(*q);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() && *r;
  }

  std::unique_ptr<Program> program_;
  std::unique_ptr<Instance> instance_;
};

TEST_F(CqEvalTest, SingleAtomScan) {
  Load("P(\"a\"). P(\"b\").");
  EXPECT_EQ(Ask("Q(X) :- P(X).").size(), 2u);
}

TEST_F(CqEvalTest, ConstantSelection) {
  Load("P(\"a\", 1). P(\"b\", 2). P(\"a\", 3).");
  EXPECT_EQ(Ask("Q(Y) :- P(\"a\", Y).").size(), 2u);
  EXPECT_EQ(Ask("Q(Y) :- P(\"c\", Y).").size(), 0u);
}

TEST_F(CqEvalTest, JoinAcrossAtoms) {
  Load(
      "Parent(\"a\", \"b\"). Parent(\"b\", \"c\"). Parent(\"b\", \"d\").\n");
  auto grandchildren = Ask("Q(Z) :- Parent(\"a\", Y), Parent(Y, Z).");
  EXPECT_EQ(grandchildren.size(), 2u);
}

TEST_F(CqEvalTest, RepeatedVariableWithinAtom) {
  Load("E(\"a\", \"a\"). E(\"a\", \"b\").");
  auto loops = Ask("Q(X) :- E(X, X).");
  ASSERT_EQ(loops.size(), 1u);
}

TEST_F(CqEvalTest, TriangleJoin) {
  Load(
      "E(1, 2). E(2, 3). E(3, 1). E(1, 3).\n");
  // Triangles: 1-2-3-1 exists.
  EXPECT_TRUE(AskBool("Q() :- E(X, Y), E(Y, Z), E(Z, X)."));
}

TEST_F(CqEvalTest, EmptyPredicateGivesNoAnswers) {
  Load("P(\"a\").");
  // R never occurs as a fact; intern it via a query mentioning it.
  EXPECT_EQ(Ask("Q(X) :- P(X), P(Y), Q0(X, Y).").size(), 0u);
}

TEST_F(CqEvalTest, ComparisonsPrune) {
  Load("M(1, 10). M(2, 20). M(3, 30).");
  EXPECT_EQ(Ask("Q(X) :- M(X, V), V > 15.").size(), 2u);
  EXPECT_EQ(Ask("Q(X) :- M(X, V), V >= 10, V < 30.").size(), 2u);
  EXPECT_EQ(Ask("Q(X) :- M(X, V), V != 20.").size(), 2u);
  EXPECT_EQ(Ask("Q(X) :- M(X, V), X = 2.").size(), 1u);
}

TEST_F(CqEvalTest, StringComparisonsAreLexicographic) {
  Load("T(\"Sep/5-11:00\"). T(\"Sep/5-12:10\"). T(\"Sep/5-13:00\").");
  EXPECT_EQ(
      Ask("Q(X) :- T(X), X >= \"Sep/5-11:45\", X <= \"Sep/5-12:15\".").size(),
      1u);
}

TEST_F(CqEvalTest, NumericComparisonAcrossIntAndDouble) {
  Load("V(1). V(2.5). V(3).");
  EXPECT_EQ(Ask("Q(X) :- V(X), X > 2.").size(), 2u);
  EXPECT_EQ(Ask("Q(X) :- V(X), X >= 2.5.").size(), 2u);
}

TEST_F(CqEvalTest, VariableToVariableComparison) {
  Load("P2(1, 2). P2(2, 2). P2(3, 1).");
  EXPECT_EQ(Ask("Q(X, Y) :- P2(X, Y), X < Y.").size(), 1u);
  EXPECT_EQ(Ask("Q(X, Y) :- P2(X, Y), X = Y.").size(), 1u);
}

TEST_F(CqEvalTest, UnboundComparisonVariableIsAnError) {
  Load("P(1).");
  auto q = Parser::ParseQuery("Q(X) :- P(X), Y > 1.",
                              program_->mutable_vocab());
  // Validation catches the unbound comparison variable.
  ASSERT_FALSE(q.ok());
}

TEST_F(CqEvalTest, AnswersAreDeduplicated) {
  Load("P(\"a\", 1). P(\"a\", 2).");
  EXPECT_EQ(Ask("Q(X) :- P(X, Y).").size(), 1u);
}

TEST_F(CqEvalTest, ConstantsInAnswerAreEchoed) {
  Load("P(\"a\").");
  auto rows = Ask("Q(X, 7) :- P(X).");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].size(), 2u);
  EXPECT_TRUE(rows[0][1].IsConstant());
}

TEST_F(CqEvalTest, BooleanQueries) {
  Load("P(\"a\").");
  EXPECT_TRUE(AskBool("Q() :- P(X)."));
  EXPECT_FALSE(AskBool("Q() :- P(X), P(Y), X != Y."));
}

TEST_F(CqEvalTest, NullsJoinOnlyWithThemselves) {
  Load("P(\"a\").");
  Vocabulary* vocab = program_->mutable_vocab();
  ASSERT_TRUE(vocab->InternPredicate("N", 1).ok());
  uint32_t pred = vocab->FindPredicate("N");
  Term null0 = vocab->FreshNull();
  instance_->AddFact(Atom(pred, {null0}), 1);
  instance_->AddFact(Atom(pred, {vocab->FreshNull()}), 1);

  // Self-join through the same variable: each null matches itself only.
  EXPECT_EQ(Ask("Q(X) :- N(X), N(X).").size(), 2u);
  // Nulls never compare equal to constants.
  EXPECT_EQ(Ask("Q(X) :- N(X), X = \"a\".").size(), 0u);
  // Order comparisons on nulls are never certain.
  EXPECT_EQ(Ask("Q(X) :- N(X), X > \"a\".").size(), 0u);
  // Null identity equality holds.
  EXPECT_EQ(Ask("Q(X, Y) :- N(X), N(Y), X != Y.").size(), 2u);
}

TEST_F(CqEvalTest, HasNullDetector) {
  Vocabulary vocab;
  EXPECT_FALSE(CqEvaluator::HasNull({Term::Constant(0)}));
  EXPECT_TRUE(CqEvaluator::HasNull({Term::Constant(0), Term::Null(0)}));
}

TEST_F(CqEvalTest, LevelWindowsRestrictMatching) {
  Load("P(\"a\").");
  Vocabulary* vocab = program_->mutable_vocab();
  uint32_t pred = vocab->FindPredicate("P");
  instance_->AddFact(Atom(pred, {vocab->Str("b")}), 1);
  instance_->AddFact(Atom(pred, {vocab->Str("c")}), 2);

  auto q = Parser::ParseQuery("Q(X) :- P(X).", vocab);
  ASSERT_TRUE(q.ok());
  CqEvaluator eval(*instance_);
  std::vector<AtomLevelWindow> windows(1);
  windows[0].min_level = 1;
  windows[0].max_level = 1;
  size_t count = 0;
  ASSERT_TRUE(eval.Enumerate(q->body, q->comparisons, Subst{}, windows,
                             [&count](const Subst&) {
                               ++count;
                               return true;
                             })
                  .ok());
  EXPECT_EQ(count, 1u);  // only "b" sits at level 1
}

TEST_F(CqEvalTest, EnumerateHonorsInitialSubstitution) {
  Load("P(\"a\", 1). P(\"b\", 2).");
  auto q = Parser::ParseQuery("Q(X, Y) :- P(X, Y).",
                              program_->mutable_vocab());
  ASSERT_TRUE(q.ok());
  Subst initial;
  initial[q->answer[0].id()] = program_->mutable_vocab()->Str("a");
  CqEvaluator eval(*instance_);
  size_t count = 0;
  ASSERT_TRUE(eval.Enumerate(q->body, q->comparisons, initial, {},
                             [&count](const Subst&) {
                               ++count;
                               return true;
                             })
                  .ok());
  EXPECT_EQ(count, 1u);
}

TEST_F(CqEvalTest, EarlyStopViaCallback) {
  Load("P(1). P(2). P(3).");
  auto q = Parser::ParseQuery("Q(X) :- P(X).", program_->mutable_vocab());
  ASSERT_TRUE(q.ok());
  CqEvaluator eval(*instance_);
  size_t count = 0;
  ASSERT_TRUE(eval.Enumerate(q->body, q->comparisons, Subst{}, {},
                             [&count](const Subst&) {
                               ++count;
                               return false;  // stop immediately
                             })
                  .ok());
  EXPECT_EQ(count, 1u);
}

TEST_F(CqEvalTest, StatsCountProbesAndSolutions) {
  Load("P(\"a\", 1). P(\"a\", 2). P(\"b\", 3).");
  auto q = Parser::ParseQuery("Q(Y) :- P(\"a\", Y).",
                              program_->mutable_vocab());
  ASSERT_TRUE(q.ok());
  EvalStats stats;
  CqEvaluator eval(*instance_, &stats);
  auto answers = eval.Answers(*q);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 2u);
  EXPECT_EQ(stats.solutions, 2u);
  // The constant selection goes through the index, not a scan, and only
  // the two matching rows are tried.
  EXPECT_GE(stats.index_probes, 1u);
  EXPECT_EQ(stats.full_scans, 0u);
  EXPECT_EQ(stats.rows_tried, 2u);
}

TEST_F(CqEvalTest, StatsCountScansWhenNothingIsBound) {
  Load("P(1). P(2). P(3).");
  auto q = Parser::ParseQuery("Q(X) :- P(X).", program_->mutable_vocab());
  ASSERT_TRUE(q.ok());
  EvalStats stats;
  CqEvaluator eval(*instance_, &stats);
  ASSERT_TRUE(eval.Answers(*q).ok());
  EXPECT_EQ(stats.full_scans, 1u);
  EXPECT_EQ(stats.rows_tried, 3u);
  EXPECT_EQ(stats.atoms_matched, 3u);
}

TEST_F(CqEvalTest, SatisfiableShortCircuits) {
  Load("P(1). P(2).");
  auto q = Parser::ParseQuery("Q() :- P(X).", program_->mutable_vocab());
  ASSERT_TRUE(q.ok());
  CqEvaluator eval(*instance_);
  auto sat = eval.Satisfiable(q->body, q->comparisons, Subst{});
  ASSERT_TRUE(sat.ok());
  EXPECT_TRUE(*sat);
}

}  // namespace
}  // namespace mdqa::datalog
