// Unit and integration coverage for the execution-budget subsystem:
// counters, deadlines, cancellation tokens, fault injection, derived
// budgets, and the graceful-truncation contract each engine honors —
// partial results are sound under-approximations, never garbage.

#include "base/budget.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "datalog/chase.h"
#include "datalog/parser.h"
#include "md/dimension.h"
#include "qa/chase_qa.h"
#include "qa/deterministic_ws.h"
#include "qa/engines.h"
#include "qa/rewriter.h"
#include "quality/assessor.h"

namespace mdqa {
namespace {

using datalog::ChaseOptions;
using datalog::ChaseStats;
using datalog::ChaseStop;
using datalog::Instance;
using datalog::Parser;
using datalog::Program;

TEST(CancellationToken, CancelAndReset) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  token.Reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(FaultInjector, UnarmedProbesPass) {
  FaultInjector faults;
  EXPECT_TRUE(faults.Hit("anything").ok());
  EXPECT_EQ(faults.HitCount("anything"), 1u);
  EXPECT_EQ(faults.HitCount("never-hit"), 0u);
}

TEST(FaultInjector, TripsAtTheArmedHitWindow) {
  FaultInjector faults;
  faults.Arm("p", 2, Status::Internal("boom"), 2);  // hits 2 and 3 trip
  EXPECT_TRUE(faults.Hit("p").ok());
  EXPECT_EQ(faults.Hit("p").code(), StatusCode::kInternal);
  EXPECT_EQ(faults.Hit("p").code(), StatusCode::kInternal);
  EXPECT_TRUE(faults.Hit("p").ok());
  // Probes are independent.
  EXPECT_TRUE(faults.Hit("q").ok());
}

TEST(FaultInjector, AlwaysKeepsTripping) {
  FaultInjector faults;
  faults.Arm("p", 1, Status::ResourceExhausted("injected"),
             FaultInjector::kAlways);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(faults.Hit("p").code(), StatusCode::kResourceExhausted);
  }
  faults.Reset();
  EXPECT_TRUE(faults.Hit("p").ok());
}

// The serve-layer contract (see the FaultInjector class comment): one
// injector shared by concurrent request handlers plus a chaos thread that
// re-arms probes mid-traffic. Under TSan (scripts/check.sh --tsan) this
// is the data-race regression test; under any build it checks the exact-
// ordinal guarantee — hit counts are never lost or double-counted, and
// the armed window [trip_at, trip_at + count) trips exactly `count`
// times no matter how hits interleave across threads.
TEST(FaultInjector, ConcurrentHitsKeepExactOrdinals) {
  FaultInjector faults;
  constexpr int kThreads = 8;
  constexpr uint64_t kHitsPerThread = 2000;
  constexpr uint64_t kWindow = 500;
  faults.Arm("shared", 1000, Status::ResourceExhausted("injected"), kWindow);

  std::atomic<uint64_t> trips{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&faults, &trips] {
      for (uint64_t i = 0; i < kHitsPerThread; ++i) {
        if (!faults.Hit("shared").ok()) {
          trips.fetch_add(1, std::memory_order_relaxed);
        }
        // Independent probes from the same threads must not interfere.
        faults.Hit("other");
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(faults.HitCount("shared"), kThreads * kHitsPerThread);
  EXPECT_EQ(faults.HitCount("other"), kThreads * kHitsPerThread);
  EXPECT_EQ(trips.load(), kWindow);
}

// Arm/Reset racing a stream of hits: TSan's target. The assertable
// invariant is weaker (which hits land inside the re-armed window is
// scheduling-dependent) — no crash, no race report, and the final Reset
// leaves a clean slate.
TEST(FaultInjector, RearmAndResetRaceHitStream) {
  FaultInjector faults;
  std::atomic<bool> stop{false};
  std::vector<std::thread> hitters;
  for (int t = 0; t < 4; ++t) {
    hitters.emplace_back([&faults, &stop] {
      while (!stop.load(std::memory_order_acquire)) {
        faults.Hit("chaos");
      }
    });
  }
  for (int round = 0; round < 50; ++round) {
    faults.Arm("chaos", 10, Status::Internal("injected"),
               FaultInjector::kAlways);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    faults.Reset();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : hitters) t.join();
  faults.Reset();
  EXPECT_EQ(faults.HitCount("chaos"), 0u);
  EXPECT_TRUE(faults.Hit("chaos").ok());
}

TEST(ExecutionBudget, FactLimitTripsExactlyWhenExceeded) {
  ExecutionBudget budget;
  budget.set_max_facts(3);
  EXPECT_TRUE(budget.ChargeFacts(3).ok());
  Status s = budget.ChargeFacts(1);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(ExecutionBudget::IsTruncation(s));
  EXPECT_EQ(budget.facts(), 4u);
  budget.ResetUsage();
  EXPECT_EQ(budget.facts(), 0u);
  EXPECT_TRUE(budget.ChargeFacts(3).ok());
}

TEST(ExecutionBudget, UnlimitedCountersNeverTrip) {
  ExecutionBudget budget;
  EXPECT_TRUE(budget.ChargeFacts(1u << 20).ok());
  EXPECT_TRUE(budget.ChargeSteps(1u << 20).ok());
  EXPECT_TRUE(budget.ChargeRounds(1u << 20).ok());
  EXPECT_TRUE(budget.Check("probe").ok());
}

TEST(ExecutionBudget, MemoryHighWaterAndLimit) {
  ExecutionBudget budget;
  EXPECT_TRUE(budget.NoteMemory(100).ok());
  EXPECT_TRUE(budget.NoteMemory(50).ok());
  EXPECT_EQ(budget.memory_high_water(), 100u);
  budget.set_max_memory_bytes(200);
  EXPECT_TRUE(budget.NoteMemory(150).ok());
  EXPECT_EQ(budget.NoteMemory(300).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(budget.memory_high_water(), 300u);
}

TEST(ExecutionBudget, ExpiredDeadlineTripsFirstCheck) {
  ExecutionBudget budget;
  budget.SetDeadline(std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1));
  // The amortized tick counter starts at zero, so the very first Check
  // reads the clock — expired deadlines are deterministic in tests.
  Status s = budget.Check("probe");
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(s.message().find("deadline"), std::string::npos);
  EXPECT_EQ(budget.CheckNow("probe").code(),
            StatusCode::kResourceExhausted);
}

TEST(ExecutionBudget, CancellationWinsOverCounters) {
  CancellationToken token;
  ExecutionBudget budget;
  budget.set_cancellation(&token);
  EXPECT_TRUE(budget.Check("probe").ok());
  token.Cancel();
  Status s = budget.Check("probe");
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  EXPECT_TRUE(ExecutionBudget::IsTruncation(s));
}

TEST(ExecutionBudget, FaultProbesFireThroughCheck) {
  FaultInjector faults;
  faults.Arm("engine:probe", 1, Status::Internal("injected"));
  ExecutionBudget budget;
  budget.set_fault_injector(&faults);
  EXPECT_EQ(budget.Check("engine:probe").code(), StatusCode::kInternal);
  EXPECT_TRUE(budget.Check("engine:probe").ok());  // one-shot window
  EXPECT_TRUE(budget.Check("other:probe").ok());
  EXPECT_FALSE(ExecutionBudget::IsTruncation(Status::Internal("x")));
}

TEST(ExecutionBudget, InheritControlsSharesControlsNotUsage) {
  CancellationToken token;
  FaultInjector faults;
  ExecutionBudget parent;
  parent.set_cancellation(&token);
  parent.set_fault_injector(&faults);
  parent.SetDeadlineAfter(std::chrono::milliseconds(60'000));
  ASSERT_TRUE(parent.ChargeFacts(10).ok());

  ExecutionBudget child;
  child.InheritControlsFrom(parent);
  EXPECT_TRUE(child.has_deadline());
  EXPECT_EQ(child.facts(), 0u) << "usage counters must start fresh";
  token.Cancel();
  EXPECT_EQ(child.Check("probe").code(), StatusCode::kCancelled);
}

// --- Chase under budget: graceful truncation, sound partial instance ---

Program TransitiveClosure() {
  auto p = Parser::ParseProgram(
      "E(1, 2). E(2, 3). E(3, 4). E(4, 5). E(5, 6).\n"
      "T(X, Y) :- E(X, Y).\n"
      "T(X, Z) :- T(X, Y), E(Y, Z).\n");
  EXPECT_TRUE(p.ok()) << p.status();
  return std::move(p).value();
}

TEST(ChaseBudget, FactLimitYieldsTruncatedSubset) {
  Program program = TransitiveClosure();
  Instance full = Instance::FromProgram(program);
  ChaseStats full_stats;
  ASSERT_TRUE(
      datalog::Chase::Run(program, &full, ChaseOptions(), &full_stats).ok());
  ASSERT_EQ(full_stats.completeness, Completeness::kComplete);

  ExecutionBudget budget;
  budget.set_max_facts(3);
  ChaseOptions options;
  options.budget = &budget;
  Instance partial = Instance::FromProgram(program);
  ChaseStats stats;
  ASSERT_TRUE(
      datalog::Chase::Run(program, &partial, options, &stats).ok());
  EXPECT_EQ(stats.completeness, Completeness::kTruncated);
  EXPECT_EQ(stats.stop, ChaseStop::kBudget);
  EXPECT_FALSE(stats.reached_fixpoint);
  EXPECT_FALSE(stats.interruption.ok());
  EXPECT_NE(stats.ToString().find("truncated"), std::string::npos);
  // Sound: every fact of the truncated run occurs in the full chase,
  // and something was still produced.
  EXPECT_GT(partial.TotalFacts(), 0u);
  EXPECT_LT(partial.TotalFacts(), full.TotalFacts());
  uint32_t t = program.vocab()->FindPredicate("T");
  for (const datalog::Atom& f : partial.Facts(t)) {
    EXPECT_TRUE(full.Contains(f));
  }
}

TEST(ChaseBudget, PreCancelledTokenStopsImmediately) {
  Program program = TransitiveClosure();
  CancellationToken token;
  token.Cancel();
  ExecutionBudget budget;
  budget.set_cancellation(&token);
  ChaseOptions options;
  options.budget = &budget;
  Instance inst = Instance::FromProgram(program);
  ChaseStats stats;
  ASSERT_TRUE(datalog::Chase::Run(program, &inst, options, &stats).ok());
  EXPECT_EQ(stats.completeness, Completeness::kTruncated);
  EXPECT_EQ(stats.stop, ChaseStop::kCancelled);
  EXPECT_EQ(stats.interruption.code(), StatusCode::kCancelled);
}

TEST(ChaseBudget, InjectedHardFaultIsARealError) {
  Program program = TransitiveClosure();
  FaultInjector faults;
  faults.Arm("chase:round", 1, Status::Internal("injected fault"));
  ExecutionBudget budget;
  budget.set_fault_injector(&faults);
  ChaseOptions options;
  options.budget = &budget;
  Instance inst = Instance::FromProgram(program);
  ChaseStats stats;
  Status s = datalog::Chase::Run(program, &inst, options, &stats);
  EXPECT_EQ(s.code(), StatusCode::kInternal)
      << "non-budget faults must not be absorbed as truncation";
}

TEST(ChaseBudget, LegacyResultApiStillErrsOnMaxFacts) {
  Program program = TransitiveClosure();
  ChaseOptions options;
  options.max_facts = 2;
  Instance inst = Instance::FromProgram(program);
  auto stats = datalog::Chase::Run(program, &inst, options);
  EXPECT_EQ(stats.status().code(), StatusCode::kResourceExhausted);
}

// --- The three engines return sound partial answer sets ---

TEST(EngineBudget, ChaseEngineTruncatesGracefully) {
  Program program = TransitiveClosure();
  auto query = Parser::ParseQuery("Q(X, Y) :- T(X, Y).",
                                  program.mutable_vocab());
  ASSERT_TRUE(query.ok());
  auto full = qa::Answer(qa::Engine::kChase, program, *query);
  ASSERT_TRUE(full.ok());

  ExecutionBudget budget;
  budget.set_max_facts(3);
  qa::AnswerOptions aopts;
  aopts.budget = &budget;
  auto partial = qa::Answer(qa::Engine::kChase, program, *query, aopts);
  ASSERT_TRUE(partial.ok()) << partial.status();
  EXPECT_EQ(partial->completeness, Completeness::kTruncated);
  EXPECT_FALSE(partial->interruption.ok());
  EXPECT_TRUE(partial->IsSubsetOf(*full));
  EXPECT_LT(partial->size(), full->size());
}

TEST(EngineBudget, WsEngineTruncatesGracefully) {
  Program program = TransitiveClosure();
  auto query = Parser::ParseQuery("Q(X, Y) :- T(X, Y).",
                                  program.mutable_vocab());
  ASSERT_TRUE(query.ok());
  auto full = qa::Answer(qa::Engine::kDeterministicWs, program, *query);
  ASSERT_TRUE(full.ok());

  ExecutionBudget budget;
  budget.set_max_steps(2);
  qa::AnswerOptions aopts;
  aopts.budget = &budget;
  auto partial =
      qa::Answer(qa::Engine::kDeterministicWs, program, *query, aopts);
  ASSERT_TRUE(partial.ok()) << partial.status();
  EXPECT_EQ(partial->completeness, Completeness::kTruncated);
  EXPECT_TRUE(partial->IsSubsetOf(*full));
}

TEST(EngineBudget, RewritingEngineTruncatesGracefully) {
  // Guarded existential rules keep the rewriting non-trivial.
  auto p = Parser::ParseProgram(
      "PW(\"w1\", \"tom\"). UW(\"std\", \"w1\").\n"
      "PU(U, P) :- PW(W, P), UW(U, W).\n");
  ASSERT_TRUE(p.ok());
  auto query = Parser::ParseQuery("Q(U, P) :- PU(U, P).",
                                  p->mutable_vocab());
  ASSERT_TRUE(query.ok());
  auto full = qa::Answer(qa::Engine::kRewriting, *p, *query);
  ASSERT_TRUE(full.ok());

  ExecutionBudget budget;
  budget.set_max_steps(1);  // one rewrite iteration, then truncate
  qa::AnswerOptions aopts;
  aopts.budget = &budget;
  auto partial = qa::Answer(qa::Engine::kRewriting, *p, *query, aopts);
  ASSERT_TRUE(partial.ok()) << partial.status();
  EXPECT_EQ(partial->completeness, Completeness::kTruncated);
  EXPECT_TRUE(partial->IsSubsetOf(*full));
}

TEST(EngineBudget, CrossCheckAcceptsTruncatedSubset) {
  Program program = TransitiveClosure();
  auto query = Parser::ParseQuery("Q(X, Y) :- T(X, Y).",
                                  program.mutable_vocab());
  ASSERT_TRUE(query.ok());
  auto full = qa::Answer(qa::Engine::kChase, program, *query);
  ASSERT_TRUE(full.ok());

  // The budget's counters are shared across the engines, so both runs
  // end up truncated; the truncation-aware comparison must not flag a
  // disagreement, and whatever is returned stays sound.
  ExecutionBudget budget;
  budget.set_max_facts(3);
  qa::AnswerOptions aopts;
  aopts.budget = &budget;
  auto agreed = qa::CrossCheck(
      program, *query,
      {qa::Engine::kChase, qa::Engine::kDeterministicWs}, aopts);
  ASSERT_TRUE(agreed.ok()) << agreed.status();
  EXPECT_TRUE(agreed->IsSubsetOf(*full));
}

TEST(EngineBudget, CrossCheckPrefersTheCompleteEngine) {
  Program program = TransitiveClosure();
  auto query = Parser::ParseQuery("Q(X, Y) :- T(X, Y).",
                                  program.mutable_vocab());
  ASSERT_TRUE(query.ok());
  auto full = qa::Answer(qa::Engine::kChase, program, *query);
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(full->completeness, Completeness::kComplete);
  // An unbudgeted cross-check agrees exactly and stays complete.
  auto agreed = qa::CrossCheck(
      program, *query, {qa::Engine::kChase, qa::Engine::kDeterministicWs});
  ASSERT_TRUE(agreed.ok()) << agreed.status();
  EXPECT_EQ(agreed->completeness, Completeness::kComplete);
  EXPECT_EQ(*agreed, *full);
}

// --- Cooperative cancellation from a second thread stops all engines ---

class EngineCancellation : public ::testing::TestWithParam<qa::Engine> {};

TEST_P(EngineCancellation, CancelFromAnotherThreadStopsTheRun) {
  // The token is flipped on a second thread (joined before the run, so
  // the test is deterministic): every engine must observe the cancel at
  // its first budget probe and wind down with a truncated result.
  auto p = Parser::ParseProgram(
      "E(1, 2). E(2, 3). E(3, 1). \n"
      "T(X, Y) :- E(X, Y).\n"
      "T(X, Z) :- T(X, Y), E(Y, Z).\n");
  ASSERT_TRUE(p.ok()) << p.status();
  auto query = Parser::ParseQuery("Q(X) :- T(X, Y).", p->mutable_vocab());
  ASSERT_TRUE(query.ok());

  CancellationToken token;
  ExecutionBudget budget;
  budget.set_cancellation(&token);
  std::thread canceller([&token]() { token.Cancel(); });
  canceller.join();
  qa::AnswerOptions aopts;
  aopts.budget = &budget;
  auto answers = qa::Answer(GetParam(), *p, *query, aopts);
  ASSERT_TRUE(answers.ok()) << answers.status();
  EXPECT_EQ(answers->completeness, Completeness::kTruncated);
  EXPECT_EQ(answers->interruption.code(), StatusCode::kCancelled);
}

TEST(EngineCancellation, MidRunCancelStopsADivergentChase) {
  // Unbounded null invention: R(Y, Z) :- R(X, Y) never reaches a
  // fixpoint, so the only way this returns promptly is the cancellation
  // token being honored mid-run.
  auto p = Parser::ParseProgram(
      "R(1, 2).\n"
      "R(Y, Z) :- R(X, Y).\n");
  ASSERT_TRUE(p.ok()) << p.status();

  CancellationToken token;
  ExecutionBudget budget;
  budget.set_cancellation(&token);
  std::thread canceller([&token]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    token.Cancel();
  });
  ChaseOptions options;
  options.budget = &budget;
  options.check_constraints = false;
  Instance inst = Instance::FromProgram(*p);
  ChaseStats stats;
  Status s = datalog::Chase::Run(*p, &inst, options, &stats);
  canceller.join();
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_EQ(stats.completeness, Completeness::kTruncated);
  EXPECT_EQ(stats.stop, ChaseStop::kCancelled);
  EXPECT_GT(inst.TotalFacts(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineCancellation,
                         ::testing::Values(qa::Engine::kChase,
                                           qa::Engine::kDeterministicWs,
                                           qa::Engine::kRewriting),
                         [](const auto& info) {
                           std::string name =
                               qa::EngineToString(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// --- Assessor: per-relation fault isolation and degradation ---

// Two assessed relations over one tiny dimension, so one relation can
// fail while the other is still reported.
quality::QualityContext TwoRelationContext() {
  auto ontology = std::make_shared<core::MdOntology>();
  auto dim = md::DimensionBuilder("Geo")
                 .Category("City")
                 .Category("Region")
                 .Edge("City", "Region")
                 .Member("City", "c1")
                 .Member("City", "c2")
                 .Member("Region", "good")
                 .Member("Region", "bad")
                 .Link("c1", "good")
                 .Link("c2", "bad")
                 .Build()
                 .value();
  EXPECT_TRUE(ontology->AddDimension(std::move(dim)).ok());
  auto stores = md::CategoricalRelation::Create(
      "StoreCity",
      {md::CategoricalAttribute::Plain("Store"),
       md::CategoricalAttribute::Categorical("City", "Geo", "City")});
  EXPECT_TRUE(stores.ok());
  EXPECT_TRUE(stores->InsertText({"s1", "c1"}).ok());
  EXPECT_TRUE(stores->InsertText({"s2", "c2"}).ok());
  EXPECT_TRUE(
      ontology->AddCategoricalRelation(std::move(stores).value()).ok());

  quality::QualityContext context(std::move(ontology));
  Database db;
  EXPECT_TRUE(db.InsertText("Sales", {"s1", "10"}).ok());
  EXPECT_TRUE(db.InsertText("Sales", {"s2", "20"}).ok());
  EXPECT_TRUE(db.InsertText("Returns", {"s1", "1"}).ok());
  EXPECT_TRUE(db.InsertText("Returns", {"s2", "2"}).ok());
  EXPECT_TRUE(context.SetDatabase(std::move(db)).ok());
  EXPECT_TRUE(context.MapRelationToContext("Sales", "SalesC").ok());
  EXPECT_TRUE(context.MapRelationToContext("Returns", "ReturnsC").ok());
  EXPECT_TRUE(context
                  .DefineQualityVersion(
                      "Sales", "SalesQ",
                      "SalesQ(S, A) :- SalesC(S, A), StoreCity(S, C), "
                      "RegionCity(\"good\", C).")
                  .ok());
  EXPECT_TRUE(context
                  .DefineQualityVersion(
                      "Returns", "ReturnsQ",
                      "ReturnsQ(S, A) :- ReturnsC(S, A), StoreCity(S, C), "
                      "RegionCity(\"good\", C).")
                  .ok());
  return context;
}

TEST(AssessorDegradation, OneFailedRelationDoesNotSinkTheReport) {
  quality::QualityContext context = TwoRelationContext();
  // AssessedRelations is sorted, so "Returns" gates first: trip its gate
  // on both attempts (hits 1 and 2), let "Sales" (hit 3) through.
  FaultInjector faults;
  faults.Arm("assessor:relation", 1,
             Status::ResourceExhausted("injected relation fault"), 2);
  quality::AssessOptions options;
  options.fault_injector = &faults;
  options.max_retries = 1;
  auto report = quality::Assessor(&context).Assess(options);
  ASSERT_TRUE(report.ok()) << report.status();

  ASSERT_EQ(report->degraded.size(), 1u);
  EXPECT_EQ(report->degraded[0].relation, "Returns");
  EXPECT_EQ(report->degraded[0].status.code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(report->degraded[0].attempts, 2);
  ASSERT_EQ(report->per_relation.size(), 1u);
  EXPECT_EQ(report->per_relation[0].relation, "Sales");
  EXPECT_EQ(report->completeness, Completeness::kTruncated);
  EXPECT_FALSE(report->interruption.ok());
  // Both renderings surface the degradation.
  EXPECT_NE(report->ToString().find("DEGRADED Returns"),
            std::string::npos);
  EXPECT_NE(report->ToJson().find("\"degraded\""), std::string::npos);
  EXPECT_NE(report->ToJson().find("Returns"), std::string::npos);
}

TEST(AssessorDegradation, RetryUnderEscalatedBudgetRecovers) {
  quality::QualityContext context = TwoRelationContext();
  // A one-shot fault: the first attempt at the first relation trips, the
  // retry (and every later relation) succeeds — nothing is degraded.
  FaultInjector faults;
  faults.Arm("assessor:relation", 1,
             Status::ResourceExhausted("transient fault"));
  quality::AssessOptions options;
  options.fault_injector = &faults;
  options.max_retries = 1;
  auto report = quality::Assessor(&context).Assess(options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->degraded.empty());
  EXPECT_EQ(report->per_relation.size(), 2u);
  EXPECT_GE(faults.HitCount("assessor:relation"), 3u);
}

TEST(AssessorDegradation, TinyStepCapEscalatesUntilItFits) {
  quality::QualityContext context = TwoRelationContext();
  quality::AssessOptions options;
  options.per_relation_max_steps = 1;  // near-certain to trip at first
  options.escalation_factor = 100'000.0;
  options.max_retries = 1;
  auto report = quality::Assessor(&context).Assess(options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->degraded.empty())
      << "escalated retry should have lifted the cap";
  EXPECT_EQ(report->per_relation.size(), 2u);
}

TEST(AssessorDegradation, CancellationDegradesTheRemainingRelations) {
  quality::QualityContext context = TwoRelationContext();
  CancellationToken token;
  token.Cancel();
  ExecutionBudget budget;
  budget.set_cancellation(&token);
  quality::AssessOptions options;
  options.budget = &budget;
  auto report = quality::Assessor(&context).Assess(options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->per_relation.empty());
  ASSERT_EQ(report->degraded.size(), 2u);
  for (const quality::RelationFailure& f : report->degraded) {
    EXPECT_EQ(f.status.code(), StatusCode::kCancelled);
  }
  EXPECT_EQ(report->completeness, Completeness::kTruncated);
}

TEST(AssessorDegradation, CompleteRunStaysCompleteInJson) {
  quality::QualityContext context = TwoRelationContext();
  auto report = quality::Assessor(&context).Assess();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->completeness, Completeness::kComplete);
  EXPECT_TRUE(report->degraded.empty());
  EXPECT_NE(report->ToJson().find("\"completeness\":\"complete\""),
            std::string::npos);
}

}  // namespace
}  // namespace mdqa
