#include "qa/chase_qa.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"

namespace mdqa::qa {
namespace {

using datalog::ConjunctiveQuery;
using datalog::Parser;
using datalog::Program;

Program Parse(const std::string& text) {
  auto p = Parser::ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status();
  return std::move(p).value();
}

TEST(ChaseQa, CertainAnswersExcludeNulls) {
  Program p = Parse(
      "Person(\"ann\").\n"
      "HasParent(X, Z) :- Person(X).\n");
  auto qa = ChaseQa::Create(p);
  ASSERT_TRUE(qa.ok()) << qa.status();
  auto q = Parser::ParseQuery("Q(X, Z) :- HasParent(X, Z).",
                              p.mutable_vocab());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(qa->Answers(*q)->size(), 0u);       // null in the tuple
  EXPECT_EQ(qa->PossibleAnswers(*q)->size(), 1u);
  auto q2 = Parser::ParseQuery("Q(X) :- HasParent(X, Z).",
                               p.mutable_vocab());
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(qa->Answers(*q2)->size(), 1u);  // projection is null-free
}

TEST(ChaseQa, BooleanEntailmentThroughNulls) {
  // This program's chase is infinite (each null gets a parent); a small
  // level bound suffices for the query.
  Program p = Parse(
      "Person(\"ann\").\n"
      "HasParent(X, Z) :- Person(X).\n"
      "Person(Z) :- HasParent(X, Z).\n");
  datalog::ChaseOptions options;
  options.max_rounds = 4;
  auto qa = ChaseQa::Create(p, options);
  ASSERT_TRUE(qa.ok()) << qa.status();
  // "Someone has a parent who is a person" — witnessed by the null.
  auto q = Parser::ParseQuery("Q() :- HasParent(X, Z), Person(Z).",
                              p.mutable_vocab());
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(*qa->AnswerBoolean(*q));
}

TEST(ChaseQa, RecursiveProgramToFixpoint) {
  Program p = Parse(
      "E(1, 2). E(2, 3). E(3, 4). E(4, 5).\n"
      "T(X, Y) :- E(X, Y).\n"
      "T(X, Z) :- T(X, Y), E(Y, Z).\n");
  auto qa = ChaseQa::Create(p);
  ASSERT_TRUE(qa.ok());
  EXPECT_TRUE(qa->stats().reached_fixpoint);
  auto q = Parser::ParseQuery("Q(Y) :- T(1, Y).", p.mutable_vocab());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(qa->Answers(*q)->size(), 4u);
}

TEST(ChaseQa, LevelBoundedChaseUnderApproximates) {
  // With only 2 rounds the 4-step chain is not fully closed.
  Program p = Parse(
      "E(1, 2). E(2, 3). E(3, 4). E(4, 5).\n"
      "T(X, Y) :- E(X, Y).\n"
      "T(X, Z) :- T(X, Y), E(Y, Z).\n");
  datalog::ChaseOptions options;
  options.max_rounds = 2;
  auto qa = ChaseQa::Create(p, options);
  ASSERT_TRUE(qa.ok());
  EXPECT_FALSE(qa->stats().reached_fixpoint);
  auto q = Parser::ParseQuery("Q(Y) :- T(1, Y).", p.mutable_vocab());
  ASSERT_TRUE(q.ok());
  EXPECT_LT(qa->Answers(*q)->size(), 4u);
}

TEST(ChaseQa, InconsistencySurfacesAtCreate) {
  Program p = Parse("P(1).\n! :- P(X).\n");
  auto qa = ChaseQa::Create(p);
  ASSERT_FALSE(qa.ok());
  EXPECT_EQ(qa.status().code(), StatusCode::kInconsistent);
}

TEST(ChaseQa, ComparisonsInQueries) {
  Program p = Parse(
      "M(\"a\", 5). M(\"b\", 15).\n"
      "Big(X, V) :- M(X, V), V > 10.\n");
  auto qa = ChaseQa::Create(p);
  ASSERT_TRUE(qa.ok());
  auto q = Parser::ParseQuery("Q(X) :- Big(X, V), V < 100.",
                              p.mutable_vocab());
  ASSERT_TRUE(q.ok());
  auto answers = qa->Answers(*q);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 1u);
}

TEST(ChaseQa, IncrementalRechaseDerivesNewConsequences) {
  Program p = Parse(
      "PW(\"w1\", \"tom\"). UW(\"std\", \"w1\"). UW(\"std\", \"w2\").\n"
      "PU(U, P) :- PW(W, P), UW(U, W).\n");
  auto qa = ChaseQa::Create(p);
  ASSERT_TRUE(qa.ok()) << qa.status();
  uint32_t pu = p.vocab()->FindPredicate("PU");
  EXPECT_EQ(qa->instance().CountFacts(pu), 1u);

  // A new patient arrives in w2.
  uint32_t pw = p.vocab()->FindPredicate("PW");
  datalog::Atom new_fact(
      pw, {p.mutable_vocab()->Str("w2"), p.mutable_vocab()->Str("lou")});
  auto stats = qa->AddFactsAndRechase({new_fact});
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(qa->instance().CountFacts(pu), 2u);

  // The restricted chase does not re-derive old consequences.
  EXPECT_EQ(stats->facts_added, 1u);
}

TEST(ChaseQa, IncrementalRechaseRejectsNonGround) {
  Program p = Parse("P(1).\nQ(X) :- P(X).\n");
  auto qa = ChaseQa::Create(p);
  ASSERT_TRUE(qa.ok());
  datalog::Atom open_atom(p.vocab()->FindPredicate("P"),
                          {p.mutable_vocab()->Var("X")});
  EXPECT_FALSE(qa->AddFactsAndRechase({open_atom}).ok());
}

TEST(ChaseQa, IncrementalRechaseCanViolateConstraints) {
  Program p = Parse(
      "P(1).\n"
      "! :- P(X), X > 5.\n");
  auto qa = ChaseQa::Create(p);
  ASSERT_TRUE(qa.ok());
  datalog::Atom bad(p.vocab()->FindPredicate("P"),
                    {p.mutable_vocab()->Int(9)});
  auto stats = qa->AddFactsAndRechase({bad});
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInconsistent);
}

TEST(ChaseQa, EmptyProgramAnswersOnEdb) {
  Program p = Parse("R(1, 2). R(3, 4).");
  auto qa = ChaseQa::Create(p);
  ASSERT_TRUE(qa.ok());
  auto q = Parser::ParseQuery("Q(X, Y) :- R(X, Y).", p.mutable_vocab());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(qa->Answers(*q)->size(), 2u);
  EXPECT_EQ(qa->stats().rounds, 1u);
}

}  // namespace
}  // namespace mdqa::qa
