// Property tests at the ontology level: random three-level dimensions
// built through the public md/core APIs, checked for (a) referential
// integrity, (b) the paper's weak-stickiness claim, (c) engine agreement,
// and (d) semantic soundness of upward navigation (every derived
// unit-level tuple is justified by a ward-level tuple and a member edge).

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "core/md_ontology.h"
#include "datalog/parser.h"
#include "md/categorical.h"
#include "md/dimension.h"
#include "qa/chase_qa.h"
#include "qa/engines.h"

namespace mdqa::core {
namespace {

struct RandomOntology {
  std::shared_ptr<MdOntology> ontology;
  int n_low = 0;
  int n_mid = 0;
};

RandomOntology Generate(uint32_t seed) {
  std::mt19937 rng(seed * 48271u + 11);
  auto pick = [&rng](int lo, int hi) {
    return lo + static_cast<int>(rng() % static_cast<uint32_t>(hi - lo + 1));
  };
  RandomOntology out;
  out.n_low = pick(3, 8);
  out.n_mid = pick(1, 4);
  const int n_top = pick(1, 2);

  md::DimensionBuilder b("Dim");
  b.Category("Low").Category("Mid").Category("Top").Category("AllDim");
  b.Edge("Low", "Mid").Edge("Mid", "Top").Edge("Top", "AllDim");
  b.Member("AllDim", "all");
  for (int t = 0; t < n_top; ++t) {
    b.Member("Top", "t" + std::to_string(t));
    b.Link("t" + std::to_string(t), "all");
  }
  for (int m = 0; m < out.n_mid; ++m) {
    b.Member("Mid", "m" + std::to_string(m));
    b.Link("m" + std::to_string(m), "t" + std::to_string(pick(0, n_top - 1)));
  }
  for (int l = 0; l < out.n_low; ++l) {
    b.Member("Low", "l" + std::to_string(l));
    b.Link("l" + std::to_string(l),
           "m" + std::to_string(pick(0, out.n_mid - 1)));
  }
  md::Dimension::Options opts;
  opts.require_strict = true;
  opts.require_homogeneous = true;
  auto dim = b.Build(opts);
  EXPECT_TRUE(dim.ok()) << dim.status();

  out.ontology = std::make_shared<MdOntology>();
  EXPECT_TRUE(out.ontology->AddDimension(std::move(dim).value()).ok());

  auto rlow = md::CategoricalRelation::Create(
      "RLow", {md::CategoricalAttribute::Categorical("Low", "Dim", "Low"),
               md::CategoricalAttribute::Plain("Payload")});
  EXPECT_TRUE(rlow.ok());
  const int rows = pick(2, 12);
  for (int r = 0; r < rows; ++r) {
    EXPECT_TRUE(rlow->InsertText({"l" + std::to_string(pick(0, out.n_low - 1)),
                                  "p" + std::to_string(pick(0, 3))})
                    .ok());
  }
  EXPECT_TRUE(out.ontology->AddCategoricalRelation(std::move(rlow).value())
                  .ok());

  auto rmid = md::CategoricalRelation::Create(
      "RMid", {md::CategoricalAttribute::Categorical("Mid", "Dim", "Mid"),
               md::CategoricalAttribute::Plain("Payload")});
  EXPECT_TRUE(rmid.ok());
  EXPECT_TRUE(out.ontology->AddCategoricalRelation(std::move(rmid).value())
                  .ok());

  EXPECT_TRUE(out.ontology
                  ->AddDimensionalRule(
                      "RMid(M, P) :- RLow(L, P), MidLow(M, L).")
                  .ok());
  return out;
}

class OntologyProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(OntologyProperty, ReferentialAndClassification) {
  RandomOntology r = Generate(GetParam());
  EXPECT_TRUE(r.ontology->ValidateReferential().ok());
  auto props = r.ontology->Analyze();
  ASSERT_TRUE(props.ok());
  EXPECT_TRUE(props->weakly_sticky);  // the paper's §III claim
  EXPECT_TRUE(props->upward_only);
}

TEST_P(OntologyProperty, EnginesAgreeIncludingRewriting) {
  RandomOntology r = Generate(GetParam());
  auto program = r.ontology->Compile();
  ASSERT_TRUE(program.ok());
  for (const char* text :
       {"Q(M, P) :- RMid(M, P).", "Q(P) :- RMid(\"m0\", P).",
        "Q(M) :- RMid(M, \"p0\")."}) {
    auto q = datalog::Parser::ParseQuery(text, program->vocab().get());
    ASSERT_TRUE(q.ok());
    auto agreed = qa::CrossCheck(
        *program, *q,
        {qa::Engine::kChase, qa::Engine::kDeterministicWs,
         qa::Engine::kRewriting});
    EXPECT_TRUE(agreed.ok()) << agreed.status();
  }
}

TEST_P(OntologyProperty, UpwardNavigationIsJustified) {
  // Soundness: every derived RMid(m, p) has a witness RLow(l, p) with
  // l a child of m in the dimension instance.
  RandomOntology r = Generate(GetParam());
  auto program = r.ontology->Compile();
  ASSERT_TRUE(program.ok());
  auto chase = qa::ChaseQa::Create(*program);
  ASSERT_TRUE(chase.ok());
  const md::DimensionInstance& dim =
      r.ontology->FindDimension("Dim")->instance();
  const auto& vocab = *program->vocab();
  uint32_t rmid = vocab.FindPredicate("RMid");
  uint32_t rlow = vocab.FindPredicate("RLow");
  for (const datalog::Atom& derived : chase->instance().Facts(rmid)) {
    std::string mid = vocab.ConstantValue(derived.terms[0].id()).AsString();
    bool justified = false;
    for (const datalog::Atom& base : chase->instance().Facts(rlow)) {
      if (base.terms[1] != derived.terms[1]) continue;
      std::string low = vocab.ConstantValue(base.terms[0].id()).AsString();
      auto ups = dim.RollUp(low, "Mid");
      ASSERT_TRUE(ups.ok());
      if (!ups->empty() && (*ups)[0] == mid) {
        justified = true;
        break;
      }
    }
    EXPECT_TRUE(justified) << vocab.AtomToString(derived);
  }
  // Completeness: as many derived groups as distinct (mid, payload)
  // pairs implied by the data.
  std::set<std::pair<std::string, std::string>> expected;
  for (const datalog::Atom& base : chase->instance().Facts(rlow)) {
    std::string low = vocab.ConstantValue(base.terms[0].id()).AsString();
    auto ups = dim.RollUp(low, "Mid");
    ASSERT_TRUE(ups.ok());
    expected.emplace((*ups)[0],
                     vocab.ConstantValue(base.terms[1].id()).AsString());
  }
  EXPECT_EQ(chase->instance().CountFacts(rmid), expected.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, OntologyProperty, ::testing::Range(0u, 16u));

}  // namespace
}  // namespace mdqa::core
