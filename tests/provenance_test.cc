// Why-provenance: derivation trees for chase- and WS-derived facts (the
// paper's resolution proof schemas, made inspectable).

#include "datalog/provenance.h"

#include <gtest/gtest.h>

#include "datalog/chase.h"
#include "datalog/parser.h"
#include "qa/deterministic_ws.h"
#include "scenarios/hospital.h"

namespace mdqa::datalog {
namespace {

TEST(Provenance, RecordsAndFinds) {
  auto p = Parser::ParseProgram(
      "E(1, 2).\n"
      "T(X, Y) :- E(X, Y).\n");
  ASSERT_TRUE(p.ok());
  ProvenanceStore store;
  ChaseOptions options;
  options.provenance = &store;
  Instance inst = Instance::FromProgram(*p);
  ASSERT_TRUE(Chase::Run(*p, &inst, options).ok());
  EXPECT_EQ(store.size(), 1u);
  Atom derived = inst.Facts(p->vocab()->FindPredicate("T"))[0];
  const auto* d = store.Find(derived);
  ASSERT_NE(d, nullptr);
  ASSERT_EQ(d->body.size(), 1u);
  EXPECT_EQ(p->vocab()->AtomToString(d->body[0]), "E(1, 2)");
  // Extensional facts have no derivation.
  Atom edb = inst.Facts(p->vocab()->FindPredicate("E"))[0];
  EXPECT_EQ(store.Find(edb), nullptr);
}

TEST(Provenance, ExplainRendersTree) {
  auto p = Parser::ParseProgram(
      "E(1, 2). E(2, 3).\n"
      "T(X, Y) :- E(X, Y).\n"
      "T(X, Z) :- T(X, Y), E(Y, Z).\n");
  ASSERT_TRUE(p.ok());
  ProvenanceStore store;
  ChaseOptions options;
  options.provenance = &store;
  Instance inst = Instance::FromProgram(*p);
  ASSERT_TRUE(Chase::Run(*p, &inst, options).ok());

  Atom goal = Parser::ParseGroundAtom("T(1, 3)", p->mutable_vocab()).value();
  ASSERT_TRUE(inst.Contains(goal));
  std::string tree = store.Explain(goal, *p->vocab());
  EXPECT_NE(tree.find("T(1, 3)"), std::string::npos);
  EXPECT_NE(tree.find("via T(X, Z) :- T(X, Y), E(Y, Z)."), std::string::npos);
  EXPECT_NE(tree.find("T(1, 2)"), std::string::npos);
  EXPECT_NE(tree.find("E(2, 3)  [edb]"), std::string::npos);
  // The inner T(1,2) expands one level deeper to its E leaf.
  EXPECT_NE(tree.find("E(1, 2)  [edb]"), std::string::npos);
}

TEST(Provenance, FirstDerivationWins) {
  auto p = Parser::ParseProgram(
      "A(1). B(1).\n"
      "C(X) :- A(X).\n"
      "C(X) :- B(X).\n");
  ASSERT_TRUE(p.ok());
  ProvenanceStore store;
  ChaseOptions options;
  options.provenance = &store;
  Instance inst = Instance::FromProgram(*p);
  ASSERT_TRUE(Chase::Run(*p, &inst, options).ok());
  Atom c = Parser::ParseGroundAtom("C(1)", p->mutable_vocab()).value();
  const auto* d = store.Find(c);
  ASSERT_NE(d, nullptr);
  // Exactly one derivation kept, from the first firing rule (A-rule).
  EXPECT_EQ(p->vocab()->AtomToString(d->body[0]), "A(1)");
}

TEST(Provenance, ExistentialNullsInHeads) {
  auto p = Parser::ParseProgram(
      "Person(\"ann\").\n"
      "HasParent(X, Z) :- Person(X).\n");
  ASSERT_TRUE(p.ok());
  ProvenanceStore store;
  ChaseOptions options;
  options.provenance = &store;
  Instance inst = Instance::FromProgram(*p);
  ASSERT_TRUE(Chase::Run(*p, &inst, options).ok());
  Atom derived = inst.Facts(p->vocab()->FindPredicate("HasParent"))[0];
  ASSERT_TRUE(derived.terms[1].IsNull());
  std::string tree = store.Explain(derived, *p->vocab());
  EXPECT_NE(tree.find("_n0"), std::string::npos);
  EXPECT_NE(tree.find("Person(\"ann\")  [edb]"), std::string::npos);
}

TEST(Provenance, DepthCapStopsRendering) {
  auto p = Parser::ParseProgram(
      "E(0, 1). E(1, 2). E(2, 3). E(3, 4). E(4, 5).\n"
      "T(X, Y) :- E(X, Y).\n"
      "T(X, Z) :- T(X, Y), E(Y, Z).\n");
  ASSERT_TRUE(p.ok());
  ProvenanceStore store;
  ChaseOptions options;
  options.provenance = &store;
  Instance inst = Instance::FromProgram(*p);
  ASSERT_TRUE(Chase::Run(*p, &inst, options).ok());
  Atom goal = Parser::ParseGroundAtom("T(0, 5)", p->mutable_vocab()).value();
  std::string tree = store.Explain(goal, *p->vocab(), /*max_depth=*/2);
  EXPECT_NE(tree.find("depth cap"), std::string::npos);
}

TEST(Provenance, WsEngineRecordsToo) {
  auto p = Parser::ParseProgram(
      "E(1, 2).\n"
      "T(X, Y) :- E(X, Y).\n");
  ASSERT_TRUE(p.ok());
  ProvenanceStore store;
  qa::WsQaOptions options;
  options.provenance = &store;
  qa::DeterministicWsQa qa(*p, options);
  auto q = Parser::ParseQuery("Q(X, Y) :- T(X, Y).", p->mutable_vocab());
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(qa.Answers(*q)->size(), 1u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(Provenance, HospitalShiftExplanation) {
  // "Why does Mark have a shift in W2 on Sep/9?" — the paper's Example 5
  // derivation, as a tree.
  auto ontology = scenarios::BuildHospitalOntology(scenarios::HospitalOptions{});
  ASSERT_TRUE(ontology.ok());
  auto program = (*ontology)->Compile();
  ASSERT_TRUE(program.ok());
  ProvenanceStore store;
  ChaseOptions options;
  options.provenance = &store;
  Instance inst = Instance::FromProgram(*program);
  ASSERT_TRUE(Chase::Run(*program, &inst, options).ok());

  // Find the derived Shifts fact for Mark in W2.
  uint32_t shifts = program->vocab()->FindPredicate("Shifts");
  Atom mark_shift;
  bool found = false;
  for (const Atom& f : inst.Facts(shifts)) {
    const Vocabulary& v = *program->vocab();
    if (v.ConstantValue(f.terms[0].id()) == Value::Str("W2") &&
        f.terms[2].IsConstant() &&
        v.ConstantValue(f.terms[2].id()) == Value::Str("Mark")) {
      mark_shift = f;
      found = true;
    }
  }
  ASSERT_TRUE(found);
  std::string tree = store.Explain(mark_shift, *program->vocab());
  EXPECT_NE(tree.find("WorkingSchedules(\"Standard\", \"Sep/9\", \"Mark\""),
            std::string::npos);
  EXPECT_NE(tree.find("UnitWard(\"Standard\", \"W2\")  [edb]"),
            std::string::npos);
}

}  // namespace
}  // namespace mdqa::datalog
