#include "base/json.h"

#include <gtest/gtest.h>

#include "quality/assessor.h"
#include "scenarios/hospital.h"
#include "testgen/scenario.h"

namespace mdqa {
namespace {

TEST(JsonEscape, ControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriter, FlatObject) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").String("mdqa");
  w.Key("version").Number(int64_t{1});
  w.Key("ratio").Number(0.5);
  w.Key("ok").Bool(true);
  w.Key("none").Null();
  w.EndObject();
  EXPECT_EQ(w.TakeString(),
            "{\"name\":\"mdqa\",\"version\":1,\"ratio\":0.5,\"ok\":true,"
            "\"none\":null}");
}

TEST(JsonWriter, NestedArraysAndObjects) {
  JsonWriter w;
  w.BeginObject();
  w.Key("rows").BeginArray();
  w.BeginArray().String("a").Number(int64_t{2}).EndArray();
  w.BeginArray().EndArray();
  w.EndArray();
  w.Key("meta").BeginObject();
  w.Key("empty").BeginObject().EndObject();
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(w.TakeString(),
            "{\"rows\":[[\"a\",2],[]],\"meta\":{\"empty\":{}}}");
}

TEST(JsonWriter, TopLevelArray) {
  JsonWriter w;
  w.BeginArray().Number(int64_t{1}).Number(int64_t{2}).EndArray();
  EXPECT_EQ(w.TakeString(), "[1,2]");
}

TEST(JsonWriter, EscapesKeys) {
  JsonWriter w;
  w.BeginObject();
  w.Key("we\"ird").String("v");
  w.EndObject();
  EXPECT_EQ(w.TakeString(), "{\"we\\\"ird\":\"v\"}");
}

TEST(QualityJson, MeasuresExport) {
  quality::QualityMeasures m;
  m.relation = "Measurements";
  m.original_size = 6;
  m.quality_size = 2;
  m.common = 2;
  m.precision = 1.0 / 3.0;
  m.recall = 1.0;
  m.f1 = 0.5;
  std::string json = m.ToJson();
  EXPECT_NE(json.find("\"relation\":\"Measurements\""), std::string::npos);
  EXPECT_NE(json.find("\"original_size\":6"), std::string::npos);
  EXPECT_NE(json.find("\"f1\":0.5"), std::string::npos);
}

TEST(QualityJson, FullReportExport) {
  auto context =
      scenarios::BuildHospitalContext(scenarios::HospitalOptions{});
  ASSERT_TRUE(context.ok());
  quality::Assessor assessor(&*context);
  auto report = assessor.Assess();
  ASSERT_TRUE(report.ok()) << report.status();
  std::string json = report->ToJson();
  EXPECT_NE(json.find("\"referential_check\":\"OK\""), std::string::npos);
  EXPECT_NE(json.find("\"overall_precision\":0.333333333333"),
            std::string::npos);
  EXPECT_NE(json.find("\"dirty_tuples\":[["), std::string::npos);
  EXPECT_NE(json.find("Sep/7-12:15"), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(JsonValue::Parse("null")->is_null());
  EXPECT_TRUE(JsonValue::Parse("true")->AsBool());
  EXPECT_FALSE(JsonValue::Parse("false")->AsBool());
  EXPECT_DOUBLE_EQ(JsonValue::Parse("-12.5e1")->AsNumber(), -125.0);
  EXPECT_EQ(JsonValue::Parse("\"hi\"")->AsString(), "hi");
  EXPECT_TRUE(JsonValue::Parse("  42  ")->is_number());
}

TEST(JsonParse, StringEscapes) {
  auto v = JsonValue::Parse("\"a\\\"b\\\\c\\n\\t\\u0041\\u00e9\"");
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(v->AsString(), "a\"b\\c\n\tA\xc3\xa9");
}

TEST(JsonParse, Navigation) {
  auto v = JsonValue::Parse(
      "{\"xs\": [1, 2, 3], \"o\": {\"k\": \"v\"}, \"n\": null}");
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(v->Members().size(), 3u);
  ASSERT_NE(v->Find("xs"), nullptr);
  ASSERT_EQ(v->Find("xs")->Items().size(), 3u);
  EXPECT_DOUBLE_EQ(v->Find("xs")->Items()[1].AsNumber(), 2.0);
  EXPECT_EQ(v->Find("o")->Find("k")->AsString(), "v");
  EXPECT_TRUE(v->Find("n")->is_null());
  EXPECT_EQ(v->Find("missing"), nullptr);
  // Wrong-type accessors return defaults rather than asserting.
  EXPECT_EQ(v->Find("xs")->AsNumber(), 0.0);
  EXPECT_EQ(v->AsString(), "");
}

TEST(JsonParse, RoundTripsWriterOutput) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name");
  w.String("tricky \"quote\" \\ and \x01 control");
  w.Key("values");
  w.BeginArray();
  w.Number(1.5);
  w.Number(static_cast<int64_t>(-3));
  w.Bool(true);
  w.Null();
  w.EndArray();
  w.EndObject();
  auto v = JsonValue::Parse(w.TakeString());
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(v->Find("name")->AsString(),
            "tricky \"quote\" \\ and \x01 control");
  const auto& items = v->Find("values")->Items();
  ASSERT_EQ(items.size(), 4u);
  EXPECT_DOUBLE_EQ(items[0].AsNumber(), 1.5);
  EXPECT_DOUBLE_EQ(items[1].AsNumber(), -3.0);
  EXPECT_TRUE(items[2].AsBool());
  EXPECT_TRUE(items[3].is_null());
}

TEST(JsonParse, Errors) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\": 1").ok());        // unclosed
  EXPECT_FALSE(JsonValue::Parse("[1, 2,]").ok());          // trailing comma
  EXPECT_FALSE(JsonValue::Parse("1 2").ok());              // trailing input
  EXPECT_FALSE(JsonValue::Parse("{a: 1}").ok());           // unquoted key
  EXPECT_FALSE(JsonValue::Parse("\"\\u12\"").ok());        // short \u
  EXPECT_FALSE(JsonValue::Parse("nul").ok());
}

TEST(JsonParse, DepthLimitTripsCleanly) {
  // A pathological `[[[[…]]]]` body must trip the cap with a clean
  // kInvalidArgument, not convert input length into C++ stack depth.
  const std::string deep(100000, '[');
  auto v = JsonValue::Parse(deep);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(v.status().message().find("nesting"), std::string::npos);

  // Same for object nesting, and for a custom (tight) limit.
  JsonLimits tight;
  tight.max_depth = 3;
  EXPECT_TRUE(JsonValue::Parse("[[[1]]]", tight).ok());
  auto over = JsonValue::Parse("[[[[1]]]]", tight);
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), StatusCode::kInvalidArgument);
  auto obj = JsonValue::Parse("{\"a\":{\"b\":{\"c\":{\"d\":1}}}}", tight);
  EXPECT_FALSE(obj.ok());
}

TEST(JsonParse, DepthLimitBoundaryExact) {
  // A scalar wrapped in exactly max_depth arrays sits at depth max_depth
  // and passes; one more wrapper trips.
  JsonLimits limits;
  std::string at_limit = "1";
  for (size_t i = 0; i < limits.max_depth; ++i) {
    at_limit = "[" + at_limit + "]";
  }
  EXPECT_TRUE(JsonValue::Parse(at_limit).ok());
  EXPECT_FALSE(JsonValue::Parse("[" + at_limit + "]").ok());
}

TEST(JsonParse, SizeCapRejectsOversizedInputUpFront) {
  JsonLimits tiny;
  tiny.max_bytes = 16;
  EXPECT_TRUE(JsonValue::Parse("{\"k\": 1}", tiny).ok());
  auto v = JsonValue::Parse("{\"key\": \"0123456789abcdef\"}", tiny);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(v.status().message().find("exceeds"), std::string::npos);
}

TEST(JsonParse, DuplicateKeysPreservedFindReturnsFirst) {
  auto v = JsonValue::Parse("{\"k\": 1, \"k\": 2}");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Members().size(), 2u);
  EXPECT_DOUBLE_EQ(v->Find("k")->AsNumber(), 1.0);
}

// --- BENCH_scenarios.json schema round-trip ---------------------------
//
// The scenario benchmark artifact is written through JsonWriter
// (testgen::WriteScenarioBenchRecords) and consumed by plotting scripts
// through JsonValue::Parse. This pins the schema from both ends: the
// writer's bytes must parse under default JsonLimits and yield the
// original values through the navigation API, and tight limits must
// reject the artifact with the right status instead of misreading it.

std::string RenderScenarioArtifact(
    const std::vector<testgen::ScenarioBenchRecord>& records) {
  JsonWriter w;
  w.BeginObject();
  w.Key("experiment").String("scenario_matrix");
  w.Key("git_sha").String("0000000");
  w.Key("hardware_threads").Number(int64_t{8});
  w.Key("seed").Number(int64_t{1});
  w.Key("families");
  testgen::WriteScenarioBenchRecords(&w, records);
  w.EndObject();
  return w.TakeString();
}

std::vector<testgen::ScenarioBenchRecord> SampleScenarioRecords() {
  testgen::ScenarioBenchRecord a;
  a.family = "deep-homogeneous";
  a.seed = 1;
  a.edb_rows = 120;
  a.chase_facts = 326;
  a.dirty_expected = 4;
  a.engine_recommended = "chase";
  a.engines = {"chase", "chase-pool4", "deterministic-ws"};
  a.assess_ms = {1.5, 0.9, 2.25};
  a.incremental_ms = 0.25;
  a.full_reassess_ms = 1.75;
  a.planner_pick_fastest = true;
  a.reports_identical = true;
  testgen::ScenarioBenchRecord b;
  b.family = "skewed-tenants";
  b.seed = 1;
  b.edb_rows = 90;
  b.chase_facts = 234;
  b.dirty_expected = 5;
  b.engine_recommended = "chase";
  b.engines = {"chase"};
  b.assess_ms = {3.5};
  b.reports_identical = false;
  return {a, b};
}

TEST(ScenarioBenchJson, RoundTripUnderDefaultLimits) {
  const std::string text = RenderScenarioArtifact(SampleScenarioRecords());
  auto v = JsonValue::Parse(text);
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(v->Find("experiment")->AsString(), "scenario_matrix");
  EXPECT_DOUBLE_EQ(v->Find("seed")->AsNumber(), 1.0);
  const JsonValue* families = v->Find("families");
  ASSERT_NE(families, nullptr);
  ASSERT_EQ(families->Items().size(), 2u);

  const JsonValue& a = families->Items()[0];
  EXPECT_EQ(a.Find("family")->AsString(), "deep-homogeneous");
  EXPECT_DOUBLE_EQ(a.Find("edb_rows")->AsNumber(), 120.0);
  EXPECT_DOUBLE_EQ(a.Find("chase_facts")->AsNumber(), 326.0);
  EXPECT_DOUBLE_EQ(a.Find("dirty_expected")->AsNumber(), 4.0);
  EXPECT_EQ(a.Find("engine_recommended")->AsString(), "chase");
  // "engines" is a nested array of [name, assess_ms] pairs.
  const JsonValue* engines = a.Find("engines");
  ASSERT_NE(engines, nullptr);
  ASSERT_EQ(engines->Items().size(), 3u);
  EXPECT_EQ(engines->Items()[0].Items()[0].AsString(), "chase");
  EXPECT_DOUBLE_EQ(engines->Items()[0].Items()[1].AsNumber(), 1.5);
  EXPECT_EQ(engines->Items()[2].Items()[0].AsString(), "deterministic-ws");
  EXPECT_DOUBLE_EQ(engines->Items()[2].Items()[1].AsNumber(), 2.25);
  EXPECT_DOUBLE_EQ(a.Find("incremental_ms")->AsNumber(), 0.25);
  EXPECT_DOUBLE_EQ(a.Find("full_reassess_ms")->AsNumber(), 1.75);
  EXPECT_TRUE(a.Find("planner_pick_fastest")->AsBool());
  EXPECT_TRUE(a.Find("reports_identical")->AsBool());

  const JsonValue& b = families->Items()[1];
  EXPECT_EQ(b.Find("family")->AsString(), "skewed-tenants");
  ASSERT_EQ(b.Find("engines")->Items().size(), 1u);
  EXPECT_DOUBLE_EQ(b.Find("engines")->Items()[0].Items()[1].AsNumber(), 3.5);
  EXPECT_FALSE(b.Find("reports_identical")->AsBool());
}

TEST(ScenarioBenchJson, ShortAssessVectorPadsWithZero) {
  // The writer tolerates a ragged engines/assess_ms pair (pads 0.0)
  // rather than emitting malformed JSON.
  testgen::ScenarioBenchRecord r;
  r.family = "ragged-heterogeneous";
  r.engines = {"chase", "deterministic-ws"};
  r.assess_ms = {1.0};  // one entry short
  const std::string text = RenderScenarioArtifact({r});
  auto v = JsonValue::Parse(text);
  ASSERT_TRUE(v.ok()) << v.status();
  const JsonValue* engines = v->Find("families")->Items()[0].Find("engines");
  ASSERT_EQ(engines->Items().size(), 2u);
  EXPECT_DOUBLE_EQ(engines->Items()[1].Items()[1].AsNumber(), 0.0);
}

TEST(ScenarioBenchJson, TightDepthLimitTripsOnNestedEngineArrays) {
  // Artifact nesting: root object > families array > record object >
  // engines array > [name, ms] array = depth 5. A depth-4 cap must trip
  // cleanly with kInvalidArgument, and depth 5 must pass.
  const std::string text = RenderScenarioArtifact(SampleScenarioRecords());
  JsonLimits tight;
  tight.max_depth = 4;
  auto rejected = JsonValue::Parse(text, tight);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  tight.max_depth = 5;
  EXPECT_TRUE(JsonValue::Parse(text, tight).ok());
}

TEST(ScenarioBenchJson, TightByteLimitRejectsArtifactUpFront) {
  const std::string text = RenderScenarioArtifact(SampleScenarioRecords());
  JsonLimits tiny;
  tiny.max_bytes = text.size() - 1;
  auto rejected = JsonValue::Parse(text, tiny);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  tiny.max_bytes = text.size();
  EXPECT_TRUE(JsonValue::Parse(text, tiny).ok());
}

}  // namespace
}  // namespace mdqa
