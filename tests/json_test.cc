#include "base/json.h"

#include <gtest/gtest.h>

#include "quality/assessor.h"
#include "scenarios/hospital.h"

namespace mdqa {
namespace {

TEST(JsonEscape, ControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriter, FlatObject) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").String("mdqa");
  w.Key("version").Number(int64_t{1});
  w.Key("ratio").Number(0.5);
  w.Key("ok").Bool(true);
  w.Key("none").Null();
  w.EndObject();
  EXPECT_EQ(w.TakeString(),
            "{\"name\":\"mdqa\",\"version\":1,\"ratio\":0.5,\"ok\":true,"
            "\"none\":null}");
}

TEST(JsonWriter, NestedArraysAndObjects) {
  JsonWriter w;
  w.BeginObject();
  w.Key("rows").BeginArray();
  w.BeginArray().String("a").Number(int64_t{2}).EndArray();
  w.BeginArray().EndArray();
  w.EndArray();
  w.Key("meta").BeginObject();
  w.Key("empty").BeginObject().EndObject();
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(w.TakeString(),
            "{\"rows\":[[\"a\",2],[]],\"meta\":{\"empty\":{}}}");
}

TEST(JsonWriter, TopLevelArray) {
  JsonWriter w;
  w.BeginArray().Number(int64_t{1}).Number(int64_t{2}).EndArray();
  EXPECT_EQ(w.TakeString(), "[1,2]");
}

TEST(JsonWriter, EscapesKeys) {
  JsonWriter w;
  w.BeginObject();
  w.Key("we\"ird").String("v");
  w.EndObject();
  EXPECT_EQ(w.TakeString(), "{\"we\\\"ird\":\"v\"}");
}

TEST(QualityJson, MeasuresExport) {
  quality::QualityMeasures m;
  m.relation = "Measurements";
  m.original_size = 6;
  m.quality_size = 2;
  m.common = 2;
  m.precision = 1.0 / 3.0;
  m.recall = 1.0;
  m.f1 = 0.5;
  std::string json = m.ToJson();
  EXPECT_NE(json.find("\"relation\":\"Measurements\""), std::string::npos);
  EXPECT_NE(json.find("\"original_size\":6"), std::string::npos);
  EXPECT_NE(json.find("\"f1\":0.5"), std::string::npos);
}

TEST(QualityJson, FullReportExport) {
  auto context =
      scenarios::BuildHospitalContext(scenarios::HospitalOptions{});
  ASSERT_TRUE(context.ok());
  quality::Assessor assessor(&*context);
  auto report = assessor.Assess();
  ASSERT_TRUE(report.ok()) << report.status();
  std::string json = report->ToJson();
  EXPECT_NE(json.find("\"referential_check\":\"OK\""), std::string::npos);
  EXPECT_NE(json.find("\"overall_precision\":0.333333333333"),
            std::string::npos);
  EXPECT_NE(json.find("\"dirty_tuples\":[["), std::string::npos);
  EXPECT_NE(json.find("Sep/7-12:15"), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

}  // namespace
}  // namespace mdqa
