#include "md/categorical.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"

namespace mdqa::md {
namespace {

Dimension SmallHospital() {
  return DimensionBuilder("Hospital")
      .Category("Ward")
      .Category("Unit")
      .Edge("Ward", "Unit")
      .Member("Ward", "W1")
      .Member("Ward", "W2")
      .Member("Unit", "Standard")
      .Link("W1", "Standard")
      .Link("W2", "Standard")
      .Build()
      .value();
}

Result<CategoricalRelation> MakePatientWard() {
  return CategoricalRelation::Create(
      "PatientWard",
      {CategoricalAttribute::Categorical("Ward", "Hospital", "Ward"),
       CategoricalAttribute::Plain("Patient")});
}

TEST(CategoricalRelation, CreateValidatesAttributes) {
  EXPECT_FALSE(CategoricalRelation::Create(
                   "R", {CategoricalAttribute::Plain("")})
                   .ok());
  EXPECT_FALSE(CategoricalRelation::Create(
                   "R", {CategoricalAttribute::Plain("a"),
                         CategoricalAttribute::Plain("a")})
                   .ok());
  // Categorical attribute without a category binding.
  CategoricalAttribute broken;
  broken.name = "c";
  broken.is_categorical = true;
  EXPECT_FALSE(CategoricalRelation::Create("R", {broken}).ok());
}

TEST(CategoricalRelation, PositionsPartition) {
  auto rel = CategoricalRelation::Create(
      "R", {CategoricalAttribute::Categorical("w", "H", "Ward"),
            CategoricalAttribute::Plain("p"),
            CategoricalAttribute::Categorical("d", "T", "Day")});
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->CategoricalPositions(), (std::vector<size_t>{0, 2}));
  EXPECT_EQ(rel->PlainPositions(), (std::vector<size_t>{1}));
  EXPECT_EQ(rel->AttributeIndex("p"), 1);
  EXPECT_EQ(rel->AttributeIndex("zz"), -1);
}

TEST(CategoricalRelation, InsertAndSetSemantics) {
  auto rel = MakePatientWard();
  ASSERT_TRUE(rel.ok());
  ASSERT_TRUE(rel->InsertText({"W1", "Tom"}).ok());
  ASSERT_TRUE(rel->InsertText({"W1", "Tom"}).ok());
  EXPECT_EQ(rel->data().size(), 1u);
  EXPECT_FALSE(rel->InsertText({"W1"}).ok());  // arity
}

TEST(CategoricalRelation, ReferentialConstraintHolds) {
  Dimension dim = SmallHospital();
  auto rel = MakePatientWard();
  ASSERT_TRUE(rel.ok());
  ASSERT_TRUE(rel->InsertText({"W1", "Tom"}).ok());
  std::map<std::string, const Dimension*> dims = {{"Hospital", &dim}};
  EXPECT_TRUE(rel->ValidateReferential(dims).ok());
}

TEST(CategoricalRelation, ReferentialConstraintCatchesDanglingMember) {
  Dimension dim = SmallHospital();
  auto rel = MakePatientWard();
  ASSERT_TRUE(rel.ok());
  ASSERT_TRUE(rel->InsertText({"W9", "Tom"}).ok());  // W9 not a Ward member
  std::map<std::string, const Dimension*> dims = {{"Hospital", &dim}};
  Status s = rel->ValidateReferential(dims);
  EXPECT_EQ(s.code(), StatusCode::kInconsistent);
  EXPECT_NE(s.message().find("W9"), std::string::npos);
  EXPECT_NE(s.message().find("form (1)"), std::string::npos);
}

TEST(CategoricalRelation, ReferentialConstraintCatchesWrongCategory) {
  Dimension dim = SmallHospital();
  auto rel = MakePatientWard();
  ASSERT_TRUE(rel.ok());
  // "Standard" is a member, but of Unit, not Ward.
  ASSERT_TRUE(rel->InsertText({"Standard", "Tom"}).ok());
  std::map<std::string, const Dimension*> dims = {{"Hospital", &dim}};
  EXPECT_EQ(rel->ValidateReferential(dims).code(),
            StatusCode::kInconsistent);
}

TEST(CategoricalRelation, ReferentialConstraintUnknownDimension) {
  auto rel = MakePatientWard();
  ASSERT_TRUE(rel.ok());
  std::map<std::string, const Dimension*> empty;
  EXPECT_EQ(rel->ValidateReferential(empty).code(), StatusCode::kNotFound);
}

TEST(CategoricalRelation, NonStringCategoricalValueIsDangling) {
  Dimension dim = SmallHospital();
  auto rel = MakePatientWard();
  ASSERT_TRUE(rel.ok());
  ASSERT_TRUE(rel->Insert({Value::Int(3), Value::Str("Tom")}).ok());
  std::map<std::string, const Dimension*> dims = {{"Hospital", &dim}};
  EXPECT_EQ(rel->ValidateReferential(dims).code(),
            StatusCode::kInconsistent);
}

TEST(CategoricalRelation, EmitFactsIntoProgram) {
  auto rel = MakePatientWard();
  ASSERT_TRUE(rel.ok());
  ASSERT_TRUE(rel->InsertText({"W1", "Tom"}).ok());
  ASSERT_TRUE(rel->InsertText({"W2", "Ann"}).ok());
  datalog::Program program;
  ASSERT_TRUE(rel->EmitFacts(&program).ok());
  EXPECT_EQ(program.facts().size(), 2u);
  EXPECT_EQ(program.vocab()->PredicateArity(
                program.vocab()->FindPredicate("PatientWard")),
            2u);
}

TEST(CategoricalRelation, EmitFactsArityConflictDetected) {
  auto rel = MakePatientWard();
  ASSERT_TRUE(rel.ok());
  datalog::Program program;
  ASSERT_TRUE(program.mutable_vocab()->InternPredicate("PatientWard", 5).ok());
  EXPECT_FALSE(rel->EmitFacts(&program).ok());
}

}  // namespace
}  // namespace mdqa::md
