#include "datalog/chase.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"

namespace mdqa::datalog {
namespace {

struct ChaseRun {
  Program program;
  Instance instance;
  Result<ChaseStats> stats;
};

ChaseRun RunChase(const std::string& text,
             const ChaseOptions& options = ChaseOptions()) {
  auto p = Parser::ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status();
  Program program = std::move(p).value();
  Instance instance = Instance::FromProgram(program);
  Result<ChaseStats> stats = Chase::Run(program, &instance, options);
  return ChaseRun{std::move(program), std::move(instance), std::move(stats)};
}

size_t Count(const ChaseRun& run, const std::string& pred) {
  uint32_t id = run.program.vocab()->FindPredicate(pred);
  return id == StringPool::kNotFound ? 0 : run.instance.CountFacts(id);
}

TEST(Chase, PlainDatalogTransitiveClosure) {
  auto run = RunChase(
      "E(1, 2). E(2, 3). E(3, 4).\n"
      "T(X, Y) :- E(X, Y).\n"
      "T(X, Z) :- T(X, Y), E(Y, Z).\n");
  ASSERT_TRUE(run.stats.ok()) << run.stats.status();
  EXPECT_TRUE(run.stats->reached_fixpoint);
  EXPECT_EQ(Count(run, "T"), 6u);  // 12 13 14 23 24 34
}

TEST(Chase, NaiveAndSemiNaiveAgree) {
  const char* text =
      "E(1, 2). E(2, 3). E(3, 4). E(4, 1).\n"
      "T(X, Y) :- E(X, Y).\n"
      "T(X, Z) :- T(X, Y), T(Y, Z).\n";
  ChaseOptions naive;
  naive.semi_naive = false;
  auto a = RunChase(text);
  auto b = RunChase(text, naive);
  ASSERT_TRUE(a.stats.ok());
  ASSERT_TRUE(b.stats.ok());
  EXPECT_EQ(Count(a, "T"), 16u);
  EXPECT_EQ(Count(a, "T"), Count(b, "T"));
  EXPECT_EQ(a.instance.ToString(), b.instance.ToString());
}

TEST(Chase, ExistentialCreatesNull) {
  auto run = RunChase(
      "Person(\"ann\").\n"
      "HasParent(X, Z) :- Person(X).\n");
  ASSERT_TRUE(run.stats.ok()) << run.stats.status();
  EXPECT_EQ(run.stats->nulls_created, 1u);
  EXPECT_EQ(Count(run, "HasParent"), 1u);
  uint32_t pred = run.program.vocab()->FindPredicate("HasParent");
  EXPECT_TRUE(run.instance.Table(pred)->Row(0)[1].IsNull());
}

TEST(Chase, RestrictedChaseSkipsSatisfiedHeads) {
  // The head is already satisfied extensionally: no firing needed.
  auto run = RunChase(
      "Person(\"ann\"). HasParent(\"ann\", \"eve\").\n"
      "HasParent(X, Z) :- Person(X).\n");
  ASSERT_TRUE(run.stats.ok());
  EXPECT_EQ(run.stats->nulls_created, 0u);
  EXPECT_EQ(Count(run, "HasParent"), 1u);
}

TEST(Chase, InfiniteChaseHitsRoundBudget) {
  // R(x,y) -> exists z R(y,z): classic non-terminating chase.
  ChaseOptions options;
  options.max_rounds = 10;
  options.check_constraints = false;
  auto run = RunChase("R(1, 2).\nR(Y, Z) :- R(X, Y).\n", options);
  ASSERT_TRUE(run.stats.ok()) << run.stats.status();
  EXPECT_FALSE(run.stats->reached_fixpoint);
  EXPECT_EQ(run.stats->rounds, 10u);
  EXPECT_EQ(Count(run, "R"), 11u);  // one new fact per level
}

TEST(Chase, MaxFactsBudget) {
  ChaseOptions options;
  options.max_facts = 5;
  auto run = RunChase("R(1, 2).\nR(Y, Z) :- R(X, Y).\n", options);
  ASSERT_FALSE(run.stats.ok());
  EXPECT_EQ(run.stats.status().code(), StatusCode::kResourceExhausted);
}

TEST(Chase, DerivationLevelsMatchRounds) {
  // Rules are applied in program order within a round, so C (listed
  // first) only sees B-facts in the *next* round: levels track rounds.
  auto run = RunChase(
      "A(1).\n"
      "C(X) :- B(X).\n"
      "B(X) :- A(X).\n");
  ASSERT_TRUE(run.stats.ok());
  const auto& vocab = *run.program.vocab();
  EXPECT_EQ(run.instance.Table(vocab.FindPredicate("A"))->Level(0), 0u);
  EXPECT_EQ(run.instance.Table(vocab.FindPredicate("B"))->Level(0), 1u);
  EXPECT_EQ(run.instance.Table(vocab.FindPredicate("C"))->Level(0), 2u);
}

TEST(Chase, SameRoundVisibilityInRuleOrder) {
  // Listed in dependency order, both derivations land in round one.
  auto run = RunChase(
      "A(1).\n"
      "B(X) :- A(X).\n"
      "C(X) :- B(X).\n");
  ASSERT_TRUE(run.stats.ok());
  const auto& vocab = *run.program.vocab();
  EXPECT_EQ(run.instance.Table(vocab.FindPredicate("B"))->Level(0), 1u);
  EXPECT_EQ(run.instance.Table(vocab.FindPredicate("C"))->Level(0), 1u);
}

TEST(Chase, MultiAtomHeadSharesNulls) {
  auto run = RunChase(
      "D(\"h\", \"d\", \"p\").\n"
      "IU(I, U), PU(U, D, P) :- D(I, D, P).\n");
  ASSERT_TRUE(run.stats.ok());
  EXPECT_EQ(run.stats->nulls_created, 1u);
  const auto& vocab = *run.program.vocab();
  const FactTable* iu = run.instance.Table(vocab.FindPredicate("IU"));
  const FactTable* pu = run.instance.Table(vocab.FindPredicate("PU"));
  ASSERT_EQ(iu->size(), 1u);
  ASSERT_EQ(pu->size(), 1u);
  EXPECT_EQ(iu->Row(0)[1], pu->Row(0)[0]);  // same labeled null
}

TEST(Chase, NegativeConstraintViolation) {
  auto run = RunChase(
      "P(\"x\"). Q(\"x\").\n"
      "! :- P(X), Q(X).\n");
  ASSERT_FALSE(run.stats.ok());
  EXPECT_EQ(run.stats.status().code(), StatusCode::kInconsistent);
  EXPECT_NE(run.stats.status().message().find("negative constraint"),
            std::string::npos);
}

TEST(Chase, NegativeConstraintOnDerivedFacts) {
  auto run = RunChase(
      "P(\"x\").\n"
      "Q(X) :- P(X).\n"
      "! :- Q(X).\n");
  ASSERT_FALSE(run.stats.ok());
  EXPECT_EQ(run.stats.status().code(), StatusCode::kInconsistent);
}

TEST(Chase, ConstraintCheckCanBeDisabled) {
  ChaseOptions options;
  options.check_constraints = false;
  auto run = RunChase("P(\"x\"). Q(\"x\").\n! :- P(X), Q(X).\n", options);
  EXPECT_TRUE(run.stats.ok());
}

TEST(Chase, EgdMergesNullWithConstant) {
  // The null invented for ann's parent is equated with "eve".
  auto run = RunChase(
      "Person(\"ann\"). Parent(\"ann\", \"eve\").\n"
      "HasParent(X, Z) :- Person(X).\n"
      "Y = Z :- Parent(X, Y), HasParent(X, Z).\n");
  ASSERT_TRUE(run.stats.ok()) << run.stats.status();
  uint32_t pred = run.program.vocab()->FindPredicate("HasParent");
  const FactTable* t = run.instance.Table(pred);
  ASSERT_EQ(t->size(), 1u);
  EXPECT_TRUE(t->Row(0)[1].IsConstant());
  EXPECT_GE(run.stats->egd_merges, 1u);
}

TEST(Chase, EgdMergesTwoNulls) {
  auto run = RunChase(
      "P(\"a\"). Q(\"a\").\n"
      "R(X, Y) :- P(X).\n"
      "S(X, Y) :- Q(X).\n"
      "Y = Z :- R(X, Y), S(X, Z).\n");
  ASSERT_TRUE(run.stats.ok()) << run.stats.status();
  const auto& vocab = *run.program.vocab();
  const FactTable* r = run.instance.Table(vocab.FindPredicate("R"));
  const FactTable* s = run.instance.Table(vocab.FindPredicate("S"));
  EXPECT_EQ(r->Row(0)[1], s->Row(0)[1]);  // unified to one null
}

TEST(Chase, EgdConstantClashIsInconsistent) {
  auto run = RunChase(
      "T(\"w1\", \"t1\"). T(\"w2\", \"t2\"). U(\"u\", \"w1\"). "
      "U(\"u\", \"w2\").\n"
      "A = B :- T(W, A), T(W2, B), U(X, W), U(X, W2).\n");
  ASSERT_FALSE(run.stats.ok());
  EXPECT_EQ(run.stats.status().code(), StatusCode::kInconsistent);
  EXPECT_NE(run.stats.status().message().find("EGD"), std::string::npos);
}

TEST(Chase, EgdPostModeMatchesInterleavedOnSeparablePrograms) {
  const char* text =
      "P(\"a\"). Parent(\"a\", \"e\").\n"
      "HasParent(X, Z) :- P(X).\n"
      "Y = Z :- Parent(X, Y), HasParent(X, Z).\n";
  ChaseOptions post;
  post.egd_mode = EgdMode::kPost;
  auto a = RunChase(text);
  auto b = RunChase(text, post);
  ASSERT_TRUE(a.stats.ok());
  ASSERT_TRUE(b.stats.ok());
  EXPECT_EQ(a.instance.ToString(), b.instance.ToString());
}

TEST(Chase, EgdOffModeLeavesNulls) {
  ChaseOptions off;
  off.egd_mode = EgdMode::kOff;
  auto run = RunChase(
      "P(\"a\"). Parent(\"a\", \"e\").\n"
      "HasParent(X, Z) :- P(X).\n"
      "Y = Z :- Parent(X, Y), HasParent(X, Z).\n",
      off);
  ASSERT_TRUE(run.stats.ok());
  uint32_t pred = run.program.vocab()->FindPredicate("HasParent");
  EXPECT_TRUE(run.instance.Table(pred)->Row(0)[1].IsNull());
}

TEST(Chase, EgdMergeEnablesFurtherTgdFirings) {
  // After the null is merged to "b", rule S fires on the joined value —
  // the semi-naive force-full-after-merge path.
  auto run = RunChase(
      "P(\"a\"). Eq(\"a\", \"b\"). W(\"b\").\n"
      "R(X, Y) :- P(X).\n"
      "Y = Z :- Eq(X, Z), R(X, Y).\n"
      "S(Y) :- R(X, Y), W(Y).\n");
  ASSERT_TRUE(run.stats.ok()) << run.stats.status();
  EXPECT_EQ(Count(run, "S"), 1u);
}

TEST(Chase, SemiObliviousFiresUnconditionally) {
  // The head is already satisfied extensionally; the restricted chase
  // skips, the semi-oblivious chase fires anyway.
  ChaseOptions oblivious;
  oblivious.restricted = false;
  auto run = RunChase(
      "Person(\"ann\"). HasParent(\"ann\", \"eve\").\n"
      "HasParent(X, Z) :- Person(X).\n",
      oblivious);
  ASSERT_TRUE(run.stats.ok()) << run.stats.status();
  EXPECT_EQ(run.stats->nulls_created, 1u);
  EXPECT_EQ(Count(run, "HasParent"), 2u);  // eve + the fresh null
}

TEST(Chase, SemiObliviousTerminatesOnWeaklyAcyclic) {
  ChaseOptions oblivious;
  oblivious.restricted = false;
  auto run = RunChase(
      "A(1). A(2).\n"
      "B(X, Z) :- A(X).\n"
      "C(Y) :- B(X, Y).\n",
      oblivious);
  ASSERT_TRUE(run.stats.ok());
  EXPECT_TRUE(run.stats->reached_fixpoint);
  EXPECT_EQ(Count(run, "B"), 2u);
  EXPECT_EQ(Count(run, "C"), 2u);
}

TEST(Chase, RestrictedAndSemiObliviousCertainAnswersAgree) {
  const char* text =
      "PW(\"w1\", \"tom\"). UW(\"std\", \"w1\").\n"
      "PU(U, P) :- PW(W, P), UW(U, W).\n"
      "SH(W, N) :- PU(U, N), UW(U, W).\n";
  ChaseOptions oblivious;
  oblivious.restricted = false;
  auto a = RunChase(text);
  auto b = RunChase(text, oblivious);
  ASSERT_TRUE(a.stats.ok());
  ASSERT_TRUE(b.stats.ok());
  // No existentials here, so the instances coincide exactly.
  EXPECT_EQ(a.instance.ToString(), b.instance.ToString());
}

TEST(Chase, ComparisonsInRuleBodies) {
  auto run = RunChase(
      "V(1). V(2). V(3).\n"
      "Big(X) :- V(X), X >= 2.\n");
  ASSERT_TRUE(run.stats.ok());
  EXPECT_EQ(Count(run, "Big"), 2u);
}

TEST(Chase, ApplyEgdsStandalone) {
  auto p = Parser::ParseProgram(
      "F(\"k\", \"v1\").\n"
      "G(\"k\", Z) :- F(\"k\", Y).\n"
      "Y = Z :- F(X, Y), G(X, Z).\n");
  ASSERT_TRUE(p.ok());
  Instance instance = Instance::FromProgram(*p);
  ChaseOptions options;
  options.egd_mode = EgdMode::kOff;
  ASSERT_TRUE(Chase::Run(*p, &instance, options).ok());
  auto merges = Chase::ApplyEgds(*p, &instance);
  ASSERT_TRUE(merges.ok()) << merges.status();
  EXPECT_EQ(*merges, 1u);
}

TEST(Chase, CheckConstraintsStandalone) {
  auto p = Parser::ParseProgram("P(1).\n! :- P(X), X > 5.\n");
  ASSERT_TRUE(p.ok());
  Instance instance = Instance::FromProgram(*p);
  EXPECT_TRUE(Chase::CheckConstraints(*p, instance).ok());
  instance.AddFact(
      Atom(p->vocab()->FindPredicate("P"), {p->mutable_vocab()->Int(9)}), 0);
  EXPECT_EQ(Chase::CheckConstraints(*p, instance).code(),
            StatusCode::kInconsistent);
}

TEST(Chase, StatsToStringMentionsFixpoint) {
  auto run = RunChase("P(1).\nQ(X) :- P(X).\n");
  ASSERT_TRUE(run.stats.ok());
  EXPECT_NE(run.stats->ToString().find("fixpoint"), std::string::npos);
}

}  // namespace
}  // namespace mdqa::datalog
