// End-to-end reproduction of the paper's running example: Tables I-V,
// Examples 1-7, and the section III/IV claims, on the hospital scenario.

#include "scenarios/hospital.h"

#include <gtest/gtest.h>

#include "datalog/chase.h"
#include "datalog/parser.h"
#include "qa/engines.h"
#include "quality/assessor.h"

namespace mdqa {
namespace {

using datalog::ConjunctiveQuery;
using datalog::Parser;
using datalog::Program;
using scenarios::BuildHospitalContext;
using scenarios::BuildHospitalOntology;
using scenarios::BuildMeasurementsDatabase;
using scenarios::HospitalOptions;

// Renders an AnswerSet as a sorted list of comma-joined tuples.
std::vector<std::string> Render(const qa::AnswerSet& answers,
                                const datalog::Vocabulary& vocab) {
  std::vector<std::string> out;
  for (const auto& tuple : answers.tuples) {
    std::string row;
    for (size_t i = 0; i < tuple.size(); ++i) {
      if (i > 0) row += ",";
      row += vocab.TermToDisplayString(tuple[i]);
    }
    out.push_back(row);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(HospitalOntology, BuildsAndValidates) {
  auto ontology = BuildHospitalOntology(HospitalOptions{});
  ASSERT_TRUE(ontology.ok()) << ontology.status();
  EXPECT_TRUE((*ontology)->ValidateReferential().ok());
  EXPECT_EQ((*ontology)->DimensionNames().size(), 3u);
  EXPECT_EQ((*ontology)->CategoricalRelationNames().size(), 6u);
}

TEST(HospitalOntology, RuleClassification) {
  auto ontology = BuildHospitalOntology(HospitalOptions{});
  ASSERT_TRUE(ontology.ok()) << ontology.status();
  const auto& rules = (*ontology)->dimensional_rules();
  ASSERT_EQ(rules.size(), 3u);
  // Rule (7): upward, form (4).
  EXPECT_EQ(rules[0].form, core::RuleForm::kForm4);
  EXPECT_EQ(rules[0].navigation, core::Navigation::kUpward);
  // Rule (8): downward, form (4) (existential non-categorical shift).
  EXPECT_EQ(rules[1].form, core::RuleForm::kForm4);
  EXPECT_EQ(rules[1].navigation, core::Navigation::kDownward);
  // Rule (9): downward, form (10) (existential categorical unit).
  EXPECT_EQ(rules[2].form, core::RuleForm::kForm10);
  EXPECT_EQ(rules[2].navigation, core::Navigation::kDownward);
}

TEST(HospitalOntology, SectionIIIClaims) {
  // Full ontology: weakly sticky but not sticky; form (10) present, so
  // the paper's separability shortcut is off.
  auto ontology = BuildHospitalOntology(HospitalOptions{});
  ASSERT_TRUE(ontology.ok()) << ontology.status();
  auto props = (*ontology)->Analyze();
  ASSERT_TRUE(props.ok()) << props.status();
  EXPECT_TRUE(props->weakly_sticky);
  EXPECT_FALSE(props->sticky);
  EXPECT_TRUE(props->has_form10);
  EXPECT_FALSE(props->separable_egds);
  EXPECT_FALSE(props->upward_only);
}

TEST(HospitalOntology, UpwardOnlyVariant) {
  HospitalOptions options;
  options.include_downward_rules = false;
  auto ontology = BuildHospitalOntology(options);
  ASSERT_TRUE(ontology.ok()) << ontology.status();
  auto props = (*ontology)->Analyze();
  ASSERT_TRUE(props.ok()) << props.status();
  EXPECT_TRUE(props->weakly_sticky);
  EXPECT_TRUE(props->upward_only);
  EXPECT_TRUE(props->separable_egds);
}

TEST(HospitalQuality, TableIIReproduction) {
  // E1: the quality version of Table I is exactly Table II.
  auto context = BuildHospitalContext(HospitalOptions{});
  ASSERT_TRUE(context.ok()) << context.status();
  auto quality = context->ComputeQualityVersion("Measurements");
  ASSERT_TRUE(quality.ok()) << quality.status();
  EXPECT_EQ(quality->size(), 2u);
  EXPECT_TRUE(quality->Contains({Value::Str("Sep/5-12:10"),
                                 Value::Str("Tom Waits"), Value::Real(38.2)}));
  EXPECT_TRUE(quality->Contains({Value::Str("Sep/6-11:50"),
                                 Value::Str("Tom Waits"), Value::Real(37.1)}));
}

TEST(HospitalQuality, TableIIReproductionViaWsEngine) {
  auto context = BuildHospitalContext(HospitalOptions{});
  ASSERT_TRUE(context.ok()) << context.status();
  auto quality = context->ComputeQualityVersion(
      "Measurements", qa::Engine::kDeterministicWs);
  ASSERT_TRUE(quality.ok()) << quality.status();
  EXPECT_EQ(quality->size(), 2u);
}

TEST(HospitalQuality, DoctorsCleanQuery) {
  // Example 7: "Tom Waits' temperatures on Sep/5 around noon", rewritten
  // to Measurements^q, returns exactly Table I row 1.
  auto context = BuildHospitalContext(HospitalOptions{});
  ASSERT_TRUE(context.ok()) << context.status();
  auto clean = context->CleanAnswers(
      "Q(T, P, V) :- Measurements(T, P, V), P = \"Tom Waits\", "
      "T >= \"Sep/5-11:45\", T <= \"Sep/5-12:15\".");
  ASSERT_TRUE(clean.ok()) << clean.status();
  auto rows = Render(*clean, *context->ontology().vocab());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], "Sep/5-12:10,Tom Waits,38.2");
}

TEST(HospitalQuality, RawVersusCleanContrast) {
  // All of Tom's measurements: 4 raw rows, 2 clean rows (Table II).
  auto context = BuildHospitalContext(HospitalOptions{});
  ASSERT_TRUE(context.ok()) << context.status();
  auto raw = context->RawAnswers(
      "Q(T, V) :- Measurements(T, P, V), P = \"Tom Waits\".");
  ASSERT_TRUE(raw.ok()) << raw.status();
  EXPECT_EQ(raw->size(), 4u);
  auto clean = context->CleanAnswers(
      "Q(T, V) :- Measurements(T, P, V), P = \"Tom Waits\".");
  ASSERT_TRUE(clean.ok()) << clean.status();
  EXPECT_EQ(clean->size(), 2u);
}

TEST(HospitalShifts, DownwardNavigationExample5) {
  // E2 / Examples 2 and 5: Mark works in the Standard unit on Sep/9, so
  // downward navigation derives shifts in W1 and W2 that day, with a
  // fresh null for the shift attribute.
  auto ontology = BuildHospitalOntology(HospitalOptions{});
  ASSERT_TRUE(ontology.ok()) << ontology.status();
  auto program = (*ontology)->Compile();
  ASSERT_TRUE(program.ok()) << program.status();
  auto vocab = program->vocab();

  for (const char* ward : {"W1", "W2"}) {
    auto query = Parser::ParseQuery(
        std::string("Q(D) :- Shifts(\"") + ward +
            "\", D, \"Mark\", S).",
        vocab.get());
    ASSERT_TRUE(query.ok()) << query.status();
    auto answers = qa::Answer(qa::Engine::kChase, *program, *query);
    ASSERT_TRUE(answers.ok()) << answers.status();
    auto rows = Render(*answers, *vocab);
    ASSERT_EQ(rows.size(), 1u) << "ward " << ward;
    EXPECT_EQ(rows[0], "Sep/9");
  }
}

TEST(HospitalShifts, DownwardNavigationViaWsEngine) {
  auto ontology = BuildHospitalOntology(HospitalOptions{});
  ASSERT_TRUE(ontology.ok()) << ontology.status();
  auto program = (*ontology)->Compile();
  ASSERT_TRUE(program.ok()) << program.status();
  auto query = Parser::ParseQuery("Q(D) :- Shifts(\"W2\", D, \"Mark\", S).",
                                  program->vocab().get());
  ASSERT_TRUE(query.ok()) << query.status();
  auto answers = qa::Answer(qa::Engine::kDeterministicWs, *program, *query);
  ASSERT_TRUE(answers.ok()) << answers.status();
  auto rows = Render(*answers, *program->vocab());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], "Sep/9");
}

TEST(HospitalShifts, HelenShiftsViaBothLevels) {
  // Helen: extensional (W1, Sep/6) plus derived W1/W2 on Sep/5 and Sep/6.
  auto ontology = BuildHospitalOntology(HospitalOptions{});
  ASSERT_TRUE(ontology.ok()) << ontology.status();
  auto program = (*ontology)->Compile();
  ASSERT_TRUE(program.ok()) << program.status();
  auto query = Parser::ParseQuery(
      "Q(W, D) :- Shifts(W, D, \"Helen\", S).", program->vocab().get());
  ASSERT_TRUE(query.ok()) << query.status();
  auto answers = qa::Answer(qa::Engine::kChase, *program, *query);
  ASSERT_TRUE(answers.ok()) << answers.status();
  auto rows = Render(*answers, *program->vocab());
  EXPECT_EQ(rows, (std::vector<std::string>{"W1,Sep/5", "W1,Sep/6",
                                            "W2,Sep/5", "W2,Sep/6"}));
}

TEST(HospitalDischarge, Form10DisjunctiveKnowledge) {
  // E4 / Example 6: Elvis Costello was discharged from H2 but his unit is
  // unknown: no certain answer, yet the boolean query "was he in some
  // unit of H2 that day" holds, witnessed by a labeled null.
  auto ontology = BuildHospitalOntology(HospitalOptions{});
  ASSERT_TRUE(ontology.ok()) << ontology.status();
  auto program = (*ontology)->Compile();
  ASSERT_TRUE(program.ok()) << program.status();
  auto vocab = program->vocab();

  auto open_query = Parser::ParseQuery(
      "Q(U) :- PatientUnit(U, \"Oct/5\", \"Elvis Costello\").", vocab.get());
  ASSERT_TRUE(open_query.ok()) << open_query.status();
  auto certain = qa::Answer(qa::Engine::kChase, *program, *open_query);
  ASSERT_TRUE(certain.ok()) << certain.status();
  EXPECT_TRUE(certain->empty());

  auto chase_qa = qa::ChaseQa::Create(*program);
  ASSERT_TRUE(chase_qa.ok()) << chase_qa.status();
  auto possible = chase_qa->PossibleAnswers(*open_query);
  ASSERT_TRUE(possible.ok()) << possible.status();
  ASSERT_EQ(possible->size(), 1u);
  EXPECT_TRUE((*possible)[0][0].IsNull());

  auto boolean_query = Parser::ParseQuery(
      "Q() :- InstitutionUnit(\"H2\", U), "
      "PatientUnit(U, \"Oct/5\", \"Elvis Costello\").",
      vocab.get());
  ASSERT_TRUE(boolean_query.ok()) << boolean_query.status();
  auto holds = chase_qa->AnswerBoolean(*boolean_query);
  ASSERT_TRUE(holds.ok()) << holds.status();
  EXPECT_TRUE(*holds);
}

TEST(HospitalDischarge, RestrictedChaseAvoidsRedundantNulls) {
  // Tom and Lou already appear in PatientUnit (via rule (7)) in units of
  // H1 on their discharge days, so rule (9) must not invent nulls for
  // them: PatientUnit = 6 certain + 1 null tuple (Elvis).
  auto ontology = BuildHospitalOntology(HospitalOptions{});
  ASSERT_TRUE(ontology.ok()) << ontology.status();
  auto program = (*ontology)->Compile();
  ASSERT_TRUE(program.ok()) << program.status();
  auto chase_qa = qa::ChaseQa::Create(*program);
  ASSERT_TRUE(chase_qa.ok()) << chase_qa.status();
  uint32_t pred = program->vocab()->FindPredicate("PatientUnit");
  ASSERT_NE(pred, StringPool::kNotFound);
  EXPECT_EQ(chase_qa->instance().CountFacts(pred), 7u);
}

TEST(HospitalConstraints, IntensiveCareViolation) {
  // E3: the recorded Intensive-ward stay in August/2005 trips the
  // inter-dimensional negative constraint.
  HospitalOptions options;
  options.include_violating_stay = true;
  auto ontology = BuildHospitalOntology(options);
  ASSERT_TRUE(ontology.ok()) << ontology.status();
  auto program = (*ontology)->Compile();
  ASSERT_TRUE(program.ok()) << program.status();
  auto chase_qa = qa::ChaseQa::Create(*program);
  ASSERT_FALSE(chase_qa.ok());
  EXPECT_EQ(chase_qa.status().code(), StatusCode::kInconsistent);
  EXPECT_NE(chase_qa.status().message().find("PatientWard"),
            std::string::npos);
}

TEST(HospitalConstraints, ThermometerEgdClash) {
  // E5: two thermometer types inside the Standard unit make EGD (6)
  // equate the constants T1 and T2 — a hard inconsistency.
  HospitalOptions options;
  options.include_therm_conflict = true;
  auto ontology = BuildHospitalOntology(options);
  ASSERT_TRUE(ontology.ok()) << ontology.status();
  auto program = (*ontology)->Compile();
  ASSERT_TRUE(program.ok()) << program.status();
  auto chase_qa = qa::ChaseQa::Create(*program);
  ASSERT_FALSE(chase_qa.ok());
  EXPECT_EQ(chase_qa.status().code(), StatusCode::kInconsistent);
}

TEST(HospitalAssessment, ReportMeasuresTableOneThird) {
  // Overall: 2 of Table I's 6 rows are quality tuples.
  auto context = BuildHospitalContext(HospitalOptions{});
  ASSERT_TRUE(context.ok()) << context.status();
  quality::Assessor assessor(&*context);
  auto report = assessor.Assess();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->referential_check.ok());
  EXPECT_TRUE(report->constraint_check.ok());
  ASSERT_EQ(report->per_relation.size(), 1u);
  EXPECT_EQ(report->per_relation[0].original_size, 6u);
  EXPECT_EQ(report->per_relation[0].quality_size, 2u);
  EXPECT_EQ(report->per_relation[0].common, 2u);
  EXPECT_NEAR(report->overall_precision, 2.0 / 6.0, 1e-9);
}

TEST(HospitalEngines, ChaseAndWsAgreeOnScenarioQueries) {
  auto ontology = BuildHospitalOntology(HospitalOptions{});
  ASSERT_TRUE(ontology.ok()) << ontology.status();
  auto program = (*ontology)->Compile();
  ASSERT_TRUE(program.ok()) << program.status();
  const char* queries[] = {
      "Q(U, D, P) :- PatientUnit(U, D, P).",
      "Q(W, D, N) :- Shifts(W, D, N, S).",
      "Q(D) :- Shifts(\"W2\", D, \"Mark\", S).",
      "Q(P) :- PatientUnit(\"Standard\", D, P).",
      "Q(I, P) :- DischargePatients(I, D, P), PatientUnit(U, D, P), "
      "InstitutionUnit(I, U).",
  };
  for (const char* text : queries) {
    auto query = Parser::ParseQuery(text, program->vocab().get());
    ASSERT_TRUE(query.ok()) << query.status() << " for " << text;
    auto agreed = qa::CrossCheck(
        *program, *query,
        {qa::Engine::kChase, qa::Engine::kDeterministicWs});
    EXPECT_TRUE(agreed.ok()) << agreed.status();
  }
}

TEST(HospitalEngines, RewritingMatchesChaseOnUpwardOnly) {
  HospitalOptions options;
  options.include_downward_rules = false;
  auto ontology = BuildHospitalOntology(options);
  ASSERT_TRUE(ontology.ok()) << ontology.status();
  auto program = (*ontology)->Compile();
  ASSERT_TRUE(program.ok()) << program.status();
  const char* queries[] = {
      "Q(U, D, P) :- PatientUnit(U, D, P).",
      "Q(P) :- PatientUnit(\"Standard\", D, P).",
      "Q(D, P) :- PatientUnit(\"Terminal\", D, P).",
  };
  for (const char* text : queries) {
    auto query = Parser::ParseQuery(text, program->vocab().get());
    ASSERT_TRUE(query.ok()) << query.status();
    auto agreed = qa::CrossCheck(*program, *query,
                                 {qa::Engine::kChase, qa::Engine::kRewriting,
                                  qa::Engine::kDeterministicWs});
    EXPECT_TRUE(agreed.ok()) << agreed.status();
  }
}

TEST(HospitalFig1, DimensionRendering) {
  auto ontology = BuildHospitalOntology(HospitalOptions{});
  ASSERT_TRUE(ontology.ok()) << ontology.status();
  const md::Dimension* hospital = (*ontology)->FindDimension("Hospital");
  ASSERT_NE(hospital, nullptr);
  std::string rendered = hospital->ToString();
  EXPECT_NE(rendered.find("AllHospital"), std::string::npos);
  EXPECT_NE(rendered.find("Ward"), std::string::npos);
  auto level = hospital->schema().Level("Institution");
  ASSERT_TRUE(level.ok());
  EXPECT_EQ(*level, 2);
}

}  // namespace
}  // namespace mdqa
