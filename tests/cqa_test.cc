// Conflict detection and conflict-free (repair-core) query answering.

#include "quality/cqa.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "scenarios/hospital.h"

namespace mdqa::quality {
namespace {

using datalog::Parser;
using datalog::Program;

Program Parse(const std::string& text) {
  auto p = Parser::ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status();
  return std::move(p).value();
}

TEST(Cqa, NoConflictsOnCleanData) {
  Program p = Parse(
      "P(1). Q(2).\n"
      "! :- P(X), Q(X).\n");
  CqaEngine cqa(p);
  auto conflicts = cqa.FindConflicts();
  ASSERT_TRUE(conflicts.ok()) << conflicts.status();
  EXPECT_TRUE(conflicts->empty());
  EXPECT_TRUE(cqa.SuspectFacts()->empty());
}

TEST(Cqa, AllViolationsReportedNotJustFirst) {
  Program p = Parse(
      "P(1). P(2). P(3). Q(1). Q(2).\n"
      "! :- P(X), Q(X).\n");
  CqaEngine cqa(p);
  auto conflicts = cqa.FindConflicts();
  ASSERT_TRUE(conflicts.ok());
  EXPECT_EQ(conflicts->size(), 2u);
}

TEST(Cqa, SuspectsAreExtensionalWitnesses) {
  Program p = Parse(
      "P(1). Q(1).\n"
      "! :- P(X), Q(X).\n");
  CqaEngine cqa(p);
  auto suspects = cqa.SuspectFacts();
  ASSERT_TRUE(suspects.ok());
  EXPECT_EQ(suspects->size(), 2u);  // P(1) and Q(1)
}

TEST(Cqa, DerivedWitnessesTraceToLeaves) {
  // The constraint fires on a *derived* fact; the suspect must be the
  // extensional fact beneath it.
  Program p = Parse(
      "Raw(1). Raw(2).\n"
      "Bad(X) :- Raw(X), X > 1.\n"
      "! :- Bad(X).\n");
  CqaEngine cqa(p);
  auto conflicts = cqa.FindConflicts();
  ASSERT_TRUE(conflicts.ok());
  ASSERT_EQ(conflicts->size(), 1u);
  ASSERT_EQ((*conflicts)[0].suspects.size(), 1u);
  EXPECT_EQ(p.vocab()->AtomToString((*conflicts)[0].suspects[0]), "Raw(2)");
}

TEST(Cqa, EgdConstantClashIsAConflict) {
  Program p = Parse(
      "T(\"w1\", \"a\"). T(\"w2\", \"b\"). U(\"u\", \"w1\"). "
      "U(\"u\", \"w2\").\n"
      "X = Y :- T(W, X), T(W2, Y), U(Z, W), U(Z, W2).\n");
  CqaEngine cqa(p);
  auto conflicts = cqa.FindConflicts();
  ASSERT_TRUE(conflicts.ok()) << conflicts.status();
  // The symmetric match (a,b) and (b,a) both violate.
  EXPECT_EQ(conflicts->size(), 2u);
}

TEST(Cqa, EgdNullMergesAreNotConflicts) {
  Program p = Parse(
      "P(\"x\"). F(\"x\", \"v\").\n"
      "R(X, Z) :- P(X).\n"
      "Y = Z :- F(X, Y), R(X, Z).\n");
  CqaEngine cqa(p);
  auto conflicts = cqa.FindConflicts();
  ASSERT_TRUE(conflicts.ok());
  EXPECT_TRUE(conflicts->empty());
}

TEST(Cqa, RepairCoreDropsOnlySuspects) {
  Program p = Parse(
      "P(1). P(2). Q(1).\n"
      "! :- P(X), Q(X).\n");
  CqaEngine cqa(p);
  auto core = cqa.RepairCore();
  ASSERT_TRUE(core.ok());
  // P(1) and Q(1) dropped; P(2) survives.
  EXPECT_EQ(core->facts().size(), 1u);
  EXPECT_EQ(p.vocab()->AtomToString(core->facts()[0]), "P(2)");
}

TEST(Cqa, ConflictFreeAnswersUnderApproximate) {
  Program p = Parse(
      "Emp(\"ann\", \"hr\"). Emp(\"ann\", \"it\"). Emp(\"bob\", \"hr\").\n"
      "D = D2 :- Emp(N, D), Emp(N, D2).\n");
  CqaEngine cqa(p);
  auto q = Parser::ParseQuery("Q(N) :- Emp(N, D).", p.mutable_vocab());
  ASSERT_TRUE(q.ok());
  auto answers = cqa.ConflictFreeAnswers(*q);
  ASSERT_TRUE(answers.ok()) << answers.status();
  // Ann's two department tuples conflict (both dropped); bob is certain.
  // (True consistent answers would also include ann — the core is an
  // under-approximation by construction.)
  ASSERT_EQ(answers->size(), 1u);
  EXPECT_EQ(p.vocab()->TermToDisplayString(answers->tuples[0][0]), "bob");
}

TEST(Cqa, ProtectedPredicatesAreNeverSuspects) {
  Program p = Parse(
      "Data(1). Struct(1).\n"
      "! :- Data(X), Struct(X).\n");
  CqaEngine cqa(p);
  cqa.Protect("Struct");
  auto suspects = cqa.SuspectFacts();
  ASSERT_TRUE(suspects.ok());
  ASSERT_EQ(suspects->size(), 1u);
  EXPECT_EQ(p.vocab()->AtomToString((*suspects)[0]), "Data(1)");
  // The repair core keeps the structural fact.
  auto core = cqa.RepairCore();
  ASSERT_TRUE(core.ok());
  EXPECT_EQ(core->facts().size(), 1u);
}

TEST(Cqa, HospitalDirtyScenario) {
  scenarios::HospitalOptions options;
  options.include_violating_stay = true;
  auto ontology = scenarios::BuildHospitalOntology(options);
  ASSERT_TRUE(ontology.ok());
  auto program = (*ontology)->Compile();
  ASSERT_TRUE(program.ok());
  CqaEngine cqa(*program);
  cqa.ProtectDimensionStructure(**ontology);
  auto conflicts = cqa.FindConflicts();
  ASSERT_TRUE(conflicts.ok()) << conflicts.status();
  ASSERT_EQ(conflicts->size(), 1u);
  // The August/2005 Intensive stay is the suspect extensional tuple.
  bool found = false;
  for (const datalog::Atom& a : (*conflicts)[0].suspects) {
    if (program->vocab()->AtomToString(a).find("Aug/20") !=
        std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);

  // Conflict-free answers still see the clean PatientWard tuples.
  auto q = Parser::ParseQuery("Q(W, D, P) :- PatientWard(W, D, P).",
                              program->vocab().get());
  ASSERT_TRUE(q.ok());
  auto answers = cqa.ConflictFreeAnswers(*q);
  ASSERT_TRUE(answers.ok()) << answers.status();
  EXPECT_EQ(answers->size(), 6u);  // 7 extensional - 1 suspect
}

}  // namespace
}  // namespace mdqa::quality
