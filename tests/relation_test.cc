#include "relational/relation.h"

#include <gtest/gtest.h>

#include "relational/database.h"

namespace mdqa {
namespace {

RelationSchema MakeSchema(const std::string& name,
                          std::vector<std::string> attrs) {
  return RelationSchema::Create(name, std::move(attrs)).value();
}

TEST(RelationSchema, CreateValidates) {
  EXPECT_FALSE(RelationSchema::Create("", {std::string("a")}).ok());
  EXPECT_FALSE(
      RelationSchema::Create("R", std::vector<std::string>{"a", "a"}).ok());
  EXPECT_FALSE(
      RelationSchema::Create("R", std::vector<std::string>{""}).ok());
  auto ok = RelationSchema::Create("R", std::vector<std::string>{"a", "b"});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->arity(), 2u);
  EXPECT_EQ(ok->AttributeIndex("b"), 1);
  EXPECT_EQ(ok->AttributeIndex("zz"), -1);
}

TEST(RelationSchema, TypedAttributesAdmitValues) {
  EXPECT_TRUE(AttrTypeAdmits(AttrType::kAny, ValueType::kString));
  EXPECT_TRUE(AttrTypeAdmits(AttrType::kInt64, ValueType::kInt64));
  EXPECT_FALSE(AttrTypeAdmits(AttrType::kInt64, ValueType::kString));
  // Doubles accept ints (numeric widening), not vice versa.
  EXPECT_TRUE(AttrTypeAdmits(AttrType::kDouble, ValueType::kInt64));
  EXPECT_FALSE(AttrTypeAdmits(AttrType::kInt64, ValueType::kDouble));
  EXPECT_TRUE(AttrTypeAdmits(AttrType::kString, ValueType::kString));
}

TEST(Relation, InsertChecksArity) {
  Relation r(MakeSchema("R", {"a", "b"}));
  EXPECT_TRUE(r.Insert({Value::Int(1), Value::Int(2)}).ok());
  EXPECT_FALSE(r.Insert({Value::Int(1)}).ok());
  EXPECT_EQ(r.size(), 1u);
}

TEST(Relation, InsertChecksTypes) {
  auto schema = RelationSchema::Create(
      "R", std::vector<Attribute>{{"n", AttrType::kInt64},
                                  {"s", AttrType::kString}});
  ASSERT_TRUE(schema.ok());
  Relation r(std::move(schema).value());
  EXPECT_TRUE(r.Insert({Value::Int(1), Value::Str("x")}).ok());
  Status bad = r.Insert({Value::Str("x"), Value::Str("y")});
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
}

TEST(Relation, SetSemantics) {
  Relation r(MakeSchema("R", {"a"}));
  EXPECT_TRUE(r.Insert({Value::Int(1)}).ok());
  EXPECT_TRUE(r.Insert({Value::Int(1)}).ok());  // duplicate ignored, still OK
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains({Value::Int(1)}));
  EXPECT_FALSE(r.Contains({Value::Int(2)}));
}

TEST(Relation, InsertTextParsesFields) {
  Relation r(MakeSchema("R", {"a", "b", "c"}));
  ASSERT_TRUE(r.InsertText({"W1", "42", "37.5"}).ok());
  const Tuple& t = r.row(0);
  EXPECT_TRUE(t[0].is_string());
  EXPECT_TRUE(t[1].is_int());
  EXPECT_TRUE(t[2].is_double());
}

TEST(Relation, Select) {
  Relation r(MakeSchema("R", {"a"}));
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(r.Insert({Value::Int(i)}).ok());
  Relation even =
      r.Select([](const Tuple& t) { return t[0].AsInt() % 2 == 0; });
  EXPECT_EQ(even.size(), 3u);
}

TEST(Relation, ProjectCollapsesDuplicates) {
  Relation r(MakeSchema("R", {"a", "b"}));
  ASSERT_TRUE(r.Insert({Value::Int(1), Value::Str("x")}).ok());
  ASSERT_TRUE(r.Insert({Value::Int(2), Value::Str("x")}).ok());
  auto p = r.Project("P", {1});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->size(), 1u);
  EXPECT_EQ(p->schema().attribute(0).name, "b");
  EXPECT_FALSE(r.Project("P", {5}).ok());
}

TEST(Relation, IntersectAndMinus) {
  Relation a(MakeSchema("A", {"x"}));
  Relation b(MakeSchema("B", {"x"}));
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(a.Insert({Value::Int(i)}).ok());
  for (int i = 2; i < 6; ++i) ASSERT_TRUE(b.Insert({Value::Int(i)}).ok());
  auto common = a.Intersect(b);
  ASSERT_TRUE(common.ok());
  EXPECT_EQ(common->size(), 2u);
  auto only_a = a.Minus(b);
  ASSERT_TRUE(only_a.ok());
  EXPECT_EQ(only_a->size(), 2u);
  EXPECT_TRUE(only_a->Contains({Value::Int(0)}));

  Relation c(MakeSchema("C", {"x", "y"}));
  EXPECT_FALSE(a.Intersect(c).ok());
  EXPECT_FALSE(a.Minus(c).ok());
}

TEST(Relation, SortedRowsDeterministic) {
  Relation r(MakeSchema("R", {"a"}));
  ASSERT_TRUE(r.Insert({Value::Int(3)}).ok());
  ASSERT_TRUE(r.Insert({Value::Int(1)}).ok());
  ASSERT_TRUE(r.Insert({Value::Int(2)}).ok());
  auto sorted = r.SortedRows();
  EXPECT_EQ(sorted[0][0].AsInt(), 1);
  EXPECT_EQ(sorted[2][0].AsInt(), 3);
}

TEST(Relation, ToTableRendersHeaderAndRows) {
  Relation r(MakeSchema("Measurements", {"Time", "Patient"}));
  ASSERT_TRUE(r.InsertText({"Sep/5-12:10", "Tom Waits"}).ok());
  std::string table = r.ToTable();
  EXPECT_NE(table.find("Measurements (1 rows)"), std::string::npos);
  EXPECT_NE(table.find("Tom Waits"), std::string::npos);
  EXPECT_NE(table.find("Patient"), std::string::npos);
}

TEST(Database, AddAndLookup) {
  Database db;
  ASSERT_TRUE(db.AddRelation(MakeSchema("R", {"a"})).ok());
  EXPECT_EQ(db.AddRelation(MakeSchema("R", {"a"})).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(db.HasRelation("R"));
  EXPECT_FALSE(db.HasRelation("S"));
  EXPECT_TRUE(db.GetRelation("R").ok());
  EXPECT_EQ(db.GetRelation("S").status().code(), StatusCode::kNotFound);
}

TEST(Database, InsertTextAutoCreates) {
  Database db;
  ASSERT_TRUE(db.InsertText("T", {"a", "1"}).ok());
  ASSERT_TRUE(db.InsertText("T", {"b", "2"}).ok());
  auto rel = db.GetRelation("T");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ((*rel)->size(), 2u);
  EXPECT_EQ(db.TotalRows(), 2u);
  EXPECT_EQ(db.RelationNames(), std::vector<std::string>{"T"});
}

TEST(Database, PutRelationReplaces) {
  Database db;
  Relation r(MakeSchema("R", {"a"}));
  ASSERT_TRUE(r.Insert({Value::Int(1)}).ok());
  db.PutRelation(r);
  Relation r2(MakeSchema("R", {"a"}));
  ASSERT_TRUE(r2.Insert({Value::Int(1)}).ok());
  ASSERT_TRUE(r2.Insert({Value::Int(2)}).ok());
  db.PutRelation(r2);
  EXPECT_EQ((*db.GetRelation("R"))->size(), 2u);
  EXPECT_EQ(db.RelationNames().size(), 1u);
}

}  // namespace
}  // namespace mdqa
