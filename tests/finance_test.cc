// The finance scenario: footprint mapping + EGD null resolution,
// downward navigation without existentials, inter-dimensional joins.

#include "scenarios/finance.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "qa/chase_qa.h"
#include "quality/assessor.h"

namespace mdqa::scenarios {
namespace {

TEST(Finance, OntologyBuildsAndClassifies) {
  auto ontology = BuildFinanceOntology(FinanceOptions{});
  ASSERT_TRUE(ontology.ok()) << ontology.status();
  EXPECT_TRUE((*ontology)->ValidateReferential().ok());
  const auto& rules = (*ontology)->dimensional_rules();
  ASSERT_EQ(rules.size(), 1u);
  // Downward, yet form (4) and existential-free: matching schemas.
  EXPECT_EQ(rules[0].form, core::RuleForm::kForm4);
  EXPECT_EQ(rules[0].navigation, core::Navigation::kDownward);
  EXPECT_TRUE(rules[0].rule.ExistentialVariables().empty());
  auto props = (*ontology)->Analyze();
  ASSERT_TRUE(props.ok());
  EXPECT_TRUE(props->weakly_sticky);
}

TEST(Finance, DrillDownCoversBothEastBranches) {
  auto ontology = BuildFinanceOntology(FinanceOptions{});
  ASSERT_TRUE(ontology.ok());
  auto program = (*ontology)->Compile();
  ASSERT_TRUE(program.ok());
  auto qa = qa::ChaseQa::Create(*program);
  ASSERT_TRUE(qa.ok()) << qa.status();
  auto q = datalog::Parser::ParseQuery(
      "Q(B) :- BranchAudited(B, \"Mar/1\", \"alice\").",
      program->vocab().get());
  ASSERT_TRUE(q.ok());
  auto answers = qa->Answers(*q);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 2u);  // b1 and b2; b3 is west
}

TEST(Finance, FootprintEgdResolvesTerminals) {
  auto context = BuildFinanceContext(FinanceOptions{});
  ASSERT_TRUE(context.ok()) << context.status();
  // The wide relation's terminal column: resolved for the three logged
  // instants, still a null for the unlogged one.
  auto resolved = context->RawAnswers(
      "Q(Ti, Tl) :- TransactionWide(Ti, Ac, Am, Tl).");
  ASSERT_TRUE(resolved.ok()) << resolved.status();
  EXPECT_EQ(resolved->size(), 3u);  // certain answers only
}

TEST(Finance, QualityVersionIsRows1And2) {
  auto context = BuildFinanceContext(FinanceOptions{});
  ASSERT_TRUE(context.ok()) << context.status();
  auto quality = context->ComputeQualityVersion("Transactions");
  ASSERT_TRUE(quality.ok()) << quality.status();
  EXPECT_EQ(quality->size(), 2u);
  EXPECT_TRUE(quality->Contains({Value::Str("Mar/1-10:00"),
                                 Value::Str("acc1"), Value::Int(500)}));
  EXPECT_TRUE(quality->Contains({Value::Str("Mar/1-11:00"),
                                 Value::Str("acc2"), Value::Int(75)}));
}

TEST(Finance, AssessmentPrecisionHalf) {
  auto context = BuildFinanceContext(FinanceOptions{});
  ASSERT_TRUE(context.ok());
  quality::Assessor assessor(&*context);
  auto report = assessor.Assess();
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->per_relation.size(), 1u);
  EXPECT_DOUBLE_EQ(report->per_relation[0].precision, 0.5);
  EXPECT_EQ(report->dirty_tuples[0].size(), 2u);
}

TEST(Finance, CleanVersusRawOnAccountQuery) {
  auto context = BuildFinanceContext(FinanceOptions{});
  ASSERT_TRUE(context.ok());
  auto raw = context->RawAnswers(
      "Q(Ti, Am) :- Transactions(Ti, Ac, Am), Ac = \"acc1\".");
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw->size(), 2u);
  auto clean = context->CleanAnswers(
      "Q(Ti, Am) :- Transactions(Ti, Ac, Am), Ac = \"acc1\".");
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->size(), 1u);  // only the audited Mar/1 transaction
}

TEST(Finance, FraudAlertConstraintFires) {
  FinanceOptions options;
  options.include_fraud_alert = true;
  auto ontology = BuildFinanceOntology(options);
  ASSERT_TRUE(ontology.ok()) << ontology.status();
  auto program = (*ontology)->Compile();
  ASSERT_TRUE(program.ok());
  auto qa = qa::ChaseQa::Create(*program);
  ASSERT_FALSE(qa.ok());
  EXPECT_EQ(qa.status().code(), StatusCode::kInconsistent);
  EXPECT_NE(qa.status().message().find("t2"), std::string::npos);
}

TEST(Finance, EnginesAgree) {
  auto ontology = BuildFinanceOntology(FinanceOptions{});
  ASSERT_TRUE(ontology.ok());
  auto program = (*ontology)->Compile();
  ASSERT_TRUE(program.ok());
  for (const char* text :
       {"Q(B, D) :- BranchAudited(B, D, A).",
        "Q(B, T) :- TerminalAtBranch(B, T)."}) {
    auto q = datalog::Parser::ParseQuery(text, program->vocab().get());
    ASSERT_TRUE(q.ok());
    auto agreed = qa::CrossCheck(
        *program, *q, {qa::Engine::kChase, qa::Engine::kDeterministicWs});
    EXPECT_TRUE(agreed.ok()) << agreed.status();
  }
}

}  // namespace
}  // namespace mdqa::scenarios
