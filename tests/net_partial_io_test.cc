// Partial-I/O coverage for the blocking socket layer (base/net.h): the
// EINTR retry loops in ReadSome/SendAll, SendAll's short-write loop
// under a tiny send buffer, short-read accumulation, and the recv
// timeout contract. The storage-side analogue (short writes and EIO
// through FaultyEnv's fs.* probes) lives in tests/storage_test.cc.

#include "base/net.h"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>

namespace mdqa::net {
namespace {

using std::chrono::milliseconds;

void NoopHandler(int) {}

/// Installs a SIGUSR1 handler WITHOUT SA_RESTART for the test's
/// lifetime, so a signal delivered mid-recv/mid-send makes the syscall
/// fail with EINTR instead of transparently restarting — that is the
/// path the retry loops in ReadSome/SendAll exist for.
class ScopedEintrSignal {
 public:
  ScopedEintrSignal() {
    struct sigaction sa;
    memset(&sa, 0, sizeof(sa));
    sa.sa_handler = NoopHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;  // deliberately no SA_RESTART
    sigaction(SIGUSR1, &sa, &old_);
  }
  ~ScopedEintrSignal() { sigaction(SIGUSR1, &old_, nullptr); }

 private:
  struct sigaction old_;
};

struct LoopbackPair {
  Socket client;
  Socket server;
};

LoopbackPair MakePair() {
  auto listener = Listener::Bind(0);
  EXPECT_TRUE(listener.ok()) << listener.status();
  auto client = ConnectLoopback(listener->port(), milliseconds(2000));
  EXPECT_TRUE(client.ok()) << client.status();
  auto server = listener->Accept(milliseconds(2000));
  EXPECT_TRUE(server.ok()) << server.status();
  return {std::move(*client), std::move(*server)};
}

/// Repeating byte pattern long enough that any dropped, duplicated, or
/// reordered short-write chunk shifts the phase and fails the compare.
std::string Pattern(size_t n) {
  std::string out(n, '\0');
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<char>('A' + (i * 131 + i / 251) % 53);
  }
  return out;
}

/// Pelts `thread` with SIGUSR1 until `done` flips, pausing briefly so
/// the victim actually re-enters the syscall between interruptions.
void SignalUntilDone(std::thread& thread, const std::atomic<bool>& done) {
  while (!done.load(std::memory_order_acquire)) {
    pthread_kill(thread.native_handle(), SIGUSR1);
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
}

TEST(NetPartialIo, ReadSomeRetriesThroughEintr) {
  ScopedEintrSignal eintr;
  LoopbackPair pair = MakePair();

  std::atomic<bool> done{false};
  std::string received;
  std::thread reader([&] {
    char buf[64];
    auto n = pair.server.ReadSome(buf, sizeof(buf));
    EXPECT_TRUE(n.ok()) << n.status();
    if (n.ok()) received.assign(buf, *n);
    done.store(true, std::memory_order_release);
  });

  // Let the reader block in recv, interrupt it a few times, then feed
  // it — the interruptions must be invisible to the caller.
  std::this_thread::sleep_for(milliseconds(20));
  for (int i = 0; i < 20; ++i) {
    pthread_kill(reader.native_handle(), SIGUSR1);
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  ASSERT_TRUE(pair.client.SendAll("interrupted hello").ok());
  SignalUntilDone(reader, done);
  reader.join();
  EXPECT_EQ(received, "interrupted hello");
}

TEST(NetPartialIo, SendAllLoopsOverShortWritesByteIdentical) {
  LoopbackPair pair = MakePair();

  // Starve the kernel buffers so a multi-megabyte SendAll cannot
  // possibly complete in one write(2): the loop must stitch the short
  // writes back together with no gaps and no duplication.
  int small = 4096;
  ASSERT_EQ(setsockopt(pair.client.fd(), SOL_SOCKET, SO_SNDBUF, &small,
                       sizeof(small)),
            0);
  const std::string payload = Pattern(2 << 20);

  std::string received;
  std::thread reader([&] {
    char buf[8192];
    while (received.size() < payload.size()) {
      auto n = pair.server.ReadSome(buf, sizeof(buf));
      ASSERT_TRUE(n.ok()) << n.status();
      if (*n == 0) break;  // premature EOF → size check below fails loudly
      received.append(buf, *n);
    }
  });

  Status sent = pair.client.SendAll(payload);
  EXPECT_TRUE(sent.ok()) << sent;
  reader.join();
  ASSERT_EQ(received.size(), payload.size());
  EXPECT_TRUE(received == payload) << "short-write reassembly corrupted bytes";
}

TEST(NetPartialIo, SendAllRetriesThroughEintrWhileBlocked) {
  ScopedEintrSignal eintr;
  LoopbackPair pair = MakePair();

  int small = 4096;
  ASSERT_EQ(setsockopt(pair.client.fd(), SOL_SOCKET, SO_SNDBUF, &small,
                       sizeof(small)),
            0);
  const std::string payload = Pattern(1 << 20);

  std::atomic<bool> done{false};
  std::thread sender([&] {
    Status sent = pair.client.SendAll(payload);
    EXPECT_TRUE(sent.ok()) << sent;
    done.store(true, std::memory_order_release);
  });

  // The sender wedges as soon as the 4 KiB buffer fills (nobody is
  // reading yet). Interrupt it there, then drain slowly while the
  // signals keep landing — every blocked send sees EINTR at least once.
  std::this_thread::sleep_for(milliseconds(20));
  for (int i = 0; i < 20; ++i) {
    pthread_kill(sender.native_handle(), SIGUSR1);
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  std::string received;
  std::thread signaler([&] { SignalUntilDone(sender, done); });
  char buf[8192];
  while (received.size() < payload.size()) {
    auto n = pair.server.ReadSome(buf, sizeof(buf));
    ASSERT_TRUE(n.ok()) << n.status();
    if (*n == 0) break;
    received.append(buf, *n);
  }
  sender.join();
  signaler.join();
  ASSERT_EQ(received.size(), payload.size());
  EXPECT_TRUE(received == payload) << "EINTR retry corrupted the stream";
}

TEST(NetPartialIo, ReadSomeAccumulatesShortReads) {
  LoopbackPair pair = MakePair();
  int one = 1;
  ASSERT_EQ(setsockopt(pair.client.fd(), IPPROTO_TCP, TCP_NODELAY, &one,
                       sizeof(one)),
            0);
  const std::string payload = Pattern(9973);  // prime: never chunk-aligned

  // Dribble the payload in 7-byte writes with pauses, so the reader's
  // recv returns whatever fragments have arrived — the caller-side
  // accumulation contract ("0 means EOF, anything else is a fragment").
  std::thread writer([&] {
    for (size_t off = 0; off < payload.size(); off += 7) {
      size_t len = std::min<size_t>(7, payload.size() - off);
      ASSERT_TRUE(pair.client.SendAll(payload.substr(off, len)).ok());
      if (off % 1400 == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
    pair.client.Close();  // orderly EOF terminates the read loop
  });

  std::string received;
  size_t reads = 0;
  char buf[65536];
  while (true) {
    auto n = pair.server.ReadSome(buf, sizeof(buf));
    ASSERT_TRUE(n.ok()) << n.status();
    if (*n == 0) break;
    received.append(buf, *n);
    ++reads;
  }
  writer.join();
  EXPECT_EQ(received, payload);
  // With 1426 paced writes the stream cannot arrive in a single recv.
  EXPECT_GT(reads, 1u);
}

TEST(NetPartialIo, RecvTimeoutSurfacesAsResourceExhausted) {
  LoopbackPair pair = MakePair();
  ASSERT_TRUE(pair.server.SetRecvTimeout(milliseconds(50)).ok());
  char buf[16];
  auto n = pair.server.ReadSome(buf, sizeof(buf));
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), StatusCode::kResourceExhausted) << n.status();
}

}  // namespace
}  // namespace mdqa::net
