#include "datalog/parser.h"

#include "datalog/chase.h"

#include <gtest/gtest.h>

namespace mdqa::datalog {
namespace {

TEST(Parser, GroundFacts) {
  auto p = Parser::ParseProgram(
      "Ward(\"W1\").\n"
      "UnitWard(\"Standard\", \"W1\").\n"
      "Score(1, 2.5, bob).\n");
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->facts().size(), 3u);
  EXPECT_TRUE(p->rules().empty());
  const Vocabulary& v = *p->vocab();
  // Lowercase bare identifiers are string constants.
  EXPECT_EQ(v.AtomToString(p->facts()[2]), "Score(1, 2.5, \"bob\")");
}

TEST(Parser, PlainRule) {
  auto p = Parser::ParseProgram("Anc(X, Y) :- Par(X, Y).");
  ASSERT_TRUE(p.ok()) << p.status();
  ASSERT_EQ(p->rules().size(), 1u);
  const Rule& r = p->rules()[0];
  EXPECT_TRUE(r.IsTgd());
  EXPECT_TRUE(r.IsPlainDatalog());
  EXPECT_EQ(r.head.size(), 1u);
  EXPECT_EQ(r.body.size(), 1u);
}

TEST(Parser, ArrowSynonym) {
  auto p = Parser::ParseProgram("A(X) <- B(X).");
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->rules().size(), 1u);
}

TEST(Parser, ExistentialVariablesAreImplicit) {
  auto p = Parser::ParseProgram("Shifts(W, D, N, Z) :- Ws(U, D, N), E(U, W).");
  ASSERT_TRUE(p.ok()) << p.status();
  const Rule& r = p->rules()[0];
  auto exist = r.ExistentialVariables();
  ASSERT_EQ(exist.size(), 1u);
  EXPECT_EQ(p->vocab()->VariableName(exist[0]), "Z");
}

TEST(Parser, MultiAtomHeadForm10) {
  auto p = Parser::ParseProgram(
      "InstitutionUnit(I, U), PatientUnit(U, D, P) :- Discharge(I, D, P).");
  ASSERT_TRUE(p.ok()) << p.status();
  const Rule& r = p->rules()[0];
  EXPECT_EQ(r.head.size(), 2u);
  EXPECT_EQ(r.ExistentialVariables().size(), 1u);
}

TEST(Parser, NegativeConstraint) {
  auto p = Parser::ParseProgram("! :- P(X), Q(X).");
  ASSERT_TRUE(p.ok()) << p.status();
  const Rule& r = p->rules()[0];
  EXPECT_TRUE(r.IsConstraint());
  EXPECT_TRUE(r.head.empty());
  EXPECT_EQ(r.body.size(), 2u);
}

TEST(Parser, Egd) {
  auto p = Parser::ParseProgram("T = T2 :- Th(W, T), Th(W2, T2), U(W, W2).");
  ASSERT_TRUE(p.ok()) << p.status();
  const Rule& r = p->rules()[0];
  EXPECT_TRUE(r.IsEgd());
  EXPECT_TRUE(r.egd_lhs.IsVariable());
  EXPECT_TRUE(r.egd_rhs.IsVariable());
}

TEST(Parser, BodyEqualityIsComparisonNotEgd) {
  auto p = Parser::ParseProgram("Q2(X) :- P(X, Y), Y = \"yes\".");
  ASSERT_TRUE(p.ok()) << p.status();
  const Rule& r = p->rules()[0];
  EXPECT_TRUE(r.IsTgd());
  ASSERT_EQ(r.comparisons.size(), 1u);
  EXPECT_EQ(r.comparisons[0].op, CmpOp::kEq);
}

TEST(Parser, AllComparisonOperators) {
  auto p = Parser::ParseProgram(
      "Q2(X) :- P(X), X = 1.\n"
      "Q3(X) :- P(X), X != 1.\n"
      "Q4(X) :- P(X), X < 1.\n"
      "Q5(X) :- P(X), X <= 1.\n"
      "Q6(X) :- P(X), X > 1.\n"
      "Q7(X) :- P(X), X >= 1.\n");
  ASSERT_TRUE(p.ok()) << p.status();
  ASSERT_EQ(p->rules().size(), 6u);
  EXPECT_EQ(p->rules()[0].comparisons[0].op, CmpOp::kEq);
  EXPECT_EQ(p->rules()[1].comparisons[0].op, CmpOp::kNe);
  EXPECT_EQ(p->rules()[2].comparisons[0].op, CmpOp::kLt);
  EXPECT_EQ(p->rules()[3].comparisons[0].op, CmpOp::kLe);
  EXPECT_EQ(p->rules()[4].comparisons[0].op, CmpOp::kGt);
  EXPECT_EQ(p->rules()[5].comparisons[0].op, CmpOp::kGe);
}

TEST(Parser, SemicolonIsCosmeticComma) {
  // The paper writes R(ē; ā) separating categorical from plain attributes.
  auto p = Parser::ParseProgram("PatientWard(\"W1\", \"Sep/5\"; \"Tom\").");
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->facts()[0].arity(), 3u);
}

TEST(Parser, CommentsAndWhitespace) {
  auto p = Parser::ParseProgram(
      "% a comment\n"
      "# another\n"
      "  P(X) :- Q(X). % trailing\n");
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->rules().size(), 1u);
}

TEST(Parser, AnonymousVariableIsFreshPerOccurrence) {
  auto p = Parser::ParseProgram("P2(X) :- Q(X, _, _).");
  ASSERT_TRUE(p.ok()) << p.status();
  const Atom& q = p->rules()[0].body[0];
  ASSERT_EQ(q.arity(), 3u);
  EXPECT_TRUE(q.terms[1].IsVariable());
  EXPECT_TRUE(q.terms[2].IsVariable());
  EXPECT_NE(q.terms[1], q.terms[2]);
}

TEST(Parser, QuotedStringsWithEscapes) {
  auto p = Parser::ParseProgram("P(\"a \\\"quote\\\" b\").");
  ASSERT_TRUE(p.ok()) << p.status();
  const Vocabulary& v = *p->vocab();
  EXPECT_EQ(v.ConstantValue(p->facts()[0].terms[0].id()).AsString(),
            "a \"quote\" b");
}

TEST(Parser, NumbersIncludingNegativeAndFloat) {
  auto p = Parser::ParseProgram("P(-3, 38.2, +7).");
  ASSERT_TRUE(p.ok()) << p.status();
  const Vocabulary& v = *p->vocab();
  EXPECT_EQ(v.ConstantValue(p->facts()[0].terms[0].id()).AsInt(), -3);
  EXPECT_DOUBLE_EQ(v.ConstantValue(p->facts()[0].terms[1].id()).AsDouble(),
                   38.2);
  EXPECT_EQ(v.ConstantValue(p->facts()[0].terms[2].id()).AsInt(), 7);
}

TEST(Parser, StatementPeriodVersusDecimalPoint) {
  auto p = Parser::ParseProgram("P(1).Q(2.5).");
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->facts().size(), 2u);
}

TEST(Parser, ArityIsEnforcedAcrossStatements) {
  auto p = Parser::ParseProgram("P(1, 2). Q(X) :- P(X).");
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kInvalidArgument);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  auto p = Parser::ParseProgram("P(1).\nQ(,).\n");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("line 2"), std::string::npos);
}

TEST(Parser, RejectsUnterminatedString) {
  EXPECT_FALSE(Parser::ParseProgram("P(\"oops).").ok());
}

TEST(Parser, RejectsMissingPeriod) {
  EXPECT_FALSE(Parser::ParseProgram("P(X) :- Q(X)").ok());
}

TEST(Parser, RejectsBodylessConstraint) {
  EXPECT_FALSE(Parser::ParseProgram("! :- X = 1.").ok());
}

TEST(Parser, RejectsEgdOnConstants) {
  // EGD head must equate two body variables.
  EXPECT_FALSE(Parser::ParseProgram("X = 1 :- P(X).").ok());
}

TEST(Parser, ParseQuery) {
  Vocabulary vocab;
  auto q = Parser::ParseQuery(
      "Q(T, V) :- Meas(T, P, V), P = \"Tom\", T >= 100.", &vocab);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->answer.size(), 2u);
  EXPECT_EQ(q->body.size(), 1u);
  EXPECT_EQ(q->comparisons.size(), 2u);
  EXPECT_EQ(q->name, "Q");
}

TEST(Parser, ParseBooleanQuery) {
  Vocabulary vocab;
  auto q = Parser::ParseQuery("Q() :- P(X, Y).", &vocab);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->IsBoolean());
}

TEST(Parser, QueryAnswerVariablesMustOccurInBody) {
  Vocabulary vocab;
  EXPECT_FALSE(Parser::ParseQuery("Q(Z) :- P(X).", &vocab).ok());
}

TEST(Parser, ParseGroundAtom) {
  Vocabulary vocab;
  auto a = Parser::ParseGroundAtom("P(\"x\", 3)", &vocab);
  ASSERT_TRUE(a.ok()) << a.status();
  EXPECT_EQ(a->arity(), 2u);
  EXPECT_FALSE(Parser::ParseGroundAtom("P(X)", &vocab).ok());
}

TEST(Parser, RoundTripThroughToString) {
  const char* text =
      "PatientUnit(U, D, P) :- PatientWard(W, D, P), UnitWard(U, W).\n"
      "T = T2 :- Th(W, T), Th(W2, T2), UW(U, W), UW(U, W2).\n"
      "! :- PW(W), UW(\"Intensive\", W).\n"
      "PW(\"W1\").\n";
  auto p1 = Parser::ParseProgram(text);
  ASSERT_TRUE(p1.ok()) << p1.status();
  std::string printed = p1->ToString();
  auto p2 = Parser::ParseProgram(printed);
  ASSERT_TRUE(p2.ok()) << "reparse failed on:\n" << printed << "\n"
                       << p2.status();
  EXPECT_EQ(p2->ToString(), printed);
}

TEST(Parser, NullLiteralsRoundTrip) {
  // `_nK` is the serialized spelling of labeled null ⊥_K.
  auto p = Parser::ParseProgram("Shifts(\"W2\", _n0, _n3).");
  ASSERT_TRUE(p.ok()) << p.status();
  const Atom& f = p->facts()[0];
  EXPECT_TRUE(f.terms[1].IsNull());
  EXPECT_EQ(f.terms[1].id(), 0u);
  EXPECT_EQ(f.terms[2].id(), 3u);
  // Fresh nulls minted afterwards never collide with parsed ones.
  EXPECT_GE(p->mutable_vocab()->FreshNull().id(), 4u);
  // And the printed form re-parses identically.
  auto p2 = Parser::ParseProgram(p->ToString());
  ASSERT_TRUE(p2.ok()) << p2.status();
  EXPECT_EQ(p2->ToString(), p->ToString());
}

TEST(Parser, UnderscoreNamesThatAreNotNullsStayVariables) {
  auto p = Parser::ParseProgram("P(_name, _n, _n2x) :- Q(_name, _n, _n2x).");
  ASSERT_TRUE(p.ok()) << p.status();
  for (Term t : p->rules()[0].body[0].terms) {
    EXPECT_TRUE(t.IsVariable());
  }
}

TEST(Parser, ChasedInstanceSerializationRoundTrips) {
  auto p = Parser::ParseProgram(
      "Person(\"ann\").\n"
      "HasParent(X, Z) :- Person(X).\n");
  ASSERT_TRUE(p.ok());
  Instance inst = Instance::FromProgram(*p);
  ASSERT_TRUE(Chase::Run(*p, &inst, ChaseOptions()).ok());
  std::string serialized = inst.ToString();
  EXPECT_NE(serialized.find("_n0"), std::string::npos);
  auto reloaded = Parser::ParseProgram(serialized);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status() << "\n" << serialized;
  Instance inst2 = Instance::FromProgram(*reloaded);
  EXPECT_EQ(inst2.ToString(), serialized);
}

TEST(Parser, ParseIntoSharesVocabulary) {
  Program program;
  ASSERT_TRUE(Parser::ParseInto("P(\"a\").", &program).ok());
  ASSERT_TRUE(Parser::ParseInto("Q2(X) :- P(X).", &program).ok());
  EXPECT_EQ(program.facts().size(), 1u);
  EXPECT_EQ(program.rules().size(), 1u);
  // Same predicate id across calls.
  EXPECT_EQ(program.facts()[0].predicate,
            program.rules()[0].body[0].predicate);
}

TEST(ParserSpans, FactsRulesAndAtomsCarryLineAndColumn) {
  auto p = Parser::ParseProgram(
      "Par(\"ann\", \"bob\").\n"
      "Anc(X, Y) :- Par(X, Y).\n"
      "  Anc(X, Z) :- Anc(X, Y), Par(Y, Z).\n");
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->facts()[0].span, (SourceSpan{1, 1}));
  ASSERT_EQ(p->rules().size(), 2u);
  EXPECT_EQ(p->rules()[0].span, (SourceSpan{2, 1}));
  EXPECT_EQ(p->rules()[0].body[0].span, (SourceSpan{2, 14}));
  EXPECT_EQ(p->rules()[1].span, (SourceSpan{3, 3}));  // indentation counts
  EXPECT_EQ(p->rules()[1].body[1].span, (SourceSpan{3, 27}));
}

TEST(ParserSpans, SpansDoNotAffectEquality) {
  auto a = Parser::ParseProgram("P(\"x\").");
  auto b = Parser::ParseProgram("\n\n   P(\"x\").");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->facts()[0].span, b->facts()[0].span);
  EXPECT_EQ(a->facts()[0], b->facts()[0]);
}

TEST(ParseReportTest, SyntaxErrorKindAndSpan) {
  Program program;
  ParseReport report;
  Status s = Parser::ParseInto("P(X :- Q(X).", &program, &report);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(report.error_kind, ParseReport::ErrorKind::kSyntax);
  EXPECT_EQ(report.error_span, (SourceSpan{1, 5}));
}

TEST(ParseReportTest, ArityErrorKindAndSpan) {
  Program program;
  ParseReport report;
  Status s =
      Parser::ParseInto("P(\"a\").\nP(\"a\", \"b\").", &program, &report);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(report.error_kind, ParseReport::ErrorKind::kArity);
  EXPECT_EQ(report.error_span, (SourceSpan{2, 1}));
}

TEST(ParseReportTest, ValidationErrorKindAndSpan) {
  Program program;
  ParseReport report;
  Status s = Parser::ParseInto("P(\"a\", \"b\").\nX = Y :- P(X, X2).",
                               &program, &report);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(report.error_kind, ParseReport::ErrorKind::kValidation);
  EXPECT_EQ(report.error_span, (SourceSpan{2, 1}));
}

TEST(ParseReportTest, DuplicateRuleDroppedWithIssue) {
  Program program;
  ParseReport report;
  Status s = Parser::ParseInto(
      "P(\"a\").\nQ(X) :- P(X).\nQ(X) :- P(X).\nQ(X) :- P(X), P(X).",
      &program, &report);
  ASSERT_TRUE(s.ok()) << s;
  // The literal duplicate is dropped; the structurally different rule
  // (even if logically equivalent) is kept.
  EXPECT_EQ(program.rules().size(), 2u);
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].kind, ParseIssue::Kind::kDuplicateRule);
  EXPECT_EQ(report.issues[0].span, (SourceSpan{3, 1}));
  EXPECT_NE(report.issues[0].message.find("duplicate rule"),
            std::string::npos);
}

TEST(ParseReportTest, DuplicateFactsAreNotDeduplicated) {
  // Fact dedup is Program/Instance business (sets), not a lint issue.
  Program program;
  ParseReport report;
  ASSERT_TRUE(
      Parser::ParseInto("P(\"a\").\nP(\"a\").", &program, &report).ok());
  EXPECT_TRUE(report.issues.empty());
}

}  // namespace
}  // namespace mdqa::datalog
