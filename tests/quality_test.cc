#include "quality/context.h"

#include <gtest/gtest.h>

#include "md/dimension.h"
#include "quality/assessor.h"
#include "scenarios/hospital.h"
#include "quality/measures.h"

namespace mdqa::quality {
namespace {

using md::CategoricalAttribute;
using md::CategoricalRelation;
using md::DimensionBuilder;

Relation MakeRelation(const std::string& name, size_t arity,
                      const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::string> attrs;
  for (size_t i = 0; i < arity; ++i) attrs.push_back("a" + std::to_string(i));
  Relation r(RelationSchema::Create(name, attrs).value());
  for (const auto& row : rows) EXPECT_TRUE(r.InsertText(row).ok());
  return r;
}

TEST(Measures, PerfectQuality) {
  Relation d = MakeRelation("D", 1, {{"a"}, {"b"}});
  Relation q = MakeRelation("Dq", 1, {{"a"}, {"b"}});
  auto m = Measure(d, q);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->precision, 1.0);
  EXPECT_DOUBLE_EQ(m->recall, 1.0);
  EXPECT_DOUBLE_EQ(m->f1, 1.0);
}

TEST(Measures, PartialOverlap) {
  Relation d = MakeRelation("D", 1, {{"a"}, {"b"}, {"c"}, {"d"}});
  Relation q = MakeRelation("Dq", 1, {{"a"}, {"b"}});
  auto m = Measure(d, q);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->common, 2u);
  EXPECT_DOUBLE_EQ(m->precision, 0.5);
  EXPECT_DOUBLE_EQ(m->recall, 1.0);
  EXPECT_NEAR(m->f1, 2 * 0.5 / 1.5, 1e-12);
}

TEST(Measures, QualityVersionMayAddTuples) {
  // Data completion (downward navigation) can make D^q larger than D.
  Relation d = MakeRelation("D", 1, {{"a"}});
  Relation q = MakeRelation("Dq", 1, {{"a"}, {"new1"}, {"new2"}});
  auto m = Measure(d, q);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->precision, 1.0);
  EXPECT_NEAR(m->recall, 1.0 / 3.0, 1e-12);
}

TEST(Measures, EmptyRelationsAreVacuouslyPerfect) {
  Relation d = MakeRelation("D", 1, {});
  Relation q = MakeRelation("Dq", 1, {});
  auto m = Measure(d, q);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->precision, 1.0);
  EXPECT_DOUBLE_EQ(m->recall, 1.0);
}

TEST(Measures, DisjointIsZero) {
  Relation d = MakeRelation("D", 1, {{"a"}});
  Relation q = MakeRelation("Dq", 1, {{"b"}});
  auto m = Measure(d, q);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->precision, 0.0);
  EXPECT_DOUBLE_EQ(m->f1, 0.0);
}

TEST(Measures, ArityMismatchRejected) {
  Relation d = MakeRelation("D", 1, {{"a"}});
  Relation q = MakeRelation("Dq", 2, {{"a", "b"}});
  EXPECT_FALSE(Measure(d, q).ok());
}

TEST(Measures, ToStringMentionsRelation) {
  Relation d = MakeRelation("Sales", 1, {{"a"}});
  Relation q = MakeRelation("Salesq", 1, {{"a"}});
  auto m = Measure(d, q);
  ASSERT_TRUE(m.ok());
  EXPECT_NE(m->ToString().find("Sales"), std::string::npos);
}

// A minimal context: one dimension, one categorical relation, one
// original relation with a quality version defined through navigation.
std::shared_ptr<core::MdOntology> TinyOntology() {
  auto ontology = std::make_shared<core::MdOntology>();
  auto dim = DimensionBuilder("Geo")
                 .Category("City")
                 .Category("Region")
                 .Edge("City", "Region")
                 .Member("City", "c1")
                 .Member("City", "c2")
                 .Member("Region", "good")
                 .Member("Region", "bad")
                 .Link("c1", "good")
                 .Link("c2", "bad")
                 .Build()
                 .value();
  EXPECT_TRUE(ontology->AddDimension(std::move(dim)).ok());
  auto stores = CategoricalRelation::Create(
      "StoreCity", {CategoricalAttribute::Plain("Store"),
                    CategoricalAttribute::Categorical("City", "Geo", "City")});
  EXPECT_TRUE(stores.ok());
  EXPECT_TRUE(stores->InsertText({"s1", "c1"}).ok());
  EXPECT_TRUE(stores->InsertText({"s2", "c2"}).ok());
  EXPECT_TRUE(
      ontology->AddCategoricalRelation(std::move(stores).value()).ok());
  return ontology;
}

QualityContext TinyContext() {
  QualityContext context(TinyOntology());
  Database db;
  EXPECT_TRUE(db.InsertText("Sales", {"s1", "10"}).ok());
  EXPECT_TRUE(db.InsertText("Sales", {"s2", "20"}).ok());
  EXPECT_TRUE(context.SetDatabase(std::move(db)).ok());
  EXPECT_TRUE(context.MapRelationToContext("Sales", "SalesC").ok());
  // Quality tuples: sales from stores in the "good" region.
  EXPECT_TRUE(context
                  .DefineQualityVersion(
                      "Sales", "SalesQ",
                      "SalesQ(S, A) :- SalesC(S, A), StoreCity(S, C), "
                      "RegionCity(\"good\", C).")
                  .ok());
  return context;
}

TEST(QualityContext, DatabaseNameCollisionRejected) {
  QualityContext context(TinyOntology());
  Database db;
  ASSERT_TRUE(db.InsertText("StoreCity", {"x", "y"}).ok());
  EXPECT_EQ(context.SetDatabase(std::move(db)).code(),
            StatusCode::kInvalidArgument);
}

TEST(QualityContext, MappingRequiresExistingRelation) {
  QualityContext context(TinyOntology());
  EXPECT_EQ(context.MapRelationToContext("Nope", "NopeC").code(),
            StatusCode::kNotFound);
}

TEST(QualityContext, FootprintMappingInventsNulls) {
  // The paper's footnote 4: the contextual relation is broader than the
  // original; unknown extra attributes become labeled nulls that an EGD
  // can later pin down.
  QualityContext context(TinyOntology());
  Database db;
  ASSERT_TRUE(db.InsertText("Sales", {"s1", "10"}).ok());
  ASSERT_TRUE(context.SetDatabase(std::move(db)).ok());
  ASSERT_TRUE(
      context.MapRelationAsFootprint("Sales", "SalesWide", 1).ok());
  // Pin the unknown third attribute via an EGD against an auditor table.
  ASSERT_TRUE(context.AddContextualRules(
      "Auditor(\"s1\", \"alice\").\n"
      "A = B :- SalesWide(S, V, A), Auditor(S, B).\n").ok());
  auto raw = context.RawAnswers("Q(S, V, A) :- SalesWide(S, V, A).");
  ASSERT_TRUE(raw.ok()) << raw.status();
  ASSERT_EQ(raw->size(), 1u);
  // The EGD resolved the null to the auditor constant: a certain answer.
  EXPECT_FALSE(raw->tuples[0][2].IsNull());
}

TEST(QualityContext, FootprintWithoutResolutionStaysUncertain) {
  QualityContext context(TinyOntology());
  Database db;
  ASSERT_TRUE(db.InsertText("Sales", {"s1", "10"}).ok());
  ASSERT_TRUE(context.SetDatabase(std::move(db)).ok());
  ASSERT_TRUE(
      context.MapRelationAsFootprint("Sales", "SalesWide", 2).ok());
  // Certain answers on the full width are empty (nulls)…
  auto full = context.RawAnswers("Q(S, V, A, B) :- SalesWide(S, V, A, B).");
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(full->empty());
  // …but the footprint projection is certain.
  auto proj = context.RawAnswers("Q(S, V) :- SalesWide(S, V, A, B).");
  ASSERT_TRUE(proj.ok());
  EXPECT_EQ(proj->size(), 1u);
}

TEST(QualityContext, ContextualRulesValidatedEagerly) {
  QualityContext context(TinyOntology());
  EXPECT_FALSE(context.AddContextualRules("broken(.").ok());
  EXPECT_TRUE(context.AddContextualRules("Note(X) :- City(X).").ok());
}

TEST(QualityContext, QualityVersionRegistration) {
  QualityContext context = TinyContext();
  EXPECT_EQ(context.QualityPredicateOf("Sales").value(), "SalesQ");
  EXPECT_FALSE(context.QualityPredicateOf("Other").ok());
  EXPECT_EQ(context.AssessedRelations(),
            std::vector<std::string>{"Sales"});
  // Double definition rejected.
  EXPECT_EQ(context
                .DefineQualityVersion("Sales", "Other",
                                      "Other(S, A) :- SalesC(S, A).")
                .code(),
            StatusCode::kAlreadyExists);
}

TEST(QualityContext, ComputeQualityVersion) {
  QualityContext context = TinyContext();
  auto quality = context.ComputeQualityVersion("Sales");
  ASSERT_TRUE(quality.ok()) << quality.status();
  EXPECT_EQ(quality->size(), 1u);
  EXPECT_TRUE(quality->Contains({Value::Str("s1"), Value::Int(10)}));
  EXPECT_EQ(quality->name(), "SalesQ");
  // Attribute names inherited from the original.
  EXPECT_EQ(quality->schema().attribute(0).name, "a0");
}

TEST(QualityContext, CleanVersusRawAnswers) {
  QualityContext context = TinyContext();
  auto raw = context.RawAnswers("Q(S) :- Sales(S, A).");
  ASSERT_TRUE(raw.ok()) << raw.status();
  EXPECT_EQ(raw->size(), 2u);
  auto clean = context.CleanAnswers("Q(S) :- Sales(S, A).");
  ASSERT_TRUE(clean.ok()) << clean.status();
  EXPECT_EQ(clean->size(), 1u);
}

TEST(QualityContext, CleanAnswersLeaveOtherPredicatesAlone) {
  QualityContext context = TinyContext();
  // StoreCity has no quality version; it is used as-is in Q^q.
  auto clean = context.CleanAnswers(
      "Q(S, C) :- Sales(S, A), StoreCity(S, C).");
  ASSERT_TRUE(clean.ok()) << clean.status();
  EXPECT_EQ(clean->size(), 1u);
}

TEST(QualityContext, ExplainQualityTuple) {
  QualityContext context = TinyContext();
  auto explanation = context.ExplainQualityTuple(
      "Sales", {Value::Str("s1"), Value::Int(10)});
  ASSERT_TRUE(explanation.ok()) << explanation.status();
  // The tree shows the quality rule and its extensional support.
  EXPECT_NE(explanation->find("SalesQ(\"s1\", 10)"), std::string::npos);
  EXPECT_NE(explanation->find("StoreCity(\"s1\", \"c1\")  [edb]"),
            std::string::npos);
  EXPECT_NE(explanation->find("RegionCity(\"good\", \"c1\")  [edb]"),
            std::string::npos);
  // A dirty tuple has no quality derivation.
  auto none = context.ExplainQualityTuple(
      "Sales", {Value::Str("s2"), Value::Int(20)});
  ASSERT_FALSE(none.ok());
  EXPECT_EQ(none.status().code(), StatusCode::kNotFound);
}

TEST(QualityContext, ExplainDirtyTuple) {
  QualityContext context = TinyContext();
  // s2 is in the "bad" region: the quality rule blocks on the
  // RegionCity("good", c2) edge atom.
  auto why = context.ExplainDirtyTuple(
      "Sales", {Value::Str("s2"), Value::Int(20)});
  ASSERT_TRUE(why.ok()) << why.status();
  EXPECT_NE(why->find("not derivable"), std::string::npos);
  EXPECT_NE(why->find("blocked at: RegionCity(\"good\", \"c2\")"),
            std::string::npos);
  // Asking why-not about a quality tuple is an error.
  auto wrong = context.ExplainDirtyTuple(
      "Sales", {Value::Str("s1"), Value::Int(10)});
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kFailedPrecondition);
}

TEST(QualityContext, WorksWithWsEngine) {
  QualityContext context = TinyContext();
  auto quality =
      context.ComputeQualityVersion("Sales", qa::Engine::kDeterministicWs);
  ASSERT_TRUE(quality.ok()) << quality.status();
  EXPECT_EQ(quality->size(), 1u);
}

TEST(QualityContext, WorksWithRewritingEngine) {
  QualityContext context = TinyContext();
  auto quality =
      context.ComputeQualityVersion("Sales", qa::Engine::kRewriting);
  ASSERT_TRUE(quality.ok()) << quality.status();
  EXPECT_EQ(quality->size(), 1u);
}

TEST(PreparedContext, ChaseOnceQueryMany) {
  QualityContext context = TinyContext();
  auto prepared = context.Prepare();
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  // Same results as the per-call API...
  auto quality = prepared->QualityVersion("Sales");
  ASSERT_TRUE(quality.ok()) << quality.status();
  EXPECT_EQ(quality->size(), 1u);
  EXPECT_EQ(quality->name(), "SalesQ");
  auto clean = prepared->CleanAnswers("Q(S) :- Sales(S, A).");
  ASSERT_TRUE(clean.ok()) << clean.status();
  EXPECT_EQ(clean->size(), 1u);
  auto raw = prepared->RawAnswers("Q(S) :- Sales(S, A).");
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw->size(), 2u);
  // ...off one materialization.
  EXPECT_TRUE(prepared->chase_stats().reached_fixpoint);
  EXPECT_GT(prepared->instance().TotalFacts(), 0u);
  EXPECT_FALSE(prepared->QualityVersion("Nope").ok());
}

TEST(PreparedContext, SurfacesInconsistency) {
  auto ontology = TinyOntology();
  ASSERT_TRUE(ontology
                  ->AddDimensionalConstraint(
                      "! :- StoreCity(S, C), RegionCity(\"bad\", C).")
                  .ok());
  QualityContext context(ontology);
  Database db;
  ASSERT_TRUE(db.InsertText("Sales", {"s1", "10"}).ok());
  ASSERT_TRUE(context.SetDatabase(std::move(db)).ok());
  auto prepared = context.Prepare();
  ASSERT_FALSE(prepared.ok());
  EXPECT_EQ(prepared.status().code(), StatusCode::kInconsistent);
}

TEST(PreparedContext, MatchesPerCallApiOnHospital) {
  auto context =
      scenarios::BuildHospitalContext(scenarios::HospitalOptions{});
  ASSERT_TRUE(context.ok());
  auto prepared = context->Prepare();
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  auto via_prepared = prepared->QualityVersion("Measurements");
  ASSERT_TRUE(via_prepared.ok());
  auto via_context = context->ComputeQualityVersion("Measurements");
  ASSERT_TRUE(via_context.ok());
  EXPECT_EQ(via_prepared->SortedRows(), via_context->SortedRows());
}

TEST(Assessor, EndToEndReport) {
  QualityContext context = TinyContext();
  Assessor assessor(&context);
  auto report = assessor.Assess();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->referential_check.ok());
  EXPECT_TRUE(report->constraint_check.ok());
  ASSERT_EQ(report->per_relation.size(), 1u);
  EXPECT_DOUBLE_EQ(report->per_relation[0].precision, 0.5);
  EXPECT_DOUBLE_EQ(report->overall_precision, 0.5);
  EXPECT_NE(report->ToString().find("precision"), std::string::npos);
}

TEST(Assessor, ConstraintViolationIsAFindingNotAFailure) {
  auto ontology = TinyOntology();
  ASSERT_TRUE(ontology
                  ->AddDimensionalConstraint(
                      "! :- StoreCity(S, C), RegionCity(\"bad\", C).")
                  .ok());
  QualityContext context(ontology);
  Database db;
  ASSERT_TRUE(db.InsertText("Sales", {"s1", "10"}).ok());
  ASSERT_TRUE(context.SetDatabase(std::move(db)).ok());
  ASSERT_TRUE(context.MapRelationToContext("Sales", "SalesC").ok());
  ASSERT_TRUE(context
                  .DefineQualityVersion("Sales", "SalesQ",
                                        "SalesQ(S, A) :- SalesC(S, A).")
                  .ok());
  Assessor assessor(&context);
  auto report = assessor.Assess();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->constraint_check.code(), StatusCode::kInconsistent);
}

}  // namespace
}  // namespace mdqa::quality
