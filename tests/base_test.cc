#include <gtest/gtest.h>

#include "base/intern.h"
#include "base/result.h"
#include "base/status.h"
#include "base/string_util.h"

namespace mdqa {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad thing");
}

TEST(Status, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kFailedPrecondition,
        StatusCode::kInconsistent, StatusCode::kResourceExhausted,
        StatusCode::kCancelled, StatusCode::kUnimplemented,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status UsesReturnIfError(int x) {
  MDQA_RETURN_IF_ERROR(FailsWhenNegative(x));
  return Status::Ok();
}

TEST(Status, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  MDQA_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(Result, ValueAndStatusPaths) {
  Result<int> ok = Half(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);
  EXPECT_EQ(*ok, 5);

  Result<int> bad = Half(3);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(Result, AssignOrReturnChains) {
  Result<int> q = Quarter(12);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(*q, 3);
  EXPECT_FALSE(Quarter(10).ok());  // 10/2=5 is odd
  EXPECT_FALSE(Quarter(7).ok());
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(StringUtil, SplitKeepsEmptyPieces) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split(",a,", ','), (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtil, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y  "), "x y");
  EXPECT_EQ(StripWhitespace("\t\n"), "");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
}

TEST(StringUtil, Join) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("he", "hello"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(StringUtil, IsInteger) {
  EXPECT_TRUE(IsInteger("42"));
  EXPECT_TRUE(IsInteger("-7"));
  EXPECT_TRUE(IsInteger("+9"));
  EXPECT_FALSE(IsInteger(""));
  EXPECT_FALSE(IsInteger("-"));
  EXPECT_FALSE(IsInteger("4.2"));
  EXPECT_FALSE(IsInteger("x4"));
}

TEST(StringUtil, IsDouble) {
  EXPECT_TRUE(IsDouble("4.2"));
  EXPECT_TRUE(IsDouble("-0.5"));
  EXPECT_TRUE(IsDouble("1e3"));
  EXPECT_FALSE(IsDouble("42"));   // already integer
  EXPECT_FALSE(IsDouble("abc"));
  EXPECT_FALSE(IsDouble(""));
}

TEST(StringPool, InternIsIdempotentAndDense) {
  StringPool pool;
  uint32_t a = pool.Intern("alpha");
  uint32_t b = pool.Intern("beta");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(pool.Intern("alpha"), a);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.Get(a), "alpha");
  EXPECT_EQ(pool.Get(b), "beta");
}

TEST(StringPool, FindWithoutIntern) {
  StringPool pool;
  EXPECT_EQ(pool.Find("missing"), StringPool::kNotFound);
  pool.Intern("present");
  EXPECT_EQ(pool.Find("present"), 0u);
}

TEST(HashCombine, OrderSensitive) {
  size_t a = 0, b = 0;
  HashCombine(&a, 1);
  HashCombine(&a, 2);
  HashCombine(&b, 2);
  HashCombine(&b, 1);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace mdqa
