// Stratified negation: parsing, safety, stratification, evaluation in
// queries and rules, and the paper's form-(1) referential constraints
// expressed literally with `not K(e)`.

#include <gtest/gtest.h>

#include "core/md_ontology.h"
#include "datalog/analysis.h"
#include "datalog/chase.h"
#include "datalog/parser.h"
#include "md/categorical.h"
#include "md/dimension.h"
#include "qa/engines.h"

namespace mdqa::datalog {
namespace {

TEST(NegationParsing, NegatedBodyAtoms) {
  auto p = Parser::ParseProgram(
      "Clean(X) :- All(X), not Dirty(X).\n"
      "! :- Used(X), not Registered(X).\n");
  ASSERT_TRUE(p.ok()) << p.status();
  ASSERT_EQ(p->rules().size(), 2u);
  EXPECT_EQ(p->rules()[0].negated.size(), 1u);
  EXPECT_EQ(p->rules()[1].negated.size(), 1u);
  // Round trip.
  auto p2 = Parser::ParseProgram(p->ToString());
  ASSERT_TRUE(p2.ok()) << p2.status() << "\n" << p->ToString();
  EXPECT_EQ(p2->ToString(), p->ToString());
}

TEST(NegationParsing, NotAsConstantStillWorks) {
  // 'not' not followed by an atom is an ordinary lowercase constant.
  auto p = Parser::ParseProgram("P(not).\nQ2(X) :- P(X), X = not.\n");
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_TRUE(p->rules()[0].negated.empty());
}

TEST(NegationParsing, UnsafeNegationRejected) {
  // Z appears only under negation.
  auto p = Parser::ParseProgram("Q2(X) :- P(X), not R(Z).");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("unsafe"), std::string::npos);
}

TEST(NegationParsing, UnsafeQueryRejected) {
  Vocabulary vocab;
  EXPECT_FALSE(
      Parser::ParseQuery("Q(X) :- P(X), not R(Y).", &vocab).ok());
  EXPECT_TRUE(
      Parser::ParseQuery("Q(X) :- P(X), not R(X).", &vocab).ok());
}

TEST(Stratification, NegationFreeIsSingleStratum) {
  auto p = Parser::ParseProgram("B(X) :- A(X).\nC(X) :- B(X).\n");
  ASSERT_TRUE(p.ok());
  auto strata = StratifyProgram(*p);
  ASSERT_TRUE(strata.ok());
  for (const auto& [_, s] : *strata) EXPECT_EQ(s, 0);
}

TEST(Stratification, NegationRaisesStratum) {
  auto p = Parser::ParseProgram(
      "Dirty(X) :- Raw(X), Flag(X).\n"
      "Clean(X) :- Raw(X), not Dirty(X).\n");
  ASSERT_TRUE(p.ok());
  auto strata = StratifyProgram(*p);
  ASSERT_TRUE(strata.ok());
  uint32_t dirty = p->vocab()->FindPredicate("Dirty");
  uint32_t clean = p->vocab()->FindPredicate("Clean");
  EXPECT_LT(strata->at(dirty), strata->at(clean));
}

TEST(Stratification, NegativeCycleRejected) {
  auto p = Parser::ParseProgram(
      "A(X) :- U(X), not B(X).\n"
      "B(X) :- U(X), not A(X).\n");
  ASSERT_TRUE(p.ok());
  auto strata = StratifyProgram(*p);
  ASSERT_FALSE(strata.ok());
  EXPECT_NE(strata.status().message().find("not stratified"),
            std::string::npos);
}

TEST(Stratification, NegativeSelfLoopRejected) {
  auto p = Parser::ParseProgram("A(X) :- U(X), not A(X).");
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(StratifyProgram(*p).ok());
}

TEST(NegationEval, QueryLevelSetDifference) {
  auto p = Parser::ParseProgram("All(1). All(2). All(3). Bad(2).");
  ASSERT_TRUE(p.ok());
  Instance inst = Instance::FromProgram(*p);
  auto q = Parser::ParseQuery("Q(X) :- All(X), not Bad(X).",
                              p->mutable_vocab());
  ASSERT_TRUE(q.ok());
  CqEvaluator eval(inst);
  auto answers = eval.Answers(*q);
  ASSERT_TRUE(answers.ok()) << answers.status();
  EXPECT_EQ(answers->size(), 2u);
}

TEST(NegationEval, NegationOnDerivedPredicate) {
  auto p = Parser::ParseProgram(
      "Raw(1). Raw(2). Raw(3). Flag(2).\n"
      "Dirty(X) :- Raw(X), Flag(X).\n"
      "Clean(X) :- Raw(X), not Dirty(X).\n");
  ASSERT_TRUE(p.ok());
  Instance inst = Instance::FromProgram(*p);
  auto stats = Chase::Run(*p, &inst, ChaseOptions());
  ASSERT_TRUE(stats.ok()) << stats.status();
  uint32_t clean = p->vocab()->FindPredicate("Clean");
  EXPECT_EQ(inst.CountFacts(clean), 2u);
}

TEST(NegationEval, StratifiedThreeLevels) {
  auto p = Parser::ParseProgram(
      "Node(1). Node(2). Node(3). E(1, 2).\n"
      "HasOut(X) :- E(X, Y).\n"
      "Sink(X) :- Node(X), not HasOut(X).\n"
      "NonSink(X) :- Node(X), not Sink(X).\n");
  ASSERT_TRUE(p.ok());
  Instance inst = Instance::FromProgram(*p);
  ASSERT_TRUE(Chase::Run(*p, &inst, ChaseOptions()).ok());
  EXPECT_EQ(inst.CountFacts(p->vocab()->FindPredicate("Sink")), 2u);
  EXPECT_EQ(inst.CountFacts(p->vocab()->FindPredicate("NonSink")), 1u);
}

TEST(NegationEval, StratumOrderIndependentOfRuleOrder) {
  // Clean's rule listed before Dirty's: strata still force Dirty first.
  auto p = Parser::ParseProgram(
      "Raw(1). Raw(2). Flag(2).\n"
      "Clean(X) :- Raw(X), not Dirty(X).\n"
      "Dirty(X) :- Raw(X), Flag(X).\n");
  ASSERT_TRUE(p.ok());
  Instance inst = Instance::FromProgram(*p);
  ASSERT_TRUE(Chase::Run(*p, &inst, ChaseOptions()).ok());
  EXPECT_EQ(inst.CountFacts(p->vocab()->FindPredicate("Clean")), 1u);
}

TEST(NegationEval, NegationInNegativeConstraints) {
  auto p = Parser::ParseProgram(
      "Used(\"a\"). Registered(\"a\").\n"
      "! :- Used(X), not Registered(X).\n");
  ASSERT_TRUE(p.ok());
  Instance inst = Instance::FromProgram(*p);
  EXPECT_TRUE(Chase::Run(*p, &inst, ChaseOptions()).ok());

  auto bad = Parser::ParseProgram(
      "Used(\"a\").\n"
      "! :- Used(X), not Registered(X).\n");
  ASSERT_TRUE(bad.ok());
  Instance bad_inst = Instance::FromProgram(*bad);
  auto stats = Chase::Run(*bad, &bad_inst, ChaseOptions());
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInconsistent);
}

TEST(NegationEval, NullsAreNotConstants) {
  // A labeled null is never equal to a constant, so `not K(null)` holds
  // under closed-world reading.
  auto p = Parser::ParseProgram(
      "K(\"a\").\n"
      "P(\"x\").\n"
      "R(X, Z) :- P(X).\n");
  ASSERT_TRUE(p.ok());
  Instance inst = Instance::FromProgram(*p);
  ASSERT_TRUE(Chase::Run(*p, &inst, ChaseOptions()).ok());
  auto q = Parser::ParseQuery("Q(Z) :- R(X, Z), not K(Z).",
                              p->mutable_vocab());
  ASSERT_TRUE(q.ok());
  CqEvaluator eval(inst);
  auto answers = eval.Answers(*q);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 1u);
  EXPECT_TRUE((*answers)[0][0].IsNull());
}

TEST(NegationEngines, WsAndRewritingRejectNegation) {
  auto p = Parser::ParseProgram(
      "All(1). Bad(1).\n"
      "Clean(X) :- All(X), not Bad(X).\n");
  ASSERT_TRUE(p.ok());
  auto q = Parser::ParseQuery("Q(X) :- Clean(X).", p->mutable_vocab());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(qa::Answer(qa::Engine::kDeterministicWs, *p, *q).status().code(),
            StatusCode::kUnimplemented);
  EXPECT_EQ(qa::Answer(qa::Engine::kRewriting, *p, *q).status().code(),
            StatusCode::kUnimplemented);
  // The chase engine handles it.
  auto a = qa::Answer(qa::Engine::kChase, *p, *q);
  ASSERT_TRUE(a.ok()) << a.status();
  EXPECT_TRUE(a->empty());
}

}  // namespace
}  // namespace mdqa::datalog

namespace mdqa::core {
namespace {

TEST(NegationOntology, DimensionalRulesMustBePositive) {
  auto ontology = std::make_shared<MdOntology>();
  auto dim = md::DimensionBuilder("D")
                 .Category("Low")
                 .Category("High")
                 .Edge("Low", "High")
                 .Member("Low", "a")
                 .Member("High", "b")
                 .Link("a", "b")
                 .Build();
  ASSERT_TRUE(dim.ok());
  ASSERT_TRUE(ontology->AddDimension(std::move(dim).value()).ok());
  auto rel = md::CategoricalRelation::Create(
      "R", {md::CategoricalAttribute::Categorical("Low", "D", "Low")});
  ASSERT_TRUE(rel.ok());
  ASSERT_TRUE(ontology->AddCategoricalRelation(std::move(rel).value()).ok());
  Status s = ontology->AddDimensionalRule("R(X) :- R(X), not Low(X).");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(NegationOntology, Form1ConstraintsEmittedAndChecked) {
  auto ontology = std::make_shared<MdOntology>();
  auto dim = md::DimensionBuilder("D")
                 .Category("Low")
                 .Category("High")
                 .Edge("Low", "High")
                 .Member("Low", "a")
                 .Member("High", "b")
                 .Link("a", "b")
                 .Build();
  ASSERT_TRUE(dim.ok());
  ASSERT_TRUE(ontology->AddDimension(std::move(dim).value()).ok());
  auto rel = md::CategoricalRelation::Create(
      "R", {md::CategoricalAttribute::Categorical("Low", "D", "Low"),
            md::CategoricalAttribute::Plain("v")});
  ASSERT_TRUE(rel.ok());
  ASSERT_TRUE(rel->InsertText({"a", "1"}).ok());
  ASSERT_TRUE(rel->InsertText({"ghost", "2"}).ok());  // not a Low member
  ASSERT_TRUE(ontology->AddCategoricalRelation(std::move(rel).value()).ok());

  auto program = ontology->Compile();
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(ontology->EmitReferentialConstraints(&*program).ok());
  datalog::Instance inst = datalog::Instance::FromProgram(*program);
  Status s = datalog::Chase::CheckConstraints(*program, inst);
  EXPECT_EQ(s.code(), StatusCode::kInconsistent);
  EXPECT_NE(s.message().find("ghost"), std::string::npos);
  // The native validator agrees.
  EXPECT_EQ(ontology->ValidateReferential().code(),
            StatusCode::kInconsistent);
}

}  // namespace
}  // namespace mdqa::core
