// The row-vs-columnar differential harness: every scenario family is
// assessed under both physical layouts (AssessOptions::storage) at every
// thread count, and the rendered AssessmentReports must be byte-identical
// — ToString AND ToJson. The same gate runs across the seeded update
// stream: row and columnar sessions apply identical batches and their
// incremental Reassess reports must stay byte-identical after each one.
// This is the contract that lets the columnar store and the vectorized
// block-join executor (datalog/join.h) replace the legacy row store as
// the default without any observable change.
//
// Reproducing a failing cell: the test name carries (family, seed), e.g.
// Matrix/ColumnarDiff.FullAssessByteIdentical/deep_homogeneous_s2 is
// SpecFor(kDeepHomogeneous, 2). MDQA_SCENARIO_SEED=<n> pins the matrix
// to one seed; MDQA_SCENARIO_REDUCED=1 runs one seed per family (the
// TSan configuration of scripts/check.sh --columnar). See docs/testing.md.

#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "base/thread_pool.h"
#include "datalog/chase.h"
#include "datalog/instance.h"
#include "quality/assessor.h"
#include "testgen/scenario.h"

namespace mdqa::testgen {
namespace {

using datalog::StorageMode;

std::vector<uint32_t> MatrixSeeds() {
  if (const char* s = std::getenv("MDQA_SCENARIO_SEED")) {
    return {static_cast<uint32_t>(std::strtoul(s, nullptr, 10))};
  }
  if (std::getenv("MDQA_SCENARIO_REDUCED") != nullptr) return {1};
  return {1, 2, 3};
}

using Cell = std::tuple<ScenarioFamily, uint32_t>;

std::string CellName(const ::testing::TestParamInfo<Cell>& info) {
  std::string name = ScenarioFamilyToString(std::get<0>(info.param));
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_s" + std::to_string(std::get<1>(info.param));
}

class ColumnarDiff : public ::testing::TestWithParam<Cell> {
 protected:
  ScenarioSpec Spec() const {
    return SpecFor(std::get<0>(GetParam()), std::get<1>(GetParam()));
  }
};

// Full assessment: columnar serial is the baseline; row and columnar at
// 1/2/4 threads must all render the identical report.
TEST_P(ColumnarDiff, FullAssessByteIdentical) {
  auto scenario = ScenarioGenerator::Generate(Spec());
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  quality::Assessor assessor(&scenario->context);

  quality::AssessOptions baseline_options;
  baseline_options.storage = StorageMode::kColumnar;
  auto baseline = assessor.Assess(baseline_options);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  const std::string text = baseline->ToString();
  const std::string json = baseline->ToJson();

  for (StorageMode storage : {StorageMode::kRow, StorageMode::kColumnar}) {
    for (size_t threads : {1u, 2u, 4u}) {
      quality::AssessOptions options;
      options.storage = storage;
      ThreadPool pool(threads);
      if (threads > 1) options.pool = &pool;
      auto report = assessor.Assess(options);
      ASSERT_TRUE(report.ok())
          << datalog::StorageModeToString(storage) << " threads=" << threads
          << ": " << report.status();
      EXPECT_EQ(report->ToString(), text)
          << datalog::StorageModeToString(storage) << " threads=" << threads;
      EXPECT_EQ(report->ToJson(), json)
          << datalog::StorageModeToString(storage) << " threads=" << threads;
    }
  }
}

// The update stream: a row session and a columnar session apply the same
// batches; after every batch the incremental Reassess reports must match
// byte-for-byte, at every thread count. The sessions must also keep
// their storage mode across ApplyUpdate (both the Extend path and the
// deletion-forced full-re-chase fallback rebuild in the session's mode).
TEST_P(ColumnarDiff, IncrementalReassessByteIdentical) {
  auto scenario = ScenarioGenerator::Generate(Spec());
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  ASSERT_FALSE(scenario->updates.empty());
  quality::Assessor assessor(&scenario->context);

  datalog::ChaseOptions row_chase;
  row_chase.storage = StorageMode::kRow;
  auto row_prepared = scenario->context.Prepare(row_chase);
  ASSERT_TRUE(row_prepared.ok()) << row_prepared.status();
  auto col_prepared = scenario->context.Prepare();  // columnar default
  ASSERT_TRUE(col_prepared.ok()) << col_prepared.status();
  ASSERT_EQ(row_prepared->instance().storage_mode(), StorageMode::kRow);
  ASSERT_EQ(col_prepared->instance().storage_mode(), StorageMode::kColumnar);

  quality::AssessOptions row_options;
  row_options.storage = StorageMode::kRow;
  auto row_report = assessor.Assess(row_options);
  ASSERT_TRUE(row_report.ok()) << row_report.status();
  auto col_report = assessor.Assess();
  ASSERT_TRUE(col_report.ok()) << col_report.status();
  ASSERT_EQ(row_report->ToString(), col_report->ToString());

  quality::PreparedContext row_session = std::move(*row_prepared);
  quality::PreparedContext col_session = std::move(*col_prepared);
  quality::AssessmentReport row_previous = std::move(*row_report);
  quality::AssessmentReport col_previous = std::move(*col_report);
  for (size_t b = 0; b < scenario->updates.size(); ++b) {
    const ScenarioUpdate& update = scenario->updates[b];
    auto row_next = row_session.ApplyUpdate(update.batch);
    ASSERT_TRUE(row_next.ok()) << "batch " << b << ": " << row_next.status();
    auto col_next = col_session.ApplyUpdate(update.batch);
    ASSERT_TRUE(col_next.ok()) << "batch " << b << ": " << col_next.status();
    EXPECT_EQ(row_next->instance().storage_mode(), StorageMode::kRow);
    EXPECT_EQ(col_next->instance().storage_mode(), StorageMode::kColumnar);

    std::string baseline_text, baseline_json;
    for (size_t threads : {1u, 2u, 4u}) {
      quality::AssessOptions options;
      ThreadPool pool(threads);
      if (threads > 1) options.pool = &pool;
      auto row_re = assessor.Reassess(*row_next, row_previous, options);
      ASSERT_TRUE(row_re.ok()) << "batch " << b << ": " << row_re.status();
      auto col_re = assessor.Reassess(*col_next, col_previous, options);
      ASSERT_TRUE(col_re.ok()) << "batch " << b << ": " << col_re.status();
      if (threads == 1) {
        baseline_text = col_re->ToString();
        baseline_json = col_re->ToJson();
      }
      EXPECT_EQ(row_re->ToString(), baseline_text)
          << "batch " << b << " threads=" << threads;
      EXPECT_EQ(row_re->ToJson(), baseline_json)
          << "batch " << b << " threads=" << threads;
      EXPECT_EQ(col_re->ToString(), baseline_text)
          << "batch " << b << " threads=" << threads;
      EXPECT_EQ(col_re->ToJson(), baseline_json)
          << "batch " << b << " threads=" << threads;
      if (threads == 1) {
        row_previous = std::move(*row_re);
        col_previous = std::move(*col_re);
      }
    }
    row_session = std::move(*row_next);
    col_session = std::move(*col_next);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ColumnarDiff,
    ::testing::Combine(::testing::ValuesIn(kAllScenarioFamilies),
                       ::testing::ValuesIn(MatrixSeeds())),
    CellName);

}  // namespace
}  // namespace mdqa::testgen
