// Integration coverage for the serve-layer durability and operability
// features: restart-resume through a KbStore (checkpoint + WAL
// roll-forward, no re-chase), scenario-stamp mismatch refusal, hot
// tenant-quota reload (POST /admin/quotas with all-or-nothing
// validation), and structured JSON access logging. The filesystem-level
// crash matrix lives in tests/durability_crash_test.cc.

#include "serve/server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/net.h"
#include "scenarios/hospital.h"
#include "serve/access_log.h"
#include "serve/http.h"
#include "storage/fault_env.h"
#include "storage/kb_store.h"

namespace mdqa::serve {
namespace {

using std::chrono::milliseconds;

Result<HttpResponse> Call(
    uint16_t port, const std::string& method, const std::string& target,
    const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& headers = {}) {
  MDQA_ASSIGN_OR_RETURN(net::Socket sock,
                        net::ConnectLoopback(port, milliseconds(2000)));
  return HttpRoundTrip(sock, method, target, body, headers, HttpLimits{});
}

Result<std::unique_ptr<AssessmentServer>> StartHospital(
    ServerOptions options) {
  auto context =
      scenarios::BuildHospitalContext(scenarios::HospitalOptions{});
  EXPECT_TRUE(context.ok()) << context.status();
  if (!context.ok()) return context.status();
  return AssessmentServer::Start(std::move(*context), options);
}

/// Sanitizer-friendly deadlines: update application re-chases, which is
/// slow under ASan; the assertions want 200 applied, not 202 pending.
ServerOptions DurableOptions(storage::KbStore* store) {
  ServerOptions options;
  options.default_deadline = milliseconds(30000);
  options.default_quota.max_deadline = milliseconds(30000);
  options.store = store;
  options.scenario = "hospital";
  return options;
}

TEST(ServeDurability, RestartResumesAtCommittedGenerationWithoutRechase) {
  auto store = storage::NewInMemoryKbStore();

  std::string report_before;
  std::string clean_before;
  {
    auto server = StartHospital(DurableOptions(store.get()));
    ASSERT_TRUE(server.ok()) << server.status();
    EXPECT_EQ((*server)->base_generation(), 1u);
    EXPECT_TRUE((*server)->recovery_degradations().empty());
    const uint16_t port = (*server)->port();

    auto insert = Call(port, "POST", "/update",
                       R"({"relation": "Measurements",)"
                       R"( "insert": [["Sep/9-23:50", "Nick Cave", "36.9"]]})");
    ASSERT_TRUE(insert.ok()) << insert.status();
    ASSERT_EQ(insert->status, 200) << insert->body;
    auto del = Call(port, "POST", "/update",
                    R"({"relation": "Measurements",)"
                    R"( "delete": [["Sep/9-23:50", "Nick Cave", "36.9"]]})");
    ASSERT_TRUE(del.ok()) << del.status();
    ASSERT_EQ(del->status, 200) << del->body;
    EXPECT_EQ((*server)->generation(), 3u);
    // Both commits went through the WAL before publishing.
    EXPECT_EQ((*server)->metrics().wal_appends.load(), 2u);

    report_before = (*server)->CurrentReportJson();
    auto clean = Call(port, "POST", "/query",
                      R"({"query": "Q(P, V) :- Measurements(T, P, V).",)"
                      R"( "clean": true})");
    ASSERT_TRUE(clean.ok()) << clean.status();
    ASSERT_EQ(clean->status, 200) << clean->body;
    clean_before = clean->body;

    (*server)->Shutdown();
    EXPECT_TRUE((*server)->DrainStatus().ok()) << (*server)->DrainStatus();
    EXPECT_TRUE((*server)->final_persist_status().ok())
        << (*server)->final_persist_status();
  }

  // Same store, fresh process: the server must come back AT generation 3
  // (checkpoint restore + WAL roll-forward), not at 1, and serve the same
  // report and clean answers.
  auto server = StartHospital(DurableOptions(store.get()));
  ASSERT_TRUE(server.ok()) << server.status();
  EXPECT_EQ((*server)->base_generation(), 3u);
  EXPECT_EQ((*server)->generation(), 3u);
  EXPECT_EQ((*server)->CurrentReportJson(), report_before);

  auto clean = Call((*server)->port(), "POST", "/query",
                    R"({"query": "Q(P, V) :- Measurements(T, P, V).",)"
                    R"( "clean": true})");
  ASSERT_TRUE(clean.ok()) << clean.status();
  ASSERT_EQ(clean->status, 200) << clean->body;
  // The bodies embed the generation, which matches (3 == 3), so a full
  // string compare is legitimate.
  EXPECT_EQ(clean->body, clean_before);

  (*server)->Shutdown();
  EXPECT_TRUE((*server)->DrainStatus().ok()) << (*server)->DrainStatus();
}

TEST(ServeDurability, ScenarioMismatchRefusesToResume) {
  auto store = storage::NewInMemoryKbStore();
  {
    auto server = StartHospital(DurableOptions(store.get()));
    ASSERT_TRUE(server.ok()) << server.status();
    (*server)->Shutdown();
    ASSERT_TRUE((*server)->final_persist_status().ok());
  }
  // The checkpoint is stamped "hospital"; a server claiming to run a
  // different program must refuse it rather than marry foreign rows to
  // the wrong rules.
  ServerOptions options = DurableOptions(store.get());
  options.scenario = "synthetic";
  auto server = StartHospital(options);
  ASSERT_FALSE(server.ok());
  EXPECT_EQ(server.status().code(), StatusCode::kFailedPrecondition)
      << server.status();
}

TEST(ServeDurability, QuotaHotReloadIsAllOrNothing) {
  ServerOptions options;
  auto server_or = StartHospital(options);
  ASSERT_TRUE(server_or.ok()) << server_or.status();
  auto& server = *server_or;
  const uint16_t port = server->port();

  // A valid config applies and takes effect immediately: the "throttled"
  // tenant gets a burst of 1 and no refill to speak of.
  auto apply = Call(port, "POST", "/admin/quotas",
                    R"({"throttled": {"requests_per_sec": 0.001,)"
                    R"( "burst": 1}})");
  ASSERT_TRUE(apply.ok()) << apply.status();
  EXPECT_EQ(apply->status, 200) << apply->body;
  EXPECT_EQ(server->metrics().quota_reloads.load(), 1u);

  // Admission guards the evaluating endpoints (query/assess/update).
  const std::string query =
      R"({"query": "Q(P) :- Measurements(T, P, V)."})";
  auto first = Call(port, "POST", "/query", query,
                    {{"X-Mdqa-Tenant", "throttled"}});
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->status, 200) << first->body;
  auto second = Call(port, "POST", "/query", query,
                     {{"X-Mdqa-Tenant", "throttled"}});
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->status, 429) << second->body;

  // Malformed configs are rejected wholesale — even when the FIRST entry
  // is valid, the bad second entry must keep the first from applying.
  const std::string bad_configs[] = {
      "not json at all",
      R"(["arrays", "are", "not", "quota", "maps"])",
      R"({"t": {"requests_per_sec": -5}})",
      R"({"ok_tenant": {"burst": 3}, "bad": {"no_such_knob": 1}})",
      R"({"t": {"requests_per_sec": "fast"}})",
  };
  for (const std::string& config : bad_configs) {
    auto rejected = Call(port, "POST", "/admin/quotas", config);
    ASSERT_TRUE(rejected.ok()) << rejected.status();
    EXPECT_EQ(rejected->status, 400) << config << " -> " << rejected->body;
  }
  EXPECT_EQ(server->metrics().quota_reloads.load(), 1u);
  // "ok_tenant" from the half-valid config must NOT have been applied:
  // with the default quota (burst 50) it can fire many more requests
  // than the rejected config's burst of 3.
  for (int i = 0; i < 6; ++i) {
    auto resp = Call(port, "POST", "/query", query,
                     {{"X-Mdqa-Tenant", "ok_tenant"}});
    ASSERT_TRUE(resp.ok()) << resp.status();
    EXPECT_EQ(resp->status, 200) << "half-valid config partially applied";
  }

  server->Shutdown();
  EXPECT_TRUE(server->DrainStatus().ok());
}

TEST(ServeDurability, AccessLogRecordsOneLinePerRequestWithOutcomes) {
  storage::FaultyEnv env(/*seed=*/3);
  auto log = AccessLog::Open(&env, "access.log", /*max_bytes=*/1 << 20);
  ASSERT_TRUE(log.ok()) << log.status();

  ServerOptions options;
  options.default_quota.requests_per_sec = 1.0;
  options.default_quota.burst = 2.0;
  options.access_log = log->get();
  auto server_or = StartHospital(options);
  ASSERT_TRUE(server_or.ok()) << server_or.status();
  auto& server = *server_or;
  const uint16_t port = server->port();

  ASSERT_EQ(Call(port, "GET", "/report", "", {{"X-Mdqa-Tenant", "icu"}})
                ->status,
            200);
  ASSERT_EQ(Call(port, "POST", "/query", "not json",
                 {{"X-Mdqa-Tenant", "icu"}})
                ->status,
            400);
  // Exhaust the burst of 2 → the third query from this tenant sheds
  // (admission guards the evaluating endpoints).
  int shed = 0;
  for (int i = 0; i < 3; ++i) {
    auto resp = Call(port, "POST", "/query",
                     R"({"query": "Q(P) :- Measurements(T, P, V)."})",
                     {{"X-Mdqa-Tenant", "bursty"}});
    ASSERT_TRUE(resp.ok()) << resp.status();
    if (resp->status == 429) ++shed;
  }
  EXPECT_GE(shed, 1);

  server->Shutdown();
  EXPECT_EQ((*log)->lines_written(), 5u);
  EXPECT_EQ((*log)->lines_dropped(), 0u);

  auto content = env.ReadFile("access.log", 1 << 20);
  ASSERT_TRUE(content.ok()) << content.status();
  // One JSON object per line, carrying tenant, generation, status, and a
  // classified outcome for every request — including the shed and the
  // parse rejection.
  EXPECT_NE(content->find("\"tenant\":\"icu\""), std::string::npos);
  EXPECT_NE(content->find("\"target\":\"/report\""), std::string::npos);
  EXPECT_NE(content->find("\"generation\":1"), std::string::npos);
  EXPECT_NE(content->find("\"outcome\":\"ok\""), std::string::npos);
  EXPECT_NE(content->find("\"outcome\":\"rejected\""), std::string::npos);
  EXPECT_NE(content->find("\"outcome\":\"shed\""), std::string::npos);
  EXPECT_NE(content->find("\"status\":429"), std::string::npos);
  EXPECT_EQ(std::count(content->begin(), content->end(), '\n'), 5);
}

}  // namespace
}  // namespace mdqa::serve
