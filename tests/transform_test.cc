// Footnote-2 transformation: multi-atom heads split through auxiliary
// predicates, preserving certain answers and unlocking the UCQ rewriter
// for form-(10) rules.

#include "datalog/transform.h"

#include <gtest/gtest.h>

#include "datalog/chase.h"
#include "datalog/parser.h"
#include "qa/engines.h"
#include "scenarios/hospital.h"

namespace mdqa::datalog {
namespace {

TEST(SplitHeads, SingleHeadRulesPassThrough) {
  auto p = Parser::ParseProgram(
      "P(1).\n"
      "Q(X) :- P(X).\n"
      "! :- Q(X), X > 5.\n"
      "X = Y :- Q(X), Q(Y).\n");
  ASSERT_TRUE(p.ok());
  auto split = SplitMultiAtomHeads(*p);
  ASSERT_TRUE(split.ok()) << split.status();
  EXPECT_EQ(split->rules().size(), 3u);
  EXPECT_EQ(split->facts().size(), 1u);
  EXPECT_EQ(split->ToString(), p->ToString());
}

TEST(SplitHeads, IntroducesGeneratorAndProjectors) {
  auto p = Parser::ParseProgram(
      "D(\"h\", \"d\", \"p\").\n"
      "IU(I, U), PU(U, D, P) :- D(I, D, P).\n");
  ASSERT_TRUE(p.ok());
  auto split = SplitMultiAtomHeads(*p);
  ASSERT_TRUE(split.ok()) << split.status();
  ASSERT_EQ(split->rules().size(), 3u);  // generator + 2 projectors
  // Exactly one rule keeps an existential: the generator.
  int with_existential = 0;
  for (const Rule& r : split->rules()) {
    EXPECT_EQ(r.head.size(), 1u);
    if (!r.ExistentialVariables().empty()) ++with_existential;
  }
  EXPECT_EQ(with_existential, 1);
}

TEST(SplitHeads, ChaseCertainAnswersPreserved) {
  auto ontology =
      scenarios::BuildHospitalOntology(scenarios::HospitalOptions{});
  ASSERT_TRUE(ontology.ok());
  auto program = (*ontology)->Compile();
  ASSERT_TRUE(program.ok());
  auto split = SplitMultiAtomHeads(*program);
  ASSERT_TRUE(split.ok()) << split.status();
  for (const char* text :
       {"Q(U, D, P) :- PatientUnit(U, D, P).",
        "Q(I, U) :- InstitutionUnit(I, U).",
        "Q(D) :- Shifts(\"W2\", D, \"Mark\", S)."}) {
    auto q1 = Parser::ParseQuery(text, program->vocab().get());
    auto q2 = Parser::ParseQuery(text, split->vocab().get());
    ASSERT_TRUE(q1.ok() && q2.ok());
    auto a1 = qa::Answer(qa::Engine::kChase, *program, *q1);
    auto a2 = qa::Answer(qa::Engine::kChase, *split, *q2);
    ASSERT_TRUE(a1.ok() && a2.ok());
    EXPECT_EQ(*a1, *a2) << text;
  }
}

TEST(SplitHeads, SharedNullsAcrossProjectedHeads) {
  auto p = Parser::ParseProgram(
      "D(\"h\", \"d\", \"p\").\n"
      "IU(I, U), PU(U, D, P) :- D(I, D, P).\n");
  ASSERT_TRUE(p.ok());
  auto split = SplitMultiAtomHeads(*p);
  ASSERT_TRUE(split.ok());
  Instance inst = Instance::FromProgram(*split);
  ASSERT_TRUE(Chase::Run(*split, &inst, ChaseOptions()).ok());
  const auto& vocab = *split->vocab();
  const FactTable* iu = inst.Table(vocab.FindPredicate("IU"));
  const FactTable* pu = inst.Table(vocab.FindPredicate("PU"));
  ASSERT_EQ(iu->size(), 1u);
  ASSERT_EQ(pu->size(), 1u);
  // The same labeled null in both heads — the defining property of the
  // original conjunction.
  EXPECT_EQ(iu->Row(0)[1], pu->Row(0)[0]);
  EXPECT_TRUE(iu->Row(0)[1].IsNull());
}

TEST(SplitHeads, UnlocksRewritingForForm10) {
  // On the original form-(10) program the rewriter refuses; after the
  // split it answers, and agrees with the chase.
  auto p = Parser::ParseProgram(
      "D(\"h2\", \"oct5\", \"elvis\").\n"
      "IU(I, U), PU(U, D, P) :- D(I, D, P).\n");
  ASSERT_TRUE(p.ok());
  auto q_text = "Q() :- IU(\"h2\", U), PU(U, \"oct5\", \"elvis\").";

  auto q0 = Parser::ParseQuery(q_text, p->mutable_vocab());
  ASSERT_TRUE(q0.ok());
  EXPECT_EQ(qa::Answer(qa::Engine::kRewriting, *p, *q0).status().code(),
            StatusCode::kUnimplemented);

  auto split = SplitMultiAtomHeads(*p);
  ASSERT_TRUE(split.ok());
  auto q = Parser::ParseQuery(q_text, split->mutable_vocab());
  ASSERT_TRUE(q.ok());
  auto agreed = qa::CrossCheck(
      *split, *q, {qa::Engine::kChase, qa::Engine::kRewriting});
  ASSERT_TRUE(agreed.ok()) << agreed.status();
  EXPECT_EQ(agreed->size(), 1u);  // boolean yes
}

TEST(SplitHeads, NegationAndComparisonsCarriedToGenerator) {
  auto p = Parser::ParseProgram(
      "D(1). Bad(2).\n"
      "A(X, Z), B(Z) :- D(X), not Bad(X), X < 5.\n");
  ASSERT_TRUE(p.ok());
  auto split = SplitMultiAtomHeads(*p);
  ASSERT_TRUE(split.ok()) << split.status();
  Instance inst = Instance::FromProgram(*split);
  ASSERT_TRUE(Chase::Run(*split, &inst, ChaseOptions()).ok());
  EXPECT_EQ(inst.CountFacts(split->vocab()->FindPredicate("A")), 1u);
  EXPECT_EQ(inst.CountFacts(split->vocab()->FindPredicate("B")), 1u);
}

}  // namespace
}  // namespace mdqa::datalog
