// Determinism and ground-truth sanity of the mdqa_testgen library
// (src/testgen/): the scenario generator must be a pure function of its
// spec — byte-identical output when generated concurrently on 1/4/8
// threads and across two separate process runs — and the ground truth it
// records must be internally consistent (planted counts match the truth
// table, update verdicts track the row set). See docs/testing.md.

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "testgen/generators.h"
#include "testgen/scenario.h"

namespace mdqa::testgen {
namespace {

// FNV-1a: a process-independent digest for comparing fingerprints across
// runs without printing kilobytes of scenario text.
uint64_t Digest(const std::string& text) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string FingerprintOf(const ScenarioSpec& spec) {
  auto scenario = ScenarioGenerator::Generate(spec);
  EXPECT_TRUE(scenario.ok()) << scenario.status();
  if (!scenario.ok()) return std::string();
  auto fp = ScenarioFingerprint(*scenario);
  EXPECT_TRUE(fp.ok()) << fp.status();
  return fp.ok() ? *fp : std::string();
}

TEST(ScenarioDeterminism, SameSeedSameBytes) {
  for (ScenarioFamily family : kAllScenarioFamilies) {
    const ScenarioSpec spec = SpecFor(family, 7);
    const std::string first = FingerprintOf(spec);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(FingerprintOf(spec), first)
        << ScenarioFamilyToString(family);
  }
}

TEST(ScenarioDeterminism, DifferentSeedsDiffer) {
  for (ScenarioFamily family : kAllScenarioFamilies) {
    EXPECT_NE(FingerprintOf(SpecFor(family, 1)),
              FingerprintOf(SpecFor(family, 2)))
        << ScenarioFamilyToString(family);
  }
}

TEST(ScenarioDeterminism, FamiliesDifferAtEqualSeed) {
  std::vector<std::string> prints;
  for (ScenarioFamily family : kAllScenarioFamilies) {
    prints.push_back(FingerprintOf(SpecFor(family, 3)));
  }
  for (size_t i = 0; i < prints.size(); ++i) {
    for (size_t j = i + 1; j < prints.size(); ++j) {
      EXPECT_NE(prints[i], prints[j]) << i << " vs " << j;
    }
  }
}

// Concurrent generation at 1/4/8 threads: every thread generating the
// same spec must produce the same bytes as the serial reference (no
// hidden global state in the generator).
TEST(ScenarioDeterminism, AcrossThreadCounts) {
  const ScenarioSpec spec = SpecFor(ScenarioFamily::kMultiDimensional, 5);
  const std::string reference = FingerprintOf(spec);
  ASSERT_FALSE(reference.empty());
  for (size_t n : {1u, 4u, 8u}) {
    std::vector<std::string> prints(n);
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (size_t t = 0; t < n; ++t) {
      threads.emplace_back([&prints, &spec, t] {
        auto scenario = ScenarioGenerator::Generate(spec);
        if (!scenario.ok()) return;
        auto fp = ScenarioFingerprint(*scenario);
        if (fp.ok()) prints[t] = *fp;
      });
    }
    for (std::thread& t : threads) t.join();
    for (size_t t = 0; t < n; ++t) {
      EXPECT_EQ(prints[t], reference) << "threads=" << n << " t=" << t;
    }
  }
}

// The dump mode the cross-process test re-execs into: prints one digest
// line per family and exits. Skipped in a normal run.
TEST(ScenarioDump, PrintDigests) {
  if (std::getenv("MDQA_TESTGEN_DUMP") == nullptr) {
    GTEST_SKIP() << "dump mode only (used by AcrossProcessRuns)";
  }
  for (ScenarioFamily family : kAllScenarioFamilies) {
    printf("FP %s %llu\n", ScenarioFamilyToString(family),
           static_cast<unsigned long long>(
               Digest(FingerprintOf(SpecFor(family, 11)))));
  }
}

std::vector<std::string> DigestLinesFromChildProcess() {
  // Re-exec this binary in dump mode and collect the FP lines.
  char exe[4096];
  const ssize_t len = readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  if (len <= 0) return {};
  exe[len] = '\0';
  const std::string cmd =
      std::string("MDQA_TESTGEN_DUMP=1 \"") + exe +
      "\" --gtest_filter=ScenarioDump.PrintDigests 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return {};
  std::vector<std::string> lines;
  char buf[256];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) {
    if (buf[0] == 'F' && buf[1] == 'P' && buf[2] == ' ') {
      lines.emplace_back(buf);
    }
  }
  pclose(pipe);
  return lines;
}

// Two separate process runs must print identical digests, and they must
// match the digests computed in this process.
TEST(ScenarioDeterminism, AcrossProcessRuns) {
  const std::vector<std::string> first = DigestLinesFromChildProcess();
  ASSERT_EQ(first.size(), std::size(kAllScenarioFamilies))
      << "child run produced no digests";
  const std::vector<std::string> second = DigestLinesFromChildProcess();
  EXPECT_EQ(first, second);
  size_t i = 0;
  for (ScenarioFamily family : kAllScenarioFamilies) {
    char expected[256];
    snprintf(expected, sizeof(expected), "FP %s %llu\n",
             ScenarioFamilyToString(family),
             static_cast<unsigned long long>(
                 Digest(FingerprintOf(SpecFor(family, 11)))));
    EXPECT_EQ(first[i], expected);
    ++i;
  }
}

// --- ground-truth sanity ----------------------------------------------

TEST(ScenarioGroundTruth, PlantedCountsMatchTruthTable) {
  for (ScenarioFamily family : kAllScenarioFamilies) {
    auto scenario = ScenarioGenerator::Generate(SpecFor(family, 4));
    ASSERT_TRUE(scenario.ok()) << scenario.status();
    size_t corrupt = 0, misplaced = 0, missing = 0, dirty = 0;
    for (const TupleVerdict& v : scenario->truth) {
      EXPECT_EQ(v.clean, v.violation == ViolationKind::kNone);
      if (!v.clean) ++dirty;
      if (v.violation == ViolationKind::kCorruptAttribute) ++corrupt;
      if (v.violation == ViolationKind::kMisplacedMember) ++misplaced;
      if (v.violation == ViolationKind::kMissingContext) ++missing;
    }
    EXPECT_EQ(scenario->planted_corrupt, corrupt);
    EXPECT_EQ(scenario->planted_misplaced, misplaced);
    EXPECT_EQ(scenario->planted_missing, missing);
    EXPECT_GE(corrupt, 1u) << ScenarioFamilyToString(family);
    EXPECT_GT(scenario->truth.size(), dirty)
        << "no clean rows in " << ScenarioFamilyToString(family);
  }
}

TEST(ScenarioGroundTruth, UpdateVerdictsTrackRowSet) {
  for (ScenarioFamily family : kAllScenarioFamilies) {
    const ScenarioSpec spec = SpecFor(family, 6);
    auto scenario = ScenarioGenerator::Generate(spec);
    ASSERT_TRUE(scenario.ok()) << scenario.status();
    ASSERT_EQ(scenario->updates.size(),
              static_cast<size_t>(spec.update_batches));
    size_t rows = scenario->truth.size();
    for (const ScenarioUpdate& u : scenario->updates) {
      for (const quality::RelationDelta& d : u.batch.deltas) {
        rows += d.insert_rows.size();
        rows -= d.delete_rows.size();
      }
      EXPECT_EQ(u.verdicts_after.size(), rows);
    }
    // The last batch exercises the deletion (full-re-chase) path.
    ASSERT_TRUE(spec.delete_in_last_batch);
    EXPECT_TRUE(scenario->updates.back().batch.HasDeletions());
  }
}

TEST(ScenarioGroundTruth, SpecForCoversFamilies) {
  EXPECT_EQ(SpecFor(ScenarioFamily::kDeepHomogeneous, 0).depth, 5);
  EXPECT_TRUE(SpecFor(ScenarioFamily::kSkewedTenants, 0).zipf_s > 0.0);
  EXPECT_EQ(SpecFor(ScenarioFamily::kRaggedHeterogeneous, 0).depth, 4);
}

TEST(ScenarioGroundTruth, RejectsDegenerateSpecs) {
  ScenarioSpec spec = SpecFor(ScenarioFamily::kDeepHomogeneous, 0);
  spec.depth = 2;
  EXPECT_FALSE(ScenarioGenerator::Generate(spec).ok());
  spec = SpecFor(ScenarioFamily::kDisjunctiveDownward, 0);
  spec.depth = 2;  // no room for the region level above certification
  EXPECT_FALSE(ScenarioGenerator::Generate(spec).ok());
}

// The promoted legacy generators (formerly header-only in
// tests/generators.h) must stay pure functions of their seeds too.
TEST(LegacyGenerators, StillDeterministic) {
  for (uint32_t seed : {0u, 3u, 9u}) {
    EXPECT_EQ(GenerateHierarchy(seed).program_text,
              GenerateHierarchy(seed).program_text);
    EXPECT_EQ(GenerateClosure(seed).program_text,
              GenerateClosure(seed).program_text);
    const ServeWorkload a = GenerateServeWorkload(seed, 50);
    const ServeWorkload b = GenerateServeWorkload(seed, 50);
    ASSERT_EQ(a.ops.size(), b.ops.size());
    for (size_t i = 0; i < a.ops.size(); ++i) {
      EXPECT_EQ(a.ops[i].body, b.ops[i].body);
      EXPECT_EQ(a.ops[i].tenant, b.ops[i].tenant);
    }
  }
}

}  // namespace
}  // namespace mdqa::testgen
