// HM edge constraints, summarizability, and OLAP roll-up aggregation.

#include "md/aggregate.h"

#include <gtest/gtest.h>

#include "md/constraints.h"
#include "md/dimension.h"

namespace mdqa::md {
namespace {

Dimension Geo() {
  return DimensionBuilder("Geo")
      .Category("Store")
      .Category("City")
      .Category("Country")
      .Edge("Store", "City")
      .Edge("City", "Country")
      .Member("Store", "s1")
      .Member("Store", "s2")
      .Member("Store", "s3")
      .Member("City", "Ottawa")
      .Member("City", "Lyon")
      .Member("Country", "Canada")
      .Member("Country", "France")
      .Link("s1", "Ottawa")
      .Link("s2", "Ottawa")
      .Link("s3", "Lyon")
      .Link("Ottawa", "Canada")
      .Link("Lyon", "France")
      .Build()
      .value();
}

CategoricalRelation Sales() {
  CategoricalRelation rel =
      CategoricalRelation::Create(
          "Sales", {CategoricalAttribute::Categorical("Store", "Geo", "Store"),
                    CategoricalAttribute::Plain("Month"),
                    CategoricalAttribute::Plain("Amount")})
          .value();
  EXPECT_TRUE(rel.InsertText({"s1", "Jan", "100"}).ok());
  EXPECT_TRUE(rel.InsertText({"s2", "Jan", "250"}).ok());
  EXPECT_TRUE(rel.InsertText({"s3", "Jan", "80"}).ok());
  EXPECT_TRUE(rel.InsertText({"s1", "Feb", "10"}).ok());
  EXPECT_TRUE(rel.InsertText({"s2", "Feb", "20.5"}).ok());
  return rel;
}

TEST(EdgeConstraints, SatisfiedOnCleanDimension) {
  Dimension geo = Geo();
  DimensionConstraints c("Geo");
  c.Require("Store", "City", EdgeConstraint::kInto);
  c.Require("Store", "City", EdgeConstraint::kTotal);
  c.Require("Store", "City", EdgeConstraint::kOnto);
  c.Require("City", "Country", EdgeConstraint::kInto);
  EXPECT_EQ(c.size(), 4u);
  EXPECT_TRUE(c.Check(geo.instance()).ok());
}

TEST(EdgeConstraints, IntoViolation) {
  DimensionInstance inst = Geo().instance();
  ASSERT_TRUE(inst.AddChildParent("s1", "Lyon").ok());  // second city
  DimensionConstraints c("Geo");
  c.Require("Store", "City", EdgeConstraint::kInto);
  Status s = c.Check(inst);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find("s1"), std::string::npos);
}

TEST(EdgeConstraints, TotalViolation) {
  DimensionInstance inst = Geo().instance();
  ASSERT_TRUE(inst.AddMember("Store", "orphan").ok());
  DimensionConstraints c("Geo");
  c.Require("Store", "City", EdgeConstraint::kTotal);
  Status s = c.Check(inst);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find("orphan"), std::string::npos);
}

TEST(EdgeConstraints, OntoViolation) {
  DimensionInstance inst = Geo().instance();
  ASSERT_TRUE(inst.AddMember("City", "GhostTown").ok());
  DimensionConstraints c("Geo");
  c.Require("Store", "City", EdgeConstraint::kOnto);
  Status s = c.Check(inst);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find("GhostTown"), std::string::npos);
}

TEST(EdgeConstraints, UnknownEdgeRejected) {
  Dimension geo = Geo();
  DimensionConstraints c("Geo");
  c.Require("Store", "Country", EdgeConstraint::kInto);  // not adjacent
  EXPECT_EQ(c.Check(geo.instance()).code(), StatusCode::kNotFound);
}

TEST(Summarizability, HoldsOnStrictHomogeneousRollup) {
  Dimension geo = Geo();
  EXPECT_TRUE(CheckSummarizable(geo.instance(), "Store", "City").ok());
  EXPECT_TRUE(CheckSummarizable(geo.instance(), "Store", "Country").ok());
  EXPECT_TRUE(CheckSummarizable(geo.instance(), "Store", "Store").ok());
}

TEST(Summarizability, DetectsLossAndDoubleCounting) {
  DimensionInstance inst = Geo().instance();
  ASSERT_TRUE(inst.AddMember("Store", "orphan").ok());
  Status loss = CheckSummarizable(inst, "Store", "City");
  EXPECT_EQ(loss.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(loss.message().find("data loss"), std::string::npos);

  DimensionInstance inst2 = Geo().instance();
  ASSERT_TRUE(inst2.AddChildParent("s1", "Lyon").ok());
  Status dc = CheckSummarizable(inst2, "Store", "City");
  EXPECT_EQ(dc.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(dc.message().find("double counting"), std::string::npos);
}

TEST(Summarizability, NonAncestorRejected) {
  Dimension geo = Geo();
  EXPECT_EQ(CheckSummarizable(geo.instance(), "City", "Store").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(CheckSummarizable(geo.instance(), "City", "Nope").code(),
            StatusCode::kNotFound);
}

TEST(RollUpAggregate, SumByCity) {
  Dimension geo = Geo();
  CategoricalRelation sales = Sales();
  auto agg = RollUpAggregate(sales, geo, "Store", "City", "Amount",
                             AggFn::kSum);
  ASSERT_TRUE(agg.ok()) << agg.status();
  // Groups: (Ottawa, Jan)=350, (Lyon, Jan)=80, (Ottawa, Feb)=30.5.
  EXPECT_EQ(agg->size(), 3u);
  EXPECT_TRUE(agg->Contains(
      {Value::Str("Ottawa"), Value::Str("Jan"), Value::Real(350)}));
  EXPECT_TRUE(agg->Contains(
      {Value::Str("Lyon"), Value::Str("Jan"), Value::Real(80)}));
  EXPECT_TRUE(agg->Contains(
      {Value::Str("Ottawa"), Value::Str("Feb"), Value::Real(30.5)}));
  EXPECT_EQ(agg->schema().attribute(0).name, "City");
  EXPECT_EQ(agg->schema().attribute(2).name, "sum_Amount");
}

TEST(RollUpAggregate, SumByCountryTransitively) {
  Dimension geo = Geo();
  CategoricalRelation sales = Sales();
  auto agg = RollUpAggregate(sales, geo, "Store", "Country", "Amount",
                             AggFn::kSum);
  ASSERT_TRUE(agg.ok()) << agg.status();
  EXPECT_TRUE(agg->Contains(
      {Value::Str("Canada"), Value::Str("Jan"), Value::Real(350)}));
  EXPECT_TRUE(agg->Contains(
      {Value::Str("France"), Value::Str("Jan"), Value::Real(80)}));
}

TEST(RollUpAggregate, CountMinMaxAvg) {
  Dimension geo = Geo();
  CategoricalRelation sales = Sales();
  auto count = RollUpAggregate(sales, geo, "Store", "City", "Amount",
                               AggFn::kCount);
  ASSERT_TRUE(count.ok());
  EXPECT_TRUE(count->Contains(
      {Value::Str("Ottawa"), Value::Str("Jan"), Value::Int(2)}));

  auto min = RollUpAggregate(sales, geo, "Store", "City", "Amount",
                             AggFn::kMin);
  ASSERT_TRUE(min.ok());
  EXPECT_TRUE(min->Contains(
      {Value::Str("Ottawa"), Value::Str("Jan"), Value::Real(100)}));

  auto max = RollUpAggregate(sales, geo, "Store", "City", "Amount",
                             AggFn::kMax);
  ASSERT_TRUE(max.ok());
  EXPECT_TRUE(max->Contains(
      {Value::Str("Ottawa"), Value::Str("Jan"), Value::Real(250)}));

  auto avg = RollUpAggregate(sales, geo, "Store", "City", "Amount",
                             AggFn::kAvg);
  ASSERT_TRUE(avg.ok());
  EXPECT_TRUE(avg->Contains(
      {Value::Str("Ottawa"), Value::Str("Jan"), Value::Real(175)}));
}

TEST(RollUpAggregate, RefusesNonSummarizableRollup) {
  DimensionInstance inst = Geo().instance();
  ASSERT_TRUE(inst.AddChildParent("s1", "Lyon").ok());
  Dimension dirty = Dimension::Create(std::move(inst)).value();
  CategoricalRelation sales = Sales();
  auto agg = RollUpAggregate(sales, dirty, "Store", "City", "Amount",
                             AggFn::kSum);
  ASSERT_FALSE(agg.ok());
  EXPECT_EQ(agg.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(agg.status().message().find("double counting"),
            std::string::npos);
}

TEST(RollUpAggregate, ValidatesArguments) {
  Dimension geo = Geo();
  CategoricalRelation sales = Sales();
  EXPECT_EQ(RollUpAggregate(sales, geo, "Nope", "City", "Amount",
                            AggFn::kSum)
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(RollUpAggregate(sales, geo, "Month", "City", "Amount",
                            AggFn::kSum)
                .status()
                .code(),
            StatusCode::kInvalidArgument);  // Month is not categorical
  EXPECT_EQ(RollUpAggregate(sales, geo, "Store", "City", "Month",
                            AggFn::kSum)
                .status()
                .code(),
            StatusCode::kInvalidArgument);  // non-numeric measure
  EXPECT_EQ(RollUpAggregate(sales, geo, "Store", "City", "Store",
                            AggFn::kSum)
                .status()
                .code(),
            StatusCode::kInvalidArgument);  // measure == categorical
}

TEST(RollUpAggregate, CountToleratesNonNumericMeasure) {
  Dimension geo = Geo();
  CategoricalRelation sales = Sales();
  auto count = RollUpAggregate(sales, geo, "Store", "City", "Month",
                               AggFn::kCount);
  // kCount with a non-numeric "measure" — counting rows per group where
  // the grouped key includes Amount. Still valid per the API contract?
  // The implementation requires numeric only for non-count functions.
  ASSERT_TRUE(count.ok()) << count.status();
}

}  // namespace
}  // namespace mdqa::md
