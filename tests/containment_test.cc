// Chandra-Merlin containment mappings and UCQ minimization.

#include "datalog/containment.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "qa/rewriter.h"

namespace mdqa::datalog {
namespace {

struct Queries {
  std::shared_ptr<Vocabulary> vocab = std::make_shared<Vocabulary>();

  ConjunctiveQuery Q(const std::string& text) {
    auto q = Parser::ParseQuery(text, vocab.get());
    EXPECT_TRUE(q.ok()) << q.status();
    return std::move(q).value();
  }
};

TEST(Containment, IdenticalQueries) {
  Queries f;
  auto q1 = f.Q("Q(X) :- R(X, Y).");
  auto q2 = f.Q("Q(X) :- R(X, Y).");
  EXPECT_TRUE(ContainedIn(q1, q2, *f.vocab));
  EXPECT_TRUE(ContainedIn(q2, q1, *f.vocab));
}

TEST(Containment, MoreAtomsIsMoreSpecific) {
  Queries f;
  auto specific = f.Q("Q(X) :- R(X, Y), S(Y).");
  auto general = f.Q("Q(X) :- R(X, Y).");
  EXPECT_TRUE(ContainedIn(specific, general, *f.vocab));
  EXPECT_FALSE(ContainedIn(general, specific, *f.vocab));
}

TEST(Containment, ConstantsAreMoreSpecificThanVariables) {
  Queries f;
  auto specific = f.Q("Q(Y) :- R(\"a\", Y).");
  auto general = f.Q("Q(Y) :- R(X, Y).");
  EXPECT_TRUE(ContainedIn(specific, general, *f.vocab));
  EXPECT_FALSE(ContainedIn(general, specific, *f.vocab));
}

TEST(Containment, RepeatedVariablesAreMoreSpecific) {
  Queries f;
  auto loop = f.Q("Q(X) :- E(X, X).");
  auto edge = f.Q("Q(X) :- E(X, Y).");
  EXPECT_TRUE(ContainedIn(loop, edge, *f.vocab));
  EXPECT_FALSE(ContainedIn(edge, loop, *f.vocab));
}

TEST(Containment, AnswerTupleMustMap) {
  Queries f;
  auto qx = f.Q("Q(X) :- R(X, Y).");
  auto qy = f.Q("Q(Y) :- R(X, Y).");
  EXPECT_FALSE(ContainedIn(qx, qy, *f.vocab));
  EXPECT_FALSE(ContainedIn(qy, qx, *f.vocab));
  // Different arities never contain each other.
  auto q2 = f.Q("Q(X, Y) :- R(X, Y).");
  EXPECT_FALSE(ContainedIn(qx, q2, *f.vocab));
}

TEST(Containment, ClassicCycleIntoTriangle) {
  Queries f;
  // Boolean: a path of length 3 in a graph with a self-looping pattern.
  auto walk = f.Q("Q() :- E(X, Y), E(Y, Z), E(Z, X).");
  auto self_loop = f.Q("Q() :- E(W, W).");
  // A self-loop is a triangle with all nodes equal: loop ⊆ walk.
  EXPECT_TRUE(ContainedIn(self_loop, walk, *f.vocab));
  EXPECT_FALSE(ContainedIn(walk, self_loop, *f.vocab));
}

TEST(Containment, ComparisonsHandledConservatively) {
  Queries f;
  auto bounded = f.Q("Q(X) :- R(X, V), V > 5.");
  auto free = f.Q("Q(X) :- R(X, V).");
  // Extra comparisons on q1's side only shrink it: bounded ⊆ free.
  EXPECT_TRUE(ContainedIn(bounded, free, *f.vocab));
  // The reverse needs V > 5 justified in `free` — it is not.
  EXPECT_FALSE(ContainedIn(free, bounded, *f.vocab));
  // Identical comparisons line up.
  auto bounded2 = f.Q("Q(X) :- R(X, V), V > 5.");
  EXPECT_TRUE(ContainedIn(bounded, bounded2, *f.vocab));
}

TEST(Containment, GroundTrueComparisonIsJustified) {
  Queries f;
  auto concrete = f.Q("Q(X) :- R(X, 7).");
  auto bounded = f.Q("Q(X) :- R(X, V), V > 5.");
  // Mapping V -> 7 makes q2's comparison ground and true.
  EXPECT_TRUE(ContainedIn(concrete, bounded, *f.vocab));
  auto small = f.Q("Q(X) :- R(X, 3).");
  EXPECT_FALSE(ContainedIn(small, bounded, *f.vocab));
}

TEST(Containment, NegationIsNeverContained) {
  Queries f;
  auto neg = f.Q("Q(X) :- R(X, Y), not S(X).");
  auto pos = f.Q("Q(X) :- R(X, Y).");
  EXPECT_FALSE(ContainedIn(neg, pos, *f.vocab));
  EXPECT_FALSE(ContainedIn(pos, neg, *f.vocab));
}

TEST(MinimizeUcq, DropsSubsumedMembers) {
  Queries f;
  std::vector<ConjunctiveQuery> ucq;
  ucq.push_back(f.Q("Q(X) :- R(X, Y), S(Y)."));  // ⊆ the next one
  ucq.push_back(f.Q("Q(X) :- R(X, Y)."));
  ucq.push_back(f.Q("Q(X) :- T(X)."));  // incomparable
  auto minimized = MinimizeUcq(std::move(ucq), *f.vocab);
  ASSERT_EQ(minimized.size(), 2u);
}

TEST(MinimizeUcq, KeepsOneOfEquivalentPair) {
  Queries f;
  std::vector<ConjunctiveQuery> ucq;
  ucq.push_back(f.Q("Q(X) :- R(X, Y)."));
  ucq.push_back(f.Q("Q(A) :- R(A, B)."));  // α-equivalent
  auto minimized = MinimizeUcq(std::move(ucq), *f.vocab);
  EXPECT_EQ(minimized.size(), 1u);
}

TEST(MinimizeQuery, DropsRedundantAtoms) {
  Queries f;
  // The second R-atom is a homomorphic image of the first: redundant.
  auto q = f.Q("Q(X) :- R(X, Y), R(X, Y2).");
  auto core = MinimizeQuery(q, *f.vocab);
  EXPECT_EQ(core.body.size(), 1u);
  EXPECT_TRUE(ContainedIn(core, q, *f.vocab));
  EXPECT_TRUE(ContainedIn(q, core, *f.vocab));
}

TEST(MinimizeQuery, KeepsNonRedundantJoins) {
  Queries f;
  auto q = f.Q("Q(X, Z) :- R(X, Y), S(Y, Z).");
  EXPECT_EQ(MinimizeQuery(q, *f.vocab).body.size(), 2u);
  auto triangle = f.Q("Q() :- E(X, Y), E(Y, Z), E(Z, X).");
  EXPECT_EQ(MinimizeQuery(triangle, *f.vocab).body.size(), 3u);
}

TEST(MinimizeQuery, RespectsAnswerVariableSafety) {
  Queries f;
  // Dropping S(Y) would unbind the answer variable Y.
  auto q = f.Q("Q(Y) :- R(X), S(Y).");
  EXPECT_EQ(MinimizeQuery(q, *f.vocab).body.size(), 2u);
}

TEST(MinimizeQuery, RespectsComparisonSafety) {
  Queries f;
  auto q = f.Q("Q(X) :- R(X), S(V), V > 3.");
  // S(V) binds the comparison variable; only duplicates could go.
  EXPECT_EQ(MinimizeQuery(q, *f.vocab).body.size(), 2u);
}

TEST(MinimizeUcq, RewriterOutputIsMinimal) {
  // Factorization produces a subsumed CQ; the minimizer removes it, so
  // every kept member is incomparable with every other.
  auto p = Parser::ParseProgram(
      "Person(\"ann\").\n"
      "HasParent(X, Z) :- Person(X).\n");
  ASSERT_TRUE(p.ok());
  auto q = Parser::ParseQuery("Q(X) :- HasParent(X, Z), HasParent(X2, Z).",
                              p->mutable_vocab());
  ASSERT_TRUE(q.ok());
  auto ucq = qa::UcqRewriter::Rewrite(*p, *q);
  ASSERT_TRUE(ucq.ok()) << ucq.status();
  for (size_t i = 0; i < ucq->size(); ++i) {
    for (size_t j = 0; j < ucq->size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(ContainedIn((*ucq)[i], (*ucq)[j], *p->vocab()))
          << i << " subsumed by " << j;
    }
  }
}

}  // namespace
}  // namespace mdqa::datalog
