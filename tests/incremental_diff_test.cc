// Differential incremental-vs-from-scratch harness: over hundreds of
// seeded update sequences, resuming the chase from a captured frontier
// (`Chase::Extend` / `ChaseQa::Extend` / `PreparedContext::ApplyUpdate` +
// `Assessor::Reassess`) must produce results *byte-identical* to tearing
// everything down and re-chasing the extended extensional set from
// scratch — same instance render, same certain answers, same assessment
// reports (ToString AND ToJson), serially and on a thread pool at 1 and
// 4 workers. Null-creating programs compare via the canonical null
// renaming (`Instance::ToCanonicalString`), since the incremental and
// the from-scratch runs mint their nulls in different orders.
//
// Generators are shared with the other property harnesses via
// src/testgen/generators.h — everything is a pure function of the seed, so
// failures reproduce from the test parameter alone. See
// docs/incremental.md for the design and the fallback matrix.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "base/thread_pool.h"
#include "datalog/chase.h"
#include "datalog/instance.h"
#include "datalog/parser.h"
#include "testgen/generators.h"
#include "qa/chase_qa.h"
#include "quality/assessor.h"
#include "scenarios/hospital.h"
#include "scenarios/synthetic.h"

namespace mdqa {
namespace {

using datalog::Atom;
using datalog::Chase;
using datalog::ChaseOptions;
using datalog::ChaseStats;
using datalog::Instance;
using datalog::Parser;
using datalog::Program;
using qa::ChaseQa;
using testgen::UpdateSequence;

// Certain answers rendered as sorted display strings, so engines over
// *different* vocabularies (the incremental one interned delta constants
// late; the from-scratch one interned them in program order) compare
// byte for byte.
std::vector<std::string> RenderAnswers(const ChaseQa& engine,
                                       Program* program,
                                       const std::string& query_text) {
  auto query = Parser::ParseQuery(query_text, program->mutable_vocab());
  EXPECT_TRUE(query.ok()) << query.status() << " on " << query_text;
  if (!query.ok()) return {};
  auto answers = engine.Answers(*query);
  EXPECT_TRUE(answers.ok()) << answers.status();
  if (!answers.ok()) return {};
  std::vector<std::string> out;
  for (const auto& tuple : *answers) {
    std::string line;
    for (size_t i = 0; i < tuple.size(); ++i) {
      if (i > 0) line += ", ";
      line += program->vocab()->TermToString(tuple[i]);
    }
    out.push_back(std::move(line));
  }
  std::sort(out.begin(), out.end());
  return out;
}

// One engine extended batch by batch against a from-scratch rebuild per
// batch. `pool_threads == 0` runs serially; otherwise the incremental
// side chases on a pool with the sharded-matching threshold forced down,
// while the from-scratch side stays serial — so the comparison also
// covers parallel-vs-serial.
void ExpectExtendMatchesRebuild(uint32_t seed, size_t pool_threads) {
  const UpdateSequence s = testgen::GenerateUpdateSequence(seed);
  ThreadPool pool(pool_threads == 0 ? 1 : pool_threads);
  ChaseOptions options;
  if (pool_threads > 0) {
    options.pool = &pool;
    options.min_parallel_seeds = 1;
  }
  auto program = Parser::ParseProgram(s.base.program_text);
  ASSERT_TRUE(program.ok()) << program.status() << "\n" << s.base.program_text;
  auto inc = ChaseQa::Create(*program, options);
  ASSERT_TRUE(inc.ok()) << inc.status();

  std::string accumulated = s.base.program_text;
  for (size_t b = 0; b < s.batches.size(); ++b) {
    std::vector<Atom> atoms;
    for (const std::string& stmt : s.batches[b]) {
      accumulated += stmt + ".\n";
      auto atom = Parser::ParseGroundAtom(stmt, program->mutable_vocab());
      ASSERT_TRUE(atom.ok()) << atom.status() << " on " << stmt;
      atoms.push_back(*atom);
    }
    auto stats = inc->Extend(atoms);
    ASSERT_TRUE(stats.ok()) << stats.status();
    EXPECT_TRUE(stats->incremental);
    // The generated families (plain/recursive Datalog, single-head
    // existentials) are all within the incremental path's coverage.
    EXPECT_FALSE(stats->extend_fallback) << stats->fallback_reason;

    auto rebuilt_program = Parser::ParseProgram(accumulated);
    ASSERT_TRUE(rebuilt_program.ok()) << rebuilt_program.status();
    auto full = ChaseQa::Create(*rebuilt_program, ChaseOptions{});
    ASSERT_TRUE(full.ok()) << full.status();

    if (s.base.downward) {
      EXPECT_EQ(inc->instance().ToCanonicalString(),
                full->instance().ToCanonicalString())
          << "instance diverged at seed=" << seed << " batch=" << b
          << " threads=" << pool_threads << "\nprogram:\n"
          << accumulated;
    } else {
      EXPECT_EQ(inc->instance().ToString(), full->instance().ToString())
          << "instance diverged at seed=" << seed << " batch=" << b
          << " threads=" << pool_threads << "\nprogram:\n"
          << accumulated;
    }
    for (const std::string& text : s.base.queries) {
      EXPECT_EQ(RenderAnswers(*inc, &*program, text),
                RenderAnswers(*full, &*rebuilt_program, text))
          << "answers diverged at seed=" << seed << " batch=" << b
          << " on " << text;
    }
  }
}

class IncrementalChaseDiff : public ::testing::TestWithParam<uint32_t> {};

TEST_P(IncrementalChaseDiff, SerialExtendMatchesRebuild) {
  ExpectExtendMatchesRebuild(GetParam(), 0);
}

TEST_P(IncrementalChaseDiff, PooledExtendMatchesRebuildOneThread) {
  ExpectExtendMatchesRebuild(GetParam(), 1);
}

TEST_P(IncrementalChaseDiff, PooledExtendMatchesRebuildFourThreads) {
  ExpectExtendMatchesRebuild(GetParam(), 4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalChaseDiff,
                         ::testing::Range(0u, 210u));

// --- Extend contract: precondition + fallback coverage ------------------

TEST(ExtendContract, InvalidFrontierRejected) {
  auto program = Parser::ParseProgram("P(\"a\").\nQ(X) :- P(X).\n");
  ASSERT_TRUE(program.ok());
  Instance instance = Instance::FromProgram(*program);
  datalog::ChaseFrontier frontier;  // never captured
  ChaseStats stats;
  Status status = Chase::Extend(*program, &instance, frontier, {},
                                ChaseOptions{}, &stats);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition) << status;
}

TEST(ExtendContract, StaleFrontierRejected) {
  auto program = Parser::ParseProgram("P(\"a\").\nQ(X) :- P(X).\n");
  ASSERT_TRUE(program.ok());
  Instance instance = Instance::FromProgram(*program);
  ChaseStats stats;
  ASSERT_TRUE(Chase::Run(*program, &instance, ChaseOptions{}, &stats).ok());
  ASSERT_TRUE(stats.frontier.valid);
  // Any out-of-band mutation invalidates the captured frontier.
  auto atom = Parser::ParseGroundAtom("P(\"b\")", program->mutable_vocab());
  ASSERT_TRUE(atom.ok());
  instance.AddFact(*atom, 0);
  ChaseStats stats2;
  Status status = Chase::Extend(*program, &instance, stats.frontier, {*atom},
                                ChaseOptions{}, &stats2);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition) << status;
  EXPECT_NE(status.message().find("stale"), std::string::npos) << status;
}

// Each fallback is exact (matches the from-scratch rebuild) and recorded.
void ExpectFallbackMatchesRebuild(const std::string& base_text,
                                  const std::string& delta_stmt,
                                  const ChaseOptions& options,
                                  const std::string& reason_substr) {
  auto program = Parser::ParseProgram(base_text);
  ASSERT_TRUE(program.ok()) << program.status();
  auto inc = ChaseQa::Create(*program, options);
  ASSERT_TRUE(inc.ok()) << inc.status();
  auto atom = Parser::ParseGroundAtom(delta_stmt, program->mutable_vocab());
  ASSERT_TRUE(atom.ok()) << atom.status();
  auto stats = inc->Extend({*atom});
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_TRUE(stats->extend_fallback);
  EXPECT_NE(stats->fallback_reason.find(reason_substr), std::string::npos)
      << stats->fallback_reason;

  auto rebuilt = Parser::ParseProgram(base_text + delta_stmt + ".\n");
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  auto full = ChaseQa::Create(*rebuilt, options);
  ASSERT_TRUE(full.ok()) << full.status();
  EXPECT_EQ(inc->instance().ToCanonicalString(),
            full->instance().ToCanonicalString());
}

TEST(ExtendContract, NegationFallsBackExactly) {
  ExpectFallbackMatchesRebuild(
      "P(\"a\").\nP(\"b\").\nR(\"a\").\nQ(X) :- P(X), not R(X).\n",
      "R(\"b\")", ChaseOptions{}, "negation");
}

TEST(ExtendContract, SemiObliviousFallsBackExactly) {
  ChaseOptions options;
  options.restricted = false;
  ExpectFallbackMatchesRebuild(
      "PW(\"w0\", \"p0\").\nUW(\"u0\", \"w0\").\n"
      "PU(U, P) :- PW(W, P), UW(U, W).\n",
      "PW(\"w0\", \"p1\")", options, "semi-oblivious");
}

// The narrowed no-fallback cases: exact (matches the from-scratch
// rebuild) *without* leaving the delta path.
void ExpectNoFallbackMatchesRebuild(const std::string& base_text,
                                    const std::string& delta_stmt,
                                    const ChaseOptions& options) {
  auto program = Parser::ParseProgram(base_text);
  ASSERT_TRUE(program.ok()) << program.status();
  auto inc = ChaseQa::Create(*program, options);
  ASSERT_TRUE(inc.ok()) << inc.status();
  auto atom = Parser::ParseGroundAtom(delta_stmt, program->mutable_vocab());
  ASSERT_TRUE(atom.ok()) << atom.status();
  auto stats = inc->Extend({*atom});
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_FALSE(stats->extend_fallback) << stats->fallback_reason;

  auto rebuilt = Parser::ParseProgram(base_text + delta_stmt + ".\n");
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  auto full = ChaseQa::Create(*rebuilt, options);
  ASSERT_TRUE(full.ok()) << full.status();
  EXPECT_EQ(inc->instance().ToCanonicalString(),
            full->instance().ToCanonicalString());
}

TEST(ExtendContract, NonSeparableEgdFallsBackExactly) {
  // egds_separable defaults to false, the EGD can merge labeled nulls
  // (Z sits at an affected position), and the delta reaches it through
  // U: the extension must not assume the TGD/EGD alternation converges.
  ExpectFallbackMatchesRebuild(
      "T(\"a\").\nV(\"a\", \"b\").\nU(X, Z) :- T(X).\n"
      "Z = W :- U(X, Z), V(X, W).\n",
      "T(\"b\")", ChaseOptions{}, "separable");
}

TEST(ExtendContract, NullFreeEgdStaysIncremental) {
  // The null-flow analysis proves this EGD null-free (the program has no
  // existentials, so no position ever carries a labeled null): it can
  // only no-op or report a constant clash, both of which the delta path
  // handles — no declared separability needed. This family fell back
  // before the position-granular analysis.
  ExpectNoFallbackMatchesRebuild(
      "T(\"w1\", \"a\").\nT(\"w2\", \"b\").\nS(X) :- T(W, X).\n"
      "X = Y :- T(W, X), T(W, Y).\n",
      "T(\"w3\", \"c\")", ChaseOptions{});
}

TEST(ExtendContract, UnreachableEgdStaysIncremental) {
  // The EGD *can* merge nulls (Z is existential), but the delta's
  // predicate-dependency closure ({P, S}) never reaches its body (U):
  // the alternation is provably a no-op for this update.
  ExpectNoFallbackMatchesRebuild(
      "P(\"a\").\nN(\"n1\").\nU(X, Z) :- N(X).\n"
      "Z = W :- U(X, Z), U(X, W).\nS(X) :- P(X).\n",
      "P(\"b\")", ChaseOptions{});
}

TEST(ExtendContract, ReachableForm10FallsBackExactly) {
  // A form-(10)-shaped rule (multi-atom head with existentials) fed by
  // the delta still forces the re-chase.
  ExpectFallbackMatchesRebuild(
      "P(\"a\").\nR(X, Y), Q(Y) :- P(X).\n",
      "P(\"b\")", ChaseOptions{}, "form-(10)");
}

TEST(ExtendContract, UnfedForm10StaysIncremental) {
  // The same rule shape fed only by M, which the delta (over P) cannot
  // feed: it never fires during the extension, so the delta path runs.
  // This family fell back before the null-flow analysis.
  ExpectNoFallbackMatchesRebuild(
      "P(\"a\").\nM(\"m\").\nR(X, Y), Q(Y) :- M(X).\nS(X) :- P(X).\n",
      "P(\"b\")", ChaseOptions{});
}

// --- Quality layer: ApplyUpdate + Reassess vs a fresh full assessment ---

Relation CopyRelation(const Database& db, const std::string& name) {
  auto rel = db.GetRelation(name);
  EXPECT_TRUE(rel.ok()) << rel.status();
  return **rel;
}

class QualityUpdateDiff : public ::testing::TestWithParam<uint32_t> {};

TEST_P(QualityUpdateDiff, ReassessMatchesFullAssess) {
  const uint32_t seed = GetParam();
  scenarios::SyntheticSpec spec;
  spec.institutions = 1 + static_cast<int>(seed % 2);
  spec.units_per_institution = 1 + static_cast<int>(seed % 3);
  spec.wards_per_unit = 1 + static_cast<int>((seed / 2) % 2);
  spec.patients = 4 + static_cast<int>(seed % 4);
  spec.days = 2 + static_cast<int>(seed % 2);
  spec.include_downward_rules = (seed % 2) == 0;
  spec.seed = seed * 131 + 5;

  auto context = scenarios::BuildSyntheticContext(spec);
  ASSERT_TRUE(context.ok()) << context.status();
  auto prepared = context->Prepare();
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  quality::Assessor assessor(&*context);
  auto previous = assessor.Assess();
  ASSERT_TRUE(previous.ok()) << previous.status();

  // Seeded batch: a few inserted measurements (existing times, mix of
  // known and brand-new patients); every third seed also deletes an
  // existing row, exercising the recorded full-re-chase fallback.
  std::mt19937 rng(seed * 977 + 3);
  quality::RelationDelta delta;
  delta.relation = "SMeasurements";
  const int n_inserts = 1 + static_cast<int>(rng() % 3);
  for (int i = 0; i < n_inserts; ++i) {
    const int day = static_cast<int>(rng() % static_cast<uint32_t>(spec.days));
    const int patient =
        static_cast<int>(rng() % static_cast<uint32_t>(spec.patients + 3));
    const double value = 36.0 + static_cast<double>(rng() % 40) / 10.0;
    delta.insert_rows.push_back({Value::Str("st" + std::to_string(day)),
                                 Value::Str("sp" + std::to_string(patient)),
                                 Value::Real(value)});
  }
  const bool with_delete = (seed % 3) == 0;
  if (with_delete) {
    const Relation victim = CopyRelation(prepared->database(),
                                         "SMeasurements");
    ASSERT_GT(victim.size(), 0u);
    delta.delete_rows.push_back(
        victim.row(rng() % static_cast<uint32_t>(victim.size())));
  }
  quality::DeltaBatch batch;
  batch.deltas.push_back(std::move(delta));

  auto next = prepared->ApplyUpdate(batch);
  ASSERT_TRUE(next.ok()) << next.status();
  if (with_delete) {
    EXPECT_TRUE(next->chase_stats().extend_fallback)
        << "deletions must take the recorded full-re-chase path";
  }
  auto incremental = assessor.Reassess(*next, *previous);
  ASSERT_TRUE(incremental.ok()) << incremental.status();

  // From-scratch baseline: a fresh context whose database already
  // contains the update, fully assessed.
  auto baseline_context = scenarios::BuildSyntheticContext(spec);
  ASSERT_TRUE(baseline_context.ok()) << baseline_context.status();
  Database patch;
  patch.PutRelation(CopyRelation(next->database(), "SMeasurements"));
  ASSERT_TRUE(baseline_context->SetDatabase(std::move(patch)).ok());
  quality::Assessor baseline_assessor(&*baseline_context);
  auto full = baseline_assessor.Assess();
  ASSERT_TRUE(full.ok()) << full.status();

  EXPECT_EQ(incremental->ToString(), full->ToString())
      << "report text diverged at seed=" << seed;
  EXPECT_EQ(incremental->ToJson(), full->ToJson())
      << "report json diverged at seed=" << seed;

  // Pooled re-assessment (4 workers) must render identically too.
  ThreadPool pool(4);
  quality::AssessOptions pooled_options;
  pooled_options.pool = &pool;
  auto pooled = assessor.Reassess(*next, *previous, pooled_options);
  ASSERT_TRUE(pooled.ok()) << pooled.status();
  EXPECT_EQ(pooled->ToString(), full->ToString());
  EXPECT_EQ(pooled->ToJson(), full->ToJson());
}

INSTANTIATE_TEST_SUITE_P(Seeds, QualityUpdateDiff, ::testing::Range(0u, 24u));

// Adds an assessed relation that is independent of Measurements, so the
// dependency analysis can actually *skip* it (the hospital ontology
// without constraints has no EGDs, which would otherwise force a full
// recompute), and checks the skipping is invisible in the rendered
// report.
void AddAuditRelation(quality::QualityContext* context) {
  Database extra;
  auto schema =
      RelationSchema::Create("Audit", std::vector<std::string>{"Id"});
  ASSERT_TRUE(schema.ok()) << schema.status();
  ASSERT_TRUE(extra.AddRelation(std::move(*schema)).ok());
  for (const char* id : {"a1", "a2", "a3"}) {
    ASSERT_TRUE(extra.InsertText("Audit", {id}).ok());
  }
  ASSERT_TRUE(context->SetDatabase(std::move(extra)).ok());
  ASSERT_TRUE(context->MapRelationToContext("Audit", "Auditc").ok());
  ASSERT_TRUE(context
                  ->DefineQualityVersion("Audit", "Auditq",
                                         "Auditq(X) :- Auditc(X).\n")
                  .ok());
}

TEST(QualityUpdateDiffSkip, IndependentRelationCopiedVerbatim) {
  scenarios::HospitalOptions options;
  options.include_downward_rules = false;  // upward-only: no form (10)
  options.include_constraints = false;     // no EGDs: skipping is legal
  auto context = scenarios::BuildHospitalContext(options);
  ASSERT_TRUE(context.ok()) << context.status();
  AddAuditRelation(&*context);

  auto prepared = context->Prepare();
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  quality::Assessor assessor(&*context);
  auto previous = assessor.Assess();
  ASSERT_TRUE(previous.ok()) << previous.status();
  ASSERT_EQ(previous->per_relation.size(), 2u);

  quality::RelationDelta delta;
  delta.relation = "Measurements";
  delta.insert_rows.push_back({Value::Str("Sep/5-12:10"),
                               Value::Str("Lou Reed"), Value::Real(37.9)});
  quality::DeltaBatch batch;
  batch.deltas.push_back(std::move(delta));
  auto next = prepared->ApplyUpdate(batch);
  ASSERT_TRUE(next.ok()) << next.status();
  EXPECT_FALSE(next->chase_stats().extend_fallback)
      << next->chase_stats().fallback_reason;
  EXPECT_EQ(next->updated_relations(),
            std::vector<std::string>{"Measurements"});

  auto incremental = assessor.Reassess(*next, *previous);
  ASSERT_TRUE(incremental.ok()) << incremental.status();

  auto baseline_context = scenarios::BuildHospitalContext(options);
  ASSERT_TRUE(baseline_context.ok()) << baseline_context.status();
  AddAuditRelation(&*baseline_context);
  Database patch;
  patch.PutRelation(CopyRelation(next->database(), "Measurements"));
  ASSERT_TRUE(baseline_context->SetDatabase(std::move(patch)).ok());
  auto full = quality::Assessor(&*baseline_context).Assess();
  ASSERT_TRUE(full.ok()) << full.status();

  EXPECT_EQ(incremental->ToString(), full->ToString());
  EXPECT_EQ(incremental->ToJson(), full->ToJson());
}

// Snapshot isolation: two different updates branched off the same
// prepared session stay independent, and the parent session is
// untouched.
TEST(QualityUpdateDiffSkip, SessionsBranchIndependently) {
  scenarios::HospitalOptions options;
  options.include_downward_rules = false;
  options.include_constraints = false;
  auto context = scenarios::BuildHospitalContext(options);
  ASSERT_TRUE(context.ok()) << context.status();
  auto prepared = context->Prepare();
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  const size_t base_facts = prepared->instance().TotalFacts();
  const size_t base_rows =
      CopyRelation(prepared->database(), "Measurements").size();

  auto branch = [&](const char* time, const char* patient, double value) {
    quality::RelationDelta delta;
    delta.relation = "Measurements";
    delta.insert_rows.push_back(
        {Value::Str(time), Value::Str(patient), Value::Real(value)});
    quality::DeltaBatch batch;
    batch.deltas.push_back(std::move(delta));
    return prepared->ApplyUpdate(batch);
  };
  auto left = branch("Sep/5-12:10", "Lou Reed", 37.9);
  ASSERT_TRUE(left.ok()) << left.status();
  auto right = branch("Sep/9-12:00", "Lou Reed", 36.8);
  ASSERT_TRUE(right.ok()) << right.status();

  // The parent saw neither update; each branch saw exactly its own.
  EXPECT_EQ(prepared->instance().TotalFacts(), base_facts);
  EXPECT_EQ(CopyRelation(prepared->database(), "Measurements").size(),
            base_rows);
  EXPECT_EQ(CopyRelation(left->database(), "Measurements").size(),
            base_rows + 1);
  EXPECT_EQ(CopyRelation(right->database(), "Measurements").size(),
            base_rows + 1);
  EXPECT_GT(left->instance().TotalFacts(), base_facts);
  EXPECT_GT(right->instance().TotalFacts(), base_facts);
  EXPECT_NE(left->instance().ToString(), right->instance().ToString());
}

}  // namespace
}  // namespace mdqa
