#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "datalog/chase.h"
#include "datalog/column.h"
#include "datalog/cq_eval.h"
#include "datalog/instance.h"
#include "datalog/parser.h"
#include "datalog/segment.h"

namespace mdqa::datalog {
namespace {

// ---------------------------------------------------------------- Column

TEST(Column, DictEncodesAndPostsAscending) {
  Column c;
  Term a = Term::Constant(1), b = Term::Constant(2);
  bool fresh = false;
  EXPECT_EQ(c.Append(a, &fresh), 0u);
  EXPECT_TRUE(fresh);
  EXPECT_EQ(c.Append(b, &fresh), 1u);
  EXPECT_TRUE(fresh);
  EXPECT_EQ(c.Append(a, &fresh), 0u);  // re-appearance reuses the code
  EXPECT_FALSE(fresh);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.DistinctTerms(), 2u);
  EXPECT_EQ(c.CodeOf(a), 0u);
  EXPECT_EQ(c.CodeOf(b), 1u);
  EXPECT_EQ(c.CodeOf(Term::Constant(99)), Column::kNoCode);
  EXPECT_EQ(c.Postings(0), (std::vector<uint32_t>{0, 2}));
  EXPECT_EQ(c.Postings(1), (std::vector<uint32_t>{1}));
  EXPECT_EQ(c.TermAt(2), a);
  EXPECT_EQ(c.TermOfCode(1), b);
  EXPECT_GT(c.MemoryEstimateBytes(), 0u);
}

// Satellite regression: with every encode-map key forced into one bucket,
// distinct terms still get distinct codes and CodeOf resolves each one —
// the dictionary verification, not the hash, must be load-bearing.
TEST(Column, TotalHashCollisionStillResolvesExactly) {
  Column c;
  c.set_hash_mask_for_test(0);
  constexpr int kTerms = 64;
  for (int i = 0; i < kTerms; ++i) {
    bool fresh = false;
    EXPECT_EQ(c.Append(Term::Constant(i), &fresh), static_cast<uint32_t>(i));
    EXPECT_TRUE(fresh);
  }
  for (int i = 0; i < kTerms; ++i) {
    bool fresh = true;
    c.Append(Term::Constant(i), &fresh);  // all duplicates
    EXPECT_FALSE(fresh);
  }
  EXPECT_EQ(c.DistinctTerms(), static_cast<size_t>(kTerms));
  for (int i = 0; i < kTerms; ++i) {
    EXPECT_EQ(c.CodeOf(Term::Constant(i)), static_cast<uint32_t>(i));
    EXPECT_EQ(c.Postings(i),
              (std::vector<uint32_t>{static_cast<uint32_t>(i),
                                     static_cast<uint32_t>(i + kTerms)}));
  }
  EXPECT_EQ(c.CodeOf(Term::Constant(kTerms)), Column::kNoCode);
  // Nulls and constants with colliding masked hashes stay distinct too.
  EXPECT_EQ(c.CodeOf(Term::Null(0)), Column::kNoCode);
}

// --------------------------------------------------------------- Segment

TEST(Segment, AppendsRowsColumnWise) {
  Segment s(2);
  Term r1[2] = {Term::Constant(1), Term::Constant(10)};
  Term r2[2] = {Term::Constant(1), Term::Constant(20)};
  uint8_t fresh[2] = {0, 0};
  s.Append(r1, fresh);
  EXPECT_EQ(fresh[0], 1);
  EXPECT_EQ(fresh[1], 1);
  s.Append(r2, fresh);
  EXPECT_EQ(fresh[0], 0);  // constant 1 already in column 0's dictionary
  EXPECT_EQ(fresh[1], 1);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_EQ(s.arity(), 2u);
  EXPECT_EQ(s.column(0).DistinctTerms(), 1u);
  EXPECT_EQ(s.column(1).DistinctTerms(), 2u);
  EXPECT_GT(s.MemoryEstimateBytes(), 0u);
}

// ----------------------------------------------------- FactTable columnar

TEST(FactTableColumnar, DefaultModeIsColumnar) {
  FactTable t(2);
  EXPECT_EQ(t.storage_mode(), StorageMode::kColumnar);
  EXPECT_EQ(t.NumSegments(), 1u);  // just the mutable overlay
  FactTable r(2, StorageMode::kRow);
  EXPECT_EQ(r.storage_mode(), StorageMode::kRow);
  EXPECT_EQ(r.NumSegments(), 0u);
}

TEST(FactTableColumnar, DuplicateInsertLowersLevel) {
  FactTable t(2);
  Term row[2] = {Term::Constant(1), Term::Constant(2)};
  EXPECT_TRUE(t.Insert(row, 3));
  EXPECT_FALSE(t.Insert(row, 5));
  EXPECT_EQ(t.Level(0), 3u);
  EXPECT_FALSE(t.Insert(row, 1));
  EXPECT_EQ(t.Level(0), 1u);
  EXPECT_EQ(t.size(), 1u);
}

TEST(FactTableColumnar, ArityZeroTable) {
  for (StorageMode mode : {StorageMode::kRow, StorageMode::kColumnar}) {
    FactTable t(0, mode);
    Term* row = nullptr;
    EXPECT_TRUE(t.Insert(row, 0));
    EXPECT_FALSE(t.Insert(row, 1));  // the single empty row is a duplicate
    EXPECT_EQ(t.size(), 1u);
    EXPECT_TRUE(t.Contains(row));
    EXPECT_EQ(t.DistinctAt(0), 0u);  // no positions
    EXPECT_GE(t.MemoryEstimateBytes(), 0u);
  }
}

TEST(FactTableColumnar, ProbeAndDistinctMatchRowMode) {
  FactTable col(2, StorageMode::kColumnar);
  FactTable row(2, StorageMode::kRow);
  for (int i = 0; i < 50; ++i) {
    Term r[2] = {Term::Constant(i % 5), Term::Constant(i)};
    EXPECT_EQ(col.Insert(r, 0), row.Insert(r, 0));
  }
  for (size_t p = 0; p < 2; ++p) {
    EXPECT_EQ(col.DistinctAt(p), row.DistinctAt(p));
    for (int v = 0; v < 50; ++v) {
      Term t = Term::Constant(v);
      EXPECT_EQ(col.Probe(p, t), row.Probe(p, t));
      EXPECT_EQ(col.ProbeCount(p, t), row.ProbeCount(p, t));
    }
  }
  // Row mode always exposes a zero-copy list; single-segment columnar too.
  EXPECT_NE(row.ProbeRef(0, Term::Constant(1)), nullptr);
  EXPECT_NE(col.ProbeRef(0, Term::Constant(1)), nullptr);
  // An absent term yields an empty (but non-null) reference.
  ASSERT_NE(row.ProbeRef(0, Term::Constant(777)), nullptr);
  EXPECT_TRUE(row.ProbeRef(0, Term::Constant(777))->empty());
}

// Satellite regression: force total collision in every hash-keyed probe
// structure of BOTH layouts; exact-match behavior must be unchanged.
TEST(FactTableColumnar, TotalHashCollisionKeepsExactSemantics) {
  for (StorageMode mode : {StorageMode::kRow, StorageMode::kColumnar}) {
    FactTable t(2, mode);
    t.set_hash_mask_for_test(0);
    for (int i = 0; i < 32; ++i) {
      Term r[2] = {Term::Constant(i), Term::Constant(i % 3)};
      EXPECT_TRUE(t.Insert(r, 0)) << StorageModeToString(mode);
      EXPECT_FALSE(t.Insert(r, 0));  // duplicate despite colliding hash
    }
    EXPECT_EQ(t.size(), 32u);
    EXPECT_EQ(t.DistinctAt(0), 32u);
    EXPECT_EQ(t.DistinctAt(1), 3u);
    for (int i = 0; i < 32; ++i) {
      Term r[2] = {Term::Constant(i), Term::Constant(i % 3)};
      EXPECT_TRUE(t.Contains(r));
      EXPECT_EQ(t.ProbeCount(0, Term::Constant(i)), 1u);
    }
    Term absent[2] = {Term::Constant(99), Term::Constant(0)};
    EXPECT_FALSE(t.Contains(absent));
    EXPECT_TRUE(t.Probe(0, Term::Constant(99)).empty());
    EXPECT_EQ(t.ProbeCount(1, Term::Constant(0)), 11u);
  }
}

// -------------------------------------------------- sealing & segments

TEST(FactTableColumnar, SealOverlayBuildsSegmentChain) {
  FactTable t(2);
  for (int i = 0; i < 4; ++i) {
    Term r[2] = {Term::Constant(i % 2), Term::Constant(i)};
    t.Insert(r, 0);
  }
  t.MarkFrozen();
  t.SealOverlay();
  EXPECT_EQ(t.NumSegments(), 2u);  // sealed + fresh empty overlay
  EXPECT_EQ(t.SegmentAt(0).base, 0u);
  EXPECT_EQ(t.SegmentAt(0).segment->rows(), 4u);
  EXPECT_EQ(t.SegmentAt(1).base, 4u);
  EXPECT_EQ(t.SegmentAt(1).segment->rows(), 0u);

  // Overlay appends after the freeze land above the watermark and are
  // visible to probes alongside the sealed base, globally ascending.
  for (int i = 4; i < 8; ++i) {
    Term r[2] = {Term::Constant(i % 2), Term::Constant(i)};
    EXPECT_TRUE(t.Insert(r, 1));
  }
  EXPECT_EQ(t.frozen_rows(), 4u);
  EXPECT_EQ(t.size(), 8u);
  EXPECT_EQ(t.Probe(0, Term::Constant(0)),
            (std::vector<uint32_t>{0, 2, 4, 6}));
  EXPECT_EQ(t.ProbeCount(0, Term::Constant(1)), 4u);
  EXPECT_EQ(t.DistinctAt(0), 2u);  // spans segments without double count
  EXPECT_EQ(t.DistinctAt(1), 8u);
  // Multi-segment gathers have no single contiguous list to reference.
  EXPECT_EQ(t.ProbeRef(0, Term::Constant(0)), nullptr);
  // Sealing the (now non-empty) overlay again grows the chain.
  t.SealOverlay();
  EXPECT_EQ(t.NumSegments(), 3u);
  EXPECT_EQ(t.Probe(0, Term::Constant(0)),
            (std::vector<uint32_t>{0, 2, 4, 6}));
}

TEST(FactTableColumnar, SealingEmptyOverlayIsNoOp) {
  FactTable t(1);
  Term r[1] = {Term::Constant(1)};
  t.Insert(r, 0);
  t.SealOverlay();
  size_t segments = t.NumSegments();
  t.SealOverlay();  // overlay empty: nothing to seal
  EXPECT_EQ(t.NumSegments(), segments);
}

// Joins/probes against a table whose sealed chain contains rows but whose
// overlay is empty (the steady state after Instance::Freeze).
TEST(FactTableColumnar, EmptyOverlayProbes) {
  FactTable t(2);
  Term r[2] = {Term::Constant(1), Term::Constant(2)};
  t.Insert(r, 0);
  t.SealOverlay();
  EXPECT_TRUE(t.Contains(r));
  EXPECT_EQ(t.ProbeCount(0, Term::Constant(1)), 1u);
  Term r2[2] = {Term::Constant(1), Term::Constant(3)};
  EXPECT_FALSE(t.Contains(r2));
  EXPECT_TRUE(t.Probe(1, Term::Constant(3)).empty());
}

// ------------------------------------------------------ Instance::Freeze

TEST(InstanceColumnar, FreezeSealsUnsharedTables) {
  auto p = Parser::ParseProgram("P(\"a\"). P(\"b\"). Q(\"a\", \"b\").");
  ASSERT_TRUE(p.ok());
  Instance inst = Instance::FromProgram(*p);
  EXPECT_EQ(inst.storage_mode(), StorageMode::kColumnar);
  uint32_t pred = p->vocab()->FindPredicate("P");
  EXPECT_EQ(inst.Table(pred)->NumSegments(), 1u);
  inst.Freeze();
  EXPECT_EQ(inst.Table(pred)->NumSegments(), 2u);
  EXPECT_EQ(inst.Table(pred)->frozen_rows(), 2u);
}

TEST(InstanceColumnar, FreezeLeavesSharedTablesUnsealed) {
  auto p = Parser::ParseProgram("P(\"a\"). P(\"b\").");
  ASSERT_TRUE(p.ok());
  Instance inst = Instance::FromProgram(*p);
  Instance snapshot = inst.Snapshot();  // shares every table
  uint32_t pred = p->vocab()->FindPredicate("P");
  ASSERT_TRUE(inst.SharesTableWith(snapshot, pred));
  inst.Freeze();
  // The watermark is set, but the shared table must not restructure its
  // segment chain under a concurrent snapshot reader.
  EXPECT_EQ(inst.Table(pred)->frozen_rows(), 2u);
  EXPECT_EQ(inst.Table(pred)->NumSegments(), 1u);
  // Once the snapshot is the only holder... (mutating through inst first
  // clones the table, after which Freeze can seal the private copy).
  Atom extra(pred, {inst.vocab()->Const(Value::Str("c"))});
  EXPECT_TRUE(inst.AddFact(extra, 0));
  ASSERT_FALSE(inst.SharesTableWith(snapshot, pred));
  inst.Freeze();
  EXPECT_EQ(inst.Table(pred)->NumSegments(), 2u);
  // The snapshot still sees exactly its two original facts.
  EXPECT_EQ(snapshot.CountFacts(pred), 2u);
  EXPECT_EQ(inst.CountFacts(pred), 3u);
}

TEST(InstanceColumnar, MemoryEstimateCoversBothLayouts) {
  auto p = Parser::ParseProgram("P(\"a\"). P(\"b\"). Q(\"a\", \"b\").");
  ASSERT_TRUE(p.ok());
  Instance col = Instance::FromProgram(*p, StorageMode::kColumnar);
  Instance row = Instance::FromProgram(*p, StorageMode::kRow);
  EXPECT_GT(col.MemoryEstimateBytes(), 0u);
  EXPECT_GT(row.MemoryEstimateBytes(), 0u);
}

// ----------------------------------------- row vs columnar equivalence

constexpr char kProgram[] = R"(
  Edge("a", "b"). Edge("b", "c"). Edge("c", "d"). Edge("a", "c").
  Label("a", "x"). Label("b", "y"). Label("c", "x"). Label("d", "y").
  Path(u, v) :- Edge(u, v).
  Path(u, w) :- Path(u, v), Edge(v, w).
  Same(u, v) :- Label(u, l), Label(v, l).
)";

TEST(RowColumnarEquivalence, ChaseAndAnswersAgree) {
  auto p = Parser::ParseProgram(kProgram);
  ASSERT_TRUE(p.ok());
  Instance col = Instance::FromProgram(*p, StorageMode::kColumnar);
  Instance row = Instance::FromProgram(*p, StorageMode::kRow);
  ChaseOptions options;
  ASSERT_TRUE(Chase::Run(*p, &col, options).ok());
  ASSERT_TRUE(Chase::Run(*p, &row, options).ok());
  ASSERT_EQ(col.TotalFacts(), row.TotalFacts());
  // Row order (= derivation order) must match fact by fact, not just as
  // sets: downstream first-derived ordering keys off it.
  for (uint32_t pred : col.Predicates()) {
    std::vector<Atom> cf = col.Facts(pred);
    std::vector<Atom> rf = row.Facts(pred);
    ASSERT_EQ(cf.size(), rf.size());
    for (size_t i = 0; i < cf.size(); ++i) EXPECT_EQ(cf[i], rf[i]);
    const FactTable* ct = col.Table(pred);
    const FactTable* rt = row.Table(pred);
    for (uint32_t i = 0; i < ct->size(); ++i) {
      EXPECT_EQ(ct->Level(i), rt->Level(i));
    }
  }

  // CQ evaluation: answers, their order, and the EvalStats counters must
  // coincide (the vectorized executor reproduces the backtracking path).
  auto q = Parser::ParseQuery("Ans(u, v) :- Path(u, v), Same(u, v).",
                              p->mutable_vocab());
  ASSERT_TRUE(q.ok());
  EvalStats col_stats, row_stats;
  CqEvaluator col_eval(col, &col_stats, nullptr);
  CqEvaluator row_eval(row, &row_stats, nullptr);
  auto col_ans = col_eval.Answers(*q);
  auto row_ans = row_eval.Answers(*q);
  ASSERT_TRUE(col_ans.ok());
  ASSERT_TRUE(row_ans.ok());
  ASSERT_EQ(col_ans->size(), row_ans->size());
  for (size_t i = 0; i < col_ans->size(); ++i) {
    EXPECT_EQ((*col_ans)[i], (*row_ans)[i]);
  }
  EXPECT_EQ(col_stats.solutions, row_stats.solutions);
  EXPECT_EQ(col_stats.rows_tried, row_stats.rows_tried);
  EXPECT_EQ(col_stats.atoms_matched, row_stats.atoms_matched);
  EXPECT_EQ(col_stats.index_probes, row_stats.index_probes);
  EXPECT_EQ(col_stats.full_scans, row_stats.full_scans);
}

TEST(RowColumnarEquivalence, NegationAndComparisonsAgree) {
  auto p = Parser::ParseProgram(kProgram);
  ASSERT_TRUE(p.ok());
  Instance col = Instance::FromProgram(*p, StorageMode::kColumnar);
  Instance row = Instance::FromProgram(*p, StorageMode::kRow);
  ChaseOptions options;
  ASSERT_TRUE(Chase::Run(*p, &col, options).ok());
  ASSERT_TRUE(Chase::Run(*p, &row, options).ok());
  auto q = Parser::ParseQuery(
      "Ans(u, v) :- Path(u, v), not Edge(u, v), u != v.",
      p->mutable_vocab());
  ASSERT_TRUE(q.ok());
  CqEvaluator col_eval(col, nullptr, nullptr);
  CqEvaluator row_eval(row, nullptr, nullptr);
  auto col_ans = col_eval.Answers(*q);
  auto row_ans = row_eval.Answers(*q);
  ASSERT_TRUE(col_ans.ok());
  ASSERT_TRUE(row_ans.ok());
  ASSERT_EQ(col_ans->size(), row_ans->size());
  for (size_t i = 0; i < col_ans->size(); ++i) {
    EXPECT_EQ((*col_ans)[i], (*row_ans)[i]);
  }
}

// The columnar chase after a Freeze probes across a sealed chain; results
// must still match a never-frozen run exactly.
TEST(RowColumnarEquivalence, ChaseOverSealedBaseAgrees) {
  auto p = Parser::ParseProgram(kProgram);
  ASSERT_TRUE(p.ok());
  Instance sealed = Instance::FromProgram(*p, StorageMode::kColumnar);
  sealed.Freeze();  // EDB becomes a sealed segment; chase appends overlay
  Instance plain = Instance::FromProgram(*p, StorageMode::kColumnar);
  ChaseOptions options;
  ASSERT_TRUE(Chase::Run(*p, &sealed, options).ok());
  ASSERT_TRUE(Chase::Run(*p, &plain, options).ok());
  ASSERT_EQ(sealed.TotalFacts(), plain.TotalFacts());
  for (uint32_t pred : plain.Predicates()) {
    std::vector<Atom> a = sealed.Facts(pred);
    std::vector<Atom> b = plain.Facts(pred);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

// Regression: the block executor's batch-hash probe must survive a chunk
// flush in the middle of a bucket. The shape below forces the middle atom
// onto the hash path (low-distinct bound position, incoming chunk of 8)
// with buckets wider than one output chunk, so the recursive flush into
// the third atom runs — and historically clobbered the shared scratch
// buffer the bucket verification read from, silently dropping the rest of
// the bucket (2 facts per chase pass in the wild).
TEST(RowColumnarEquivalence, HashProbeSurvivesMidBucketFlush) {
  std::string text;
  for (int i = 0; i < 10; ++i) {
    text += "R(\"x" + std::to_string(i) + "\", \"" +
            (i % 2 == 0 ? std::string("a") : std::string("b")) + "\").\n";
  }
  for (const char* y : {"a", "b"}) {
    for (int k = 0; k < 10; ++k) {
      text += "S(\"" + std::string(y) + "\", \"z" + std::to_string(k) +
              "\").\n";
    }
  }
  for (int k = 0; k < 10; ++k) {
    for (int j = 0; j < 3; ++j) {
      text += "T(\"z" + std::to_string(k) + "\", \"w" + std::to_string(k) +
              "_" + std::to_string(j) + "\").\n";
    }
  }
  auto p = Parser::ParseProgram(text);
  ASSERT_TRUE(p.ok());
  auto q = Parser::ParseQuery("Ans(X, Y, Z, W) :- R(X, Y), S(Y, Z), T(Z, W).",
                              p->mutable_vocab());
  ASSERT_TRUE(q.ok());

  std::vector<std::vector<std::pair<uint32_t, Term>>> per_mode[2];
  for (StorageMode mode : {StorageMode::kRow, StorageMode::kColumnar}) {
    Instance instance = Instance::FromProgram(*p, mode);
    CqEvaluator eval(instance);
    auto& solutions = per_mode[mode == StorageMode::kColumnar ? 1 : 0];
    auto collect = [&](const Subst& s) {
      std::vector<std::pair<uint32_t, Term>> tuple(s.begin(), s.end());
      std::sort(tuple.begin(), tuple.end());
      solutions.push_back(std::move(tuple));
      return true;
    };
    ASSERT_TRUE(
        eval.Enumerate(q->body, q->negated, q->comparisons, {}, {}, collect)
            .ok());
  }
  // Every R row joins 10 S rows on y, each of which joins 3 T rows on z.
  ASSERT_EQ(per_mode[0].size(), 300u);
  ASSERT_EQ(per_mode[1].size(), per_mode[0].size());
  for (size_t i = 0; i < per_mode[0].size(); ++i) {
    EXPECT_EQ(per_mode[1][i], per_mode[0][i]);
  }
}

}  // namespace
}  // namespace mdqa::datalog
