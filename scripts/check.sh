#!/usr/bin/env bash
# Tier-1 verification: plain build + ctest, then the same suite under
# AddressSanitizer + UndefinedBehaviorSanitizer in a second build tree,
# plus an optional static-analysis pass.
#
# Thread-safety: every build here compiles with -Wthread-safety as
# -Werror=thread-safety when the compiler supports it (clang; probed in
# CMakeLists.txt), so annotation violations in base/thread_pool,
# serve/admission, and serve/server fail the build rather than lint.
#
#   scripts/check.sh            # plain + sanitizer passes
#   scripts/check.sh --plain    # skip the sanitizer pass
#   scripts/check.sh --san      # sanitizer pass only
#   scripts/check.sh --tsan     # add a ThreadSanitizer pass (third build
#                               # tree build-tsan; TSan cannot share a
#                               # binary with ASan, hence its own tree) —
#                               # exercises the thread-pool paths of the
#                               # chase/assessor/rewriter under the full
#                               # suite
#   scripts/check.sh --lint     # add the lint pass: clang-tidy over src/
#                               # (skipped when not installed) and
#                               # mdqa_lint --werror over examples/scripts/
#   scripts/check.sh --analyze  # whole-program analysis pass: mdqa_lint
#                               # --analyze --werror over every
#                               # examples/scripts/*.dlg with the ASan/
#                               # UBSan build, so the dataflow passes and
#                               # the cost planner themselves run
#                               # sanitized
#   scripts/check.sh --incremental
#                               # focused pass for the incremental-chase
#                               # paths: runs the incremental differential
#                               # suite (Extend vs from-scratch, 1 and 4
#                               # threads) under both ASan/UBSan and TSan
#   scripts/check.sh --scenarios [--seed N]
#                               # focused pass for the generated scenario
#                               # corpus: the full matrix (testgen_test +
#                               # scenario_matrix_test, seeds 1-3) under
#                               # ASan/UBSan, then a reduced matrix (one
#                               # seed per family, MDQA_SCENARIO_REDUCED=1)
#                               # under TSan. --seed N pins every matrix
#                               # cell to one seed (MDQA_SCENARIO_SEED) —
#                               # use it to replay a failing cell from a
#                               # ctest log; see docs/testing.md
#   scripts/check.sh --columnar [--seed N]
#                               # focused pass for the columnar storage
#                               # layer and the vectorized join executor:
#                               # the storage unit tests plus the full
#                               # row-vs-columnar differential matrix
#                               # (columnar_test + columnar_diff_test,
#                               # byte-identical reports across layouts,
#                               # thread counts, and incremental
#                               # reassessment) under ASan/UBSan, then a
#                               # reduced matrix (MDQA_SCENARIO_REDUCED=1)
#                               # under TSan. --seed N pins the matrix
#                               # cells (MDQA_SCENARIO_SEED)
#   scripts/check.sh --durability
#                               # focused pass for the crash-safe storage
#                               # layer (docs/durability.md): the storage
#                               # unit tests, the seeded crash matrix
#                               # (>=200 kill points, recovery
#                               # byte-matched against a from-scratch
#                               # oracle), and the serve restart-resume
#                               # suite under ASan/UBSan, then the crash
#                               # matrix again under TSan (the WAL append
#                               # runs on the writer thread; the drain
#                               # checkpoint on the shutdown path)
#   scripts/check.sh --serve    # focused pass for the assessment daemon:
#                               # mdqa_serve --help + --smoke start/stop,
#                               # then the chaos/soak harness at
#                               # MDQA_SOAK_SECONDS=30 under both
#                               # ASan/UBSan and TSan (torn snapshots and
#                               # vocab races are exactly what TSan is
#                               # for; the soak's oracle byte-compare
#                               # catches everything else)
set -euo pipefail

cd "$(dirname "$0")/.."

run_plain=1
run_san=1
run_tsan=0
run_lint=0
run_analyze=0
run_incremental=0
run_serve=0
run_scenarios=0
run_columnar=0
run_durability=0
scenario_seed=""
expect_seed=0
for arg in "$@"; do
  if [[ $expect_seed -eq 1 ]]; then
    scenario_seed="$arg"
    expect_seed=0
    continue
  fi
  case "$arg" in
    --plain) run_san=0 ;;
    --san) run_plain=0 ;;
    --tsan) run_tsan=1 ;;
    --lint) run_lint=1 ;;
    --analyze) run_analyze=1; run_plain=0; run_san=0 ;;
    --incremental) run_incremental=1; run_plain=0; run_san=0 ;;
    --serve) run_serve=1; run_plain=0; run_san=0 ;;
    --scenarios) run_scenarios=1; run_plain=0; run_san=0 ;;
    --columnar) run_columnar=1; run_plain=0; run_san=0 ;;
    --durability) run_durability=1; run_plain=0; run_san=0 ;;
    --seed) expect_seed=1 ;;
    --seed=*) scenario_seed="${arg#--seed=}" ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done
if [[ $expect_seed -eq 1 ]]; then
  echo "--seed requires a value" >&2
  exit 2
fi
if [[ -n $scenario_seed && $run_scenarios -eq 0 && $run_columnar -eq 0 ]]; then
  echo "--seed only applies with --scenarios or --columnar" >&2
  exit 2
fi

jobs=$(nproc 2>/dev/null || echo 4)

if [[ $run_plain -eq 1 ]]; then
  echo "== plain build + ctest =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$jobs"
  ctest --test-dir build --output-on-failure -j "$jobs"
fi

if [[ $run_san -eq 1 ]]; then
  echo "== ASan/UBSan build + ctest =="
  cmake -B build-san -S . -DMDQA_SANITIZE="address;undefined" >/dev/null
  cmake --build build-san -j "$jobs"
  UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=1 \
    ctest --test-dir build-san --output-on-failure -j "$jobs"
fi

if [[ $run_tsan -eq 1 ]]; then
  echo "== TSan build + ctest =="
  cmake -B build-tsan -S . -DMDQA_SANITIZE="thread" >/dev/null
  cmake --build build-tsan -j "$jobs"
  TSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-tsan --output-on-failure -j "$jobs"
fi

if [[ $run_incremental -eq 1 ]]; then
  echo "== incremental differential suite under ASan/UBSan =="
  cmake -B build-san -S . -DMDQA_SANITIZE="address;undefined" >/dev/null
  cmake --build build-san -j "$jobs" --target incremental_diff_test
  UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=1 \
    ./build-san/tests/incremental_diff_test

  echo "== incremental differential suite under TSan =="
  cmake -B build-tsan -S . -DMDQA_SANITIZE="thread" >/dev/null
  cmake --build build-tsan -j "$jobs" --target incremental_diff_test
  TSAN_OPTIONS=halt_on_error=1 \
    ./build-tsan/tests/incremental_diff_test
fi

if [[ $run_scenarios -eq 1 ]]; then
  # MDQA_SCENARIO_SEED pins every matrix cell to one seed for replaying a
  # failure; otherwise the ASan pass runs the full seed set and the TSan
  # pass a reduced one-seed-per-family matrix (TSan is ~10x slower).
  seed_env=()
  if [[ -n $scenario_seed ]]; then
    seed_env=(MDQA_SCENARIO_SEED="$scenario_seed")
    echo "== scenario matrix pinned to seed $scenario_seed =="
  fi

  echo "== scenario matrix (full) under ASan/UBSan =="
  cmake -B build-san -S . -DMDQA_SANITIZE="address;undefined" >/dev/null
  cmake --build build-san -j "$jobs" \
    --target testgen_test scenario_matrix_test
  UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=1 \
    env "${seed_env[@]}" ./build-san/tests/testgen_test
  UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=1 \
    env "${seed_env[@]}" ./build-san/tests/scenario_matrix_test

  echo "== scenario matrix (reduced) under TSan =="
  cmake -B build-tsan -S . -DMDQA_SANITIZE="thread" >/dev/null
  cmake --build build-tsan -j "$jobs" \
    --target testgen_test scenario_matrix_test
  TSAN_OPTIONS=halt_on_error=1 \
    env MDQA_SCENARIO_REDUCED=1 "${seed_env[@]}" \
    ./build-tsan/tests/testgen_test
  TSAN_OPTIONS=halt_on_error=1 \
    env MDQA_SCENARIO_REDUCED=1 "${seed_env[@]}" \
    ./build-tsan/tests/scenario_matrix_test
fi

if [[ $run_columnar -eq 1 ]]; then
  seed_env=()
  if [[ -n $scenario_seed ]]; then
    seed_env=(MDQA_SCENARIO_SEED="$scenario_seed")
    echo "== columnar matrix pinned to seed $scenario_seed =="
  fi

  echo "== columnar storage + row-vs-columnar matrix (full) under ASan/UBSan =="
  cmake -B build-san -S . -DMDQA_SANITIZE="address;undefined" >/dev/null
  cmake --build build-san -j "$jobs" \
    --target columnar_test columnar_diff_test instance_test cq_eval_test
  UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=1 \
    ./build-san/tests/columnar_test
  UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=1 \
    ./build-san/tests/instance_test
  UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=1 \
    ./build-san/tests/cq_eval_test
  UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=1 \
    env "${seed_env[@]}" ./build-san/tests/columnar_diff_test

  echo "== row-vs-columnar matrix (reduced) under TSan =="
  cmake -B build-tsan -S . -DMDQA_SANITIZE="thread" >/dev/null
  cmake --build build-tsan -j "$jobs" --target columnar_diff_test
  TSAN_OPTIONS=halt_on_error=1 \
    env MDQA_SCENARIO_REDUCED=1 "${seed_env[@]}" \
    ./build-tsan/tests/columnar_diff_test
fi

if [[ $run_durability -eq 1 ]]; then
  echo "== durability suite (storage units + crash matrix + serve resume) under ASan/UBSan =="
  cmake -B build-san -S . -DMDQA_SANITIZE="address;undefined" >/dev/null
  cmake --build build-san -j "$jobs" \
    --target storage_test durability_crash_test serve_durability_test
  UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=1 \
    ./build-san/tests/storage_test
  UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=1 \
    ./build-san/tests/durability_crash_test
  UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=1 \
    ./build-san/tests/serve_durability_test

  # TSan pass: the crash matrix itself is single-threaded filesystem
  # modeling, but the serve resume suite drives the real writer thread's
  # WAL appends and the drain checkpoint — that is where a race would
  # live. The bit-rot battery is skipped under TSan (pure re-decoding,
  # ~10x slower, no threads).
  echo "== durability suite (reduced) under TSan =="
  cmake -B build-tsan -S . -DMDQA_SANITIZE="thread" >/dev/null
  cmake --build build-tsan -j "$jobs" \
    --target durability_crash_test serve_durability_test
  TSAN_OPTIONS=halt_on_error=1 \
    ./build-tsan/tests/durability_crash_test \
    --gtest_filter='-CrashMatrix.BitRotNeverServesACorruptImage'
  TSAN_OPTIONS=halt_on_error=1 \
    ./build-tsan/tests/serve_durability_test
fi

if [[ $run_serve -eq 1 ]]; then
  soak_secs="${MDQA_SOAK_SECONDS:-30}"

  echo "== mdqa_serve smoke (plain build) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$jobs" --target mdqa_serve
  ./build/tools/mdqa_serve --help >/dev/null
  ./build/tools/mdqa_serve --smoke --threads=2

  echo "== serve soak (${soak_secs}s) under ASan/UBSan =="
  cmake -B build-san -S . -DMDQA_SANITIZE="address;undefined" >/dev/null
  cmake --build build-san -j "$jobs" --target serve_soak_test mdqa_serve
  UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=1 \
    MDQA_SOAK_SECONDS="$soak_secs" ./build-san/tests/serve_soak_test
  ./build-san/tools/mdqa_serve --smoke --threads=2

  echo "== serve soak (${soak_secs}s) under TSan =="
  cmake -B build-tsan -S . -DMDQA_SANITIZE="thread" >/dev/null
  cmake --build build-tsan -j "$jobs" --target serve_soak_test mdqa_serve
  TSAN_OPTIONS=halt_on_error=1 \
    MDQA_SOAK_SECONDS="$soak_secs" ./build-tsan/tests/serve_soak_test
  ./build-tsan/tools/mdqa_serve --smoke --threads=2
fi

if [[ $run_analyze -eq 1 ]]; then
  echo "== whole-program analysis (mdqa_lint --analyze) under ASan/UBSan =="
  cmake -B build-san -S . -DMDQA_SANITIZE="address;undefined" >/dev/null
  cmake --build build-san -j "$jobs" --target mdqa_lint
  for script in examples/scripts/*.dlg; do
    echo "-- $script"
    UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=1 \
      ./build-san/tools/mdqa_lint --analyze --werror "$script" >/dev/null
  done
fi

if [[ $run_lint -eq 1 ]]; then
  echo "== lint =="
  # Ensure a build tree with compile_commands.json and mdqa_lint exists.
  cmake -B build -S . >/dev/null
  cmake --build build -j "$jobs" --target mdqa_lint

  if command -v clang-tidy >/dev/null 2>&1; then
    echo "-- clang-tidy (src/)"
    # shellcheck disable=SC2046
    clang-tidy -p build --quiet $(find src -name '*.cc') 2>/dev/null
  else
    echo "-- clang-tidy not installed; skipping (config: .clang-tidy)"
  fi

  echo "-- mdqa_lint --werror examples/scripts/*.dlg"
  ./build/tools/mdqa_lint --werror examples/scripts/*.dlg
fi

echo "all checks passed"
