#!/usr/bin/env bash
# Tier-1 verification: plain build + ctest, then the same suite under
# AddressSanitizer + UndefinedBehaviorSanitizer in a second build tree.
#
#   scripts/check.sh            # both passes
#   scripts/check.sh --plain    # skip the sanitizer pass
#   scripts/check.sh --san      # sanitizer pass only
set -euo pipefail

cd "$(dirname "$0")/.."

run_plain=1
run_san=1
for arg in "$@"; do
  case "$arg" in
    --plain) run_san=0 ;;
    --san) run_plain=0 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

jobs=$(nproc 2>/dev/null || echo 4)

if [[ $run_plain -eq 1 ]]; then
  echo "== plain build + ctest =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$jobs"
  ctest --test-dir build --output-on-failure -j "$jobs"
fi

if [[ $run_san -eq 1 ]]; then
  echo "== ASan/UBSan build + ctest =="
  cmake -B build-san -S . -DMDQA_SANITIZE="address;undefined" >/dev/null
  cmake --build build-san -j "$jobs"
  UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=1 \
    ctest --test-dir build-san --output-on-failure -j "$jobs"
fi

echo "all checks passed"
