# Empty compiler generated dependencies file for time_util_test.
# This may be replaced when dependencies are built.
