file(REMOVE_RECURSE
  "CMakeFiles/time_util_test.dir/time_util_test.cc.o"
  "CMakeFiles/time_util_test.dir/time_util_test.cc.o.d"
  "time_util_test"
  "time_util_test.pdb"
  "time_util_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
