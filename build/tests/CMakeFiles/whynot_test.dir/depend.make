# Empty dependencies file for whynot_test.
# This may be replaced when dependencies are built.
