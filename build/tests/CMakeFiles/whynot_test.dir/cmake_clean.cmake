file(REMOVE_RECURSE
  "CMakeFiles/whynot_test.dir/whynot_test.cc.o"
  "CMakeFiles/whynot_test.dir/whynot_test.cc.o.d"
  "whynot_test"
  "whynot_test.pdb"
  "whynot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whynot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
