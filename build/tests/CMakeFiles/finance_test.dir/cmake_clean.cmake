file(REMOVE_RECURSE
  "CMakeFiles/finance_test.dir/finance_test.cc.o"
  "CMakeFiles/finance_test.dir/finance_test.cc.o.d"
  "finance_test"
  "finance_test.pdb"
  "finance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
