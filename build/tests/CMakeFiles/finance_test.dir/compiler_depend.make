# Empty compiler generated dependencies file for finance_test.
# This may be replaced when dependencies are built.
