file(REMOVE_RECURSE
  "CMakeFiles/cq_eval_test.dir/cq_eval_test.cc.o"
  "CMakeFiles/cq_eval_test.dir/cq_eval_test.cc.o.d"
  "cq_eval_test"
  "cq_eval_test.pdb"
  "cq_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cq_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
