file(REMOVE_RECURSE
  "CMakeFiles/ontology_property_test.dir/ontology_property_test.cc.o"
  "CMakeFiles/ontology_property_test.dir/ontology_property_test.cc.o.d"
  "ontology_property_test"
  "ontology_property_test.pdb"
  "ontology_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ontology_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
