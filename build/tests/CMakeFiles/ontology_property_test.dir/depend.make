# Empty dependencies file for ontology_property_test.
# This may be replaced when dependencies are built.
