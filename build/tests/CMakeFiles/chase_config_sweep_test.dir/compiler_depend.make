# Empty compiler generated dependencies file for chase_config_sweep_test.
# This may be replaced when dependencies are built.
