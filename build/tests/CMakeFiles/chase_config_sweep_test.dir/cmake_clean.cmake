file(REMOVE_RECURSE
  "CMakeFiles/chase_config_sweep_test.dir/chase_config_sweep_test.cc.o"
  "CMakeFiles/chase_config_sweep_test.dir/chase_config_sweep_test.cc.o.d"
  "chase_config_sweep_test"
  "chase_config_sweep_test.pdb"
  "chase_config_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chase_config_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
