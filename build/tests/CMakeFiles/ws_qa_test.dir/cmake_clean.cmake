file(REMOVE_RECURSE
  "CMakeFiles/ws_qa_test.dir/ws_qa_test.cc.o"
  "CMakeFiles/ws_qa_test.dir/ws_qa_test.cc.o.d"
  "ws_qa_test"
  "ws_qa_test.pdb"
  "ws_qa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_qa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
