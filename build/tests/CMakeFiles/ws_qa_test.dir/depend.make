# Empty dependencies file for ws_qa_test.
# This may be replaced when dependencies are built.
