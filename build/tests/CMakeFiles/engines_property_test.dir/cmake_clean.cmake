file(REMOVE_RECURSE
  "CMakeFiles/engines_property_test.dir/engines_property_test.cc.o"
  "CMakeFiles/engines_property_test.dir/engines_property_test.cc.o.d"
  "engines_property_test"
  "engines_property_test.pdb"
  "engines_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engines_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
