# Empty dependencies file for engines_property_test.
# This may be replaced when dependencies are built.
