# Empty dependencies file for chase_qa_test.
# This may be replaced when dependencies are built.
