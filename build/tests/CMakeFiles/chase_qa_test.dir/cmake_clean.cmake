file(REMOVE_RECURSE
  "CMakeFiles/chase_qa_test.dir/chase_qa_test.cc.o"
  "CMakeFiles/chase_qa_test.dir/chase_qa_test.cc.o.d"
  "chase_qa_test"
  "chase_qa_test.pdb"
  "chase_qa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chase_qa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
