# Empty dependencies file for hospital_integration_test.
# This may be replaced when dependencies are built.
