file(REMOVE_RECURSE
  "CMakeFiles/hospital_integration_test.dir/hospital_integration_test.cc.o"
  "CMakeFiles/hospital_integration_test.dir/hospital_integration_test.cc.o.d"
  "hospital_integration_test"
  "hospital_integration_test.pdb"
  "hospital_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hospital_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
