# Empty dependencies file for bench_table5_discharge.
# This may be replaced when dependencies are built.
