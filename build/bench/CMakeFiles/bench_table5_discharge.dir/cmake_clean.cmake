file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_discharge.dir/bench_table5_discharge.cc.o"
  "CMakeFiles/bench_table5_discharge.dir/bench_table5_discharge.cc.o.d"
  "bench_table5_discharge"
  "bench_table5_discharge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_discharge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
