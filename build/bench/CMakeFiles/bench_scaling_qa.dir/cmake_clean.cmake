file(REMOVE_RECURSE
  "CMakeFiles/bench_scaling_qa.dir/bench_scaling_qa.cc.o"
  "CMakeFiles/bench_scaling_qa.dir/bench_scaling_qa.cc.o.d"
  "bench_scaling_qa"
  "bench_scaling_qa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_qa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
