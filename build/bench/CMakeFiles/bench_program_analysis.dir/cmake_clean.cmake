file(REMOVE_RECURSE
  "CMakeFiles/bench_program_analysis.dir/bench_program_analysis.cc.o"
  "CMakeFiles/bench_program_analysis.dir/bench_program_analysis.cc.o.d"
  "bench_program_analysis"
  "bench_program_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_program_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
