# Empty dependencies file for bench_program_analysis.
# This may be replaced when dependencies are built.
