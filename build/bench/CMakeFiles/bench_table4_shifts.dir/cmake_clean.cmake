file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_shifts.dir/bench_table4_shifts.cc.o"
  "CMakeFiles/bench_table4_shifts.dir/bench_table4_shifts.cc.o.d"
  "bench_table4_shifts"
  "bench_table4_shifts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_shifts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
