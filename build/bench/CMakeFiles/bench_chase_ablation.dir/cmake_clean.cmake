file(REMOVE_RECURSE
  "CMakeFiles/bench_chase_ablation.dir/bench_chase_ablation.cc.o"
  "CMakeFiles/bench_chase_ablation.dir/bench_chase_ablation.cc.o.d"
  "bench_chase_ablation"
  "bench_chase_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chase_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
