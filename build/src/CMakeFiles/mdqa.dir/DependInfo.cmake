
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/intern.cc" "src/CMakeFiles/mdqa.dir/base/intern.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/base/intern.cc.o.d"
  "/root/repo/src/base/json.cc" "src/CMakeFiles/mdqa.dir/base/json.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/base/json.cc.o.d"
  "/root/repo/src/base/status.cc" "src/CMakeFiles/mdqa.dir/base/status.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/base/status.cc.o.d"
  "/root/repo/src/base/string_util.cc" "src/CMakeFiles/mdqa.dir/base/string_util.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/base/string_util.cc.o.d"
  "/root/repo/src/core/md_ontology.cc" "src/CMakeFiles/mdqa.dir/core/md_ontology.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/core/md_ontology.cc.o.d"
  "/root/repo/src/datalog/analysis.cc" "src/CMakeFiles/mdqa.dir/datalog/analysis.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/datalog/analysis.cc.o.d"
  "/root/repo/src/datalog/atom.cc" "src/CMakeFiles/mdqa.dir/datalog/atom.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/datalog/atom.cc.o.d"
  "/root/repo/src/datalog/chase.cc" "src/CMakeFiles/mdqa.dir/datalog/chase.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/datalog/chase.cc.o.d"
  "/root/repo/src/datalog/containment.cc" "src/CMakeFiles/mdqa.dir/datalog/containment.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/datalog/containment.cc.o.d"
  "/root/repo/src/datalog/cq_eval.cc" "src/CMakeFiles/mdqa.dir/datalog/cq_eval.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/datalog/cq_eval.cc.o.d"
  "/root/repo/src/datalog/instance.cc" "src/CMakeFiles/mdqa.dir/datalog/instance.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/datalog/instance.cc.o.d"
  "/root/repo/src/datalog/parser.cc" "src/CMakeFiles/mdqa.dir/datalog/parser.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/datalog/parser.cc.o.d"
  "/root/repo/src/datalog/program.cc" "src/CMakeFiles/mdqa.dir/datalog/program.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/datalog/program.cc.o.d"
  "/root/repo/src/datalog/provenance.cc" "src/CMakeFiles/mdqa.dir/datalog/provenance.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/datalog/provenance.cc.o.d"
  "/root/repo/src/datalog/rule.cc" "src/CMakeFiles/mdqa.dir/datalog/rule.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/datalog/rule.cc.o.d"
  "/root/repo/src/datalog/term.cc" "src/CMakeFiles/mdqa.dir/datalog/term.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/datalog/term.cc.o.d"
  "/root/repo/src/datalog/transform.cc" "src/CMakeFiles/mdqa.dir/datalog/transform.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/datalog/transform.cc.o.d"
  "/root/repo/src/datalog/unify.cc" "src/CMakeFiles/mdqa.dir/datalog/unify.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/datalog/unify.cc.o.d"
  "/root/repo/src/datalog/whynot.cc" "src/CMakeFiles/mdqa.dir/datalog/whynot.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/datalog/whynot.cc.o.d"
  "/root/repo/src/md/aggregate.cc" "src/CMakeFiles/mdqa.dir/md/aggregate.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/md/aggregate.cc.o.d"
  "/root/repo/src/md/categorical.cc" "src/CMakeFiles/mdqa.dir/md/categorical.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/md/categorical.cc.o.d"
  "/root/repo/src/md/constraints.cc" "src/CMakeFiles/mdqa.dir/md/constraints.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/md/constraints.cc.o.d"
  "/root/repo/src/md/dimension.cc" "src/CMakeFiles/mdqa.dir/md/dimension.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/md/dimension.cc.o.d"
  "/root/repo/src/md/dimension_instance.cc" "src/CMakeFiles/mdqa.dir/md/dimension_instance.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/md/dimension_instance.cc.o.d"
  "/root/repo/src/md/dimension_schema.cc" "src/CMakeFiles/mdqa.dir/md/dimension_schema.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/md/dimension_schema.cc.o.d"
  "/root/repo/src/md/time_util.cc" "src/CMakeFiles/mdqa.dir/md/time_util.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/md/time_util.cc.o.d"
  "/root/repo/src/qa/chase_qa.cc" "src/CMakeFiles/mdqa.dir/qa/chase_qa.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/qa/chase_qa.cc.o.d"
  "/root/repo/src/qa/deterministic_ws.cc" "src/CMakeFiles/mdqa.dir/qa/deterministic_ws.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/qa/deterministic_ws.cc.o.d"
  "/root/repo/src/qa/engines.cc" "src/CMakeFiles/mdqa.dir/qa/engines.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/qa/engines.cc.o.d"
  "/root/repo/src/qa/rewriter.cc" "src/CMakeFiles/mdqa.dir/qa/rewriter.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/qa/rewriter.cc.o.d"
  "/root/repo/src/quality/assessor.cc" "src/CMakeFiles/mdqa.dir/quality/assessor.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/quality/assessor.cc.o.d"
  "/root/repo/src/quality/context.cc" "src/CMakeFiles/mdqa.dir/quality/context.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/quality/context.cc.o.d"
  "/root/repo/src/quality/cqa.cc" "src/CMakeFiles/mdqa.dir/quality/cqa.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/quality/cqa.cc.o.d"
  "/root/repo/src/quality/measures.cc" "src/CMakeFiles/mdqa.dir/quality/measures.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/quality/measures.cc.o.d"
  "/root/repo/src/relational/csv.cc" "src/CMakeFiles/mdqa.dir/relational/csv.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/relational/csv.cc.o.d"
  "/root/repo/src/relational/database.cc" "src/CMakeFiles/mdqa.dir/relational/database.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/relational/database.cc.o.d"
  "/root/repo/src/relational/relation.cc" "src/CMakeFiles/mdqa.dir/relational/relation.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/relational/relation.cc.o.d"
  "/root/repo/src/relational/schema.cc" "src/CMakeFiles/mdqa.dir/relational/schema.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/relational/schema.cc.o.d"
  "/root/repo/src/relational/value.cc" "src/CMakeFiles/mdqa.dir/relational/value.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/relational/value.cc.o.d"
  "/root/repo/src/scenarios/finance.cc" "src/CMakeFiles/mdqa.dir/scenarios/finance.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/scenarios/finance.cc.o.d"
  "/root/repo/src/scenarios/hospital.cc" "src/CMakeFiles/mdqa.dir/scenarios/hospital.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/scenarios/hospital.cc.o.d"
  "/root/repo/src/scenarios/synthetic.cc" "src/CMakeFiles/mdqa.dir/scenarios/synthetic.cc.o" "gcc" "src/CMakeFiles/mdqa.dir/scenarios/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
