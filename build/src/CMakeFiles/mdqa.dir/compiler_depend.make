# Empty compiler generated dependencies file for mdqa.
# This may be replaced when dependencies are built.
