file(REMOVE_RECURSE
  "libmdqa.a"
)
