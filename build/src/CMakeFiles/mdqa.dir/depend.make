# Empty dependencies file for mdqa.
# This may be replaced when dependencies are built.
