# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  PASS_REGULAR_EXPRESSION "overall precision: 0.333" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hospital_shifts "/root/repo/build/examples/hospital_shifts")
set_tests_properties(example_hospital_shifts PROPERTIES  PASS_REGULAR_EXPRESSION "Dates Mark works in W2" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_discharge_audit "/root/repo/build/examples/discharge_audit")
set_tests_properties(example_discharge_audit PROPERTIES  PASS_REGULAR_EXPRESSION "surviving every repair: 6 of 7" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sales_olap "/root/repo/build/examples/sales_olap")
set_tests_properties(example_sales_olap PROPERTIES  PASS_REGULAR_EXPRESSION "precision=0.500" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_finance_audit "/root/repo/build/examples/finance_audit")
set_tests_properties(example_finance_audit PROPERTIES  PASS_REGULAR_EXPRESSION "blocked at: BranchAudited" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_shell_tutorial "/root/repo/build/examples/mdqa_shell" "/root/repo/examples/scripts/tutorial.mdqa")
set_tests_properties(example_shell_tutorial PROPERTIES  PASS_REGULAR_EXPRESSION "loaded demo 'finance'" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")
