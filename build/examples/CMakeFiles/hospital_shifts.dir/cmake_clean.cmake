file(REMOVE_RECURSE
  "CMakeFiles/hospital_shifts.dir/hospital_shifts.cpp.o"
  "CMakeFiles/hospital_shifts.dir/hospital_shifts.cpp.o.d"
  "hospital_shifts"
  "hospital_shifts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hospital_shifts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
