# Empty compiler generated dependencies file for hospital_shifts.
# This may be replaced when dependencies are built.
