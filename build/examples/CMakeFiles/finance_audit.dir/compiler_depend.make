# Empty compiler generated dependencies file for finance_audit.
# This may be replaced when dependencies are built.
