file(REMOVE_RECURSE
  "CMakeFiles/finance_audit.dir/finance_audit.cpp.o"
  "CMakeFiles/finance_audit.dir/finance_audit.cpp.o.d"
  "finance_audit"
  "finance_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finance_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
