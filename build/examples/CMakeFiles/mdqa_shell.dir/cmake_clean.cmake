file(REMOVE_RECURSE
  "CMakeFiles/mdqa_shell.dir/mdqa_shell.cpp.o"
  "CMakeFiles/mdqa_shell.dir/mdqa_shell.cpp.o.d"
  "mdqa_shell"
  "mdqa_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdqa_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
