# Empty compiler generated dependencies file for mdqa_shell.
# This may be replaced when dependencies are built.
