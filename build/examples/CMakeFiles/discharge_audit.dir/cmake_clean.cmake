file(REMOVE_RECURSE
  "CMakeFiles/discharge_audit.dir/discharge_audit.cpp.o"
  "CMakeFiles/discharge_audit.dir/discharge_audit.cpp.o.d"
  "discharge_audit"
  "discharge_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discharge_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
