# Empty dependencies file for discharge_audit.
# This may be replaced when dependencies are built.
