// A second domain: retail sales quality assessment over a Geography
// dimension, showing (a) that the library is not hospital-specific,
// (b) the upward-only / FO-rewriting fast path of Section IV, and
// (c) quality measures when stores report through unaudited regions.
//
// Run:  ./build/examples/sales_olap

#include <cstdlib>
#include <iostream>

#include "datalog/parser.h"
#include "md/categorical.h"
#include "md/dimension.h"
#include "qa/engines.h"
#include "quality/assessor.h"
#include "scenarios/hospital.h"  // only for the Check idiom reference

namespace {

template <typename T>
T Check(mdqa::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::cerr << what << " failed: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

void Check(const mdqa::Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << " failed: " << status << "\n";
    std::exit(1);
  }
}

}  // namespace

int main() {
  using namespace mdqa;

  // Geography: Store -> City -> Country.
  md::Dimension geo = Check(md::DimensionBuilder("Geography")
                                .Category("Store")
                                .Category("City")
                                .Category("Country")
                                .Edge("Store", "City")
                                .Edge("City", "Country")
                                .Member("Store", "s1")
                                .Member("Store", "s2")
                                .Member("Store", "s3")
                                .Member("City", "Ottawa")
                                .Member("City", "Lyon")
                                .Member("Country", "Canada")
                                .Member("Country", "France")
                                .Link("s1", "Ottawa")
                                .Link("s2", "Ottawa")
                                .Link("s3", "Lyon")
                                .Link("Ottawa", "Canada")
                                .Link("Lyon", "France")
                                .Build(),
                            "geography");

  auto ontology = std::make_shared<core::MdOntology>();
  Check(ontology->AddDimension(std::move(geo)), "add dimension");

  // Store-level receipts and an audit table at the City level.
  md::CategoricalRelation receipts = Check(
      md::CategoricalRelation::Create(
          "Receipts",
          {md::CategoricalAttribute::Categorical("Store", "Geography",
                                                 "Store"),
           md::CategoricalAttribute::Plain("Amount")}),
      "receipts schema");
  Check(receipts.InsertText({"s1", "100"}), "row");
  Check(receipts.InsertText({"s2", "250"}), "row");
  Check(receipts.InsertText({"s3", "80"}), "row");
  Check(ontology->AddCategoricalRelation(std::move(receipts)), "add");

  md::CategoricalRelation audited = Check(
      md::CategoricalRelation::Create(
          "AuditedCity",
          {md::CategoricalAttribute::Categorical("City", "Geography",
                                                 "City")}),
      "audit schema");
  Check(audited.InsertText({"Ottawa"}), "row");
  Check(ontology->AddCategoricalRelation(std::move(audited)), "add");

  // Virtual city-level rollup, filled by an upward dimensional rule.
  md::CategoricalRelation city_sales = Check(
      md::CategoricalRelation::Create(
          "CitySales",
          {md::CategoricalAttribute::Categorical("City", "Geography",
                                                 "City"),
           md::CategoricalAttribute::Plain("Amount")}),
      "city sales schema");
  Check(ontology->AddCategoricalRelation(std::move(city_sales)), "add");
  Check(ontology->AddDimensionalRule(
            "CitySales(C, A) :- Receipts(S, A), CityStore(C, S)."),
        "rule");
  Check(ontology->ValidateReferential(), "referential");

  auto props = Check(ontology->Analyze(), "analysis");
  std::cout << "Ontology class: " << props.class_name
            << "  (upward-only: " << (props.upward_only ? "yes" : "no")
            << " -> FO-rewritable per Section IV)\n\n";

  // Section IV fast path: answer a roll-up query by UCQ rewriting on the
  // raw extensional data, and cross-check against the chase and the
  // deterministic WS engine.
  auto program = Check(ontology->Compile(), "compile");
  auto query = Check(
      datalog::Parser::ParseQuery("Q(C, A) :- CitySales(C, A).",
                                  program.vocab().get()),
      "parse");
  auto agreed = Check(
      qa::CrossCheck(program, query,
                     {qa::Engine::kRewriting, qa::Engine::kChase,
                      qa::Engine::kDeterministicWs}),
      "cross-check");
  std::cout << "City-level sales (all three engines agree): "
            << agreed.ToString(*program.vocab()) << "\n\n";

  // Quality context: a receipt is a quality tuple when its store's city
  // has been audited.
  quality::QualityContext context(ontology);
  Database db;
  Check(db.InsertText("SalesReport", {"s1", "100"}), "row");
  Check(db.InsertText("SalesReport", {"s2", "250"}), "row");
  Check(db.InsertText("SalesReport", {"s3", "80"}), "row");
  Check(db.InsertText("SalesReport", {"s9", "999"}), "ghost row");
  Check(context.SetDatabase(std::move(db)), "database");
  Check(context.MapRelationToContext("SalesReport", "SalesReportC"),
        "mapping");
  Check(context.DefineQualityVersion(
            "SalesReport", "SalesReportQ",
            "SalesReportQ(S, A) :- SalesReportC(S, A), CityStore(C, S), "
            "AuditedCity(C)."),
        "quality version");

  quality::Assessor assessor(&context);
  auto report = Check(assessor.Assess(), "assess");
  std::cout << report.ToString() << "\n";
  std::cout << "Quality version:\n"
            << report.quality_versions[0].ToTable();
  return 0;
}
