// Quickstart: the paper's running example end to end.
//
// Builds the hospital MD ontology (Fig. 1), loads Table I, defines the
// quality context of Example 7, and prints: the dimensions, the original
// Measurements, its quality version Measurements^q (Table II), the
// doctor's clean query answer, and the assessment report.
//
// Run:  ./build/examples/quickstart

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "quality/assessor.h"
#include "scenarios/hospital.h"

namespace {

// Exits with a message on any error — examples favor brevity.
template <typename T>
T Check(mdqa::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::cerr << what << " failed: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

void Check(const mdqa::Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << " failed: " << status << "\n";
    std::exit(1);
  }
}

}  // namespace

int main() {
  using namespace mdqa;

  // 1. The multidimensional context ontology M (Fig. 1).
  scenarios::HospitalOptions options;
  auto ontology =
      Check(scenarios::BuildHospitalOntology(options), "ontology");
  std::cout << "=== Dimensions (Fig. 1) ===\n";
  for (const std::string& name : ontology->DimensionNames()) {
    std::cout << ontology->FindDimension(name)->ToString();
  }

  // 2. Check the paper's Section III claims on this ontology.
  auto props = Check(ontology->Analyze(), "analysis");
  std::cout << "\n=== Datalog+- classification (Section III) ===\n"
            << "weakly-sticky: " << (props.weakly_sticky ? "yes" : "no")
            << ", sticky: " << (props.sticky ? "yes" : "no")
            << ", class: " << props.class_name << "\n"
            << "form-(10) rules: " << (props.has_form10 ? "yes" : "no")
            << ", upward-only: " << (props.upward_only ? "yes" : "no")
            << ", separable EGDs: " << (props.separable_egds ? "yes" : "no")
            << "\n";
  Check(ontology->ValidateReferential(), "referential validation");

  // 3. The database under assessment: Table I.
  quality::QualityContext context =
      Check(scenarios::BuildHospitalContext(options), "context");
  std::cout << "\n=== Table I: Measurements (original instance D) ===\n"
            << Check(context.database().GetRelation("Measurements"),
                     "lookup")
                   ->ToTable();

  // 4. Quality version via dimensional navigation (Table II).
  Relation quality =
      Check(context.ComputeQualityVersion("Measurements"), "quality version");
  std::cout << "\n=== Table II: Measurements^q (quality version) ===\n"
            << quality.ToTable();

  // 5. The doctor's clean query (Example 7): Tom Waits, Sep/5, around
  //    noon, certified nurse, brand-B1 thermometer.
  auto clean = Check(
      context.CleanAnswers(
          "Q(T, P, V) :- Measurements(T, P, V), P = \"Tom Waits\", "
          "T >= \"Sep/5-11:45\", T <= \"Sep/5-12:15\"."),
      "clean query");
  std::cout << "\n=== Clean answer to the doctor's query (Q^q) ===\n"
            << clean.ToString(*context.ontology().vocab()) << "\n";

  // 6. Full assessment report.
  quality::Assessor assessor(&context);
  auto report = Check(assessor.Assess(), "assessment");
  std::cout << "\n" << report.ToString();

  // 7. Why is Table II's first row a quality tuple? The derivation tree
  //    spells out the dimensional navigation (PatientWard -> PatientUnit
  //    via UnitWard) and the quality conditions.
  std::cout << "\n=== Why is (Sep/5-12:10, Tom Waits, 38.2) quality? ===\n"
            << Check(context.ExplainQualityTuple(
                         "Measurements",
                         {Value::Str("Sep/5-12:10"), Value::Str("Tom Waits"),
                          Value::Real(38.2)}),
                     "explanation");
  return 0;
}
