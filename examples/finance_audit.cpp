// Banking transaction audit: a second domain end to end, featuring the
// paper's footnote-4 *footprint* mapping (the context knows transactions
// have a terminal; the stored table does not), EGD-based resolution of
// the unknown terminal from the terminal log, and region-to-branch
// drill-down of audit coverage.
//
// Run:  ./build/examples/finance_audit

#include <cstdlib>
#include <iostream>

#include "quality/assessor.h"
#include "scenarios/finance.h"

namespace {

template <typename T>
T Check(mdqa::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::cerr << what << " failed: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace mdqa;

  auto context =
      Check(scenarios::BuildFinanceContext(scenarios::FinanceOptions{}),
            "context");
  std::cout << "=== Transactions under assessment ===\n"
            << Check(context.database().GetRelation("Transactions"), "D")
                   ->ToTable();

  std::cout << "\nContext: TransactionWide(Ti, Ac, Am, Terminal) is the "
               "broader relation;\nthe terminal starts as a labeled null "
               "and the terminal-log EGD resolves it.\n";
  auto wide = Check(context.RawAnswers(
                        "Q(Ti, Tl) :- TransactionWide(Ti, Ac, Am, Tl)."),
                    "wide");
  std::cout << "resolved (time, terminal) pairs: "
            << wide.ToString(*context.ontology().vocab())
            << "\n(the Mar/2-14:00 transaction stays unresolved — no log "
               "entry)\n";

  Relation quality =
      Check(context.ComputeQualityVersion("Transactions"), "S^q");
  std::cout << "\n=== Transactions^q (audited-branch transactions) ===\n"
            << quality.ToTable();

  quality::Assessor assessor(&context);
  auto report = Check(assessor.Assess(), "assessment");
  std::cout << "\n" << report.ToString();
  std::cout << "\nDirty tuples flagged for review:\n"
            << report.dirty_tuples[0].ToTable();

  // Why is each dirty tuple dirty? The why-not diagnosis names the
  // first blocked condition: un-audited branch for Mar/2-09:30, an
  // unresolved terminal for Mar/2-14:00.
  std::cout << "\n=== Why-not diagnosis per dirty tuple ===\n";
  for (const Tuple& row : report.dirty_tuples[0].SortedRows()) {
    std::cout << Check(context.ExplainDirtyTuple("Transactions", row),
                       "why-not")
              << "\n";
  }
  return 0;
}
