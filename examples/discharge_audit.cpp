// Form-(10) rules and constraint auditing (Examples 1, 4, 6 / Table V):
//
//  * DischargePatients lives at the Institution level; rule (9) drills
//    down with an *existential categorical* variable — disjunctive
//    knowledge "Elvis was in SOME unit of H2" — materialized as a
//    labeled null that certain answers exclude but boolean queries see.
//  * The inter-dimensional constraint "no patient in Intensive care
//    during August/2005" and the EGD "one thermometer type per unit"
//    flag dirty data with witnesses.
//
// Run:  ./build/examples/discharge_audit

#include <cstdlib>
#include <iostream>

#include "datalog/parser.h"
#include "qa/chase_qa.h"
#include "quality/cqa.h"
#include "scenarios/hospital.h"

namespace {

template <typename T>
T Check(mdqa::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::cerr << what << " failed: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace mdqa;

  // --- Part 1: disjunctive downward navigation (Table V, rule (9)). ---
  auto ontology = Check(
      scenarios::BuildHospitalOntology(scenarios::HospitalOptions{}),
      "ontology");
  auto program = Check(ontology->Compile(), "compile");
  auto vocab = program.vocab();
  auto chase_qa = Check(qa::ChaseQa::Create(program), "chase");

  std::cout << "=== Table V: DischargePatients ===\n"
            << ontology->FindCategoricalRelation("DischargePatients")
                   ->data()
                   .ToTable();

  auto unit_query = Check(
      datalog::Parser::ParseQuery(
          "Q(U) :- PatientUnit(U, \"Oct/5\", \"Elvis Costello\").",
          vocab.get()),
      "parse");
  auto certain = Check(chase_qa.Answers(unit_query), "certain answers");
  auto possible = Check(chase_qa.PossibleAnswers(unit_query), "possible");
  std::cout << "\nWhich unit was Elvis Costello in on Oct/5?\n"
            << "  certain answers:  " << certain.size()
            << " (his unit is genuinely unknown)\n"
            << "  possible answers: " << possible.size()
            << " (a labeled null: " << vocab->TermToString(possible[0][0])
            << ")\n";

  auto boolean_query = Check(
      datalog::Parser::ParseQuery(
          "Q() :- InstitutionUnit(\"H2\", U), "
          "PatientUnit(U, \"Oct/5\", \"Elvis Costello\").",
          vocab.get()),
      "parse");
  bool holds = Check(chase_qa.AnswerBoolean(boolean_query), "boolean");
  std::cout << "  \"was he in SOME unit of H2 that day?\"  -> "
            << (holds ? "yes (certain)" : "no") << "\n";

  // Tom Waits and Lou Reed were discharged from H1, where rule (7)
  // already places them in concrete units: the restricted chase invents
  // nothing for them.
  auto tom_query = Check(
      datalog::Parser::ParseQuery(
          "Q(U) :- PatientUnit(U, \"Sep/9\", \"Tom Waits\").", vocab.get()),
      "parse");
  auto tom_units = Check(chase_qa.Answers(tom_query), "answers");
  std::cout << "  Tom Waits' unit on his discharge day (certain): "
            << tom_units.size() << " answer(s)\n";

  // --- Part 2: constraint auditing on dirty variants. ---
  std::cout << "\n=== Constraint audit (Examples 1 and 4) ===\n";
  {
    scenarios::HospitalOptions dirty;
    dirty.include_violating_stay = true;
    auto bad = Check(scenarios::BuildHospitalOntology(dirty), "ontology");
    auto bad_program = Check(bad->Compile(), "compile");
    auto audit = qa::ChaseQa::Create(bad_program);
    std::cout << "Intensive-care stay recorded for August/2005:\n  "
              << audit.status() << "\n";
  }
  {
    scenarios::HospitalOptions dirty;
    dirty.include_therm_conflict = true;
    auto bad = Check(scenarios::BuildHospitalOntology(dirty), "ontology");
    auto bad_program = Check(bad->Compile(), "compile");
    auto audit = qa::ChaseQa::Create(bad_program);
    std::cout << "Two thermometer types inside the Standard unit:\n  "
              << audit.status() << "\n";
  }

  // --- Part 3: querying despite the dirt (conflict-free answers). ---
  {
    scenarios::HospitalOptions dirty;
    dirty.include_violating_stay = true;
    auto bad = Check(scenarios::BuildHospitalOntology(dirty), "ontology");
    auto bad_program = Check(bad->Compile(), "compile");
    quality::CqaEngine cqa(bad_program);
    cqa.ProtectDimensionStructure(*bad);  // dimensions are given, not data
    auto conflicts = Check(cqa.FindConflicts(), "conflicts");
    std::cout << "\n=== Conflict-free querying (CQA-style) ===\n"
              << conflicts.size() << " conflict(s); suspect facts:\n";
    for (const quality::Conflict& c : conflicts) {
      for (const datalog::Atom& a : c.suspects) {
        std::cout << "  " << bad_program.vocab()->AtomToString(a) << "\n";
      }
    }
    auto q = Check(datalog::Parser::ParseQuery(
                       "Q(W, D, P) :- PatientWard(W, D, P).",
                       bad_program.vocab().get()),
                   "parse");
    auto safe = Check(cqa.ConflictFreeAnswers(q), "cqa answers");
    std::cout << "PatientWard tuples surviving every repair: "
              << safe.size() << " of 7\n";
  }
  return 0;
}
