// Downward navigation (Examples 2 and 5 of the paper): the guideline "a
// nurse working in a unit on a day has shifts in every ward of that unit
// that day" is dimensional rule (8); drilling down from WorkingSchedules
// (Unit level, Table III) completes Shifts (Ward level, Table IV) with
// labeled nulls for the unknown shift attribute.
//
// Run:  ./build/examples/hospital_shifts

#include <cstdlib>
#include <iostream>

#include "datalog/chase.h"
#include "datalog/parser.h"
#include "qa/engines.h"
#include "scenarios/hospital.h"

namespace {

template <typename T>
T Check(mdqa::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::cerr << what << " failed: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace mdqa;

  auto ontology = Check(
      scenarios::BuildHospitalOntology(scenarios::HospitalOptions{}),
      "ontology");
  auto program = Check(ontology->Compile(), "compile");
  auto vocab = program.vocab();

  std::cout << "Dimensional rules and their navigation direction:\n";
  for (const core::DimensionalRule& r : ontology->dimensional_rules()) {
    std::cout << "  " << vocab->RuleToString(r.rule) << "   ["
              << core::NavigationToString(r.navigation) << ", form ("
              << (r.form == core::RuleForm::kForm4 ? "4" : "10") << ")]\n";
  }

  // Materialize the chase and export the completed Shifts relation —
  // extensional Table IV plus drilled-down tuples with null shifts.
  datalog::Instance instance = datalog::Instance::FromProgram(program);
  datalog::ChaseStats stats = Check(
      datalog::Chase::Run(program, &instance, datalog::ChaseOptions()),
      "chase");
  std::cout << "\nchase: " << stats.ToString() << "\n";

  uint32_t shifts = vocab->FindPredicate("Shifts");
  Relation completed = Check(
      instance.ExportRelation(shifts, "Shifts (completed)",
                              {"Ward", "Day", "Nurse", "Shift"},
                              /*keep_nulls=*/true),
      "export");
  std::cout << "\n=== Shifts after downward navigation (nulls = unknown "
               "shift) ===\n"
            << completed.ToTable();

  // Example 2/5's query: on which dates does Mark have shifts in W2?
  // The extensional Table IV alone has no answer; rule (8) derives Sep/9.
  for (const char* ward : {"W1", "W2"}) {
    auto query = Check(
        datalog::Parser::ParseQuery(
            std::string("Q(D) :- Shifts(\"") + ward + "\", D, \"Mark\", S).",
            vocab.get()),
        "parse query");
    auto answers =
        Check(qa::Answer(qa::Engine::kDeterministicWs, program, query),
              "answer");
    std::cout << "\nDates Mark works in " << ward << ": "
              << answers.ToString(*vocab) << "\n";
  }

  // Contrast: who works where, certain answers across both levels.
  auto query = Check(datalog::Parser::ParseQuery(
                         "Q(N, W, D) :- Shifts(W, D, N, S).", vocab.get()),
                     "parse query");
  auto answers = Check(qa::Answer(qa::Engine::kChase, program, query),
                       "answer");
  std::cout << "\nAll (nurse, ward, day) assignments: "
            << answers.ToString(*vocab) << "\n";
  return 0;
}
