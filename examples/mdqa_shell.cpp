// An interactive Datalog± shell over the mdqa engine: load programs and
// CSV data, inspect the Datalog± classification, materialize the chase,
// ask queries with any of the three engines, and explain derived facts
// (provenance trees).
//
// Run:  ./build/examples/mdqa_shell            # interactive
//       ./build/examples/mdqa_shell script.txt # replay commands
//
// Flags:
//   --deadline-ms=N   budget every command with an N-millisecond wall-clock
//                     deadline; chase/ask return partial (sound) results
//                     tagged "truncated" when it expires. Ctrl-C likewise
//                     cancels the running command instead of killing the
//                     shell (exit with 'quit' or Ctrl-D).
//   --threads=N       run chase/ask on an N-worker thread pool (results
//                     are identical to serial execution; see
//                     docs/parallelism.md). Default: serial.
//
// Commands:
//   load <file>            parse a Datalog± program file into the session
//   parse <statements.>    parse statements given inline
//   csv <file> [name]      load a CSV file as facts (header = attributes)
//   rules | facts [pred]   show the program / current instance
//   analyze                Datalog± classification + stratification
//   chase                  (re)materialize the chase, with provenance
//   ask <query>            e.g. ask Q(X) :- P(X, Y), Y > 3.
//   insert <ground atom>   stage a new fact, e.g. insert P(1, 2)
//   refresh                fold staged facts into the chased instance
//                          incrementally (Chase::Extend; falls back to a
//                          full re-chase when that would be unsound)
//   engine chase|ws|rewrite
//   explain <ground atom>  derivation tree, e.g. explain T(1, 3)
//   whynot <ground atom>   why a fact is NOT derivable
//   save <file>            serialize rules + chased facts (re-loadable)
//   save-kb <dir>          checkpoint the chased instance into a durable
//                          KB directory (binary, checksummed; see
//                          docs/durability.md)
//   load-kb <dir>          restore a checkpointed instance over the
//                          current program WITHOUT re-chasing
//   demo hospital|finance|synthetic   load a built-in scenario
//   reset | help | quit

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "analysis/lint.h"
#include "base/budget.h"
#include "base/fs.h"
#include "base/thread_pool.h"
#include "datalog/analysis.h"
#include "datalog/chase.h"
#include "datalog/parser.h"
#include "datalog/provenance.h"
#include "datalog/whynot.h"
#include "qa/engines.h"
#include "relational/csv.h"
#include "scenarios/finance.h"
#include "scenarios/hospital.h"
#include "scenarios/synthetic.h"
#include "storage/env.h"
#include "storage/kb_store.h"
#include "storage/session_image.h"

namespace mdqa {
namespace {

// SIGINT flips this token: the running command's budget sees it at its
// next check and winds down with a partial result.
CancellationToken g_interrupt;

extern "C" void HandleSigint(int) { g_interrupt.Cancel(); }

class Shell {
 public:
  explicit Shell(int deadline_ms = 0, int threads = 0)
      : deadline_ms_(deadline_ms) {
    budget_.set_cancellation(&g_interrupt);
    if (threads > 0) pool_ = std::make_unique<ThreadPool>(threads);
    Reset();
  }

  // Returns false when the session should end.
  bool Handle(const std::string& line) {
    // Every command starts with a fresh budget window: counters and any
    // pending Ctrl-C from the previous command are cleared, the deadline
    // (when configured) restarts.
    budget_.ResetUsage();
    g_interrupt.Reset();
    if (deadline_ms_ > 0) {
      budget_.SetDeadlineAfter(std::chrono::milliseconds(deadline_ms_));
    }

    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    std::string rest;
    std::getline(in, rest);
    while (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);

    if (cmd.empty()) return true;
    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      Help();
    } else if (cmd == "reset") {
      Reset();
      std::cout << "session cleared\n";
    } else if (cmd == "load") {
      Load(rest);
    } else if (cmd == "parse") {
      Report(datalog::Parser::ParseInto(rest, &program_), "parsed");
      chased_ = false;
    } else if (cmd == "csv") {
      Csv(rest);
    } else if (cmd == "rules") {
      std::cout << program_.ToString();
    } else if (cmd == "facts") {
      Facts(rest);
    } else if (cmd == "analyze") {
      Analyze();
    } else if (cmd == "check") {
      CheckProgram();
    } else if (cmd == "chase") {
      RunChase();
    } else if (cmd == "ask") {
      Ask(rest);
    } else if (cmd == "insert") {
      Insert(rest);
    } else if (cmd == "refresh") {
      Refresh();
    } else if (cmd == "engine") {
      SetEngine(rest);
    } else if (cmd == "explain") {
      Explain(rest);
    } else if (cmd == "whynot") {
      WhyNot(rest);
    } else if (cmd == "save") {
      Save(rest);
    } else if (cmd == "save-kb") {
      SaveKb(rest);
    } else if (cmd == "load-kb") {
      LoadKb(rest);
    } else if (cmd == "demo") {
      Demo(rest);
    } else {
      std::cout << "unknown command '" << cmd << "' (try: help)\n";
    }
    return true;
  }

 private:
  void Reset() {
    program_ = datalog::Program();
    instance_ =
        std::make_unique<datalog::Instance>(program_.vocab());
    provenance_ = datalog::ProvenanceStore();
    chased_ = false;
    frontier_ = datalog::ChaseFrontier{};
    pending_.clear();
  }

  void Help() {
    std::cout <<
        "  load <file> | parse <stmts.> | csv <file> [name]\n"
        "  rules | facts [pred] | analyze | check | chase\n"
        "  ask <query>   e.g. ask Q(X) :- P(X, Y), Y > 3.\n"
        "  insert <ground atom>   stage a fact, e.g. insert P(1, 2)\n"
        "  refresh       fold staged facts into the chased instance\n"
        "                incrementally (full re-chase when unsound)\n"
        "  engine chase|ws|rewrite   (current: "
              << qa::EngineToString(engine_) << ")\n"
        "  explain <ground atom>   derivation tree (after chase)\n"
        "  whynot <ground atom>    why a fact is NOT derivable\n"
        "  save <file>   write rules + chased facts (re-loadable;\n"
        "                labeled nulls serialize as _nK)\n"
        "  save-kb <dir> checkpoint the chased instance (binary, crc'd)\n"
        "  load-kb <dir> restore a checkpoint without re-chasing\n"
        "  demo hospital|finance|synthetic   load a built-in scenario\n"
        "  reset | quit\n";
  }

  void Report(const Status& s, const char* ok_msg) {
    if (s.ok()) {
      std::cout << ok_msg << "\n";
    } else {
      std::cout << s << "\n";
    }
  }

  void Load(const std::string& path) {
    // Capped read: a fat-fingered path to a huge binary must fail with a
    // Status, not swallow the machine (docs/robustness.md).
    auto text = fs::ReadFileToString(path);
    if (!text.ok()) {
      std::cout << text.status() << "\n";
      return;
    }
    Report(datalog::Parser::ParseInto(*text, &program_), "loaded");
    chased_ = false;
  }

  void Csv(const std::string& args) {
    std::istringstream in(args);
    std::string path, name;
    in >> path >> name;
    auto rel = ReadCsvFile(path, name);
    if (!rel.ok()) {
      std::cout << rel.status() << "\n";
      return;
    }
    datalog::Instance scratch(program_.vocab());
    Status s = scratch.LoadRelation(*rel);
    if (!s.ok()) {
      std::cout << s << "\n";
      return;
    }
    uint32_t pred = program_.vocab()->FindPredicate(rel->name());
    size_t added = 0;
    for (const datalog::Atom& f : scratch.Facts(pred)) {
      if (program_.AddFact(f).ok()) ++added;
    }
    std::cout << "loaded " << added << " facts into " << rel->name() << "\n";
    chased_ = false;
  }

  void Facts(const std::string& pred_name) {
    EnsureChased();
    if (pred_name.empty()) {
      std::cout << instance_->ToString();
      return;
    }
    uint32_t pred = program_.vocab()->FindPredicate(pred_name);
    if (pred == StringPool::kNotFound) {
      std::cout << "unknown predicate '" << pred_name << "'\n";
      return;
    }
    for (const datalog::Atom& f : instance_->Facts(pred)) {
      std::cout << program_.vocab()->AtomToString(f) << ".\n";
    }
  }

  void Analyze() {
    datalog::ProgramAnalysis analysis(program_);
    std::cout << analysis.Report(*program_.vocab());
    auto strata = datalog::StratifyProgram(program_);
    if (!strata.ok()) {
      std::cout << strata.status() << "\n";
    }
  }

  // `check`: lint the session program and report which engine the
  // classification-driven gate would pick.
  void CheckProgram() {
    analysis::DiagnosticBag bag;
    analysis::LintOptions options;
    options.file = "<session>";
    analysis::LintProgram(program_, options, &bag);
    bag.Sort();
    if (bag.empty()) {
      std::cout << "no findings\n";
    } else {
      std::cout << bag.ToText();
      std::cout << bag.errors() << " error(s), " << bag.warnings()
                << " warning(s)\n";
    }
    datalog::ProgramAnalysis analysis(program_);
    qa::EngineSelection selection =
        qa::SelectEngine(program_, analysis, qa::EngineSelectOptions{});
    std::cout << "class: " << analysis.ClassName() << "\n"
              << "recommended engine: " << qa::EngineToString(selection.engine)
              << " — " << selection.reason << "\n";
  }

  void RunChase() {
    instance_ =
        std::make_unique<datalog::Instance>(
            datalog::Instance::FromProgram(program_));
    provenance_ = datalog::ProvenanceStore();
    frontier_ = datalog::ChaseFrontier{};  // old resume point is void
    datalog::ChaseOptions options;
    options.provenance = &provenance_;
    options.budget = &budget_;
    options.pool = pool_.get();
    datalog::ChaseStats stats;
    Status s = datalog::Chase::Run(program_, instance_.get(), options, &stats);
    if (!s.ok()) {
      std::cout << s << "\n";
      chased_ = s.code() == StatusCode::kInconsistent;
      return;
    }
    std::cout << stats.ToString() << "; instance now holds "
              << instance_->TotalFacts() << " facts\n";
    // A truncated chase still leaves a sound partial instance behind —
    // facts/explain work against it; re-run `chase` for the full one.
    chased_ = true;
    // A full chase subsumes anything staged (the facts already joined
    // the program at insert time) and renews the resume point.
    frontier_ = stats.frontier;
    pending_.clear();
  }

  void EnsureChased() {
    if (!chased_) RunChase();
  }

  // `insert`: stage a ground fact for an incremental refresh. The fact
  // joins the program immediately (so a later full `chase` also sees
  // it); `refresh` folds all staged facts into the already-chased
  // instance via Chase::Extend instead of re-chasing from scratch.
  void Insert(std::string text) {
    while (!text.empty() && (text.back() == '.' || text.back() == ' ')) {
      text.pop_back();
    }
    auto atom =
        datalog::Parser::ParseGroundAtom(text, program_.mutable_vocab());
    if (!atom.ok()) {
      std::cout << atom.status() << "\n";
      return;
    }
    Status s = program_.AddFact(*atom);
    if (!s.ok()) {
      std::cout << s << "\n";
      return;
    }
    pending_.push_back(*atom);
    std::cout << "staged " << program_.vocab()->AtomToString(*atom) << " ("
              << pending_.size() << " pending; apply with: refresh)\n";
  }

  void Refresh() {
    if (!chased_ || !frontier_.valid) {
      // Nothing materialized to extend (or the last chase was truncated
      // and left no resume point) — a full chase covers the staged facts.
      RunChase();
      return;
    }
    if (pending_.empty()) {
      std::cout << "nothing staged (use: insert <ground atom>)\n";
      return;
    }
    datalog::ChaseOptions options;
    options.provenance = &provenance_;
    options.budget = &budget_;
    options.pool = pool_.get();
    datalog::ChaseStats stats;
    Status s = datalog::Chase::Extend(program_, instance_.get(), frontier_,
                                      pending_, options, &stats);
    if (!s.ok()) {
      std::cout << s << "\n";
      chased_ = s.code() == StatusCode::kInconsistent;
      return;
    }
    std::cout << stats.ToString() << "; instance now holds "
              << instance_->TotalFacts() << " facts\n";
    frontier_ = stats.frontier;
    pending_.clear();
  }

  void SetEngine(const std::string& name) {
    if (name == "chase") {
      engine_ = qa::Engine::kChase;
    } else if (name == "ws") {
      engine_ = qa::Engine::kDeterministicWs;
    } else if (name == "rewrite" || name == "rewriting") {
      engine_ = qa::Engine::kRewriting;
    } else {
      std::cout << "engines: chase | ws | rewrite\n";
      return;
    }
    std::cout << "engine = " << qa::EngineToString(engine_) << "\n";
  }

  void Ask(const std::string& text) {
    auto query = datalog::Parser::ParseQuery(text, program_.mutable_vocab());
    if (!query.ok()) {
      std::cout << query.status() << "\n";
      return;
    }
    qa::AnswerOptions aopts;
    aopts.budget = &budget_;
    aopts.pool = pool_.get();
    auto answers = qa::Answer(engine_, program_, *query, aopts);
    if (!answers.ok()) {
      std::cout << answers.status() << "\n";
      return;
    }
    std::cout << answers->size() << " answer(s): "
              << answers->ToString(*program_.vocab()) << "\n";
    if (answers->completeness == Completeness::kTruncated) {
      std::cout << "  (truncated: " << answers->interruption
                << " — the answers above are a sound subset)\n";
    }
  }

  void WhyNot(const std::string& text) {
    EnsureChased();
    auto atom =
        datalog::Parser::ParseGroundAtom(text, program_.mutable_vocab());
    if (!atom.ok()) {
      std::cout << atom.status() << "\n";
      return;
    }
    auto report = datalog::ExplainAbsence(program_, *instance_, *atom);
    if (!report.ok()) {
      std::cout << report.status() << "\n";
      return;
    }
    std::cout << report->ToString();
  }

  void Demo(const std::string& which) {
    Result<datalog::Program> program = [&]() -> Result<datalog::Program> {
      if (which == "hospital") {
        MDQA_ASSIGN_OR_RETURN(
            auto context,
            scenarios::BuildHospitalContext(scenarios::HospitalOptions{}));
        return context.BuildProgram();  // ontology + Table I + quality rules
      }
      if (which == "finance") {
        MDQA_ASSIGN_OR_RETURN(
            auto context,
            scenarios::BuildFinanceContext(scenarios::FinanceOptions{}));
        return context.BuildProgram();
      }
      if (which == "synthetic") {
        MDQA_ASSIGN_OR_RETURN(
            auto ontology,
            scenarios::BuildSyntheticOntology(scenarios::SyntheticSpec{}));
        return ontology->Compile();
      }
      return Status::InvalidArgument(
          "demos: hospital | finance | synthetic");
    }();
    if (!program.ok()) {
      std::cout << program.status() << "\n";
      return;
    }
    Reset();
    program_ = std::move(program).value();
    chased_ = false;
    std::cout << "loaded demo '" << which << "': "
              << program_.rules().size() << " rules, "
              << program_.facts().size()
              << " facts (try: analyze, chase, ask ...)\n";
  }

  void Save(const std::string& path) {
    EnsureChased();
    std::ofstream out(path);
    if (!out) {
      std::cout << "cannot write '" << path << "'\n";
      return;
    }
    for (const datalog::Rule& r : program_.rules()) {
      out << program_.vocab()->RuleToString(r) << "\n";
    }
    out << instance_->ToString();
    std::cout << "saved " << program_.rules().size() << " rules and "
              << instance_->TotalFacts() << " facts to " << path << "\n";
  }

  // `save-kb`: checkpoint the chased instance into a durable KB
  // directory via the storage layer (same format mdqa_serve resumes
  // from). The program itself still travels as text (`save`).
  void SaveKb(const std::string& dir) {
    if (dir.empty()) {
      std::cout << "usage: save-kb <dir>\n";
      return;
    }
    EnsureChased();
    if (!chased_ || !frontier_.valid) {
      std::cout << "nothing checkpointable (chase first; truncated chases "
                   "have no resume point)\n";
      return;
    }
    auto image = storage::CaptureInstanceImage(*instance_, frontier_,
                                               /*generation=*/1, "shell");
    if (!image.ok()) {
      std::cout << image.status() << "\n";
      return;
    }
    auto store = storage::OpenDiskKbStore(storage::Env::Posix(), dir);
    if (!store.ok()) {
      std::cout << store.status() << "\n";
      return;
    }
    Status s = (*store)->WriteCheckpoint(*image);
    if (!s.ok()) {
      std::cout << s << "\n";
      return;
    }
    std::cout << "checkpointed " << instance_->TotalFacts() << " facts to "
              << dir << "\n";
  }

  // `load-kb`: rebuild the chased instance from a checkpoint over the
  // CURRENT program's vocabulary — no re-chase. The rules must already
  // be loaded (load/parse/demo); only the materialization is restored.
  void LoadKb(const std::string& dir) {
    if (dir.empty()) {
      std::cout << "usage: load-kb <dir>\n";
      return;
    }
    auto store = storage::OpenDiskKbStore(storage::Env::Posix(), dir);
    if (!store.ok()) {
      std::cout << store.status() << "\n";
      return;
    }
    auto recovered = (*store)->Recover();
    if (!recovered.ok()) {
      std::cout << recovered.status() << "\n";
      return;
    }
    for (const std::string& line : recovered->degradations) {
      std::cout << "recovery: " << line << "\n";
    }
    if (!recovered->has_checkpoint) {
      std::cout << "no checkpoint in '" << dir << "'\n";
      return;
    }
    auto image =
        std::make_shared<storage::KbImage>(std::move(recovered->image));
    auto restored = storage::ImageRebuilder(image)(program_);
    if (!restored.ok()) {
      std::cout << restored.status() << "\n";
      return;
    }
    instance_ = std::make_unique<datalog::Instance>(
        std::move(restored->instance));
    frontier_ = restored->stats.frontier;
    provenance_ = datalog::ProvenanceStore();  // not persisted
    pending_.clear();
    chased_ = true;
    std::cout << "restored " << instance_->TotalFacts() << " facts from "
              << dir << " (scenario '" << image->meta.scenario
              << "', no re-chase; provenance empty — explain needs a "
                 "fresh chase)\n";
  }

  void Explain(const std::string& text) {
    EnsureChased();
    auto atom =
        datalog::Parser::ParseGroundAtom(text, program_.mutable_vocab());
    if (!atom.ok()) {
      std::cout << atom.status() << "\n";
      return;
    }
    if (!instance_->Contains(*atom)) {
      std::cout << "fact not in the chased instance\n";
      return;
    }
    std::cout << provenance_.Explain(*atom, *program_.vocab());
  }

  datalog::Program program_;
  std::unique_ptr<datalog::Instance> instance_;
  datalog::ProvenanceStore provenance_;
  qa::Engine engine_ = qa::Engine::kChase;
  bool chased_ = false;
  datalog::ChaseFrontier frontier_;       // resume point for `refresh`
  std::vector<datalog::Atom> pending_;    // facts staged by `insert`
  ExecutionBudget budget_;
  int deadline_ms_ = 0;
  std::unique_ptr<ThreadPool> pool_;  // null = serial execution
};

}  // namespace
}  // namespace mdqa

int main(int argc, char** argv) {
  int deadline_ms = 0;
  int threads = 0;
  const char* script_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string kDeadline = "--deadline-ms=";
    const std::string kThreads = "--threads=";
    if (arg.rfind(kDeadline, 0) == 0) {
      deadline_ms = std::atoi(arg.c_str() + kDeadline.size());
      if (deadline_ms <= 0) {
        std::cerr << "bad value in '" << arg << "' (want a positive int)\n";
        return 1;
      }
    } else if (arg.rfind(kThreads, 0) == 0) {
      threads = std::atoi(arg.c_str() + kThreads.size());
      if (threads <= 0) {
        std::cerr << "bad value in '" << arg << "' (want a positive int)\n";
        return 1;
      }
    } else if (script_path == nullptr) {
      script_path = argv[i];
    } else {
      std::cerr << "usage: mdqa_shell [--deadline-ms=N] [--threads=N] "
                   "[script]\n";
      return 1;
    }
  }

  std::signal(SIGINT, mdqa::HandleSigint);
  mdqa::Shell shell(deadline_ms, threads);
  std::istream* in = &std::cin;
  std::ifstream script;
  const bool interactive = script_path == nullptr;
  if (!interactive) {
    script.open(script_path);
    if (!script) {
      std::cerr << "cannot open script '" << script_path << "'\n";
      return 1;
    }
    in = &script;
  }
  if (interactive) {
    std::cout << "mdqa shell — 'help' for commands\n";
  }
  std::string line;
  while (true) {
    if (interactive) std::cout << "> " << std::flush;
    if (!std::getline(*in, line)) break;
    if (!interactive) std::cout << "> " << line << "\n";
    if (!shell.Handle(line)) break;
  }
  return 0;
}
