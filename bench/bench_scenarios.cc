// Scenario-matrix benchmark: runs the generated scenario corpus
// (src/testgen/scenario.h) through every engine configuration and lands
// the numbers in BENCH_scenarios.json — per-family chase size, assess
// latency per engine, whether the cost planner picked the fastest sound
// engine, the incremental-reassess speedup after one update batch, and a
// cross-configuration byte-identity verdict. The reproduction aborts
// (exit 1) if any engine's verdicts disagree with the generator's planted
// ground truth, so the perf numbers can never come from a wrong answer.

#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "base/json.h"
#include "base/thread_pool.h"
#include "bench_common.h"
#include "datalog/analysis.h"
#include "qa/engines.h"
#include "quality/assessor.h"
#include "testgen/scenario.h"

namespace mdqa {
namespace {

using bench::Check;
using testgen::GeneratedScenario;
using testgen::ScenarioBenchRecord;
using testgen::ScenarioFamily;
using testgen::ScenarioGenerator;
using testgen::ScenarioSpec;
using testgen::SpecFor;

constexpr uint32_t kSeed = 1;

double MedianMs(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

template <typename Fn>
double TimeMs(Fn&& fn) {
  std::vector<double> samples;
  for (int i = 0; i < 3; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::milli>(stop - start).count());
  }
  return MedianMs(std::move(samples));
}

void RequireExactVerdicts(const quality::AssessmentReport& report,
                          const GeneratedScenario& scenario,
                          const char* what) {
  auto score =
      testgen::ScoreVerdicts(report, scenario.relation, scenario.truth);
  Check(score.status(), what);
  if (score->precision != 1.0 || score->recall != 1.0) {
    std::cerr << what << ": verdicts disagree with ground truth (P="
              << score->precision << " R=" << score->recall << ")\n";
    for (const std::string& m : score->mismatches) {
      std::cerr << "  " << m << "\n";
    }
    std::exit(1);
  }
}

ScenarioBenchRecord MeasureFamily(ScenarioFamily family) {
  const ScenarioSpec spec = SpecFor(family, kSeed);
  GeneratedScenario scenario =
      Check(ScenarioGenerator::Generate(spec), "generate");

  ScenarioBenchRecord record;
  record.family = testgen::ScenarioFamilyToString(family);
  record.seed = spec.seed;
  for (const testgen::TupleVerdict& v : scenario.truth) {
    if (!v.clean) ++record.dirty_expected;
  }
  record.edb_rows = 0;
  for (const std::string& name :
       scenario.context.database().RelationNames()) {
    record.edb_rows += Check(scenario.context.database().GetRelation(name),
                             "relation")
                           ->size();
  }

  auto prepared = Check(scenario.context.Prepare(), "prepare");
  record.chase_facts = prepared.statistics().total_facts;

  quality::Assessor assessor(&scenario.context);

  // Engine configurations: serial chase, pooled chase, and every other
  // engine the planner declares sound for the compiled program.
  auto program = Check(scenario.context.BuildProgram(), "program");
  datalog::ProgramAnalysis analysis(program);
  auto props = Check(scenario.context.ontology().Analyze(), "analyze");
  qa::EngineSelectOptions select_options;
  select_options.egds_separable = props.separable_egds;
  const qa::EngineSelection selection =
      qa::SelectEngine(program, analysis, select_options);

  quality::AssessmentReport serial;
  {
    double ms = TimeMs([&] {
      serial = Check(assessor.Assess(), "assess[chase]");
    });
    RequireExactVerdicts(serial, scenario, "chase");
    record.engines.push_back("chase");
    record.assess_ms.push_back(ms);
  }
  record.engine_recommended =
      qa::EngineToString(serial.engine_recommended);
  {
    ThreadPool pool(4);
    quality::AssessOptions options;
    options.pool = &pool;
    quality::AssessmentReport pooled;
    double ms = TimeMs([&] {
      pooled = Check(assessor.Assess(options), "assess[chase-pool4]");
    });
    record.reports_identical = pooled.ToString() == serial.ToString() &&
                               pooled.ToJson() == serial.ToJson();
    record.engines.push_back("chase-pool4");
    record.assess_ms.push_back(ms);
  }
  for (const qa::EngineCandidate& candidate : selection.candidates) {
    if (!candidate.sound || candidate.engine == qa::Engine::kChase) continue;
    quality::AssessmentReport report;
    double ms = TimeMs([&] {
      report = Check(assessor.Assess(candidate.engine), "assess[alt]");
    });
    RequireExactVerdicts(report, scenario,
                         qa::EngineToString(candidate.engine));
    record.engines.push_back(qa::EngineToString(candidate.engine));
    record.assess_ms.push_back(ms);
  }

  // Planner pick rate: did the recommendation match the empirically
  // fastest measured configuration's engine family? (chase-pool4 counts
  // as chase — the planner does not model the pool.)
  double best = record.assess_ms[0];
  std::string best_engine = "chase";
  for (size_t i = 1; i < record.engines.size(); ++i) {
    if (record.assess_ms[i] < best) {
      best = record.assess_ms[i];
      best_engine =
          record.engines[i] == "chase-pool4" ? "chase" : record.engines[i];
    }
  }
  record.planner_pick_fastest = best_engine == record.engine_recommended;

  // Incremental speedup: apply the first update batch, Reassess against
  // the previous report, and compare with a fresh full assessment of the
  // updated database (which must also render byte-identically).
  if (!scenario.updates.empty()) {
    auto next =
        Check(prepared.ApplyUpdate(scenario.updates.front().batch), "update");
    quality::AssessmentReport incremental;
    record.incremental_ms = TimeMs([&] {
      incremental = Check(assessor.Reassess(next, serial), "reassess");
    });
    GeneratedScenario fresh =
        Check(ScenarioGenerator::Generate(spec), "regenerate");
    Database patch;
    patch.PutRelation(
        *Check(next.database().GetRelation(scenario.relation), "patch"));
    Check(fresh.context.SetDatabase(std::move(patch)), "set database");
    quality::Assessor fresh_assessor(&fresh.context);
    quality::AssessmentReport full;
    record.full_reassess_ms = TimeMs([&] {
      full = Check(fresh_assessor.Assess(), "full assess");
    });
    record.reports_identical =
        record.reports_identical &&
        incremental.ToString() == full.ToString() &&
        incremental.ToJson() == full.ToJson();
  }
  return record;
}

void Reproduce() {
  std::vector<ScenarioBenchRecord> records;
  bool all_identical = true;
  for (ScenarioFamily family : testgen::kAllScenarioFamilies) {
    ScenarioBenchRecord record = MeasureFamily(family);
    std::cout << record.family << ": edb=" << record.edb_rows
              << " chase_facts=" << record.chase_facts
              << " dirty=" << record.dirty_expected << " engines=[";
    for (size_t i = 0; i < record.engines.size(); ++i) {
      if (i > 0) std::cout << ", ";
      char buf[64];
      snprintf(buf, sizeof(buf), "%s %.2fms", record.engines[i].c_str(),
               record.assess_ms[i]);
      std::cout << buf;
    }
    std::cout << "] incr=" << record.incremental_ms
              << "ms full=" << record.full_reassess_ms
              << "ms planner=" << record.engine_recommended
              << (record.planner_pick_fastest ? " (fastest)" : "")
              << (record.reports_identical ? "" : " REPORTS DIVERGE")
              << "\n";
    all_identical = all_identical && record.reports_identical;
    records.push_back(std::move(record));
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("experiment").String("scenario_matrix");
  bench::StampProvenance(&w);
  w.Key("seed").Number(static_cast<int64_t>(kSeed));
  w.Key("families");
  testgen::WriteScenarioBenchRecords(&w, records);
  w.EndObject();
  bench::WriteArtifact("BENCH_scenarios.json", w.TakeString() + "\n");
  if (!all_identical) {
    std::cerr << "FATAL: reports diverged across configurations\n";
    std::exit(1);
  }
}

void BM_GenerateScenario(benchmark::State& state) {
  const ScenarioSpec spec = SpecFor(
      testgen::kAllScenarioFamilies[static_cast<size_t>(state.range(0))],
      kSeed);
  for (auto _ : state) {
    auto scenario = ScenarioGenerator::Generate(spec);
    if (!scenario.ok()) state.SkipWithError("generate failed");
    benchmark::DoNotOptimize(scenario);
  }
}
BENCHMARK(BM_GenerateScenario)->DenseRange(0, 4);

void BM_AssessScenario(benchmark::State& state) {
  const ScenarioSpec spec = SpecFor(
      testgen::kAllScenarioFamilies[static_cast<size_t>(state.range(0))],
      kSeed);
  auto scenario = ScenarioGenerator::Generate(spec);
  if (!scenario.ok()) {
    state.SkipWithError("generate failed");
    return;
  }
  quality::Assessor assessor(&scenario->context);
  for (auto _ : state) {
    auto report = assessor.Assess();
    if (!report.ok()) state.SkipWithError("assess failed");
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_AssessScenario)->DenseRange(0, 4);

}  // namespace
}  // namespace mdqa

int main(int argc, char** argv) {
  return mdqa::bench::RunBench(
      argc, argv, "scenario-matrix",
      "generated scenario corpus: per-family, per-engine assessment with "
      "ground-truth gating",
      mdqa::Reproduce);
}
