// Ablation — design choices called out in DESIGN.md: semi-naive vs.
// naive chase rounds, and interleaved vs. post EGD application (valid on
// separable programs, the paper's Section III condition). Expected
// shape: semi-naive wins and the gap widens with recursion depth; EGD
// post-mode matches interleaved results at lower cost when separable.

#include <chrono>

#include "bench_common.h"
#include "datalog/chase.h"
#include "datalog/parser.h"
#include "scenarios/synthetic.h"

namespace mdqa {
namespace {

using bench::Check;

// A recursive reachability program over a long chain — the worst case
// for naive evaluation.
datalog::Program ChainClosure(int n) {
  std::string text;
  for (int i = 0; i < n; ++i) {
    text += "E(" + std::to_string(i) + ", " + std::to_string(i + 1) + ").\n";
  }
  text += "T(X, Y) :- E(X, Y).\n";
  text += "T(X, Z) :- T(X, Y), E(Y, Z).\n";
  return Check(datalog::Parser::ParseProgram(text), "parse");
}

double ChaseMs(const datalog::Program& program,
               const datalog::ChaseOptions& options) {
  datalog::Instance instance = datalog::Instance::FromProgram(program);
  auto t0 = std::chrono::steady_clock::now();
  Check(datalog::Chase::Run(program, &instance, options).status(), "chase");
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

void Reproduce() {
  std::cout << "\nsemi-naive vs naive chase (chain transitive closure):\n"
            << "  chain n   semi-naive(ms)   naive(ms)\n";
  for (int n : {16, 32, 64}) {
    datalog::Program program = ChainClosure(n);
    datalog::ChaseOptions semi;
    datalog::ChaseOptions naive;
    naive.semi_naive = false;
    std::printf("  %7d   %14.2f   %9.2f\n", n, ChaseMs(program, semi),
                ChaseMs(program, naive));
  }

  std::cout << "\nEGD modes on the (separable) synthetic ontology:\n";
  scenarios::SyntheticSpec spec;
  spec.patients = 100;
  spec.include_downward_rules = false;
  auto ontology = Check(scenarios::BuildSyntheticOntology(spec), "onto");
  auto program = Check(ontology->Compile(), "compile");
  datalog::ChaseOptions interleaved;
  datalog::ChaseOptions post;
  post.egd_mode = datalog::EgdMode::kPost;
  std::printf("  interleaved: %.2f ms   post: %.2f ms\n",
              ChaseMs(program, interleaved), ChaseMs(program, post));
}

void BM_SemiNaive(benchmark::State& state) {
  datalog::Program program = ChainClosure(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    datalog::Instance instance = datalog::Instance::FromProgram(program);
    datalog::ChaseOptions options;
    auto stats = datalog::Chase::Run(program, &instance, options);
    if (!stats.ok()) state.SkipWithError(stats.status().ToString().c_str());
    benchmark::DoNotOptimize(instance);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SemiNaive)->Arg(16)->Arg(32)->Arg(64)->Complexity();

void BM_Naive(benchmark::State& state) {
  datalog::Program program = ChainClosure(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    datalog::Instance instance = datalog::Instance::FromProgram(program);
    datalog::ChaseOptions options;
    options.semi_naive = false;
    auto stats = datalog::Chase::Run(program, &instance, options);
    if (!stats.ok()) state.SkipWithError(stats.status().ToString().c_str());
    benchmark::DoNotOptimize(instance);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Naive)->Arg(16)->Arg(32)->Arg(64)->Complexity();

void BM_EgdInterleaved(benchmark::State& state) {
  scenarios::SyntheticSpec spec;
  spec.patients = 60;
  spec.include_downward_rules = false;
  auto ontology = Check(scenarios::BuildSyntheticOntology(spec), "onto");
  auto program = Check(ontology->Compile(), "compile");
  for (auto _ : state) {
    datalog::Instance instance = datalog::Instance::FromProgram(program);
    datalog::ChaseOptions options;
    auto stats = datalog::Chase::Run(program, &instance, options);
    if (!stats.ok()) state.SkipWithError(stats.status().ToString().c_str());
    benchmark::DoNotOptimize(instance);
  }
}
BENCHMARK(BM_EgdInterleaved);

void BM_EgdPost(benchmark::State& state) {
  scenarios::SyntheticSpec spec;
  spec.patients = 60;
  spec.include_downward_rules = false;
  auto ontology = Check(scenarios::BuildSyntheticOntology(spec), "onto");
  auto program = Check(ontology->Compile(), "compile");
  for (auto _ : state) {
    datalog::Instance instance = datalog::Instance::FromProgram(program);
    datalog::ChaseOptions options;
    options.egd_mode = datalog::EgdMode::kPost;
    auto stats = datalog::Chase::Run(program, &instance, options);
    if (!stats.ok()) state.SkipWithError(stats.status().ToString().c_str());
    benchmark::DoNotOptimize(instance);
  }
}
BENCHMARK(BM_EgdPost);

}  // namespace
}  // namespace mdqa

int main(int argc, char** argv) {
  return mdqa::bench::RunBench(
      argc, argv, "ablation",
      "semi-naive vs naive chase; interleaved vs post EGD application",
      mdqa::Reproduce);
}
