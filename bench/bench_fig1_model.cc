// F1 — Fig. 1: the extended multidimensional model. Regenerates the
// Hospital/Time/Instrument hierarchies and the categorical-relation
// links textually; times HM validity checks (strictness, homogeneity),
// roll-up/drill-down, and Datalog fact emission.

#include "bench_common.h"
#include "scenarios/hospital.h"
#include "scenarios/synthetic.h"

namespace mdqa {
namespace {

using bench::Check;

void Reproduce() {
  auto ontology = Check(
      scenarios::BuildHospitalOntology(scenarios::HospitalOptions{}),
      "ontology");
  for (const std::string& name : ontology->DimensionNames()) {
    std::cout << "\n" << ontology->FindDimension(name)->ToString();
  }
  std::cout << "\ncategorical relations and their category links:\n";
  for (const std::string& name : ontology->CategoricalRelationNames()) {
    const md::CategoricalRelation* rel =
        ontology->FindCategoricalRelation(name);
    std::cout << "  " << name << "(";
    bool first = true;
    for (const md::CategoricalAttribute& a : rel->attributes()) {
      if (!first) std::cout << ", ";
      first = false;
      std::cout << a.name;
      if (a.is_categorical) {
        std::cout << " -> " << a.dimension << "." << a.category;
      }
    }
    std::cout << ")  [" << rel->data().size() << " rows]\n";
  }
  const md::Dimension* hospital = ontology->FindDimension("Hospital");
  Check(hospital->instance().CheckStrict(), "strictness");
  std::cout << "\nHM checks: Hospital is strict";
  Check(hospital->instance().CheckHomogeneous(), "homogeneity");
  std::cout << " and homogeneous.\n";
  auto rollup = Check(hospital->instance().RollUp("W1", "Institution"),
                      "rollup");
  std::cout << "roll-up W1 -> Institution: " << rollup[0] << "\n";
  auto drill = Check(hospital->instance().DrillDown("H1", "Ward"), "drill");
  std::cout << "drill-down H1 -> Ward: " << drill.size() << " wards\n";
}

void BM_StrictnessCheck(benchmark::State& state) {
  scenarios::SyntheticSpec spec;
  spec.institutions = 4;
  spec.units_per_institution = 4;
  spec.wards_per_unit = static_cast<int>(state.range(0));
  auto ontology = Check(scenarios::BuildSyntheticOntology(spec), "onto");
  const md::Dimension* dim = ontology->FindDimension("SynHospital");
  for (auto _ : state) {
    Status s = dim->instance().CheckStrict();
    benchmark::DoNotOptimize(s);
  }
  state.SetLabel(std::to_string(dim->instance().NumMembers()) + " members");
}
BENCHMARK(BM_StrictnessCheck)->Arg(4)->Arg(16)->Arg(64);

void BM_HomogeneityCheck(benchmark::State& state) {
  scenarios::SyntheticSpec spec;
  spec.wards_per_unit = static_cast<int>(state.range(0));
  auto ontology = Check(scenarios::BuildSyntheticOntology(spec), "onto");
  const md::Dimension* dim = ontology->FindDimension("SynHospital");
  for (auto _ : state) {
    Status s = dim->instance().CheckHomogeneous();
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_HomogeneityCheck)->Arg(4)->Arg(16)->Arg(64);

void BM_RollUpTransitive(benchmark::State& state) {
  scenarios::SyntheticSpec spec;
  spec.wards_per_unit = static_cast<int>(state.range(0));
  auto ontology = Check(scenarios::BuildSyntheticOntology(spec), "onto");
  const md::Dimension* dim = ontology->FindDimension("SynHospital");
  for (auto _ : state) {
    auto r = dim->instance().RollUp("sw0", "SInstitution");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RollUpTransitive)->Arg(4)->Arg(64);

void BM_DrillDownFanout(benchmark::State& state) {
  scenarios::SyntheticSpec spec;
  spec.wards_per_unit = static_cast<int>(state.range(0));
  auto ontology = Check(scenarios::BuildSyntheticOntology(spec), "onto");
  const md::Dimension* dim = ontology->FindDimension("SynHospital");
  for (auto _ : state) {
    auto r = dim->instance().DrillDown("si0", "SWard");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DrillDownFanout)->Arg(4)->Arg(64);

void BM_EmitDimensionFacts(benchmark::State& state) {
  scenarios::SyntheticSpec spec;
  spec.wards_per_unit = static_cast<int>(state.range(0));
  auto ontology = Check(scenarios::BuildSyntheticOntology(spec), "onto");
  const md::Dimension* dim = ontology->FindDimension("SynHospital");
  for (auto _ : state) {
    datalog::Program program;
    Status s = dim->EmitFacts(&program);
    benchmark::DoNotOptimize(program);
  }
}
BENCHMARK(BM_EmitDimensionFacts)->Arg(4)->Arg(64);

}  // namespace
}  // namespace mdqa

int main(int argc, char** argv) {
  return mdqa::bench::RunBench(
      argc, argv, "F1",
      "Fig. 1: dimensions, categorical relations, HM model checks",
      mdqa::Reproduce);
}
