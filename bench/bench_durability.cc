// Durability-layer benchmark (docs/durability.md): checkpoint encode /
// write / load throughput, fsync'd WAL append latency, and the headline
// number for the restart story — cold start (full chase) vs resume
// (checkpoint restore + no re-chase) wall time on the same knowledge
// base. The reproduction aborts (exit 1) if the resumed session's
// assessment report is not byte-identical to the cold-start one, so the
// speedup can never come from a wrong answer. Artifact:
// BENCH_durability.json (git-SHA stamped).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "base/json.h"
#include "bench_common.h"
#include "quality/assessor.h"
#include "quality/context.h"
#include "storage/checkpoint.h"
#include "storage/env.h"
#include "storage/kb_store.h"
#include "storage/session_image.h"
#include "storage/wal.h"
#include "testgen/scenario.h"

namespace mdqa {
namespace {

using bench::Check;
using testgen::GeneratedScenario;
using testgen::ScenarioGenerator;
using testgen::ScenarioSpec;

constexpr uint32_t kSeed = 1;
constexpr char kDataDir[] = "bench_durability_data";

// Scaled past unit-test size so the image is megabytes and the chase is
// long enough for the cold/resume contrast to mean something.
ScenarioSpec ScaledSpec() {
  ScenarioSpec spec = testgen::SpecFor(testgen::kAllScenarioFamilies[0],
                                       kSeed);
  spec.entities = 600;
  spec.rows = 6000;
  spec.days = 10;
  spec.corruptions = 40;
  spec.misplacements = 20;
  spec.missing_facts = 20;
  return spec;
}

std::string ScenarioStamp() {
  return testgen::ScenarioFamilyToString(testgen::kAllScenarioFamilies[0]);
}

double MedianMs(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

template <typename Fn>
double TimeMs(Fn&& fn, int reps = 3) {
  std::vector<double> samples;
  for (int i = 0; i < reps; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::milli>(stop - start).count());
  }
  return MedianMs(std::move(samples));
}

quality::DeltaBatch SmallBatch(int i) {
  quality::RelationDelta delta;
  delta.relation = "Measurements";
  delta.insert_rows.push_back({Value::FromText("Sep/9-" + std::to_string(i)),
                               Value::FromText("Patient " + std::to_string(i)),
                               Value::FromText("37.0")});
  quality::DeltaBatch batch;
  batch.deltas.push_back(std::move(delta));
  return batch;
}

void Reproduce() {
  std::filesystem::remove_all(kDataDir);
  storage::Env* env = storage::Env::Posix();

  GeneratedScenario scenario =
      Check(ScenarioGenerator::Generate(ScaledSpec()), "generate");
  quality::QualityContext& context = scenario.context;
  quality::Assessor assessor(&context);

  // ---- cold start: Prepare runs the full chase; Reassess renders the
  // report. This is what a server without --data-dir pays on every boot.
  double cold_ms = 0;
  std::string cold_report;
  uint64_t chase_facts = 0;
  auto cold_session = [&] {
    auto session = Check(context.Prepare(), "prepare");
    auto report =
        Check(assessor.Reassess(session, quality::AssessmentReport{}),
              "reassess");
    cold_report = report.ToJson();
    return session;
  };
  std::optional<quality::PreparedContext> session;
  cold_ms = TimeMs([&] { session = cold_session(); });
  chase_facts = session->instance().TotalFacts();

  // ---- checkpoint encode / write / load throughput.
  storage::KbImage image = Check(
      storage::CaptureSessionImage(*session, /*generation=*/1,
                                   /*applied_updates=*/0, ScenarioStamp()),
      "capture");
  std::string encoded;
  const double encode_ms = TimeMs([&] {
    encoded = storage::EncodeCheckpoint(image);
  });
  const double image_mb = static_cast<double>(encoded.size()) / (1 << 20);
  const double decode_ms = TimeMs([&] {
    Check(storage::DecodeCheckpoint(encoded), "decode");
  });

  auto store = Check(storage::OpenDiskKbStore(env, kDataDir), "open store");
  const double write_ms = TimeMs([&] {
    Check(store->WriteCheckpoint(image), "write checkpoint");
  });

  // ---- WAL append latency: fsync'd commits, one batch each. This is
  // the latency every /update pays between validation and publication.
  std::vector<double> append_us;
  constexpr int kAppends = 200;
  uint64_t generation = 1;
  for (int i = 0; i < kAppends; ++i) {
    const quality::DeltaBatch batch = SmallBatch(i);
    const auto start = std::chrono::steady_clock::now();
    Check(store->AppendBatch(batch, generation + 1), "append");
    const auto stop = std::chrono::steady_clock::now();
    ++generation;
    append_us.push_back(
        std::chrono::duration<double, std::micro>(stop - start).count());
  }
  std::sort(append_us.begin(), append_us.end());
  const double append_p50_us = append_us[append_us.size() / 2];
  const double append_p99_us = append_us[append_us.size() * 99 / 100];

  // Collapse the WAL again so the resume measurement below restores from
  // a checkpoint alone (the server writes exactly such a checkpoint at
  // startup and drain).
  Check(store->WriteCheckpoint(image), "re-checkpoint");

  // ---- resume: Recover + restore the database + rebuild the chased
  // instance from the image (PrepareRestored: no chase) + Reassess.
  // This is the --data-dir boot path.
  double resume_ms = 0;
  double recover_ms = 0;
  std::string resumed_report;
  resume_ms = TimeMs([&] {
    auto boot_store =
        Check(storage::OpenDiskKbStore(env, kDataDir), "reopen");
    const auto recover_start = std::chrono::steady_clock::now();
    storage::RecoveredState recovered =
        Check(boot_store->Recover(), "recover");
    recover_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - recover_start)
                     .count();
    Check(context.ReplaceDatabase(
              Check(storage::DatabaseFromImage(recovered.image), "database")),
          "replace database");
    auto shared =
        std::make_shared<storage::KbImage>(std::move(recovered.image));
    auto restored = Check(context.PrepareRestored(
                              datalog::ChaseOptions{},
                              storage::ImageRebuilder(shared)),
                          "prepare restored");
    auto report =
        Check(assessor.Reassess(restored, quality::AssessmentReport{}),
              "reassess restored");
    resumed_report = report.ToJson();
  });

  const double speedup = resume_ms > 0 ? cold_ms / resume_ms : 0;
  const bool reports_identical = resumed_report == cold_report;
  char buf[512];
  snprintf(buf, sizeof(buf),
           "image %.2f MiB (%llu chase facts): encode %.1fms (%.0f MB/s) "
           "decode %.1fms (%.0f MB/s) write+fsync %.1fms (%.0f MB/s)\n"
           "wal append (fsync'd): p50 %.0fus p99 %.0fus over %d commits\n"
           "cold start %.1fms vs resume %.1fms (recover %.1fms) -> %.2fx%s",
           image_mb, static_cast<unsigned long long>(chase_facts), encode_ms,
           encode_ms > 0 ? image_mb / (encode_ms / 1000) : 0, decode_ms,
           decode_ms > 0 ? image_mb / (decode_ms / 1000) : 0, write_ms,
           write_ms > 0 ? image_mb / (write_ms / 1000) : 0, append_p50_us,
           append_p99_us, kAppends, cold_ms, resume_ms, recover_ms, speedup,
           reports_identical ? "" : " REPORTS DIVERGE");
  std::cout << buf << "\n";

  JsonWriter w;
  w.BeginObject();
  w.Key("experiment").String("durability");
  bench::StampProvenance(&w);
  w.Key("seed").Number(static_cast<int64_t>(kSeed));
  w.Key("scenario").String(ScenarioStamp());
  w.Key("chase_facts").Number(static_cast<int64_t>(chase_facts));
  w.Key("checkpoint_bytes").Number(static_cast<int64_t>(encoded.size()));
  w.Key("encode_ms").Number(encode_ms);
  w.Key("encode_mb_per_s")
      .Number(encode_ms > 0 ? image_mb / (encode_ms / 1000) : 0);
  w.Key("decode_ms").Number(decode_ms);
  w.Key("decode_mb_per_s")
      .Number(decode_ms > 0 ? image_mb / (decode_ms / 1000) : 0);
  w.Key("checkpoint_write_ms").Number(write_ms);
  w.Key("checkpoint_write_mb_per_s")
      .Number(write_ms > 0 ? image_mb / (write_ms / 1000) : 0);
  w.Key("wal_commits").Number(static_cast<int64_t>(kAppends));
  w.Key("wal_append_p50_us").Number(append_p50_us);
  w.Key("wal_append_p99_us").Number(append_p99_us);
  w.Key("cold_start_ms").Number(cold_ms);
  w.Key("resume_ms").Number(resume_ms);
  w.Key("recover_ms").Number(recover_ms);
  w.Key("resume_speedup").Number(speedup);
  w.Key("reports_identical").Bool(reports_identical);
  w.EndObject();
  bench::WriteArtifact("BENCH_durability.json", w.TakeString() + "\n");

  std::filesystem::remove_all(kDataDir);
  if (!reports_identical) {
    std::cerr << "FATAL: resumed report diverges from cold-start report\n";
    std::exit(1);
  }
  if (resume_ms >= cold_ms) {
    // Loud but non-fatal: on a noisy box the contrast can flatten, and a
    // bench artifact that says so honestly beats a flaky gate.
    std::cerr << "WARNING: resume was not faster than cold start\n";
  }
}

void BM_EncodeCheckpoint(benchmark::State& state) {
  auto scenario = ScenarioGenerator::Generate(ScaledSpec());
  if (!scenario.ok()) {
    state.SkipWithError("generate failed");
    return;
  }
  auto session = scenario->context.Prepare();
  if (!session.ok()) {
    state.SkipWithError("prepare failed");
    return;
  }
  auto image = storage::CaptureSessionImage(*session, 1, 0, ScenarioStamp());
  if (!image.ok()) {
    state.SkipWithError("capture failed");
    return;
  }
  uint64_t bytes = 0;
  for (auto _ : state) {
    std::string encoded = storage::EncodeCheckpoint(*image);
    bytes += encoded.size();
    benchmark::DoNotOptimize(encoded);
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_EncodeCheckpoint)->Unit(benchmark::kMillisecond);

void BM_WalAppend(benchmark::State& state) {
  std::filesystem::remove_all("bench_wal_data");
  auto store =
      storage::OpenDiskKbStore(storage::Env::Posix(), "bench_wal_data");
  if (!store.ok()) {
    state.SkipWithError("open failed");
    return;
  }
  storage::KbImage image;
  image.meta.generation = 1;
  image.meta.scenario = "bench";
  if (!(*store)->WriteCheckpoint(image).ok()) {
    state.SkipWithError("checkpoint failed");
    return;
  }
  uint64_t generation = 1;
  const quality::DeltaBatch batch = SmallBatch(0);
  for (auto _ : state) {
    if (!(*store)->AppendBatch(batch, ++generation).ok()) {
      state.SkipWithError("append failed");
      return;
    }
  }
  std::filesystem::remove_all("bench_wal_data");
}
BENCHMARK(BM_WalAppend)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace mdqa

int main(int argc, char** argv) {
  return mdqa::bench::RunBench(
      argc, argv, "durability",
      "checkpoint/WAL throughput and cold-start vs resume", [] {
        mdqa::Reproduce();
      });
}
