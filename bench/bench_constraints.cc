// E3 + E5 — dimensional constraints: the inter-dimensional negative
// constraint "no Intensive-care patient during August/2005" (Example 1)
// and EGD (6) "one thermometer type per unit" (Example 4). Paper
// expectation: the dirty variants are flagged with witnesses; the clean
// scenario passes; EGD separability is detected syntactically.

#include "bench_common.h"
#include "datalog/chase.h"
#include "qa/chase_qa.h"
#include "scenarios/hospital.h"

namespace mdqa {
namespace {

using bench::Check;

void Reproduce() {
  {
    auto clean = Check(
        scenarios::BuildHospitalOntology(scenarios::HospitalOptions{}),
        "ontology");
    auto program = Check(clean->Compile(), "compile");
    auto qa = qa::ChaseQa::Create(program);
    std::cout << "\nclean scenario: "
              << (qa.ok() ? "consistent (as expected)"
                          : qa.status().ToString())
              << "\n";
    auto props = Check(clean->Analyze(), "analysis");
    std::cout << "separability shortcut available: "
              << (props.separable_egds ? "yes" : "no (form-(10) present)")
              << "\n";
  }
  {
    scenarios::HospitalOptions options;
    options.include_violating_stay = true;
    auto dirty = Check(scenarios::BuildHospitalOntology(options), "dirty");
    auto program = Check(dirty->Compile(), "compile");
    auto qa = qa::ChaseQa::Create(program);
    std::cout << "\nE3 (Intensive stay in August/2005):\n  "
              << qa.status() << "\n";
  }
  {
    scenarios::HospitalOptions options;
    options.include_therm_conflict = true;
    auto dirty = Check(scenarios::BuildHospitalOntology(options), "dirty");
    auto program = Check(dirty->Compile(), "compile");
    auto qa = qa::ChaseQa::Create(program);
    std::cout << "\nE5 (EGD (6) thermometer-type clash):\n  " << qa.status()
              << "\n";
  }
}

datalog::Program DirtyProgram(bool stay, bool therm) {
  scenarios::HospitalOptions options;
  options.include_violating_stay = stay;
  options.include_therm_conflict = therm;
  auto ontology =
      Check(scenarios::BuildHospitalOntology(options), "ontology");
  return Check(ontology->Compile(), "compile");
}

void BM_ConstraintCheck_Clean(benchmark::State& state) {
  datalog::Program program = DirtyProgram(false, false);
  datalog::Instance instance = datalog::Instance::FromProgram(program);
  datalog::ChaseOptions options;
  options.check_constraints = false;
  Check(datalog::Chase::Run(program, &instance, options).status(), "chase");
  for (auto _ : state) {
    Status s = datalog::Chase::CheckConstraints(program, instance);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_ConstraintCheck_Clean);

void BM_NcViolationDetection(benchmark::State& state) {
  datalog::Program program = DirtyProgram(true, false);
  datalog::Instance instance = datalog::Instance::FromProgram(program);
  datalog::ChaseOptions options;
  options.check_constraints = false;
  Check(datalog::Chase::Run(program, &instance, options).status(), "chase");
  for (auto _ : state) {
    Status s = datalog::Chase::CheckConstraints(program, instance);
    if (s.code() != StatusCode::kInconsistent) {
      state.SkipWithError("expected inconsistency");
    }
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_NcViolationDetection);

void BM_EgdClashDetection(benchmark::State& state) {
  datalog::Program program = DirtyProgram(false, true);
  for (auto _ : state) {
    datalog::Instance instance = datalog::Instance::FromProgram(program);
    auto merges = datalog::Chase::ApplyEgds(program, &instance);
    if (merges.ok()) state.SkipWithError("expected EGD clash");
    benchmark::DoNotOptimize(merges);
  }
}
BENCHMARK(BM_EgdClashDetection);

void BM_ReferentialValidation(benchmark::State& state) {
  auto ontology = Check(
      scenarios::BuildHospitalOntology(scenarios::HospitalOptions{}),
      "ontology");
  for (auto _ : state) {
    Status s = ontology->ValidateReferential();
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_ReferentialValidation);

}  // namespace
}  // namespace mdqa

int main(int argc, char** argv) {
  return mdqa::bench::RunBench(
      argc, argv, "E3/E5",
      "dimensional constraints: NC violation and EGD clash detection",
      mdqa::Reproduce);
}
