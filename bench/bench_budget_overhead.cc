// Overhead of budget instrumentation on the chase hot loop: an
// ExecutionBudget with generous limits threaded through `Chase::Run` and
// query evaluation must cost < 2% wall-clock versus the unbudgeted path
// (amortized deadline polling; counter charges are no-ops while a limit
// is unset). Prints the measured overhead and writes
// BENCH_budget_overhead.json, then runs google-benchmark timings.

#include <ctime>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <vector>

#include "base/budget.h"
#include "base/json.h"
#include "bench_common.h"
#include "datalog/chase.h"
#include "datalog/parser.h"

namespace mdqa {
namespace {

using bench::Check;

datalog::Program ChainClosure(int n) {
  std::string text;
  for (int i = 0; i < n; ++i) {
    text += "E(" + std::to_string(i) + ", " + std::to_string(i + 1) + ").\n";
  }
  text += "T(X, Y) :- E(X, Y).\n";
  text += "T(X, Z) :- T(X, Y), E(Y, Z).\n";
  return Check(datalog::Parser::ParseProgram(text), "parse");
}

// Thread CPU time, not wall clock: on a contended machine preemption
// charges arbitrary milliseconds to whichever configuration is running,
// drowning a ~1% effect. CPU time counts only cycles this thread spent.
double ThreadCpuMs() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return ts.tv_sec * 1e3 + ts.tv_nsec * 1e-6;
}

double ChaseMs(const datalog::Program& program, ExecutionBudget* budget) {
  datalog::ChaseOptions options;
  options.budget = budget;
  datalog::Instance instance = datalog::Instance::FromProgram(program);
  double t0 = ThreadCpuMs();
  datalog::ChaseStats stats;
  Check(datalog::Chase::Run(program, &instance, options, &stats), "chase");
  return ThreadCpuMs() - t0;
}

void Reproduce() {
  const int n = 192;
  datalog::Program program = ChainClosure(n);

  // Median of paired differences on thread CPU time: each budgeted run
  // is paired with the unbudgeted run just before it (shared load
  // conditions), and the median over pairs discards preemption and
  // cache-pollution outliers — the robust estimator for a ~1% effect on
  // shared hardware.
  std::vector<double> diffs, bases;
  ChaseMs(program, nullptr);  // warm-up
  for (int i = 0; i < 25; ++i) {
    double base = ChaseMs(program, nullptr);
    // A realistic production budget: wide deadline, generous fact cap,
    // default stride — everything is *checked*, nothing trips.
    ExecutionBudget budget;
    budget.SetDeadlineAfter(std::chrono::minutes(10));
    budget.set_max_facts(100'000'000);
    diffs.push_back(ChaseMs(program, &budget) - base);
    bases.push_back(base);
  }
  std::sort(diffs.begin(), diffs.end());
  std::sort(bases.begin(), bases.end());
  double plain_ms = bases[bases.size() / 2];
  double budgeted_ms = plain_ms + diffs[diffs.size() / 2];
  double overhead_pct =
      plain_ms > 0 ? (budgeted_ms - plain_ms) / plain_ms * 100.0 : 0.0;

  std::cout << "\nchase hot-loop budget overhead (chain n=" << n << "):\n";
  std::printf("  unbudgeted   %8.2f ms\n", plain_ms);
  std::printf("  budgeted     %8.2f ms\n", budgeted_ms);
  std::printf("  overhead     %+7.2f %%  (target < 2%%)\n", overhead_pct);

  JsonWriter w;
  w.BeginObject();
  w.Key("experiment").String("budget_overhead");
  bench::StampProvenance(&w);
  w.Key("chain_n").Number(static_cast<int64_t>(n));
  w.Key("unbudgeted_ms").Number(plain_ms);
  w.Key("budgeted_ms").Number(budgeted_ms);
  w.Key("overhead_pct").Number(overhead_pct);
  w.Key("target_pct").Number(2.0);
  w.EndObject();
  bench::WriteArtifact("BENCH_budget_overhead.json", w.TakeString() + "\n");
}

void BM_Chase_Unbudgeted(benchmark::State& state) {
  datalog::Program program = ChainClosure(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ChaseMs(program, nullptr));
  }
}
BENCHMARK(BM_Chase_Unbudgeted)->Arg(64)->Arg(192);

void BM_Chase_Budgeted(benchmark::State& state) {
  datalog::Program program = ChainClosure(static_cast<int>(state.range(0)));
  ExecutionBudget budget;
  budget.SetDeadlineAfter(std::chrono::minutes(10));
  budget.set_max_facts(100'000'000);
  for (auto _ : state) {
    budget.ResetUsage();
    benchmark::DoNotOptimize(ChaseMs(program, &budget));
  }
}
BENCHMARK(BM_Chase_Budgeted)->Arg(64)->Arg(192);

void BM_BudgetCheck(benchmark::State& state) {
  // The raw cost of one amortized Check(): one relaxed atomic tick, a
  // clock read every stride-th call.
  ExecutionBudget budget;
  budget.SetDeadlineAfter(std::chrono::minutes(10));
  for (auto _ : state) {
    benchmark::DoNotOptimize(budget.Check("bench:probe").ok());
  }
}
BENCHMARK(BM_BudgetCheck);

void BM_BudgetChargeUnlimited(benchmark::State& state) {
  // Charging against an unset limit is the no-op fast path.
  ExecutionBudget budget;
  for (auto _ : state) {
    benchmark::DoNotOptimize(budget.ChargeFacts(1).ok());
  }
}
BENCHMARK(BM_BudgetChargeUnlimited);

}  // namespace
}  // namespace mdqa

int main(int argc, char** argv) {
  return mdqa::bench::RunBench(
      argc, argv, "budget_overhead",
      "budget instrumentation overhead on the chase hot loop",
      mdqa::Reproduce);
}
