#ifndef MDQA_BENCH_BENCH_COMMON_H_
#define MDQA_BENCH_BENCH_COMMON_H_

// Shared helpers for the experiment binaries: every bench first prints
// the rows/series it reproduces from the paper (so `./bench_x` alone
// regenerates the artifact), then runs google-benchmark timings.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>

#include "base/result.h"

namespace mdqa::bench {

template <typename T>
T Check(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::cerr << what << " failed: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

inline void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << " failed: " << status << "\n";
    std::exit(1);
  }
}

/// Prints the reproduction banner, then hands over to google-benchmark.
/// `reproduce` is run exactly once, before timings.
template <typename Fn>
int RunBench(int argc, char** argv, const char* experiment_id,
             const char* description, Fn reproduce) {
  std::cout << "==================================================\n"
            << "experiment " << experiment_id << ": " << description << "\n"
            << "==================================================\n";
  reproduce();
  std::cout.flush();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace mdqa::bench

#endif  // MDQA_BENCH_BENCH_COMMON_H_
