#ifndef MDQA_BENCH_BENCH_COMMON_H_
#define MDQA_BENCH_BENCH_COMMON_H_

// Shared helpers for the experiment binaries: every bench first prints
// the rows/series it reproduces from the paper (so `./bench_x` alone
// regenerates the artifact), then runs google-benchmark timings.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "base/json.h"
#include "base/result.h"

namespace mdqa::bench {

/// The current git commit (short SHA, "-dirty" suffixed when the tree
/// has local modifications), or "unknown" outside a git checkout.
inline std::string GitSha() {
  auto run = [](const char* cmd) -> std::string {
    std::string out;
    FILE* pipe = popen(cmd, "r");
    if (pipe == nullptr) return out;
    char buf[128];
    while (fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
    if (pclose(pipe) != 0) return std::string();
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
      out.pop_back();
    }
    return out;
  };
  std::string sha = run("git rev-parse --short HEAD 2>/dev/null");
  if (sha.empty()) return "unknown";
  if (!run("git status --porcelain 2>/dev/null").empty()) sha += "-dirty";
  return sha;
}

/// Stamps machine/provenance keys into an open JSON object. Every
/// BENCH_*.json artifact carries these, so a number can always be traced
/// back to the commit and the hardware that produced it.
inline void StampProvenance(JsonWriter* w) {
  w->Key("git_sha").String(GitSha());
  w->Key("hardware_threads")
      .Number(static_cast<int64_t>(std::thread::hardware_concurrency()));
}

template <typename T>
T Check(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::cerr << what << " failed: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

inline void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << " failed: " << status << "\n";
    std::exit(1);
  }
}

/// Writes a BENCH_*.json artifact, failing loudly (exit 1) when the
/// stream errors — a silently truncated artifact must never pass for a
/// result. Every emitter goes through here instead of a bare ofstream.
inline void WriteArtifact(const std::string& path, const std::string& json) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << json;
  out.flush();
  if (!out) {
    std::cerr << "FATAL: writing " << path << " failed\n";
    std::exit(1);
  }
  std::cout << "wrote " << path << "\n";
}

/// Prints the reproduction banner, then hands over to google-benchmark.
/// `reproduce` is run exactly once, before timings.
template <typename Fn>
int RunBench(int argc, char** argv, const char* experiment_id,
             const char* description, Fn reproduce) {
  std::cout << "==================================================\n"
            << "experiment " << experiment_id << ": " << description << "\n"
            << "==================================================\n";
  reproduce();
  std::cout.flush();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace mdqa::bench

#endif  // MDQA_BENCH_BENCH_COMMON_H_
