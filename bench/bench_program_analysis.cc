// C1 — Section III claim: MD ontologies are weakly sticky (and typically
// not sticky, because dimensional joins repeat marked variables).
// Reproduces the classification table for the hospital ontology and for
// literature witness programs, and times the analysis as the rule set
// and dimensional structure grow.

#include <sstream>

#include "bench_common.h"
#include "datalog/analysis.h"
#include "datalog/parser.h"
#include "scenarios/hospital.h"
#include "scenarios/synthetic.h"

namespace mdqa {
namespace {

using bench::Check;
using datalog::ProgramAnalysis;

void PrintRow(const std::string& name, const ProgramAnalysis& a) {
  std::cout << "  " << name << ": linear=" << (a.IsLinear() ? "y" : "n")
            << " guarded=" << (a.IsGuarded() ? "y" : "n")
            << " weakly-guarded=" << (a.IsWeaklyGuarded() ? "y" : "n")
            << " weakly-acyclic=" << (a.IsWeaklyAcyclic() ? "y" : "n")
            << " sticky=" << (a.IsSticky() ? "y" : "n")
            << " weakly-sticky=" << (a.IsWeaklySticky() ? "y" : "n") << "\n";
}

void Reproduce() {
  std::cout << "\nclassification (paper claim: MD ontologies are "
               "weakly-sticky; sticky fails on dimensional joins):\n";
  {
    auto ontology = Check(
        scenarios::BuildHospitalOntology(scenarios::HospitalOptions{}),
        "ontology");
    auto program = Check(ontology->Compile(), "compile");
    PrintRow("hospital MD ontology", ProgramAnalysis(program));
  }
  {
    scenarios::HospitalOptions up;
    up.include_downward_rules = false;
    auto ontology = Check(scenarios::BuildHospitalOntology(up), "ontology");
    auto program = Check(ontology->Compile(), "compile");
    PrintRow("hospital (upward-only)", ProgramAnalysis(program));
  }
  {
    auto p = Check(datalog::Parser::ParseProgram("R(Y, Z) :- R(X, Y)."),
                   "parse");
    PrintRow("linear infinite chase ", ProgramAnalysis(p));
  }
  {
    auto p = Check(datalog::Parser::ParseProgram(
                       "R(Y, Z) :- R(X, Y).\nQ(X) :- R(X, Y), R(Y, X2).\n"),
                   "parse");
    PrintRow("CGP non-WS witness   ", ProgramAnalysis(p));
  }
}

// Synthetic rule-chain generator: n upward hops through n category pairs.
std::string ChainProgram(int n) {
  std::ostringstream os;
  for (int i = 0; i < n; ++i) {
    os << "L" << i + 1 << "(P, A) :- L" << i << "(C, A), E" << i
       << "(P, C).\n";
  }
  return os.str();
}

void BM_AnalyzeRuleChain(benchmark::State& state) {
  auto p = Check(
      datalog::Parser::ParseProgram(ChainProgram(
          static_cast<int>(state.range(0)))),
      "parse");
  for (auto _ : state) {
    ProgramAnalysis a(p);
    benchmark::DoNotOptimize(a.IsWeaklySticky());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AnalyzeRuleChain)->Arg(4)->Arg(16)->Arg(64)->Arg(256)
    ->Complexity();

void BM_AnalyzeHospitalOntology(benchmark::State& state) {
  auto ontology = Check(
      scenarios::BuildHospitalOntology(scenarios::HospitalOptions{}),
      "ontology");
  auto program = Check(ontology->Compile(), "compile");
  for (auto _ : state) {
    ProgramAnalysis a(program);
    benchmark::DoNotOptimize(a.IsWeaklySticky());
  }
}
BENCHMARK(BM_AnalyzeHospitalOntology);

void BM_OntologyAnalyzeWithSeparability(benchmark::State& state) {
  scenarios::SyntheticSpec spec;
  auto ontology = Check(scenarios::BuildSyntheticOntology(spec), "onto");
  for (auto _ : state) {
    auto props = ontology->Analyze();
    if (!props.ok()) state.SkipWithError(props.status().ToString().c_str());
    benchmark::DoNotOptimize(props);
  }
}
BENCHMARK(BM_OntologyAnalyzeWithSeparability);

}  // namespace
}  // namespace mdqa

int main(int argc, char** argv) {
  return mdqa::bench::RunBench(
      argc, argv, "C1",
      "Section III: weak-stickiness classification of MD ontologies",
      mdqa::Reproduce);
}
