// C3 — Section IV: for *upward-only* MD ontologies, conjunctive queries
// admit FO/UCQ rewritings evaluated directly on the extensional database.
// Paper expectation (shape): the rewriting is small, answers agree with
// the chase, and rewriting+evaluation avoids materialization cost as the
// data grows (crossover in favor of rewriting for selective queries).

#include <chrono>

#include "bench_common.h"
#include "datalog/parser.h"
#include "qa/chase_qa.h"
#include "qa/rewriter.h"
#include "scenarios/synthetic.h"

namespace mdqa {
namespace {

using bench::Check;

datalog::Program MakeUpwardProgram(int patients) {
  scenarios::SyntheticSpec spec;
  spec.patients = patients;
  spec.days = 10;
  spec.include_downward_rules = false;  // upward-only (Section IV class)
  auto ontology = Check(scenarios::BuildSyntheticOntology(spec), "onto");
  auto props = Check(ontology->Analyze(), "analysis");
  if (!props.upward_only) {
    std::cerr << "generator no longer upward-only\n";
    std::exit(1);
  }
  return Check(ontology->Compile(), "compile");
}

void Reproduce() {
  datalog::Program program = MakeUpwardProgram(40);
  auto q = Check(
      datalog::Parser::ParseQuery("Q(P) :- SPatientUnit(\"su0\", D, P).",
                                  program.vocab().get()),
      "parse");
  qa::RewriteStats stats;
  auto ucq = Check(
      qa::UcqRewriter::Rewrite(program, q, qa::RewriteOptions{}, &stats),
      "rewrite");
  std::cout << "\nrewriting of " << program.vocab()->QueryToString(q)
            << ":\n";
  for (const auto& cq : ucq) {
    std::cout << "  " << program.vocab()->QueryToString(cq) << "\n";
  }
  std::cout << "UCQ size " << stats.kept << " (generated " << stats.generated
            << " in " << stats.iterations << " iterations)\n";

  std::cout << "\nrewriting vs. chase, selective query, growing data:\n"
            << "  facts    rewrite+eval(ms)   chase+eval(ms)   agree\n";
  for (int patients : {20, 80, 320}) {
    datalog::Program p = MakeUpwardProgram(patients);
    auto query = Check(
        datalog::Parser::ParseQuery("Q(P) :- SPatientUnit(\"su0\", D, P).",
                                    p.vocab().get()),
        "parse");
    datalog::Instance edb = datalog::Instance::FromProgram(p);

    auto t0 = std::chrono::steady_clock::now();
    auto via_rw = Check(qa::UcqRewriter::Answers(p, edb, query), "rw");
    auto t1 = std::chrono::steady_clock::now();
    auto chase = Check(qa::ChaseQa::Create(p), "chase");
    auto via_chase = Check(chase.Answers(query), "answers");
    auto t2 = std::chrono::steady_clock::now();

    auto sorted = [](std::vector<std::vector<datalog::Term>> v) {
      std::sort(v.begin(), v.end());
      return v;
    };
    auto ms = [](auto a, auto b) {
      return std::chrono::duration<double, std::milli>(b - a).count();
    };
    std::printf("  %6zu   %16.2f   %14.2f   %s\n", p.facts().size(),
                ms(t0, t1), ms(t1, t2),
                sorted(via_rw) == sorted(via_chase) ? "yes" : "NO");
  }
}

void BM_RewriteOnly(benchmark::State& state) {
  datalog::Program program = MakeUpwardProgram(20);
  auto q = Check(
      datalog::Parser::ParseQuery("Q(P) :- SPatientUnit(\"su0\", D, P).",
                                  program.vocab().get()),
      "parse");
  for (auto _ : state) {
    qa::RewriteStats stats;
    auto ucq =
        qa::UcqRewriter::Rewrite(program, q, qa::RewriteOptions{}, &stats);
    if (!ucq.ok()) state.SkipWithError(ucq.status().ToString().c_str());
    benchmark::DoNotOptimize(ucq);
  }
}
BENCHMARK(BM_RewriteOnly);

void BM_RewriteAndEvaluate(benchmark::State& state) {
  datalog::Program program =
      MakeUpwardProgram(static_cast<int>(state.range(0)));
  auto q = Check(
      datalog::Parser::ParseQuery("Q(P) :- SPatientUnit(\"su0\", D, P).",
                                  program.vocab().get()),
      "parse");
  datalog::Instance edb = datalog::Instance::FromProgram(program);
  for (auto _ : state) {
    auto a = qa::UcqRewriter::Answers(program, edb, q);
    if (!a.ok()) state.SkipWithError(a.status().ToString().c_str());
    benchmark::DoNotOptimize(a);
  }
  state.SetComplexityN(static_cast<int64_t>(program.facts().size()));
}
BENCHMARK(BM_RewriteAndEvaluate)->Arg(20)->Arg(80)->Arg(320)->Complexity();

void BM_ChaseAndEvaluate(benchmark::State& state) {
  datalog::Program program =
      MakeUpwardProgram(static_cast<int>(state.range(0)));
  auto q = Check(
      datalog::Parser::ParseQuery("Q(P) :- SPatientUnit(\"su0\", D, P).",
                                  program.vocab().get()),
      "parse");
  for (auto _ : state) {
    auto chase = qa::ChaseQa::Create(program);
    if (!chase.ok()) state.SkipWithError(chase.status().ToString().c_str());
    auto a = chase->Answers(q);
    benchmark::DoNotOptimize(a);
  }
  state.SetComplexityN(static_cast<int64_t>(program.facts().size()));
}
BENCHMARK(BM_ChaseAndEvaluate)->Arg(20)->Arg(80)->Arg(320)->Complexity();

}  // namespace
}  // namespace mdqa

int main(int argc, char** argv) {
  return mdqa::bench::RunBench(
      argc, argv, "C3",
      "Section IV: FO/UCQ rewriting for upward-only MD ontologies",
      mdqa::Reproduce);
}
