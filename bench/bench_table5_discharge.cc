// E4 — Table V / Example 6 / rule (9): form-(10) disjunctive downward
// navigation. Paper expectation: no certain unit for Elvis Costello, but
// "he was in some unit of H2" holds; patients already placed by rule (7)
// get no redundant nulls (restricted chase).

#include "bench_common.h"
#include "datalog/parser.h"
#include "qa/chase_qa.h"
#include "qa/deterministic_ws.h"
#include "scenarios/hospital.h"

namespace mdqa {
namespace {

using bench::Check;

datalog::Program MakeProgram() {
  auto ontology = Check(
      scenarios::BuildHospitalOntology(scenarios::HospitalOptions{}),
      "ontology");
  return Check(ontology->Compile(), "compile");
}

void Reproduce() {
  auto ontology = Check(
      scenarios::BuildHospitalOntology(scenarios::HospitalOptions{}),
      "ontology");
  auto program = Check(ontology->Compile(), "compile");
  auto vocab = program.vocab();
  std::cout << "\n--- Table V (DischargePatients) ---\n"
            << ontology->FindCategoricalRelation("DischargePatients")
                   ->data()
                   .ToTable();
  auto chase = Check(qa::ChaseQa::Create(program), "chase");
  std::cout << "\nPatientUnit after rules (7) + (9):\n"
            << Check(chase.instance().ExportRelation(
                         vocab->FindPredicate("PatientUnit"), "PatientUnit",
                         {"Unit", "Day", "Patient"}, true),
                     "export")
                   .ToTable();
  auto open = Check(
      datalog::Parser::ParseQuery(
          "Q(U) :- PatientUnit(U, \"Oct/5\", \"Elvis Costello\").",
          vocab.get()),
      "parse");
  std::cout << "certain units for Elvis on Oct/5: "
            << Check(chase.Answers(open), "certain").size()
            << "   (paper: none — disjunctive knowledge)\n";
  auto boolean = Check(
      datalog::Parser::ParseQuery(
          "Q() :- InstitutionUnit(\"H2\", U), "
          "PatientUnit(U, \"Oct/5\", \"Elvis Costello\").",
          vocab.get()),
      "parse");
  std::cout << "\"Elvis in some unit of H2\" certain: "
            << (Check(chase.AnswerBoolean(boolean), "bool") ? "yes" : "no")
            << "   (paper: yes)\n";
}

void BM_DisjunctiveBoolean_Chase(benchmark::State& state) {
  datalog::Program program = MakeProgram();
  auto q = Check(datalog::Parser::ParseQuery(
                     "Q() :- InstitutionUnit(\"H2\", U), "
                     "PatientUnit(U, \"Oct/5\", \"Elvis Costello\").",
                     program.vocab().get()),
                 "parse");
  for (auto _ : state) {
    auto chase = qa::ChaseQa::Create(program);
    if (!chase.ok()) state.SkipWithError(chase.status().ToString().c_str());
    auto a = chase->AnswerBoolean(q);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_DisjunctiveBoolean_Chase);

void BM_DisjunctiveBoolean_DeterministicWs(benchmark::State& state) {
  datalog::Program program = MakeProgram();
  for (auto _ : state) {
    qa::DeterministicWsQa qa(program);
    auto q = Check(datalog::Parser::ParseQuery(
                       "Q() :- InstitutionUnit(\"H2\", U), "
                       "PatientUnit(U, \"Oct/5\", \"Elvis Costello\").",
                       program.vocab().get()),
                   "parse");
    auto a = qa.AnswerBoolean(q);
    if (!a.ok()) state.SkipWithError(a.status().ToString().c_str());
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_DisjunctiveBoolean_DeterministicWs);

void BM_CertainAnswersUnderNulls(benchmark::State& state) {
  datalog::Program program = MakeProgram();
  auto chase = Check(qa::ChaseQa::Create(program), "chase");
  auto q = Check(datalog::Parser::ParseQuery(
                     "Q(U, D, P) :- PatientUnit(U, D, P).",
                     program.vocab().get()),
                 "parse");
  for (auto _ : state) {
    auto a = chase.Answers(q);
    if (!a.ok()) state.SkipWithError(a.status().ToString().c_str());
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_CertainAnswersUnderNulls);

}  // namespace
}  // namespace mdqa

int main(int argc, char** argv) {
  return mdqa::bench::RunBench(
      argc, argv, "E4",
      "Table V: form-(10) disjunctive downward navigation",
      mdqa::Reproduce);
}
