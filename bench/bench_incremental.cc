// Incremental chase vs. full re-chase: for delta batches of 1/4/16 new
// measurements arriving on an already-materialized contextual instance,
// `Chase::Extend` (resume from the captured frontier, semi-naive restart
// seeded with the delta) is compared against tearing the instance down
// and re-chasing the extended extensional set from scratch. Both paths
// must produce the same instance (canonical render compared; the run
// aborts on divergence) — the incremental one just skips re-deriving
// everything the delta cannot touch.
//
// Scenarios: the paper's hospital context in its upward-only form
// (incremental path applies; the single-fact delta is the headline
// ≥5x row), the full hospital config whose form-(10) rule forces the
// *recorded* full-re-chase fallback (expected ~1x — the point is that
// it is exact and visible, not fast), and a larger synthetic instance.
// Timings are medians of 3; results land in BENCH_incremental.json
// (stamped with git SHA + hardware threads like every BENCH artifact).
// See docs/incremental.md for the design and the fallback matrix.

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "base/json.h"
#include "bench_common.h"
#include "core/md_ontology.h"
#include "datalog/chase.h"
#include "datalog/instance.h"
#include "datalog/parser.h"
#include "quality/context.h"
#include "scenarios/hospital.h"
#include "scenarios/synthetic.h"

namespace mdqa {
namespace {

using bench::Check;
using datalog::Chase;
using datalog::ChaseOptions;
using datalog::ChaseStats;
using datalog::Instance;

struct Scenario {
  std::string name;
  datalog::Program program;
  ChaseOptions options;  // separability threaded from the ontology
  std::string delta_relation;
  bool expect_fallback = false;
};

Scenario MakeHospital(bool downward, const std::string& name) {
  scenarios::HospitalOptions options;
  options.include_downward_rules = downward;
  auto context = Check(scenarios::BuildHospitalContext(options), "hospital");
  Scenario s{name, Check(context.BuildProgram(), "program"), ChaseOptions{},
             "Measurements", downward};
  auto props = Check(context.ontology().Analyze(), "analyze");
  s.options.egds_separable = props.separable_egds;
  return s;
}

Scenario MakeSynthetic() {
  scenarios::SyntheticSpec spec;
  spec.patients = 80;
  spec.days = 10;
  spec.include_downward_rules = false;
  auto context = Check(scenarios::BuildSyntheticContext(spec), "synthetic");
  Scenario s{"synthetic-80x10", Check(context.BuildProgram(), "program"),
             ChaseOptions{}, "SMeasurements", false};
  auto props = Check(context.ontology().Analyze(), "analyze");
  s.options.egds_separable = props.separable_egds;
  return s;
}

double MedianMs(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct DeltaResult {
  size_t delta = 0;
  double full_ms = 0;
  double incremental_ms = 0;
  double speedup = 0;
  bool fallback = false;
  bool identical = false;
};

// One delta size on one scenario: base chase once, then median-of-3 for
// (a) a from-scratch re-chase of base+delta and (b) a frontier-resumed
// extension of a snapshot of the base instance.
DeltaResult RunDelta(const Scenario& s, size_t delta_size) {
  using Clock = std::chrono::steady_clock;
  auto ms = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
  };

  datalog::Program program = s.program;  // private copy: we add the delta
  Instance base = Instance::FromProgram(program);
  ChaseStats base_stats;
  Check(Chase::Run(program, &base, s.options, &base_stats), "base chase");

  std::vector<datalog::Atom> delta;
  for (size_t i = 0; i < delta_size; ++i) {
    auto atom = Check(
        datalog::Parser::ParseGroundAtom(
            s.delta_relation + "(\"Sep/5-23:0" + std::to_string(i % 10) +
                "\", \"Fresh Patient " + std::to_string(i) + "\", 37.0)",
            program.mutable_vocab()),
        "delta atom");
    Check(program.AddFact(atom), "add fact");
    delta.push_back(atom);
  }

  DeltaResult r;
  r.delta = delta_size;
  std::vector<double> full_samples, inc_samples;
  std::string full_render, inc_render;
  for (int rep = 0; rep < 3; ++rep) {
    auto t0 = Clock::now();
    Instance rebuilt = Instance::FromProgram(program);
    ChaseStats full_stats;
    Check(Chase::Run(program, &rebuilt, s.options, &full_stats), "full");
    auto t1 = Clock::now();
    full_samples.push_back(ms(t0, t1));

    auto t2 = Clock::now();
    Instance extended = base.Snapshot();
    ChaseStats inc_stats;
    Check(Chase::Extend(program, &extended, base_stats.frontier, delta,
                        s.options, &inc_stats),
          "extend");
    auto t3 = Clock::now();
    inc_samples.push_back(ms(t2, t3));

    if (rep == 0) {
      r.fallback = inc_stats.extend_fallback;
      full_render = rebuilt.ToCanonicalString();
      inc_render = extended.ToCanonicalString();
    }
  }
  r.full_ms = MedianMs(full_samples);
  r.incremental_ms = MedianMs(inc_samples);
  r.speedup = r.incremental_ms > 0 ? r.full_ms / r.incremental_ms : 0.0;
  r.identical = full_render == inc_render;
  return r;
}

void Reproduce() {
  std::cout << "\nincremental chase (frontier resume) vs full re-chase, "
               "median of 3:\n";
  JsonWriter w;
  w.BeginObject();
  w.Key("experiment").String("incremental");
  bench::StampProvenance(&w);
  w.Key("target_single_fact_speedup").Number(5.0);
  w.Key("scenarios").BeginArray();

  bool all_identical = true;
  double hospital_single_fact_speedup = 0.0;
  std::vector<Scenario> scenarios;
  scenarios.push_back(MakeHospital(false, "hospital-upward"));
  scenarios.push_back(MakeHospital(true, "hospital-full(fallback)"));
  scenarios.push_back(MakeSynthetic());
  for (const Scenario& s : scenarios) {
    std::cout << "  " << s.name << " (" << s.program.facts().size()
              << " extensional facts):\n"
              << "    delta   full(ms)   incremental(ms)   speedup   "
                 "fallback   identical\n";
    w.BeginObject();
    w.Key("name").String(s.name);
    w.Key("extensional_facts").Number(s.program.facts().size());
    w.Key("deltas").BeginArray();
    for (size_t delta : {size_t{1}, size_t{4}, size_t{16}}) {
      DeltaResult r = RunDelta(s, delta);
      all_identical = all_identical && r.identical;
      if (s.name == "hospital-upward" && delta == 1) {
        hospital_single_fact_speedup = r.speedup;
      }
      std::printf("    %5zu   %8.3f   %15.3f   %6.1fx   %8s   %9s\n",
                  r.delta, r.full_ms, r.incremental_ms, r.speedup,
                  r.fallback ? "yes" : "no", r.identical ? "yes" : "NO");
      if (r.fallback != s.expect_fallback) {
        std::cout << "    !! unexpected fallback state\n";
      }
      w.BeginObject();
      w.Key("delta").Number(r.delta);
      w.Key("full_ms").Number(r.full_ms);
      w.Key("incremental_ms").Number(r.incremental_ms);
      w.Key("speedup").Number(r.speedup);
      w.Key("fallback").Bool(r.fallback);
      w.Key("identical").Bool(r.identical);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.Key("hospital_single_fact_speedup").Number(hospital_single_fact_speedup);
  w.Key("all_identical").Bool(all_identical);
  w.EndObject();

  bench::WriteArtifact("BENCH_incremental.json", w.TakeString() + "\n");
  if (!all_identical) {
    std::cerr << "!! incremental instance diverged from full re-chase\n";
    std::exit(1);
  }
  if (hospital_single_fact_speedup < 5.0) {
    std::cout << "note: hospital single-fact speedup "
              << hospital_single_fact_speedup
              << "x below the 5x target on this host\n";
  }
}

void BM_FullRechase_Hospital(benchmark::State& state) {
  Scenario s = MakeHospital(false, "hospital-upward");
  auto atom = Check(datalog::Parser::ParseGroundAtom(
                        "Measurements(\"Sep/5-23:00\", \"Fresh Patient\", "
                        "37.0)",
                        s.program.mutable_vocab()),
                    "atom");
  Check(s.program.AddFact(atom), "add");
  for (auto _ : state) {
    Instance inst = Instance::FromProgram(s.program);
    ChaseStats stats;
    Check(Chase::Run(s.program, &inst, s.options, &stats), "run");
    benchmark::DoNotOptimize(inst);
  }
}
BENCHMARK(BM_FullRechase_Hospital);

void BM_IncrementalExtend_Hospital(benchmark::State& state) {
  Scenario s = MakeHospital(false, "hospital-upward");
  Instance base = Instance::FromProgram(s.program);
  ChaseStats base_stats;
  Check(Chase::Run(s.program, &base, s.options, &base_stats), "base");
  auto atom = Check(datalog::Parser::ParseGroundAtom(
                        "Measurements(\"Sep/5-23:00\", \"Fresh Patient\", "
                        "37.0)",
                        s.program.mutable_vocab()),
                    "atom");
  Check(s.program.AddFact(atom), "add");
  for (auto _ : state) {
    Instance extended = base.Snapshot();
    ChaseStats stats;
    Check(Chase::Extend(s.program, &extended, base_stats.frontier, {atom},
                        s.options, &stats),
          "extend");
    benchmark::DoNotOptimize(extended);
  }
}
BENCHMARK(BM_IncrementalExtend_Hospital);

}  // namespace
}  // namespace mdqa

int main(int argc, char** argv) {
  return mdqa::bench::RunBench(
      argc, argv, "C5",
      "incremental chase: delta-driven re-assessment vs full re-chase",
      [] { mdqa::Reproduce(); });
}
