// Whole-program analysis + cost-based planner, measured: (a) the
// overhead of building `datalog::ProgramAnalysis` + `analysis::CostModel`
// relative to actually running the chase, (b) the planner's quality on a
// sweep of programs spanning the engine space — is the picked engine the
// measured-fastest *sound* engine, and how far is the predicted chase
// size from the materialized truth, and (c) the materialize-vs-on-demand
// crossover: a branching-rules family where UCQ rewriting's disjunct
// blow-up eventually loses to one-shot chase materialization, with the
// model's predicted flip point next to the measured one.
//
// All engine timings are medians of 3; every case cross-checks that the
// measured engines return identical answer sets (the run aborts on
// divergence). Results land in BENCH_analysis.json, stamped with git
// SHA + hardware threads like every BENCH artifact.

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/cost_model.h"
#include "base/json.h"
#include "bench_common.h"
#include "datalog/analysis.h"
#include "datalog/chase.h"
#include "datalog/instance.h"
#include "datalog/parser.h"
#include "qa/engines.h"
#include "quality/context.h"
#include "scenarios/hospital.h"

namespace mdqa {
namespace {

using bench::Check;
using datalog::Chase;
using datalog::ChaseOptions;
using datalog::ChaseStats;
using datalog::Instance;

using Clock = std::chrono::steady_clock;

double Ms(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

double MedianMs(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct Case {
  std::string name;
  datalog::Program program;
  datalog::ConjunctiveQuery query;
  bool egds_separable = false;
};

Case MakeCase(const std::string& name, const std::string& program_text,
              const std::string& query_text) {
  Case c;
  c.name = name;
  c.program = Check(datalog::Parser::ParseProgram(program_text), "program");
  c.query = Check(
      datalog::Parser::ParseQuery(query_text, c.program.mutable_vocab()),
      "query");
  return c;
}

// Sticky copy chain P0 -> P1 -> ... -> P<depth>, `rows` EDB facts.
// Rewriting folds the chain into one CQ over P0; the chase materializes
// every level.
Case MakeChain(size_t rows, size_t depth) {
  std::string text;
  for (size_t i = 0; i < rows; ++i) {
    text += "P0(\"k" + std::to_string(i) + "\", \"v" + std::to_string(i) +
            "\").\n";
  }
  for (size_t d = 1; d <= depth; ++d) {
    text += "P" + std::to_string(d) + "(X, Y) :- P" + std::to_string(d - 1) +
            "(X, Y).\n";
  }
  return MakeCase("sticky-chain-n" + std::to_string(rows), text,
                  "Out(X, Y) :- P" + std::to_string(depth) + "(X, Y).");
}

// `branch` alternative rules per level over `depth` levels: the UCQ
// rewriting of the goal expands into branch^depth disjuncts while the
// chase's materialized instance stays the same size — the
// materialize-vs-on-demand knob, VLog-style.
Case MakeBranchy(size_t rows, size_t depth, size_t branch) {
  std::string text;
  for (size_t i = 0; i < rows; ++i) {
    text += "P0(\"k" + std::to_string(i) + "\").\n";
  }
  for (size_t b = 0; b < branch; ++b) {
    for (size_t i = 0; i < rows; ++i) {
      text += "A" + std::to_string(b) + "(\"k" + std::to_string(i) + "\").\n";
    }
  }
  for (size_t d = 1; d <= depth; ++d) {
    for (size_t b = 0; b < branch; ++b) {
      text += "P" + std::to_string(d) + "(X) :- P" + std::to_string(d - 1) +
              "(X), A" + std::to_string(b) + "(X).\n";
    }
  }
  return MakeCase("branchy-b" + std::to_string(branch), text,
                  "Out(X) :- P" + std::to_string(depth) + "(X).");
}

Case MakeWeaklySticky(size_t rows) {
  std::string text;
  for (size_t i = 0; i < rows; ++i) {
    text += "S(\"k" + std::to_string(i) + "\", \"k" +
            std::to_string((i + 1) % rows) + "\").\n";
  }
  text += "R(Y, Z) :- S(X, Y).\n";
  text += "Q(X) :- S(X, Y), S(Y, X2).\n";
  Case c = MakeCase("weakly-sticky", text, "Out(X) :- Q(X).");
  return c;
}

Case MakeNegation(size_t rows) {
  std::string text;
  for (size_t i = 0; i < rows; ++i) {
    text += "P(\"k" + std::to_string(i) + "\").\n";
    if (i % 2 == 0) text += "Q(\"k" + std::to_string(i) + "\").\n";
  }
  text += "T(X) :- P(X), not Q(X).\n";
  return MakeCase("stratified-negation", text, "Out(X) :- T(X).");
}

Case MakeHospital() {
  scenarios::HospitalOptions options;
  options.include_downward_rules = false;
  auto context = Check(scenarios::BuildHospitalContext(options), "hospital");
  Case c;
  c.name = "hospital-upward";
  c.program = Check(context.BuildProgram(), "program");
  c.query = Check(datalog::Parser::ParseQuery(
                      "Out(T, P, V) :- Measurementsq(T, P, V).",
                      c.program.mutable_vocab()),
                  "query");
  auto props = Check(context.ontology().Analyze(), "analyze");
  c.egds_separable = props.separable_egds;
  return c;
}

struct CaseResult {
  std::string name;
  double analysis_ms = 0;
  double chase_ms = 0;
  uint64_t predicted_chase_facts = 0;
  uint64_t actual_chase_facts = 0;
  double chase_size_error = 0;  ///< |predicted - actual| / actual
  qa::Engine picked = qa::Engine::kChase;
  qa::Engine measured_fastest = qa::Engine::kChase;
  bool pick_sound = false;
  bool pick_fastest = false;  ///< picked within 25% of fastest sound
  bool identical = true;      ///< all sound engines agree on answers
  std::vector<std::pair<qa::Engine, double>> engine_ms;
};

CaseResult RunCase(const Case& c) {
  CaseResult r;
  r.name = c.name;

  // (a) analysis + cost-model construction time, median of 3.
  std::vector<double> analysis_samples;
  for (int rep = 0; rep < 3; ++rep) {
    auto t0 = Clock::now();
    datalog::ProgramAnalysis analysis(c.program);
    analysis::CostModel model(c.program, analysis,
                              analysis::CostModel::CollectEdbStats(c.program));
    benchmark::DoNotOptimize(&model);
    analysis_samples.push_back(Ms(t0, Clock::now()));
  }
  r.analysis_ms = MedianMs(std::move(analysis_samples));

  datalog::ProgramAnalysis analysis(c.program);
  analysis::CostModel model(c.program, analysis,
                            analysis::CostModel::CollectEdbStats(c.program));

  // (b) predicted vs materialized chase size, and chase wall time.
  {
    std::vector<double> samples;
    uint64_t total = 0;
    for (int rep = 0; rep < 3; ++rep) {
      auto t0 = Clock::now();
      Instance inst = Instance::FromProgram(c.program);
      ChaseOptions chase_options;
      chase_options.egds_separable = c.egds_separable;
      ChaseStats stats;
      Check(Chase::Run(c.program, &inst, chase_options, &stats), "chase");
      samples.push_back(Ms(t0, Clock::now()));
      total = inst.CollectStatistics().total_facts;
    }
    r.chase_ms = MedianMs(std::move(samples));
    r.predicted_chase_facts = model.PredictedChaseFacts();
    r.actual_chase_facts = total;
    r.chase_size_error =
        total == 0 ? 0.0
                   : std::abs(static_cast<double>(r.predicted_chase_facts) -
                              static_cast<double>(total)) /
                         static_cast<double>(total);
  }

  // (c) planner pick vs measured-fastest sound engine.
  qa::EngineSelectOptions select_options;
  select_options.egds_separable = c.egds_separable;
  select_options.cost_model = &model;
  auto selection = qa::SelectEngine(c.program, analysis, select_options);
  r.picked = selection.engine;

  double best_ms = 0;
  bool first = true;
  const qa::AnswerSet* reference = nullptr;
  std::vector<qa::AnswerSet> answers;
  answers.reserve(selection.candidates.size());
  for (const qa::EngineCandidate& cand : selection.candidates) {
    if (!cand.sound) continue;
    if (cand.engine == r.picked) r.pick_sound = true;
    std::vector<double> samples;
    qa::AnswerSet got;
    for (int rep = 0; rep < 3; ++rep) {
      auto t0 = Clock::now();
      got = Check(qa::Answer(cand.engine, c.program, c.query), "answer");
      samples.push_back(Ms(t0, Clock::now()));
    }
    answers.push_back(std::move(got));
    if (reference == nullptr) {
      reference = &answers.back();
    } else if (!(answers.back() == *reference)) {
      r.identical = false;
    }
    double median = MedianMs(std::move(samples));
    r.engine_ms.emplace_back(cand.engine, median);
    if (first || median < best_ms) {
      best_ms = median;
      r.measured_fastest = cand.engine;
      first = false;
    }
  }
  for (const auto& [engine, median] : r.engine_ms) {
    if (engine == r.picked) {
      r.pick_fastest = median <= best_ms * 1.25;
    }
  }
  return r;
}

void Reproduce() {
  std::vector<Case> cases;
  cases.push_back(MakeChain(8, 4));
  cases.push_back(MakeChain(256, 4));
  cases.push_back(MakeWeaklySticky(64));
  cases.push_back(MakeNegation(64));
  cases.push_back(MakeBranchy(48, 4, 8));
  cases.push_back(MakeHospital());

  JsonWriter w;
  w.BeginObject();
  w.Key("experiment").String("analysis");
  bench::StampProvenance(&w);
  w.Key("target_pick_rate").Number(0.9);

  std::cout << "\nplanner sweep (engine timings: median of 3):\n"
            << "  case                 analysis(ms)  chase(ms)  "
               "pred/actual facts  picked            fastest           "
               "ok  identical\n";
  w.Key("cases").BeginArray();
  size_t correct = 0;
  bool all_identical = true;
  bool all_sound = true;
  double error_sum = 0;
  for (const Case& c : cases) {
    CaseResult r = RunCase(c);
    correct += r.pick_fastest ? 1 : 0;
    all_identical = all_identical && r.identical;
    all_sound = all_sound && r.pick_sound;
    error_sum += r.chase_size_error;
    std::printf(
        "  %-20s %11.3f %10.3f %8llu /%8llu  %-17s %-17s %2s  %9s\n",
        r.name.c_str(), r.analysis_ms, r.chase_ms,
        static_cast<unsigned long long>(r.predicted_chase_facts),
        static_cast<unsigned long long>(r.actual_chase_facts),
        qa::EngineToString(r.picked), qa::EngineToString(r.measured_fastest),
        r.pick_fastest ? "ok" : "NO", r.identical ? "yes" : "NO");
    w.BeginObject();
    w.Key("name").String(r.name);
    w.Key("analysis_ms").Number(r.analysis_ms);
    w.Key("chase_ms").Number(r.chase_ms);
    w.Key("predicted_chase_facts")
        .Number(static_cast<size_t>(r.predicted_chase_facts));
    w.Key("actual_chase_facts")
        .Number(static_cast<size_t>(r.actual_chase_facts));
    w.Key("chase_size_error").Number(r.chase_size_error);
    w.Key("picked").String(qa::EngineToString(r.picked));
    w.Key("measured_fastest").String(qa::EngineToString(r.measured_fastest));
    w.Key("pick_within_25pct_of_fastest").Bool(r.pick_fastest);
    w.Key("answers_identical").Bool(r.identical);
    w.Key("engines").BeginArray();
    for (const auto& [engine, median] : r.engine_ms) {
      w.BeginObject();
      w.Key("engine").String(qa::EngineToString(engine));
      w.Key("median_ms").Number(median);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();

  double pick_rate =
      cases.empty() ? 0.0 : static_cast<double>(correct) / cases.size();
  double mean_error = cases.empty() ? 0.0 : error_sum / cases.size();
  w.Key("pick_rate").Number(pick_rate);
  w.Key("mean_chase_size_error").Number(mean_error);
  std::printf("  pick rate: %.0f%% (target >= 90%%), "
              "mean chase-size prediction error: %.2f\n",
              pick_rate * 100.0, mean_error);

  // Materialize-vs-on-demand crossover: branching factor sweep.
  std::cout << "\nmaterialize-vs-on-demand crossover (depth-4 branching "
               "family, 48 rows):\n"
            << "  branch  pred(chase)  pred(rewrite)  chase(ms)  "
               "rewrite(ms)  model-prefers  measured-winner\n";
  w.Key("crossover").BeginArray();
  int predicted_flip = -1;
  int measured_flip = -1;
  for (size_t branch :
       {size_t{1}, size_t{2}, size_t{4}, size_t{6}, size_t{8}}) {
    Case c = MakeBranchy(48, 4, branch);
    datalog::ProgramAnalysis analysis(c.program);
    analysis::CostModel model(c.program, analysis,
                              analysis::CostModel::CollectEdbStats(c.program));
    std::vector<double> chase_samples, rewrite_samples;
    for (int rep = 0; rep < 3; ++rep) {
      auto t0 = Clock::now();
      auto via_chase =
          Check(qa::Answer(qa::Engine::kChase, c.program, c.query), "chase");
      auto t1 = Clock::now();
      auto via_rewrite = Check(
          qa::Answer(qa::Engine::kRewriting, c.program, c.query), "rewrite");
      auto t2 = Clock::now();
      chase_samples.push_back(Ms(t0, t1));
      rewrite_samples.push_back(Ms(t1, t2));
      if (!(via_chase == via_rewrite)) {
        std::cerr << "!! chase and rewriting disagree at branch=" << branch
                  << "\n";
        std::exit(1);
      }
    }
    double chase_ms = MedianMs(std::move(chase_samples));
    double rewrite_ms = MedianMs(std::move(rewrite_samples));
    bool model_chase = model.PredictedChaseCost() <
                       model.PredictedRewritingCost();
    bool measured_chase = chase_ms < rewrite_ms;
    if (model_chase && predicted_flip < 0) {
      predicted_flip = static_cast<int>(branch);
    }
    if (measured_chase && measured_flip < 0) {
      measured_flip = static_cast<int>(branch);
    }
    std::printf("  %6zu  %11llu  %13llu  %9.3f  %11.3f  %-13s  %s\n", branch,
                static_cast<unsigned long long>(model.PredictedChaseCost()),
                static_cast<unsigned long long>(
                    model.PredictedRewritingCost()),
                chase_ms, rewrite_ms, model_chase ? "chase" : "rewriting",
                measured_chase ? "chase" : "rewriting");
    w.BeginObject();
    w.Key("branch").Number(branch);
    w.Key("predicted_chase_cost")
        .Number(static_cast<size_t>(model.PredictedChaseCost()));
    w.Key("predicted_rewriting_cost")
        .Number(static_cast<size_t>(model.PredictedRewritingCost()));
    w.Key("chase_ms").Number(chase_ms);
    w.Key("rewriting_ms").Number(rewrite_ms);
    w.Key("model_prefers").String(model_chase ? "chase" : "rewriting");
    w.Key("measured_winner").String(measured_chase ? "chase" : "rewriting");
    w.EndObject();
  }
  w.EndArray();
  w.Key("predicted_crossover_branch")
      .Number(static_cast<int64_t>(predicted_flip));
  w.Key("measured_crossover_branch")
      .Number(static_cast<int64_t>(measured_flip));
  std::cout << "  crossover branch factor: predicted "
            << (predicted_flip < 0 ? std::string("none")
                                   : std::to_string(predicted_flip))
            << ", measured "
            << (measured_flip < 0 ? std::string("none")
                                  : std::to_string(measured_flip))
            << "\n";

  w.Key("pick_rate_meets_target").Bool(pick_rate >= 0.9);
  w.Key("all_picks_sound").Bool(all_sound);
  w.Key("all_answers_identical").Bool(all_identical);
  w.EndObject();

  bench::WriteArtifact("BENCH_analysis.json", w.TakeString() + "\n");
  if (!all_sound) {
    std::cerr << "!! planner picked an unsound engine\n";
    std::exit(1);
  }
  if (!all_identical) {
    std::cerr << "!! sound engines disagreed on certain answers\n";
    std::exit(1);
  }
  if (pick_rate < 0.9) {
    std::cout << "note: pick rate " << pick_rate * 100.0
              << "% below the 90% target on this host\n";
  }
}

void BM_ProgramAnalysis_Hospital(benchmark::State& state) {
  Case c = MakeHospital();
  for (auto _ : state) {
    datalog::ProgramAnalysis analysis(c.program);
    benchmark::DoNotOptimize(&analysis);
  }
}
BENCHMARK(BM_ProgramAnalysis_Hospital);

void BM_CostModel_Hospital(benchmark::State& state) {
  Case c = MakeHospital();
  datalog::ProgramAnalysis analysis(c.program);
  for (auto _ : state) {
    analysis::CostModel model(c.program, analysis,
                              analysis::CostModel::CollectEdbStats(c.program));
    benchmark::DoNotOptimize(&model);
  }
}
BENCHMARK(BM_CostModel_Hospital);

void BM_SelectEngine_Hospital(benchmark::State& state) {
  Case c = MakeHospital();
  datalog::ProgramAnalysis analysis(c.program);
  analysis::CostModel model(c.program, analysis,
                            analysis::CostModel::CollectEdbStats(c.program));
  qa::EngineSelectOptions options;
  options.egds_separable = c.egds_separable;
  options.cost_model = &model;
  for (auto _ : state) {
    auto selection = qa::SelectEngine(c.program, analysis, options);
    benchmark::DoNotOptimize(&selection);
  }
}
BENCHMARK(BM_SelectEngine_Hospital);

}  // namespace
}  // namespace mdqa

int main(int argc, char** argv) {
  return mdqa::bench::RunBench(
      argc, argv, "analysis",
      "whole-program analysis overhead, planner quality, and the "
      "materialize-vs-on-demand crossover",
      [] { mdqa::Reproduce(); });
}
