// mdqa_serve under load: closed-loop clients over real loopback sockets
// against a fresh AssessmentServer per configuration. Reports
//
//   - steady-state query throughput and server-side p50/p95/p99 latency
//     at 1..N client threads (N = min(8, hardware threads)), and
//   - shed behavior under deliberate overload: a one-worker, tiny-queue
//     server hammered by 8 clients plus a rate-capped hot tenant — the
//     interesting number is the shed *rate* (429s per request) and that
//     completed requests stay 200/degraded-labeled, never 500.
//
// Traffic comes from the same seeded generator as the soak harness
// (src/testgen/generators.h): steady-state phases replay only its query/report
// ops (updates would serialize on the single writer and measure the
// chase, not the server); the overload phase replays everything.
// Results land in BENCH_serve.json, stamped with git SHA + hardware
// threads like every BENCH artifact. MDQA_BENCH_SERVE_SECONDS scales the
// per-phase duration (default 2).

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "base/json.h"
#include "base/net.h"
#include "bench_common.h"
#include "testgen/generators.h"
#include "scenarios/hospital.h"
#include "serve/http.h"
#include "serve/server.h"

namespace mdqa {
namespace {

using bench::Check;
using serve::AssessmentServer;
using serve::HttpLimits;
using serve::ServerOptions;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

int PhaseSeconds() {
  const char* env = std::getenv("MDQA_BENCH_SERVE_SECONDS");
  if (env != nullptr && std::atoi(env) > 0) return std::atoi(env);
  return 2;
}

std::unique_ptr<AssessmentServer> StartServer(const ServerOptions& options) {
  auto context = Check(
      scenarios::BuildHospitalContext(scenarios::HospitalOptions{}),
      "hospital context");
  return Check(AssessmentServer::Start(std::move(context), options),
               "server start");
}

struct LoadResult {
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t other = 0;
};

/// One closed-loop client: fires workload ops back-to-back until the
/// deadline. `queries_only` filters to query/report ops (steady-state
/// phases); otherwise the full mixed stream runs (overload phase).
void RunLoad(uint16_t port, uint32_t seed, steady_clock::time_point until,
             bool queries_only, LoadResult* out) {
  testgen::ServeWorkload workload =
      testgen::GenerateServeWorkload(seed, 2000);
  size_t i = 0;
  uint32_t chunk = 0;
  while (steady_clock::now() < until) {
    if (i >= workload.ops.size()) {
      workload =
          testgen::GenerateServeWorkload(seed + (++chunk) * 7919u, 2000);
      i = 0;
    }
    const testgen::ServeOp& op = workload.ops[i++];
    const bool is_query = op.kind == testgen::ServeOp::Kind::kQuery ||
                          op.kind == testgen::ServeOp::Kind::kReport;
    if (queries_only && !is_query) continue;
    if (queries_only &&
        op.kind == testgen::ServeOp::Kind::kDelete) {
      continue;  // unreachable, but keeps the filter explicit
    }

    auto sock = net::ConnectLoopback(port, milliseconds(2000));
    if (!sock.ok()) {
      ++out->other;
      continue;
    }
    const char* method =
        op.kind == testgen::ServeOp::Kind::kReport ? "GET" : "POST";
    const char* target =
        op.kind == testgen::ServeOp::Kind::kReport
            ? "/report"
            : (is_query ? "/query" : "/update");
    auto resp = serve::HttpRoundTrip(*sock, method, target, op.body,
                                     {{"X-Mdqa-Tenant", op.tenant}},
                                     HttpLimits{});
    ++out->sent;
    if (!resp.ok()) {
      ++out->other;
    } else if (resp->status == 200 || resp->status == 202) {
      ++out->ok;
    } else if (resp->status == 429) {
      ++out->shed;
    } else if (resp->status == 404 &&
               op.kind == testgen::ServeOp::Kind::kDelete) {
      ++out->ok;  // delete of a row a shed insert never created: honest
    } else {
      ++out->other;
    }
  }
}

struct PhaseResult {
  int clients = 0;
  double seconds = 0;
  uint64_t completed = 0;
  double throughput_rps = 0;
  uint64_t p50_us = 0, p95_us = 0, p99_us = 0;
  double shed_rate = 0;
};

PhaseResult RunPhase(int clients, int seconds, bool overload) {
  ServerOptions options;
  if (overload) {
    options.worker_threads = 1;
    options.queue_capacity = 4;
    options.update_queue_capacity = 4;
    options.default_quota.requests_per_sec = 300.0;
    options.default_quota.burst = 30.0;
  } else {
    options.worker_threads = 4;
    // Steady state measures the server, not the limiter: roomy quotas.
    options.default_quota.requests_per_sec = 1e9;
    options.default_quota.burst = 1e9;
  }
  auto server = StartServer(options);
  if (overload) {
    serve::TenantQuota hot;
    hot.requests_per_sec = 50.0;
    hot.burst = 10.0;
    server->SetTenantQuota("hot", hot);
  }

  const auto start = steady_clock::now();
  const auto until = start + std::chrono::seconds(seconds);
  std::vector<LoadResult> results(static_cast<size_t>(clients));
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back(RunLoad, server->port(),
                         static_cast<uint32_t>(5000 + 101 * c), until,
                         /*queries_only=*/!overload, &results[c]);
  }
  for (std::thread& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(steady_clock::now() - start).count();

  PhaseResult out;
  out.clients = clients;
  out.seconds = elapsed;
  for (const LoadResult& r : results) {
    out.completed += r.ok;
    out.shed_rate += static_cast<double>(r.shed);
  }
  uint64_t sent = 0;
  for (const LoadResult& r : results) sent += r.sent;
  out.shed_rate = sent > 0 ? out.shed_rate / static_cast<double>(sent) : 0;
  out.throughput_rps = static_cast<double>(out.completed) / elapsed;
  const serve::ServerMetrics& m = server->metrics();
  out.p50_us = m.latency.PercentileMicros(0.50);
  out.p95_us = m.latency.PercentileMicros(0.95);
  out.p99_us = m.latency.PercentileMicros(0.99);

  server->Shutdown();
  Check(server->DrainStatus(), "post-phase drain");
  return out;
}

void Reproduce() {
  const int seconds = PhaseSeconds();
  const int max_clients = static_cast<int>(
      std::min(8u, std::max(2u, std::thread::hardware_concurrency())));

  std::vector<PhaseResult> phases;
  std::cout << "steady-state query throughput (hospital scenario, "
            << seconds << "s per point):\n"
            << "  clients    req/s    p50(us)    p95(us)    p99(us)\n";
  for (int clients = 1; clients <= max_clients; clients *= 2) {
    PhaseResult r = RunPhase(clients, seconds, /*overload=*/false);
    phases.push_back(r);
    std::printf("  %7d %8.0f %10llu %10llu %10llu\n", r.clients,
                r.throughput_rps,
                static_cast<unsigned long long>(r.p50_us),
                static_cast<unsigned long long>(r.p95_us),
                static_cast<unsigned long long>(r.p99_us));
  }

  PhaseResult overload = RunPhase(8, seconds, /*overload=*/true);
  std::printf(
      "overload (1 worker, queue 4, capped hot tenant, 8 clients):\n"
      "  %llu completed, shed rate %.1f%%, p99 %llu us\n",
      static_cast<unsigned long long>(overload.completed),
      overload.shed_rate * 100.0,
      static_cast<unsigned long long>(overload.p99_us));

  JsonWriter w;
  w.BeginObject();
  w.Key("experiment").String("serve_throughput");
  bench::StampProvenance(&w);
  w.Key("phase_seconds").Number(static_cast<int64_t>(seconds));
  w.Key("worker_threads").Number(int64_t{4});
  w.Key("steady_state").BeginArray();
  for (const PhaseResult& r : phases) {
    w.BeginObject();
    w.Key("clients").Number(static_cast<int64_t>(r.clients));
    w.Key("throughput_rps").Number(r.throughput_rps);
    w.Key("p50_us").Number(static_cast<int64_t>(r.p50_us));
    w.Key("p95_us").Number(static_cast<int64_t>(r.p95_us));
    w.Key("p99_us").Number(static_cast<int64_t>(r.p99_us));
    w.EndObject();
  }
  w.EndArray();
  w.Key("overload").BeginObject();
  w.Key("clients").Number(static_cast<int64_t>(overload.clients));
  w.Key("completed").Number(static_cast<int64_t>(overload.completed));
  w.Key("shed_rate").Number(overload.shed_rate);
  w.Key("p99_us").Number(static_cast<int64_t>(overload.p99_us));
  w.EndObject();
  w.EndObject();

  bench::WriteArtifact("BENCH_serve.json", w.TakeString() + "\n");
}

// google-benchmark timing: one query round trip (connect + parse +
// evaluate + render + close) against a warm 4-worker server.
void BM_QueryRoundTrip(benchmark::State& state) {
  ServerOptions options;
  options.default_quota.requests_per_sec = 1e9;
  options.default_quota.burst = 1e9;
  auto server = StartServer(options);
  const std::string body =
      R"({"query": "Q(P, V) :- Measurements(T, P, V)."})";
  for (auto _ : state) {
    auto sock = net::ConnectLoopback(server->port(), milliseconds(2000));
    if (!sock.ok()) {
      state.SkipWithError("connect failed");
      break;
    }
    auto resp = serve::HttpRoundTrip(*sock, "POST", "/query", body, {},
                                     HttpLimits{});
    if (!resp.ok() || resp->status != 200) {
      state.SkipWithError("query failed");
      break;
    }
  }
  server->Shutdown();
}
BENCHMARK(BM_QueryRoundTrip)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace mdqa

int main(int argc, char** argv) {
  return mdqa::bench::RunBench(
      argc, argv, "serve_throughput",
      "mdqa_serve under load: throughput/latency scaling and shed "
      "behavior under overload",
      mdqa::Reproduce);
}
