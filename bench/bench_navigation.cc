// C4 — navigation-direction ablation (Examples 1-2): upward navigation
// collapses children into parents (tuple-preserving), downward
// navigation fans out one parent tuple into one tuple per child. The
// series shows derived-fact counts and chase cost as the drill-down
// fan-out (wards per unit) grows, with the upward direction flat.

#include "bench_common.h"
#include "datalog/chase.h"
#include "scenarios/synthetic.h"

namespace mdqa {
namespace {

using bench::Check;

datalog::Program MakeProgram(int wards_per_unit, bool downward) {
  scenarios::SyntheticSpec spec;
  spec.patients = 30;
  spec.days = 5;
  spec.wards_per_unit = wards_per_unit;
  spec.include_downward_rules = downward;
  auto ontology = Check(scenarios::BuildSyntheticOntology(spec), "onto");
  return Check(ontology->Compile(), "compile");
}

struct NavCounts {
  size_t edb = 0;
  size_t up = 0;    // SPatientUnit derived
  size_t down = 0;  // SShifts derived
};

NavCounts CountDerived(int wards_per_unit) {
  datalog::Program program = MakeProgram(wards_per_unit, true);
  datalog::Instance instance = datalog::Instance::FromProgram(program);
  NavCounts counts;
  counts.edb = instance.TotalFacts();
  Check(datalog::Chase::Run(program, &instance, datalog::ChaseOptions())
            .status(),
        "chase");
  counts.up =
      instance.CountFacts(program.vocab()->FindPredicate("SPatientUnit"));
  counts.down =
      instance.CountFacts(program.vocab()->FindPredicate("SShifts"));
  return counts;
}

void Reproduce() {
  std::cout << "\nfan-out ablation (patients and days fixed; wards/unit "
               "grows):\n"
            << "  wards/unit   EDB facts   upward-derived   "
               "downward-derived\n";
  for (int fanout : {1, 2, 4, 8, 16}) {
    NavCounts c = CountDerived(fanout);
    std::printf("  %10d   %9zu   %14zu   %16zu\n", fanout, c.edb, c.up,
                c.down);
  }
  std::cout << "\n(paper shape: upward stays ~|SPatientWard| regardless of "
               "fan-out; downward grows linearly with wards/unit — one "
               "Shifts tuple per ward of the nurse's unit)\n";
}

void BM_UpwardOnlyChase(benchmark::State& state) {
  datalog::Program program =
      MakeProgram(static_cast<int>(state.range(0)), false);
  for (auto _ : state) {
    datalog::Instance instance = datalog::Instance::FromProgram(program);
    auto stats =
        datalog::Chase::Run(program, &instance, datalog::ChaseOptions());
    if (!stats.ok()) state.SkipWithError(stats.status().ToString().c_str());
    benchmark::DoNotOptimize(instance);
  }
}
BENCHMARK(BM_UpwardOnlyChase)->Arg(2)->Arg(8)->Arg(16);

void BM_UpwardAndDownwardChase(benchmark::State& state) {
  datalog::Program program =
      MakeProgram(static_cast<int>(state.range(0)), true);
  for (auto _ : state) {
    datalog::Instance instance = datalog::Instance::FromProgram(program);
    auto stats =
        datalog::Chase::Run(program, &instance, datalog::ChaseOptions());
    if (!stats.ok()) state.SkipWithError(stats.status().ToString().c_str());
    benchmark::DoNotOptimize(instance);
  }
}
BENCHMARK(BM_UpwardAndDownwardChase)->Arg(2)->Arg(8)->Arg(16);

}  // namespace
}  // namespace mdqa

int main(int argc, char** argv) {
  return mdqa::bench::RunBench(
      argc, argv, "C4",
      "upward vs. downward navigation cost and drill-down fan-out",
      mdqa::Reproduce);
}
