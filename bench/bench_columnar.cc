// Columnar-vs-row storage benchmark: every scenario family, scaled up
// past the unit-test sizes, is materialized and assessed under both
// physical layouts (datalog::StorageMode). Reported per family: chase
// latency (trigger matching runs through the join executor, so this is
// where the vectorized block join shows up), end-to-end assess latency,
// and the row/columnar speedups — landed in BENCH_columnar.json. The
// reproduction aborts (exit 1) if the two layouts' reports are not
// byte-identical, so a speedup can never come from a wrong answer.

#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "base/json.h"
#include "bench_common.h"
#include "datalog/chase.h"
#include "datalog/cq_eval.h"
#include "datalog/instance.h"
#include "quality/assessor.h"
#include "testgen/scenario.h"

namespace mdqa {
namespace {

using bench::Check;
using datalog::StorageMode;
using testgen::GeneratedScenario;
using testgen::ScenarioFamily;
using testgen::ScenarioGenerator;
using testgen::ScenarioSpec;
using testgen::SpecFor;

constexpr uint32_t kSeed = 1;

// The unit-test specs are sized for seconds-long test runs; storage
// layout only matters once tables outgrow them. Scale every family up.
ScenarioSpec ScaledSpec(ScenarioFamily family) {
  ScenarioSpec spec = SpecFor(family, kSeed);
  spec.entities = 600;
  spec.rows = 6000;
  spec.days = 10;
  spec.corruptions = 40;
  spec.misplacements = 20;
  spec.missing_facts = 20;
  return spec;
}

double MedianMs(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

template <typename Fn>
double TimeMs(Fn&& fn) {
  std::vector<double> samples;
  for (int i = 0; i < 3; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::milli>(stop - start).count());
  }
  return MedianMs(std::move(samples));
}

struct FamilyRecord {
  std::string family;
  uint64_t edb_rows = 0;
  uint64_t chase_facts = 0;
  uint64_t row_bytes = 0;
  uint64_t columnar_bytes = 0;
  double chase_row_ms = 0;
  double chase_columnar_ms = 0;
  double cq_row_ms = 0;
  double cq_columnar_ms = 0;
  uint64_t cq_solutions = 0;
  double assess_row_ms = 0;
  double assess_columnar_ms = 0;
  bool reports_identical = false;
  bool cq_solutions_identical = false;
};

FamilyRecord MeasureFamily(ScenarioFamily family) {
  const ScenarioSpec spec = ScaledSpec(family);
  GeneratedScenario scenario =
      Check(ScenarioGenerator::Generate(spec), "generate");

  FamilyRecord record;
  record.family = testgen::ScenarioFamilyToString(family);
  for (const std::string& name :
       scenario.context.database().RelationNames()) {
    record.edb_rows +=
        Check(scenario.context.database().GetRelation(name), "relation")
            ->size();
  }

  // Chase latency: program compilation is hoisted out; the timed region
  // is EDB load + full materialization, per storage mode.
  auto program = Check(scenario.context.BuildProgram(), "program");
  for (StorageMode storage : {StorageMode::kRow, StorageMode::kColumnar}) {
    datalog::ChaseOptions options;
    options.storage = storage;
    options.check_constraints = false;
    double ms = TimeMs([&] {
      datalog::Instance instance =
          datalog::Instance::FromProgram(program, storage);
      auto stats = datalog::Chase::Run(program, &instance, options);
      Check(stats.status(), "chase");
      record.chase_facts = instance.TotalFacts();
      if (storage == StorageMode::kRow) {
        record.row_bytes = instance.MemoryEstimateBytes();
      } else {
        record.columnar_bytes = instance.MemoryEstimateBytes();
      }
    });
    if (storage == StorageMode::kRow) {
      record.chase_row_ms = ms;
    } else {
      record.chase_columnar_ms = ms;
    }
  }

  // CQ-eval latency: the join-heavy rule bodies (>=2 atoms) run as
  // whole-relation conjunctive queries against the *materialized* frozen
  // instance, repeatedly — the point-query workload of a long-lived
  // assessment session. The timed region is pure homomorphism
  // enumeration (a counting on_match), so this isolates the executor:
  // the row store's backtracking matcher vs the columnar block join.
  uint64_t row_solutions = 0, col_solutions = 0;
  for (StorageMode storage : {StorageMode::kRow, StorageMode::kColumnar}) {
    datalog::ChaseOptions options;
    options.storage = storage;
    options.check_constraints = false;
    datalog::Instance instance =
        datalog::Instance::FromProgram(program, storage);
    Check(datalog::Chase::Run(program, &instance, options).status(), "chase");
    instance.Freeze();  // seals the columnar overlay into a shared segment
    datalog::CqEvaluator eval(instance);
    uint64_t solutions = 0;
    auto count_match = [&solutions](const datalog::Subst&) {
      ++solutions;
      return true;
    };
    // The per-pass region is a few ms; five passes per sample keep the
    // median stable against scheduler noise.
    constexpr int kCqPasses = 5;
    double ms = TimeMs([&] {
      for (int pass = 0; pass < kCqPasses; ++pass) {
        solutions = 0;
        for (const datalog::Rule& rule : program.rules()) {
          if (rule.body.size() < 2) continue;
          Check(eval.Enumerate(rule.body, rule.negated, rule.comparisons,
                               datalog::Subst{}, {}, count_match),
                "cq-eval");
        }
      }
    }) / kCqPasses;
    if (storage == StorageMode::kRow) {
      record.cq_row_ms = ms;
      row_solutions = solutions;
    } else {
      record.cq_columnar_ms = ms;
      col_solutions = solutions;
    }
  }
  record.cq_solutions = col_solutions;
  record.cq_solutions_identical = row_solutions == col_solutions;

  // End-to-end assessment latency per storage mode, plus the byte
  // identity gate over the rendered reports.
  quality::Assessor assessor(&scenario.context);
  std::string row_text, row_json, col_text, col_json;
  for (StorageMode storage : {StorageMode::kRow, StorageMode::kColumnar}) {
    quality::AssessOptions options;
    options.storage = storage;
    quality::AssessmentReport report;
    double ms = TimeMs([&] {
      report = Check(assessor.Assess(options), "assess");
    });
    if (storage == StorageMode::kRow) {
      record.assess_row_ms = ms;
      row_text = report.ToString();
      row_json = report.ToJson();
    } else {
      record.assess_columnar_ms = ms;
      col_text = report.ToString();
      col_json = report.ToJson();
    }
  }
  record.reports_identical = row_text == col_text && row_json == col_json;
  return record;
}

void Reproduce() {
  std::vector<FamilyRecord> records;
  bool all_identical = true;
  int fast_families = 0;
  for (ScenarioFamily family : testgen::kAllScenarioFamilies) {
    FamilyRecord r = MeasureFamily(family);
    const double chase_speedup =
        r.chase_columnar_ms > 0 ? r.chase_row_ms / r.chase_columnar_ms : 0;
    const double cq_speedup =
        r.cq_columnar_ms > 0 ? r.cq_row_ms / r.cq_columnar_ms : 0;
    const double assess_speedup =
        r.assess_columnar_ms > 0 ? r.assess_row_ms / r.assess_columnar_ms : 0;
    char buf[320];
    snprintf(buf, sizeof(buf),
             "%s: edb=%llu chase_facts=%llu chase %.1fms->%.1fms (%.2fx) "
             "cq %.1fms->%.1fms (%.2fx) assess %.1fms->%.1fms (%.2fx)%s%s",
             r.family.c_str(), static_cast<unsigned long long>(r.edb_rows),
             static_cast<unsigned long long>(r.chase_facts), r.chase_row_ms,
             r.chase_columnar_ms, chase_speedup, r.cq_row_ms,
             r.cq_columnar_ms, cq_speedup, r.assess_row_ms,
             r.assess_columnar_ms, assess_speedup,
             r.reports_identical ? "" : " REPORTS DIVERGE",
             r.cq_solutions_identical ? "" : " CQ SOLUTIONS DIVERGE");
    std::cout << buf << "\n";
    all_identical =
        all_identical && r.reports_identical && r.cq_solutions_identical;
    if (chase_speedup >= 1.5 || cq_speedup >= 1.5) ++fast_families;
    records.push_back(std::move(r));
  }
  std::cout << "families with >=1.5x chase or cq-eval speedup: "
            << fast_families << "/5\n";

  JsonWriter w;
  w.BeginObject();
  w.Key("experiment").String("columnar_storage");
  bench::StampProvenance(&w);
  w.Key("seed").Number(static_cast<int64_t>(kSeed));
  w.Key("speedup_threshold").Number(1.5);
  w.Key("families_at_threshold").Number(static_cast<int64_t>(fast_families));
  w.Key("families").BeginArray();
  for (const FamilyRecord& r : records) {
    w.BeginObject();
    w.Key("family").String(r.family);
    w.Key("edb_rows").Number(static_cast<int64_t>(r.edb_rows));
    w.Key("chase_facts").Number(static_cast<int64_t>(r.chase_facts));
    w.Key("row_bytes").Number(static_cast<int64_t>(r.row_bytes));
    w.Key("columnar_bytes").Number(static_cast<int64_t>(r.columnar_bytes));
    w.Key("chase_row_ms").Number(r.chase_row_ms);
    w.Key("chase_columnar_ms").Number(r.chase_columnar_ms);
    w.Key("chase_speedup")
        .Number(r.chase_columnar_ms > 0 ? r.chase_row_ms / r.chase_columnar_ms
                                        : 0);
    w.Key("cq_row_ms").Number(r.cq_row_ms);
    w.Key("cq_columnar_ms").Number(r.cq_columnar_ms);
    w.Key("cq_speedup")
        .Number(r.cq_columnar_ms > 0 ? r.cq_row_ms / r.cq_columnar_ms : 0);
    w.Key("cq_solutions").Number(static_cast<int64_t>(r.cq_solutions));
    w.Key("cq_solutions_identical").Bool(r.cq_solutions_identical);
    w.Key("assess_row_ms").Number(r.assess_row_ms);
    w.Key("assess_columnar_ms").Number(r.assess_columnar_ms);
    w.Key("assess_speedup")
        .Number(r.assess_columnar_ms > 0
                    ? r.assess_row_ms / r.assess_columnar_ms
                    : 0);
    w.Key("reports_identical").Bool(r.reports_identical);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  bench::WriteArtifact("BENCH_columnar.json", w.TakeString() + "\n");
  if (!all_identical) {
    std::cerr << "FATAL: row and columnar reports diverged\n";
    std::exit(1);
  }
}

void BM_ChaseRow(benchmark::State& state) {
  const ScenarioSpec spec = ScaledSpec(
      testgen::kAllScenarioFamilies[static_cast<size_t>(state.range(0))]);
  auto scenario = ScenarioGenerator::Generate(spec);
  if (!scenario.ok()) {
    state.SkipWithError("generate failed");
    return;
  }
  auto program = scenario->context.BuildProgram();
  if (!program.ok()) {
    state.SkipWithError("program failed");
    return;
  }
  datalog::ChaseOptions options;
  options.check_constraints = false;
  options.storage = StorageMode::kRow;
  for (auto _ : state) {
    datalog::Instance instance =
        datalog::Instance::FromProgram(*program, options.storage);
    auto stats = datalog::Chase::Run(*program, &instance, options);
    if (!stats.ok()) state.SkipWithError("chase failed");
    benchmark::DoNotOptimize(instance);
  }
}
BENCHMARK(BM_ChaseRow)->DenseRange(0, 4);

void BM_ChaseColumnar(benchmark::State& state) {
  const ScenarioSpec spec = ScaledSpec(
      testgen::kAllScenarioFamilies[static_cast<size_t>(state.range(0))]);
  auto scenario = ScenarioGenerator::Generate(spec);
  if (!scenario.ok()) {
    state.SkipWithError("generate failed");
    return;
  }
  auto program = scenario->context.BuildProgram();
  if (!program.ok()) {
    state.SkipWithError("program failed");
    return;
  }
  datalog::ChaseOptions options;
  options.check_constraints = false;
  options.storage = StorageMode::kColumnar;
  for (auto _ : state) {
    datalog::Instance instance =
        datalog::Instance::FromProgram(*program, options.storage);
    auto stats = datalog::Chase::Run(*program, &instance, options);
    if (!stats.ok()) state.SkipWithError("chase failed");
    benchmark::DoNotOptimize(instance);
  }
}
BENCHMARK(BM_ChaseColumnar)->DenseRange(0, 4);

}  // namespace
}  // namespace mdqa

int main(int argc, char** argv) {
  return mdqa::bench::RunBench(
      argc, argv, "columnar-storage",
      "row vs columnar fact storage: chase and assessment latency per "
      "scenario family with byte-identity gating",
      mdqa::Reproduce);
}
