// C2 — Section IV claim: (boolean) conjunctive query answering over
// weakly-sticky MD ontologies is PTIME in data complexity. The paper
// reports no measurements (extended abstract); the reproduction grows
// synthetic hospital instances and shows both engines scaling
// polynomially (near-linearly here) in the number of extensional facts.

#include <chrono>

#include "bench_common.h"
#include "datalog/parser.h"
#include "qa/chase_qa.h"
#include "qa/deterministic_ws.h"
#include "scenarios/synthetic.h"

namespace mdqa {
namespace {

using bench::Check;

datalog::Program MakeProgram(int patients, int days) {
  scenarios::SyntheticSpec spec;
  spec.patients = patients;
  spec.days = days;
  auto ontology = Check(scenarios::BuildSyntheticOntology(spec), "onto");
  return Check(ontology->Compile(), "compile");
}

void Reproduce() {
  std::cout << "\nQA wall-time vs. extensional size (the paper's PTIME "
               "claim — expect polynomial growth):\n"
            << "  facts    chase-QA(ms)   det-WS(ms)   |answers|\n";
  for (int patients : {20, 40, 80, 160, 320}) {
    datalog::Program program = MakeProgram(patients, 10);
    size_t facts = program.facts().size();

    auto t0 = std::chrono::steady_clock::now();
    auto chase = Check(qa::ChaseQa::Create(program), "chase");
    auto q = Check(
        datalog::Parser::ParseQuery("Q(U, P) :- SPatientUnit(U, D, P).",
                                    program.vocab().get()),
        "parse");
    auto chase_answers = Check(chase.Answers(q), "answers");
    auto t1 = std::chrono::steady_clock::now();

    qa::DeterministicWsQa ws(program);
    auto ws_answers = Check(ws.Answers(q), "ws answers");
    auto t2 = std::chrono::steady_clock::now();

    auto ms = [](auto a, auto b) {
      return std::chrono::duration<double, std::milli>(b - a).count();
    };
    std::printf("  %6zu   %11.2f   %10.2f   %8zu\n", facts, ms(t0, t1),
                ms(t1, t2), chase_answers.size());
    if (chase_answers.size() != ws_answers.size()) {
      std::cout << "  !! engine disagreement\n";
    }
  }
}

void BM_ChaseQa_Scaling(benchmark::State& state) {
  datalog::Program program =
      MakeProgram(static_cast<int>(state.range(0)), 10);
  auto q = Check(
      datalog::Parser::ParseQuery("Q(U, P) :- SPatientUnit(U, D, P).",
                                  program.vocab().get()),
      "parse");
  for (auto _ : state) {
    auto chase = qa::ChaseQa::Create(program);
    if (!chase.ok()) state.SkipWithError(chase.status().ToString().c_str());
    auto a = chase->Answers(q);
    benchmark::DoNotOptimize(a);
  }
  state.SetComplexityN(static_cast<int64_t>(program.facts().size()));
}
BENCHMARK(BM_ChaseQa_Scaling)->Arg(20)->Arg(40)->Arg(80)->Arg(160)
    ->Complexity();

void BM_DeterministicWs_Scaling(benchmark::State& state) {
  datalog::Program program =
      MakeProgram(static_cast<int>(state.range(0)), 10);
  for (auto _ : state) {
    qa::DeterministicWsQa ws(program);
    auto q = Check(
        datalog::Parser::ParseQuery("Q(U, P) :- SPatientUnit(U, D, P).",
                                    program.vocab().get()),
        "parse");
    auto a = ws.Answers(q);
    if (!a.ok()) state.SkipWithError(a.status().ToString().c_str());
    benchmark::DoNotOptimize(a);
  }
  state.SetComplexityN(static_cast<int64_t>(program.facts().size()));
}
BENCHMARK(BM_DeterministicWs_Scaling)->Arg(20)->Arg(40)->Arg(80)->Arg(160)
    ->Complexity();

void BM_BooleanQuery_Selective(benchmark::State& state) {
  // A highly selective boolean query: goal-directedness should make the
  // deterministic WS engine cheap relative to full materialization.
  datalog::Program program =
      MakeProgram(static_cast<int>(state.range(0)), 10);
  for (auto _ : state) {
    qa::DeterministicWsQa ws(program);
    auto q = Check(datalog::Parser::ParseQuery(
                       "Q() :- SPatientUnit(\"su0\", \"sd0\", \"sp0\").",
                       program.vocab().get()),
                   "parse");
    auto a = ws.AnswerBoolean(q);
    if (!a.ok()) state.SkipWithError(a.status().ToString().c_str());
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_BooleanQuery_Selective)->Arg(40)->Arg(160);

}  // namespace
}  // namespace mdqa

int main(int argc, char** argv) {
  return mdqa::bench::RunBench(
      argc, argv, "C2",
      "Section IV: PTIME data-complexity scaling of BCQ answering",
      mdqa::Reproduce);
}
