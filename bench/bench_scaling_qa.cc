// C2 — Section IV claim: (boolean) conjunctive query answering over
// weakly-sticky MD ontologies is PTIME in data complexity. The paper
// reports no measurements (extended abstract); the reproduction grows
// synthetic hospital instances and shows both engines scaling
// polynomially (near-linearly here) in the number of extensional facts.
//
// `--threads=N` additionally sweeps the parallel assessment engine from
// serial up to N workers on the synthetic scaling scenario, verifies the
// pooled reports are byte-identical to the serial one, and writes
// BENCH_parallel.json. Speedup is bounded by the physical core count
// (recorded in the JSON) — on a single-core host every configuration
// measures ~1x by construction.

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "base/json.h"
#include "base/thread_pool.h"
#include "bench_common.h"
#include "datalog/parser.h"
#include "qa/chase_qa.h"
#include "qa/deterministic_ws.h"
#include "quality/assessor.h"
#include "scenarios/synthetic.h"

namespace mdqa {
namespace {

using bench::Check;

datalog::Program MakeProgram(int patients, int days) {
  scenarios::SyntheticSpec spec;
  spec.patients = patients;
  spec.days = days;
  auto ontology = Check(scenarios::BuildSyntheticOntology(spec), "onto");
  return Check(ontology->Compile(), "compile");
}

void Reproduce() {
  std::cout << "\nQA wall-time vs. extensional size (the paper's PTIME "
               "claim — expect polynomial growth):\n"
            << "  facts    chase-QA(ms)   det-WS(ms)   |answers|\n";
  for (int patients : {20, 40, 80, 160, 320}) {
    datalog::Program program = MakeProgram(patients, 10);
    size_t facts = program.facts().size();

    auto t0 = std::chrono::steady_clock::now();
    auto chase = Check(qa::ChaseQa::Create(program), "chase");
    auto q = Check(
        datalog::Parser::ParseQuery("Q(U, P) :- SPatientUnit(U, D, P).",
                                    program.vocab().get()),
        "parse");
    auto chase_answers = Check(chase.Answers(q), "answers");
    auto t1 = std::chrono::steady_clock::now();

    qa::DeterministicWsQa ws(program);
    auto ws_answers = Check(ws.Answers(q), "ws answers");
    auto t2 = std::chrono::steady_clock::now();

    auto ms = [](auto a, auto b) {
      return std::chrono::duration<double, std::milli>(b - a).count();
    };
    std::printf("  %6zu   %11.2f   %10.2f   %8zu\n", facts, ms(t0, t1),
                ms(t1, t2), chase_answers.size());
    if (chase_answers.size() != ws_answers.size()) {
      std::cout << "  !! engine disagreement\n";
    }
  }
}

// Parallel sweep: one full quality assessment (materialization chase +
// per-relation quality versions) serially, then on a work-stealing pool
// at 2/4/... up to `max_threads` workers. Every pooled report must match
// the serial one byte for byte (the determinism contract proven by
// tests/parallel_diff_test); timings land in BENCH_parallel.json.
void ReproduceParallel(int max_threads) {
  scenarios::SyntheticSpec spec;
  spec.patients = 160;
  spec.days = 10;
  auto context = Check(scenarios::BuildSyntheticContext(spec), "context");
  quality::Assessor assessor(&context);

  auto assess_ms = [&](ThreadPool* pool, std::string* render) {
    // Median of 3: the assessment is seconds-scale, so a small sample
    // with a median is enough to shed scheduler noise.
    std::vector<double> samples;
    for (int rep = 0; rep < 3; ++rep) {
      quality::AssessOptions opts;
      opts.pool = pool;
      auto t0 = std::chrono::steady_clock::now();
      auto report = Check(assessor.Assess(opts), "assess");
      auto t1 = std::chrono::steady_clock::now();
      samples.push_back(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
      if (render != nullptr && rep == 0) *render = report.ToString();
    }
    std::sort(samples.begin(), samples.end());
    return samples[1];
  };

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::cout << "\nparallel assessment sweep (synthetic, patients="
            << spec.patients << ", days=" << spec.days
            << "; hardware threads: " << hw << "):\n"
            << "  threads   assess(ms)   speedup   identical\n";

  std::string serial_render;
  double serial_ms = assess_ms(nullptr, &serial_render);
  std::printf("  %7s   %10.2f   %7s   %9s\n", "serial", serial_ms, "1.00x",
              "-");

  JsonWriter w;
  w.BeginObject();
  w.Key("experiment").String("parallel");
  bench::StampProvenance(&w);
  w.Key("scenario").BeginObject();
  w.Key("patients").Number(static_cast<int64_t>(spec.patients));
  w.Key("days").Number(static_cast<int64_t>(spec.days));
  w.EndObject();
  w.Key("serial_ms").Number(serial_ms);
  w.Key("runs").BeginArray();

  bool all_identical = true;
  for (int threads = 2; threads <= max_threads; threads *= 2) {
    ThreadPool pool(static_cast<size_t>(threads));
    std::string render;
    double ms = assess_ms(&pool, &render);
    bool identical = render == serial_render;
    all_identical = all_identical && identical;
    double speedup = ms > 0 ? serial_ms / ms : 0.0;
    std::printf("  %7d   %10.2f   %6.2fx   %9s\n", threads, ms, speedup,
                identical ? "yes" : "NO");
    w.BeginObject();
    w.Key("threads").Number(static_cast<int64_t>(threads));
    w.Key("ms").Number(ms);
    w.Key("speedup").Number(speedup);
    w.Key("identical").Bool(identical);
    w.EndObject();
  }
  w.EndArray();
  w.Key("all_identical").Bool(all_identical);
  w.EndObject();

  bench::WriteArtifact("BENCH_parallel.json", w.TakeString() + "\n");
  if (!all_identical) {
    std::cerr << "!! pooled report diverged from serial\n";
    std::exit(1);
  }
}

void BM_ChaseQa_Scaling(benchmark::State& state) {
  datalog::Program program =
      MakeProgram(static_cast<int>(state.range(0)), 10);
  auto q = Check(
      datalog::Parser::ParseQuery("Q(U, P) :- SPatientUnit(U, D, P).",
                                  program.vocab().get()),
      "parse");
  for (auto _ : state) {
    auto chase = qa::ChaseQa::Create(program);
    if (!chase.ok()) state.SkipWithError(chase.status().ToString().c_str());
    auto a = chase->Answers(q);
    benchmark::DoNotOptimize(a);
  }
  state.SetComplexityN(static_cast<int64_t>(program.facts().size()));
}
BENCHMARK(BM_ChaseQa_Scaling)->Arg(20)->Arg(40)->Arg(80)->Arg(160)
    ->Complexity();

void BM_DeterministicWs_Scaling(benchmark::State& state) {
  datalog::Program program =
      MakeProgram(static_cast<int>(state.range(0)), 10);
  for (auto _ : state) {
    qa::DeterministicWsQa ws(program);
    auto q = Check(
        datalog::Parser::ParseQuery("Q(U, P) :- SPatientUnit(U, D, P).",
                                    program.vocab().get()),
        "parse");
    auto a = ws.Answers(q);
    if (!a.ok()) state.SkipWithError(a.status().ToString().c_str());
    benchmark::DoNotOptimize(a);
  }
  state.SetComplexityN(static_cast<int64_t>(program.facts().size()));
}
BENCHMARK(BM_DeterministicWs_Scaling)->Arg(20)->Arg(40)->Arg(80)->Arg(160)
    ->Complexity();

void BM_BooleanQuery_Selective(benchmark::State& state) {
  // A highly selective boolean query: goal-directedness should make the
  // deterministic WS engine cheap relative to full materialization.
  datalog::Program program =
      MakeProgram(static_cast<int>(state.range(0)), 10);
  for (auto _ : state) {
    qa::DeterministicWsQa ws(program);
    auto q = Check(datalog::Parser::ParseQuery(
                       "Q() :- SPatientUnit(\"su0\", \"sd0\", \"sp0\").",
                       program.vocab().get()),
                   "parse");
    auto a = ws.AnswerBoolean(q);
    if (!a.ok()) state.SkipWithError(a.status().ToString().c_str());
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_BooleanQuery_Selective)->Arg(40)->Arg(160);

}  // namespace
}  // namespace mdqa

int main(int argc, char** argv) {
  // Strip `--threads=N` / `--threads N` before google-benchmark sees the
  // arguments; it caps the parallel sweep (default 8 → serial, 2, 4, 8).
  int max_threads = 8;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      max_threads = std::atoi(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      max_threads = std::atoi(argv[++i]);
    } else {
      args.push_back(argv[i]);
    }
  }
  if (max_threads < 1) {
    std::cerr << "--threads expects a positive integer\n";
    return 2;
  }
  int args_count = static_cast<int>(args.size());
  return mdqa::bench::RunBench(
      args_count, args.data(), "C2",
      "Section IV: PTIME data-complexity scaling of BCQ answering",
      [max_threads] {
        mdqa::Reproduce();
        mdqa::ReproduceParallel(max_threads);
      });
}
