// E2 — Tables III/IV, Examples 2 and 5: downward navigation completes
// Shifts from WorkingSchedules; the query "dates Mark works in W1/W2"
// must answer Sep/9 (with a fresh null for the shift attribute).

#include "bench_common.h"
#include "datalog/chase.h"
#include "datalog/parser.h"
#include "qa/engines.h"
#include "scenarios/hospital.h"

namespace mdqa {
namespace {

using bench::Check;

datalog::Program MakeProgram() {
  auto ontology = Check(
      scenarios::BuildHospitalOntology(scenarios::HospitalOptions{}),
      "ontology");
  return Check(ontology->Compile(), "compile");
}

void Reproduce() {
  auto ontology = Check(
      scenarios::BuildHospitalOntology(scenarios::HospitalOptions{}),
      "ontology");
  auto program = Check(ontology->Compile(), "compile");
  auto vocab = program.vocab();
  std::cout << "\n--- Table III (WorkingSchedules) ---\n"
            << ontology->FindCategoricalRelation("WorkingSchedules")
                   ->data()
                   .ToTable()
            << "\n--- Table IV (Shifts, extensional) ---\n"
            << ontology->FindCategoricalRelation("Shifts")->data().ToTable();

  datalog::Instance instance = datalog::Instance::FromProgram(program);
  Check(datalog::Chase::Run(program, &instance, datalog::ChaseOptions())
            .status(),
        "chase");
  std::cout << "\n--- Shifts after rule (8) drill-down ---\n"
            << Check(instance.ExportRelation(
                         vocab->FindPredicate("Shifts"), "Shifts^+",
                         {"Ward", "Day", "Nurse", "Shift"}, true),
                     "export")
                   .ToTable();
  for (const char* ward : {"W1", "W2"}) {
    auto q = Check(datalog::Parser::ParseQuery(
                       std::string("Q(D) :- Shifts(\"") + ward +
                           "\", D, \"Mark\", S).",
                       vocab.get()),
                   "parse");
    auto a = Check(qa::Answer(qa::Engine::kChase, program, q), "answer");
    std::cout << "dates Mark works in " << ward << " = "
              << a.ToString(*vocab) << "   (paper: Sep/9)\n";
  }
}

void BM_ShiftsQuery_Chase(benchmark::State& state) {
  datalog::Program program = MakeProgram();
  auto q = Check(datalog::Parser::ParseQuery(
                     "Q(D) :- Shifts(\"W2\", D, \"Mark\", S).",
                     program.vocab().get()),
                 "parse");
  for (auto _ : state) {
    auto a = qa::Answer(qa::Engine::kChase, program, q);
    if (!a.ok()) state.SkipWithError(a.status().ToString().c_str());
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_ShiftsQuery_Chase);

void BM_ShiftsQuery_DeterministicWs(benchmark::State& state) {
  datalog::Program program = MakeProgram();
  auto q = Check(datalog::Parser::ParseQuery(
                     "Q(D) :- Shifts(\"W2\", D, \"Mark\", S).",
                     program.vocab().get()),
                 "parse");
  for (auto _ : state) {
    auto a = qa::Answer(qa::Engine::kDeterministicWs, program, q);
    if (!a.ok()) state.SkipWithError(a.status().ToString().c_str());
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_ShiftsQuery_DeterministicWs);

void BM_ChaseMaterialization(benchmark::State& state) {
  datalog::Program program = MakeProgram();
  for (auto _ : state) {
    datalog::Instance instance = datalog::Instance::FromProgram(program);
    auto stats =
        datalog::Chase::Run(program, &instance, datalog::ChaseOptions());
    if (!stats.ok()) state.SkipWithError(stats.status().ToString().c_str());
    benchmark::DoNotOptimize(instance);
  }
}
BENCHMARK(BM_ChaseMaterialization);

}  // namespace
}  // namespace mdqa

int main(int argc, char** argv) {
  return mdqa::bench::RunBench(
      argc, argv, "E2",
      "Tables III/IV: drill-down shift completion and Example 5's query",
      mdqa::Reproduce);
}
