// Extension experiments (beyond the paper's figures): OLAP roll-up
// aggregation over categorical relations with summarizability
// enforcement (the HM machinery the paper builds on), and CQA-style
// conflict detection cost. Reported so downstream users can size the
// model-maintenance layer.

#include "bench_common.h"
#include "datalog/parser.h"
#include "md/aggregate.h"
#include "quality/cqa.h"
#include "scenarios/hospital.h"
#include "scenarios/synthetic.h"

namespace mdqa {
namespace {

using bench::Check;

// A synthetic receipts relation over the SynHospital dimension.
struct RollupFixture {
  std::shared_ptr<core::MdOntology> ontology;
  md::CategoricalRelation receipts;

  static RollupFixture Make(int wards_per_unit, int rows_per_ward) {
    scenarios::SyntheticSpec spec;
    spec.wards_per_unit = wards_per_unit;
    auto ontology = Check(scenarios::BuildSyntheticOntology(spec), "onto");
    auto receipts = Check(
        md::CategoricalRelation::Create(
            "Receipts",
            {md::CategoricalAttribute::Categorical("Ward", "SynHospital",
                                                   "SWard"),
             md::CategoricalAttribute::Plain("Seq"),
             md::CategoricalAttribute::Plain("Amount")}),
        "schema");
    const md::DimensionInstance& inst =
        ontology->FindDimension("SynHospital")->instance();
    int seq = 0;
    for (const std::string& ward : inst.Members("SWard")) {
      for (int r = 0; r < rows_per_ward; ++r) {
        // `r` is a shared group key (think: day index), so roll-ups
        // genuinely merge rows from sibling wards.
        Check(receipts.Insert({Value::Str(ward), Value::Int(r),
                               Value::Int(10 + (seq * 7) % 90)}),
              "row");
        ++seq;
      }
    }
    return RollupFixture{std::move(ontology), std::move(receipts)};
  }
};

void Reproduce() {
  RollupFixture fx = RollupFixture::Make(3, 4);
  const md::Dimension* dim = fx.ontology->FindDimension("SynHospital");
  auto by_unit = Check(
      md::RollUpAggregate(fx.receipts, *dim, "Ward", "SUnit", "Amount",
                          md::AggFn::kSum),
      "rollup");
  std::cout << "\nReceipts rolled up Ward -> Unit (sum), first rows:\n";
  std::string table = by_unit.ToTable();
  std::cout << table.substr(0, 420) << "  ...\n";
  auto by_inst = Check(
      md::RollUpAggregate(fx.receipts, *dim, "Ward", "SInstitution",
                          "Amount", md::AggFn::kSum),
      "rollup");
  std::cout << "groups at Unit level: " << by_unit.size()
            << ", at Institution level: " << by_inst.size() << "\n";

  // Summarizability guard in action.
  md::DimensionInstance dirty = dim->instance();
  Check(dirty.AddChildParent("sw0", "su1"), "extra parent");
  auto dirty_dim = Check(md::Dimension::Create(std::move(dirty)), "dim");
  auto refused = md::RollUpAggregate(fx.receipts, dirty_dim, "Ward",
                                     "SUnit", "Amount", md::AggFn::kSum);
  std::cout << "non-summarizable roll-up refused: " << refused.status()
            << "\n";

  // Conflict detection on the dirty hospital scenario.
  scenarios::HospitalOptions options;
  options.include_violating_stay = true;
  auto hospital = Check(scenarios::BuildHospitalOntology(options), "onto");
  auto program = Check(hospital->Compile(), "compile");
  quality::CqaEngine cqa(program);
  cqa.ProtectDimensionStructure(*hospital);
  auto conflicts = Check(cqa.FindConflicts(), "conflicts");
  std::cout << "hospital dirty scenario: " << conflicts.size()
            << " conflict(s), " << Check(cqa.SuspectFacts(), "s").size()
            << " suspect fact(s)\n";
}

void BM_RollUpSum(benchmark::State& state) {
  RollupFixture fx =
      RollupFixture::Make(static_cast<int>(state.range(0)), 8);
  const md::Dimension* dim = fx.ontology->FindDimension("SynHospital");
  for (auto _ : state) {
    auto agg = md::RollUpAggregate(fx.receipts, *dim, "Ward", "SUnit",
                                   "Amount", md::AggFn::kSum);
    if (!agg.ok()) state.SkipWithError(agg.status().ToString().c_str());
    benchmark::DoNotOptimize(agg);
  }
  state.SetLabel(std::to_string(fx.receipts.data().size()) + " rows");
}
BENCHMARK(BM_RollUpSum)->Arg(2)->Arg(8)->Arg(32);

void BM_SummarizabilityCheck(benchmark::State& state) {
  RollupFixture fx =
      RollupFixture::Make(static_cast<int>(state.range(0)), 1);
  const md::Dimension* dim = fx.ontology->FindDimension("SynHospital");
  for (auto _ : state) {
    Status s = md::CheckSummarizable(dim->instance(), "SWard",
                                     "SInstitution");
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_SummarizabilityCheck)->Arg(2)->Arg(32);

void BM_ConflictDetection(benchmark::State& state) {
  scenarios::HospitalOptions options;
  options.include_violating_stay = true;
  auto hospital = Check(scenarios::BuildHospitalOntology(options), "onto");
  auto program = Check(hospital->Compile(), "compile");
  for (auto _ : state) {
    quality::CqaEngine cqa(program);
    cqa.ProtectDimensionStructure(*hospital);
    auto conflicts = cqa.FindConflicts();
    if (!conflicts.ok()) {
      state.SkipWithError(conflicts.status().ToString().c_str());
    }
    benchmark::DoNotOptimize(conflicts);
  }
}
BENCHMARK(BM_ConflictDetection);

void BM_ConflictFreeAnswers(benchmark::State& state) {
  scenarios::HospitalOptions options;
  options.include_violating_stay = true;
  auto hospital = Check(scenarios::BuildHospitalOntology(options), "onto");
  auto program = Check(hospital->Compile(), "compile");
  auto q = Check(datalog::Parser::ParseQuery(
                     "Q(W, D, P) :- PatientWard(W, D, P).",
                     program.vocab().get()),
                 "parse");
  for (auto _ : state) {
    quality::CqaEngine cqa(program);
    cqa.ProtectDimensionStructure(*hospital);
    auto answers = cqa.ConflictFreeAnswers(q);
    if (!answers.ok()) {
      state.SkipWithError(answers.status().ToString().c_str());
    }
    benchmark::DoNotOptimize(answers);
  }
}
BENCHMARK(BM_ConflictFreeAnswers);

}  // namespace
}  // namespace mdqa

int main(int argc, char** argv) {
  return mdqa::bench::RunBench(
      argc, argv, "extension",
      "OLAP roll-up aggregation, summarizability, CQA conflict detection",
      mdqa::Reproduce);
}
