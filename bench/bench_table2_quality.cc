// E1 / F2 — Table I -> Table II: the quality version Measurements^q and
// the doctor's clean query (Example 7), timed across all three engines.
// Paper expectation: Measurements^q = Table I rows 1-2, clean answer =
// row 1; the Fig. 2 pipeline runs end to end.

#include "bench_common.h"
#include "quality/assessor.h"
#include "scenarios/hospital.h"

namespace mdqa {
namespace {

using bench::Check;

quality::QualityContext MakeContext() {
  return Check(scenarios::BuildHospitalContext(scenarios::HospitalOptions{}),
               "context");
}

void Reproduce() {
  quality::QualityContext context = MakeContext();
  std::cout << "\n--- Table I (original Measurements) ---\n"
            << Check(context.database().GetRelation("Measurements"), "D")
                   ->ToTable();
  Relation quality =
      Check(context.ComputeQualityVersion("Measurements"), "S^q");
  std::cout << "\n--- Table II (Measurements^q) ---\n" << quality.ToTable();
  auto clean = Check(
      context.CleanAnswers(
          "Q(T, P, V) :- Measurements(T, P, V), P = \"Tom Waits\", "
          "T >= \"Sep/5-11:45\", T <= \"Sep/5-12:15\"."),
      "clean query");
  std::cout << "\n--- Clean answer to the doctor's query ---\n"
            << clean.ToString(*context.ontology().vocab()) << "\n";
  quality::Assessor assessor(&context);
  std::cout << "\n" << Check(assessor.Assess(), "report").ToString() << "\n";
}

void BM_QualityVersion_Chase(benchmark::State& state) {
  quality::QualityContext context = MakeContext();
  for (auto _ : state) {
    auto q = context.ComputeQualityVersion("Measurements",
                                           qa::Engine::kChase);
    if (!q.ok()) state.SkipWithError(q.status().ToString().c_str());
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_QualityVersion_Chase);

void BM_QualityVersion_DeterministicWs(benchmark::State& state) {
  quality::QualityContext context = MakeContext();
  for (auto _ : state) {
    auto q = context.ComputeQualityVersion("Measurements",
                                           qa::Engine::kDeterministicWs);
    if (!q.ok()) state.SkipWithError(q.status().ToString().c_str());
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_QualityVersion_DeterministicWs);

void BM_QualityVersion_Rewriting_UpwardOnly(benchmark::State& state) {
  // The FO-rewriting engine requires the upward-only ontology variant
  // (Section IV); the quality rules themselves are upward-navigating.
  scenarios::HospitalOptions options;
  options.include_downward_rules = false;
  quality::QualityContext context =
      Check(scenarios::BuildHospitalContext(options), "context");
  for (auto _ : state) {
    auto q = context.ComputeQualityVersion("Measurements",
                                           qa::Engine::kRewriting);
    if (!q.ok()) state.SkipWithError(q.status().ToString().c_str());
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_QualityVersion_Rewriting_UpwardOnly);

void BM_CleanQuery(benchmark::State& state) {
  quality::QualityContext context = MakeContext();
  for (auto _ : state) {
    auto a = context.CleanAnswers(
        "Q(T, P, V) :- Measurements(T, P, V), P = \"Tom Waits\", "
        "T >= \"Sep/5-11:45\", T <= \"Sep/5-12:15\".");
    if (!a.ok()) state.SkipWithError(a.status().ToString().c_str());
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_CleanQuery);

void BM_FullAssessment(benchmark::State& state) {
  quality::QualityContext context = MakeContext();
  quality::Assessor assessor(&context);
  for (auto _ : state) {
    auto r = assessor.Assess();
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FullAssessment);

}  // namespace
}  // namespace mdqa

int main(int argc, char** argv) {
  return mdqa::bench::RunBench(
      argc, argv, "E1/F2",
      "Table I -> Table II quality version and clean query answering",
      mdqa::Reproduce);
}
