#include "relational/relation.h"

#include <algorithm>
#include <sstream>

namespace mdqa {

Status Relation::Insert(Tuple row) {
  if (row.size() != schema_.arity()) {
    return Status::InvalidArgument(
        "arity mismatch inserting into " + schema_.name() + ": got " +
        std::to_string(row.size()) + ", want " +
        std::to_string(schema_.arity()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!AttrTypeAdmits(schema_.attribute(i).type, row[i].type())) {
      return Status::InvalidArgument(
          "type mismatch at attribute '" + schema_.attribute(i).name +
          "' of " + schema_.name() + ": value " + row[i].ToLiteral());
    }
  }
  if (index_.insert(row).second) {
    rows_.push_back(std::move(row));
  }
  return Status::Ok();
}

Status Relation::InsertText(const std::vector<std::string>& fields) {
  Tuple row;
  row.reserve(fields.size());
  for (const std::string& f : fields) row.push_back(Value::FromText(f));
  return Insert(std::move(row));
}

Relation Relation::Select(
    const std::function<bool(const Tuple&)>& pred) const {
  Relation out(schema_);
  for (const Tuple& t : rows_) {
    if (pred(t)) {
      // Re-insert is cheap and keeps the dedup index consistent.
      out.Insert(t);
    }
  }
  return out;
}

Result<Relation> Relation::Project(const std::string& new_name,
                                   const std::vector<int>& cols) const {
  std::vector<Attribute> attrs;
  for (int c : cols) {
    if (c < 0 || static_cast<size_t>(c) >= schema_.arity()) {
      return Status::InvalidArgument("projection index out of range for " +
                                     schema_.name());
    }
    attrs.push_back(schema_.attribute(c));
  }
  MDQA_ASSIGN_OR_RETURN(RelationSchema s,
                        RelationSchema::Create(new_name, std::move(attrs)));
  Relation out(std::move(s));
  for (const Tuple& t : rows_) {
    Tuple p;
    p.reserve(cols.size());
    for (int c : cols) p.push_back(t[c]);
    MDQA_RETURN_IF_ERROR(out.Insert(std::move(p)));
  }
  return out;
}

Result<Relation> Relation::Intersect(const Relation& other) const {
  if (other.arity() != arity()) {
    return Status::InvalidArgument("intersect arity mismatch: " + name() +
                                   " vs " + other.name());
  }
  Relation out(schema_);
  for (const Tuple& t : rows_) {
    if (other.Contains(t)) MDQA_RETURN_IF_ERROR(out.Insert(t));
  }
  return out;
}

Result<Relation> Relation::Minus(const Relation& other) const {
  if (other.arity() != arity()) {
    return Status::InvalidArgument("minus arity mismatch: " + name() +
                                   " vs " + other.name());
  }
  Relation out(schema_);
  for (const Tuple& t : rows_) {
    if (!other.Contains(t)) MDQA_RETURN_IF_ERROR(out.Insert(t));
  }
  return out;
}

std::vector<Tuple> Relation::SortedRows() const {
  std::vector<Tuple> sorted = rows_;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

std::string Relation::ToTable() const {
  std::vector<std::vector<std::string>> cells;
  std::vector<std::string> header;
  header.reserve(arity());
  for (const Attribute& a : schema_.attributes()) header.push_back(a.name);
  cells.push_back(header);
  for (const Tuple& t : SortedRows()) {
    std::vector<std::string> row;
    row.reserve(t.size());
    for (const Value& v : t) row.push_back(v.ToString());
    cells.push_back(std::move(row));
  }
  std::vector<size_t> widths(arity(), 0);
  for (const auto& row : cells) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream os;
  os << schema_.name() << " (" << size() << " rows)\n";
  for (size_t r = 0; r < cells.size(); ++r) {
    os << "  |";
    for (size_t i = 0; i < cells[r].size(); ++i) {
      os << ' ' << cells[r][i]
         << std::string(widths[i] - cells[r][i].size(), ' ') << " |";
    }
    os << '\n';
    if (r == 0) {
      os << "  |";
      for (size_t i = 0; i < widths.size(); ++i) {
        os << std::string(widths[i] + 2, '-') << "|";
      }
      os << '\n';
    }
  }
  return os.str();
}

}  // namespace mdqa
