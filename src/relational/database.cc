#include "relational/database.h"

namespace mdqa {

Status Database::AddRelation(RelationSchema schema) {
  const std::string name = schema.name();
  if (relations_.count(name) > 0) {
    return Status::AlreadyExists("relation '" + name + "' already exists");
  }
  relations_.emplace(name, Relation(std::move(schema)));
  order_.push_back(name);
  return Status::Ok();
}

void Database::PutRelation(Relation relation) {
  const std::string name = relation.name();
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    relations_.emplace(name, std::move(relation));
    order_.push_back(name);
  } else {
    it->second = std::move(relation);
  }
}

bool Database::HasRelation(const std::string& name) const {
  return relations_.count(name) > 0;
}

Result<const Relation*> Database::GetRelation(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + name + "' not found");
  }
  return &it->second;
}

Result<Relation*> Database::GetMutableRelation(const std::string& name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + name + "' not found");
  }
  return &it->second;
}

Status Database::InsertText(const std::string& relation,
                            const std::vector<std::string>& fields) {
  auto it = relations_.find(relation);
  if (it == relations_.end()) {
    std::vector<std::string> attrs;
    attrs.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      attrs.push_back("a" + std::to_string(i));
    }
    MDQA_ASSIGN_OR_RETURN(RelationSchema s,
                          RelationSchema::Create(relation, std::move(attrs)));
    MDQA_RETURN_IF_ERROR(AddRelation(std::move(s)));
    it = relations_.find(relation);
  }
  return it->second.InsertText(fields);
}

std::vector<std::string> Database::RelationNames() const { return order_; }

size_t Database::TotalRows() const {
  size_t n = 0;
  for (const auto& [_, r] : relations_) n += r.size();
  return n;
}

std::string Database::ToString() const {
  std::string out;
  for (const std::string& name : order_) {
    out += relations_.at(name).ToTable();
    out += '\n';
  }
  return out;
}

}  // namespace mdqa
