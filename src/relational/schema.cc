#include "relational/schema.h"

#include <unordered_set>

namespace mdqa {

const char* AttrTypeToString(AttrType t) {
  switch (t) {
    case AttrType::kAny:
      return "any";
    case AttrType::kInt64:
      return "int64";
    case AttrType::kDouble:
      return "double";
    case AttrType::kString:
      return "string";
  }
  return "unknown";
}

bool AttrTypeAdmits(AttrType t, ValueType v) {
  switch (t) {
    case AttrType::kAny:
      return true;
    case AttrType::kInt64:
      return v == ValueType::kInt64;
    case AttrType::kDouble:
      return v == ValueType::kDouble || v == ValueType::kInt64;
    case AttrType::kString:
      return v == ValueType::kString;
  }
  return false;
}

Result<RelationSchema> RelationSchema::Create(
    std::string name, std::vector<Attribute> attributes) {
  if (name.empty()) {
    return Status::InvalidArgument("relation name must be non-empty");
  }
  std::unordered_set<std::string> seen;
  for (const Attribute& a : attributes) {
    if (a.name.empty()) {
      return Status::InvalidArgument("attribute name must be non-empty in " +
                                     name);
    }
    if (!seen.insert(a.name).second) {
      return Status::InvalidArgument("duplicate attribute '" + a.name +
                                     "' in relation " + name);
    }
  }
  return RelationSchema(std::move(name), std::move(attributes));
}

Result<RelationSchema> RelationSchema::Create(
    std::string name, std::vector<std::string> attr_names) {
  std::vector<Attribute> attrs;
  attrs.reserve(attr_names.size());
  for (std::string& n : attr_names) {
    attrs.push_back(Attribute{std::move(n), AttrType::kAny});
  }
  return Create(std::move(name), std::move(attrs));
}

int RelationSchema::AttributeIndex(std::string_view attr) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == attr) return static_cast<int>(i);
  }
  return -1;
}

std::string RelationSchema::ToString() const {
  std::string out = name_ + "(";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attributes_[i].name;
    if (attributes_[i].type != AttrType::kAny) {
      out += ":";
      out += AttrTypeToString(attributes_[i].type);
    }
  }
  out += ")";
  return out;
}

}  // namespace mdqa
