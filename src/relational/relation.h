#ifndef MDQA_RELATIONAL_RELATION_H_
#define MDQA_RELATIONAL_RELATION_H_

#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "base/result.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace mdqa {

/// A row of a relation.
using Tuple = std::vector<Value>;

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    size_t seed = t.size();
    for (const Value& v : t) HashCombine(&seed, v.Hash());
    return seed;
  }
};

/// An in-memory set-semantics relation: a schema plus deduplicated rows in
/// insertion order. This is the user-facing table type (original instances,
/// quality versions, query answers); the Datalog± engine has its own
/// interned fact store (datalog/instance.h) and bridges to/from `Relation`.
class Relation {
 public:
  explicit Relation(RelationSchema schema) : schema_(std::move(schema)) {}

  const RelationSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name(); }
  size_t arity() const { return schema_.arity(); }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  const std::vector<Tuple>& rows() const { return rows_; }
  const Tuple& row(size_t i) const { return rows_[i]; }

  /// Inserts a row after checking arity and attribute types. Duplicate rows
  /// are ignored (set semantics); returns OK either way.
  Status Insert(Tuple row);

  /// Inserts a row built from mixed literals via `Value::FromText`.
  Status InsertText(const std::vector<std::string>& fields);

  bool Contains(const Tuple& row) const { return index_.count(row) > 0; }

  /// Rows satisfying `pred`, as a new relation with the same schema.
  Relation Select(const std::function<bool(const Tuple&)>& pred) const;

  /// Projects onto the attribute positions `cols` (new schema named
  /// `new_name`). Duplicate result rows are collapsed.
  Result<Relation> Project(const std::string& new_name,
                           const std::vector<int>& cols) const;

  /// Set operations; schemas must have equal arity.
  Result<Relation> Intersect(const Relation& other) const;
  Result<Relation> Minus(const Relation& other) const;

  /// Rows sorted lexicographically (for deterministic output).
  std::vector<Tuple> SortedRows() const;

  /// Renders an aligned ASCII table like the ones in the paper.
  std::string ToTable() const;

 private:
  RelationSchema schema_;
  std::vector<Tuple> rows_;
  std::unordered_set<Tuple, TupleHash> index_;
};

}  // namespace mdqa

#endif  // MDQA_RELATIONAL_RELATION_H_
