#ifndef MDQA_RELATIONAL_DATABASE_H_
#define MDQA_RELATIONAL_DATABASE_H_

#include <map>
#include <string>
#include <vector>

#include "base/result.h"
#include "relational/relation.h"

namespace mdqa {

/// A named collection of relations — the "database instance D" under
/// quality assessment, and also the container for computed quality
/// versions D^q.
class Database {
 public:
  Database() = default;

  /// Creates an empty relation with `schema`; fails if the name exists.
  Status AddRelation(RelationSchema schema);

  /// Adds (or replaces) a fully built relation.
  void PutRelation(Relation relation);

  bool HasRelation(const std::string& name) const;

  /// Fails with kNotFound for unknown names.
  Result<const Relation*> GetRelation(const std::string& name) const;
  Result<Relation*> GetMutableRelation(const std::string& name);

  /// Shorthand for building instances in tests/examples: creates the
  /// relation if absent (attributes a0..aN-1, type any) and inserts the row
  /// parsed from `fields`.
  Status InsertText(const std::string& relation,
                    const std::vector<std::string>& fields);

  /// Relation names in insertion order.
  std::vector<std::string> RelationNames() const;

  size_t TotalRows() const;

  /// All tables rendered via Relation::ToTable.
  std::string ToString() const;

 private:
  std::map<std::string, Relation> relations_;
  std::vector<std::string> order_;
};

}  // namespace mdqa

#endif  // MDQA_RELATIONAL_DATABASE_H_
