#ifndef MDQA_RELATIONAL_VALUE_H_
#define MDQA_RELATIONAL_VALUE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <variant>
#include <vector>

#include "base/intern.h"

namespace mdqa {

/// Runtime type of a `Value`.
enum class ValueType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
};

const char* ValueTypeToString(ValueType t);

/// A typed constant: int64, double, or string. Values are the vocabulary of
/// the relational layer and (via `ValuePool`) the constant domain of the
/// Datalog± layer. Ordering is total: values of the same type compare
/// naturally (strings lexicographically); across types the type tag decides
/// (int64 < double < string), which keeps sorting deterministic.
class Value {
 public:
  /// Default-constructs the int64 0 (needed for container resizing).
  Value() : rep_(int64_t{0}) {}

  static Value Int(int64_t v) { return Value(Rep(v)); }
  static Value Real(double v) { return Value(Rep(v)); }
  static Value Str(std::string_view v) { return Value(Rep(std::string(v))); }

  /// Parses `text` into the most specific type: integer, then double,
  /// then string.
  static Value FromText(std::string_view text);

  ValueType type() const { return static_cast<ValueType>(rep_.index()); }
  bool is_int() const { return type() == ValueType::kInt64; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }

  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }

  /// Numeric view: int64 widened to double; only valid for numeric values.
  double AsNumber() const {
    return is_int() ? static_cast<double>(AsInt()) : AsDouble();
  }

  /// Unquoted display form, e.g. `42`, `37.5`, `Tom Waits`.
  std::string ToString() const;

  /// Parser-round-trippable form: strings are double-quoted with escapes.
  std::string ToLiteral() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.rep_ == b.rep_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  friend bool operator<(const Value& a, const Value& b) {
    return a.rep_ < b.rep_;
  }
  friend bool operator<=(const Value& a, const Value& b) { return !(b < a); }

  size_t Hash() const;

 private:
  using Rep = std::variant<int64_t, double, std::string>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}
  Rep rep_;
};

inline std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// Interns `Value`s into dense uint32 ids so the Datalog± engine can
/// manipulate constants as integers. Ids are first-seen dense.
class ValuePool {
 public:
  uint32_t Intern(const Value& v);
  uint32_t InternStr(std::string_view s) { return Intern(Value::Str(s)); }

  /// Returns the id of `v`, or `kNotFound` if never interned.
  uint32_t Find(const Value& v) const;

  const Value& Get(uint32_t id) const { return values_[id]; }
  size_t size() const { return values_.size(); }

  static constexpr uint32_t kNotFound = 0xFFFFFFFFu;

 private:
  std::vector<Value> values_;
  std::unordered_map<Value, uint32_t, ValueHash> ids_;
};

}  // namespace mdqa

#endif  // MDQA_RELATIONAL_VALUE_H_
