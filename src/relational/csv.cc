#include "relational/csv.h"

#include <filesystem>

#include "base/fs.h"

namespace mdqa {

namespace {

// Splits one logical CSV record into fields, handling quotes. `pos` is
// advanced past the record (and its newline).
Result<std::vector<std::string>> ParseRecord(std::string_view content,
                                             size_t* pos, char sep,
                                             int line_no) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  size_t i = *pos;
  for (; i < content.size(); ++i) {
    char c = content[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < content.size() && content[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == sep) {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c == '\n') {
      ++i;
      break;
    } else if (c != '\r') {
      field.push_back(c);
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quote in CSV line " +
                                   std::to_string(line_no));
  }
  fields.push_back(std::move(field));
  *pos = i;
  return fields;
}

}  // namespace

Result<Relation> ParseCsv(std::string_view content, const std::string& name,
                          const CsvOptions& options) {
  size_t pos = 0;
  int line_no = 0;
  std::vector<std::vector<std::string>> records;
  while (pos < content.size()) {
    // Skip blank lines.
    if (content[pos] == '\n' || content[pos] == '\r') {
      ++pos;
      continue;
    }
    ++line_no;
    MDQA_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                          ParseRecord(content, &pos, options.separator,
                                      line_no));
    records.push_back(std::move(fields));
  }
  if (records.empty()) {
    return Status::InvalidArgument("CSV for '" + name + "' is empty");
  }

  std::vector<std::string> attrs;
  size_t first_row = 0;
  if (options.has_header) {
    attrs = records[0];
    first_row = 1;
  } else {
    for (size_t i = 0; i < records[0].size(); ++i) {
      attrs.push_back("a" + std::to_string(i));
    }
  }
  MDQA_ASSIGN_OR_RETURN(RelationSchema schema,
                        RelationSchema::Create(name, attrs));
  Relation out(std::move(schema));
  for (size_t r = first_row; r < records.size(); ++r) {
    if (records[r].size() != attrs.size()) {
      return Status::InvalidArgument(
          "CSV row " + std::to_string(r + 1) + " of '" + name + "' has " +
          std::to_string(records[r].size()) + " fields, want " +
          std::to_string(attrs.size()));
    }
    Tuple row;
    row.reserve(records[r].size());
    for (const std::string& f : records[r]) {
      row.push_back(options.infer_types ? Value::FromText(f)
                                        : Value::Str(f));
    }
    MDQA_RETURN_IF_ERROR(out.Insert(std::move(row)));
  }
  return out;
}

Result<Relation> ReadCsvFile(const std::string& path, const std::string& name,
                             const CsvOptions& options) {
  // Capped, failure-surfacing read: oversized files and truncation races
  // come back as Status errors, never as a silently partial parse.
  MDQA_ASSIGN_OR_RETURN(std::string content,
                        fs::ReadFileToString(path, options.max_bytes));
  std::string relation_name =
      name.empty() ? std::filesystem::path(path).stem().string() : name;
  return ParseCsv(content, relation_name, options);
}

}  // namespace mdqa
