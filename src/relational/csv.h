#ifndef MDQA_RELATIONAL_CSV_H_
#define MDQA_RELATIONAL_CSV_H_

#include <string>
#include <string_view>

#include "base/fs.h"
#include "base/result.h"
#include "relational/database.h"

namespace mdqa {

struct CsvOptions {
  char separator = ',';
  /// First line holds attribute names; otherwise attributes are a0..aN-1.
  bool has_header = true;
  /// Parse fields through Value::FromText (ints/doubles recognized);
  /// false keeps every field a string.
  bool infer_types = true;
  /// ReadCsvFile refuses files larger than this (kResourceExhausted)
  /// instead of buffering them — a mispointed path must not OOM the
  /// process before the parser even sees a byte.
  uint64_t max_bytes = fs::kDefaultMaxFileBytes;
};

/// Parses CSV `content` into a relation named `name`. Supports quoted
/// fields (`"a, b"`, doubled quotes for literal ones), CRLF line ends,
/// and skips blank lines. All rows must have the same field count.
Result<Relation> ParseCsv(std::string_view content, const std::string& name,
                          const CsvOptions& options);
inline Result<Relation> ParseCsv(std::string_view content,
                                 const std::string& name) {
  return ParseCsv(content, name, CsvOptions{});
}

/// Reads `path` and parses it; the relation is named after the file's
/// stem unless `name` is non-empty.
Result<Relation> ReadCsvFile(const std::string& path, const std::string& name,
                             const CsvOptions& options);
inline Result<Relation> ReadCsvFile(const std::string& path,
                                    const std::string& name = "") {
  return ReadCsvFile(path, name, CsvOptions{});
}

}  // namespace mdqa

#endif  // MDQA_RELATIONAL_CSV_H_
