#include "relational/value.h"

#include <charconv>
#include <cstdio>
#include <functional>

#include "base/string_util.h"

namespace mdqa {

const char* ValueTypeToString(ValueType t) {
  switch (t) {
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

Value Value::FromText(std::string_view text) {
  if (IsInteger(text)) {
    // std::from_chars does not accept a leading '+'.
    std::string_view digits =
        text.front() == '+' ? text.substr(1) : text;
    int64_t v = 0;
    std::from_chars(digits.data(), digits.data() + digits.size(), v);
    return Int(v);
  }
  if (IsDouble(text)) {
    return Real(std::stod(std::string(text)));
  }
  return Str(text);
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kInt64:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", AsDouble());
      return buf;
    }
    case ValueType::kString:
      return AsString();
  }
  return "";
}

std::string Value::ToLiteral() const {
  if (!is_string()) return ToString();
  std::string out = "\"";
  for (char c : AsString()) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

size_t Value::Hash() const {
  size_t seed = static_cast<size_t>(type());
  switch (type()) {
    case ValueType::kInt64:
      HashCombine(&seed, std::hash<int64_t>{}(AsInt()));
      break;
    case ValueType::kDouble:
      HashCombine(&seed, std::hash<double>{}(AsDouble()));
      break;
    case ValueType::kString:
      HashCombine(&seed, std::hash<std::string>{}(AsString()));
      break;
  }
  return seed;
}

uint32_t ValuePool::Intern(const Value& v) {
  auto it = ids_.find(v);
  if (it != ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(values_.size());
  values_.push_back(v);
  ids_.emplace(v, id);
  return id;
}

uint32_t ValuePool::Find(const Value& v) const {
  auto it = ids_.find(v);
  return it == ids_.end() ? kNotFound : it->second;
}

}  // namespace mdqa
