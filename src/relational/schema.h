#ifndef MDQA_RELATIONAL_SCHEMA_H_
#define MDQA_RELATIONAL_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/result.h"
#include "relational/value.h"

namespace mdqa {

/// Declared type of a relation attribute. `kAny` accepts every `Value`.
enum class AttrType : uint8_t {
  kAny = 0,
  kInt64,
  kDouble,
  kString,
};

const char* AttrTypeToString(AttrType t);

/// True if a value of runtime type `v` is admissible at an attribute of
/// declared type `t`.
bool AttrTypeAdmits(AttrType t, ValueType v);

/// One attribute of a relation schema.
struct Attribute {
  std::string name;
  AttrType type = AttrType::kAny;
};

/// A named relation schema: relation name plus ordered attributes.
class RelationSchema {
 public:
  RelationSchema() = default;

  /// Validates that the name is non-empty and attribute names are unique.
  static Result<RelationSchema> Create(std::string name,
                                       std::vector<Attribute> attributes);

  /// Convenience: all attributes typed `kAny`.
  static Result<RelationSchema> Create(std::string name,
                                       std::vector<std::string> attr_names);

  const std::string& name() const { return name_; }
  size_t arity() const { return attributes_.size(); }
  const std::vector<Attribute>& attributes() const { return attributes_; }
  const Attribute& attribute(size_t i) const { return attributes_[i]; }

  /// Index of the attribute named `attr`, or -1.
  int AttributeIndex(std::string_view attr) const;

  /// e.g. `Measurements(Time, Patient, Value)`.
  std::string ToString() const;

 private:
  RelationSchema(std::string name, std::vector<Attribute> attributes)
      : name_(std::move(name)), attributes_(std::move(attributes)) {}

  std::string name_;
  std::vector<Attribute> attributes_;
};

}  // namespace mdqa

#endif  // MDQA_RELATIONAL_SCHEMA_H_
