#ifndef MDQA_BASE_STATUS_H_
#define MDQA_BASE_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace mdqa {

/// Error category for a failed operation. The library does not throw on
/// expected failure paths; fallible operations return `Status` or
/// `Result<T>` (see result.h), following the RocksDB/Arrow idiom.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< malformed input (parse errors, bad schemas, ...)
  kNotFound,          ///< a named entity does not exist
  kAlreadyExists,     ///< a named entity is being redefined
  kFailedPrecondition,///< operation not valid in the current state
  kInconsistent,      ///< a negative constraint or hard EGD violation fired
  kResourceExhausted, ///< a chase/search budget (facts, depth, time) ran out
  kCancelled,         ///< cooperative cancellation was requested by the caller
  kUnimplemented,     ///< feature intentionally not supported
  kInternal,          ///< invariant breakage; indicates a library bug
};

/// Returns the canonical spelling of a code, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// A cheap value type carrying success or an error code plus message.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Inconsistent(std::string msg) {
    return Status(StatusCode::kInconsistent, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller.
#define MDQA_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::mdqa::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                      \
  } while (false)

}  // namespace mdqa

#endif  // MDQA_BASE_STATUS_H_
