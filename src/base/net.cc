#include "base/net.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

namespace mdqa::net {

namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + strerror(errno));
}

Status SetTimeoutOpt(int fd, int opt, std::chrono::milliseconds timeout) {
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  if (setsockopt(fd, SOL_SOCKET, opt, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(timeout)");
  }
  return Status::Ok();
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Socket::SetRecvTimeout(std::chrono::milliseconds timeout) {
  return SetTimeoutOpt(fd_, SO_RCVTIMEO, timeout);
}

Status Socket::SetSendTimeout(std::chrono::milliseconds timeout) {
  return SetTimeoutOpt(fd_, SO_SNDTIMEO, timeout);
}

Result<size_t> Socket::ReadSome(char* buf, size_t cap) {
  while (true) {
    ssize_t n = ::recv(fd_, buf, cap, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::ResourceExhausted("net: read timed out");
    }
    return Errno("recv");
  }
}

Status Socket::SendAll(std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n =
        ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return Status::ResourceExhausted("net: write timed out");
    }
    return Errno("send");
  }
  return Status::Ok();
}

Result<Listener> Listener::Bind(uint16_t port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);

  int one = 1;
  if (setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }

  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind");
  }
  if (::listen(fd, backlog) != 0) return Errno("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
      0) {
    return Errno("getsockname");
  }

  Listener out;
  out.sock_ = std::move(sock);
  out.port_ = ntohs(addr.sin_port);
  return out;
}

Result<Socket> Listener::Accept(std::chrono::milliseconds timeout) {
  struct pollfd pfd;
  pfd.fd = sock_.fd();
  pfd.events = POLLIN;
  int rc = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
  if (rc < 0) {
    if (errno == EINTR) return Status::ResourceExhausted("net: accept timed out");
    return Errno("poll");
  }
  if (rc == 0) return Status::ResourceExhausted("net: accept timed out");
  int fd = ::accept(sock_.fd(), nullptr, nullptr);
  if (fd < 0) return Errno("accept");
  return Socket(fd);
}

Result<Socket> ConnectLoopback(uint16_t port,
                               std::chrono::milliseconds timeout) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);

  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);

  // Non-blocking connect bounded by poll, then back to blocking mode.
  int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) return Errno("connect");
  if (rc != 0) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLOUT;
    int prc = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
    if (prc <= 0) return Status::ResourceExhausted("net: connect timed out");
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      errno = err != 0 ? err : errno;
      return Errno("connect");
    }
  }
  fcntl(fd, F_SETFL, flags);
  return sock;
}

}  // namespace mdqa::net
