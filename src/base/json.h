#ifndef MDQA_BASE_JSON_H_
#define MDQA_BASE_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mdqa {

/// Escapes `s` for inclusion in a JSON string literal (without the
/// surrounding quotes).
std::string JsonEscape(std::string_view s);

/// A minimal streaming JSON writer — enough for exporting assessment
/// reports and benchmark series; not a general serialization framework.
/// Keys/values are emitted in call order; the writer tracks nesting and
/// inserts commas. Misuse (e.g. a value without a key inside an object)
/// is caught by assertions in debug builds and produces well-formed-but-
/// wrong output otherwise.
///
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("relation").String("Measurements");
///   w.Key("precision").Number(0.333);
///   w.Key("rows").BeginArray();
///   w.String("a");
///   w.EndArray();
///   w.EndObject();
///   std::string json = w.TakeString();
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits an object key; must be followed by exactly one value.
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Number(double value);
  JsonWriter& Number(int64_t value);
  JsonWriter& Number(size_t value) {
    return Number(static_cast<int64_t>(value));
  }
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// The accumulated JSON text (the writer is spent afterwards).
  std::string TakeString() { return std::move(out_); }

 private:
  void BeforeValue();

  std::string out_;
  // One entry per open container: number of elements emitted so far;
  // negative means "inside an object, key pending".
  std::vector<int64_t> stack_;
};

}  // namespace mdqa

#endif  // MDQA_BASE_JSON_H_
