#ifndef MDQA_BASE_JSON_H_
#define MDQA_BASE_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/result.h"

namespace mdqa {

/// Escapes `s` for inclusion in a JSON string literal (without the
/// surrounding quotes).
std::string JsonEscape(std::string_view s);

/// A minimal streaming JSON writer — enough for exporting assessment
/// reports and benchmark series; not a general serialization framework.
/// Keys/values are emitted in call order; the writer tracks nesting and
/// inserts commas. Misuse (e.g. a value without a key inside an object)
/// is caught by assertions in debug builds and produces well-formed-but-
/// wrong output otherwise.
///
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("relation").String("Measurements");
///   w.Key("precision").Number(0.333);
///   w.Key("rows").BeginArray();
///   w.String("a");
///   w.EndArray();
///   w.EndObject();
///   std::string json = w.TakeString();
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits an object key; must be followed by exactly one value.
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Number(double value);
  JsonWriter& Number(int64_t value);
  JsonWriter& Number(size_t value) {
    return Number(static_cast<int64_t>(value));
  }
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// The accumulated JSON text (the writer is spent afterwards).
  std::string TakeString() { return std::move(out_); }

 private:
  void BeforeValue();

  std::string out_;
  // One entry per open container: number of elements emitted so far;
  // negative means "inside an object, key pending".
  std::vector<int64_t> stack_;
};

/// Caps applied while parsing untrusted JSON. The parser is recursive
/// descent, so an adversarial body like `[[[[…]]]]` turns nesting depth
/// into stack depth — `max_depth` bounds it with a clean kInvalidArgument
/// instead of a stack overflow. `max_bytes` rejects oversized documents
/// up front (kResourceExhausted) before any allocation proportional to
/// the input. The defaults are generous enough for every artifact this
/// codebase emits; mdqa_serve applies much stricter limits to request
/// bodies (see serve::ServerOptions).
struct JsonLimits {
  size_t max_depth = 128;
  size_t max_bytes = 64 * 1024 * 1024;  // 64 MiB
};

/// A parsed JSON document — the reading counterpart of JsonWriter, so
/// exported reports (assessment JSON, mdqa_lint SARIF) can be re-read and
/// inspected without a third-party dependency. Numbers are stored as
/// double, which covers everything this codebase emits. Object member
/// order is preserved; duplicate keys keep every occurrence (Find returns
/// the first).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses one JSON value (surrounding whitespace allowed; trailing
  /// non-space input is an error). Depth and input size are capped per
  /// `limits` to keep recursion and allocation bounded on adversarial
  /// input.
  static Result<JsonValue> Parse(std::string_view text,
                                 const JsonLimits& limits = JsonLimits());

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; calling the wrong one returns the type's default
  /// (false / 0.0 / empty) rather than asserting.
  bool AsBool() const { return is_bool() && bool_; }
  double AsNumber() const { return is_number() ? number_ : 0.0; }
  const std::string& AsString() const { return string_; }

  /// Array elements (empty unless is_array()).
  const std::vector<JsonValue>& Items() const { return items_; }
  /// Object members in document order (empty unless is_object()).
  const std::vector<std::pair<std::string, JsonValue>>& Members() const {
    return members_;
  }
  /// First member named `key`, or nullptr (also for non-objects).
  const JsonValue* Find(std::string_view key) const;

 private:
  friend class JsonParser;  // json.cc — fills in parsed values

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace mdqa

#endif  // MDQA_BASE_JSON_H_
