#include "base/budget.h"

namespace mdqa {

const char* CompletenessToString(Completeness c) {
  switch (c) {
    case Completeness::kComplete:
      return "complete";
    case Completeness::kTruncated:
      return "truncated";
  }
  return "unknown";
}

void FaultInjector::Arm(const std::string& probe, uint64_t trip_at_hit,
                        Status status, uint64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  ProbeState& state = probes_[probe];
  state.armed = true;
  state.trip_at = trip_at_hit;
  state.count = count;
  state.status = std::move(status);
}

Status FaultInjector::Hit(const std::string& probe) {
  std::lock_guard<std::mutex> lock(mu_);
  ProbeState& state = probes_[probe];
  ++state.hits;
  if (!state.armed || state.hits < state.trip_at) return Status::Ok();
  // kAlways never decrements below zero: trip window is [trip_at, trip_at+count).
  if (state.count != kAlways && state.hits >= state.trip_at + state.count) {
    return Status::Ok();
  }
  return state.status;
}

uint64_t FaultInjector::HitCount(const std::string& probe) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = probes_.find(probe);
  return it == probes_.end() ? 0 : it->second.hits;
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  probes_.clear();
}

void ExecutionBudget::InheritControlsFrom(const ExecutionBudget& parent) {
  if (parent.has_deadline_) SetDeadline(parent.deadline_);
  cancel_ = parent.cancel_;
  faults_ = parent.faults_;
  stride_mask_ = parent.stride_mask_;
}

void ExecutionBudget::ResetUsage() {
  facts_.store(0, std::memory_order_relaxed);
  steps_.store(0, std::memory_order_relaxed);
  rounds_.store(0, std::memory_order_relaxed);
  memory_hw_.store(0, std::memory_order_relaxed);
  tick_.store(0, std::memory_order_relaxed);
}

Status ExecutionBudget::OverLimit(const char* what, uint64_t total,
                                  uint64_t limit) {
  return Status::ResourceExhausted(
      std::string("budget: ") + what + " limit exceeded (" +
      std::to_string(total) + " > " + std::to_string(limit) + ")");
}

Status ExecutionBudget::NoteMemory(uint64_t bytes) {
  uint64_t prev = memory_hw_.load(std::memory_order_relaxed);
  while (bytes > prev &&
         !memory_hw_.compare_exchange_weak(prev, bytes,
                                           std::memory_order_relaxed)) {
  }
  if (max_memory_bytes_ != kUnlimited && bytes > max_memory_bytes_) {
    return Status::ResourceExhausted(
        "budget: memory estimate " + std::to_string(bytes) +
        " bytes exceeds limit " + std::to_string(max_memory_bytes_));
  }
  return Status::Ok();
}

Status ExecutionBudget::CancelledAt(const char* probe) {
  return Status::Cancelled(std::string("cancelled at probe '") + probe + "'");
}

Status ExecutionBudget::DeadlineCheck(const char* probe) const {
  if (std::chrono::steady_clock::now() >= deadline_) {
    return Status::ResourceExhausted(
        std::string("budget: deadline exceeded at probe '") + probe + "'");
  }
  return Status::Ok();
}

Status ExecutionBudget::CheckNow(const char* probe) {
  return CheckImpl(probe, /*amortize_clock=*/false);
}

Status ExecutionBudget::CheckImpl(const char* probe, bool amortize_clock) {
  if (faults_ != nullptr) {
    Status injected = faults_->Hit(probe);
    if (!injected.ok()) return injected;
  }
  if (cancel_ != nullptr && cancel_->cancelled()) {
    return CancelledAt(probe);
  }
  if (has_deadline_) {
    // fetch_add starts at 0, so the very first amortized check always reads
    // the clock — an already-expired deadline trips immediately.
    if (!amortize_clock ||
        (tick_.fetch_add(1, std::memory_order_relaxed) & stride_mask_) == 0) {
      return DeadlineCheck(probe);
    }
  }
  return Status::Ok();
}

}  // namespace mdqa
