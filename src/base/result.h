#ifndef MDQA_BASE_RESULT_H_
#define MDQA_BASE_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "base/status.h"

namespace mdqa {

/// Either a value of type `T` or a non-OK `Status`. The library's
/// exception-free analogue of `absl::StatusOr<T>` / `arrow::Result<T>`.
///
/// Usage:
///   Result<Program> r = Parser::Parse(text);
///   if (!r.ok()) return r.status();
///   Program p = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Implicit from a value: `return some_t;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from an error status: `return Status::NotFound(...)`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a Result<T>), propagating its error or binding the
/// value to `lhs`.
#define MDQA_ASSIGN_OR_RETURN(lhs, rexpr)                 \
  MDQA_ASSIGN_OR_RETURN_IMPL_(                            \
      MDQA_RESULT_CONCAT_(_mdqa_result_, __LINE__), lhs, rexpr)

#define MDQA_RESULT_CONCAT_INNER_(a, b) a##b
#define MDQA_RESULT_CONCAT_(a, b) MDQA_RESULT_CONCAT_INNER_(a, b)
#define MDQA_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

}  // namespace mdqa

#endif  // MDQA_BASE_RESULT_H_
