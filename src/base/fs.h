#ifndef MDQA_BASE_FS_H_
#define MDQA_BASE_FS_H_

#include <cstdint>
#include <string>

#include "base/result.h"

namespace mdqa::fs {

/// Default size cap for text inputs (CSV data files, datalog programs,
/// quota configs). Anything larger is almost certainly a mistake — a
/// binary dropped in place of a config, a runaway generator — and
/// loading it would OOM the process before any validation runs.
inline constexpr uint64_t kDefaultMaxFileBytes = 64ull << 20;  // 64 MiB

/// Reads an entire regular file into a string with explicit failure
/// surfacing:
///   - kNotFound          if the file cannot be opened,
///   - kResourceExhausted if its size exceeds `max_bytes`,
///   - kInternal          if the stream fails mid-read or the byte count
///                        read disagrees with the size observed at open
///                        (truncation race / I/O error) — a partial read
///                        is never returned as success.
Result<std::string> ReadFileToString(
    const std::string& path, uint64_t max_bytes = kDefaultMaxFileBytes);

}  // namespace mdqa::fs

#endif  // MDQA_BASE_FS_H_
