#ifndef MDQA_BASE_NET_H_
#define MDQA_BASE_NET_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "base/result.h"

namespace mdqa::net {

/// Move-only RAII wrapper over a POSIX socket descriptor. All I/O in this
/// module is blocking with explicit timeouts (SO_RCVTIMEO/SO_SNDTIMEO +
/// poll) — the serve layer runs one request per worker thread, so
/// readiness-based multiplexing would buy nothing here.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();

  /// Bounds every subsequent blocking recv on this socket — a slow or
  /// stalled peer cannot pin a worker thread forever (the slowloris
  /// defense; see docs/robustness.md).
  Status SetRecvTimeout(std::chrono::milliseconds timeout);
  Status SetSendTimeout(std::chrono::milliseconds timeout);

  /// Reads up to `cap` bytes. 0 means orderly EOF. A recv timeout
  /// surfaces as kResourceExhausted ("read timed out").
  Result<size_t> ReadSome(char* buf, size_t cap);

  /// Writes all of `data` (looping over short writes). SIGPIPE is
  /// suppressed (MSG_NOSIGNAL); a closed peer surfaces as a Status.
  Status SendAll(std::string_view data);

 private:
  int fd_ = -1;
};

/// A listening TCP socket bound to the loopback interface only — mdqa_serve
/// is an assessment daemon, not an internet-facing proxy; anything wider
/// belongs behind a real front end.
class Listener {
 public:
  /// Binds and listens on 127.0.0.1:`port` (0 picks an ephemeral port —
  /// read it back with `port()`).
  static Result<Listener> Bind(uint16_t port, int backlog = 64);

  Listener() = default;
  Listener(Listener&&) = default;
  Listener& operator=(Listener&&) = default;

  uint16_t port() const { return port_; }
  bool valid() const { return sock_.valid(); }
  void Close() { sock_.Close(); }

  /// Waits up to `timeout` for a connection. Timeout surfaces as
  /// kResourceExhausted, so accept loops can poll a stop flag between
  /// attempts without blocking shutdown.
  Result<Socket> Accept(std::chrono::milliseconds timeout);

 private:
  Socket sock_;
  uint16_t port_ = 0;
};

/// Connects to 127.0.0.1:`port` within `timeout`.
Result<Socket> ConnectLoopback(uint16_t port, std::chrono::milliseconds timeout);

}  // namespace mdqa::net

#endif  // MDQA_BASE_NET_H_
