#include "base/json.h"

#include <cassert>
#include <cstdio>

namespace mdqa {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// stack_ encoding: value >= 0 -> array with that many elements so far;
// value < 0 -> object with (-value - 1) elements, key pending iff the
// kKeyPending bit pattern is used. Keep it simple with two parallel
// notions folded into one int: objects store -(2*count + (pending?1:0)) - 1.
namespace {
constexpr int64_t EncodeObject(int64_t count, bool pending) {
  return -(2 * count + (pending ? 1 : 0)) - 1;
}
constexpr bool IsObject(int64_t v) { return v < 0; }
constexpr int64_t ObjectCount(int64_t v) { return (-(v + 1)) / 2; }
constexpr bool KeyPending(int64_t v) { return ((-(v + 1)) % 2) == 1; }
}  // namespace

void JsonWriter::BeforeValue() {
  if (stack_.empty()) return;
  int64_t& top = stack_.back();
  if (IsObject(top)) {
    assert(KeyPending(top) && "object value requires a preceding Key()");
    top = EncodeObject(ObjectCount(top) + 1, false);
  } else {
    if (top > 0) out_ += ',';
    ++top;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back(EncodeObject(0, false));
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  assert(!stack_.empty() && IsObject(stack_.back()));
  assert(!KeyPending(stack_.back()) && "dangling Key() at EndObject");
  stack_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  assert(!stack_.empty() && !IsObject(stack_.back()));
  stack_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  assert(!stack_.empty() && IsObject(stack_.back()));
  assert(!KeyPending(stack_.back()) && "two keys in a row");
  int64_t& top = stack_.back();
  if (ObjectCount(top) > 0) out_ += ',';
  top = EncodeObject(ObjectCount(top), true);
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Number(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

}  // namespace mdqa
