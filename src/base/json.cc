#include "base/json.h"

#include <cassert>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace mdqa {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// stack_ encoding: value >= 0 -> array with that many elements so far;
// value < 0 -> object with (-value - 1) elements, key pending iff the
// kKeyPending bit pattern is used. Keep it simple with two parallel
// notions folded into one int: objects store -(2*count + (pending?1:0)) - 1.
namespace {
constexpr int64_t EncodeObject(int64_t count, bool pending) {
  return -(2 * count + (pending ? 1 : 0)) - 1;
}
constexpr bool IsObject(int64_t v) { return v < 0; }
constexpr int64_t ObjectCount(int64_t v) { return (-(v + 1)) / 2; }
constexpr bool KeyPending(int64_t v) { return ((-(v + 1)) % 2) == 1; }
}  // namespace

void JsonWriter::BeforeValue() {
  if (stack_.empty()) return;
  int64_t& top = stack_.back();
  if (IsObject(top)) {
    assert(KeyPending(top) && "object value requires a preceding Key()");
    top = EncodeObject(ObjectCount(top) + 1, false);
  } else {
    if (top > 0) out_ += ',';
    ++top;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back(EncodeObject(0, false));
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  assert(!stack_.empty() && IsObject(stack_.back()));
  assert(!KeyPending(stack_.back()) && "dangling Key() at EndObject");
  stack_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  assert(!stack_.empty() && !IsObject(stack_.back()));
  stack_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  assert(!stack_.empty() && IsObject(stack_.back()));
  assert(!KeyPending(stack_.back()) && "two keys in a row");
  int64_t& top = stack_.back();
  if (ObjectCount(top) > 0) out_ += ',';
  top = EncodeObject(ObjectCount(top), true);
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Number(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

// Recursive-descent JSON reader over a string_view cursor. At namespace
// scope (not anonymous) so the friend declaration in JsonValue names it.
class JsonParser {
 public:
  JsonParser(std::string_view text, const JsonLimits& limits)
      : text_(text), limits_(limits) {}

  Result<JsonValue> ParseDocument() {
    MDQA_ASSIGN_OR_RETURN(JsonValue v, ParseValue(0));
    SkipSpace();
    if (pos_ < text_.size()) {
      return Err("trailing input after JSON value");
    }
    return v;
  }

 private:
  Status Err(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(size_t depth) {
    if (depth > limits_.max_depth) {
      return Err("nesting deeper than " + std::to_string(limits_.max_depth) +
                 " levels");
    }
    SkipSpace();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    JsonValue v;
    char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      MDQA_ASSIGN_OR_RETURN(std::string s, ParseString());
      v.kind_ = JsonValue::Kind::kString;
      v.string_ = std::move(s);
      return v;
    }
    if (ConsumeWord("true")) {
      v.kind_ = JsonValue::Kind::kBool;
      v.bool_ = true;
      return v;
    }
    if (ConsumeWord("false")) {
      v.kind_ = JsonValue::Kind::kBool;
      v.bool_ = false;
      return v;
    }
    if (ConsumeWord("null")) {
      v.kind_ = JsonValue::Kind::kNull;
      return v;
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return ParseNumber();
    }
    return Err(std::string("unexpected character '") + c + "'");
  }

  Result<JsonValue> ParseObject(size_t depth) {
    ++pos_;  // '{'
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    SkipSpace();
    if (Consume('}')) return v;
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Err("expected object key");
      }
      MDQA_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipSpace();
      if (!Consume(':')) return Err("expected ':' after object key");
      MDQA_ASSIGN_OR_RETURN(JsonValue member, ParseValue(depth + 1));
      v.members_.emplace_back(std::move(key), std::move(member));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return v;
      return Err("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(size_t depth) {
    ++pos_;  // '['
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    SkipSpace();
    if (Consume(']')) return v;
    while (true) {
      MDQA_ASSIGN_OR_RETURN(JsonValue item, ParseValue(depth + 1));
      v.items_.push_back(std::move(item));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return v;
      return Err("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Err("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return Err("invalid \\u escape");
            }
            // UTF-8 encode the code point (BMP only — what JsonEscape emits).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Err("invalid escape sequence");
        }
        continue;
      }
      out += c;
      ++pos_;
    }
    return Err("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      return Err("malformed number '" + token + "'");
    }
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    v.number_ = d;
    return v;
  }

  std::string_view text_;
  JsonLimits limits_;
  size_t pos_ = 0;
};

Result<JsonValue> JsonValue::Parse(std::string_view text,
                                   const JsonLimits& limits) {
  if (text.size() > limits.max_bytes) {
    return Status::ResourceExhausted(
        "JSON input of " + std::to_string(text.size()) +
        " bytes exceeds the " + std::to_string(limits.max_bytes) +
        "-byte limit");
  }
  JsonParser parser(text, limits);
  return parser.ParseDocument();
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

}  // namespace mdqa
