#include "base/string_util.h"

#include <cctype>
#include <cstdlib>

namespace mdqa {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool IsInteger(std::string_view s) {
  if (s.empty()) return false;
  size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

bool IsDouble(std::string_view s) {
  if (s.empty() || IsInteger(s)) return false;
  std::string buf(s);
  char* end = nullptr;
  std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size();
}

}  // namespace mdqa
