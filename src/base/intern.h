#ifndef MDQA_BASE_INTERN_H_
#define MDQA_BASE_INTERN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mdqa {

/// Maps strings to dense uint32 ids and back. Ids are stable for the
/// lifetime of the pool and assigned in first-seen order starting at 0.
/// Not thread-safe; each engine owns its pools.
class StringPool {
 public:
  StringPool() = default;
  StringPool(const StringPool&) = default;
  StringPool& operator=(const StringPool&) = default;

  /// Returns the id for `s`, interning it if new.
  uint32_t Intern(std::string_view s);

  /// Returns the id for `s`, or `kNotFound` if never interned.
  uint32_t Find(std::string_view s) const;

  /// Returns the string for a previously returned id.
  const std::string& Get(uint32_t id) const { return strings_[id]; }

  size_t size() const { return strings_.size(); }

  static constexpr uint32_t kNotFound = 0xFFFFFFFFu;

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, uint32_t> ids_;
};

/// Combines a hash into a running seed (boost::hash_combine recipe).
inline void HashCombine(size_t* seed, size_t h) {
  *seed ^= h + 0x9e3779b97f4a7c15ull + (*seed << 6) + (*seed >> 2);
}

}  // namespace mdqa

#endif  // MDQA_BASE_INTERN_H_
