#include "base/thread_pool.h"

#include <algorithm>

namespace mdqa {

namespace {

// Which worker the current thread is, if any. Indexes are per-pool;
// a thread only ever belongs to one pool, so a plain pair is enough.
thread_local const ThreadPool* tls_pool = nullptr;
thread_local size_t tls_worker = 0;

}  // namespace

size_t ThreadPool::DefaultThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

ThreadPool::ThreadPool(size_t threads) {
  const size_t n = std::max<size_t>(1, threads);
  queues_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&idle_mu_);
    stop_.store(true, std::memory_order_release);
  }
  idle_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  size_t target;
  if (tls_pool == this) {
    target = tls_worker;  // push to own deque: LIFO locality
  } else {
    target = next_queue_.fetch_add(1, std::memory_order_relaxed) %
             queues_.size();
  }
  {
    MutexLock lock(&queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(fn));
  }
  pending_.fetch_add(1, std::memory_order_release);
  // The empty critical section pairs with the predicate check in
  // WorkerLoop: a worker that read pending == 0 is either still holding
  // idle_mu_ (we block until it commits to waiting, then notify wakes
  // it) or already re-checks and sees the increment. Without it the
  // notify could land in the check-to-block window and be lost.
  {
    MutexLock lock(&idle_mu_);
  }
  idle_cv_.notify_one();
}

bool ThreadPool::TryRunOne(size_t self) {
  std::function<void()> task;
  // Own queue first (front = most recently queued by us after steals,
  // keeps caches warm)...
  {
    Queue& q = *queues_[self];
    MutexLock lock(&q.mu);
    if (!q.tasks.empty()) {
      task = std::move(q.tasks.front());
      q.tasks.pop_front();
    }
  }
  // ...then steal the oldest task from the first non-empty victim.
  if (!task) {
    for (size_t d = 1; d < queues_.size() && !task; ++d) {
      Queue& q = *queues_[(self + d) % queues_.size()];
      MutexLock lock(&q.mu);
      if (!q.tasks.empty()) {
        task = std::move(q.tasks.back());
        q.tasks.pop_back();
      }
    }
  }
  if (!task) return false;
  pending_.fetch_sub(1, std::memory_order_acq_rel);
  task();
  return true;
}

void ThreadPool::WorkerLoop(size_t self) {
  tls_pool = this;
  tls_worker = self;
  while (true) {
    if (TryRunOne(self)) continue;
    MutexLock lock(&idle_mu_);
    while (!stop_.load(std::memory_order_acquire) &&
           pending_.load(std::memory_order_acquire) == 0) {
      idle_cv_.wait(idle_mu_);
    }
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }

  // Shared loop state. Helpers claim items through `next` and tally
  // them in `done`; the raw `fn` pointer is only dereferenced for a
  // successfully claimed item, and the caller below outlives every
  // claimed item, so the pointer never dangles (late helpers see
  // `next >= n` and exit without touching it).
  struct ForState {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    size_t n;
    const std::function<void(size_t)>* fn;
    Mutex mu;
    CondVar cv;
  };
  auto state = std::make_shared<ForState>();
  state->n = n;
  state->fn = &fn;

  auto drain = [](ForState* s) {
    while (true) {
      const size_t i = s->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s->n) return;
      (*s->fn)(i);
      if (s->done.fetch_add(1, std::memory_order_acq_rel) + 1 == s->n) {
        // Synchronize with the waiting caller: taking the lock before
        // notifying guarantees the waiter is either not yet in wait()
        // (and will see done == n) or inside it (and gets the notify).
        MutexLock lock(&s->mu);
        s->cv.notify_all();
      }
    }
  };

  const size_t helpers = std::min(workers_.size(), n - 1);
  for (size_t h = 0; h < helpers; ++h) {
    Submit([state, drain] { drain(state.get()); });
  }
  drain(state.get());
  MutexLock lock(&state->mu);
  while (state->done.load(std::memory_order_acquire) != state->n) {
    state->cv.wait(state->mu);
  }
}

}  // namespace mdqa
