#ifndef MDQA_BASE_THREAD_POOL_H_
#define MDQA_BASE_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "base/thread_annotations.h"

namespace mdqa {

/// A work-stealing thread pool shared by the parallel engines
/// (`Chase::Run` trigger matching, `quality::Assessor` per-relation
/// fan-out, `UcqRewriter` disjunct evaluation). One pool per process or
/// per request scope; engines take it as a non-owning pointer and a null
/// pool always means "run inline on the calling thread".
///
/// Scheduling: every worker owns a deque. `Submit` pushes to the
/// submitting worker's own deque (LIFO for locality) or, from an
/// external thread, round-robins across deques; idle workers pop their
/// own deque from the front and steal from the *back* of a victim's
/// deque, so stealers take the oldest (usually largest-remaining) work.
///
/// Determinism: the pool itself guarantees nothing about execution
/// order — callers that need deterministic results must merge worker
/// output canonically (see docs/parallelism.md for how the chase, the
/// assessor, and the rewriter each do this).
class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to at least 1).
  explicit ThreadPool(size_t threads);

  /// Joins all workers. Tasks still queued are drained before exit
  /// (ParallelFor callers never outlive their items, so a destructor
  /// racing live work is a caller bug).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Enqueues `fn` for execution on some worker. Callable from any
  /// thread, including from inside a pool task.
  void Submit(std::function<void()> fn);

  /// Runs `fn(0) .. fn(n-1)`, returning when every item has finished.
  /// Items are claimed dynamically (an atomic cursor), so uneven item
  /// costs balance automatically. The calling thread participates;
  /// helper tasks are scheduled on the pool but only ever *claim* items
  /// — nested ParallelFor calls from inside pool tasks therefore cannot
  /// deadlock: the caller drains the cursor itself and waits only for
  /// items a helper has already started.
  ///
  /// `fn` must be safe to invoke concurrently from multiple threads and
  /// must not throw.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// allows it to report 0).
  static size_t DefaultThreads();

 private:
  struct Queue {
    Mutex mu;
    std::deque<std::function<void()>> tasks MDQA_GUARDED_BY(mu);
  };

  void WorkerLoop(size_t self);
  /// Pops own queue front, else steals a victim's back. Returns false
  /// when every queue was empty.
  bool TryRunOne(size_t self);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;

  Mutex idle_mu_;
  CondVar idle_cv_;
  std::atomic<uint64_t> pending_{0};  // queued, not yet started
  std::atomic<bool> stop_{false};
  std::atomic<size_t> next_queue_{0};  // round-robin for external Submit
};

}  // namespace mdqa

#endif  // MDQA_BASE_THREAD_POOL_H_
