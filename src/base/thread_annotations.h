#ifndef MDQA_BASE_THREAD_ANNOTATIONS_H_
#define MDQA_BASE_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// Clang thread-safety analysis (-Wthread-safety) annotations, plus the
// annotated lock types the codebase uses instead of the raw std ones
// (libstdc++'s std::mutex is not annotated, so the analysis cannot see
// through it). On compilers without the attributes (GCC) everything
// compiles away to the plain std behavior.
//
// Conventions:
//  - Members touched by more than one thread carry MDQA_GUARDED_BY(mu).
//  - Functions that must be called with a lock held carry
//    MDQA_REQUIRES(mu).
//  - Condition variables are std::condition_variable_any waiting on the
//    annotated Mutex directly, in an explicit while-loop —
//    `while (!cond) cv.wait(mu);` under a MutexLock — so the predicate
//    check happens in the analyzed scope that visibly holds the lock.

#if defined(__clang__)
#define MDQA_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define MDQA_THREAD_ANNOTATION_(x)
#endif

#define MDQA_CAPABILITY(x) MDQA_THREAD_ANNOTATION_(capability(x))
#define MDQA_SCOPED_CAPABILITY MDQA_THREAD_ANNOTATION_(scoped_lockable)
#define MDQA_GUARDED_BY(x) MDQA_THREAD_ANNOTATION_(guarded_by(x))
#define MDQA_PT_GUARDED_BY(x) MDQA_THREAD_ANNOTATION_(pt_guarded_by(x))
#define MDQA_REQUIRES(...) \
  MDQA_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define MDQA_REQUIRES_SHARED(...) \
  MDQA_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
#define MDQA_ACQUIRE(...) \
  MDQA_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define MDQA_ACQUIRE_SHARED(...) \
  MDQA_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define MDQA_RELEASE(...) \
  MDQA_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define MDQA_RELEASE_SHARED(...) \
  MDQA_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define MDQA_TRY_ACQUIRE(...) \
  MDQA_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define MDQA_EXCLUDES(...) MDQA_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define MDQA_NO_THREAD_SAFETY_ANALYSIS \
  MDQA_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace mdqa {

/// std::mutex with the capability annotation. Satisfies Lockable, so it
/// also works as the lock of a std::condition_variable_any — waiting on
/// the mutex itself keeps the predicate loop in the annotated scope.
class MDQA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MDQA_ACQUIRE() { mu_.lock(); }
  void unlock() MDQA_RELEASE() { mu_.unlock(); }
  bool try_lock() MDQA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// std::shared_mutex with the capability annotation (single writer,
/// concurrent readers).
class MDQA_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() MDQA_ACQUIRE() { mu_.lock(); }
  void unlock() MDQA_RELEASE() { mu_.unlock(); }
  void lock_shared() MDQA_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() MDQA_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over Mutex (the annotated std::lock_guard).
class MDQA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) MDQA_ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() MDQA_RELEASE() { mu_->unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// RAII exclusive (writer) lock over SharedMutex.
class MDQA_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) MDQA_ACQUIRE(mu) : mu_(mu) {
    mu_->lock();
  }
  ~WriterMutexLock() MDQA_RELEASE() { mu_->unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII shared (reader) lock over SharedMutex.
class MDQA_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) MDQA_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_->lock_shared();
  }
  ~ReaderMutexLock() MDQA_RELEASE() { mu_->unlock_shared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// The condition variable that pairs with Mutex (any-lock flavor: its
/// wait takes the Mutex itself, not a std::unique_lock).
using CondVar = std::condition_variable_any;

}  // namespace mdqa

#endif  // MDQA_BASE_THREAD_ANNOTATIONS_H_
