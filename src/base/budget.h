#ifndef MDQA_BASE_BUDGET_H_
#define MDQA_BASE_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <unordered_map>

#include "base/status.h"

namespace mdqa {

/// How much of the ideal result (chase fixpoint, full proof search,
/// complete UCQ rewriting, full assessment) a run actually produced.
///
/// Every engine in this library is *monotone*: interrupting it early can
/// only lose derivations, never invent wrong ones. A `kTruncated` result
/// is therefore a sound under-approximation — every certain answer read
/// off a truncated chase instance (or collected by a truncated proof
/// search) is an answer of the complete run. Truncation is metadata to be
/// surfaced honestly, not an error to be retried blindly.
enum class Completeness {
  kComplete,   ///< the run reached its fixpoint / exhausted its search
  kTruncated,  ///< stopped early by a budget, deadline, or cancellation
};

const char* CompletenessToString(Completeness c);

/// Thread-safe cooperative cancellation flag. The owner (a request
/// handler, a signal handler, a watchdog thread) calls `Cancel()`; engines
/// poll it through `ExecutionBudget::Check` at their probe points and
/// unwind with partial results. Safe to trigger from a POSIX signal
/// handler (a relaxed atomic store is async-signal-safe).
class CancellationToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }
  /// Re-arms the token for the next run (not thread-safe vs. Cancel).
  void Reset() { cancelled_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Deterministic fault injection at named probe points, for testing the
/// exhaustion/degradation paths without real resource pressure. Engines
/// report probe hits through `ExecutionBudget::Check(probe)`; an armed
/// probe returns its configured status at a chosen hit ordinal.
///
///   FaultInjector faults;
///   faults.Arm("assessor:relation", /*trip_at_hit=*/2,
///              Status::ResourceExhausted("injected"));
///   // the second relation assessed trips; all others proceed.
///
/// Thread contract: one injector is routinely shared by every engine of a
/// run — pool workers hitting probes concurrently (parallel assessor,
/// sharded chase) and, in mdqa_serve, concurrent request handlers plus a
/// chaos thread re-arming probes mid-traffic. `Arm`, `Hit`, `HitCount`,
/// and `Reset` are therefore all safe to call concurrently (one mutex;
/// hit ordinals stay exact, never merely approximate — the deterministic
/// trip-at-hit contract survives concurrency, though *which* worker
/// observes the trip is scheduling-dependent). The concurrency regression
/// test lives in tests/budget_test.cc and runs under TSan via
/// scripts/check.sh --tsan.
class FaultInjector {
 public:
  /// `count` value meaning "keep firing forever once tripped".
  static constexpr uint64_t kAlways =
      std::numeric_limits<uint64_t>::max();

  /// Arms `probe`: hits number `trip_at_hit` .. `trip_at_hit + count - 1`
  /// (1-based) return `status`; all other hits pass. Re-arming replaces
  /// the previous configuration but keeps the hit count.
  void Arm(const std::string& probe, uint64_t trip_at_hit, Status status,
           uint64_t count = 1);

  /// Records a hit of `probe` and returns the armed status when it trips.
  Status Hit(const std::string& probe);

  /// Total hits recorded for `probe` (0 if never hit).
  uint64_t HitCount(const std::string& probe) const;

  /// Disarms everything and clears hit counts.
  void Reset();

 private:
  struct ProbeState {
    uint64_t hits = 0;
    bool armed = false;
    uint64_t trip_at = 0;
    uint64_t count = 0;
    Status status;
  };
  mutable std::mutex mu_;
  std::unordered_map<std::string, ProbeState> probes_;
};

/// A unified execution budget threaded through the whole QA stack
/// (`Chase::Run`, `DeterministicWsQa`, `UcqRewriter`, `CqEvaluator`,
/// `qa::Answer`, `quality::Assessor`): a monotonic wall-clock deadline,
/// unified fact/step/round counters, a memory high-water estimate, a
/// `CancellationToken`, and a `FaultInjector` hook.
///
/// Contract: any trip with a *truncation* code (`kResourceExhausted`,
/// `kCancelled` — see `IsTruncation`) makes the engine stop cooperatively
/// and return its partial result tagged `Completeness::kTruncated`; other
/// injected codes (e.g. a simulated allocation failure as `kInternal`)
/// propagate as hard errors. A default-constructed budget is unlimited
/// and nearly free to check.
///
/// Counter charges are atomic (relaxed), so one budget may be shared by
/// concurrent engine runs; the deadline check amortizes clock reads over
/// `check_stride` calls to stay off the hot path.
class ExecutionBudget {
 public:
  static constexpr uint64_t kUnlimited =
      std::numeric_limits<uint64_t>::max();

  ExecutionBudget() = default;
  ExecutionBudget(const ExecutionBudget&) = delete;
  ExecutionBudget& operator=(const ExecutionBudget&) = delete;

  // ---- configuration (set before the run) ----

  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  void SetDeadlineAfter(std::chrono::milliseconds delta) {
    SetDeadline(std::chrono::steady_clock::now() + delta);
  }
  bool has_deadline() const { return has_deadline_; }
  std::chrono::steady_clock::time_point deadline() const {
    return deadline_;
  }

  void set_max_facts(uint64_t n) { max_facts_ = n; }
  void set_max_steps(uint64_t n) { max_steps_ = n; }
  void set_max_rounds(uint64_t n) { max_rounds_ = n; }
  void set_max_memory_bytes(uint64_t n) { max_memory_bytes_ = n; }
  /// Engines skip computing memory estimates entirely when no limit is
  /// set — estimating is O(instance), far costlier than a counter.
  bool has_memory_limit() const { return max_memory_bytes_ != kUnlimited; }

  void set_cancellation(CancellationToken* token) { cancel_ = token; }
  CancellationToken* cancellation() const { return cancel_; }
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }
  FaultInjector* fault_injector() const { return faults_; }

  /// Deadline checks read the clock once per `stride` calls to `Check`
  /// (rounded up to a power of two so the hot path masks instead of
  /// dividing; default 256 keeps the chase hot loop under ~2% overhead —
  /// see bench_budget_overhead).
  void set_check_stride(uint32_t stride) {
    uint32_t pow2 = 1;
    while (pow2 < stride && pow2 < (1u << 30)) pow2 <<= 1;
    stride_mask_ = pow2 - 1;
  }

  /// Copies deadline, cancellation token, and fault injector from
  /// `parent` — the derived-budget pattern `quality::Assessor` uses for
  /// per-relation isolation: fresh counters, shared controls.
  void InheritControlsFrom(const ExecutionBudget& parent);

  /// Clears counters, the memory high-water mark, and the deadline tick
  /// so the budget can drive another run (controls and limits stay).
  void ResetUsage();

  // ---- charging (engines call these as they work) ----
  // Inline so the unlimited case is a compare-and-return and the
  // in-budget case one relaxed fetch_add — no out-of-line call, no
  // Status round-trip on the hot path.

  Status ChargeFacts(uint64_t n = 1) {
    if (max_facts_ == kUnlimited) return Status();
    uint64_t total = facts_.fetch_add(n, std::memory_order_relaxed) + n;
    if (total <= max_facts_) return Status();
    return OverLimit("fact", total, max_facts_);
  }
  Status ChargeSteps(uint64_t n = 1) {
    if (max_steps_ == kUnlimited) return Status();
    uint64_t total = steps_.fetch_add(n, std::memory_order_relaxed) + n;
    if (total <= max_steps_) return Status();
    return OverLimit("step", total, max_steps_);
  }
  Status ChargeRounds(uint64_t n = 1) {
    if (max_rounds_ == kUnlimited) return Status();
    uint64_t total = rounds_.fetch_add(n, std::memory_order_relaxed) + n;
    if (total <= max_rounds_) return Status();
    return OverLimit("round", total, max_rounds_);
  }

  /// Updates the memory high-water estimate and trips when it exceeds
  /// the configured limit.
  Status NoteMemory(uint64_t bytes);

  uint64_t facts() const { return facts_.load(std::memory_order_relaxed); }
  uint64_t steps() const { return steps_.load(std::memory_order_relaxed); }
  uint64_t rounds() const {
    return rounds_.load(std::memory_order_relaxed);
  }
  uint64_t memory_high_water() const {
    return memory_hw_.load(std::memory_order_relaxed);
  }

  // ---- checking ----

  /// The hot-path check: fault probe (when an injector is attached),
  /// cancellation (one atomic load), deadline (clock read amortized over
  /// `check_stride` calls). `probe` names the call site, e.g. "cq:row".
  /// The common no-injector not-cancelled not-my-turn case stays inline:
  /// two null checks and one relaxed fetch_add.
  Status Check(const char* probe) {
    if (faults_ != nullptr) return CheckImpl(probe, /*amortize_clock=*/true);
    if (cancel_ != nullptr && cancel_->cancelled()) return CancelledAt(probe);
    if (has_deadline_ &&
        (tick_.fetch_add(1, std::memory_order_relaxed) & stride_mask_) == 0) {
      return DeadlineCheck(probe);
    }
    return Status();
  }

  /// Like `Check` but reads the clock unconditionally — for coarse
  /// checkpoints (round boundaries, per-relation gates).
  Status CheckNow(const char* probe);

  /// True for statuses that mean "stop, but the partial result is sound":
  /// budget/deadline exhaustion and cooperative cancellation. Engines
  /// degrade gracefully on these and propagate everything else.
  static bool IsTruncation(const Status& s) {
    return s.code() == StatusCode::kResourceExhausted ||
           s.code() == StatusCode::kCancelled;
  }

 private:
  Status CheckImpl(const char* probe, bool amortize_clock);
  Status DeadlineCheck(const char* probe) const;  // reads the clock
  static Status CancelledAt(const char* probe);
  static Status OverLimit(const char* what, uint64_t total, uint64_t limit);

  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_;
  uint64_t max_facts_ = kUnlimited;
  uint64_t max_steps_ = kUnlimited;
  uint64_t max_rounds_ = kUnlimited;
  uint64_t max_memory_bytes_ = kUnlimited;
  CancellationToken* cancel_ = nullptr;  // not owned
  FaultInjector* faults_ = nullptr;      // not owned
  uint32_t stride_mask_ = 255;  // stride 256; always a power of two − 1

  std::atomic<uint64_t> facts_{0};
  std::atomic<uint64_t> steps_{0};
  std::atomic<uint64_t> rounds_{0};
  std::atomic<uint64_t> memory_hw_{0};
  std::atomic<uint32_t> tick_{0};
};

}  // namespace mdqa

#endif  // MDQA_BASE_BUDGET_H_
