#ifndef MDQA_BASE_STRING_UTIL_H_
#define MDQA_BASE_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace mdqa {

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` parses completely as a signed decimal integer.
bool IsInteger(std::string_view s);

/// True if `s` parses completely as a floating-point literal (and is not
/// already an integer).
bool IsDouble(std::string_view s);

}  // namespace mdqa

#endif  // MDQA_BASE_STRING_UTIL_H_
