#ifndef MDQA_BASE_SOURCE_SPAN_H_
#define MDQA_BASE_SOURCE_SPAN_H_

#include <cstdint>
#include <string>

namespace mdqa {

/// A 1-based (line, column) position in a source text. Line 0 means
/// "unknown" — the carrying object was built programmatically (or derived
/// by the chase), not parsed. Kept to two 32-bit fields so it can ride on
/// every parsed `Atom`/`Rule` without bloating instances.
struct SourceSpan {
  uint32_t line = 0;
  uint32_t column = 0;

  bool IsSet() const { return line != 0; }

  friend bool operator==(SourceSpan a, SourceSpan b) {
    return a.line == b.line && a.column == b.column;
  }
  friend bool operator!=(SourceSpan a, SourceSpan b) { return !(a == b); }
  friend bool operator<(SourceSpan a, SourceSpan b) {
    if (a.line != b.line) return a.line < b.line;
    return a.column < b.column;
  }

  /// "line 3, col 7", or "unknown location" when unset.
  std::string ToString() const {
    if (!IsSet()) return "unknown location";
    return "line " + std::to_string(line) + ", col " + std::to_string(column);
  }
};

}  // namespace mdqa

#endif  // MDQA_BASE_SOURCE_SPAN_H_
