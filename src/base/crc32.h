#ifndef MDQA_BASE_CRC32_H_
#define MDQA_BASE_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mdqa {

/// CRC-32 (IEEE 802.3 / zlib polynomial 0xEDB88320), table-driven.
/// Every persisted frame in src/storage/ — checkpoint sections and WAL
/// records alike — carries one of these so that torn writes, bit rot,
/// and truncation are detected instead of silently replayed.
///
/// `Crc32` computes the checksum of `data` seeded with `seed` (pass the
/// previous return value to checksum discontiguous buffers as one
/// stream). The empty-input CRC is 0.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view data, uint32_t seed = 0) {
  return Crc32(data.data(), data.size(), seed);
}

/// Masked variant for stored checksums (same trick as LevelDB): a CRC
/// stored alongside the very bytes it covers is vulnerable to systematic
/// errors where both are zeroed together. Masking makes an all-zero
/// frame fail verification.
inline uint32_t MaskCrc32(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

inline uint32_t UnmaskCrc32(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot << 15) | (rot >> 17);
}

}  // namespace mdqa

#endif  // MDQA_BASE_CRC32_H_
