#include "base/fs.h"

#include <fstream>

namespace mdqa::fs {

Result<std::string> ReadFileToString(const std::string& path,
                                     uint64_t max_bytes) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return Status::NotFound("fs: cannot open file: " + path);
  }
  std::streamoff size = in.tellg();
  if (size < 0) {
    return Status::Internal("fs: cannot stat file size: " + path);
  }
  if (static_cast<uint64_t>(size) > max_bytes) {
    return Status::ResourceExhausted(
        "fs: file exceeds size cap (" + std::to_string(size) + " > " +
        std::to_string(max_bytes) + " bytes): " + path);
  }
  in.seekg(0, std::ios::beg);
  std::string data(static_cast<size_t>(size), '\0');
  if (size > 0) {
    in.read(data.data(), size);
    if (!in || in.gcount() != size) {
      return Status::Internal(
          "fs: short read (" + std::to_string(in.gcount()) + " of " +
          std::to_string(size) + " bytes): " + path);
    }
  }
  return data;
}

}  // namespace mdqa::fs
