#include "base/intern.h"

namespace mdqa {

uint32_t StringPool::Intern(std::string_view s) {
  auto it = ids_.find(std::string(s));
  if (it != ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(strings_.size());
  strings_.emplace_back(s);
  ids_.emplace(strings_.back(), id);
  return id;
}

uint32_t StringPool::Find(std::string_view s) const {
  auto it = ids_.find(std::string(s));
  return it == ids_.end() ? kNotFound : it->second;
}

}  // namespace mdqa
