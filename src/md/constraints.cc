#include "md/constraints.h"

namespace mdqa::md {

const char* EdgeConstraintToString(EdgeConstraint c) {
  switch (c) {
    case EdgeConstraint::kInto:
      return "into";
    case EdgeConstraint::kTotal:
      return "total";
    case EdgeConstraint::kOnto:
      return "onto";
  }
  return "?";
}

void DimensionConstraints::Require(const std::string& child_category,
                                   const std::string& parent_category,
                                   EdgeConstraint constraint) {
  requirements_.push_back(
      Requirement{child_category, parent_category, constraint});
}

namespace {

// Parents (or children for kOnto) of `member` within `category`.
size_t CountAdjacentIn(const DimensionInstance& instance,
                       const std::vector<std::string>& adjacent,
                       const std::string& category) {
  size_t n = 0;
  for (const std::string& m : adjacent) {
    auto cat = instance.CategoryOf(m);
    if (cat.ok() && *cat == category) ++n;
  }
  return n;
}

}  // namespace

Status DimensionConstraints::Check(const DimensionInstance& instance) const {
  const DimensionSchema& schema = instance.schema();
  for (const Requirement& req : requirements_) {
    if (!schema.HasCategory(req.child) || !schema.HasCategory(req.parent)) {
      return Status::NotFound("constraint on unknown category: " + req.child +
                              " -> " + req.parent);
    }
    if (!schema.HasDirectEdge(req.child, req.parent)) {
      return Status::NotFound("constraint on missing edge " + req.child +
                              " -> " + req.parent + " in dimension " +
                              dimension_);
    }
    switch (req.constraint) {
      case EdgeConstraint::kInto:
        for (const std::string& m : instance.Members(req.child)) {
          if (CountAdjacentIn(instance, instance.ParentsOf(m), req.parent) >
              1) {
            return Status::FailedPrecondition(
                "into(" + req.child + " -> " + req.parent + ") violated: '" +
                m + "' has multiple parents in " + req.parent);
          }
        }
        break;
      case EdgeConstraint::kTotal:
        for (const std::string& m : instance.Members(req.child)) {
          if (CountAdjacentIn(instance, instance.ParentsOf(m), req.parent) ==
              0) {
            return Status::FailedPrecondition(
                "total(" + req.child + " -> " + req.parent + ") violated: '" +
                m + "' has no parent in " + req.parent);
          }
        }
        break;
      case EdgeConstraint::kOnto:
        for (const std::string& m : instance.Members(req.parent)) {
          if (CountAdjacentIn(instance, instance.ChildrenOf(m), req.child) ==
              0) {
            return Status::FailedPrecondition(
                "onto(" + req.child + " -> " + req.parent + ") violated: '" +
                m + "' has no child in " + req.child);
          }
        }
        break;
    }
  }
  return Status::Ok();
}

Status CheckSummarizable(const DimensionInstance& instance,
                         const std::string& from_category,
                         const std::string& to_category) {
  if (!instance.schema().HasCategory(from_category) ||
      !instance.schema().HasCategory(to_category)) {
    return Status::NotFound("unknown category in summarizability check");
  }
  if (from_category != to_category &&
      !instance.schema().IsAncestor(from_category, to_category)) {
    return Status::InvalidArgument(to_category + " is not an ancestor of " +
                                   from_category);
  }
  for (const std::string& m : instance.Members(from_category)) {
    MDQA_ASSIGN_OR_RETURN(std::vector<std::string> ups,
                          instance.RollUp(m, to_category));
    if (ups.empty()) {
      return Status::FailedPrecondition(
          "roll-up " + from_category + " -> " + to_category +
          " not summarizable: member '" + m + "' reaches no member of " +
          to_category + " (data loss)");
    }
    if (ups.size() > 1) {
      return Status::FailedPrecondition(
          "roll-up " + from_category + " -> " + to_category +
          " not summarizable: member '" + m + "' reaches " +
          std::to_string(ups.size()) + " members of " + to_category +
          " (double counting)");
    }
  }
  return Status::Ok();
}

}  // namespace mdqa::md
