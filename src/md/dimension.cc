#include "md/dimension.h"

#include "relational/value.h"

namespace mdqa::md {

Result<Dimension> Dimension::Create(DimensionInstance instance,
                                    const Options& options) {
  if (options.require_strict) {
    MDQA_RETURN_IF_ERROR(instance.CheckStrict());
  }
  if (options.require_homogeneous) {
    MDQA_RETURN_IF_ERROR(instance.CheckHomogeneous());
  }
  return Dimension(std::move(instance));
}

Status Dimension::EmitFacts(datalog::Program* program) const {
  datalog::Vocabulary* vocab = program->mutable_vocab();
  const DimensionSchema& s = schema();
  // Category membership facts.
  for (const std::string& category : s.categories()) {
    MDQA_ASSIGN_OR_RETURN(uint32_t pred,
                          vocab->InternPredicate(category, /*arity=*/1));
    for (const std::string& member : instance_.Members(category)) {
      MDQA_RETURN_IF_ERROR(
          program->AddFact(datalog::Atom(pred, {vocab->Str(member)})));
    }
  }
  // Member edge facts, grouped under (parent-category, child-category)
  // edge predicates.
  for (const std::string& child_cat : s.categories()) {
    for (const std::string& parent_cat : s.Parents(child_cat)) {
      MDQA_ASSIGN_OR_RETURN(
          uint32_t pred,
          vocab->InternPredicate(EdgePredicate(parent_cat, child_cat),
                                 /*arity=*/2));
      for (const std::string& child : instance_.Members(child_cat)) {
        for (const std::string& parent : instance_.ParentsOf(child)) {
          MDQA_ASSIGN_OR_RETURN(std::string pc,
                                instance_.CategoryOf(parent));
          if (pc != parent_cat) continue;
          MDQA_RETURN_IF_ERROR(program->AddFact(datalog::Atom(
              pred, {vocab->Str(parent), vocab->Str(child)})));
        }
      }
    }
  }
  return Status::Ok();
}

std::string Dimension::ToString() const {
  std::string out = schema().ToString();
  for (const std::string& category : schema().categories()) {
    out += "  " + category + ":";
    for (const std::string& m : instance_.Members(category)) out += " " + m;
    out += "\n";
  }
  return out;
}

std::string Dimension::ToDot(bool with_members) const {
  const DimensionSchema& s = schema();
  std::string out = "digraph \"" + name() + "\" {\n  rankdir=BT;\n";
  out += "  node [shape=box, style=rounded];\n";
  auto quote = [](const std::string& id) { return "\"" + id + "\""; };
  for (const std::string& category : s.categories()) {
    out += "  " + quote("cat:" + category) + " [label=" + quote(category) +
           "];\n";
  }
  for (const std::string& child : s.categories()) {
    for (const std::string& parent : s.Parents(child)) {
      out += "  " + quote("cat:" + child) + " -> " +
             quote("cat:" + parent) + ";\n";
    }
  }
  if (with_members) {
    out += "  node [shape=ellipse, style=solid];\n";
    for (const std::string& category : s.categories()) {
      for (const std::string& m : instance_.Members(category)) {
        out += "  " + quote("m:" + m) + " [label=" + quote(m) + "];\n";
        out += "  " + quote("m:" + m) + " -> " + quote("cat:" + category) +
               " [style=dotted, arrowhead=none];\n";
        for (const std::string& p : instance_.ParentsOf(m)) {
          out += "  " + quote("m:" + m) + " -> " + quote("m:" + p) + ";\n";
        }
      }
    }
  }
  out += "}\n";
  return out;
}

DimensionBuilder::DimensionBuilder(const std::string& name) {
  Result<DimensionSchema> s = DimensionSchema::Create(name);
  if (s.ok()) {
    schema_ = std::move(s).value();
  } else {
    first_error_ = s.status();
  }
}

void DimensionBuilder::Track(Status s) {
  if (first_error_.ok() && !s.ok()) first_error_ = std::move(s);
}

DimensionBuilder& DimensionBuilder::Category(const std::string& category) {
  Track(schema_.AddCategory(category));
  return *this;
}

DimensionBuilder& DimensionBuilder::Edge(const std::string& child,
                                         const std::string& parent) {
  Track(schema_.AddEdge(child, parent));
  return *this;
}

DimensionBuilder& DimensionBuilder::Member(const std::string& category,
                                           const std::string& member) {
  members_.emplace_back(category, member);
  return *this;
}

DimensionBuilder& DimensionBuilder::Link(const std::string& child_member,
                                         const std::string& parent_member) {
  links_.emplace_back(child_member, parent_member);
  return *this;
}

Result<Dimension> DimensionBuilder::Build(const Dimension::Options& options) {
  MDQA_RETURN_IF_ERROR(first_error_);
  DimensionInstance instance(schema_);
  for (const auto& [category, member] : members_) {
    MDQA_RETURN_IF_ERROR(instance.AddMember(category, member));
  }
  for (const auto& [child, parent] : links_) {
    MDQA_RETURN_IF_ERROR(instance.AddChildParent(child, parent));
  }
  return Dimension::Create(std::move(instance), options);
}

}  // namespace mdqa::md
