#include "md/time_util.h"

#include <array>
#include <charconv>
#include <set>

#include "base/string_util.h"
#include "md/dimension.h"

namespace mdqa::md {

namespace {

struct MonthInfo {
  const char* abbrev;
  const char* full;
  int days;
};

constexpr std::array<MonthInfo, 12> kMonths = {{
    {"Jan", "January", 31},
    {"Feb", "February", 28},
    {"Mar", "March", 31},
    {"Apr", "April", 30},
    {"May", "May", 31},
    {"Jun", "June", 30},
    {"Jul", "July", 31},
    {"Aug", "August", 31},
    {"Sep", "September", 30},
    {"Oct", "October", 31},
    {"Nov", "November", 30},
    {"Dec", "December", 31},
}};

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

Result<int> ParseInt(std::string_view s, const char* what) {
  int v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::InvalidArgument(std::string("cannot parse ") + what +
                                   " from '" + std::string(s) + "'");
  }
  return v;
}

}  // namespace

Result<int> MonthNumber(std::string_view month_name) {
  for (size_t i = 0; i < kMonths.size(); ++i) {
    if (EqualsIgnoreCase(month_name, kMonths[i].abbrev) ||
        EqualsIgnoreCase(month_name, kMonths[i].full)) {
      return static_cast<int>(i) + 1;
    }
  }
  return Status::InvalidArgument("unknown month name '" +
                                 std::string(month_name) + "'");
}

Result<std::string> MonthName(int month_number) {
  if (month_number < 1 || month_number > 12) {
    return Status::InvalidArgument("month number out of range: " +
                                   std::to_string(month_number));
  }
  return std::string(kMonths[static_cast<size_t>(month_number) - 1].full);
}

Result<int64_t> EncodeDay(std::string_view day) {
  // Format: "<Month>/<day-of-month>".
  size_t slash = day.find('/');
  if (slash == std::string_view::npos) {
    return Status::InvalidArgument("day must be '<Month>/<d>': '" +
                                   std::string(day) + "'");
  }
  MDQA_ASSIGN_OR_RETURN(int month, MonthNumber(day.substr(0, slash)));
  MDQA_ASSIGN_OR_RETURN(int dom,
                        ParseInt(day.substr(slash + 1), "day of month"));
  int max_days = kMonths[static_cast<size_t>(month) - 1].days;
  if (dom < 1 || dom > max_days) {
    return Status::InvalidArgument("day of month out of range in '" +
                                   std::string(day) + "'");
  }
  int64_t days_before = 0;
  for (int m = 1; m < month; ++m) {
    days_before += kMonths[static_cast<size_t>(m) - 1].days;
  }
  return (days_before + dom - 1) * int64_t{24} * 60;
}

Result<int64_t> EncodeClock(std::string_view clock) {
  // Format: "<Month>/<d>-<hh>:<mm>".
  size_t dash = clock.find('-');
  if (dash == std::string_view::npos) {
    return Status::InvalidArgument("clock must be '<Month>/<d>-<hh>:<mm>': '" +
                                   std::string(clock) + "'");
  }
  MDQA_ASSIGN_OR_RETURN(int64_t day_min, EncodeDay(clock.substr(0, dash)));
  std::string_view hm = clock.substr(dash + 1);
  size_t colon = hm.find(':');
  if (colon == std::string_view::npos) {
    return Status::InvalidArgument("missing ':' in clock '" +
                                   std::string(clock) + "'");
  }
  MDQA_ASSIGN_OR_RETURN(int hh, ParseInt(hm.substr(0, colon), "hour"));
  MDQA_ASSIGN_OR_RETURN(int mm, ParseInt(hm.substr(colon + 1), "minute"));
  if (hh < 0 || hh > 23 || mm < 0 || mm > 59) {
    return Status::InvalidArgument("clock out of range in '" +
                                   std::string(clock) + "'");
  }
  return day_min + hh * 60 + mm;
}

Result<std::string> DayOfClock(std::string_view clock) {
  size_t dash = clock.find('-');
  if (dash == std::string_view::npos) {
    return Status::InvalidArgument("clock must contain '-': '" +
                                   std::string(clock) + "'");
  }
  // Validate the day part before returning it.
  MDQA_RETURN_IF_ERROR(EncodeDay(clock.substr(0, dash)).status());
  return std::string(clock.substr(0, dash));
}

Result<std::string> MonthOfDay(std::string_view day, int year) {
  size_t slash = day.find('/');
  if (slash == std::string_view::npos) {
    return Status::InvalidArgument("day must be '<Month>/<d>': '" +
                                   std::string(day) + "'");
  }
  MDQA_ASSIGN_OR_RETURN(int month, MonthNumber(day.substr(0, slash)));
  MDQA_ASSIGN_OR_RETURN(std::string name, MonthName(month));
  return name + "/" + std::to_string(year);
}

Result<Dimension> BuildTimeDimension(const std::string& name, int year,
                                     const std::vector<std::string>& days,
                                     const std::vector<std::string>& instants) {
  DimensionBuilder b(name);
  const bool with_instants = !instants.empty();
  if (with_instants) b.Category("Time");
  const std::string all = "All" + name;
  b.Category("Day").Category("Month").Category("Year").Category(all);
  if (with_instants) b.Edge("Time", "Day");
  b.Edge("Day", "Month").Edge("Month", "Year").Edge("Year", all);

  const std::string year_label = std::to_string(year);
  b.Member("Year", year_label).Member(all, "all" + name);
  b.Link(year_label, "all" + name);

  std::set<std::string> day_set;
  std::set<std::string> months_seen;
  for (const std::string& day : days) {
    // Validate the label eagerly so bad input fails with a clear message.
    MDQA_RETURN_IF_ERROR(EncodeDay(day).status());
    if (!day_set.insert(day).second) continue;
    MDQA_ASSIGN_OR_RETURN(std::string month, MonthOfDay(day, year));
    if (months_seen.insert(month).second) {
      b.Member("Month", month).Link(month, year_label);
    }
    b.Member("Day", day).Link(day, month);
  }
  for (const std::string& instant : instants) {
    MDQA_RETURN_IF_ERROR(EncodeClock(instant).status());
    MDQA_ASSIGN_OR_RETURN(std::string day, DayOfClock(instant));
    if (day_set.count(day) == 0) {
      return Status::InvalidArgument("instant '" + instant +
                                     "' falls on day '" + day +
                                     "' which is not in `days`");
    }
    b.Member("Time", instant).Link(instant, day);
  }
  Dimension::Options options;
  options.require_strict = true;
  return b.Build(options);
}

}  // namespace mdqa::md
