#ifndef MDQA_MD_DIMENSION_H_
#define MDQA_MD_DIMENSION_H_

#include <string>

#include "base/result.h"
#include "datalog/program.h"
#include "md/dimension_instance.h"

namespace mdqa::md {

/// A complete HM dimension (schema + instance), the unit the ontology
/// layer consumes. Construction can optionally enforce the HM strictness
/// and homogeneity conditions.
class Dimension {
 public:
  struct Options {
    bool require_strict = false;
    bool require_homogeneous = false;
  };

  static Result<Dimension> Create(DimensionInstance instance,
                                  const Options& options);
  static Result<Dimension> Create(DimensionInstance instance) {
    return Create(std::move(instance), Options{});
  }

  const std::string& name() const { return instance_.schema().name(); }
  const DimensionSchema& schema() const { return instance_.schema(); }
  const DimensionInstance& instance() const { return instance_; }

  /// Predicate name of the parent–child relation between two adjacent
  /// categories, following the paper's convention: `UnitWard(u, w)` for
  /// Unit (parent) over Ward (child) — arguments ordered (parent, child).
  static std::string EdgePredicate(const std::string& parent_category,
                                   const std::string& child_category) {
    return parent_category + child_category;
  }

  /// Adds the dimension's Datalog± encoding to `program`: one unary fact
  /// per member under its category predicate (`Ward("W1")`) and one
  /// binary fact per member edge under the edge predicate
  /// (`UnitWard("Standard", "W1")`).
  Status EmitFacts(datalog::Program* program) const;

  /// Schema tree plus members per category — the textual Fig. 1 rendering.
  std::string ToString() const;

  /// Graphviz source for the dimension: category DAG as boxes, and (when
  /// `with_members`) member nodes with their partial order, clustered
  /// beside their category — `dot -Tpng` turns it into the paper's
  /// Fig. 1.
  std::string ToDot(bool with_members) const;

 private:
  explicit Dimension(DimensionInstance instance)
      : instance_(std::move(instance)) {}

  DimensionInstance instance_;
};

/// Fluent builder used by tests, examples and workload generators.
/// Errors are accumulated; `Build()` surfaces the first one.
class DimensionBuilder {
 public:
  explicit DimensionBuilder(const std::string& name);

  DimensionBuilder& Category(const std::string& category);
  DimensionBuilder& Edge(const std::string& child, const std::string& parent);
  DimensionBuilder& Member(const std::string& category,
                           const std::string& member);
  /// `child_member < parent_member` in the member partial order.
  DimensionBuilder& Link(const std::string& child_member,
                         const std::string& parent_member);

  Result<Dimension> Build(const Dimension::Options& options);
  Result<Dimension> Build() { return Build(Dimension::Options{}); }

 private:
  void Track(Status s);

  Status first_error_;
  DimensionSchema schema_;
  // Members/links are buffered: schema edges must all exist before
  // instance edges are validated.
  std::vector<std::pair<std::string, std::string>> members_;
  std::vector<std::pair<std::string, std::string>> links_;
};

}  // namespace mdqa::md

#endif  // MDQA_MD_DIMENSION_H_
