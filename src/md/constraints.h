#ifndef MDQA_MD_CONSTRAINTS_H_
#define MDQA_MD_CONSTRAINTS_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "md/dimension_instance.h"

namespace mdqa::md {

/// Cardinality constraints on a single category edge, after the
/// Hurtado–Gutierrez–Mendelzon model (TODS 2005) the paper extends —
/// there, summarizability of roll-ups is captured exactly by such
/// dimension constraints.
enum class EdgeConstraint {
  /// Every child member has at most one parent in the parent category
  /// (the roll-up is functional on this edge).
  kInto,
  /// Every child member has at least one parent in the parent category
  /// (the roll-up is total on this edge; homogeneity, edge-local).
  kTotal,
  /// Every parent member has at least one child (no empty parents).
  kOnto,
};

const char* EdgeConstraintToString(EdgeConstraint c);

/// A set of declared edge constraints over one dimension, checkable
/// against its instance.
class DimensionConstraints {
 public:
  explicit DimensionConstraints(std::string dimension_name)
      : dimension_(std::move(dimension_name)) {}

  const std::string& dimension() const { return dimension_; }

  /// Declares a constraint on the edge child_category → parent_category.
  void Require(const std::string& child_category,
               const std::string& parent_category, EdgeConstraint constraint);

  size_t size() const { return requirements_.size(); }

  /// Checks every declared constraint; the first violation yields
  /// kFailedPrecondition with a member-level witness. Unknown
  /// categories/edges yield kNotFound.
  Status Check(const DimensionInstance& instance) const;

 private:
  struct Requirement {
    std::string child;
    std::string parent;
    EdgeConstraint constraint;
  };

  std::string dimension_;
  std::vector<Requirement> requirements_;
};

/// The summarizability condition for pre-aggregation (HM): rolling up
/// from `from_category` to the ancestor `to_category` neither loses nor
/// double-counts iff every member of `from_category` reaches **exactly
/// one** member of `to_category`. Returns OK, or kFailedPrecondition
/// with the offending member (0 parents = loss, ≥2 = double count).
Status CheckSummarizable(const DimensionInstance& instance,
                         const std::string& from_category,
                         const std::string& to_category);

}  // namespace mdqa::md

#endif  // MDQA_MD_CONSTRAINTS_H_
