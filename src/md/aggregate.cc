#include "md/aggregate.h"

#include <algorithm>
#include <limits>
#include <map>

namespace mdqa::md {

const char* AggFnToString(AggFn fn) {
  switch (fn) {
    case AggFn::kSum:
      return "sum";
    case AggFn::kCount:
      return "count";
    case AggFn::kMin:
      return "min";
    case AggFn::kMax:
      return "max";
    case AggFn::kAvg:
      return "avg";
  }
  return "?";
}

Result<Relation> RollUpAggregate(const CategoricalRelation& relation,
                                 const Dimension& dimension,
                                 const std::string& categorical_attribute,
                                 const std::string& to_category,
                                 const std::string& measure_attribute,
                                 AggFn fn) {
  const int cat_idx = relation.AttributeIndex(categorical_attribute);
  const int measure_idx = relation.AttributeIndex(measure_attribute);
  if (cat_idx < 0 || measure_idx < 0) {
    return Status::NotFound("unknown attribute in RollUpAggregate on " +
                            relation.name());
  }
  const CategoricalAttribute& cat_attr =
      relation.attributes()[static_cast<size_t>(cat_idx)];
  if (!cat_attr.is_categorical) {
    return Status::InvalidArgument("attribute '" + categorical_attribute +
                                   "' of " + relation.name() +
                                   " is not categorical");
  }
  if (cat_attr.dimension != dimension.name()) {
    return Status::InvalidArgument("attribute '" + categorical_attribute +
                                   "' is bound to dimension " +
                                   cat_attr.dimension + ", not " +
                                   dimension.name());
  }
  if (cat_idx == measure_idx) {
    return Status::InvalidArgument(
        "categorical attribute cannot be the measure");
  }
  MDQA_RETURN_IF_ERROR(CheckSummarizable(dimension.instance(),
                                         cat_attr.category, to_category));

  // Output schema: same order, categorical renamed, measure renamed.
  std::vector<std::string> attr_names;
  for (size_t i = 0; i < relation.arity(); ++i) {
    if (static_cast<int>(i) == cat_idx) {
      attr_names.push_back(to_category);
    } else if (static_cast<int>(i) == measure_idx) {
      attr_names.push_back(std::string(AggFnToString(fn)) + "_" +
                           measure_attribute);
    } else {
      attr_names.push_back(relation.attributes()[i].name);
    }
  }
  MDQA_ASSIGN_OR_RETURN(
      RelationSchema schema,
      RelationSchema::Create(relation.name() + "_by_" + to_category,
                             attr_names));

  // Group: key = row with member rolled up and measure removed.
  struct Acc {
    double sum = 0;
    size_t count = 0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };
  std::map<Tuple, Acc> groups;
  for (const Tuple& row : relation.data().rows()) {
    const Value& member_value = row[static_cast<size_t>(cat_idx)];
    if (!member_value.is_string()) {
      return Status::Inconsistent("non-string categorical value " +
                                  member_value.ToLiteral() + " in " +
                                  relation.name());
    }
    MDQA_ASSIGN_OR_RETURN(
        std::vector<std::string> ups,
        dimension.instance().RollUp(member_value.AsString(), to_category));
    if (ups.size() != 1) {
      return Status::Inconsistent("value '" + member_value.AsString() +
                                  "' does not roll up uniquely to " +
                                  to_category);
    }
    const Value& measure = row[static_cast<size_t>(measure_idx)];
    if (fn != AggFn::kCount && !measure.is_int() && !measure.is_double()) {
      return Status::InvalidArgument("non-numeric measure " +
                                     measure.ToLiteral() + " in " +
                                     relation.name());
    }
    Tuple key = row;
    key[static_cast<size_t>(cat_idx)] = Value::Str(ups[0]);
    key[static_cast<size_t>(measure_idx)] = Value::Int(0);  // neutral slot
    Acc& acc = groups[key];
    ++acc.count;
    if (measure.is_int() || measure.is_double()) {
      double v = measure.AsNumber();
      acc.sum += v;
      acc.min = std::min(acc.min, v);
      acc.max = std::max(acc.max, v);
    }
  }

  Relation out(std::move(schema));
  for (auto& [key, acc] : groups) {
    Tuple row = key;
    double value = 0;
    switch (fn) {
      case AggFn::kSum:
        value = acc.sum;
        break;
      case AggFn::kCount:
        value = static_cast<double>(acc.count);
        break;
      case AggFn::kMin:
        value = acc.min;
        break;
      case AggFn::kMax:
        value = acc.max;
        break;
      case AggFn::kAvg:
        value = acc.sum / static_cast<double>(acc.count);
        break;
    }
    if (fn == AggFn::kCount) {
      row[static_cast<size_t>(measure_idx)] =
          Value::Int(static_cast<int64_t>(acc.count));
    } else {
      row[static_cast<size_t>(measure_idx)] = Value::Real(value);
    }
    MDQA_RETURN_IF_ERROR(out.Insert(std::move(row)));
  }
  return out;
}

}  // namespace mdqa::md
