#include "md/categorical.h"

#include <unordered_set>

namespace mdqa::md {

Result<CategoricalRelation> CategoricalRelation::Create(
    std::string name, std::vector<CategoricalAttribute> attributes) {
  std::vector<std::string> attr_names;
  std::unordered_set<std::string> seen;
  for (const CategoricalAttribute& a : attributes) {
    if (a.name.empty()) {
      return Status::InvalidArgument("attribute name must be non-empty in " +
                                     name);
    }
    if (!seen.insert(a.name).second) {
      return Status::InvalidArgument("duplicate attribute '" + a.name +
                                     "' in categorical relation " + name);
    }
    if (a.is_categorical && (a.dimension.empty() || a.category.empty())) {
      return Status::InvalidArgument(
          "categorical attribute '" + a.name + "' of " + name +
          " must name a dimension and a category");
    }
    attr_names.push_back(a.name);
  }
  MDQA_ASSIGN_OR_RETURN(RelationSchema schema,
                        RelationSchema::Create(name, attr_names));
  Relation data(std::move(schema));
  return CategoricalRelation(std::move(name), std::move(attributes),
                             std::move(data));
}

std::vector<size_t> CategoricalRelation::CategoricalPositions() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].is_categorical) out.push_back(i);
  }
  return out;
}

std::vector<size_t> CategoricalRelation::PlainPositions() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (!attributes_[i].is_categorical) out.push_back(i);
  }
  return out;
}

int CategoricalRelation::AttributeIndex(const std::string& attr) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == attr) return static_cast<int>(i);
  }
  return -1;
}

Status CategoricalRelation::Insert(Tuple row) { return data_.Insert(std::move(row)); }

Status CategoricalRelation::InsertText(const std::vector<std::string>& fields) {
  return data_.InsertText(fields);
}

Status CategoricalRelation::ValidateReferential(
    const std::map<std::string, const Dimension*>& dimensions) const {
  for (size_t i : CategoricalPositions()) {
    const CategoricalAttribute& attr = attributes_[i];
    auto it = dimensions.find(attr.dimension);
    if (it == dimensions.end()) {
      return Status::NotFound("attribute '" + attr.name + "' of " + name_ +
                              " references unknown dimension '" +
                              attr.dimension + "'");
    }
    const Dimension* dim = it->second;
    if (!dim->schema().HasCategory(attr.category)) {
      return Status::NotFound("attribute '" + attr.name + "' of " + name_ +
                              " references unknown category '" +
                              attr.category + "' of dimension " +
                              attr.dimension);
    }
    for (const Tuple& row : data_.rows()) {
      const Value& v = row[i];
      if (!v.is_string() ||
          !dim->instance().HasMember(v.AsString()) ||
          dim->instance().CategoryOf(v.AsString()).value() != attr.category) {
        return Status::Inconsistent(
            "referential constraint (form (1)) violated: value " +
            v.ToLiteral() + " at attribute '" + attr.name + "' of " + name_ +
            " is not a member of category " + attr.category);
      }
    }
  }
  return Status::Ok();
}

Status CategoricalRelation::EmitFacts(datalog::Program* program) const {
  datalog::Vocabulary* vocab = program->mutable_vocab();
  MDQA_ASSIGN_OR_RETURN(uint32_t pred,
                        vocab->InternPredicate(name_, arity()));
  for (const Tuple& row : data_.rows()) {
    std::vector<datalog::Term> terms;
    terms.reserve(row.size());
    for (const Value& v : row) terms.push_back(vocab->Const(v));
    MDQA_RETURN_IF_ERROR(
        program->AddFact(datalog::Atom(pred, std::move(terms))));
  }
  return Status::Ok();
}

}  // namespace mdqa::md
