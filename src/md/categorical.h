#ifndef MDQA_MD_CATEGORICAL_H_
#define MDQA_MD_CATEGORICAL_H_

#include <map>
#include <string>
#include <vector>

#include "base/result.h"
#include "datalog/program.h"
#include "md/dimension.h"
#include "relational/relation.h"

namespace mdqa::md {

/// One attribute of a categorical relation: either *categorical* — its
/// values are members of a specific category of a specific dimension — or
/// *non-categorical*, drawing from an arbitrary domain. This is the
/// paper's extension of HM fact tables (Section II).
struct CategoricalAttribute {
  std::string name;
  bool is_categorical = false;
  std::string dimension;  ///< set iff is_categorical
  std::string category;   ///< set iff is_categorical

  static CategoricalAttribute Categorical(std::string name,
                                          std::string dimension,
                                          std::string category) {
    CategoricalAttribute a;
    a.name = std::move(name);
    a.is_categorical = true;
    a.dimension = std::move(dimension);
    a.category = std::move(category);
    return a;
  }
  static CategoricalAttribute Plain(std::string name) {
    CategoricalAttribute a;
    a.name = std::move(name);
    return a;
  }
};

/// A categorical relation: schema (name + categorical/plain attributes)
/// plus data. The paper writes these `R(ē; ā)` with categorical
/// attributes first; we do not require that ordering — each attribute
/// carries its own binding.
class CategoricalRelation {
 public:
  static Result<CategoricalRelation> Create(
      std::string name, std::vector<CategoricalAttribute> attributes);

  const std::string& name() const { return name_; }
  size_t arity() const { return attributes_.size(); }
  const std::vector<CategoricalAttribute>& attributes() const {
    return attributes_;
  }

  /// Indexes of categorical / non-categorical attributes.
  std::vector<size_t> CategoricalPositions() const;
  std::vector<size_t> PlainPositions() const;

  int AttributeIndex(const std::string& attr) const;

  /// Inserts a row (set semantics; arity-checked).
  Status Insert(Tuple row);
  Status InsertText(const std::vector<std::string>& fields);

  const Relation& data() const { return data_; }

  /// The paper's referential constraint (form (1)): every categorical
  /// value must be a member of its declared category. `dimensions` maps
  /// dimension name → dimension. Returns kInconsistent with a witness on
  /// the first dangling value.
  Status ValidateReferential(
      const std::map<std::string, const Dimension*>& dimensions) const;

  /// Adds the relation's rows as Datalog± facts under predicate `name()`.
  Status EmitFacts(datalog::Program* program) const;

 private:
  CategoricalRelation(std::string name,
                      std::vector<CategoricalAttribute> attributes,
                      Relation data)
      : name_(std::move(name)),
        attributes_(std::move(attributes)),
        data_(std::move(data)) {}

  std::string name_;
  std::vector<CategoricalAttribute> attributes_;
  Relation data_;
};

}  // namespace mdqa::md

#endif  // MDQA_MD_CATEGORICAL_H_
