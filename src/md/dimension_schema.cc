#include "md/dimension_schema.h"

#include <algorithm>
#include <functional>

namespace mdqa::md {

Result<DimensionSchema> DimensionSchema::Create(std::string name) {
  if (name.empty()) {
    return Status::InvalidArgument("dimension name must be non-empty");
  }
  return DimensionSchema(std::move(name));
}

int DimensionSchema::Index(const std::string& category) const {
  auto it = by_name_.find(category);
  return it == by_name_.end() ? -1 : it->second;
}

Status DimensionSchema::AddCategory(const std::string& category) {
  if (category.empty()) {
    return Status::InvalidArgument("category name must be non-empty");
  }
  if (by_name_.count(category) > 0) {
    return Status::AlreadyExists("category '" + category +
                                 "' already in dimension " + name_);
  }
  by_name_.emplace(category, static_cast<int>(categories_.size()));
  categories_.push_back(category);
  parents_.emplace_back();
  children_.emplace_back();
  return Status::Ok();
}

Status DimensionSchema::AddEdge(const std::string& child,
                                const std::string& parent) {
  int c = Index(child);
  int p = Index(parent);
  if (c < 0 || p < 0) {
    return Status::NotFound("edge " + child + " -> " + parent +
                            ": unknown category in dimension " + name_);
  }
  if (c == p) {
    return Status::InvalidArgument("self-edge on category '" + child + "'");
  }
  if (std::find(parents_[c].begin(), parents_[c].end(), p) !=
      parents_[c].end()) {
    return Status::AlreadyExists("edge " + child + " -> " + parent +
                                 " already declared");
  }
  // Reject cycles: adding c -> p closes a cycle iff c is reachable upward
  // from p already.
  if (IsAncestor(parent, child)) {
    return Status::InvalidArgument("edge " + child + " -> " + parent +
                                   " would create a cycle in dimension " +
                                   name_);
  }
  parents_[c].push_back(p);
  children_[p].push_back(c);
  return Status::Ok();
}

std::vector<std::string> DimensionSchema::Parents(
    const std::string& category) const {
  std::vector<std::string> out;
  int c = Index(category);
  if (c < 0) return out;
  for (int p : parents_[c]) out.push_back(categories_[p]);
  return out;
}

std::vector<std::string> DimensionSchema::Children(
    const std::string& category) const {
  std::vector<std::string> out;
  int c = Index(category);
  if (c < 0) return out;
  for (int k : children_[c]) out.push_back(categories_[k]);
  return out;
}

bool DimensionSchema::HasDirectEdge(const std::string& child,
                                    const std::string& parent) const {
  int c = Index(child);
  int p = Index(parent);
  if (c < 0 || p < 0) return false;
  return std::find(parents_[c].begin(), parents_[c].end(), p) !=
         parents_[c].end();
}

bool DimensionSchema::IsAncestor(const std::string& low,
                                 const std::string& high) const {
  int from = Index(low);
  int to = Index(high);
  if (from < 0 || to < 0) return false;
  std::vector<int> stack = {from};
  std::vector<bool> seen(categories_.size(), false);
  seen[from] = true;
  while (!stack.empty()) {
    int v = stack.back();
    stack.pop_back();
    for (int p : parents_[v]) {
      if (p == to) return true;
      if (!seen[p]) {
        seen[p] = true;
        stack.push_back(p);
      }
    }
  }
  return false;
}

Result<CategoryOrder> DimensionSchema::Compare(const std::string& a,
                                               const std::string& b) const {
  if (Index(a) < 0 || Index(b) < 0) {
    return Status::NotFound("unknown category in Compare: " + a + ", " + b);
  }
  if (a == b) return CategoryOrder::kSame;
  if (IsAncestor(a, b)) return CategoryOrder::kBelow;
  if (IsAncestor(b, a)) return CategoryOrder::kAbove;
  return CategoryOrder::kIncomparable;
}

Result<int> DimensionSchema::Level(const std::string& category) const {
  int c = Index(category);
  if (c < 0) {
    return Status::NotFound("unknown category '" + category + "'");
  }
  // Longest downward chain; DAG-safe memoized DFS.
  std::vector<int> memo(categories_.size(), -1);
  std::function<int(int)> depth = [&](int v) -> int {
    if (memo[v] >= 0) return memo[v];
    int best = 0;
    for (int k : children_[v]) best = std::max(best, 1 + depth(k));
    memo[v] = best;
    return best;
  };
  return depth(c);
}

std::vector<std::string> DimensionSchema::BottomCategories() const {
  std::vector<std::string> out;
  for (size_t i = 0; i < categories_.size(); ++i) {
    if (children_[i].empty()) out.push_back(categories_[i]);
  }
  return out;
}

std::vector<std::string> DimensionSchema::TopCategories() const {
  std::vector<std::string> out;
  for (size_t i = 0; i < categories_.size(); ++i) {
    if (parents_[i].empty()) out.push_back(categories_[i]);
  }
  return out;
}

std::string DimensionSchema::ToString() const {
  std::string out = "dimension " + name_ + "\n";
  std::function<void(int, int)> render = [&](int v, int indent) {
    out += std::string(static_cast<size_t>(indent) * 2, ' ') + categories_[v] +
           "\n";
    for (int k : children_[v]) render(k, indent + 1);
  };
  for (size_t i = 0; i < categories_.size(); ++i) {
    if (parents_[i].empty()) render(static_cast<int>(i), 1);
  }
  return out;
}

}  // namespace mdqa::md
