#include "md/dimension_instance.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace mdqa::md {

Status DimensionInstance::AddMember(const std::string& category,
                                    const std::string& member) {
  if (!schema_.HasCategory(category)) {
    return Status::NotFound("category '" + category + "' not in dimension " +
                            schema_.name());
  }
  auto it = member_category_.find(member);
  if (it != member_category_.end()) {
    if (it->second == category) return Status::Ok();  // idempotent
    return Status::AlreadyExists("member '" + member +
                                 "' already belongs to category '" +
                                 it->second + "'");
  }
  member_category_.emplace(member, category);
  members_by_cat_[category].push_back(member);
  return Status::Ok();
}

Status DimensionInstance::AddChildParent(const std::string& child_member,
                                         const std::string& parent_member) {
  MDQA_ASSIGN_OR_RETURN(std::string child_cat, CategoryOf(child_member));
  MDQA_ASSIGN_OR_RETURN(std::string parent_cat, CategoryOf(parent_member));
  if (!schema_.HasDirectEdge(child_cat, parent_cat)) {
    return Status::InvalidArgument(
        "member edge " + child_member + " < " + parent_member +
        " has no matching category edge " + child_cat + " -> " + parent_cat);
  }
  std::vector<std::string>& ps = parents_[child_member];
  if (std::find(ps.begin(), ps.end(), parent_member) != ps.end()) {
    return Status::Ok();  // idempotent
  }
  ps.push_back(parent_member);
  children_[parent_member].push_back(child_member);
  return Status::Ok();
}

Result<std::string> DimensionInstance::CategoryOf(
    const std::string& member) const {
  auto it = member_category_.find(member);
  if (it == member_category_.end()) {
    return Status::NotFound("unknown member '" + member + "' in dimension " +
                            schema_.name());
  }
  return it->second;
}

std::vector<std::string> DimensionInstance::Members(
    const std::string& category) const {
  auto it = members_by_cat_.find(category);
  return it == members_by_cat_.end() ? std::vector<std::string>{} : it->second;
}

std::vector<std::string> DimensionInstance::ParentsOf(
    const std::string& member) const {
  auto it = parents_.find(member);
  return it == parents_.end() ? std::vector<std::string>{} : it->second;
}

std::vector<std::string> DimensionInstance::ChildrenOf(
    const std::string& member) const {
  auto it = children_.find(member);
  return it == children_.end() ? std::vector<std::string>{} : it->second;
}

Result<std::vector<std::string>> DimensionInstance::RollUp(
    const std::string& member, const std::string& to_category) const {
  MDQA_ASSIGN_OR_RETURN(std::string from_cat, CategoryOf(member));
  if (!schema_.HasCategory(to_category)) {
    return Status::NotFound("unknown category '" + to_category + "'");
  }
  if (from_cat == to_category) return std::vector<std::string>{member};
  if (!schema_.IsAncestor(from_cat, to_category)) {
    return Status::InvalidArgument("cannot roll up from " + from_cat +
                                   " to non-ancestor " + to_category);
  }
  std::vector<std::string> out;
  std::unordered_set<std::string> seen = {member};
  std::deque<std::string> queue = {member};
  while (!queue.empty()) {
    std::string m = queue.front();
    queue.pop_front();
    for (const std::string& p : ParentsOf(m)) {
      if (!seen.insert(p).second) continue;
      if (member_category_.at(p) == to_category) {
        out.push_back(p);
      } else {
        queue.push_back(p);
      }
    }
  }
  return out;
}

Result<std::vector<std::string>> DimensionInstance::DrillDown(
    const std::string& member, const std::string& to_category) const {
  MDQA_ASSIGN_OR_RETURN(std::string from_cat, CategoryOf(member));
  if (!schema_.HasCategory(to_category)) {
    return Status::NotFound("unknown category '" + to_category + "'");
  }
  if (from_cat == to_category) return std::vector<std::string>{member};
  if (!schema_.IsAncestor(to_category, from_cat)) {
    return Status::InvalidArgument("cannot drill down from " + from_cat +
                                   " to non-descendant " + to_category);
  }
  std::vector<std::string> out;
  std::unordered_set<std::string> seen = {member};
  std::deque<std::string> queue = {member};
  while (!queue.empty()) {
    std::string m = queue.front();
    queue.pop_front();
    for (const std::string& c : ChildrenOf(m)) {
      if (!seen.insert(c).second) continue;
      if (member_category_.at(c) == to_category) {
        out.push_back(c);
      } else {
        queue.push_back(c);
      }
    }
  }
  return out;
}

Status DimensionInstance::CheckStrict() const {
  for (const auto& [member, category] : member_category_) {
    for (const std::string& ancestor : schema_.categories()) {
      if (!schema_.IsAncestor(category, ancestor)) continue;
      MDQA_ASSIGN_OR_RETURN(std::vector<std::string> ups,
                            RollUp(member, ancestor));
      if (ups.size() > 1) {
        std::sort(ups.begin(), ups.end());
        return Status::FailedPrecondition(
            "dimension " + schema_.name() + " is not strict: member '" +
            member + "' rolls up to both '" + ups[0] + "' and '" + ups[1] +
            "' in category " + ancestor);
      }
    }
  }
  return Status::Ok();
}

Status DimensionInstance::CheckHomogeneous() const {
  for (const auto& [member, category] : member_category_) {
    for (const std::string& parent_cat : schema_.Parents(category)) {
      bool found = false;
      for (const std::string& p : ParentsOf(member)) {
        if (member_category_.at(p) == parent_cat) {
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::FailedPrecondition(
            "dimension " + schema_.name() + " is not homogeneous: member '" +
            member + "' of " + category + " has no parent in category " +
            parent_cat);
      }
    }
  }
  return Status::Ok();
}

}  // namespace mdqa::md
