#ifndef MDQA_MD_DIMENSION_SCHEMA_H_
#define MDQA_MD_DIMENSION_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "base/result.h"

namespace mdqa::md {

/// Relative placement of two categories in a dimension's partial order.
enum class CategoryOrder {
  kSame,
  kBelow,         ///< first is a (transitive) descendant of second
  kAbove,         ///< first is a (transitive) ancestor of second
  kIncomparable,
};

/// The schema of a Hurtado–Mendelzon dimension: a DAG of categories whose
/// edges `child → parent` define the category lattice (e.g. Ward → Unit →
/// Institution in the paper's Hospital dimension). Cycles are rejected at
/// insertion time, so a constructed schema is always a DAG.
class DimensionSchema {
 public:
  /// Default-constructs an unnamed schema; prefer `Create`.
  DimensionSchema() = default;

  static Result<DimensionSchema> Create(std::string name);

  const std::string& name() const { return name_; }

  Status AddCategory(const std::string& category);

  /// Declares `child`'s members to roll up to `parent`'s members. Both
  /// categories must exist; the edge must not create a cycle.
  Status AddEdge(const std::string& child, const std::string& parent);

  bool HasCategory(const std::string& category) const {
    return by_name_.count(category) > 0;
  }
  /// Categories in insertion order.
  const std::vector<std::string>& categories() const { return categories_; }

  /// Immediate parents / children of `category` (empty when unknown).
  std::vector<std::string> Parents(const std::string& category) const;
  std::vector<std::string> Children(const std::string& category) const;

  /// True if `parent` is an immediate parent of `child`.
  bool HasDirectEdge(const std::string& child,
                     const std::string& parent) const;

  /// Transitive: `high` is reachable upward from `low`.
  bool IsAncestor(const std::string& low, const std::string& high) const;

  /// Partial-order comparison of two known categories.
  Result<CategoryOrder> Compare(const std::string& a,
                                const std::string& b) const;

  /// Length of the longest child-chain below `category` (bottom = 0).
  Result<int> Level(const std::string& category) const;

  /// Categories with no children / no parents.
  std::vector<std::string> BottomCategories() const;
  std::vector<std::string> TopCategories() const;

  /// Indented rendering of the category DAG (tops first), used to
  /// regenerate the paper's Fig. 1 textually.
  std::string ToString() const;

 private:
  explicit DimensionSchema(std::string name) : name_(std::move(name)) {}

  int Index(const std::string& category) const;

  std::string name_;
  std::vector<std::string> categories_;
  std::unordered_map<std::string, int> by_name_;
  std::vector<std::vector<int>> parents_;   // per category index
  std::vector<std::vector<int>> children_;  // per category index
};

}  // namespace mdqa::md

#endif  // MDQA_MD_DIMENSION_SCHEMA_H_
