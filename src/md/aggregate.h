#ifndef MDQA_MD_AGGREGATE_H_
#define MDQA_MD_AGGREGATE_H_

#include <string>

#include "base/result.h"
#include "md/categorical.h"
#include "md/constraints.h"

namespace mdqa::md {

/// Aggregation functions for measure roll-up.
enum class AggFn {
  kSum,
  kCount,
  kMin,
  kMax,
  kAvg,
};

const char* AggFnToString(AggFn fn);

/// OLAP roll-up over a categorical relation — the HM use case the
/// paper's model generalizes: re-aggregates the numeric
/// `measure_attribute` of `relation` from the level of categorical
/// attribute `categorical_attribute` up to `to_category` of `dimension`,
/// grouping by the rolled-up member together with every other attribute.
///
/// Summarizability is enforced first (`CheckSummarizable`): each source
/// member must reach exactly one target member, otherwise the
/// aggregation would lose or double-count data and the call fails with
/// kFailedPrecondition — the exact hazard HM's constraints exist to rule
/// out.
///
/// The result relation keeps the input attribute order, with the
/// categorical attribute renamed to `to_category` and the measure to
/// `<fn>_<measure>`. kCount ignores the measure values (but the
/// attribute must still exist and be numeric for uniformity).
Result<Relation> RollUpAggregate(const CategoricalRelation& relation,
                                 const Dimension& dimension,
                                 const std::string& categorical_attribute,
                                 const std::string& to_category,
                                 const std::string& measure_attribute,
                                 AggFn fn);

}  // namespace mdqa::md

#endif  // MDQA_MD_AGGREGATE_H_
