#ifndef MDQA_MD_TIME_UTIL_H_
#define MDQA_MD_TIME_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"

namespace mdqa::md {

/// Helpers for the paper's timestamp notation. Table I writes instants as
/// `Sep/5-12:10` and the Time dimension uses days (`Sep/5`), months
/// (`September/2005`), and years. We keep those strings as dimension
/// members (labels) and encode instants as *minutes since Jan/1 00:00 of
/// a fixed non-leap reference year* for order comparisons in queries —
/// the doctor's "around noon" window becomes an integer range.
///
/// Month names accept both the three-letter (`Sep`) and full
/// (`September`) English spellings.

/// `Sep/5-12:10` → minutes since Jan/1 00:00.
Result<int64_t> EncodeClock(std::string_view clock);

/// `Sep/5` → minutes since Jan/1 00:00 of that day's midnight.
Result<int64_t> EncodeDay(std::string_view day);

/// Day label of an instant: `Sep/5-12:10` → `Sep/5`.
Result<std::string> DayOfClock(std::string_view clock);

/// Month label of a day with an explicit year: `Sep/5` →
/// `September/2005` for year 2005 (the paper's convention).
Result<std::string> MonthOfDay(std::string_view day, int year);

/// 1..12 for a month name (`Sep`, `September`), or InvalidArgument.
Result<int> MonthNumber(std::string_view month_name);

/// Full English name for a 1..12 month number.
Result<std::string> MonthName(int month_number);

class Dimension;  // dimension.h

/// Builds a Time dimension in the paper's shape from day labels:
///
///   [Time →] Day → Month → Year → All<name>
///
/// `days` are labels like `Sep/5`; their months (`September/<year>`) and
/// the year are derived and linked automatically. `instants` (labels
/// like `Sep/5-12:10`) become members of a bottom `Time` category linked
/// to their day, which must appear in `days`. The built dimension is
/// checked strict.
Result<Dimension> BuildTimeDimension(const std::string& name, int year,
                                     const std::vector<std::string>& days,
                                     const std::vector<std::string>& instants);

}  // namespace mdqa::md

#endif  // MDQA_MD_TIME_UTIL_H_
