#ifndef MDQA_MD_DIMENSION_INSTANCE_H_
#define MDQA_MD_DIMENSION_INSTANCE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "base/result.h"
#include "md/dimension_schema.h"

namespace mdqa::md {

/// The instance of an HM dimension: members assigned to categories plus a
/// child–parent relation between members that parallels the schema's
/// category edges (`W1 < Standard < H1` in the paper's Hospital
/// dimension). Each member belongs to exactly one category.
class DimensionInstance {
 public:
  /// The instance keeps a copy of the schema so it can validate edges.
  explicit DimensionInstance(DimensionSchema schema)
      : schema_(std::move(schema)) {}

  const DimensionSchema& schema() const { return schema_; }

  Status AddMember(const std::string& category, const std::string& member);

  /// Declares `child_member < parent_member`; their categories must be
  /// connected by a schema edge in the same direction.
  Status AddChildParent(const std::string& child_member,
                        const std::string& parent_member);

  bool HasMember(const std::string& member) const {
    return member_category_.count(member) > 0;
  }

  /// Category of `member`, or NotFound.
  Result<std::string> CategoryOf(const std::string& member) const;

  /// Members of `category`, in insertion order.
  std::vector<std::string> Members(const std::string& category) const;

  size_t NumMembers() const { return member_category_.size(); }

  /// Immediate parents / children of a member.
  std::vector<std::string> ParentsOf(const std::string& member) const;
  std::vector<std::string> ChildrenOf(const std::string& member) const;

  /// Members of `to_category` reachable upward from `member` (transitive;
  /// `to_category` must be an ancestor of the member's category, or the
  /// same, in which case the result is {member}).
  Result<std::vector<std::string>> RollUp(const std::string& member,
                                          const std::string& to_category) const;

  /// Members of `to_category` reachable downward from `member`.
  Result<std::vector<std::string>> DrillDown(
      const std::string& member, const std::string& to_category) const;

  /// HM strictness: every member rolls up to at most one member of every
  /// ancestor category. Returns a witness message on the first violation.
  Status CheckStrict() const;

  /// HM homogeneity (completeness of roll-up): every member has at least
  /// one parent in every parent category of its own category.
  Status CheckHomogeneous() const;

 private:
  DimensionSchema schema_;
  std::unordered_map<std::string, std::string> member_category_;
  std::unordered_map<std::string, std::vector<std::string>> members_by_cat_;
  std::unordered_map<std::string, std::vector<std::string>> parents_;
  std::unordered_map<std::string, std::vector<std::string>> children_;
};

}  // namespace mdqa::md

#endif  // MDQA_MD_DIMENSION_INSTANCE_H_
