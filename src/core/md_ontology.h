#ifndef MDQA_CORE_MD_ONTOLOGY_H_
#define MDQA_CORE_MD_ONTOLOGY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/result.h"
#include "datalog/analysis.h"
#include "datalog/program.h"
#include "md/categorical.h"
#include "md/dimension.h"

namespace mdqa::core {

/// Direction of dimensional navigation a rule performs (paper §I, §III).
enum class Navigation {
  kNone,      ///< lateral copy, no level change
  kUpward,    ///< child-level data generates parent-level data (rule (7))
  kDownward,  ///< parent-level data generates child-level data (rule (8))
  kMixed,     ///< both within one rule
};

const char* NavigationToString(Navigation n);

/// Which of the paper's syntactic shapes a dimensional rule matches.
enum class RuleForm {
  kForm4,   ///< existentials only on non-categorical attributes
  kForm10,  ///< existential categorical variables / multi-atom head
};

/// A validated dimensional rule with its classification.
struct DimensionalRule {
  datalog::Rule rule;
  RuleForm form = RuleForm::kForm4;
  Navigation navigation = Navigation::kNone;
};

/// Aggregate analysis of the ontology (paper §III–IV).
struct OntologyProperties {
  bool weakly_sticky = false;
  bool sticky = false;
  bool weakly_acyclic = false;
  std::string class_name;
  /// Paper's sufficient separability condition: every dimensional EGD
  /// equates variables occurring only at categorical positions, and no
  /// form-(10) rule is present.
  bool separable_egds = false;
  bool has_form10 = false;
  /// All dimensional rules navigate upward (or not at all) — the class
  /// with the FO/UCQ rewriting of §IV.
  bool upward_only = false;
};

/// The paper's multidimensional ontology `M = (S_M, D_M, Σ_M)`:
/// dimensions contribute the category predicates `K` and parent–child
/// predicates `O` (with their member facts), categorical relations
/// contribute `R` (with their data), and Σ_M holds the dimensional rules
/// (forms (4)/(10)) and dimensional constraints (EGDs of form (2),
/// negative constraints of form (3)). Referential constraints (form (1))
/// are enforced natively by `ValidateReferential`.
///
/// Rules and constraints are written in the parser's Datalog± syntax and
/// validated against the declared dimensional structure at add time.
class MdOntology {
 public:
  MdOntology();

  const std::shared_ptr<datalog::Vocabulary>& vocab() const { return vocab_; }

  /// Registers a dimension; its category and edge predicate names must be
  /// globally fresh.
  Status AddDimension(md::Dimension dimension);

  /// Registers a categorical relation; its categorical attributes must
  /// reference registered dimensions/categories.
  Status AddCategoricalRelation(md::CategoricalRelation relation);

  /// True if `name` is a dimensional predicate of this ontology (category,
  /// parent-child, or categorical relation).
  bool HasPredicate(const std::string& name) const;

  const md::Dimension* FindDimension(const std::string& name) const;
  const md::CategoricalRelation* FindCategoricalRelation(
      const std::string& name) const;
  std::vector<std::string> DimensionNames() const;
  std::vector<std::string> CategoricalRelationNames() const;

  /// Parses and adds a dimensional rule (a TGD over categorical, edge and
  /// category predicates), validating it against form (4) or (10) and
  /// classifying its navigation direction.
  Status AddDimensionalRule(const std::string& text);

  /// Parses and adds a dimensional constraint: an EGD (form (2)) or a
  /// negative constraint (form (3)).
  Status AddDimensionalConstraint(const std::string& text);

  /// Escape hatch: adds arbitrary Datalog± statements (rules or facts)
  /// without dimensional-form validation — used by the quality-context
  /// layer for contextual predicates.
  Status AddRawStatements(const std::string& text);

  const std::vector<DimensionalRule>& dimensional_rules() const {
    return dimensional_rules_;
  }
  const std::vector<datalog::Rule>& constraints() const {
    return constraints_;
  }
  const std::vector<md::Dimension>& dimensions() const { return dimensions_; }
  /// Statements added through the AddRawStatements escape hatch — the
  /// part of the ontology that bypassed dimensional-form validation and
  /// that mdqa_lint audits after the fact.
  const datalog::Program& raw_statements() const { return raw_; }

  /// True when position `idx` of predicate `pred` is bound to a category
  /// (a categorical attribute, a category predicate's argument, or a
  /// parent-child predicate's argument).
  bool IsCategoricalPosition(uint32_t pred, size_t idx) const {
    return !CategoryAt(pred, idx).empty();
  }
  /// True when `pred` is a dimensional predicate of this ontology.
  bool IsDimensionalPredicate(uint32_t pred) const {
    return FindPred(pred) != nullptr;
  }

  /// Public entry to the form classifier, for the linter: which paper form
  /// a TGD matches (and its navigation), or kInvalidArgument explaining
  /// why it matches none.
  Result<DimensionalRule> ClassifyDimensionalRule(
      const datalog::Rule& rule) const {
    return ClassifyRule(rule);
  }

  /// Enforces the paper's form-(1) referential constraints on every
  /// categorical relation (fast native path).
  Status ValidateReferential() const;

  /// Emits the form-(1) constraints literally, as negative constraints
  /// with stratified negation (`! :- R(x̄), not K(x_i).`), into `program`.
  /// Check them against extensional data (see the .cc comment on
  /// form-(10) nulls).
  Status EmitReferentialConstraints(datalog::Program* program) const;

  /// Assembles the full Datalog± program: dimension facts, categorical
  /// data, dimensional rules, constraints, and raw statements, all over
  /// the shared vocabulary.
  Result<datalog::Program> Compile() const;

  /// Classifies the compiled TGD set and checks the paper's claims
  /// (weak stickiness, separability, upward-only-ness).
  Result<OntologyProperties> Analyze() const;

  /// Multi-line dump: dimensions (Fig. 1 rendering), relations, rules.
  std::string ToString() const;

 private:
  // What a predicate name means within this ontology.
  enum class PredKind { kCategory, kEdge, kCategoricalRelation, kOther };
  struct PredInfo {
    PredKind kind = PredKind::kOther;
    std::string dimension;   // kCategory, kEdge
    std::string parent_cat;  // kEdge
    std::string child_cat;   // kEdge
    int relation_index = -1;  // kCategoricalRelation
  };

  const PredInfo* FindPred(uint32_t pred_id) const;
  Result<DimensionalRule> ClassifyRule(const datalog::Rule& rule) const;
  Status ValidateConstraintBody(const datalog::Rule& rule) const;

  // Category binding of position `idx` of predicate `pred` (empty string
  // when non-categorical or unknown).
  std::string CategoryAt(uint32_t pred, size_t idx) const;

  // True if a's category is a (transitive) ancestor of b's in the same
  // dimension.
  bool CategoryAbove(const std::string& a, const std::string& b) const;

  std::shared_ptr<datalog::Vocabulary> vocab_;
  std::vector<md::Dimension> dimensions_;
  std::map<std::string, size_t> dimension_index_;
  std::vector<md::CategoricalRelation> relations_;
  std::map<std::string, size_t> relation_index_;
  std::map<uint32_t, PredInfo> pred_info_;
  std::vector<DimensionalRule> dimensional_rules_;
  std::vector<datalog::Rule> constraints_;
  datalog::Program raw_;  // contextual extras added via AddRawStatements
};

}  // namespace mdqa::core

#endif  // MDQA_CORE_MD_ONTOLOGY_H_
