#include "core/md_ontology.h"

#include <algorithm>
#include <unordered_set>

#include "datalog/parser.h"

namespace mdqa::core {

using datalog::Atom;
using datalog::Program;
using datalog::Rule;
using datalog::RuleKind;
using datalog::Term;

const char* NavigationToString(Navigation n) {
  switch (n) {
    case Navigation::kNone:
      return "none";
    case Navigation::kUpward:
      return "upward";
    case Navigation::kDownward:
      return "downward";
    case Navigation::kMixed:
      return "mixed";
  }
  return "?";
}

MdOntology::MdOntology()
    : vocab_(std::make_shared<datalog::Vocabulary>()), raw_(vocab_) {}

const MdOntology::PredInfo* MdOntology::FindPred(uint32_t pred_id) const {
  auto it = pred_info_.find(pred_id);
  return it == pred_info_.end() ? nullptr : &it->second;
}

Status MdOntology::AddDimension(md::Dimension dimension) {
  const std::string& name = dimension.name();
  if (dimension_index_.count(name) > 0) {
    return Status::AlreadyExists("dimension '" + name + "' already added");
  }
  const md::DimensionSchema& schema = dimension.schema();

  // Intern category predicates (unary) and edge predicates (binary),
  // rejecting name collisions with anything already declared.
  std::vector<std::pair<uint32_t, PredInfo>> pending;
  for (const std::string& category : schema.categories()) {
    MDQA_ASSIGN_OR_RETURN(uint32_t id,
                          vocab_->InternPredicate(category, /*arity=*/1));
    if (pred_info_.count(id) > 0) {
      return Status::AlreadyExists("category predicate '" + category +
                                   "' collides with an existing predicate");
    }
    PredInfo info;
    info.kind = PredKind::kCategory;
    info.dimension = name;
    pending.emplace_back(id, std::move(info));
  }
  for (const std::string& child : schema.categories()) {
    for (const std::string& parent : schema.Parents(child)) {
      std::string edge_name = md::Dimension::EdgePredicate(parent, child);
      MDQA_ASSIGN_OR_RETURN(uint32_t id,
                            vocab_->InternPredicate(edge_name, /*arity=*/2));
      if (pred_info_.count(id) > 0) {
        return Status::AlreadyExists("edge predicate '" + edge_name +
                                     "' collides with an existing predicate");
      }
      PredInfo info;
      info.kind = PredKind::kEdge;
      info.dimension = name;
      info.parent_cat = parent;
      info.child_cat = child;
      pending.emplace_back(id, std::move(info));
    }
  }
  for (auto& [id, info] : pending) pred_info_.emplace(id, std::move(info));
  dimension_index_.emplace(name, dimensions_.size());
  dimensions_.push_back(std::move(dimension));
  return Status::Ok();
}

Status MdOntology::AddCategoricalRelation(md::CategoricalRelation relation) {
  const std::string& name = relation.name();
  if (relation_index_.count(name) > 0) {
    return Status::AlreadyExists("categorical relation '" + name +
                                 "' already added");
  }
  for (const md::CategoricalAttribute& a : relation.attributes()) {
    if (!a.is_categorical) continue;
    const md::Dimension* dim = FindDimension(a.dimension);
    if (dim == nullptr) {
      return Status::NotFound("attribute '" + a.name + "' of " + name +
                              " references unknown dimension '" + a.dimension +
                              "'");
    }
    if (!dim->schema().HasCategory(a.category)) {
      return Status::NotFound("attribute '" + a.name + "' of " + name +
                              " references unknown category '" + a.category +
                              "'");
    }
  }
  MDQA_ASSIGN_OR_RETURN(uint32_t id,
                        vocab_->InternPredicate(name, relation.arity()));
  if (pred_info_.count(id) > 0) {
    return Status::AlreadyExists("categorical relation '" + name +
                                 "' collides with an existing predicate");
  }
  PredInfo info;
  info.kind = PredKind::kCategoricalRelation;
  info.relation_index = static_cast<int>(relations_.size());
  pred_info_.emplace(id, std::move(info));
  relation_index_.emplace(name, relations_.size());
  relations_.push_back(std::move(relation));
  return Status::Ok();
}

bool MdOntology::HasPredicate(const std::string& name) const {
  uint32_t id = vocab_->FindPredicate(name);
  return id != StringPool::kNotFound && pred_info_.count(id) > 0;
}

const md::Dimension* MdOntology::FindDimension(const std::string& name) const {
  auto it = dimension_index_.find(name);
  return it == dimension_index_.end() ? nullptr : &dimensions_[it->second];
}

const md::CategoricalRelation* MdOntology::FindCategoricalRelation(
    const std::string& name) const {
  auto it = relation_index_.find(name);
  return it == relation_index_.end() ? nullptr : &relations_[it->second];
}

std::vector<std::string> MdOntology::DimensionNames() const {
  std::vector<std::string> out;
  for (const md::Dimension& d : dimensions_) out.push_back(d.name());
  return out;
}

std::vector<std::string> MdOntology::CategoricalRelationNames() const {
  std::vector<std::string> out;
  for (const md::CategoricalRelation& r : relations_) out.push_back(r.name());
  return out;
}

std::string MdOntology::CategoryAt(uint32_t pred, size_t idx) const {
  const PredInfo* info = FindPred(pred);
  if (info == nullptr) return "";
  switch (info->kind) {
    case PredKind::kCategory:
      return idx == 0 ? vocab_->PredicateName(pred) : "";
    case PredKind::kEdge:
      if (idx == 0) return info->parent_cat;
      if (idx == 1) return info->child_cat;
      return "";
    case PredKind::kCategoricalRelation: {
      const md::CategoricalRelation& rel =
          relations_[static_cast<size_t>(info->relation_index)];
      if (idx >= rel.arity()) return "";
      const md::CategoricalAttribute& a = rel.attributes()[idx];
      return a.is_categorical ? a.category : "";
    }
    case PredKind::kOther:
      return "";
  }
  return "";
}

bool MdOntology::CategoryAbove(const std::string& a,
                               const std::string& b) const {
  if (a.empty() || b.empty()) return false;
  for (const md::Dimension& d : dimensions_) {
    if (d.schema().HasCategory(a) && d.schema().HasCategory(b)) {
      return d.schema().IsAncestor(/*low=*/b, /*high=*/a);
    }
  }
  return false;
}

namespace {

// Parses `text` expecting exactly one statement (a rule), sharing `vocab`.
Result<Rule> ParseSingleRule(const std::string& text,
                             const std::shared_ptr<datalog::Vocabulary>& vocab) {
  Program scratch(vocab);
  MDQA_RETURN_IF_ERROR(datalog::Parser::ParseInto(text, &scratch));
  if (scratch.rules().size() != 1 || !scratch.facts().empty()) {
    return Status::InvalidArgument(
        "expected exactly one rule statement, got " +
        std::to_string(scratch.rules().size()) + " rules and " +
        std::to_string(scratch.facts().size()) + " facts");
  }
  return scratch.rules()[0];
}

bool OccursIn(const std::vector<Atom>& atoms, uint32_t var) {
  for (const Atom& a : atoms) {
    for (Term t : a.terms) {
      if (t.IsVariable() && t.id() == var) return true;
    }
  }
  return false;
}

}  // namespace

Result<DimensionalRule> MdOntology::ClassifyRule(const Rule& rule) const {
  if (!rule.IsTgd()) {
    return Status::InvalidArgument("dimensional rules must be TGDs");
  }
  if (rule.HasNegation()) {
    return Status::InvalidArgument(
        "dimensional rules (forms (4)/(10)) are negation-free; use "
        "AddDimensionalConstraint or AddRawStatements for negation");
  }
  // Body: only dimensional predicates.
  for (const Atom& a : rule.body) {
    const PredInfo* info = FindPred(a.predicate);
    if (info == nullptr) {
      return Status::InvalidArgument(
          "body predicate '" + vocab_->PredicateName(a.predicate) +
          "' is not a dimensional predicate (category, parent-child, or "
          "categorical relation); use AddRawStatements for contextual rules");
    }
  }
  // Head: categorical relation atoms, plus edge atoms (form (10) only).
  size_t head_catrel_atoms = 0;
  size_t head_edge_atoms = 0;
  for (const Atom& a : rule.head) {
    const PredInfo* info = FindPred(a.predicate);
    if (info == nullptr) {
      return Status::InvalidArgument(
          "head predicate '" + vocab_->PredicateName(a.predicate) +
          "' is not a dimensional predicate");
    }
    if (info->kind == PredKind::kCategoricalRelation) {
      ++head_catrel_atoms;
    } else if (info->kind == PredKind::kEdge) {
      ++head_edge_atoms;
    } else {
      return Status::InvalidArgument(
          "head atoms must be categorical relations or parent-child "
          "predicates, not category predicates");
    }
  }
  if (head_catrel_atoms != 1) {
    return Status::InvalidArgument(
        "a dimensional rule must have exactly one categorical-relation head "
        "atom (split conjunctive heads per the paper's footnote 2)");
  }

  const std::vector<uint32_t> existential = rule.ExistentialVariables();
  const std::unordered_set<uint32_t> exist_set(existential.begin(),
                                               existential.end());

  // Does any existential variable sit at a categorical position?
  bool existential_categorical = false;
  for (const Atom& a : rule.head) {
    for (size_t i = 0; i < a.terms.size(); ++i) {
      Term t = a.terms[i];
      if (t.IsVariable() && exist_set.count(t.id()) > 0 &&
          !CategoryAt(a.predicate, i).empty()) {
        existential_categorical = true;
      }
    }
  }

  DimensionalRule out;
  out.rule = rule;
  out.form = (head_edge_atoms > 0 || existential_categorical)
                 ? RuleForm::kForm10
                 : RuleForm::kForm4;

  if (out.form == RuleForm::kForm4) {
    // Paper's side condition: variables shared between body atoms occur
    // only at categorical positions of categorical relations.
    for (uint32_t v : rule.BodyVariables()) {
      size_t atom_count = 0;
      bool at_plain_catrel_pos = false;
      for (const Atom& a : rule.body) {
        bool in_atom = false;
        for (size_t i = 0; i < a.terms.size(); ++i) {
          Term t = a.terms[i];
          if (!t.IsVariable() || t.id() != v) continue;
          in_atom = true;
          const PredInfo* info = FindPred(a.predicate);
          if (info->kind == PredKind::kCategoricalRelation &&
              CategoryAt(a.predicate, i).empty()) {
            at_plain_catrel_pos = true;
          }
        }
        if (in_atom) ++atom_count;
      }
      if (atom_count >= 2 && at_plain_catrel_pos) {
        return Status::InvalidArgument(
            "form (4) violation: join variable '" + vocab_->VariableName(v) +
            "' occurs at a non-categorical attribute; shared body variables "
            "must be categorical");
      }
    }
  } else {
    // Form (10) level condition: body categorical attributes must refer to
    // categories at the same or a higher level than the head's, per
    // dimension.
    for (const Atom& ha : rule.head) {
      const PredInfo* hinfo = FindPred(ha.predicate);
      if (hinfo->kind != PredKind::kCategoricalRelation) continue;
      for (size_t i = 0; i < ha.terms.size(); ++i) {
        std::string c_head = CategoryAt(ha.predicate, i);
        if (c_head.empty()) continue;
        for (const Atom& ba : rule.body) {
          const PredInfo* binfo = FindPred(ba.predicate);
          if (binfo->kind != PredKind::kCategoricalRelation) continue;
          for (size_t j = 0; j < ba.terms.size(); ++j) {
            std::string c_body = CategoryAt(ba.predicate, j);
            if (c_body.empty()) continue;
            // Only compare within the same dimension.
            bool same_dim = false;
            for (const md::Dimension& d : dimensions_) {
              if (d.schema().HasCategory(c_head) &&
                  d.schema().HasCategory(c_body)) {
                same_dim = true;
                break;
              }
            }
            if (!same_dim) continue;
            if (c_body != c_head && !CategoryAbove(c_body, c_head)) {
              return Status::InvalidArgument(
                  "form (10) violation: body category " + c_body +
                  " is below head category " + c_head +
                  "; downward rules must navigate from higher levels");
            }
          }
        }
      }
    }
  }

  // Navigation classification via the paper's join criterion: for a body
  // parent-child atom D(p, c), upward navigation when the child joins a
  // body categorical atom and the parent flows to the head, downward when
  // the parent joins the body and the child flows to the head.
  bool up = false;
  bool down = false;
  auto at_body_categorical_position = [&](Term t) {
    if (!t.IsVariable()) return false;
    for (const Atom& a : rule.body) {
      const PredInfo* info = FindPred(a.predicate);
      if (info->kind != PredKind::kCategoricalRelation) continue;
      for (size_t i = 0; i < a.terms.size(); ++i) {
        if (a.terms[i] == t && !CategoryAt(a.predicate, i).empty()) {
          return true;
        }
      }
    }
    return false;
  };
  for (const Atom& a : rule.body) {
    const PredInfo* info = FindPred(a.predicate);
    if (info->kind != PredKind::kEdge || a.terms.size() != 2) continue;
    Term parent = a.terms[0];
    Term child = a.terms[1];
    bool parent_in_head =
        parent.IsVariable() && OccursIn(rule.head, parent.id());
    bool child_in_head = child.IsVariable() && OccursIn(rule.head, child.id());
    if (at_body_categorical_position(child) && parent_in_head) up = true;
    if (at_body_categorical_position(parent) && child_in_head) down = true;
  }
  if (head_edge_atoms > 0 || existential_categorical) down = true;
  out.navigation = up && down ? Navigation::kMixed
                   : up       ? Navigation::kUpward
                   : down     ? Navigation::kDownward
                              : Navigation::kNone;
  return out;
}

Status MdOntology::AddDimensionalRule(const std::string& text) {
  MDQA_ASSIGN_OR_RETURN(Rule rule, ParseSingleRule(text, vocab_));
  MDQA_ASSIGN_OR_RETURN(DimensionalRule classified, ClassifyRule(rule));
  dimensional_rules_.push_back(std::move(classified));
  return Status::Ok();
}

Status MdOntology::ValidateConstraintBody(const Rule& rule) const {
  for (const Atom& a : rule.body) {
    if (FindPred(a.predicate) == nullptr) {
      return Status::InvalidArgument(
          "constraint body predicate '" + vocab_->PredicateName(a.predicate) +
          "' is not a dimensional predicate");
    }
  }
  for (const Atom& a : rule.negated) {
    if (FindPred(a.predicate) == nullptr) {
      return Status::InvalidArgument(
          "negated constraint predicate '" +
          vocab_->PredicateName(a.predicate) +
          "' is not a dimensional predicate");
    }
  }
  return Status::Ok();
}

Status MdOntology::EmitReferentialConstraints(datalog::Program* program) const {
  // The paper's form (1), literally: `⊥ ← R(ē; ā), ¬K(e)` for every
  // categorical attribute. Evaluate these against *extensional* data:
  // form-(10) rules intentionally invent child members as labeled nulls,
  // which closed-world negation would flag (the paper notes these rules
  // "may generate new members"). ValidateReferential() is the fast path
  // with the same semantics.
  for (const md::CategoricalRelation& rel : relations_) {
    uint32_t rel_pred = vocab_->FindPredicate(rel.name());
    for (size_t i : rel.CategoricalPositions()) {
      const md::CategoricalAttribute& attr = rel.attributes()[i];
      uint32_t cat_pred = vocab_->FindPredicate(attr.category);
      if (rel_pred == StringPool::kNotFound ||
          cat_pred == StringPool::kNotFound) {
        return Status::Internal("referential constraint on unknown predicate");
      }
      Rule nc;
      nc.kind = RuleKind::kConstraint;
      nc.label = "form(1) " + rel.name() + "." + attr.name;
      std::vector<Term> vars;
      for (size_t j = 0; j < rel.arity(); ++j) {
        vars.push_back(vocab_->Var("$ref" + std::to_string(j)));
      }
      nc.body.push_back(Atom(rel_pred, vars));
      nc.negated.push_back(Atom(cat_pred, {vars[i]}));
      MDQA_RETURN_IF_ERROR(program->AddRule(std::move(nc)));
    }
  }
  return Status::Ok();
}

Status MdOntology::AddDimensionalConstraint(const std::string& text) {
  MDQA_ASSIGN_OR_RETURN(Rule rule, ParseSingleRule(text, vocab_));
  if (!rule.IsEgd() && !rule.IsConstraint()) {
    return Status::InvalidArgument(
        "dimensional constraints must be EGDs (form (2)) or negative "
        "constraints (form (3))");
  }
  MDQA_RETURN_IF_ERROR(ValidateConstraintBody(rule));
  constraints_.push_back(std::move(rule));
  return Status::Ok();
}

Status MdOntology::AddRawStatements(const std::string& text) {
  return datalog::Parser::ParseInto(text, &raw_);
}

Status MdOntology::ValidateReferential() const {
  std::map<std::string, const md::Dimension*> dims;
  for (const md::Dimension& d : dimensions_) dims.emplace(d.name(), &d);
  for (const md::CategoricalRelation& r : relations_) {
    MDQA_RETURN_IF_ERROR(r.ValidateReferential(dims));
  }
  return Status::Ok();
}

Result<Program> MdOntology::Compile() const {
  Program program(vocab_);
  for (const md::Dimension& d : dimensions_) {
    MDQA_RETURN_IF_ERROR(d.EmitFacts(&program));
  }
  for (const md::CategoricalRelation& r : relations_) {
    MDQA_RETURN_IF_ERROR(r.EmitFacts(&program));
  }
  for (const DimensionalRule& dr : dimensional_rules_) {
    MDQA_RETURN_IF_ERROR(program.AddRule(dr.rule));
  }
  for (const Rule& c : constraints_) {
    MDQA_RETURN_IF_ERROR(program.AddRule(c));
  }
  for (const Rule& r : raw_.rules()) {
    MDQA_RETURN_IF_ERROR(program.AddRule(r));
  }
  for (const Atom& f : raw_.facts()) {
    MDQA_RETURN_IF_ERROR(program.AddFact(f));
  }
  return program;
}

Result<OntologyProperties> MdOntology::Analyze() const {
  MDQA_ASSIGN_OR_RETURN(Program program, Compile());
  datalog::ProgramAnalysis analysis(program);
  OntologyProperties props;
  props.weakly_sticky = analysis.IsWeaklySticky();
  props.sticky = analysis.IsSticky();
  props.weakly_acyclic = analysis.IsWeaklyAcyclic();
  props.class_name = analysis.ClassName();
  props.has_form10 = std::any_of(
      dimensional_rules_.begin(), dimensional_rules_.end(),
      [](const DimensionalRule& r) { return r.form == RuleForm::kForm10; });
  props.upward_only =
      !props.has_form10 &&
      std::all_of(dimensional_rules_.begin(), dimensional_rules_.end(),
                  [](const DimensionalRule& r) {
                    return r.navigation == Navigation::kUpward ||
                           r.navigation == Navigation::kNone;
                  });

  // Separability (paper §III): EGD head variables occur only at
  // categorical positions, and no form-(10) rules.
  props.separable_egds = !props.has_form10;
  for (const Rule& c : constraints_) {
    if (!c.IsEgd()) continue;
    for (uint32_t v : {c.egd_lhs.id(), c.egd_rhs.id()}) {
      for (const Atom& a : c.body) {
        for (size_t i = 0; i < a.terms.size(); ++i) {
          Term t = a.terms[i];
          if (t.IsVariable() && t.id() == v &&
              CategoryAt(a.predicate, i).empty()) {
            props.separable_egds = false;
          }
        }
      }
    }
  }
  return props;
}

std::string MdOntology::ToString() const {
  std::string out;
  for (const md::Dimension& d : dimensions_) out += d.ToString();
  for (const md::CategoricalRelation& r : relations_) {
    out += r.data().ToTable();
  }
  for (const DimensionalRule& dr : dimensional_rules_) {
    out += vocab_->RuleToString(dr.rule);
    out += "   % form(";
    out += dr.form == RuleForm::kForm4 ? "4" : "10";
    out += "), ";
    out += NavigationToString(dr.navigation);
    out += "\n";
  }
  for (const Rule& c : constraints_) {
    out += vocab_->RuleToString(c);
    out += "\n";
  }
  return out;
}

}  // namespace mdqa::core
