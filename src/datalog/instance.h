#ifndef MDQA_DATALOG_INSTANCE_H_
#define MDQA_DATALOG_INSTANCE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/result.h"
#include "datalog/program.h"
#include "datalog/segment.h"
#include "relational/database.h"

namespace mdqa::datalog {

/// Physical layout of a FactTable's probe structures. Both modes keep the
/// flattened term rows and per-row levels (the `Row()` pointer contract);
/// they differ in how equality probes are indexed.
enum class StorageMode : uint8_t {
  /// Legacy flat row store: per-position hash indexes from term to rows.
  kRow = 0,
  /// Dictionary-encoded column segments (see Segment): per-position code
  /// columns with postings, organized as immutable shared sealed segments
  /// plus one mutable overlay. The vectorized join executor
  /// (datalog/join.h) probes these block-at-a-time. Default.
  kColumnar = 1,
};

const char* StorageModeToString(StorageMode mode);

/// Deduplicated ground-fact storage for one predicate: flattened term
/// rows with a hash-based dedup table, plus per-position probe structures
/// in one of two layouts (StorageMode). Each row carries a derivation
/// level: 0 for extensional facts, and 1 + max(body levels) for
/// chase-derived facts — the level-bounded chase used for weakly-sticky
/// query answering keys off this.
///
/// A table is segmented into a *frozen base* (rows below `frozen_rows()`,
/// written before the last `MarkFrozen()`) and a *mutable overlay* (rows
/// appended since). Insertion is append-only, so freezing is purely a
/// watermark — it never copies. Snapshots share whole tables through
/// `Instance`'s copy-on-write handles; the watermark records where the
/// shared base ends when an update path appends. In columnar mode the
/// sealed segments of the chain are additionally shared *between* cloned
/// tables (immutable `shared_ptr<const Segment>`), so a copy-on-write
/// clone re-copies only the rows, dedup table and mutable overlay — the
/// dictionary/postings structures of the frozen base are never duplicated.
///
/// Every hash-keyed probe structure here (the dedup table, the row-mode
/// per-position indexes, the columnar dictionaries) verifies candidates
/// by full row/term equality before trusting them: a colliding 64-bit
/// key must never alias two rows. `set_hash_mask_for_test` forces total
/// collision so tests keep that verification load-bearing.
class FactTable {
 public:
  explicit FactTable(size_t arity, StorageMode mode = StorageMode::kColumnar)
      : arity_(arity),
        mode_(mode),
        index_(mode == StorageMode::kRow ? arity : 0),
        distinct_(arity, 0),
        overlay_(arity) {}

  size_t arity() const { return arity_; }
  size_t size() const { return levels_.size(); }
  StorageMode storage_mode() const { return mode_; }

  /// Inserts a ground row. Returns true if the row was new. If the row
  /// already exists its level is lowered to `level` when smaller.
  bool Insert(const Term* row, uint32_t level);

  bool Contains(const Term* row) const { return FindRow(row) >= 0; }

  /// Pointer to the `arity()` terms of row `i`.
  const Term* Row(uint32_t i) const { return data_.data() + i * arity_; }
  uint32_t Level(uint32_t i) const { return levels_[i]; }

  /// Marks every current row as part of the frozen base segment.
  void MarkFrozen() { frozen_rows_ = static_cast<uint32_t>(size()); }
  /// Rows below this index belong to the frozen base segment; rows at or
  /// above it are the mutable overlay appended since the last freeze.
  uint32_t frozen_rows() const { return frozen_rows_; }

  /// Row indexes whose position `pos` holds exactly term `t`, ascending.
  /// Materializes a fresh vector in columnar mode (rows gathered across
  /// segments); hot paths should prefer `ProbeRef`/`ProbeCount`.
  std::vector<uint32_t> Probe(size_t pos, Term t) const;

  /// Zero-copy variant: a pointer to the (verified) row list when the
  /// layout holds one contiguously — row mode always, columnar mode only
  /// when the term lives entirely in a single segment's postings with no
  /// offset (i.e. the first segment). nullptr means "materialize via
  /// Probe".
  const std::vector<uint32_t>* ProbeRef(size_t pos, Term t) const;

  /// Number of rows `Probe(pos, t)` would return, without materializing.
  size_t ProbeCount(size_t pos, Term t) const;

  /// Number of distinct terms at position `pos`, maintained incrementally
  /// on insert. Feeds the cost model's join-selectivity estimates and the
  /// vectorized executor's batch-build heuristic.
  size_t DistinctAt(size_t pos) const {
    return pos < distinct_.size() ? distinct_[pos] : 0;
  }

  /// Columnar segment chain, for the vectorized join executor: sealed
  /// segments in base order, then the mutable overlay (always last, may
  /// be empty). Zero segments in row mode.
  size_t NumSegments() const {
    return mode_ == StorageMode::kColumnar ? sealed_.size() + 1 : 0;
  }
  struct SegmentView {
    const Segment* segment;
    uint32_t base;  ///< global row index of the segment's first row
  };
  SegmentView SegmentAt(size_t k) const {
    return k < sealed_.size()
               ? SegmentView{sealed_[k].get(), sealed_base_[k]}
               : SegmentView{&overlay_, overlay_base_};
  }

  /// Seals the mutable overlay into the shared segment chain (columnar
  /// mode; no-op when the overlay is empty or the mode is kRow). Called
  /// by `Instance::Freeze` on unshared tables only: sealed segments are
  /// immutable and may be read concurrently by snapshot holders, so a
  /// shared table must never restructure its chain.
  void SealOverlay();

  /// Capacity-based estimate of heap bytes held by this table (rows,
  /// levels, dedup map, and the per-position probe structures of the
  /// active layout). Feeds the execution budget's memory high-water
  /// accounting. Sealed segments shared with a cloned table still count
  /// in full here (the estimate is per-view).
  uint64_t MemoryEstimateBytes() const;

  /// Test-only: masks every hash key (dedup rows, row-mode index terms,
  /// columnar dictionary terms) so distinct keys collide; mask 0 forces
  /// every key into one bucket. Call on an empty table.
  void set_hash_mask_for_test(uint64_t mask);

 private:
  int64_t FindRow(const Term* row) const;
  size_t HashRow(const Term* row) const;
  /// True when `t` occurs at position `pos` of any sealed segment.
  bool InSealedDict(size_t pos, Term t) const;

  size_t arity_;
  StorageMode mode_;
  std::vector<Term> data_;        // flattened rows (both modes)
  std::vector<uint32_t> levels_;  // per-row derivation level
  std::unordered_map<size_t, std::vector<uint32_t>> dedup_;  // hash -> rows
  // Row mode: per-position hash indexes, term-hash -> verified (term,
  // rows) buckets.
  std::vector<
      std::unordered_map<uint64_t,
                         std::vector<std::pair<Term, std::vector<uint32_t>>>>>
      index_;
  std::vector<size_t> distinct_;  // per-position distinct terms (both modes)
  // Columnar mode: sealed immutable segments (shared across CoW clones)
  // then the private mutable overlay.
  std::vector<std::shared_ptr<const Segment>> sealed_;
  std::vector<uint32_t> sealed_base_;  // global base row of sealed_[k]
  Segment overlay_;
  uint32_t overlay_base_ = 0;  // global base row of the overlay
  uint32_t frozen_rows_ = 0;   // base/overlay watermark (see MarkFrozen)
  uint64_t hash_mask_ = ~0ull;
  std::vector<uint8_t> fresh_scratch_;  // per-insert new-term flags
};

/// Per-predicate statistics of one table: row count and per-position
/// distinct-term counts. Order-independent aggregates, so two instances
/// holding the same fact multiset (e.g. an incremental session and a
/// from-scratch rebuild) report identical statistics.
struct TableStatistics {
  uint64_t rows = 0;
  std::vector<uint64_t> distinct;  ///< one entry per position
};

/// Snapshot statistics of a whole instance, collected once per snapshot
/// by the holders of long-lived instances (PreparedContext) and consumed
/// by `analysis::CostModel`.
struct InstanceStatistics {
  std::unordered_map<uint32_t, TableStatistics> tables;
  uint64_t total_facts = 0;
  uint64_t max_rows = 0;  ///< largest single table
};

/// A (possibly null-containing) Datalog± instance: fact tables keyed by
/// predicate id, sharing a `Vocabulary`. This is what the chase extends
/// and what conjunctive queries are evaluated against.
///
/// Tables are held through copy-on-write handles: copying an `Instance`
/// is O(#predicates) and *shares* every table with the source; the first
/// mutation of a table through either copy clones just that table. A
/// copy therefore acts as a cheap read-only snapshot — this is what lets
/// `PreparedContext::ApplyUpdate` hand out a new session that shares all
/// unchanged tables with its predecessor.
///
/// Every mutation bumps a generation counter, so resume state captured
/// against one generation (`ChaseFrontier`) can detect that the instance
/// has since been touched.
class Instance {
 public:
  explicit Instance(std::shared_ptr<Vocabulary> vocab,
                    StorageMode storage = StorageMode::kColumnar)
      : vocab_(std::move(vocab)), storage_(storage) {}

  /// An instance holding exactly `program`'s extensional facts (level 0).
  static Instance FromProgram(const Program& program,
                              StorageMode storage = StorageMode::kColumnar);

  const std::shared_ptr<Vocabulary>& vocab() const { return vocab_; }

  /// Physical layout of this instance's tables, fixed at construction.
  /// Copies (snapshots) inherit it; rebuilds (EGD canonicalization, the
  /// incremental-extension fallback) must construct with the same mode.
  StorageMode storage_mode() const { return storage_; }

  /// Adds a ground fact at `level`; returns true if new.
  bool AddFact(const Atom& fact, uint32_t level);

  bool Contains(const Atom& fact) const;

  /// nullptr when the predicate has no facts yet.
  const FactTable* Table(uint32_t pred) const;
  /// A mutable handle to the predicate's table, cloning it first when it
  /// is shared with a snapshot (copy-on-write). Bumps the generation.
  FactTable* MutableTable(uint32_t pred, size_t arity);

  /// Predicate ids having at least one fact.
  std::vector<uint32_t> Predicates() const;

  size_t TotalFacts() const;
  size_t CountFacts(uint32_t pred) const;

  /// Row counts and per-position distinct counts of every table, by
  /// value. Cheap (O(#tables × arity), reading the incrementally
  /// maintained distinct counters); the instance itself caches nothing,
  /// so concurrent snapshot readers stay race-free — callers holding a
  /// snapshot collect once and reuse.
  InstanceStatistics CollectStatistics() const;

  /// Sum of the tables' MemoryEstimateBytes. Tables shared with another
  /// instance still count in full here (the estimate is per-view).
  uint64_t MemoryEstimateBytes() const;

  /// Monotonically increasing mutation counter: bumped by every AddFact /
  /// MutableTable / Load*. Two reads returning the same value bracket a
  /// mutation-free window.
  uint64_t generation() const { return generation_; }

  /// Marks every table's current rows as the frozen base segment (see
  /// FactTable::MarkFrozen). Purely a watermark; no copying. In columnar
  /// mode, tables not shared with any snapshot additionally seal their
  /// mutable overlay into the immutable segment chain, so future
  /// copy-on-write clones share the frozen base's probe structures
  /// (shared tables are left untouched — concurrent snapshot readers may
  /// be probing their segments).
  void Freeze();

  /// Raises the generation counter to at least `floor + 1`. Used when an
  /// instance is rebuilt from scratch (EGD canonicalization) to keep the
  /// counter monotone relative to its predecessor, so a frontier captured
  /// against the old object can never collide with the new one.
  void EnsureGenerationAbove(uint64_t floor) {
    if (generation_ <= floor) generation_ = floor + 1;
  }

  /// A cheap structure-sharing snapshot (identical to the copy
  /// constructor; named for intent at call sites).
  Instance Snapshot() const { return *this; }

  /// True when this instance and `other` hold the *same* table object
  /// for `pred` (structure sharing, not equality of contents).
  bool SharesTableWith(const Instance& other, uint32_t pred) const;

  /// All facts of `pred` as atoms, in row order — i.e. first-insertion
  /// order, which EGD canonicalization rebuilds and level updates never
  /// permute. This order is part of the contract (asserted by
  /// instance_test): the differential parallel-vs-serial harness and the
  /// first-derived ordering of CqEvaluator::Answers both key off row
  /// order being a deterministic function of the insertion sequence.
  std::vector<Atom> Facts(uint32_t pred) const;

  /// Loads every row of `rel` as facts of predicate `rel.name()`.
  Status LoadRelation(const Relation& rel);

  /// Loads every relation of `db`.
  Status LoadDatabase(const Database& db);

  /// Exports predicate `pred` as a `Relation` named `name` with the given
  /// attribute names (defaults a0..aN-1). Labeled nulls are rendered as
  /// their display string when `keep_nulls`, otherwise rows containing
  /// nulls are dropped (certain-answer semantics).
  Result<Relation> ExportRelation(uint32_t pred, const std::string& name,
                                  std::vector<std::string> attr_names,
                                  bool keep_nulls) const;

  /// Deterministic listing `P(a, b). ...` sorted by predicate then row.
  std::string ToString() const;

  /// Like ToString, but labeled nulls are renumbered canonically (by
  /// first appearance in the sorted listing) before rendering — two
  /// instances equal up to a renaming of nulls produce the same string.
  /// An incremental chase extension and a from-scratch re-chase derive
  /// the same facts but may mint nulls in a different order; this is the
  /// comparison the differential harness uses for null-creating
  /// programs. Canonical whenever facts are distinguishable modulo null
  /// identity (automorphic null groups may tie-break differently).
  std::string ToCanonicalString() const;

 private:
  FactTable* EnsureOwnedTable(uint32_t pred, size_t arity);

  std::shared_ptr<Vocabulary> vocab_;
  StorageMode storage_;
  std::unordered_map<uint32_t, std::shared_ptr<FactTable>> tables_;
  uint64_t generation_ = 0;
};

}  // namespace mdqa::datalog

#endif  // MDQA_DATALOG_INSTANCE_H_
