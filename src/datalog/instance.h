#ifndef MDQA_DATALOG_INSTANCE_H_
#define MDQA_DATALOG_INSTANCE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/result.h"
#include "datalog/program.h"
#include "relational/database.h"

namespace mdqa::datalog {

/// Deduplicated ground-fact storage for one predicate: a flat row store
/// with a hash-based dedup table and always-maintained per-position term
/// indexes (dimensional navigation is join-heavy, so probes dominate).
/// Each row carries a derivation level: 0 for extensional facts, and
/// 1 + max(body levels) for chase-derived facts — the level-bounded chase
/// used for weakly-sticky query answering keys off this.
class FactTable {
 public:
  explicit FactTable(size_t arity) : arity_(arity), index_(arity) {}

  size_t arity() const { return arity_; }
  size_t size() const { return levels_.size(); }

  /// Inserts a ground row. Returns true if the row was new. If the row
  /// already exists its level is lowered to `level` when smaller.
  bool Insert(const Term* row, uint32_t level);

  bool Contains(const Term* row) const { return FindRow(row) >= 0; }

  /// Pointer to the `arity()` terms of row `i`.
  const Term* Row(uint32_t i) const { return data_.data() + i * arity_; }
  uint32_t Level(uint32_t i) const { return levels_[i]; }

  /// Row indexes whose position `pos` holds exactly term `t` (empty vector
  /// reference if none).
  const std::vector<uint32_t>& Probe(size_t pos, Term t) const;

  /// Capacity-based estimate of heap bytes held by this table (rows,
  /// levels, dedup map, per-position indexes). Feeds the execution
  /// budget's memory high-water accounting.
  uint64_t MemoryEstimateBytes() const;

 private:
  int64_t FindRow(const Term* row) const;

  static size_t HashRow(const Term* row, size_t arity);

  size_t arity_;
  std::vector<Term> data_;       // flattened rows
  std::vector<uint32_t> levels_;  // per-row derivation level
  std::unordered_map<size_t, std::vector<uint32_t>> dedup_;  // hash -> rows
  std::vector<std::unordered_map<uint64_t, std::vector<uint32_t>>> index_;
};

/// A (possibly null-containing) Datalog± instance: fact tables keyed by
/// predicate id, sharing a `Vocabulary`. This is what the chase extends
/// and what conjunctive queries are evaluated against.
class Instance {
 public:
  explicit Instance(std::shared_ptr<Vocabulary> vocab)
      : vocab_(std::move(vocab)) {}

  /// An instance holding exactly `program`'s extensional facts (level 0).
  static Instance FromProgram(const Program& program);

  const std::shared_ptr<Vocabulary>& vocab() const { return vocab_; }

  /// Adds a ground fact at `level`; returns true if new.
  bool AddFact(const Atom& fact, uint32_t level);

  bool Contains(const Atom& fact) const;

  /// nullptr when the predicate has no facts yet.
  const FactTable* Table(uint32_t pred) const;
  FactTable* MutableTable(uint32_t pred, size_t arity);

  /// Predicate ids having at least one fact.
  std::vector<uint32_t> Predicates() const;

  size_t TotalFacts() const;
  size_t CountFacts(uint32_t pred) const;

  /// Sum of the tables' MemoryEstimateBytes.
  uint64_t MemoryEstimateBytes() const;

  /// All facts of `pred` as atoms, in row order — i.e. first-insertion
  /// order, which EGD canonicalization rebuilds and level updates never
  /// permute. This order is part of the contract (asserted by
  /// instance_test): the differential parallel-vs-serial harness and the
  /// first-derived ordering of CqEvaluator::Answers both key off row
  /// order being a deterministic function of the insertion sequence.
  std::vector<Atom> Facts(uint32_t pred) const;

  /// Loads every row of `rel` as facts of predicate `rel.name()`.
  Status LoadRelation(const Relation& rel);

  /// Loads every relation of `db`.
  Status LoadDatabase(const Database& db);

  /// Exports predicate `pred` as a `Relation` named `name` with the given
  /// attribute names (defaults a0..aN-1). Labeled nulls are rendered as
  /// their display string when `keep_nulls`, otherwise rows containing
  /// nulls are dropped (certain-answer semantics).
  Result<Relation> ExportRelation(uint32_t pred, const std::string& name,
                                  std::vector<std::string> attr_names,
                                  bool keep_nulls) const;

  /// Deterministic listing `P(a, b). ...` sorted by predicate then row.
  std::string ToString() const;

 private:
  std::shared_ptr<Vocabulary> vocab_;
  std::unordered_map<uint32_t, FactTable> tables_;
};

}  // namespace mdqa::datalog

#endif  // MDQA_DATALOG_INSTANCE_H_
