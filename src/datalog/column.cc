#include "datalog/column.h"

namespace mdqa::datalog {

uint32_t Column::Append(Term t, bool* new_code) {
  uint32_t code = CodeOf(t);
  const bool fresh = code == kNoCode;
  if (fresh) {
    code = static_cast<uint32_t>(dict_.size());
    dict_.push_back(t);
    postings_.emplace_back();
    encode_[HashTerm(t)].push_back(code);
  }
  postings_[code].push_back(static_cast<uint32_t>(codes_.size()));
  codes_.push_back(code);
  if (new_code != nullptr) *new_code = fresh;
  return code;
}

uint32_t Column::CodeOf(Term t) const {
  auto it = encode_.find(HashTerm(t));
  if (it == encode_.end()) return kNoCode;
  // The bucket may hold codes of several distinct terms (lossy hash);
  // only a dictionary-verified candidate counts.
  for (uint32_t code : it->second) {
    if (dict_[code] == t) return code;
  }
  return kNoCode;
}

uint64_t Column::MemoryEstimateBytes() const {
  uint64_t bytes = codes_.capacity() * sizeof(uint32_t) +
                   dict_.capacity() * sizeof(Term);
  bytes += postings_.capacity() * sizeof(std::vector<uint32_t>);
  for (const auto& rows : postings_) {
    bytes += rows.capacity() * sizeof(uint32_t);
  }
  bytes += encode_.bucket_count() *
           (sizeof(uint64_t) + sizeof(std::vector<uint32_t>));
  for (const auto& [_, codes] : encode_) {
    bytes += codes.capacity() * sizeof(uint32_t);
  }
  return bytes;
}

}  // namespace mdqa::datalog
