#ifndef MDQA_DATALOG_PARSER_H_
#define MDQA_DATALOG_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"
#include "base/source_span.h"
#include "datalog/program.h"

namespace mdqa::datalog {

/// A non-fatal notice produced while parsing. The parser recovers from
/// these on its own (e.g. by dropping a duplicate rule); mdqa_lint
/// surfaces them as info-level diagnostics.
struct ParseIssue {
  enum class Kind {
    kDuplicateRule,  ///< statement restates an earlier rule and was dropped
  };
  Kind kind = Kind::kDuplicateRule;
  std::string message;
  SourceSpan span;
};

/// Machine-readable details of a parse, for diagnostics tooling. The
/// returned `Status` stays the single source of truth for success; this
/// report adds *where* a failure points and *what kind* it was, plus any
/// recovered issues.
struct ParseReport {
  enum class ErrorKind {
    kNone = 0,
    kSyntax,      ///< lexical or grammatical error
    kArity,       ///< predicate used with inconsistent arity
    kValidation,  ///< well-formed syntax but an invalid rule (Rule::Validate)
  };
  ErrorKind error_kind = ErrorKind::kNone;
  SourceSpan error_span;  ///< where the error status points (unset on success)
  std::vector<ParseIssue> issues;
};

/// Recursive-descent parser for the textual Datalog± syntax.
///
/// ```
/// % comment (# also works)                 -- to end of line
/// PatientWard("W1", "Sep/5"; "Tom Waits"). -- ground fact ( ';' == ',' )
/// PatientUnit(U, D; P) :- PatientWard(W, D; P), UnitWard(U, W).  -- TGD
/// Shifts(W, D, N, Z) :- WorkingSchedules(U, D, N, T), UnitWard(U, W).
///     -- Z not in body => existentially quantified (form (4))
/// InstitutionUnit(I, U), PatientUnit(U, D, P) :- Discharge(I, D, P).
///     -- multi-atom head with existential U (form (10))
/// T = T2 :- Therm(W, T, N), Therm(W2, T2, N2), UW(U, W), UW(U, W2). -- EGD
/// ! :- PatientWard(W, D, P), UnitWard("Intensive", W), After(D).   -- NC
/// Q(V) :- Meas(T, P, V), P = "Tom Waits", T >= 705, T <= 735.
///     -- body '=' and inequalities are built-in comparisons
/// ```
///
/// Identifiers starting with an uppercase letter or '_' are variables
/// ('_' alone is an anonymous variable, fresh per occurrence); quoted
/// strings, numbers, and lowercase identifiers are constants. `<-` is a
/// synonym for `:-`. Predicate arities are fixed at first use.
class Parser {
 public:
  /// Parses a whole program into a fresh vocabulary. With `report`
  /// non-null, fills in error location/kind and recovered issues.
  static Result<Program> ParseProgram(std::string_view text);
  static Result<Program> ParseProgram(std::string_view text,
                                      ParseReport* report);

  /// Parses statements into an existing program (sharing its vocabulary).
  /// A statement that restates a rule already in `program` (same kind,
  /// head, body — see Rule::SameAs) is dropped and recorded as a
  /// `kDuplicateRule` issue instead of inflating the chase workload.
  static Status ParseInto(std::string_view text, Program* program);
  static Status ParseInto(std::string_view text, Program* program,
                          ParseReport* report);

  /// Parses a single query `Name(args) :- body.` against `vocab`.
  static Result<ConjunctiveQuery> ParseQuery(std::string_view text,
                                             Vocabulary* vocab);

  /// Parses a single ground atom `P(c1, ..., cn)` (no trailing period
  /// required) against `vocab`.
  static Result<Atom> ParseGroundAtom(std::string_view text,
                                      Vocabulary* vocab);
};

}  // namespace mdqa::datalog

#endif  // MDQA_DATALOG_PARSER_H_
