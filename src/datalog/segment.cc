#include "datalog/segment.h"

namespace mdqa::datalog {

uint64_t Segment::MemoryEstimateBytes() const {
  uint64_t bytes = columns_.capacity() * sizeof(Column);
  for (const Column& c : columns_) bytes += c.MemoryEstimateBytes();
  return bytes;
}

void Segment::set_hash_mask_for_test(uint64_t mask) {
  for (Column& c : columns_) c.set_hash_mask_for_test(mask);
}

}  // namespace mdqa::datalog
