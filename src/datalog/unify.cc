#include "datalog/unify.h"

namespace mdqa::datalog {

Term Resolve(const Subst& subst, Term t) {
  while (t.IsVariable()) {
    auto it = subst.find(t.id());
    if (it == subst.end() || it->second == t) break;
    t = it->second;
  }
  return t;
}

Atom SubstAtom(const Subst& subst, const Atom& a) {
  Atom out(a.predicate, a.terms);
  for (Term& t : out.terms) t = Resolve(subst, t);
  return out;
}

bool MatchAtom(const Atom& pattern, const Term* fact, Subst* subst,
               std::vector<uint32_t>* trail) {
  for (size_t i = 0; i < pattern.terms.size(); ++i) {
    Term p = Resolve(*subst, pattern.terms[i]);
    if (p.IsVariable()) {
      subst->emplace(p.id(), fact[i]);
      trail->push_back(p.id());
    } else if (p != fact[i]) {
      return false;
    }
  }
  return true;
}

void UndoTrail(Subst* subst, std::vector<uint32_t>* trail, size_t mark) {
  while (trail->size() > mark) {
    subst->erase(trail->back());
    trail->pop_back();
  }
}

std::optional<Subst> UnifyAtoms(const Atom& a, const Atom& b) {
  if (a.predicate != b.predicate || a.arity() != b.arity()) {
    return std::nullopt;
  }
  Subst mgu;
  for (size_t i = 0; i < a.terms.size(); ++i) {
    Term x = Resolve(mgu, a.terms[i]);
    Term y = Resolve(mgu, b.terms[i]);
    if (x == y) continue;
    if (x.IsVariable()) {
      mgu[x.id()] = y;
    } else if (y.IsVariable()) {
      mgu[y.id()] = x;
    } else {
      return std::nullopt;  // distinct ground terms clash
    }
  }
  return mgu;
}

bool EvalComparison(const Vocabulary& vocab, CmpOp op, Term lhs, Term rhs) {
  if (lhs.IsNull() || rhs.IsNull()) {
    switch (op) {
      case CmpOp::kEq:
        return lhs == rhs;
      case CmpOp::kNe:
        return lhs != rhs;
      default:
        return false;
    }
  }
  const Value& a = vocab.ConstantValue(lhs.id());
  const Value& b = vocab.ConstantValue(rhs.id());
  // Numeric values compare numerically across int64/double.
  const bool numeric = (a.is_int() || a.is_double()) &&
                       (b.is_int() || b.is_double());
  auto lt = [&]() {
    return numeric ? a.AsNumber() < b.AsNumber() : a < b;
  };
  auto eq = [&]() {
    return numeric ? a.AsNumber() == b.AsNumber() : a == b;
  };
  switch (op) {
    case CmpOp::kEq:
      return eq();
    case CmpOp::kNe:
      return !eq();
    case CmpOp::kLt:
      return lt();
    case CmpOp::kLe:
      return lt() || eq();
    case CmpOp::kGt:
      return !lt() && !eq();
    case CmpOp::kGe:
      return !lt();
  }
  return false;
}

}  // namespace mdqa::datalog
