#ifndef MDQA_DATALOG_CQ_EVAL_H_
#define MDQA_DATALOG_CQ_EVAL_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "base/budget.h"
#include "base/result.h"
#include "datalog/instance.h"
#include "datalog/unify.h"

namespace mdqa::datalog {

/// Per-atom derivation-level window, used by the semi-naive chase: a delta
/// evaluation pins one atom to "new" facts and earlier atoms to "old" ones.
struct AtomLevelWindow {
  uint32_t min_level = 0;
  uint32_t max_level = std::numeric_limits<uint32_t>::max();
};

/// Profiling counters for one or more evaluations — wire a struct in via
/// the evaluator's constructor to see where join time goes (used by the
/// benchmarks and by tests asserting the planner uses indexes).
struct EvalStats {
  uint64_t rows_tried = 0;     ///< candidate rows examined
  uint64_t atoms_matched = 0;  ///< successful atom unifications
  uint64_t index_probes = 0;   ///< candidate sets fetched via an index
  uint64_t full_scans = 0;     ///< candidate sets requiring a table scan
  uint64_t solutions = 0;      ///< homomorphisms delivered to on_match
};

/// Evaluates conjunctive queries (atom lists + built-in comparisons) over
/// an `Instance` by backtracking join. Atom order is chosen greedily at
/// each step (most bound positions first, then smallest table); candidate
/// rows come from the per-position indexes. Comparisons prune as soon as
/// both sides are ground.
class CqEvaluator {
 public:
  /// A non-null `budget` is polled once per candidate row (probe
  /// "cq:row", clock reads amortized) so long joins honor deadlines,
  /// cancellation, and injected faults. A budget trip surfaces as the
  /// truncation status from `Enumerate` (or through the `interruption`
  /// out-params below).
  explicit CqEvaluator(const Instance& instance, EvalStats* stats = nullptr,
                       ExecutionBudget* budget = nullptr)
      : instance_(instance), stats_(stats), budget_(budget) {}

  /// Enumerates homomorphisms of `atoms ∧ ¬negated ∧ comparisons`
  /// extending `initial`; calls `on_match` with the full substitution for
  /// each. `on_match` returning false stops the enumeration early.
  /// `windows`, when non-empty, must parallel `atoms`. Negated atoms use
  /// closed-world absence from the instance and must be ground once all
  /// positive atoms are matched (safety).
  Status Enumerate(const std::vector<Atom>& atoms,
                   const std::vector<Atom>& negated,
                   const std::vector<Comparison>& comparisons,
                   const Subst& initial,
                   const std::vector<AtomLevelWindow>& windows,
                   const std::function<bool(const Subst&)>& on_match) const;

  /// Negation-free overload.
  Status Enumerate(const std::vector<Atom>& atoms,
                   const std::vector<Comparison>& comparisons,
                   const Subst& initial,
                   const std::vector<AtomLevelWindow>& windows,
                   const std::function<bool(const Subst&)>& on_match) const {
    return Enumerate(atoms, {}, comparisons, initial, windows, on_match);
  }

  /// True iff the body has at least one homomorphism extending `initial`.
  Result<bool> Satisfiable(const std::vector<Atom>& atoms,
                           const std::vector<Comparison>& comparisons,
                           const Subst& initial) const;

  /// Distinct answer tuples of an open CQ, in first-derived order. Tuples
  /// may contain labeled nulls; callers wanting certain answers filter
  /// them (see HasNull).
  ///
  /// With a null `interruption`, a budget trip is a hard error (legacy
  /// behaviour). With a non-null `interruption`, a budget trip returns
  /// the tuples found so far — a sound under-approximation — and stores
  /// the truncation status in `*interruption` (OK when complete).
  Result<std::vector<std::vector<Term>>> Answers(
      const ConjunctiveQuery& query, Status* interruption = nullptr) const;

  /// Boolean CQ: is the canonical `yes` entailed? Same `interruption`
  /// contract as `Answers`; a truncated run that found no witness
  /// reports false (sound: "not provable within budget").
  Result<bool> AnswerBoolean(const ConjunctiveQuery& query,
                             Status* interruption = nullptr) const;

  static bool HasNull(const std::vector<Term>& tuple) {
    for (Term t : tuple) {
      if (t.IsNull()) return true;
    }
    return false;
  }

 private:
  const Instance& instance_;
  EvalStats* stats_;          // optional, not owned
  ExecutionBudget* budget_;   // optional, not owned
};

}  // namespace mdqa::datalog

#endif  // MDQA_DATALOG_CQ_EVAL_H_
