#ifndef MDQA_DATALOG_TRANSFORM_H_
#define MDQA_DATALOG_TRANSFORM_H_

#include "base/result.h"
#include "datalog/program.h"

namespace mdqa::datalog {

/// The paper's footnote 2: "a rule with a conjunction in the head can be
/// transformed into a set of rules with single atoms in heads". For every
/// multi-atom-head TGD
///
///   H1(x̄1, z̄), ..., Hk(x̄k, z̄)  ←  body
///
/// introduce a fresh auxiliary predicate over the frontier and
/// existential variables and split:
///
///   Aux(frontier, z̄) ← body
///   Hi(x̄i, z̄)        ← Aux(frontier, z̄)        (i = 1..k)
///
/// The auxiliary head keeps the existentials in one place, so every head
/// atom of one firing shares the same labeled nulls — exactly the
/// semantics of the original rule. Queries over the original predicates
/// have the same certain answers; the UCQ rewriter (which requires
/// single-atom heads) becomes applicable to form-(10) rules after
/// splitting.
///
/// Auxiliary predicates are named `$aux<i>` — not expressible in the text
/// syntax, so they can never clash with user predicates (programs
/// containing them print but do not re-parse).
///
/// Single-atom-head rules, EGDs, constraints, and facts are copied
/// unchanged; the result shares the input's vocabulary.
Result<Program> SplitMultiAtomHeads(const Program& program);

}  // namespace mdqa::datalog

#endif  // MDQA_DATALOG_TRANSFORM_H_
