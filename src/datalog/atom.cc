#include "datalog/atom.h"

namespace mdqa::datalog {

const char* CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

}  // namespace mdqa::datalog
