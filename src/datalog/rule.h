#ifndef MDQA_DATALOG_RULE_H_
#define MDQA_DATALOG_RULE_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/result.h"
#include "datalog/atom.h"

namespace mdqa::datalog {

/// The three Datalog± dependency kinds.
enum class RuleKind : uint8_t {
  kTgd = 0,         ///< tuple-generating dependency (incl. plain rules)
  kEgd = 1,         ///< equality-generating dependency `x = x' ← body`
  kConstraint = 2,  ///< negative constraint `⊥ ← body`
};

/// A Datalog± dependency. TGDs may have multi-atom heads (the paper's form
/// (10) uses them) and existential head variables (variables in the head
/// that do not occur in the body are implicitly existentially quantified,
/// the standard Datalog± convention). EGDs carry the equated pair in
/// `egd_lhs/egd_rhs`; constraints have an empty head.
struct Rule {
  RuleKind kind = RuleKind::kTgd;
  std::vector<Atom> head;  ///< TGDs only; empty otherwise.
  Term egd_lhs;            ///< EGDs only.
  Term egd_rhs;            ///< EGDs only.
  std::vector<Atom> body;
  /// Negated body atoms (`not P(x̄)` in the text syntax), evaluated with
  /// stratified closed-world semantics: the atom must be absent from the
  /// (fully evaluated) lower strata. Every variable must also occur in a
  /// positive body atom (safety). The paper's referential constraints
  /// (form (1)) use this: `! :- PatientUnit(U, D, P), not Unit(U).`
  std::vector<Atom> negated;
  std::vector<Comparison> comparisons;
  std::string label;  ///< Optional name used in diagnostics.
  /// Source position of the statement's first token (unset when the rule
  /// was built programmatically). Not part of `SameAs`.
  SourceSpan span;

  bool HasNegation() const { return !negated.empty(); }

  bool IsTgd() const { return kind == RuleKind::kTgd; }
  bool IsEgd() const { return kind == RuleKind::kEgd; }
  bool IsConstraint() const { return kind == RuleKind::kConstraint; }

  /// Variable ids occurring in relational body atoms, first-seen order.
  std::vector<uint32_t> BodyVariables() const;

  /// Variable ids occurring in head atoms (TGDs), first-seen order.
  std::vector<uint32_t> HeadVariables() const;

  /// Head variables that do not occur in the body: the existentially
  /// quantified variables (∃-variables) of a TGD.
  std::vector<uint32_t> ExistentialVariables() const;

  /// Body variables that also occur in the head (the TGD frontier).
  std::vector<uint32_t> FrontierVariables() const;

  /// Number of occurrences of variable `var` in relational body atoms.
  size_t BodyOccurrences(uint32_t var) const;

  /// True for TGDs with no existential variables (plain Datalog rules).
  bool IsPlainDatalog() const {
    return IsTgd() && ExistentialVariables().empty();
  }

  /// Structural well-formedness: non-empty body; TGD has ≥1 head atom; EGD
  /// equates two body variables; comparison variables are body variables
  /// (range restriction); constraints/EGDs have no head atoms.
  Status Validate() const;

  /// Semantic equality over a shared vocabulary: same kind, head, body,
  /// negated atoms, comparisons, and EGD terms. Ignores `label` and
  /// `span`, so a rule re-stated at a different location (or under a
  /// different name) still counts as a duplicate.
  bool SameAs(const Rule& other) const;
};

/// A conjunctive query `ans(x̄) ← body`. Answer terms may include
/// constants (which are just echoed); answer variables must occur in the
/// body. A query with no answer terms is boolean.
struct ConjunctiveQuery {
  std::vector<Term> answer;
  std::vector<Atom> body;
  /// Negated atoms (safe: variables must occur in `body`), closed-world.
  std::vector<Atom> negated;
  std::vector<Comparison> comparisons;
  std::string name = "Q";

  bool HasNegation() const { return !negated.empty(); }

  bool IsBoolean() const { return answer.empty(); }

  /// Distinct answer variable ids in order of appearance in `answer`.
  std::vector<uint32_t> AnswerVariables() const;

  /// Range restriction: every answer/comparison variable occurs in body.
  Status Validate() const;
};

}  // namespace mdqa::datalog

#endif  // MDQA_DATALOG_RULE_H_
