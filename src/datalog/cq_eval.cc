#include "datalog/cq_eval.h"

#include <algorithm>

#include "datalog/join.h"

namespace mdqa::datalog {

namespace {

// Shared state of one enumeration, to keep the recursion signature small.
struct EvalState {
  // Rows between budget polls (power of two); keeps the enumeration hot
  // loop free of atomics while bounding cancellation latency.
  static constexpr uint32_t kBudgetBatch = 64;

  const Instance* instance;
  EvalStats* stats;          // may be null
  ExecutionBudget* budget;   // may be null
  uint32_t budget_tick = 0;
  const Vocabulary* vocab;
  const std::vector<Atom>* atoms;
  const std::vector<Atom>* negated;
  const std::vector<Comparison>* comparisons;
  const std::vector<AtomLevelWindow>* windows;  // may be null
  const std::function<bool(const Subst&)>* on_match;
  Subst subst;
  std::vector<uint32_t> trail;
  std::vector<bool> used;   // per atom
  bool stop = false;        // on_match requested early exit
  Status error;             // sticky first error
};

// Three-valued comparison check under the current (partial) substitution:
// returns false to prune; comparisons with an unbound side pass for now.
bool ComparisonsHold(const EvalState& s) {
  for (const Comparison& c : *s.comparisons) {
    Term lhs = Resolve(s.subst, c.lhs);
    Term rhs = Resolve(s.subst, c.rhs);
    if (!lhs.IsGround() || !rhs.IsGround()) continue;
    if (!EvalComparison(*s.vocab, c.op, lhs, rhs)) return false;
  }
  return true;
}

// Closed-world check of negated atoms under the current (partial)
// substitution: a fully ground negated atom present in the instance
// prunes; not-yet-ground ones pass for now.
bool NegationHolds(const EvalState& s) {
  for (const Atom& a : *s.negated) {
    Atom inst = SubstAtom(s.subst, a);
    if (inst.IsGround() && s.instance->Contains(inst)) return false;
  }
  return true;
}

// Number of ground positions of `atom` under the current substitution.
size_t BoundPositions(const EvalState& s, const Atom& atom) {
  size_t n = 0;
  for (Term t : atom.terms) {
    if (Resolve(s.subst, t).IsGround()) ++n;
  }
  return n;
}

// Picks the next unused atom: most bound positions, ties by smaller table.
int PickAtom(const EvalState& s) {
  int best = -1;
  size_t best_bound = 0;
  size_t best_size = 0;
  for (size_t i = 0; i < s.atoms->size(); ++i) {
    if (s.used[i]) continue;
    const Atom& atom = (*s.atoms)[i];
    size_t bound = BoundPositions(s, atom);
    const FactTable* table = s.instance->Table(atom.predicate);
    size_t size = table == nullptr ? 0 : table->size();
    if (best < 0 || bound > best_bound ||
        (bound == best_bound && size < best_size)) {
      best = static_cast<int>(i);
      best_bound = bound;
      best_size = size;
    }
  }
  return best;
}

void Recurse(EvalState* s, size_t remaining);

// Tries to match atom `idx` against `row` and recurse.
void TryRow(EvalState* s, size_t idx, const Term* row, size_t remaining) {
  if (s->stop || !s->error.ok()) return;
  // Budget polling is batched through a local tick so the per-row cost
  // is one increment-and-mask, not an atomic RMW: steps are charged in
  // blocks of kBudgetBatch rows and trips surface within a block.
  if (s->budget != nullptr &&
      (++s->budget_tick & (EvalState::kBudgetBatch - 1)) == 0) {
    Status bs = s->budget->Check("cq:row");
    if (bs.ok()) bs = s->budget->ChargeSteps(EvalState::kBudgetBatch);
    if (!bs.ok()) {
      s->error = std::move(bs);
      return;
    }
  }
  const Atom& atom = (*s->atoms)[idx];
  size_t mark = s->trail.size();
  if (s->stats != nullptr) ++s->stats->rows_tried;
  if (MatchAtom(atom, row, &s->subst, &s->trail) && ComparisonsHold(*s) &&
      NegationHolds(*s)) {
    if (s->stats != nullptr) ++s->stats->atoms_matched;
    s->used[idx] = true;
    Recurse(s, remaining - 1);
    s->used[idx] = false;
  }
  UndoTrail(&s->subst, &s->trail, mark);
}

void Recurse(EvalState* s, size_t remaining) {
  if (s->stop || !s->error.ok()) return;
  if (remaining == 0) {
    // All atoms matched; every comparison and negated atom must now be
    // decidable (ground).
    for (const Comparison& c : *s->comparisons) {
      Term lhs = Resolve(s->subst, c.lhs);
      Term rhs = Resolve(s->subst, c.rhs);
      if (!lhs.IsGround() || !rhs.IsGround()) {
        s->error = Status::InvalidArgument(
            "comparison variable not bound by any relational atom");
        return;
      }
    }
    for (const Atom& a : *s->negated) {
      if (!SubstAtom(s->subst, a).IsGround()) {
        s->error = Status::InvalidArgument(
            "negated-atom variable not bound by any positive atom");
        return;
      }
    }
    if (s->stats != nullptr) ++s->stats->solutions;
    if (!(*s->on_match)(s->subst)) s->stop = true;
    return;
  }
  int idx = PickAtom(*s);
  const Atom& atom = (*s->atoms)[idx];
  const FactTable* table = s->instance->Table(atom.predicate);
  if (table == nullptr) return;  // predicate empty: no matches

  AtomLevelWindow window;
  if (s->windows != nullptr) window = (*s->windows)[idx];
  auto level_ok = [&](uint32_t r) {
    uint32_t lvl = table->Level(r);
    return lvl >= window.min_level && lvl <= window.max_level;
  };

  // Probe the most selective index among ground positions, else scan.
  int probe_pos = -1;
  size_t probe_size = 0;
  Term probe_term;
  for (size_t p = 0; p < atom.terms.size(); ++p) {
    Term t = Resolve(s->subst, atom.terms[p]);
    if (!t.IsGround()) continue;
    const size_t count = table->ProbeCount(p, t);
    if (probe_pos < 0 || count < probe_size) {
      probe_pos = static_cast<int>(p);
      probe_size = count;
      probe_term = t;
    }
  }
  if (probe_pos >= 0) {
    if (s->stats != nullptr) ++s->stats->index_probes;
    // Evaluation is read-only, so holding the index's row list by
    // reference is safe; the chase only mutates between evaluations.
    // Columnar tables with a multi-segment chain materialize the gather.
    std::vector<uint32_t> scratch;
    const std::vector<uint32_t>* rows = table->ProbeRef(probe_pos, probe_term);
    if (rows == nullptr) {
      scratch = table->Probe(probe_pos, probe_term);
      rows = &scratch;
    }
    for (uint32_t r : *rows) {
      if (s->stop || !s->error.ok()) return;
      if (!level_ok(r)) continue;
      TryRow(s, idx, table->Row(r), remaining);
    }
  } else {
    if (s->stats != nullptr) ++s->stats->full_scans;
    for (uint32_t r = 0; r < table->size(); ++r) {
      if (s->stop || !s->error.ok()) return;
      if (!level_ok(r)) continue;
      TryRow(s, idx, table->Row(r), remaining);
    }
  }
}

}  // namespace

Status CqEvaluator::Enumerate(
    const std::vector<Atom>& atoms, const std::vector<Atom>& negated,
    const std::vector<Comparison>& comparisons, const Subst& initial,
    const std::vector<AtomLevelWindow>& windows,
    const std::function<bool(const Subst&)>& on_match) const {
  if (!windows.empty() && windows.size() != atoms.size()) {
    return Status::InvalidArgument("level-window count must match atom count");
  }
  if (instance_.storage_mode() == StorageMode::kColumnar && initial.empty()) {
    // Vectorized block executor over the columnar segments. Its
    // enumeration order, stats and budget pacing reproduce the
    // backtracking path exactly (see datalog/join.h); the up-front
    // budget poll below still runs first. Dispatch is a pure cost
    // heuristic — both executors produce the same bytes — and only
    // whole-relation enumerations (empty initial bindings: trigger
    // collection passes, query answering) amortize the executor's
    // plan-compilation setup; seeded point lookups (per-trigger
    // head-satisfaction and constraint checks, parallel shard seeds)
    // stay on the low-setup backtracking path.
    if (budget_ != nullptr) {
      Status bs = budget_->Check("cq:row");
      if (!bs.ok()) return bs;
    }
    BlockJoin join(instance_, stats_, budget_);
    return join.Run(atoms, negated, comparisons, initial, windows, on_match);
  }
  EvalState s;
  s.instance = &instance_;
  s.stats = stats_;
  s.budget = budget_;
  s.vocab = instance_.vocab().get();
  s.atoms = &atoms;
  s.negated = &negated;
  s.comparisons = &comparisons;
  s.windows = windows.empty() ? nullptr : &windows;
  s.on_match = &on_match;
  s.subst = initial;
  s.used.assign(atoms.size(), false);
  // Poll once per enumeration: on instances smaller than the row-polling
  // batch the per-row tick never wraps, and cancellation/armed fault
  // probes would otherwise be invisible to short queries.
  if (s.budget != nullptr) {
    Status bs = s.budget->Check("cq:row");
    if (!bs.ok()) return bs;
  }
  if (!ComparisonsHold(s) || !NegationHolds(s)) return Status::Ok();
  Recurse(&s, atoms.size());
  return s.error;
}

Result<bool> CqEvaluator::Satisfiable(
    const std::vector<Atom>& atoms, const std::vector<Comparison>& comparisons,
    const Subst& initial) const {
  bool found = false;
  Status st = Enumerate(atoms, comparisons, initial, {},
                        [&found](const Subst&) {
                          found = true;
                          return false;  // stop at first witness
                        });
  if (!st.ok()) return st;
  return found;
}

Result<std::vector<std::vector<Term>>> CqEvaluator::Answers(
    const ConjunctiveQuery& query, Status* interruption) const {
  if (interruption != nullptr) *interruption = Status::Ok();
  MDQA_RETURN_IF_ERROR(query.Validate());
  std::vector<std::vector<Term>> out;
  std::unordered_set<size_t> seen;  // hash of answer tuple (exact dedup below)
  auto on_match = [&](const Subst& subst) {
    std::vector<Term> tuple;
    tuple.reserve(query.answer.size());
    for (Term t : query.answer) tuple.push_back(Resolve(subst, t));
    // Exact dedup via linear probe within hash bucket set.
    size_t h = tuple.size();
    for (Term t : tuple) HashCombine(&h, TermHash{}(t));
    if (seen.insert(h).second) {
      out.push_back(std::move(tuple));
    } else {
      // Possible collision: verify against existing answers.
      bool dup = false;
      for (const auto& existing : out) {
        if (existing == tuple) {
          dup = true;
          break;
        }
      }
      if (!dup) out.push_back(std::move(tuple));
    }
    return true;
  };
  Status st = Enumerate(query.body, query.negated, query.comparisons,
                        Subst{}, {}, on_match);
  if (!st.ok()) {
    // A budget trip with an interruption out-param degrades gracefully:
    // the tuples collected so far are each genuine answers.
    if (interruption != nullptr && ExecutionBudget::IsTruncation(st)) {
      *interruption = std::move(st);
      return out;
    }
    return st;
  }
  return out;
}

Result<bool> CqEvaluator::AnswerBoolean(const ConjunctiveQuery& query,
                                        Status* interruption) const {
  if (interruption != nullptr) *interruption = Status::Ok();
  MDQA_RETURN_IF_ERROR(query.Validate());
  bool found = false;
  Status st = Enumerate(query.body, query.negated, query.comparisons,
                        Subst{}, {}, [&found](const Subst&) {
                          found = true;
                          return false;  // stop at first witness
                        });
  if (!st.ok()) {
    if (interruption != nullptr && ExecutionBudget::IsTruncation(st)) {
      *interruption = std::move(st);
      return found;
    }
    return st;
  }
  return found;
}

}  // namespace mdqa::datalog
