#include "datalog/rule.h"

#include <algorithm>

namespace mdqa::datalog {

namespace {

void CollectVars(const std::vector<Atom>& atoms, std::vector<uint32_t>* out,
                 std::unordered_set<uint32_t>* seen) {
  for (const Atom& a : atoms) {
    for (Term t : a.terms) {
      if (t.IsVariable() && seen->insert(t.id()).second) {
        out->push_back(t.id());
      }
    }
  }
}

}  // namespace

std::vector<uint32_t> Rule::BodyVariables() const {
  std::vector<uint32_t> out;
  std::unordered_set<uint32_t> seen;
  CollectVars(body, &out, &seen);
  return out;
}

std::vector<uint32_t> Rule::HeadVariables() const {
  std::vector<uint32_t> out;
  std::unordered_set<uint32_t> seen;
  CollectVars(head, &out, &seen);
  return out;
}

std::vector<uint32_t> Rule::ExistentialVariables() const {
  std::vector<uint32_t> body_vars = BodyVariables();
  std::unordered_set<uint32_t> body_set(body_vars.begin(), body_vars.end());
  std::vector<uint32_t> out;
  for (uint32_t v : HeadVariables()) {
    if (body_set.count(v) == 0) out.push_back(v);
  }
  return out;
}

std::vector<uint32_t> Rule::FrontierVariables() const {
  std::vector<uint32_t> head_vars = HeadVariables();
  std::unordered_set<uint32_t> head_set(head_vars.begin(), head_vars.end());
  std::vector<uint32_t> out;
  for (uint32_t v : BodyVariables()) {
    if (head_set.count(v) > 0) out.push_back(v);
  }
  return out;
}

size_t Rule::BodyOccurrences(uint32_t var) const {
  size_t n = 0;
  for (const Atom& a : body) {
    for (Term t : a.terms) {
      if (t.IsVariable() && t.id() == var) ++n;
    }
  }
  return n;
}

Status Rule::Validate() const {
  if (body.empty()) {
    return Status::InvalidArgument("rule '" + label + "' has an empty body");
  }
  std::vector<uint32_t> body_vars = BodyVariables();
  std::unordered_set<uint32_t> body_set(body_vars.begin(), body_vars.end());
  switch (kind) {
    case RuleKind::kTgd:
      if (head.empty()) {
        return Status::InvalidArgument("TGD '" + label + "' has no head atom");
      }
      break;
    case RuleKind::kEgd:
      if (!head.empty()) {
        return Status::InvalidArgument("EGD '" + label +
                                       "' must not have head atoms");
      }
      if (!egd_lhs.IsVariable() || !egd_rhs.IsVariable()) {
        return Status::InvalidArgument(
            "EGD '" + label + "' must equate two variables in its head");
      }
      if (body_set.count(egd_lhs.id()) == 0 ||
          body_set.count(egd_rhs.id()) == 0) {
        return Status::InvalidArgument(
            "EGD '" + label + "' head variables must occur in the body");
      }
      break;
    case RuleKind::kConstraint:
      if (!head.empty()) {
        return Status::InvalidArgument("constraint '" + label +
                                       "' must not have head atoms");
      }
      break;
  }
  for (const Comparison& c : comparisons) {
    for (Term t : {c.lhs, c.rhs}) {
      if (t.IsVariable() && body_set.count(t.id()) == 0) {
        return Status::InvalidArgument(
            "comparison variable in rule '" + label +
            "' does not occur in a relational body atom");
      }
    }
  }
  for (const Atom& a : negated) {
    for (Term t : a.terms) {
      if (t.IsVariable() && body_set.count(t.id()) == 0) {
        return Status::InvalidArgument(
            "unsafe negation in rule '" + label +
            "': variable of a negated atom does not occur in a positive "
            "body atom");
      }
    }
  }
  return Status::Ok();
}

bool Rule::SameAs(const Rule& other) const {
  return kind == other.kind && head == other.head && body == other.body &&
         negated == other.negated && comparisons == other.comparisons &&
         egd_lhs == other.egd_lhs && egd_rhs == other.egd_rhs;
}

std::vector<uint32_t> ConjunctiveQuery::AnswerVariables() const {
  std::vector<uint32_t> out;
  std::unordered_set<uint32_t> seen;
  for (Term t : answer) {
    if (t.IsVariable() && seen.insert(t.id()).second) out.push_back(t.id());
  }
  return out;
}

Status ConjunctiveQuery::Validate() const {
  if (body.empty()) {
    return Status::InvalidArgument("query '" + name + "' has an empty body");
  }
  std::unordered_set<uint32_t> body_set;
  for (const Atom& a : body) {
    for (Term t : a.terms) {
      if (t.IsVariable()) body_set.insert(t.id());
    }
  }
  for (uint32_t v : AnswerVariables()) {
    if (body_set.count(v) == 0) {
      return Status::InvalidArgument(
          "answer variable of query '" + name + "' does not occur in body");
    }
  }
  for (const Comparison& c : comparisons) {
    for (Term t : {c.lhs, c.rhs}) {
      if (t.IsVariable() && body_set.count(t.id()) == 0) {
        return Status::InvalidArgument(
            "comparison variable of query '" + name +
            "' does not occur in body");
      }
    }
  }
  for (const Atom& a : negated) {
    for (Term t : a.terms) {
      if (t.IsVariable() && body_set.count(t.id()) == 0) {
        return Status::InvalidArgument(
            "unsafe negation in query '" + name +
            "': variable of a negated atom does not occur in a positive "
            "body atom");
      }
    }
  }
  return Status::Ok();
}

}  // namespace mdqa::datalog
