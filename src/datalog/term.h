#ifndef MDQA_DATALOG_TERM_H_
#define MDQA_DATALOG_TERM_H_

#include <cstdint>
#include <functional>
#include <ostream>

namespace mdqa::datalog {

/// Kind of a Datalog± term. Labeled nulls are the fresh values invented by
/// existential quantifiers during the chase ("⊥_k" in the literature).
enum class TermKind : uint8_t {
  kConstant = 0,
  kNull = 1,
  kVariable = 2,
};

/// An 8-byte tagged handle into the owning `Vocabulary`'s pools:
/// constants index the interned `Value` pool, variables the variable-name
/// pool, nulls a monotone counter. Terms from different vocabularies must
/// not be mixed; the library never does.
class Term {
 public:
  Term() : kind_(TermKind::kConstant), id_(0) {}

  static Term Constant(uint32_t value_id) {
    return Term(TermKind::kConstant, value_id);
  }
  static Term Variable(uint32_t var_id) {
    return Term(TermKind::kVariable, var_id);
  }
  static Term Null(uint32_t null_id) { return Term(TermKind::kNull, null_id); }

  TermKind kind() const { return kind_; }
  uint32_t id() const { return id_; }

  bool IsConstant() const { return kind_ == TermKind::kConstant; }
  bool IsVariable() const { return kind_ == TermKind::kVariable; }
  bool IsNull() const { return kind_ == TermKind::kNull; }
  /// Ground terms are constants and labeled nulls.
  bool IsGround() const { return kind_ != TermKind::kVariable; }

  friend bool operator==(Term a, Term b) {
    return a.kind_ == b.kind_ && a.id_ == b.id_;
  }
  friend bool operator!=(Term a, Term b) { return !(a == b); }
  friend bool operator<(Term a, Term b) {
    if (a.kind_ != b.kind_) return a.kind_ < b.kind_;
    return a.id_ < b.id_;
  }

  /// Packs kind and id into one value for hashing/index keys.
  uint64_t Key() const {
    return (static_cast<uint64_t>(kind_) << 32) | id_;
  }

 private:
  Term(TermKind kind, uint32_t id) : kind_(kind), id_(id) {}

  TermKind kind_;
  uint32_t id_;
};

struct TermHash {
  size_t operator()(Term t) const {
    return std::hash<uint64_t>{}(t.Key() * 0x9e3779b97f4a7c15ull);
  }
};

}  // namespace mdqa::datalog

#endif  // MDQA_DATALOG_TERM_H_
