#ifndef MDQA_DATALOG_ATOM_H_
#define MDQA_DATALOG_ATOM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/intern.h"
#include "base/source_span.h"
#include "datalog/term.h"

namespace mdqa::datalog {

class Vocabulary;  // vocabulary.h

/// A relational atom `P(t1, ..., tn)`: an interned predicate id plus terms.
struct Atom {
  uint32_t predicate = 0;
  std::vector<Term> terms;
  /// Where the atom was parsed from (unset for programmatic or derived
  /// atoms). Deliberately NOT part of identity (`==`/`Hash`): two atoms
  /// denote the same fact regardless of where they were written.
  SourceSpan span;

  Atom() = default;
  Atom(uint32_t pred, std::vector<Term> ts)
      : predicate(pred), terms(std::move(ts)) {}

  size_t arity() const { return terms.size(); }

  bool IsGround() const {
    for (Term t : terms) {
      if (!t.IsGround()) return false;
    }
    return true;
  }

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.predicate == b.predicate && a.terms == b.terms;
  }
  friend bool operator!=(const Atom& a, const Atom& b) { return !(a == b); }

  size_t Hash() const {
    size_t seed = predicate;
    for (Term t : terms) HashCombine(&seed, TermHash{}(t));
    return seed;
  }
};

struct AtomHash {
  size_t operator()(const Atom& a) const { return a.Hash(); }
};

/// Comparison operators usable in rule bodies and queries as built-ins.
enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpToString(CmpOp op);

/// A built-in comparison literal `lhs op rhs`. Both sides must be bound
/// (to constants) by relational atoms before the comparison is decided;
/// comparisons never bind variables. Comparisons on labeled nulls are
/// false except `null = null` / `null != other` by identity.
struct Comparison {
  CmpOp op = CmpOp::kEq;
  Term lhs;
  Term rhs;

  friend bool operator==(const Comparison& a, const Comparison& b) {
    return a.op == b.op && a.lhs == b.lhs && a.rhs == b.rhs;
  }
  friend bool operator!=(const Comparison& a, const Comparison& b) {
    return !(a == b);
  }
};

}  // namespace mdqa::datalog

#endif  // MDQA_DATALOG_ATOM_H_
