#include "datalog/provenance.h"

namespace mdqa::datalog {

void ProvenanceStore::Record(const Atom& fact, Derivation derivation) {
  derivations_.emplace(fact, std::move(derivation));
}

const ProvenanceStore::Derivation* ProvenanceStore::Find(
    const Atom& fact) const {
  auto it = derivations_.find(fact);
  return it == derivations_.end() ? nullptr : &it->second;
}

std::string ProvenanceStore::Explain(const Atom& fact,
                                     const Vocabulary& vocab,
                                     size_t max_depth) const {
  std::string out;
  std::unordered_set<size_t> on_branch;
  ExplainRec(fact, vocab, 0, max_depth, "", &on_branch, &out);
  return out;
}

void ProvenanceStore::ExplainRec(const Atom& fact, const Vocabulary& vocab,
                                 size_t depth, size_t max_depth,
                                 const std::string& indent,
                                 std::unordered_set<size_t>* on_branch,
                                 std::string* out) const {
  out->append(indent);
  out->append(vocab.AtomToString(fact));
  const Derivation* d = Find(fact);
  if (d == nullptr) {
    out->append("  [edb]\n");
    return;
  }
  if (depth >= max_depth) {
    out->append("  [... depth cap]\n");
    return;
  }
  const size_t key = fact.Hash();
  if (on_branch->count(key) > 0) {
    out->append("  [... cyclic]\n");
    return;
  }
  on_branch->insert(key);
  out->append("\n");
  out->append(indent);
  out->append("  via ");
  out->append(vocab.RuleToString(d->rule));
  out->append("\n");
  for (const Atom& b : d->body) {
    ExplainRec(b, vocab, depth + 1, max_depth, indent + "  |- ", on_branch,
               out);
  }
  on_branch->erase(key);
}

}  // namespace mdqa::datalog
