#ifndef MDQA_DATALOG_CONTAINMENT_H_
#define MDQA_DATALOG_CONTAINMENT_H_

#include <vector>

#include "datalog/program.h"

namespace mdqa::datalog {

/// Conjunctive-query containment `q1 ⊆ q2` (every database's answers to
/// q1 are answers to q2) via the classical containment-mapping test: a
/// homomorphism from q2's atoms into q1's atoms that maps q2's answer
/// tuple onto q1's, positionwise (Chandra–Merlin).
///
/// Comparisons are handled conservatively and soundly: a mapped
/// comparison of q2 must either become ground-and-true or appear
/// verbatim among q1's comparisons; q1 may carry extra comparisons
/// freely (they only shrink q1). Queries with negation are never
/// reported contained (sound, incomplete).
bool ContainedIn(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
                 const Vocabulary& vocab);

/// Removes every CQ that is contained in another member — the answers of
/// the union are unchanged. Exact for comparison-free CQs, conservative
/// otherwise. Used by the UCQ rewriter to minimize its output before
/// evaluation.
std::vector<ConjunctiveQuery> MinimizeUcq(std::vector<ConjunctiveQuery> ucq,
                                          const Vocabulary& vocab);

/// Core minimization of a single CQ (Chandra–Merlin): repeatedly drops a
/// body atom whose removal leaves an equivalent query. Dropping atoms
/// only generalizes, so only `reduced ⊆ original` needs checking; the
/// result is the query's core (joins the factorization steps of the
/// rewriter tend to leave redundant atoms behind). Atoms whose removal
/// would unbind an answer/comparison/negated variable are never dropped.
ConjunctiveQuery MinimizeQuery(ConjunctiveQuery query,
                               const Vocabulary& vocab);

}  // namespace mdqa::datalog

#endif  // MDQA_DATALOG_CONTAINMENT_H_
