#include "datalog/program.h"

namespace mdqa::datalog {

Result<uint32_t> Vocabulary::InternPredicate(std::string_view name,
                                             size_t arity) {
  AssertOwnerThread();
  uint32_t existing = predicates_.Find(name);
  if (existing != StringPool::kNotFound) {
    if (arities_[existing] != arity) {
      return Status::InvalidArgument(
          "predicate '" + std::string(name) + "' used with arity " +
          std::to_string(arity) + " but declared with arity " +
          std::to_string(arities_[existing]));
    }
    return existing;
  }
  uint32_t id = predicates_.Intern(name);
  arities_.push_back(arity);
  return id;
}

Term Vocabulary::FreshVariable() {
  // The "$" prefix cannot be produced by the parser, so fresh variables
  // never collide with user variables.
  return Term::Variable(
      InternVariable("$v" + std::to_string(next_fresh_var_++)));
}

std::string Vocabulary::TermToString(Term t) const {
  switch (t.kind()) {
    case TermKind::kConstant:
      return constants_.Get(t.id()).ToLiteral();
    case TermKind::kVariable:
      return variables_.Get(t.id());
    case TermKind::kNull:
      return "_n" + std::to_string(t.id());
  }
  return "?";
}

std::string Vocabulary::TermToDisplayString(Term t) const {
  if (t.IsConstant()) return constants_.Get(t.id()).ToString();
  return TermToString(t);
}

std::string Vocabulary::AtomToString(const Atom& a) const {
  std::string out = predicates_.Get(a.predicate) + "(";
  for (size_t i = 0; i < a.terms.size(); ++i) {
    if (i > 0) out += ", ";
    out += TermToString(a.terms[i]);
  }
  out += ")";
  return out;
}

std::string Vocabulary::ComparisonToString(const Comparison& c) const {
  return TermToString(c.lhs) + " " + CmpOpToString(c.op) + " " +
         TermToString(c.rhs);
}

std::string Vocabulary::RuleToString(const Rule& r) const {
  std::string out;
  switch (r.kind) {
    case RuleKind::kTgd:
      for (size_t i = 0; i < r.head.size(); ++i) {
        if (i > 0) out += ", ";
        out += AtomToString(r.head[i]);
      }
      break;
    case RuleKind::kEgd:
      out += TermToString(r.egd_lhs) + " = " + TermToString(r.egd_rhs);
      break;
    case RuleKind::kConstraint:
      out += "!";
      break;
  }
  out += " :- ";
  for (size_t i = 0; i < r.body.size(); ++i) {
    if (i > 0) out += ", ";
    out += AtomToString(r.body[i]);
  }
  for (const Atom& a : r.negated) {
    out += ", not " + AtomToString(a);
  }
  for (const Comparison& c : r.comparisons) {
    out += ", " + ComparisonToString(c);
  }
  out += ".";
  return out;
}

std::string Vocabulary::QueryToString(const ConjunctiveQuery& q) const {
  std::string out = q.name + "(";
  for (size_t i = 0; i < q.answer.size(); ++i) {
    if (i > 0) out += ", ";
    out += TermToString(q.answer[i]);
  }
  out += ") :- ";
  for (size_t i = 0; i < q.body.size(); ++i) {
    if (i > 0) out += ", ";
    out += AtomToString(q.body[i]);
  }
  for (const Atom& a : q.negated) {
    out += ", not " + AtomToString(a);
  }
  for (const Comparison& c : q.comparisons) {
    out += ", " + ComparisonToString(c);
  }
  out += ".";
  return out;
}

Status Program::AddRule(Rule rule) {
  MDQA_RETURN_IF_ERROR(rule.Validate());
  for (const Atom& a : rule.body) {
    if (a.arity() != vocab_->PredicateArity(a.predicate)) {
      return Status::Internal("body atom arity drift in rule '" + rule.label +
                              "'");
    }
  }
  rules_.push_back(std::move(rule));
  ++generation_;
  return Status::Ok();
}

Status Program::AddFact(Atom fact) {
  if (!fact.IsGround()) {
    return Status::InvalidArgument("fact must be ground: " +
                                   vocab_->AtomToString(fact));
  }
  facts_.push_back(std::move(fact));
  ++generation_;
  return Status::Ok();
}

std::vector<Rule> Program::Tgds() const {
  std::vector<Rule> out;
  for (const Rule& r : rules_) {
    if (r.IsTgd()) out.push_back(r);
  }
  return out;
}

std::vector<Rule> Program::Egds() const {
  std::vector<Rule> out;
  for (const Rule& r : rules_) {
    if (r.IsEgd()) out.push_back(r);
  }
  return out;
}

std::vector<Rule> Program::Constraints() const {
  std::vector<Rule> out;
  for (const Rule& r : rules_) {
    if (r.IsConstraint()) out.push_back(r);
  }
  return out;
}

std::string Program::ToString() const {
  std::string out;
  for (const Rule& r : rules_) {
    out += vocab_->RuleToString(r);
    out += '\n';
  }
  for (const Atom& f : facts_) {
    out += vocab_->AtomToString(f);
    out += ".\n";
  }
  return out;
}

}  // namespace mdqa::datalog
