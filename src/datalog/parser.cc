#include "datalog/parser.h"

#include <cctype>
#include <optional>
#include <vector>

#include "base/string_util.h"

namespace mdqa::datalog {

namespace {

enum class TokKind {
  kIdent,    // bare identifier (variable or constant by capitalization)
  kString,   // quoted string constant
  kNumber,   // numeric constant
  kLParen,
  kRParen,
  kComma,    // ',' and ';' both map here
  kPeriod,
  kArrow,    // ':-' or '<-'
  kBang,     // '!' (constraint head)
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;
  SourceSpan span;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  /// Position of a lexical error, for ParseReport (unset unless Tokenize
  /// returned an error).
  SourceSpan error_span() const { return error_span_; }

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      SkipSpaceAndComments();
      if (pos_ >= text_.size()) break;
      char c = text_[pos_];
      if (c == '(') {
        out.push_back(Make(TokKind::kLParen, "("));
      } else if (c == ')') {
        out.push_back(Make(TokKind::kRParen, ")"));
      } else if (c == ',' || c == ';') {
        out.push_back(Make(TokKind::kComma, ","));
      } else if (c == '.') {
        out.push_back(Make(TokKind::kPeriod, "."));
      } else if (c == '!') {
        if (Peek(1) == '=') {
          out.push_back(Make(TokKind::kNe, "!=", 2));
        } else {
          out.push_back(Make(TokKind::kBang, "!"));
        }
      } else if (c == ':' && Peek(1) == '-') {
        out.push_back(Make(TokKind::kArrow, ":-", 2));
      } else if (c == '<' && Peek(1) == '-') {
        out.push_back(Make(TokKind::kArrow, "<-", 2));
      } else if (c == '<') {
        if (Peek(1) == '=') {
          out.push_back(Make(TokKind::kLe, "<=", 2));
        } else {
          out.push_back(Make(TokKind::kLt, "<"));
        }
      } else if (c == '>') {
        if (Peek(1) == '=') {
          out.push_back(Make(TokKind::kGe, ">=", 2));
        } else {
          out.push_back(Make(TokKind::kGt, ">"));
        }
      } else if (c == '=') {
        out.push_back(Make(TokKind::kEq, "="));
      } else if (c == '"') {
        MDQA_ASSIGN_OR_RETURN(Token t, LexString());
        out.push_back(std::move(t));
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 ((c == '-' || c == '+') &&
                  std::isdigit(static_cast<unsigned char>(Peek(1))))) {
        out.push_back(LexNumber());
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        out.push_back(LexIdent());
      } else {
        error_span_ = Here();
        return Status::InvalidArgument("unexpected character '" +
                                       std::string(1, c) + "' (" +
                                       error_span_.ToString() + ")");
      }
    }
    out.push_back(Token{TokKind::kEnd, "", Here()});
    return out;
  }

 private:
  char Peek(size_t ahead) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  SourceSpan Here() const {
    return SourceSpan{line_, static_cast<uint32_t>(pos_ - line_start_) + 1};
  }

  Token Make(TokKind kind, std::string text, size_t advance = 1) {
    SourceSpan span = Here();
    pos_ += advance;
    return Token{kind, std::move(text), span};
  }

  void NewLine() {
    ++line_;
    line_start_ = pos_ + 1;
  }

  void SkipSpaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        NewLine();
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '%' || c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  Result<Token> LexString() {
    SourceSpan start = Here();
    ++pos_;  // opening quote
    std::string s;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_];
      if (c == '\\' && pos_ + 1 < text_.size()) {
        ++pos_;
        c = text_[pos_];
      }
      if (c == '\n') NewLine();
      s.push_back(c);
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      error_span_ = start;
      return Status::InvalidArgument("unterminated string starting at " +
                                     start.ToString());
    }
    ++pos_;  // closing quote
    return Token{TokKind::kString, std::move(s), start};
  }

  Token LexNumber() {
    SourceSpan start = Here();
    size_t begin = pos_;
    if (text_[pos_] == '-' || text_[pos_] == '+') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.')) {
      // A '.' ends the number if not followed by a digit (statement period).
      if (text_[pos_] == '.' &&
          !(pos_ + 1 < text_.size() &&
            std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
        break;
      }
      ++pos_;
    }
    return Token{TokKind::kNumber,
                 std::string(text_.substr(begin, pos_ - begin)), start};
  }

  Token LexIdent() {
    SourceSpan start = Here();
    size_t begin = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    return Token{TokKind::kIdent,
                 std::string(text_.substr(begin, pos_ - begin)), start};
  }

  std::string_view text_;
  size_t pos_ = 0;
  uint32_t line_ = 1;
  size_t line_start_ = 0;  // offset of the first character of line_
  SourceSpan error_span_;
};

bool IsVariableName(const std::string& name) {
  return !name.empty() &&
         (std::isupper(static_cast<unsigned char>(name[0])) || name[0] == '_');
}

class ParserImpl {
 public:
  ParserImpl(std::vector<Token> tokens, Vocabulary* vocab, ParseReport* report)
      : tokens_(std::move(tokens)), vocab_(vocab), report_(report) {}

  Status ParseStatements(Program* program) {
    while (Cur().kind != TokKind::kEnd) {
      MDQA_RETURN_IF_ERROR(ParseStatement(program));
    }
    return Status::Ok();
  }

  Result<ConjunctiveQuery> ParseSingleQuery() {
    ConjunctiveQuery q;
    if (Cur().kind != TokKind::kIdent) {
      return Fail("query must start with a name");
    }
    q.name = Cur().text;
    Advance();
    MDQA_RETURN_IF_ERROR(Expect(TokKind::kLParen, "query head '('"));
    if (Cur().kind != TokKind::kRParen) {
      while (true) {
        MDQA_ASSIGN_OR_RETURN(Term t, ParseTerm());
        q.answer.push_back(t);
        if (Cur().kind != TokKind::kComma) break;
        Advance();
      }
    }
    MDQA_RETURN_IF_ERROR(Expect(TokKind::kRParen, "query head ')'"));
    MDQA_RETURN_IF_ERROR(Expect(TokKind::kArrow, "':-' after query head"));
    MDQA_RETURN_IF_ERROR(ParseBody(&q.body, &q.negated, &q.comparisons));
    if (Cur().kind == TokKind::kPeriod) Advance();
    if (Cur().kind != TokKind::kEnd) {
      return Fail("trailing input after query");
    }
    MDQA_RETURN_IF_ERROR(q.Validate());
    return q;
  }

  Result<Atom> ParseSingleGroundAtom() {
    MDQA_ASSIGN_OR_RETURN(Atom a, ParseAtom());
    if (Cur().kind == TokKind::kPeriod) Advance();
    if (Cur().kind != TokKind::kEnd) {
      return Fail("trailing input after atom");
    }
    if (!a.IsGround()) {
      return Status::InvalidArgument("atom is not ground: " +
                                     vocab_->AtomToString(a));
    }
    return a;
  }

 private:
  const Token& Cur() const { return tokens_[idx_]; }
  const Token& Next() const {
    return tokens_[idx_ + 1 < tokens_.size() ? idx_ + 1 : idx_];
  }
  void Advance() {
    if (idx_ + 1 < tokens_.size()) ++idx_;
  }

  void Record(ParseReport::ErrorKind kind, SourceSpan span) {
    if (report_ != nullptr &&
        report_->error_kind == ParseReport::ErrorKind::kNone) {
      report_->error_kind = kind;
      report_->error_span = span;
    }
  }

  /// Builds a syntax-error status pointing at the current token, and
  /// records its location in the report.
  Status Fail(const std::string& what) {
    Record(ParseReport::ErrorKind::kSyntax, Cur().span);
    return Status::InvalidArgument(what + " (" + Cur().span.ToString() +
                                   ", near '" + Cur().text + "')");
  }

  Status Expect(TokKind kind, const std::string& what) {
    if (Cur().kind != kind) {
      return Fail("expected " + what);
    }
    Advance();
    return Status::Ok();
  }

  Result<Term> ParseTerm() {
    const Token& t = Cur();
    switch (t.kind) {
      case TokKind::kString:
        Advance();
        return vocab_->Const(Value::Str(t.text));
      case TokKind::kNumber:
        Advance();
        return vocab_->Const(Value::FromText(t.text));
      case TokKind::kIdent: {
        Advance();
        if (t.text == "_") {
          return vocab_->FreshVariable();
        }
        // `_n<k>` is the reserved spelling of labeled null ⊥_k (what
        // TermToString prints), so instances round-trip through text.
        if (t.text.size() > 2 && t.text[0] == '_' && t.text[1] == 'n') {
          bool digits = true;
          for (size_t i = 2; i < t.text.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(t.text[i]))) {
              digits = false;
              break;
            }
          }
          if (digits) {
            uint32_t id =
                static_cast<uint32_t>(std::stoul(t.text.substr(2)));
            vocab_->ReserveNullsThrough(id);
            return Term::Null(id);
          }
        }
        if (IsVariableName(t.text)) {
          return vocab_->Var(t.text);
        }
        return vocab_->Const(Value::Str(t.text));
      }
      default:
        return Fail("expected a term");
    }
  }

  Result<Atom> ParseAtom() {
    if (Cur().kind != TokKind::kIdent) {
      return Fail("expected a predicate name");
    }
    std::string pred_name = Cur().text;
    SourceSpan name_span = Cur().span;
    Advance();
    MDQA_RETURN_IF_ERROR(
        Expect(TokKind::kLParen, "'(' after predicate " + pred_name));
    std::vector<Term> terms;
    if (Cur().kind != TokKind::kRParen) {
      while (true) {
        MDQA_ASSIGN_OR_RETURN(Term t, ParseTerm());
        terms.push_back(t);
        if (Cur().kind != TokKind::kComma) break;
        Advance();
      }
    }
    MDQA_RETURN_IF_ERROR(
        Expect(TokKind::kRParen, "')' closing " + pred_name));
    Result<uint32_t> pred = vocab_->InternPredicate(pred_name, terms.size());
    if (!pred.ok()) {
      Record(ParseReport::ErrorKind::kArity, name_span);
      return Status(pred.status().code(), pred.status().message() + " (" +
                                              name_span.ToString() + ")");
    }
    Atom atom(*pred, std::move(terms));
    atom.span = name_span;
    return atom;
  }

  static std::optional<CmpOp> AsCmpOp(TokKind kind) {
    switch (kind) {
      case TokKind::kEq:
        return CmpOp::kEq;
      case TokKind::kNe:
        return CmpOp::kNe;
      case TokKind::kLt:
        return CmpOp::kLt;
      case TokKind::kLe:
        return CmpOp::kLe;
      case TokKind::kGt:
        return CmpOp::kGt;
      case TokKind::kGe:
        return CmpOp::kGe;
      default:
        return std::nullopt;
    }
  }

  Status ParseBody(std::vector<Atom>* atoms, std::vector<Atom>* negated,
                   std::vector<Comparison>* comparisons) {
    while (true) {
      // A body literal is `Pred(...)`, `not Pred(...)`, or `term op term`.
      if (Cur().kind == TokKind::kIdent && Cur().text == "not" &&
          Next().kind == TokKind::kIdent) {
        Advance();  // 'not'
        MDQA_ASSIGN_OR_RETURN(Atom a, ParseAtom());
        negated->push_back(std::move(a));
      } else if (Cur().kind == TokKind::kIdent &&
                 Next().kind == TokKind::kLParen) {
        MDQA_ASSIGN_OR_RETURN(Atom a, ParseAtom());
        atoms->push_back(std::move(a));
      } else {
        MDQA_ASSIGN_OR_RETURN(Term lhs, ParseTerm());
        std::optional<CmpOp> op = AsCmpOp(Cur().kind);
        if (!op.has_value()) {
          return Fail("expected a comparison operator");
        }
        Advance();
        MDQA_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
        comparisons->push_back(Comparison{*op, lhs, rhs});
      }
      if (Cur().kind == TokKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    if (atoms->empty()) {
      return Fail("body must contain at least one relational atom");
    }
    return Status::Ok();
  }

  /// Hands a completed rule to the program: duplicates of an existing rule
  /// are dropped (recorded as a ParseIssue), and validation failures get
  /// their location recorded before the status propagates.
  Status AddRuleChecked(Program* program, Rule rule) {
    for (const Rule& existing : program->rules()) {
      if (existing.SameAs(rule)) {
        if (report_ != nullptr) {
          ParseIssue issue;
          issue.kind = ParseIssue::Kind::kDuplicateRule;
          issue.message = "duplicate rule dropped (identical to an earlier "
                          "statement): " +
                          vocab_->RuleToString(rule);
          issue.span = rule.span;
          report_->issues.push_back(std::move(issue));
        }
        return Status::Ok();
      }
    }
    SourceSpan span = rule.span;
    Status s = program->AddRule(std::move(rule));
    if (!s.ok()) Record(ParseReport::ErrorKind::kValidation, span);
    return s;
  }

  // One statement: fact, TGD, EGD, or constraint, ending with '.'.
  Status ParseStatement(Program* program) {
    SourceSpan start = Cur().span;

    // Constraint: `! :- body.`
    if (Cur().kind == TokKind::kBang) {
      Advance();
      MDQA_RETURN_IF_ERROR(Expect(TokKind::kArrow, "':-' after '!'"));
      Rule r;
      r.kind = RuleKind::kConstraint;
      r.span = start;
      MDQA_RETURN_IF_ERROR(ParseBody(&r.body, &r.negated, &r.comparisons));
      MDQA_RETURN_IF_ERROR(Expect(TokKind::kPeriod, "'.' ending constraint"));
      return AddRuleChecked(program, std::move(r));
    }

    // EGD: `X = Y :- body.` — head is `term = term` then arrow.
    if ((Cur().kind == TokKind::kIdent || Cur().kind == TokKind::kString ||
         Cur().kind == TokKind::kNumber) &&
        Next().kind == TokKind::kEq) {
      MDQA_ASSIGN_OR_RETURN(Term lhs, ParseTerm());
      Advance();  // '='
      MDQA_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
      MDQA_RETURN_IF_ERROR(Expect(TokKind::kArrow, "':-' after EGD head"));
      Rule r;
      r.kind = RuleKind::kEgd;
      r.egd_lhs = lhs;
      r.egd_rhs = rhs;
      r.span = start;
      MDQA_RETURN_IF_ERROR(ParseBody(&r.body, &r.negated, &r.comparisons));
      MDQA_RETURN_IF_ERROR(Expect(TokKind::kPeriod, "'.' ending EGD"));
      return AddRuleChecked(program, std::move(r));
    }

    // Fact or TGD: one or more head atoms.
    std::vector<Atom> head;
    while (true) {
      MDQA_ASSIGN_OR_RETURN(Atom a, ParseAtom());
      head.push_back(std::move(a));
      if (Cur().kind == TokKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    if (Cur().kind == TokKind::kPeriod) {
      Advance();
      for (Atom& a : head) {
        MDQA_RETURN_IF_ERROR(program->AddFact(std::move(a)));
      }
      return Status::Ok();
    }
    MDQA_RETURN_IF_ERROR(Expect(TokKind::kArrow, "':-' or '.' after head"));
    Rule r;
    r.kind = RuleKind::kTgd;
    r.head = std::move(head);
    r.span = start;
    MDQA_RETURN_IF_ERROR(ParseBody(&r.body, &r.negated, &r.comparisons));
    MDQA_RETURN_IF_ERROR(Expect(TokKind::kPeriod, "'.' ending rule"));
    return AddRuleChecked(program, std::move(r));
  }

  std::vector<Token> tokens_;
  size_t idx_ = 0;
  Vocabulary* vocab_;
  ParseReport* report_;
};

Result<std::vector<Token>> TokenizeFor(std::string_view text,
                                       ParseReport* report) {
  Lexer lexer(text);
  Result<std::vector<Token>> tokens = lexer.Tokenize();
  if (!tokens.ok() && report != nullptr &&
      report->error_kind == ParseReport::ErrorKind::kNone) {
    report->error_kind = ParseReport::ErrorKind::kSyntax;
    report->error_span = lexer.error_span();
  }
  return tokens;
}

}  // namespace

Result<Program> Parser::ParseProgram(std::string_view text) {
  return ParseProgram(text, nullptr);
}

Result<Program> Parser::ParseProgram(std::string_view text,
                                     ParseReport* report) {
  Program program;
  MDQA_RETURN_IF_ERROR(ParseInto(text, &program, report));
  return program;
}

Status Parser::ParseInto(std::string_view text, Program* program) {
  return ParseInto(text, program, nullptr);
}

Status Parser::ParseInto(std::string_view text, Program* program,
                         ParseReport* report) {
  MDQA_ASSIGN_OR_RETURN(std::vector<Token> tokens, TokenizeFor(text, report));
  ParserImpl impl(std::move(tokens), program->mutable_vocab(), report);
  return impl.ParseStatements(program);
}

Result<ConjunctiveQuery> Parser::ParseQuery(std::string_view text,
                                            Vocabulary* vocab) {
  MDQA_ASSIGN_OR_RETURN(std::vector<Token> tokens, TokenizeFor(text, nullptr));
  ParserImpl impl(std::move(tokens), vocab, nullptr);
  return impl.ParseSingleQuery();
}

Result<Atom> Parser::ParseGroundAtom(std::string_view text,
                                     Vocabulary* vocab) {
  MDQA_ASSIGN_OR_RETURN(std::vector<Token> tokens, TokenizeFor(text, nullptr));
  ParserImpl impl(std::move(tokens), vocab, nullptr);
  return impl.ParseSingleGroundAtom();
}

}  // namespace mdqa::datalog
